// Quickstart: define a system, shock it, and measure its resilience.
//
// This example walks the library's core loop end to end:
//
//  1. model a system in the paper's DCSP formalism (Fig 4) — a bit-string
//     configuration that must satisfy an environment constraint;
//  2. hit it with a shock (an event of type D);
//  3. let it adapt by flipping bits;
//  4. measure the Bruneau resilience triangle R = ∫(100−Q)dt (Fig 3);
//  5. verify k-recoverability against the whole shock class, not just
//     the one shock we happened to sample.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"resilience/internal/bitstring"
	"resilience/internal/core"
	"resilience/internal/dcsp"
	"resilience/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	r := rng.New(2013) // the workshop year; any seed reproduces exactly

	// 1. A 16-component system whose environment requires every
	// component up (the paper's spacecraft constraint C = 1^n), repairing
	// two components per step.
	const n = 16
	sys, err := dcsp.NewSystem(dcsp.AllOnes{N: n}, bitstring.Ones(n), dcsp.GreedyRepairer{}, 2)
	if err != nil {
		return err
	}
	adapter, err := core.NewDCSPSystem(sys, r)
	if err != nil {
		return err
	}

	// 2.-3. Shock at step 5: six components fail at once. The repairer
	// brings them back two per step.
	trace, err := core.RunScenario(adapter, core.Scenario{
		Steps: 20,
		ShockAt: map[int]core.Shock{
			5: adapter.Damage(dcsp.ExactFlips{K: 6}),
		},
	})
	if err != nil {
		return err
	}

	// 4. Assess the trace.
	profile, err := core.Assess(trace, 99)
	if err != nil {
		return err
	}
	fmt.Printf("quality trace: ")
	for _, q := range trace.Q {
		fmt.Printf("%3.0f ", q)
	}
	fmt.Println()
	fmt.Printf("resilience loss (triangle area): %.1f\n", profile.Report.Loss)
	fmt.Printf("robustness (min quality):        %.1f\n", profile.Report.Robustness)
	fmt.Printf("recovery time:                   %.0f steps\n", profile.Report.MeanRecovery)
	fmt.Printf("grade:                           %s\n", profile.Grade)

	// 5. One good run proves little. Verify the k-recoverability claim
	// for EVERY damage pattern of up to 6 failures: at 2 repairs/step the
	// system must recover within 3 steps.
	report, err := dcsp.CheckKRecoverableExhaustive(dcsp.AllOnes{N: n}, 6, 2, 3, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nexhaustive check over %d damage patterns: k=%d recoverable=%v (worst %d steps)\n",
		report.Trials, report.K, report.Recoverable, report.WorstSteps)

	// Bonus: what the strategy catalogue says about what we just used.
	entry, _ := core.Lookup(core.Adaptability)
	fmt.Printf("\nBoK: %s — %s\n", entry.Kind, entry.Summary)
	return nil
}
