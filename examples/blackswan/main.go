// Blackswan: living with extreme events (§3.4.6) — and reasoning about
// them under uncertainty (§4.3).
//
// Three acts:
//
//  1. The statistics of X-events: Gaussian intuition fails for power-law
//     shocks — one event can carry a visible share of all damage ever
//     observed, and the sample mean never settles.
//  2. Insurance: an insurer priced comfortably above the "average" claim
//     is safe under Gaussian claims and ruined under Pareto claims with
//     the same nominal mean.
//  3. Design under uncertainty: when you do not even know which shock
//     class you face, Bayesian inference over shock-class hypotheses
//     (internal/belief) sizes the defense from the posterior predictive
//     tail — and shows how dangerous the small-sample regime is.
//
// Run with: go run ./examples/blackswan
package main

import (
	"fmt"
	"log"

	"resilience/internal/belief"
	"resilience/internal/rng"
	"resilience/internal/xevent"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	r := rng.New(1755) // Lisbon

	// Act 1: sample-mean (in)stability.
	fmt.Println("ACT 1 — why averages lie about extremes (100k shocks each)")
	for _, d := range []xevent.ShockDist{
		xevent.Gaussian{Mean: 10, StdDev: 2},
		xevent.Pareto{Scale: 1, Alpha: 1.1},
	} {
		ms, err := xevent.AssessMeanStability(d, 100000, r)
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s mean=%6.2f  biggest single event carries %.1f%% of ALL damage\n",
			d, ms.Mean, 100*ms.MaxShare)
	}

	// Act 2: insurance.
	fmt.Println("\nACT 2 — insurance against each world (premium 30% above the mean claim)")
	ins := xevent.Insurer{Capital: 200, Premium: 13, LossesPerPeriod: 1}
	for _, d := range []xevent.ShockDist{
		xevent.Gaussian{Mean: 10, StdDev: 3},
		xevent.Pareto{Scale: 1, Alpha: 1.1}, // same nominal mean 11
	} {
		ruin, err := ins.RuinProbability(d, 500, 1000, r)
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s ruin probability over 500 periods: %.1f%%\n", d, 100*ruin)
	}
	fmt.Println("  \"we can not rely on insurance because insurance is based on the")
	fmt.Println("   estimated average loss of multiple incidents\" — §3.4.6")

	// Act 3: design under shock-class uncertainty.
	fmt.Println("\nACT 3 — how high a wall, when you don't know the distribution?")
	post, err := belief.NewPosterior([]belief.Hypothesis{
		belief.ParetoHypothesis("pareto(1.1)", 1, 1, 1.1),
		belief.ParetoHypothesis("pareto(1.5)", 1, 1, 1.5),
		belief.ParetoHypothesis("pareto(2.0)", 1, 1, 2.0),
		belief.ExponentialHypothesis("exp(0.5)", 1, 0.5),
	})
	if err != nil {
		return err
	}
	candidates := []float64{5.7, 10, 15, 22, 40, 100, 400}
	level := func() string {
		lvl, err := post.CoverageLevel(0.01, candidates)
		if err != nil {
			return "beyond all candidates"
		}
		return fmt.Sprintf("%.1f m", lvl)
	}
	fmt.Printf("  prior (no data):            99%%-coverage wall = %s\n", level())
	const trueAlpha = 1.5
	seen := 0
	for _, checkpoint := range []int{10, 50, 300} {
		for seen < checkpoint {
			post.Observe(r.Pareto(1, trueAlpha))
			seen++
		}
		hyp, p := post.MAP()
		fmt.Printf("  after %3d observed floods:  99%%-coverage wall = %-8s (MAP %s, P=%.2f)\n",
			checkpoint, level(), hyp.Name, p)
	}
	fmt.Printf("  ground truth pareto(%.1f) requires 21.5 m\n", trueAlpha)
	fmt.Println("\n  the paper's Fukushima numbers: designed 5.7 m, hit by ~14-15 m,")
	fmt.Println("  historical maximum 40 m — the posterior lands where hindsight did")
	return nil
}
