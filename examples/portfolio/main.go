// Portfolio: the investment-diversification trade of §3.2.3.
//
// "To invest all the money on the stock with the highest expected return
// is the optimal solution if that is the goal. It is also a risky
// strategy because the investor loses all the money if the invested
// company bankrupts. By diversifying the investments, the investor can
// significantly reduce the risk of catastrophic loss in exchange for a
// slightly lower expected return."
//
// We compare a concentrated bet on the best asset against widening
// equal-weight portfolios and report the exact trade: expected wealth
// given up versus ruin probability avoided.
//
// Run with: go run ./examples/portfolio
package main

import (
	"fmt"
	"log"

	"resilience/internal/portfolio"
	"resilience/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := portfolio.Config{Periods: 30, Trials: 20000, RuinBelow: 0.1}

	// The "best" asset: highest expected return, and the pool of decent
	// alternatives an index fund would hold.
	best := portfolio.Asset{Name: "hot-stock", MeanReturn: 0.10, Volatility: 0.25, BankruptcyProb: 0.02}
	poolMean, poolVol, poolBk := 0.08, 0.20, 0.02

	r := rng.New(1987)
	concentrated, err := portfolio.Simulate([]portfolio.Asset{best}, cfg, r)
	if err != nil {
		return err
	}
	fmt.Println("30-period horizon, 20k Monte-Carlo trials, ruin = ending below 10% of initial wealth")
	fmt.Printf("\nconcentrated (1 asset @ %.0f%% expected):\n", best.MeanReturn*100)
	fmt.Printf("  mean final wealth %.2fx   median %.2fx   ruin probability %.1f%%\n",
		concentrated.MeanFinal, concentrated.MedianFinal, 100*concentrated.RuinProb)

	fmt.Printf("\ndiversified (equal-weight pools @ %.0f%% expected):\n", poolMean*100)
	fmt.Println("  assets  meanFinal  medianFinal  ruinProb")
	curve, err := portfolio.DiversificationCurve(12, poolMean, poolVol, poolBk, cfg, r)
	if err != nil {
		return err
	}
	for i, res := range curve {
		n := i + 1
		if n != 1 && n != 2 && n != 4 && n != 8 && n != 12 {
			continue
		}
		fmt.Printf("  %-6d  %.2fx      %.2fx        %.2f%%\n",
			n, res.MeanFinal, res.MedianFinal, 100*res.RuinProb)
	}

	wide := curve[len(curve)-1]
	fmt.Printf("\nthe trade: give up %.0f%% of expected final wealth (%.2fx -> %.2fx),\n",
		100*(concentrated.MeanFinal-wide.MeanFinal)/concentrated.MeanFinal,
		concentrated.MeanFinal, wide.MeanFinal)
	fmt.Printf("cut ruin probability by %.0fx (%.1f%% -> %.2f%%)\n",
		concentrated.RuinProb/maxF(wide.RuinProb, 1e-9),
		100*concentrated.RuinProb, 100*wide.RuinProb)
	fmt.Printf("(growth-rate penalty alone, analytic: %.1f%%)\n",
		100*portfolio.ExpectedGrowthPenalty(best.MeanReturn, poolMean, cfg.Periods))
	return nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
