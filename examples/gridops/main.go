// Gridops: a 3.11-style infrastructure scenario — reserve capacity, a
// MAPE control loop, chaos injection, and emergency mode switching.
//
// §3.1.2–3.1.3 of the paper: after the earthquake "every one of Japan's
// 50 nuclear power stations went into maintenance cycles … Japan has
// never experienced major blackout during this period" thanks to reserve
// capacity; §3.4.6: under an extreme event "the system switches its
// operational mode to the emergency mode, in which the system and the
// people behave based on a different set of policies."
//
// We build a regional grid of generation plants behind a transmission
// layer, inject a correlated X-event (the entire nuclear fleet goes
// offline at once), and compare three operators:
//
//   - none:        no control loop at all;
//   - mape:        a MAPE loop repairing one plant per cycle;
//   - mode-switch: the same loop plus emergency mode (load shedding and
//     a mobilized repair budget).
//
// Run with: go run ./examples/gridops
package main

import (
	"fmt"
	"log"

	"resilience/internal/chaos"
	"resilience/internal/core"
	"resilience/internal/mape"
	"resilience/internal/metrics"
	"resilience/internal/modeswitch"
	"resilience/internal/rng"
	"resilience/internal/sysmodel"
)

const (
	demand      = 300.0
	reserve     = 150.0 // universal resource: stored fuel / import budget
	steps       = 80
	xEventStep  = 10
	nuclearSize = 6
	thermalSize = 8
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildGrid assembles the regional grid: nuclear and thermal fleets, a
// shared transmission layer the consumers depend on.
func buildGrid() (*sysmodel.System, error) {
	b := sysmodel.NewBuilder()
	grid := b.Component("transmission", 0, sysmodel.WithGroup("transmission"))
	_ = grid
	for i := 0; i < nuclearSize; i++ {
		b.Component(fmt.Sprintf("nuclear-%d", i), 30,
			sysmodel.WithGroup("nuclear"), sysmodel.WithRequiresGroup("transmission"))
	}
	for i := 0; i < thermalSize; i++ {
		b.Component(fmt.Sprintf("thermal-%d", i), 20,
			sysmodel.WithGroup("thermal"), sysmodel.WithRequiresGroup("transmission"))
	}
	// Nominal capacity: 6*30 + 8*20 = 340 against demand 300 — ~13%
	// spinning reserve, as §3.1.2 describes.
	return b.Build(demand, reserve)
}

type operator struct {
	name string
	run  func() (*metrics.Trace, error)
}

func run() error {
	xEvent := func(sys *sysmodel.System, r *rng.Source) core.Shock {
		return func() error {
			// The correlated shock: the whole nuclear fleet at once.
			return chaos.CrashGroup{Group: "nuclear"}.Inject(sys, r)
		}
	}

	operators := []operator{
		{"no-operator", func() (*metrics.Trace, error) {
			sys, err := buildGrid()
			if err != nil {
				return nil, err
			}
			r := rng.New(311)
			adapter, err := core.NewServiceSystem(sys, nil)
			if err != nil {
				return nil, err
			}
			return core.RunScenario(adapter, core.Scenario{
				Steps:   steps,
				ShockAt: map[int]core.Shock{xEventStep: xEvent(sys, r)},
			})
		}},
		{"mape-loop", func() (*metrics.Trace, error) {
			sys, err := buildGrid()
			if err != nil {
				return nil, err
			}
			r := rng.New(311)
			ctrl := mape.NewController(99, 1) // one plant restart per cycle
			adapter, err := core.NewServiceSystem(sys, ctrl)
			if err != nil {
				return nil, err
			}
			return core.RunScenario(adapter, core.Scenario{
				Steps:   steps,
				ShockAt: map[int]core.Shock{xEventStep: xEvent(sys, r)},
			})
		}},
		{"mode-switching", func() (*metrics.Trace, error) {
			sys, err := buildGrid()
			if err != nil {
				return nil, err
			}
			r := rng.New(311)
			inner := mape.NewController(99, 1)
			sw, err := modeswitch.NewSwitcher(modeswitch.Config{
				EnterBelow: 80, ExitAbove: 99, EnterAfter: 1, ExitAfter: 2,
			})
			if err != nil {
				return nil, err
			}
			sw.OnChange = func(tr modeswitch.Transition) {
				fmt.Printf("    [mode %s -> %s at observation %d, quality %.0f]\n",
					tr.From, tr.To, tr.Observation, tr.Signal)
			}
			mc, err := mape.NewModeController(inner, sw, map[modeswitch.Mode]mape.ModePolicy{
				modeswitch.Normal:    {Demand: demand, RepairBudget: 1},
				modeswitch.Emergency: {Demand: 220, RepairBudget: 3}, // setsuden + mobilized crews
			})
			if err != nil {
				return nil, err
			}
			tr := metrics.NewTrace(0, 1)
			for t := 0; t < steps; t++ {
				if t == xEventStep {
					if err := xEvent(sys, r)(); err != nil {
						return nil, err
					}
				}
				rep := sys.Step()
				tr.Append(rep.Quality)
				if _, _, err := mc.Tick(sys); err != nil {
					return nil, err
				}
			}
			return tr, nil
		}},
	}

	profiles := map[string]core.Profile{}
	fmt.Printf("grid: demand %.0f MW, capacity 340 MW, reserve %.0f MWh; X-event at step %d: all %d nuclear plants offline\n\n",
		demand, reserve, xEventStep, nuclearSize)
	for _, op := range operators {
		fmt.Printf("  %s:\n", op.name)
		tr, err := op.run()
		if err != nil {
			return fmt.Errorf("%s: %w", op.name, err)
		}
		p, err := core.Assess(tr, 99)
		if err != nil {
			return err
		}
		profiles[op.name] = p
		fmt.Printf("    loss=%.0f robustness=%.0f%% recovered=%v grade=%s\n\n",
			p.Report.Loss, p.Report.Robustness, p.Recovered, p.Grade)
	}

	fmt.Println("ranking (most resilient first):")
	for i, np := range core.Rank(profiles) {
		fmt.Printf("  %d. %-15s loss=%.0f grade=%s\n",
			i+1, np.Name, np.Profile.Report.Loss, np.Profile.Grade)
	}
	return nil
}
