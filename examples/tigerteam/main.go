// Tigerteam: adversarial resilience testing, then hardening, then
// retesting (§5.3 + §3.1).
//
// "It is extremely difficult to prove that [a system] is in fact
// resilient … The other [approach] is black-box testing, or testing by a
// so-called 'tiger team'."
//
// The loop every resilience engineer should run:
//
//  1. engage a tiger team against the architecture — it finds the worst
//     bounded attack, not the average one;
//  2. read the attack: it points at the structural weakness (here, a
//     database every service depends on);
//  3. harden exactly that weakness (a replica in the same substitution
//     group — redundancy, §3.1);
//  4. re-engage: the worst case should collapse toward the average case.
//
// Run with: go run ./examples/tigerteam
package main

import (
	"fmt"
	"log"

	"resilience/internal/mape"
	"resilience/internal/rng"
	"resilience/internal/sysmodel"
	"resilience/internal/tiger"
)

const (
	steps      = 25
	strikeStep = 3
	budget     = 2
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildV1 is the naive architecture: one database, six dependent
// services, two independent batch workers.
func buildV1() (*sysmodel.System, *mape.Controller, error) {
	b := sysmodel.NewBuilder()
	db := b.Component("db", 10, sysmodel.WithGroup("db"))
	for i := 0; i < 6; i++ {
		b.Component(fmt.Sprintf("svc-%d", i), 25, sysmodel.WithDependsOn(db))
	}
	b.Component("batch-0", 20)
	b.Component("batch-1", 20)
	sys, err := b.Build(200, 0)
	if err != nil {
		return nil, nil, err
	}
	return sys, mape.NewController(99, 1), nil
}

// buildV2 is the hardened architecture: the services no longer depend on
// a specific database instance but on the "db" substitution group, which
// now has a replica — interoperability as redundancy (§3.1.3).
func buildV2() (*sysmodel.System, *mape.Controller, error) {
	b := sysmodel.NewBuilder()
	b.Component("db-primary", 5, sysmodel.WithGroup("db"))
	b.Component("db-replica", 5, sysmodel.WithGroup("db"))
	for i := 0; i < 6; i++ {
		b.Component(fmt.Sprintf("svc-%d", i), 25, sysmodel.WithRequiresGroup("db"))
	}
	b.Component("batch-0", 20)
	b.Component("batch-1", 20)
	sys, err := b.Build(200, 0)
	if err != nil {
		return nil, nil, err
	}
	return sys, mape.NewController(99, 1), nil
}

func engage(name string, build func() (*sysmodel.System, *mape.Controller, error)) (tiger.Report, error) {
	tgt, err := tiger.NewServiceTarget(build, steps, strikeStep)
	if err != nil {
		return tiger.Report{}, err
	}
	r := rng.New(77)
	rep, err := tiger.Engage(tgt, tiger.Config{Budget: budget, RandomProbes: 16, Climbs: 8}, r)
	if err != nil {
		return tiger.Report{}, err
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  random-probe mean loss: %7.1f\n", rep.RandomMean)
	fmt.Printf("  tiger-team worst loss:  %7.1f  (attack on elements %v)\n",
		rep.Worst.Loss, rep.Worst.Elements)
	fmt.Printf("  worst-case amplification: %.1fx over the average shock\n\n", rep.Amplification)
	return rep, nil
}

func run() error {
	fmt.Printf("tiger-team engagement: %d-element attacks, MAPE repairing 1/cycle\n\n", budget)
	v1, err := engage("v1 (single db hub)", buildV1)
	if err != nil {
		return err
	}
	fmt.Println("the attack points at the db hub — harden it with a grouped replica:")
	fmt.Println()
	v2, err := engage("v2 (db group with replica)", buildV2)
	if err != nil {
		return err
	}
	fmt.Printf("hardening cut the worst case from %.1f to %.1f (%.0f%%)\n",
		v1.Worst.Loss, v2.Worst.Loss, 100*(v1.Worst.Loss-v2.Worst.Loss)/v1.Worst.Loss)
	fmt.Println("the tiger team told us WHERE to spend the redundancy budget —")
	fmt.Println("random fault injection alone would have reported a rosy average")
	return nil
}
