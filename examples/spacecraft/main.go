// Spacecraft: the paper's worked example of §4.2, end to end.
//
// "We consider the hypothetical spacecraft system … The system consists
// of a fixed set of n components … Suppose that the constraint C = 1^n at
// every time t … and that the spacecraft is occasionally hit by space
// debris causing at most k component failures. If the spacecraft can fix
// one component at each time step, we consider that the spacecraft is
// k-recoverable."
//
// The example (a) verifies that claim exhaustively, (b) synthesizes the
// equivalent Baral–Eiter k-maintainable repair policy over the explicit
// state space (§4.3), and (c) flies a long mission under Poisson debris
// strikes, reporting availability.
//
// Run with: go run ./examples/spacecraft
package main

import (
	"fmt"
	"log"

	"resilience/internal/dcsp"
	"resilience/internal/maintain"
	"resilience/internal/rng"
	"resilience/internal/stats"
)

const (
	components    = 24
	maxDebrisHits = 5
	repairPerStep = 1
	missionSteps  = 20000
	strikeRate    = 0.01
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// (a) The DCSP view: exhaustive k-recoverability.
	craft, err := dcsp.NewSpacecraft(components, maxDebrisHits, repairPerStep)
	if err != nil {
		return err
	}
	rec, err := craft.VerifyKRecoverable()
	if err != nil {
		return err
	}
	fmt.Printf("spacecraft: n=%d components, debris causes <=%d failures, %d repair/step\n",
		components, maxDebrisHits, repairPerStep)
	fmt.Printf("k-recoverability: k=%d recoverable=%v worst=%d steps\n\n",
		rec.K, rec.Recoverable, rec.WorstSteps)

	// (b) The K-maintainability view (§4.3): states are "f components
	// failed" (f = 0..n); the repair action fixes one component; the
	// normal state is f = 0. The Baral–Eiter construction recovers the
	// same bound as (a).
	msys, err := maintain.NewSystem(components + 1)
	if err != nil {
		return err
	}
	if err := msys.MarkNormal(0); err != nil {
		return err
	}
	repair := msys.AddAction("fix-one-component")
	for f := 1; f <= components; f++ {
		if err := msys.AddTransition(maintain.StateID(f), repair, maintain.StateID(f-1)); err != nil {
			return err
		}
	}
	// Debris is the exogenous event: from normal, up to maxDebrisHits
	// components can fail.
	for f := 1; f <= maxDebrisHits; f++ {
		if err := msys.AddExogenous(0, maintain.StateID(f)); err != nil {
			return err
		}
	}
	envelope, err := msys.ExogenousReachable(0)
	if err != nil {
		return err
	}
	report, policy, err := msys.CheckKMaintainable(maxDebrisHits, envelope...)
	if err != nil {
		return err
	}
	fmt.Printf("k-maintainability over the debris envelope (%d states): k=%d maintainable=%v worst=%d\n",
		len(envelope), report.K, report.Maintainable, report.WorstDistance)
	if a, ok := policy.Action(maintain.StateID(3)); ok {
		fmt.Printf("policy in state '3 failed': %s (distance %d)\n\n",
			msys.ActionName(a), policy.Distance(maintain.StateID(3)))
	}

	// (c) Fly the mission.
	r := rng.New(11)
	mission, err := craft.SimulateMission(missionSteps, strikeRate, r)
	if err != nil {
		return err
	}
	sum := stats.Summarize(mission.Availability)
	fmt.Printf("mission: %d steps, %d debris strikes, %d degraded steps\n",
		missionSteps, mission.Strikes, mission.DegradedSteps)
	fmt.Printf("availability: mean=%.2f%% min=%.0f%% p5=%.0f%%\n",
		sum.Mean, sum.Min, stats.Quantile(mission.Availability, 0.05))
	fmt.Printf("fraction of time at full availability: %.3f\n",
		1-float64(mission.DegradedSteps)/float64(missionSteps))
	return nil
}
