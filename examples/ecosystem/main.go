// Ecosystem: diversity as a survival strategy through a mass extinction.
//
// §3.2.1 of the paper: "the Permian–Triassic extinction event … caused up
// to 96% of marine species to become extinct. One of the reasons that the
// biological systems as a whole survived is because of their diversity —
// some species had better capability to deal with changing environments."
//
// We evolve two communities under replicator dynamics with trait-based
// fitness and then shift the environmental optimum abruptly (the
// extinction event):
//
//   - a diverse community whose traits span the whole niche axis, and
//   - a near-monoculture clustered around the old optimum.
//
// Both prosper before the event. Afterwards, the diverse community holds
// a (tiny, nearly extinct) sub-population near the new optimum that the
// replicator re-amplifies; the monoculture has nothing to amplify and its
// mean fitness stays on the floor — alive in name, extinct in function.
//
// Run with: go run ./examples/ecosystem
package main

import (
	"fmt"
	"log"

	"resilience/internal/diversity"
	"resilience/internal/dynamics"
)

const (
	floorFitness = 0.02
	nicheWidth   = 0.8
	preSteps     = 60
	postSteps    = 400
	newOptimum   = 3.0
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// community builds an ecosystem of 10 species with traits spread over
// [0, spread], sharing total population 100. No extinction cutoff: the
// replicator may carry vanishingly small reserve populations — that IS
// the diversity being stress-tested.
func community(spread float64, opt *float64) (*dynamics.Ecosystem, []float64, error) {
	const nSpecies = 10
	traits := make([]float64, nSpecies)
	pops := make([]float64, nSpecies)
	for i := range traits {
		traits[i] = spread * float64(i) / float64(nSpecies-1)
		pops[i] = 100.0 / nSpecies
	}
	e, err := dynamics.NewEcosystem(pops, dynamics.GaussianTrait(traits, opt, nicheWidth, floorFitness))
	if err != nil {
		return nil, nil, err
	}
	return e, traits, nil
}

func report(label string, e *dynamics.Ecosystem) error {
	mf, err := e.MeanFitness()
	if err != nil {
		return err
	}
	inv, err := diversity.InverseSimpson(e.Pops)
	if err != nil {
		inv = 0
	}
	fmt.Printf("%-24s meanFitness=%.3f  effectiveSpecies=%.2f\n", label, mf, inv)
	return nil
}

func run() error {
	optD, optM := 0.0, 0.0
	diverse, _, err := community(newOptimum, &optD) // traits 0..3
	if err != nil {
		return err
	}
	mono, _, err := community(0.3, &optM) // traits 0..0.3
	if err != nil {
		return err
	}

	fmt.Printf("two communities of 10 species, niche optimum at trait 0\n\n")
	fmt.Println("at founding:")
	if err := report("  diverse (traits 0-3)", diverse); err != nil {
		return err
	}
	if err := report("  monoculture (0-0.3)", mono); err != nil {
		return err
	}

	if err := diverse.Run(preSteps); err != nil {
		return err
	}
	if err := mono.Run(preSteps); err != nil {
		return err
	}
	fmt.Printf("\nafter %d quiet generations (the monoculture looks better!):\n", preSteps)
	if err := report("  diverse", diverse); err != nil {
		return err
	}
	if err := report("  monoculture", mono); err != nil {
		return err
	}
	fmt.Printf("  diverse community's reserve population at trait 3: %.2g (nearly gone, not gone)\n",
		diverse.Pops[len(diverse.Pops)-1])

	// The extinction event: the optimum jumps to trait 3.
	optD, optM = newOptimum, newOptimum
	if err := diverse.Run(postSteps); err != nil {
		return err
	}
	if err := mono.Run(postSteps); err != nil {
		return err
	}
	fmt.Printf("\nafter the X-event (optimum 0 -> %.0f, %d generations):\n", newOptimum, postSteps)
	if err := report("  diverse", diverse); err != nil {
		return err
	}
	if err := report("  monoculture", mono); err != nil {
		return err
	}

	mfD, err := diverse.MeanFitness()
	if err != nil {
		return err
	}
	mfM, err := mono.MeanFitness()
	if err != nil {
		return err
	}
	fmt.Printf("\nthe diverse community re-adapted (mean fitness %.2f); the monoculture is\n", mfD)
	fmt.Printf("pinned at the floor (%.2f ≈ %.2f): functionally extinct. Diversity paid\n", mfM, floorFitness)
	fmt.Println("for itself by holding a barely-viable specialist in reserve — the same")
	fmt.Println("logic as the stickleback's dormant armor gene (§3.1.1).")
	return nil
}
