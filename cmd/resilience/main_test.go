package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"resilience/internal/experiments"
)

// runCLI invokes run with separate stdout/stderr buffers. Unless the
// test opts into caching with -cache-dir or -no-cache of its own, the
// result cache is disabled so tests never read or write the real user
// cache directory (and counter-pinning tests see every attempt run).
func runCLI(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	cacheFlag := false
	for _, a := range args {
		if strings.HasPrefix(a, "-cache-dir") || a == "-no-cache" {
			cacheFlag = true
		}
	}
	if !cacheFlag && len(args) > 0 {
		args = append([]string{args[0], "-no-cache"}, args[1:]...)
	}
	var out, errb bytes.Buffer
	err = run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func TestRunList(t *testing.T) {
	out, _, err := runCLI(t, "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e01", "e10", "e22", "e31"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
	// The listing carries the registry metadata: modules and quick support.
	if !strings.Contains(out, "[metrics]") || !strings.Contains(out, "quick") {
		t.Errorf("list output missing modules/quick columns:\n%s", out)
	}
}

func TestRunListJSON(t *testing.T) {
	out, _, err := runCLI(t, "list", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		ID      string   `json:"id"`
		Modules []string `json:"modules"`
	}
	if err := json.Unmarshal([]byte(out), &entries); err != nil {
		t.Fatalf("list -format json is not valid JSON: %v", err)
	}
	if len(entries) != 31 || entries[0].ID != "e01" || len(entries[0].Modules) == 0 {
		t.Fatalf("unexpected list JSON: %d entries, first %+v", len(entries), entries[0])
	}
}

func TestRunBok(t *testing.T) {
	out, _, err := runCLI(t, "bok")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"redundancy", "diversity", "adaptability", "mode-switching"} {
		if !strings.Contains(out, want) {
			t.Errorf("bok output missing %q", want)
		}
	}
	jsonOut, _, err := runCLI(t, "bok", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(jsonOut)) {
		t.Fatal("bok -format json is not valid JSON")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, _, err := runCLI(t, "e01", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "e01") {
		t.Fatal("experiment output missing header")
	}
}

func TestRunErrors(t *testing.T) {
	if _, _, err := runCLI(t); err == nil {
		t.Error("want error for no command")
	}
	if _, _, err := runCLI(t, "e99"); err == nil {
		t.Error("want error for unknown experiment")
	}
	if _, _, err := runCLI(t, "e01", "-bogusflag"); err == nil {
		t.Error("want flag parse error")
	}
	if _, _, err := runCLI(t, "e01", "-quick", "-format", "xml"); err == nil {
		t.Error("want error for unknown format")
	}
}

func TestRunHelp(t *testing.T) {
	out, _, err := runCLI(t, "help")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "usage:") {
		t.Fatal("help output missing usage")
	}
}

func TestRunSeedFlag(t *testing.T) {
	a, _, err := runCLI(t, "e08", "-quick", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runCLI(t, "e08", "-quick", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed should reproduce identical output")
	}
}

func TestParseInterleaved(t *testing.T) {
	for _, tc := range []struct {
		args []string
		seed uint64
		pos  []string
	}{
		{[]string{"file.json", "-seed", "7"}, 7, []string{"file.json"}},
		{[]string{"-seed", "7", "file.json"}, 7, []string{"file.json"}},
		{[]string{"a", "-seed", "7", "b"}, 7, []string{"a", "b"}},
		{[]string{"-seed", "7"}, 7, nil},
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		seed := fs.Uint64("seed", 42, "")
		pos, err := parseInterleaved(fs, tc.args)
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if *seed != tc.seed || !reflect.DeepEqual(pos, tc.pos) {
			t.Errorf("%v: seed=%d pos=%v, want seed=%d pos=%v", tc.args, *seed, pos, tc.seed, tc.pos)
		}
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(&bytes.Buffer{})
	if _, err := parseInterleaved(fs, []string{"x", "-nope"}); err == nil {
		t.Error("want error for unknown flag after positional")
	}
}

// TestRunAllDeterministicAcrossJobs is the golden determinism check: the
// full quick suite rendered at -jobs 1 and -jobs 8 must be byte-identical.
func TestRunAllDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	j1, err1, err := runCLI(t, "all", "-quick", "-seed", "42", "-jobs", "1")
	if err != nil {
		t.Fatalf("jobs=1: %v\n%s", err, err1)
	}
	j8, err8, err := runCLI(t, "all", "-quick", "-seed", "42", "-jobs", "8")
	if err != nil {
		t.Fatalf("jobs=8: %v\n%s", err, err8)
	}
	if j1 != j8 {
		t.Fatal("suite stdout differs between -jobs 1 and -jobs 8")
	}
	if !strings.Contains(err8, "31 passed / 0 failed") {
		t.Fatalf("summary missing from stderr:\n%s", err8)
	}
}

// TestRunAllFlagOrderings checks the satellite requirement that flags
// parse wherever they appear relative to positionals.
func TestRunAllFlagOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	a, _, err := runCLI(t, "all", "-quick", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runCLI(t, "all", "-seed", "7", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("flag order changed the suite output")
	}
}

// TestRunSingleMatchesSuite checks the derived-seed contract: a single
// experiment run reproduces its section of an `all` run byte for byte.
func TestRunSingleMatchesSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	suite, _, err := runCLI(t, "all", "-quick", "-seed", "42")
	if err != nil {
		t.Fatal(err)
	}
	single, _, err := runCLI(t, "e08", "-quick", "-seed", "42")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(suite, single) {
		t.Fatal("single e08 run does not reproduce its suite section")
	}
}

func TestRunJSONFormat(t *testing.T) {
	out, _, err := runCLI(t, "e17", "-quick", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	var res experiments.Result
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-format json output is not one valid JSON document: %v", err)
	}
	if res.ID != "e17" || len(res.Tables) == 0 {
		t.Fatalf("JSON result incomplete: %+v", res)
	}
	for _, tb := range res.Tables {
		if len(tb.Rows) == 0 {
			t.Errorf("table %q has no rows", tb.Name)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("table %q: ragged row", tb.Name)
			}
		}
	}
	if len(res.Scalars) == 0 {
		t.Error("e17 should export scalars")
	}
}

func TestRunOutArtifacts(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := runCLI(t, "e08", "-quick", "-out", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e08.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res experiments.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if res.ID != "e08" || len(res.Tables) == 0 {
		t.Fatalf("artifact incomplete: %+v", res)
	}
}

func TestRunScenarioCommand(t *testing.T) {
	out, _, err := runCLI(t, "scenario", "../../examples/scenario/grid.json", "-seed", "42")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"regional grid", "crash-group(nuclear)", "grade="} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario output missing %q:\n%s", want, out)
		}
	}
	// Flags-before-path order also parses.
	out2, _, err := runCLI(t, "scenario", "-seed", "42", "../../examples/scenario/grid.json")
	if err != nil {
		t.Fatal(err)
	}
	if out != out2 {
		t.Error("flag order changed the result")
	}
	jsonOut, _, err := runCLI(t, "scenario", "../../examples/scenario/grid.json", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name  string `json:"name"`
		Grade string `json:"grade"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &doc); err != nil {
		t.Fatalf("scenario -format json invalid: %v", err)
	}
	if doc.Name == "" || doc.Grade == "" {
		t.Fatalf("scenario JSON incomplete: %+v", doc)
	}
}

func TestRunScenarioErrors(t *testing.T) {
	if _, _, err := runCLI(t, "scenario"); err == nil {
		t.Error("want usage error for missing path")
	}
	if _, _, err := runCLI(t, "scenario", "/nonexistent.json"); err == nil {
		t.Error("want error for missing file")
	}
}
