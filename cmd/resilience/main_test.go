package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"e01", "e10", "e22"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunBok(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"bok"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"redundancy", "diversity", "adaptability", "mode-switching"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("bok output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"e01", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "e01") {
		t.Fatal("experiment output missing header")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("want error for no command")
	}
	if err := run([]string{"e99"}, &buf); err == nil {
		t.Error("want error for unknown experiment")
	}
	if err := run([]string{"e01", "-bogusflag"}, &buf); err == nil {
		t.Error("want flag parse error")
	}
}

func TestRunHelp(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"help"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "usage:") {
		t.Fatal("help output missing usage")
	}
}

func TestRunSeedFlag(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"e08", "-quick", "-seed", "7"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"e08", "-quick", "-seed", "7"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed should reproduce identical output")
	}
}

func TestRunScenarioCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"scenario", "../../examples/scenario/grid.json", "-seed", "42"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"regional grid", "crash-group(nuclear)", "grade="} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario output missing %q:\n%s", want, out)
		}
	}
	// Flags-before-path order also parses.
	var buf2 bytes.Buffer
	if err := run([]string{"scenario", "-seed", "42", "../../examples/scenario/grid.json"}, &buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("flag order changed the result")
	}
}

func TestRunScenarioErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"scenario"}, &buf); err == nil {
		t.Error("want usage error for missing path")
	}
	if err := run([]string{"scenario", "/nonexistent.json"}, &buf); err == nil {
		t.Error("want error for missing file")
	}
}
