package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestQuickSuiteGolden pins the full quick-suite text output at the
// default seed to a committed golden file, so any output drift is an
// explicit decision: regenerate with
//
//	go test ./cmd/resilience -run QuickSuiteGolden -update
func TestQuickSuiteGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	out, _, err := runCLI(t, "all", "-quick", "-seed", "42", "-jobs", "4")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "quick_suite_seed42.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(out))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out == string(want) {
		return
	}
	// Point at the first differing line so drift is easy to review.
	gotLines, wantLines := strings.Split(out, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("quick-suite output drifted from %s at line %d:\n got: %q\nwant: %q\n"+
				"If the change is intentional, rerun with -update.", path, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("quick-suite output drifted from %s: got %d lines, want %d. "+
		"If the change is intentional, rerun with -update.", path, len(gotLines), len(wantLines))
}
