package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// metricsCounters reads the deterministic counters out of a -metrics
// document written by one run.
func metricsCounters(t *testing.T, path string) map[string]int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	return doc.Counters
}

// TestCacheWarmSuiteByteIdentical is the ISSUE's acceptance test: a
// warm quick-suite run must hit the cache for all 31 experiments and
// render stdout byte-for-byte identical to the cold run, at -jobs 1 and
// -jobs 8 alike.
func TestCacheWarmSuiteByteIdentical(t *testing.T) {
	cacheDir := t.TempDir()
	metricsDir := t.TempDir()

	cold, coldErr, err := runCLI(t, "all", "-quick", "-seed", "7", "-jobs", "4",
		"-cache-dir", cacheDir, "-metrics", filepath.Join(metricsDir, "cold.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coldErr, "cache: 0 hits, 31 misses, 31 stores") {
		t.Fatalf("cold stderr missing cache line:\n%s", coldErr)
	}
	c := metricsCounters(t, filepath.Join(metricsDir, "cold.json"))
	if c["rescache.hits"] != 0 || c["rescache.misses"] != 31 || c["rescache.stores"] != 31 {
		t.Fatalf("cold counters hits=%d misses=%d stores=%d, want 0/31/31",
			c["rescache.hits"], c["rescache.misses"], c["rescache.stores"])
	}

	for _, jobs := range []string{"1", "8"} {
		warm, warmErr, err := runCLI(t, "all", "-quick", "-seed", "7", "-jobs", jobs,
			"-cache-dir", cacheDir, "-metrics", filepath.Join(metricsDir, "warm.json"))
		if err != nil {
			t.Fatal(err)
		}
		if warm != cold {
			t.Fatalf("warm stdout (jobs=%s) differs from cold run", jobs)
		}
		if !strings.Contains(warmErr, "cache: 31 hits, 0 misses, 0 stores") {
			t.Fatalf("warm stderr (jobs=%s) missing all-hits cache line:\n%s", jobs, warmErr)
		}
		// Each runCLI call is a fresh process image: the memory tier
		// starts empty, so warm hits are served (and labelled) by the
		// filesystem tier.
		if !strings.Contains(warmErr, "ok (cached fs)") {
			t.Fatalf("warm stderr (jobs=%s) missing cached status:\n%s", jobs, warmErr)
		}
		c := metricsCounters(t, filepath.Join(metricsDir, "warm.json"))
		if c["rescache.hits"] != 31 || c["rescache.misses"] != 0 {
			t.Fatalf("warm counters (jobs=%s) hits=%d misses=%d, want 31/0",
				jobs, c["rescache.hits"], c["rescache.misses"])
		}
		if c["runner.attempts"] != 0 {
			t.Fatalf("warm run (jobs=%s) still ran %d attempts", jobs, c["runner.attempts"])
		}
	}
}

// TestCacheSeedChangeRecomputes: a different -seed must miss every
// entry stored under the old one.
func TestCacheSeedChangeRecomputes(t *testing.T) {
	cacheDir := t.TempDir()
	if _, _, err := runCLI(t, "e05", "-quick", "-seed", "7", "-cache-dir", cacheDir); err != nil {
		t.Fatal(err)
	}
	_, errb, err := runCLI(t, "e05", "-quick", "-seed", "8", "-cache-dir", cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb, "cache: 0 hits, 1 misses, 1 stores") {
		t.Fatalf("seed change did not recompute:\n%s", errb)
	}
}

// TestCacheCorruptionRecovers: truncated or garbage cache files slow
// the run down to a recompute but never fail it or change its output.
func TestCacheCorruptionRecovers(t *testing.T) {
	cacheDir := t.TempDir()
	out1, _, err := runCLI(t, "e05", "-quick", "-seed", "7", "-cache-dir", cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written (err=%v)", err)
	}
	for _, path := range entries {
		if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out2, errb, err := runCLI(t, "e05", "-quick", "-seed", "7", "-cache-dir", cacheDir)
	if err != nil {
		t.Fatalf("corrupted cache failed the run: %v\n%s", err, errb)
	}
	if out2 != out1 {
		t.Fatal("corrupted cache changed the output")
	}
	if !strings.Contains(errb, "cache: 0 hits, 1 misses, 1 stores") {
		t.Fatalf("corrupted entry not recomputed and healed:\n%s", errb)
	}
	out3, errb, err := runCLI(t, "e05", "-quick", "-seed", "7", "-cache-dir", cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if out3 != out1 || !strings.Contains(errb, "cache: 1 hits, 0 misses, 0 stores") {
		t.Fatalf("healed entry did not hit:\n%s", errb)
	}
}

// TestNoCacheFlagDisables: -no-cache runs print no cache line and
// leave the cache directory untouched.
func TestNoCacheFlagDisables(t *testing.T) {
	_, errb, err := runCLI(t, "e05", "-quick", "-no-cache")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(errb, "cache:") {
		t.Fatalf("-no-cache still printed a cache line:\n%s", errb)
	}
}
