package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilience/internal/obs"
	"resilience/internal/servertest"
)

// newServeTest boots the HTTP service exactly as `resilience serve`
// wires it — full registry, observer, fresh cache — via the shared
// internal/servertest helper, and returns the base URL plus the
// observer for counter assertions.
func newServeTest(t *testing.T) (string, *obs.Observer) {
	t.Helper()
	n := servertest.Boot(t)
	return n.URL, n.Obs
}

func httpGet(t *testing.T, url string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

func httpPost(t *testing.T, url, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(out)
}

// checkGolden compares got against the committed golden file, honoring
// the package-wide -update flag (golden_test.go).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "http", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("HTTP response drifted from %s at line %d:\n got: %q\nwant: %q\n"+
				"If the change is intentional, rerun with -update.", path, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("HTTP response drifted from %s: got %d lines, want %d. "+
		"If the change is intentional, rerun with -update.", path, len(gotLines), len(wantLines))
}

// TestServeExperimentsGolden pins GET /v1/experiments to a golden file
// and asserts it is byte-identical to the CLI catalogue
// (`resilience list -format json`): one schema, two transports.
func TestServeExperimentsGolden(t *testing.T) {
	url, _ := newServeTest(t)
	code, _, body := httpGet(t, url+"/v1/experiments")
	if code != 200 {
		t.Fatalf("GET /v1/experiments status %d", code)
	}
	checkGolden(t, "experiments.golden", body)

	cli, _, err := runCLI(t, "list", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	if body != cli {
		t.Fatal("GET /v1/experiments differs from `resilience list -format json`")
	}
}

// TestServeRunGolden pins POST /v1/run/{id} bodies for a representative
// experiment set — staged and unstaged, with and without a fault plan —
// to committed golden files, and asserts each body is byte-identical to
// the CLI's `-format json` output for the same seed and plan. The run
// metadata (cache/degradation status, attempt count) lives in
// X-Resilience-* headers precisely so these bodies stay deterministic.
func TestServeRunGolden(t *testing.T) {
	plan, err := os.ReadFile(filepath.Join("..", "..", "testdata", "plan.json"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		id      string
		body    string
		golden  string
		status  string
		cliArgs []string
	}{
		{
			// e08 runs as a plain single-stage experiment.
			name:    "unstaged",
			id:      "e08",
			body:    `{"seed":42,"quick":true}`,
			golden:  "run_e08_seed42.golden",
			status:  "ok",
			cliArgs: []string{"e08", "-quick", "-seed", "42", "-format", "json"},
		},
		{
			// e02 goes through the staged engine.
			name:    "staged",
			id:      "e02",
			body:    `{"seed":42,"quick":true}`,
			golden:  "run_e02_seed42.golden",
			status:  "ok",
			cliArgs: []string{"e02", "-quick", "-seed", "42", "-format", "json"},
		},
		{
			// The canonical smoke plan injects a body fault on e02's first
			// attempt; the run recovers on attempt 2 and reports degraded.
			name:   "fault-plan-degraded",
			id:     "e02",
			body:   fmt.Sprintf(`{"seed":7,"quick":true,"plan":%s}`, plan),
			golden: "run_e02_seed7_fault.golden",
			status: "ok (degraded, 2 attempts)",
			cliArgs: []string{"e02", "-quick", "-seed", "7",
				"-faults", filepath.Join("..", "..", "testdata", "plan.json"),
				"-format", "json"},
		},
	}
	url, _ := newServeTest(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, hdr, body := httpPost(t, url+"/v1/run/"+tc.id, tc.body)
			if code != 200 {
				t.Fatalf("status %d: %s", code, body)
			}
			if got := hdr.Get("X-Resilience-Status"); got != tc.status {
				t.Fatalf("X-Resilience-Status %q, want %q", got, tc.status)
			}
			checkGolden(t, tc.golden, body)

			cli, _, err := runCLI(t, tc.cliArgs...)
			if err != nil {
				t.Fatal(err)
			}
			if body != cli {
				t.Fatalf("HTTP body differs from CLI %v output", tc.cliArgs)
			}
		})
	}
}

// TestServeSuiteGolden pins a POST /v1/suite subset run: an NDJSON
// stream with one compact Result document per requested experiment, in
// request order, plus the warm-repeat byte-identity the acceptance
// criteria demand.
func TestServeSuiteGolden(t *testing.T) {
	url, o := newServeTest(t)
	req := `{"seed":42,"quick":true,"ids":["e08","e02","e01"]}`
	code, hdr, cold := httpPost(t, url+"/v1/suite", req)
	if code != 200 {
		t.Fatalf("POST /v1/suite status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("suite Content-Type %q", ct)
	}
	checkGolden(t, "suite_subset.golden", cold)

	_, _, warm := httpPost(t, url+"/v1/suite", req)
	if warm != cold {
		t.Fatal("warm suite body differs from cold run")
	}
	if hits := o.Metrics.Counter("rescache.hits").Value(); hits != 3 {
		t.Fatalf("rescache.hits = %d, want 3 (warm subset fully cached)", hits)
	}
}
