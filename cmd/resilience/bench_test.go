package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilience/internal/servertest"
)

// TestBenchCLI drives `resilience bench` end to end against an
// in-process daemon: report JSON on stdout, a well-formed trajectory
// row in -bench-out, exit success under a generous SLO — and a non-nil
// error (the non-zero exit) when the budget is impossible.
func TestBenchCLI(t *testing.T) {
	n := servertest.Boot(t)
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")

	stdout, stderr, err := runCLI(t, "bench",
		"-target", n.URL,
		"-requests", "30", "-clients", "2", "-quick",
		"-ids", "e01,e02", "-seed", "7",
		"-slo", `{"maxErrorRatio":0}`,
		"-bench-out", out)
	if err != nil {
		t.Fatalf("bench failed: %v\nstderr: %s", err, stderr)
	}
	var report struct {
		Schema   string           `json:"schema"`
		Sent     int64            `json:"sent"`
		Statuses map[string]int64 `json:"statuses"`
		Verdict  struct {
			Pass bool `json:"pass"`
		} `json:"verdict"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout)
	}
	if report.Schema != "resilience-bench/1" || report.Sent != 30 || !report.Verdict.Pass {
		t.Fatalf("report %+v", report)
	}
	if !strings.Contains(stderr, "appended trajectory row") {
		t.Fatalf("stderr missing trajectory note: %s", stderr)
	}

	var traj struct {
		Benchmark  string `json:"benchmark"`
		DataPoints []struct {
			Sent    int64 `json:"sent"`
			SLOPass bool  `json:"slo_pass"`
		} `json:"data_points"`
	}
	if _, _, err := runCLI(t, "bench", "-target", n.URL, "-requests", "4",
		"-quick", "-ids", "e01", "-bench-out", out); err != nil {
		t.Fatalf("second bench failed: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &traj); err != nil {
		t.Fatalf("trajectory is not JSON: %v", err)
	}
	if traj.Benchmark != "BenchServeLoad" || len(traj.DataPoints) != 2 ||
		traj.DataPoints[0].Sent != 30 || !traj.DataPoints[0].SLOPass {
		t.Fatalf("trajectory %+v", traj)
	}

	// An impossible budget must surface as a command error (non-zero
	// exit) while the report still lands on stdout for the post-mortem.
	stdout, _, err = runCLI(t, "bench", "-target", n.URL, "-requests", "4",
		"-quick", "-ids", "e01", "-bench-out", "",
		"-slo", `{"minThroughput":1e9}`)
	if err == nil || !strings.Contains(err.Error(), "SLO verdict failed") {
		t.Fatalf("impossible SLO: err = %v", err)
	}
	if !strings.Contains(stdout, `"pass": false`) {
		t.Fatalf("failing report missing from stdout: %s", stdout)
	}
}

// TestBenchCLIBadInputs: malformed budgets and plans fail before any
// load is generated.
func TestBenchCLIBadInputs(t *testing.T) {
	n := servertest.Boot(t)
	for name, args := range map[string][]string{
		"bad slo json":    {"bench", "-target", n.URL, "-ids", "e01", "-slo", `{"p99":1}`},
		"missing slo":     {"bench", "-target", n.URL, "-ids", "e01", "-slo", "no/such/file.json"},
		"bad chaos plan":  {"bench", "-target", n.URL, "-ids", "e01", "-chaos-plan", `{"strikes":[]}`},
		"dead target":     {"bench", "-target", "http://127.0.0.1:1", "-ids", "e01", "-requests", "1", "-bench-out", ""},
		"discovery fails": {"bench", "-target", "http://127.0.0.1:1"},
	} {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("%s: ran, want error", name)
		}
	}
}
