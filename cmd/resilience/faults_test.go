package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePlan drops a fault-plan document into a temp file.
func writePlan(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFaultedSuiteByteIdenticalAcrossJobs is the acceptance check on the
// committed canonical plan: same seed + same plan ⇒ byte-identical
// stdout at -jobs 1 and -jobs 8, with the injected faults recovered and
// annotated.
func TestFaultedSuiteByteIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	plan := "../../testdata/plan.json"
	j1, _, err := runCLI(t, "all", "-quick", "-seed", "7", "-faults", plan, "-jobs", "1")
	if err != nil {
		t.Fatal(err)
	}
	j8, err8, err := runCLI(t, "all", "-quick", "-seed", "7", "-faults", plan, "-jobs", "8")
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j8 {
		t.Fatal("faulted suite stdout differs between -jobs 1 and -jobs 8")
	}
	if got := strings.Count(j1, "degraded: recovered"); got != 2 {
		t.Fatalf("want 2 degraded annotations (e02, e05), got %d", got)
	}
	if !strings.Contains(err8, "31 passed / 0 failed") {
		t.Fatalf("recovered suite should pass:\n%s", err8)
	}
	if !strings.Contains(err8, "recovery: 2 degraded, 2 retries") {
		t.Fatalf("stderr missing recovery scalars:\n%s", err8)
	}
}

// TestPanicPlanRendersRestNonZeroExit: an unrecoverable panic in one
// experiment still yields a rendered report for the other 30 plus a
// non-zero exit and recovery scalars.
func TestPanicPlanRendersRestNonZeroExit(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	out, errOut, err := runCLI(t, "all", "-quick", "-seed", "7", "-faults", "../../testdata/panic-plan.json")
	if err == nil || !strings.Contains(err.Error(), "e05") {
		t.Fatalf("want failure naming e05, got %v", err)
	}
	if got := strings.Count(out, "== e"); got != 31 {
		t.Fatalf("want all 31 sections rendered, got %d", got)
	}
	if !strings.Contains(out, "ERROR: panic: faultinject: hard crash on every attempt") {
		t.Fatal("faulted section missing its ERROR line")
	}
	if !strings.Contains(errOut, "30 passed / 1 failed") {
		t.Fatalf("summary wrong:\n%s", errOut)
	}
	if !strings.Contains(errOut, "recovery: 0 degraded, 1 retries") {
		t.Fatalf("stderr missing recovery scalars:\n%s", errOut)
	}
}

// TestChaosSubcommand: `resilience chaos PLAN` is the suite under the
// plan, equivalent to `all -faults PLAN`.
func TestChaosSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	viaChaos, _, err := runCLI(t, "chaos", "../../testdata/plan.json", "-quick", "-seed", "7", "-jobs", "4")
	if err != nil {
		t.Fatal(err)
	}
	viaFlag, _, err := runCLI(t, "all", "-quick", "-seed", "7", "-faults", "../../testdata/plan.json", "-jobs", "4")
	if err != nil {
		t.Fatal(err)
	}
	if viaChaos != viaFlag {
		t.Fatal("chaos subcommand and all -faults disagree")
	}
}

func TestChaosUsageErrors(t *testing.T) {
	if _, _, err := runCLI(t, "chaos"); err == nil {
		t.Error("want usage error for missing plan path")
	}
	if _, _, err := runCLI(t, "chaos", "/nonexistent-plan.json"); err == nil {
		t.Error("want error for missing plan file")
	}
	bad := writePlan(t, `{"faults":[{"experiment":"e01","kind":"explode"}]}`)
	if _, _, err := runCLI(t, "chaos", bad); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("want plan validation error, got %v", err)
	}
}

// TestSingleExperimentWithFaults: -faults composes with single-ID runs,
// and a timeout plan degrades rather than fails when the retry lands.
func TestSingleExperimentWithFaults(t *testing.T) {
	plan := writePlan(t, `{"retries":1,"timeoutMs":5000,"faults":[
		{"experiment":"e01","kind":"error","attempt":1,"message":"single-run fault"}]}`)
	out, errOut, err := runCLI(t, "e01", "-quick", "-seed", "3", "-faults", plan)
	if err != nil {
		t.Fatalf("%v\n%s", err, errOut)
	}
	if !strings.Contains(out, "degraded: recovered on attempt 2 (1 retry)") {
		t.Fatalf("missing degraded annotation:\n%s", out)
	}
	if !strings.Contains(errOut, "ok (degraded, 2 attempts)") {
		t.Fatalf("stderr missing degraded status:\n%s", errOut)
	}
	// And the degraded scalars ride along in JSON output.
	jsonOut, _, err := runCLI(t, "e01", "-quick", "-seed", "3", "-faults", plan, "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut, `"name": "degraded"`) || !strings.Contains(jsonOut, `"name": "retries"`) {
		t.Fatalf("JSON output missing degraded/retries scalars:\n%s", jsonOut)
	}
}
