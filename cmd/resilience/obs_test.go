package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"resilience/internal/obs"
)

// TestParseInterleavedDoubleDash is the regression for the "--"
// terminator: positional arguments after "--" must not be re-parsed as
// flags, wherever the terminator sits.
func TestParseInterleavedDoubleDash(t *testing.T) {
	for _, tc := range []struct {
		args []string
		seed uint64
		pos  []string
	}{
		{[]string{"--", "-starts-with-dash"}, 42, []string{"-starts-with-dash"}},
		{[]string{"-seed", "7", "--", "-x"}, 7, []string{"-x"}},
		{[]string{"-seed", "7", "--", "-x", "-y"}, 7, []string{"-x", "-y"}},
		{[]string{"a", "--", "-seed", "9"}, 42, []string{"a", "-seed", "9"}},
		{[]string{"--", "-seed", "9"}, 42, []string{"-seed", "9"}},
		{[]string{"-seed", "7", "--"}, 7, nil},
		{[]string{"--"}, 42, nil},
		// Only the first "--" terminates; later ones are positional.
		{[]string{"--", "a", "--", "b"}, 42, []string{"a", "--", "b"}},
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		seed := fs.Uint64("seed", 42, "")
		pos, err := parseInterleaved(fs, tc.args)
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if *seed != tc.seed || !reflect.DeepEqual(pos, tc.pos) {
			t.Errorf("%v: seed=%d pos=%v, want seed=%d pos=%v", tc.args, *seed, pos, tc.seed, tc.pos)
		}
	}
}

// TestFmtBytesBoundaries pins fmtBytes at the unit boundaries.
func TestFmtBytesBoundaries(t *testing.T) {
	for _, tc := range []struct {
		n    uint64
		want string
	}{
		{0, "0B"},
		{1023, "1023B"},
		{1 << 10, "1.0KiB"},
		{(1 << 20) - 1, "1024.0KiB"},
		{1 << 20, "1.0MiB"},
		{(1 << 30) - 1, "1024.0MiB"},
		{1 << 30, "1.0GiB"},
		{3 << 30, "3.0GiB"},
	} {
		if got := fmtBytes(tc.n); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

// readMetrics parses a -metrics document from disk.
func readMetrics(t *testing.T, path string) obs.Document {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics document is not valid JSON: %v", err)
	}
	return doc
}

// TestMetricsSuiteDeterministic is the acceptance check for the
// observability layer: with -metrics enabled, stdout stays
// byte-identical across -jobs AND identical to a run without -metrics,
// and the deterministic counter section of the document matches across
// worker counts.
func TestMetricsSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	dir := t.TempDir()
	m1, m8 := filepath.Join(dir, "m1.json"), filepath.Join(dir, "m8.json")
	j1, _, err := runCLI(t, "all", "-quick", "-seed", "42", "-jobs", "1", "-metrics", m1)
	if err != nil {
		t.Fatal(err)
	}
	j8, err8, err := runCLI(t, "all", "-quick", "-seed", "42", "-jobs", "8", "-metrics", m8)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j8 {
		t.Fatal("suite stdout differs between -jobs 1 and -jobs 8 with -metrics enabled")
	}
	plain, _, err := runCLI(t, "all", "-quick", "-seed", "42", "-jobs", "8")
	if err != nil {
		t.Fatal(err)
	}
	if j8 != plain {
		t.Fatal("-metrics changed stdout")
	}
	d1, d8 := readMetrics(t, m1), readMetrics(t, m8)
	if d1.Schema != obs.SchemaVersion {
		t.Fatalf("schema %q, want %q", d1.Schema, obs.SchemaVersion)
	}
	if !reflect.DeepEqual(d1.Counters, d8.Counters) {
		t.Fatalf("deterministic counters differ between -jobs 1 and -jobs 8:\n%v\n%v", d1.Counters, d8.Counters)
	}
	for name, want := range map[string]int64{
		"runner.experiments": 31,
		"runner.attempts":    31,
		"runner.passed":      31,
		"runner.failed":      0,
		"runner.retries":     0,
		"runner.degraded":    0,
		"runner.seam.worker": 31,
		"runner.seam.body":   31,
	} {
		if d1.Counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, d1.Counters[name], want)
		}
	}
	if len(d1.Histograms) == 0 || len(d1.Spans) == 0 {
		t.Fatal("metrics document missing timing-bearing sections (histograms/spans)")
	}
	// 1 suite + 31 experiments + 31 attempts.
	if got := len(d8.Spans); got != 63 {
		t.Fatalf("%d spans, want 63", got)
	}
	if !strings.Contains(err8, "metrics: 31 attempts, 0 retries, 0 timeouts, 0 strikes, 0 degraded, 0 leaked goroutines") {
		t.Fatalf("stderr missing the deterministic metrics section:\n%s", err8)
	}
}

// TestMetricsUnderFaultPlan: the canonical plan's injections show up as
// seed-deterministic counters.
func TestMetricsUnderFaultPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	path := filepath.Join(t.TempDir(), "m.json")
	_, errOut, err := runCLI(t, "chaos", "../../testdata/plan.json",
		"-quick", "-seed", "7", "-jobs", "8", "-metrics", path)
	if err != nil {
		t.Fatal(err)
	}
	doc := readMetrics(t, path)
	for name, want := range map[string]int64{
		"runner.attempts":                          33,
		"runner.retries":                           2,
		"runner.degraded":                          2,
		"runner.passed":                            31,
		"faultinject.strikes":                      4,
		"faultinject.strikes.body.error":           1,
		"faultinject.strikes.worker.panic":         1,
		"faultinject.strikes.dcsp/generate.rng":    1,
		"faultinject.strikes.graph/generate.delay": 1,
	} {
		if doc.Counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, doc.Counters[name], want)
		}
	}
	if !strings.Contains(errOut, "metrics: 33 attempts, 2 retries, 0 timeouts, 4 strikes, 2 degraded, 0 leaked goroutines") {
		t.Fatalf("stderr metrics section wrong:\n%s", errOut)
	}
}

// TestProfileFlags: -cpuprofile and -memprofile write non-empty pprof
// files without touching stdout.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "heap.pprof")
	out, _, err := runCLI(t, "e08", "-quick", "-seed", "42", "-cpuprofile", cpu, "-memprofile", mem)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := runCLI(t, "e08", "-quick", "-seed", "42")
	if err != nil {
		t.Fatal(err)
	}
	if out != plain {
		t.Fatal("profiling changed stdout")
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty: %v", p, err)
		}
	}
	if _, _, err := runCLI(t, "e08", "-quick", "-cpuprofile", filepath.Join(dir, "no", "cpu.pprof")); err == nil {
		t.Fatal("want error for uncreatable cpu profile path")
	}
	if _, _, err := runCLI(t, "e08", "-quick", "-metrics", filepath.Join(dir, "no", "m.json")); err == nil {
		t.Fatal("want error for uncreatable metrics path")
	}
}
