// Command resilience runs the paper-reproduction experiments indexed in
// DESIGN.md and EXPERIMENTS.md.
//
// Usage:
//
//	resilience list                 # list all experiments
//	resilience <id> [flags]         # run one experiment (e.g. e05)
//	resilience all [flags]          # run every experiment
//	resilience bok                  # print the resilience strategy catalogue
//	resilience scenario FILE.json   # run a declarative chaos scenario
//	resilience chaos PLAN.json      # run the suite under a fault-injection plan
//	resilience campaign SPEC.json   # sweep a campaign spec's scenario grid
//	resilience serve [flags]        # long-running HTTP experiment service
//
// Flags (accepted before or after positional arguments):
//
//	-seed N       root random seed (default 42); each experiment runs with
//	              a seed derived from it, so single runs reproduce suite rows
//	-quick        shrink workloads for a fast smoke run
//	-jobs N       run up to N experiments concurrently (default GOMAXPROCS)
//	-format F     output format: text (default) or json
//	-out DIR      also write one JSON result file per experiment to DIR
//	-faults FILE  inject faults from a JSON plan (see internal/faultinject);
//	              the plan also enables per-attempt timeouts and retries
//	-metrics F    write a JSON metrics document (internal/obs) to F and
//	              print a deterministic-counter metrics line on stderr
//	-cpuprofile F write a pprof CPU profile of the run to F
//	-memprofile F write a pprof heap profile after the run to F
//	-cache-dir D  store results in D instead of the default
//	              <user cache dir>/resilience
//	-no-cache     disable the result cache (always recompute)
//	-cache-mem-entries N
//	              size of the in-memory cache tier in entries
//	              (default 1024; 0 disables the tier)
//	-peers URLS   comma-separated base URLs of peer cache nodes; adds a
//	              read-through tier over the fleet's caches, routed by
//	              consistent hash
//
// Serve-only flags:
//
//	-addr A             listen address (default 127.0.0.1:8080)
//	-request-timeout D  end-to-end bound on one request (default 60s)
//	-max-inflight N     max runs computing concurrently (default GOMAXPROCS)
//	-advertise URL      this node's base URL on the peer ring
//	                    (default http://<addr>)
//	-adapt              run the MAPE-K controller (internal/adapt): the
//	                    daemon sheds load with 429s, forces quick runs,
//	                    and serves cache-only as pressure mounts, moving
//	                    between normal/pressured/emergency modes
//	-adapt-interval D   control-loop tick interval (default 250ms)
//
// Results are cached content-addressed (internal/rescache) under a key
// of experiment ID, derived seed, -quick, the fault plan's hash, and
// the engine schema version; a warm run renders byte-identical output
// while skipping the cached experiments' compute. Storage is tiered:
// a bounded in-memory LRU over the cache directory, plus — with -peers
// — the fleet's nodes over HTTP. In serve mode -peers makes the node a
// ring coordinator: each request's cache digest is consistent-hashed
// across the fleet and proxied to its owner, so an identical-request
// herd computes once fleet-wide.
//
// Rendered results go to stdout and are byte-identical for a given seed
// whatever -jobs is — including under a fault plan, whose injections are
// seed- and plan-deterministic, and with -metrics enabled; per-experiment
// timing, the suite summary, recovery scalars, and the metrics section go
// to stderr. A literal "--" ends flag parsing; later arguments are
// positional even if they begin with "-".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"resilience/internal/adapt"
	"resilience/internal/cluster"
	"resilience/internal/core"
	"resilience/internal/experiments"
	"resilience/internal/faultinject"
	"resilience/internal/obs"
	"resilience/internal/rescache"
	"resilience/internal/rescache/fsstore"
	"resilience/internal/rescache/memstore"
	"resilience/internal/rescache/peerstore"
	"resilience/internal/runner"
	"resilience/internal/scenario"
	"resilience/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

// options are the flags shared by every subcommand.
type options struct {
	seed       uint64
	quick      bool
	jobs       int
	format     string
	outDir     string
	faults     string
	metrics    string
	cpuprofile string
	memprofile string
	cacheDir   string
	noCache    bool
	memEntries int
	peers      string

	// serve-only flags.
	addr           string
	requestTimeout time.Duration
	maxInflight    int
	advertise      string
	adapt          bool
	adaptInterval  time.Duration

	// bench-only flags.
	target        string
	clients       int
	benchDuration time.Duration
	benchRequests int64
	repeatRatio   float64
	suiteRatio    float64
	ids           string
	slo           string
	chaosPlan     string
	benchOut      string
}

// parseInterleaved parses args with fs, allowing flags and positional
// arguments in any order (the stdlib stops at the first positional).
// The first "--" terminates flag parsing: everything after it is
// positional even if it starts with "-". It returns the positional
// arguments in their original order.
func parseInterleaved(fs *flag.FlagSet, args []string) ([]string, error) {
	var tail []string
	for i, a := range args {
		if a == "--" {
			tail = args[i+1:]
			args = args[:i]
			break
		}
	}
	var positional []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		rest := fs.Args()
		if len(rest) == 0 {
			break
		}
		positional = append(positional, rest[0])
		args = rest[1:]
	}
	return append(positional, tail...), nil
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stdout)
		return fmt.Errorf("missing command")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var opt options
	fs.Uint64Var(&opt.seed, "seed", 42, "root random seed")
	fs.BoolVar(&opt.quick, "quick", false, "shrink workloads for a fast run")
	fs.IntVar(&opt.jobs, "jobs", runtime.GOMAXPROCS(0), "max experiments running concurrently")
	fs.StringVar(&opt.format, "format", "text", "output format: text or json")
	fs.StringVar(&opt.outDir, "out", "", "directory for per-experiment JSON result files")
	fs.StringVar(&opt.faults, "faults", "", "fault-injection plan (JSON file)")
	fs.StringVar(&opt.metrics, "metrics", "", "write a JSON metrics document (counters, histograms, spans) to this file")
	fs.StringVar(&opt.cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&opt.memprofile, "memprofile", "", "write a pprof heap profile after the run to this file")
	fs.StringVar(&opt.cacheDir, "cache-dir", "", "result cache directory (default <user cache dir>/resilience)")
	fs.BoolVar(&opt.noCache, "no-cache", false, "disable the result cache")
	fs.IntVar(&opt.memEntries, "cache-mem-entries", 1024, "in-memory cache tier size in entries (0 disables the tier)")
	fs.StringVar(&opt.peers, "peers", "", "comma-separated base URLs of peer cache nodes (e.g. http://host:8080)")
	fs.StringVar(&opt.addr, "addr", "127.0.0.1:8080", "serve: listen address")
	fs.DurationVar(&opt.requestTimeout, "request-timeout", server.DefaultRequestTimeout, "serve: end-to-end bound on one request")
	fs.IntVar(&opt.maxInflight, "max-inflight", runtime.GOMAXPROCS(0), "serve: max experiment runs computing concurrently")
	fs.StringVar(&opt.advertise, "advertise", "", "serve: this node's base URL on the peer ring (default http://<addr>)")
	fs.BoolVar(&opt.adapt, "adapt", false, "serve: run the MAPE-K mode controller (shed/quick/cache-only under pressure)")
	fs.DurationVar(&opt.adaptInterval, "adapt-interval", 250*time.Millisecond, "serve: control-loop tick interval")
	fs.StringVar(&opt.target, "target", "http://127.0.0.1:8080", "bench: base URL of the serve endpoint under load")
	fs.IntVar(&opt.clients, "clients", 4, "bench: closed-loop virtual clients")
	fs.DurationVar(&opt.benchDuration, "duration", 0, "bench: wall-clock budget (default 10s unless -requests is set)")
	fs.Int64Var(&opt.benchRequests, "requests", 0, "bench: stop after this many requests (0 = duration-bounded)")
	fs.Float64Var(&opt.repeatRatio, "repeat-ratio", 0.5, "bench: fraction of requests reusing hot keys (cache/coalescer pressure)")
	fs.Float64Var(&opt.suiteRatio, "suite-ratio", 0, "bench: fraction of requests sent to /v1/suite")
	fs.StringVar(&opt.ids, "ids", "", "bench: comma-separated experiment IDs (default: discover via GET /v1/experiments)")
	fs.StringVar(&opt.slo, "slo", "", "bench: SLO budget, inline JSON (starts with '{') or a file path")
	fs.StringVar(&opt.chaosPlan, "chaos-plan", "", "bench: chaos timeline, inline JSON (starts with '{') or a file path")
	fs.StringVar(&opt.benchOut, "bench-out", "BENCH_serve.json", "bench: trajectory file to append the summary to (\"\" disables)")
	positional, err := parseInterleaved(fs, args[1:])
	if err != nil {
		return err
	}
	switch cmd {
	case "help", "-h", "--help":
		usage(stdout)
		return nil
	case "list":
		return list(stdout, opt)
	case "bok":
		return bok(stdout, opt)
	case "scenario":
		if len(positional) != 1 {
			return fmt.Errorf("usage: resilience scenario <file.json> [-seed N] [-format text|json]")
		}
		return runScenario(stdout, positional[0], opt)
	case "all":
		return runSuite(stdout, stderr, experiments.All(), opt)
	case "serve":
		return serve(stderr, opt)
	case "bench":
		return runBench(stdout, stderr, opt)
	case "chaos":
		if len(positional) != 1 {
			return fmt.Errorf("usage: resilience chaos <plan.json> [-seed N] [-quick] [-jobs N]")
		}
		opt.faults = positional[0]
		return runSuite(stdout, stderr, experiments.All(), opt)
	case "campaign":
		if len(positional) != 1 {
			return fmt.Errorf("usage: resilience campaign <spec.json|-> [-jobs N] [-out DIR] [-format ndjson|json|summary]")
		}
		return runCampaign(stdout, stderr, positional[0], opt)
	default:
		e, ok := experiments.Find(cmd)
		if !ok {
			usage(stdout)
			return fmt.Errorf("unknown command %q", cmd)
		}
		return runSuite(stdout, stderr, []experiments.Experiment{e}, opt)
	}
}

// runSuite executes the experiments on the parallel runner, renders the
// results to stdout in ID order, and reports progress and the final
// summary on stderr. Failures are isolated: every experiment runs, and
// the command exits non-zero at the end if any failed.
func runSuite(stdout, stderr io.Writer, exps []experiments.Experiment, opt options) error {
	render, err := experiments.NewRenderer(opt.format)
	if err != nil {
		return err
	}
	if opt.outDir != "" {
		if err := os.MkdirAll(opt.outDir, 0o755); err != nil {
			return err
		}
	}
	ropts := runner.Options{Jobs: opt.jobs, Seed: opt.seed, Quick: opt.quick}
	var observer *obs.Observer
	if opt.metrics != "" {
		observer = obs.New()
		ropts.Obs = observer
	}
	var plan *faultinject.Plan
	if opt.faults != "" {
		plan, err = faultinject.LoadFile(opt.faults)
		if err != nil {
			return err
		}
		plan.SetObserver(observer)
		ropts.Hooks = plan.HookFor
		ropts.Retries = plan.Retries
		ropts.Backoff = plan.Backoff()
		ropts.Timeout = plan.Timeout()
		fmt.Fprintf(stderr, "fault plan %q: %d faults, retries=%d, backoff=%v, timeout=%v\n",
			plan.Name, len(plan.Faults), plan.Retries, plan.Backoff(), plan.Timeout())
	}
	cache := openCache(stderr, opt)
	if cache != nil {
		cache.SetObserver(observer)
		ropts.Cache = cache
		ropts.PlanHash = plan.Hash()
	}
	suite := len(exps) > 1
	var renderErr, firstErr error
	var emitted int
	emit := func(o runner.Outcome) {
		if o.Err != nil && firstErr == nil {
			firstErr = o.Err
		}
		if emitted > 0 && opt.format != "json" {
			fmt.Fprintln(stdout)
		}
		emitted++
		// JSON output reuses the canonical bytes the runner already
		// marshalled (or replayed from the cache) — indent-on-write, no
		// re-marshal. Text rendering reads the decoded Result as before.
		if opt.format == "json" && o.Canon != nil {
			if err := experiments.RenderJSONBytes(stdout, o.Canon); err != nil && renderErr == nil {
				renderErr = err
			}
		} else if err := render.Render(stdout, o.Result); err != nil && renderErr == nil {
			renderErr = err
		}
		if opt.outDir != "" {
			if err := writeArtifact(opt.outDir, o); err != nil && renderErr == nil {
				renderErr = err
			}
		}
		fmt.Fprintf(stderr, "[%s %s in %v, ~%s alloc]\n",
			o.Experiment.ID, o.Status(), o.Elapsed.Round(time.Millisecond), fmtBytes(o.AllocBytes))
	}
	var stopCPU func() error
	if opt.cpuprofile != "" {
		stopCPU, err = obs.StartCPUProfile(opt.cpuprofile)
		if err != nil {
			return err
		}
	}
	sum := runner.Run(exps, ropts, emit)
	if stopCPU != nil {
		if err := stopCPU(); err != nil {
			return err
		}
	}
	if opt.memprofile != "" {
		if err := obs.WriteHeapProfile(opt.memprofile); err != nil {
			return err
		}
	}
	if suite {
		fmt.Fprintf(stderr, "%d passed / %d failed in %v (seed %d, jobs %d)\n",
			sum.Passed, sum.Failed, sum.Elapsed.Round(time.Millisecond), opt.seed, opt.jobs)
	}
	if plan != nil {
		// Bruneau-style suite recovery scalars: how many experiments
		// degraded, how much retrying it took, and the recovery triangle
		// (time-to-recover base, quality-loss area) summed over them.
		fmt.Fprintf(stderr, "recovery: %d degraded, %d retries, time-to-recover %v, loss %.1f (quality%%·s)\n",
			sum.Degraded, sum.Retries, sum.RecoveryTime.Round(time.Millisecond), sum.RecoveryLoss)
	}
	if cache != nil {
		// Hits and coalesced are reported distinctly: a hit replayed a
		// stored result, a coalesced outcome shared a concurrent
		// identical computation without touching the store. The bracketed
		// suffix breaks the hits down by storage tier (hits/gets per
		// tier), and backend errors are appended only when there are any.
		st := cache.Stats()
		line := fmt.Sprintf("cache: %d hits, %d misses, %d stores, %d coalesced",
			st.Hits, st.Misses, st.Stores, sum.Coalesced)
		if st.Errors > 0 {
			line += fmt.Sprintf(", %d errors", st.Errors)
		}
		var tiers []string
		for _, ts := range cache.TierStats() {
			tiers = append(tiers, fmt.Sprintf("%s %d/%d", ts.Tier, ts.Hits, ts.Gets))
		}
		if len(tiers) > 0 {
			line += " [" + strings.Join(tiers, ", ") + "]"
		}
		fmt.Fprintln(stderr, line)
	}
	if observer != nil {
		if err := writeMetrics(stderr, observer, opt.metrics); err != nil {
			return err
		}
	}
	if renderErr != nil {
		return renderErr
	}
	if sum.Failed > 0 {
		if !suite {
			return firstErr
		}
		return fmt.Errorf("%d of %d experiments failed: %s",
			sum.Failed, sum.Total, strings.Join(sum.FailedIDs, ", "))
	}
	return nil
}

// splitPeers parses the -peers flag: comma-separated base URLs,
// whitespace-tolerant, trailing slashes dropped so ring members compare
// equal however the operator typed them.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildTiers constructs the storage tiers the -cache-* flags describe:
// an in-memory LRU hot tier (unless -cache-mem-entries 0) over the
// filesystem tier. Any problem degrades to fewer tiers — a smaller
// (slower, never incorrect) cache — with a warning on stderr. Both
// returns may be nil (e.g. -no-cache).
func buildTiers(stderr io.Writer, opt options) (mem, fs rescache.Store) {
	if opt.noCache {
		return nil, nil
	}
	if opt.memEntries > 0 {
		m, err := memstore.New(opt.memEntries, 0)
		if err != nil {
			fmt.Fprintf(stderr, "memory cache tier disabled: %v\n", err)
		} else {
			mem = m
		}
	}
	dir := opt.cacheDir
	if dir == "" {
		var err error
		if dir, err = rescache.DefaultDir(); err != nil {
			fmt.Fprintf(stderr, "filesystem cache tier disabled: %v\n", err)
			return mem, nil
		}
	}
	f, err := fsstore.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "filesystem cache tier disabled: %v\n", err)
		return mem, nil
	}
	return mem, f
}

// openCache assembles the result cache a one-shot run uses: the local
// tiers, plus — with -peers — a read-through tier over the fleet's
// cache nodes, routed by the same consistent hash the serve ring uses.
// The CLI is a pure client here (it is not a ring member), so every
// digest's owner is remote.
func openCache(stderr io.Writer, opt options) *rescache.Cache {
	mem, fs := buildTiers(stderr, opt)
	var peer rescache.Store
	if peers := splitPeers(opt.peers); len(peers) > 0 {
		ring := cluster.New(peers, 0)
		peer = peerstore.New(func(digest string) (string, bool) {
			o := ring.Owner(digest)
			return o, o != ""
		}, nil)
	}
	return rescache.New(rescache.Tiered(mem, fs, peer))
}

// serve runs the long-running HTTP experiment service until SIGINT or
// SIGTERM, then drains in-flight runs before exiting. Observability is
// always on in serve mode — /metrics is part of the service surface —
// with the span buffer bounded so a long-lived process cannot grow its
// trace without limit.
func serve(stderr io.Writer, opt options) error {
	observer := obs.New()
	observer.Trace.SetLimit(serveSpanLimit)
	// The node's own tiers (mem over fs) are what it serves to the fleet
	// at /v1/cache; the peer tier joins only the read path of its own
	// cache, so the cache protocol cannot loop through this node.
	mem, fsTier := buildTiers(stderr, opt)
	local := rescache.Tiered(mem, fsTier)
	self := strings.TrimRight(opt.advertise, "/")
	if self == "" {
		self = "http://" + opt.addr
	}
	var ring *cluster.Ring
	var peer rescache.Store
	if peers := splitPeers(opt.peers); len(peers) > 0 {
		ring = cluster.New(append(peers, self), 0)
		if !opt.noCache {
			r := ring
			peer = peerstore.New(func(digest string) (string, bool) {
				o := r.Owner(digest)
				return o, o != "" && o != self
			}, nil)
		}
	}
	cache := rescache.New(rescache.Tiered(mem, fsTier, peer))
	cache.SetObserver(observer)
	srv := server.New(server.Config{
		Cache:          cache,
		Local:          local,
		Ring:           ring,
		Self:           self,
		Obs:            observer,
		MaxInflight:    opt.maxInflight,
		RequestTimeout: opt.requestTimeout,
	})
	var ctrl *adapt.Controller
	if opt.adapt {
		c, err := adapt.New(adapt.Config{Target: srv, Obs: observer, Log: stderr})
		if err != nil {
			return err
		}
		ctrl = c
		// Operator overrides (POST /v1/mode) go through the controller so
		// the hysteresis ladder realigns instead of fighting them.
		srv.SetForceMode(ctrl.Force)
	}
	l, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "serve: listening on %s (max-inflight %d, request-timeout %v, cache %s)\n",
		l.Addr(), opt.maxInflight, opt.requestTimeout, cache.Desc())
	if ring != nil {
		fmt.Fprintf(stderr, "serve: ring of %d nodes (self %s)\n", ring.Size(), self)
	}
	if ctrl != nil {
		ctrl.Start(opt.adaptInterval)
		defer ctrl.Stop()
		fmt.Fprintf(stderr, "serve: adaptive mode control on (tick %v)\n", opt.adaptInterval)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
	}
	fmt.Fprintln(stderr, "serve: draining in-flight runs")
	if ctrl != nil {
		ctrl.Stop() // no mode changes mid-drain
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	st := cache.Stats()
	fmt.Fprintf(stderr, "serve: drained (%d requests, %d coalesced, %d proxied, %d shed, %d mode switches; cache %d hits, %d misses, %d stores, %d errors)\n",
		observer.Metrics.Counter("server.requests").Value(),
		observer.Metrics.Counter("server.coalesced").Value(),
		observer.Metrics.Counter("server.proxied").Value(),
		observer.Metrics.Counter("server.shed").Value(),
		observer.Metrics.Counter("server.mode.switches").Value(),
		st.Hits, st.Misses, st.Stores, st.Errors)
	return nil
}

const (
	// serveSpanLimit bounds the serve-mode trace buffer: enough recent
	// request/experiment/attempt spans to debug with, without unbounded
	// growth over a long-lived process.
	serveSpanLimit = 4096
	// drainTimeout is how long shutdown waits for in-flight runs.
	drainTimeout = 30 * time.Second
)

// writeMetrics prints the deterministic-counter metrics section on
// stderr and writes the full metrics document (counters plus the
// timing-bearing gauges, histograms, and spans) to path. The stderr
// line holds only seed/plan-deterministic counters, so it is as
// golden-stable as stdout.
func writeMetrics(stderr io.Writer, observer *obs.Observer, path string) error {
	m := observer.Metrics
	fmt.Fprintf(stderr, "metrics: %d attempts, %d retries, %d timeouts, %d strikes, %d degraded, %d leaked goroutines\n",
		m.Counter("runner.attempts").Value(),
		m.Counter("runner.retries").Value(),
		m.Counter("runner.timeouts").Value(),
		m.Counter("faultinject.strikes").Value(),
		m.Counter("runner.degraded").Value(),
		int64(m.Gauge("runner.goroutines.leaked").Value()))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := observer.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeArtifact writes one JSON result document to dir/<id>.json,
// copying the outcome's canonical bytes when it carries them.
func writeArtifact(dir string, o runner.Outcome) error {
	f, err := os.Create(filepath.Join(dir, o.Experiment.ID+".json"))
	if err != nil {
		return err
	}
	if o.Canon != nil {
		err = experiments.RenderJSONBytes(f, o.Canon)
	} else {
		err = experiments.RenderJSON(f, o.Result)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fmtBytes renders a byte count compactly for progress lines.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func list(w io.Writer, opt options) error {
	if opt.format == "json" {
		type entry struct {
			ID            string   `json:"id"`
			Title         string   `json:"title"`
			Source        string   `json:"source"`
			Modules       []string `json:"modules"`
			SupportsQuick bool     `json:"supportsQuick"`
		}
		var entries []entry
		for _, e := range experiments.All() {
			entries = append(entries, entry{e.ID, e.Title, e.Source, e.Modules, e.SupportsQuick})
		}
		return writeJSON(w, entries)
	}
	for _, e := range experiments.All() {
		quick := "quick"
		if !e.SupportsQuick {
			quick = "full "
		}
		fmt.Fprintf(w, "%s  %-55s %-14s %s  [%s]\n",
			e.ID, e.Title, e.Source, quick, strings.Join(e.Modules, " "))
	}
	return nil
}

func bok(w io.Writer, opt options) error {
	if opt.format == "json" {
		return writeJSON(w, core.Catalogue())
	}
	for _, entry := range core.Catalogue() {
		kind := "active"
		if entry.Kind.Passive() {
			kind = "passive"
		}
		fmt.Fprintf(w, "%s (%s, §%s)\n", entry.Kind, kind, entry.Section)
		fmt.Fprintf(w, "  %s\n", entry.Summary)
		for _, ex := range entry.Examples {
			fmt.Fprintf(w, "  - %s\n", ex)
		}
		fmt.Fprintf(w, "  code: %v\n", entry.Packages)
		if entry.Knob != "" {
			fmt.Fprintf(w, "  knob: %s\n", entry.Knob)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runScenario(w io.Writer, path string, opt options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := scenario.Load(f)
	if err != nil {
		return err
	}
	res, err := doc.Run(opt.seed)
	if err != nil {
		return err
	}
	rep := res.Profile.Report
	if opt.format == "json" {
		type injection struct {
			Step        int    `json:"step"`
			Description string `json:"description"`
		}
		doc := struct {
			Name           string      `json:"name"`
			Seed           uint64      `json:"seed"`
			Steps          int         `json:"steps"`
			Injections     []injection `json:"injections"`
			Loss           float64     `json:"loss"`
			Normalized     float64     `json:"normalized"`
			Robustness     float64     `json:"robustness"`
			Recovered      bool        `json:"recovered"`
			Grade          string      `json:"grade"`
			EmergencySteps int         `json:"emergencySteps"`
		}{
			Name: res.Name, Seed: opt.seed, Steps: res.Trace.Len(),
			Loss: rep.Loss, Normalized: rep.Normalized, Robustness: rep.Robustness,
			Recovered: res.Profile.Recovered, Grade: fmt.Sprintf("%v", res.Profile.Grade),
			EmergencySteps: res.EmergencySteps,
		}
		for _, inj := range res.Injections {
			doc.Injections = append(doc.Injections, injection{inj.Step, inj.Description})
		}
		return writeJSON(w, doc)
	}
	fmt.Fprintf(w, "scenario: %s (%d steps, seed %d)\n", res.Name, res.Trace.Len(), opt.seed)
	for _, inj := range res.Injections {
		fmt.Fprintf(w, "  step %3d: %s\n", inj.Step, inj.Description)
	}
	fmt.Fprintf(w, "quality  %s\n", res.Trace.Sparkline(64))
	fmt.Fprintf(w, "loss=%.1f normalized=%.4f robustness=%.1f recovered=%v grade=%s\n",
		rep.Loss, rep.Normalized, rep.Robustness, res.Profile.Recovered, res.Profile.Grade)
	if res.EmergencySteps > 0 {
		fmt.Fprintf(w, "emergency mode: %d steps\n", res.EmergencySteps)
	}
	for _, e := range rep.Episodes {
		status := fmt.Sprintf("recovered in %.0f steps", e.RecoveryTime)
		if !e.Recovered() {
			status = "NOT RECOVERED"
		}
		fmt.Fprintf(w, "episode at t=%.0f: depth %.1f, loss %.1f, %s\n",
			e.StartTime, e.Depth, e.Loss, status)
	}
	return nil
}

// writeJSON renders v as an indented JSON document.
func writeJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: resilience <command> [-seed N] [-quick] [-jobs N] [-format text|json] [-out DIR] [-faults PLAN]
                  [-metrics FILE] [-cpuprofile FILE] [-memprofile FILE] [-cache-dir DIR] [-no-cache]
                  [-cache-mem-entries N] [-peers URLS]

commands:
  list                    list all experiments (id, title, source, quick support, modules)
  all                     run every experiment on a bounded worker pool
  bok                     print the resilience strategy catalogue
  e01..e31                run one experiment
  scenario <file.json>    run a declarative chaos scenario
  chaos <plan.json>       run every experiment under a fault-injection plan
  campaign <spec.json|->  expand a campaign spec (experiments × seeds × sizes ×
                          fault plans × perturbations, internal/campaign) into
                          its scenario grid and sweep it on the worker pool:
                          one NDJSON row per scenario plus a summary document
                          with triangle-area/recovery/retry distributions and
                          diversity indices; a spec with a "search" section
                          runs the adversarial fault search instead and
                          reports the worst plan found as a replayable
                          artifact; -format ndjson streams rows (default),
                          json/summary print only the summary; -out DIR also
                          writes rows.ndjson, summary.json, worst_plan.json;
                          stdout is byte-identical at any -jobs/cache warmth
  serve                   long-running HTTP service: POST /v1/run/{id} and
                          /v1/suite run experiments (request-coalesced, cache-
                          backed); GET /v1/experiments, /v1/cluster, /healthz,
                          /readyz, /metrics; flags -addr, -request-timeout,
                          -max-inflight, -advertise; with -peers the node
                          joins a consistent-hash ring and proxies each run
                          to its cache digest's owner
  bench                   closed-loop load generator against a live serve
                          endpoint: N -clients replay a deterministic
                          /v1/run + /v1/suite mix (-suite-ratio, -repeat-ratio,
                          -ids, -seed) for -duration or -requests; reports
                          latency quantiles, throughput and the status
                          breakdown as JSON on stdout, appends a row to
                          -bench-out (default BENCH_serve.json), and exits
                          non-zero when the -slo error budget is violated;
                          -chaos-plan arms server-side fault plans, corrupts
                          cache dirs, or signals processes mid-run

Each experiment's seed is derived from -seed and its ID, so a single run
reproduces the corresponding rows of a full-suite run with the same seed.
Results go to stdout (deterministic for a seed, independent of -jobs);
timing, allocation and the pass/fail summary go to stderr. With -faults
(or chaos) the plan's injections, retries and timeouts apply; recovered
experiments render with a degraded annotation and the suite reports
Bruneau-style recovery scalars on stderr. -metrics writes a JSON metrics
document (deterministic counters plus timing-bearing histograms and
attempt spans) and -cpuprofile/-memprofile write pprof profiles; none of
them touch stdout. Results are cached content-addressed (keyed on ID,
derived seed, -quick, fault-plan hash, and engine schema version) in a
tiered store: an in-memory LRU (-cache-mem-entries) over -cache-dir,
defaulting to <user cache dir>/resilience, optionally over the fleet's
cache nodes (-peers). A warm run skips cached experiments and renders
byte-identical output. -no-cache always recomputes. A literal "--" ends
flag parsing.`)
}
