// Command resilience runs the paper-reproduction experiments indexed in
// DESIGN.md and EXPERIMENTS.md.
//
// Usage:
//
//	resilience list                 # list all experiments
//	resilience <id> [flags]         # run one experiment (e.g. e05)
//	resilience all [flags]          # run every experiment
//	resilience bok                  # print the resilience strategy catalogue
//	resilience scenario FILE.json   # run a declarative chaos scenario
//
// Flags:
//
//	-seed N    random seed (default 42)
//	-quick     shrink workloads for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"resilience/internal/core"
	"resilience/internal/experiments"
	"resilience/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		usage(w)
		return fmt.Errorf("missing command")
	}
	cmd := args[0]
	rest := args[1:]
	// Allow the scenario path before or after flags: hoist the first
	// non-flag token so `scenario file.json -seed 7` also parses.
	var positional []string
	var flagArgs []string
	for i := 0; i < len(rest); i++ {
		a := rest[i]
		if len(a) > 0 && a[0] != '-' && len(positional) == 0 && len(flagArgs) == 0 {
			positional = append(positional, a)
			continue
		}
		flagArgs = append(flagArgs, rest[i:]...)
		break
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(w)
	seed := fs.Uint64("seed", 42, "random seed")
	quick := fs.Bool("quick", false, "shrink workloads for a fast run")
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	positional = append(positional, fs.Args()...)
	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	switch cmd {
	case "help", "-h", "--help":
		usage(w)
		return nil
	case "list":
		return list(w)
	case "bok":
		return bok(w)
	case "scenario":
		if len(positional) != 1 {
			return fmt.Errorf("usage: resilience scenario <file.json> [-seed N]")
		}
		return runScenario(w, positional[0], *seed)
	case "all":
		for _, e := range experiments.All() {
			start := time.Now()
			if err := e.Run(w, cfg); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Fprintf(w, "[%s finished in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		return nil
	default:
		e, ok := experiments.Find(cmd)
		if !ok {
			usage(w)
			return fmt.Errorf("unknown command %q", cmd)
		}
		return e.Run(w, cfg)
	}
}

func list(w io.Writer) error {
	for _, e := range experiments.All() {
		fmt.Fprintf(w, "%s  %-55s %s\n", e.ID, e.Title, e.Source)
	}
	return nil
}

func bok(w io.Writer) error {
	for _, entry := range core.Catalogue() {
		kind := "active"
		if entry.Kind.Passive() {
			kind = "passive"
		}
		fmt.Fprintf(w, "%s (%s, §%s)\n", entry.Kind, kind, entry.Section)
		fmt.Fprintf(w, "  %s\n", entry.Summary)
		for _, ex := range entry.Examples {
			fmt.Fprintf(w, "  - %s\n", ex)
		}
		fmt.Fprintf(w, "  code: %v\n", entry.Packages)
		if entry.Knob != "" {
			fmt.Fprintf(w, "  knob: %s\n", entry.Knob)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runScenario(w io.Writer, path string, seed uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := scenario.Load(f)
	if err != nil {
		return err
	}
	res, err := doc.Run(seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario: %s (%d steps, seed %d)\n", res.Name, res.Trace.Len(), seed)
	for _, inj := range res.Injections {
		fmt.Fprintf(w, "  step %3d: %s\n", inj.Step, inj.Description)
	}
	fmt.Fprintf(w, "quality  %s\n", res.Trace.Sparkline(64))
	rep := res.Profile.Report
	fmt.Fprintf(w, "loss=%.1f normalized=%.4f robustness=%.1f recovered=%v grade=%s\n",
		rep.Loss, rep.Normalized, rep.Robustness, res.Profile.Recovered, res.Profile.Grade)
	if res.EmergencySteps > 0 {
		fmt.Fprintf(w, "emergency mode: %d steps\n", res.EmergencySteps)
	}
	for _, e := range rep.Episodes {
		status := fmt.Sprintf("recovered in %.0f steps", e.RecoveryTime)
		if !e.Recovered() {
			status = "NOT RECOVERED"
		}
		fmt.Fprintf(w, "episode at t=%.0f: depth %.1f, loss %.1f, %s\n",
			e.StartTime, e.Depth, e.Loss, status)
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: resilience <command> [-seed N] [-quick]

commands:
  list                    list all experiments
  all                     run every experiment
  bok                     print the resilience strategy catalogue
  e01..e31                run one experiment
  scenario <file.json>    run a declarative chaos scenario`)
}
