package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"resilience/internal/loadgen"
)

// runBench drives `resilience bench`: a closed-loop load run against a
// live serve endpoint (internal/loadgen), the full JSON report on
// stdout, progress on stderr, a trajectory row appended to -bench-out,
// and a non-nil error — hence a non-zero exit — when the SLO verdict
// fails. The verdict, not the exit of any single request, is the
// command's contract: CI gates on it.
func runBench(stdout, stderr io.Writer, opt options) error {
	target := strings.TrimRight(opt.target, "/")
	ids := splitIDs(opt.ids)
	if len(ids) == 0 {
		discovered, err := loadgen.DiscoverIDs(target)
		if err != nil {
			return fmt.Errorf("bench: discovering experiments from %s: %w", target, err)
		}
		ids = discovered
	}

	var slo *loadgen.SLO
	if opt.slo != "" {
		data, err := inlineOrFile(opt.slo)
		if err != nil {
			return fmt.Errorf("bench: reading SLO: %w", err)
		}
		if slo, err = loadgen.ParseSLO(data); err != nil {
			return err
		}
	}
	var chaos *loadgen.ChaosPlan
	if opt.chaosPlan != "" {
		data, err := inlineOrFile(opt.chaosPlan)
		if err != nil {
			return fmt.Errorf("bench: reading chaos plan: %w", err)
		}
		if chaos, err = loadgen.ParseChaos(data); err != nil {
			return err
		}
	}

	duration := opt.benchDuration
	if duration == 0 && opt.benchRequests == 0 {
		duration = 10 * time.Second
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := loadgen.Run(ctx, loadgen.Config{
		Target:   target,
		Clients:  opt.clients,
		Duration: duration,
		Requests: opt.benchRequests,
		Seed:     opt.seed,
		Mix: loadgen.Mix{
			IDs:         ids,
			SuiteRatio:  opt.suiteRatio,
			RepeatRatio: opt.repeatRatio,
			Quick:       opt.quick,
		},
		SLO:   slo,
		Chaos: chaos,
		Log:   stderr,
	})
	if err != nil {
		return err
	}
	if err := report.WriteJSON(stdout); err != nil {
		return err
	}
	if opt.benchOut != "" {
		if err := report.AppendTrajectory(opt.benchOut); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "bench: appended trajectory row to %s\n", opt.benchOut)
	}
	if !report.Verdict.Pass {
		return fmt.Errorf("bench: SLO verdict failed: %s", strings.Join(report.Verdict.Violations, "; "))
	}
	return nil
}

func splitIDs(s string) []string {
	var ids []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// inlineOrFile treats arguments starting with '{' as inline JSON and
// anything else as a file path.
func inlineOrFile(s string) ([]byte, error) {
	if strings.HasPrefix(strings.TrimSpace(s), "{") {
		return []byte(s), nil
	}
	return os.ReadFile(s)
}
