package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"resilience/internal/campaign"
	"resilience/internal/obs"
)

// runCampaign implements `resilience campaign <spec.json|->`: expand a
// campaign spec into its scenario grid, sweep it through the staged
// engine and result cache on the bounded worker pool, and stream one
// NDJSON row per scenario followed by the summary document. With a
// "search" section the spec runs in adversarial mode instead: eval
// rows stream per candidate and the summary carries the worst plan
// found as a replayable artifact.
//
// Formats: "ndjson" (and "text", the global default) stream compact
// rows plus a final summary line on stdout; "json" and "summary" print
// only the indented summary document. -out DIR additionally writes
// rows.ndjson, summary.json and — in search mode — worst_plan.json.
// Stdout is byte-identical for a given spec at any -jobs and any cache
// warmth; progress, cache and metrics lines go to stderr.
func runCampaign(stdout, stderr io.Writer, path string, opt options) error {
	switch opt.format {
	case "text", "ndjson", "json", "summary":
	default:
		return fmt.Errorf("campaign: unknown format %q (want ndjson, json or summary)", opt.format)
	}
	streamRows := opt.format == "text" || opt.format == "ndjson"
	data, err := readSpec(path)
	if err != nil {
		return err
	}
	spec, err := campaign.ParseSpec(data)
	if err != nil {
		return err
	}
	if opt.outDir != "" {
		if err := os.MkdirAll(opt.outDir, 0o755); err != nil {
			return err
		}
	}
	var observer *obs.Observer
	if opt.metrics != "" {
		observer = obs.New()
	}
	cache := openCache(stderr, opt)
	cache.SetObserver(observer)
	exec := campaign.LocalExec(cache, observer)
	cfg := campaign.RunConfig{
		Name:             spec.Name,
		DeadlineAttempts: spec.DeadlineAttempts,
		Jobs:             opt.jobs,
	}

	// Rows stream to stdout (in ndjson formats) and, with -out, to
	// rows.ndjson — one encoder per sink so a slow disk never perturbs
	// the stdout bytes.
	var rowsFile *os.File
	var sinks []*json.Encoder
	if streamRows {
		sinks = append(sinks, json.NewEncoder(stdout))
	}
	if opt.outDir != "" {
		rowsFile, err = os.Create(filepath.Join(opt.outDir, "rows.ndjson"))
		if err != nil {
			return err
		}
		defer rowsFile.Close()
		sinks = append(sinks, json.NewEncoder(rowsFile))
	}
	var emitErr error
	emitRow := func(v any) {
		for _, enc := range sinks {
			if err := enc.Encode(v); err != nil && emitErr == nil {
				emitErr = err
			}
		}
	}

	start := time.Now()
	var sum campaign.Summary
	if spec.Search != nil {
		fmt.Fprintf(stderr, "campaign %q: adversarial search, objective %s, budget %d, jobs %d\n",
			spec.Name, spec.Search.Objective, spec.Search.Budget, opt.jobs)
		sum, err = campaign.RunSearch(context.Background(), spec, nil, cfg, exec,
			func(row campaign.EvalRow) { emitRow(row) })
		if err != nil {
			return err
		}
	} else {
		scenarios, err := spec.Expand(nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "campaign %q: %d scenarios, jobs %d\n", spec.Name, len(scenarios), opt.jobs)
		sum = campaign.Run(context.Background(), scenarios, cfg, exec,
			func(row campaign.Row) { emitRow(row) })
	}

	if streamRows {
		// The summary is the stream's last NDJSON line.
		if err := json.NewEncoder(stdout).Encode(sum); err != nil {
			return err
		}
	} else if err := writeJSON(stdout, sum); err != nil {
		return err
	}
	if emitErr != nil {
		return emitErr
	}
	if rowsFile != nil {
		if err := rowsFile.Close(); err != nil {
			return err
		}
	}
	if opt.outDir != "" {
		if err := writeCampaignArtifacts(opt.outDir, sum); err != nil {
			return err
		}
	}

	fmt.Fprintf(stderr, "campaign: %d scenarios — %d ok, %d degraded, %d failed, %d shed, %d errors in %v\n",
		sum.Scenarios, sum.OK, sum.Degraded, sum.Failed, sum.Shed, sum.Errors,
		time.Since(start).Round(time.Millisecond))
	if sd := sum.Search; sd != nil {
		fmt.Fprintf(stderr, "search: best %s %.0f vs baseline %.0f (beat=%v) over %d evaluations; worst plan %s\n",
			sd.Objective, sd.Best, sd.Baseline, sd.BeatBaseline, sd.Evaluations, sd.WorstPlanHash[:12])
	}
	if cache != nil {
		st := cache.Stats()
		fmt.Fprintf(stderr, "cache: %d hits, %d misses, %d stores\n", st.Hits, st.Misses, st.Stores)
	}
	if observer != nil {
		if err := writeMetrics(stderr, observer, opt.metrics); err != nil {
			return err
		}
	}
	if sum.Errors > 0 {
		return fmt.Errorf("campaign: %d scenarios errored", sum.Errors)
	}
	return nil
}

// readSpec loads the campaign spec document: a file path, or "-" for
// stdin so specs can be piped in.
func readSpec(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// writeCampaignArtifacts writes the summary document — and, in search
// mode, the worst plan as a standalone replayable fault plan — to dir.
func writeCampaignArtifacts(dir string, sum campaign.Summary) error {
	f, err := os.Create(filepath.Join(dir, "summary.json"))
	if err != nil {
		return err
	}
	if err := writeJSON(f, sum); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if sum.Search == nil || len(sum.Search.WorstPlan) == 0 {
		return nil
	}
	return os.WriteFile(filepath.Join(dir, "worst_plan.json"),
		append(append([]byte(nil), sum.Search.WorstPlan...), '\n'), 0o644)
}
