package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"resilience/internal/campaign"
)

const campaignSpecPath = "testdata/campaign_3x3x2.json"

// TestCampaignGolden pins the 3×3×2 campaign's full NDJSON stream —
// every row plus the summary line — to a committed golden file, and
// asserts the determinism battery's CLI face: the stream is
// byte-identical at -jobs 1 and -jobs 8. Regenerate with
//
//	go test ./cmd/resilience -run CampaignGolden -update
func TestCampaignGolden(t *testing.T) {
	j1, _, err := runCLI(t, "campaign", campaignSpecPath, "-jobs", "1")
	if err != nil {
		t.Fatal(err)
	}
	j8, _, err := runCLI(t, "campaign", campaignSpecPath, "-jobs", "8")
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j8 {
		t.Fatal("campaign stdout differs between -jobs 1 and -jobs 8")
	}
	path := filepath.Join("testdata", "campaign_3x3x2.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(j1), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(j1))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if j1 == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(j1, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("campaign output drifted from %s at line %d:\n got: %s\nwant: %s\n"+
				"If the change is intentional, rerun with -update.", path, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("campaign output drifted from %s: got %d lines, want %d. "+
		"If the change is intentional, rerun with -update.", path, len(gotLines), len(wantLines))
}

// TestCampaignWarmRunIdentical: a warm re-run of the same spec renders
// byte-identical stdout while replaying clean scenarios from the cache.
func TestCampaignWarmRunIdentical(t *testing.T) {
	dir := t.TempDir()
	cold, _, err := runCLI(t, "campaign", campaignSpecPath, "-cache-dir", dir, "-cache-mem-entries", "0")
	if err != nil {
		t.Fatal(err)
	}
	warm, stderr, err := runCLI(t, "campaign", campaignSpecPath, "-cache-dir", dir, "-cache-mem-entries", "0")
	if err != nil {
		t.Fatal(err)
	}
	if cold != warm {
		t.Fatal("warm campaign stdout differs from cold")
	}
	hits := cacheCounter(t, stderr, "hits")
	// All 12 clean scenarios replay; fault-plan scenarios retried, so
	// their results are never stored.
	if hits < 12 {
		t.Fatalf("warm run replayed only %d scenarios from cache, want >= 12\nstderr:\n%s", hits, stderr)
	}
}

// cacheCounter scrapes one counter from the stderr cache line.
func cacheCounter(t *testing.T, stderr, name string) int {
	t.Helper()
	m := regexp.MustCompile(`cache: .*?(\d+) ` + name).FindStringSubmatch(stderr)
	if m == nil {
		t.Fatalf("no cache %s in stderr:\n%s", name, stderr)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCampaignSearchReplaysThroughChaos is the adversarial regression's
// CLI face: the worst-plan artifact a search reports, replayed through
// `resilience chaos` at the grid's seed, reproduces exactly the
// triangle area the search claimed (100 quality%·attempts per retry).
func TestCampaignSearchReplaysThroughChaos(t *testing.T) {
	out, _, err := runCLI(t, "campaign", "testdata/campaign_search.json", "-format", "json")
	if err != nil {
		t.Fatal(err)
	}
	var sum campaign.Summary
	if err := json.Unmarshal([]byte(out), &sum); err != nil {
		t.Fatalf("campaign -format json is not one JSON document: %v", err)
	}
	sd := sum.Search
	if sd == nil {
		t.Fatal("search summary carries no search document")
	}
	if sd.Evaluations != 24 || len(sd.WorstPlan) == 0 {
		t.Fatalf("unexpected search document: %+v", sd)
	}
	if sd.BestArea <= 0 {
		t.Fatalf("search found no damage at all: %+v", sd)
	}
	plan := filepath.Join(t.TempDir(), "worst_plan.json")
	if err := os.WriteFile(plan, sd.WorstPlan, 0o644); err != nil {
		t.Fatal(err)
	}
	// The grid swept e01+e08 at seed 42 quick; chaos runs the full
	// suite at the same derived seeds, where the plan's faults hit only
	// those experiments — so the suite's total retries are exactly the
	// search's failed attempts.
	_, stderr, err := runCLI(t, "chaos", plan, "-quick", "-seed", "42", "-jobs", "4")
	if err != nil {
		t.Fatalf("worst-plan replay failed: %v\n%s", err, stderr)
	}
	m := regexp.MustCompile(`recovery: (\d+) degraded, (\d+) retries`).FindStringSubmatch(stderr)
	if m == nil {
		t.Fatalf("no recovery line in chaos stderr:\n%s", stderr)
	}
	degraded, _ := strconv.Atoi(m[1])
	retries, _ := strconv.Atoi(m[2])
	if got := 100 * float64(retries); got != sd.BestArea {
		t.Fatalf("replayed triangle area %v != reported %v (stderr:\n%s)", got, sd.BestArea, stderr)
	}
	if degraded == 0 {
		t.Fatal("worst-plan replay degraded nothing")
	}
}

// TestCampaignOutArtifacts: -out writes the row stream and summary (and
// in search mode the worst plan) as artifacts that agree with stdout.
func TestCampaignOutArtifacts(t *testing.T) {
	dir := t.TempDir()
	out, _, err := runCLI(t, "campaign", campaignSpecPath, "-out", dir)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := os.ReadFile(filepath.Join(dir, "rows.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	// stdout = rows + summary line; the artifact holds just the rows.
	if !strings.HasPrefix(out, string(rows)) {
		t.Fatal("rows.ndjson does not match the stdout stream")
	}
	lines := strings.Split(strings.TrimSpace(string(rows)), "\n")
	if len(lines) != 18 {
		t.Fatalf("rows.ndjson has %d rows, want 18", len(lines))
	}
	data, err := os.ReadFile(filepath.Join(dir, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	var sum campaign.Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("summary.json invalid: %v", err)
	}
	if sum.Scenarios != 18 || sum.Schema != campaign.SpecSchema {
		t.Fatalf("summary.json incomplete: %+v", sum)
	}
	if _, err := os.Stat(filepath.Join(dir, "worst_plan.json")); !os.IsNotExist(err) {
		t.Fatal("sweep campaign wrote a worst_plan.json")
	}

	searchDir := t.TempDir()
	if _, _, err := runCLI(t, "campaign", "testdata/campaign_search.json", "-out", searchDir, "-format", "summary"); err != nil {
		t.Fatal(err)
	}
	worst, err := os.ReadFile(filepath.Join(searchDir, "worst_plan.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(worst) {
		t.Fatal("worst_plan.json is not valid JSON")
	}
}

// TestCampaignStdinSpec: "-" reads the spec from stdin, so specs can be
// generated and piped.
func TestCampaignStdinSpec(t *testing.T) {
	spec, err := os.ReadFile(campaignSpecPath)
	if err != nil {
		t.Fatal(err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = orig }()
	go func() {
		w.Write(spec)
		w.Close()
	}()
	piped, _, err := runCLI(t, "campaign", "-")
	if err != nil {
		t.Fatal(err)
	}
	fromFile, _, err := runCLI(t, "campaign", campaignSpecPath)
	if err != nil {
		t.Fatal(err)
	}
	if piped != fromFile {
		t.Fatal("stdin spec produced different output than the same spec from a file")
	}
}

func TestCampaignErrors(t *testing.T) {
	if _, _, err := runCLI(t, "campaign"); err == nil {
		t.Error("want usage error for missing spec path")
	}
	if _, _, err := runCLI(t, "campaign", "/nonexistent.json"); err == nil {
		t.Error("want error for missing spec file")
	}
	if _, _, err := runCLI(t, "campaign", campaignSpecPath, "-format", "xml"); err == nil {
		t.Error("want error for unknown format")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"experiments":["nope"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runCLI(t, "campaign", bad); err == nil {
		t.Error("want error for unknown experiment in spec")
	}
	if _, _, err := runCLI(t, "campaign", bad, "-format", "json"); err == nil {
		t.Error("want error for unknown experiment in spec (json format)")
	}
}

// TestCampaignLargeSweep exercises the acceptance-scale path: a
// 1000+-scenario campaign completes through the CLI and its warm
// re-run replays ≥95% of scenarios from the cache. The grid mixes
// clean cells with an rng-skip plan — a perturbation that changes the
// result digest without failing any attempt, so every scenario stays
// cacheable.
func TestCampaignLargeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-scenario sweep in -short mode")
	}
	spec := filepath.Join(t.TempDir(), "large.json")
	doc := `{
	  "name": "large",
	  "experiments": ["e01"],
	  "seeds": {"from": 1, "count": 500},
	  "plans": [null, {"name": "skew", "faults": [
	    {"experiment": "e01", "kind": "rng", "skips": 3}
	  ]}]
	}`
	if err := os.WriteFile(spec, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cold, _, err := runCLI(t, "campaign", spec, "-cache-dir", dir, "-jobs", "8")
	if err != nil {
		t.Fatal(err)
	}
	warm, stderr, err := runCLI(t, "campaign", spec, "-cache-dir", dir, "-jobs", "8")
	if err != nil {
		t.Fatal(err)
	}
	if cold != warm {
		t.Fatal("warm large sweep differs from cold")
	}
	lines := strings.Split(strings.TrimSpace(warm), "\n")
	if len(lines) != 1001 { // 1000 rows + summary
		t.Fatalf("stream has %d lines, want 1001", len(lines))
	}
	hits := cacheCounter(t, stderr, "hits")
	if hits < 950 {
		t.Fatalf("warm re-run hit rate %d/1000, want >= 950\nstderr:\n%s", hits, stderr)
	}
}
