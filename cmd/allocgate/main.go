// Command allocgate compares a `go test -bench -benchmem` run of
// BenchmarkSuiteWarmVsCold against the committed allocation trajectory
// in BENCH_alloc.json and fails when the suite's allocation counts
// regress past the gate's tolerances.
//
// Allocations per op — unlike ns/op — are effectively hardware- and
// load-independent, so a gate on them is stable across CI runners: the
// cold count is the price of computing, marshalling, and storing all 31
// results once, and the warm count is the price of replaying them from
// the cache. The gate reads the LAST data point of the baseline file
// (the trajectory's newest entry) and applies:
//
//   - cold: allocs/op may exceed the baseline by at most
//     gate.cold_allocs_tolerance_pct percent;
//   - warm and warm-mem: allocs/op may exceed the baseline by at most
//     gate.warm_slack_allocs allocations — an absolute allowance for
//     run-to-run runtime jitter (measured at ±2) set far below the cost
//     of reintroducing a single per-result decode or re-render.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSuiteWarmVsCold -benchmem . > out.txt
//	go run ./cmd/allocgate -baseline BENCH_alloc.json out.txt
//
// With no file argument the benchmark output is read from stdin, so the
// two commands pipe together.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baseline mirrors BENCH_alloc.json.
type baseline struct {
	Benchmark  string      `json:"benchmark"`
	Gate       gate        `json:"gate"`
	DataPoints []dataPoint `json:"data_points"`
}

type gate struct {
	ColdAllocsTolerancePct float64 `json:"cold_allocs_tolerance_pct"`
	WarmSlackAllocs        int64   `json:"warm_slack_allocs"`
}

type dataPoint struct {
	Date          string `json:"date"`
	ColdAllocs    int64  `json:"cold_allocs_per_op"`
	ColdBytes     int64  `json:"cold_bytes_per_op"`
	WarmAllocs    int64  `json:"warm_allocs_per_op"`
	WarmBytes     int64  `json:"warm_bytes_per_op"`
	MemWarmAllocs int64  `json:"mem_warm_allocs_per_op"`
	MemWarmBytes  int64  `json:"mem_warm_bytes_per_op"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	allocs int64
	bytes  int64
}

// benchLine matches one `go test -bench` result row with -benchmem
// columns, e.g.
//
//	BenchmarkSuiteWarmVsCold/cold-8   3   425449664 ns/op   90054538 B/op   471013 allocs/op
//
// The trailing -N GOMAXPROCS suffix is optional (single-proc runners
// omit it).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op\s+(\d+) B/op\s+(\d+) allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_alloc.json", "committed allocation trajectory to gate against")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: allocgate [-baseline BENCH_alloc.json] [bench-output.txt]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(*baselinePath, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "allocgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath string, args []string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	if len(base.DataPoints) == 0 {
		return fmt.Errorf("%s has no data points to gate against", baselinePath)
	}
	ref := base.DataPoints[len(base.DataPoints)-1]

	var in io.Reader = os.Stdin
	src := "stdin"
	if len(args) > 1 {
		return fmt.Errorf("at most one benchmark output file, got %d", len(args))
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in, src = f, args[0]
	}
	got, err := parseBench(in, base.Benchmark)
	if err != nil {
		return fmt.Errorf("parse %s: %w", src, err)
	}

	type check struct {
		name       string
		meas       measurement
		baseAllocs int64
		baseBytes  int64
		limit      int64
		rule       string
	}
	coldLimit := ref.ColdAllocs + int64(float64(ref.ColdAllocs)*base.Gate.ColdAllocsTolerancePct/100)
	checks := []check{
		{"cold", got["cold"], ref.ColdAllocs, ref.ColdBytes, coldLimit,
			fmt.Sprintf("baseline +%g%%", base.Gate.ColdAllocsTolerancePct)},
		{"warm", got["warm"], ref.WarmAllocs, ref.WarmBytes, ref.WarmAllocs + base.Gate.WarmSlackAllocs,
			fmt.Sprintf("baseline +%d allocs jitter slack", base.Gate.WarmSlackAllocs)},
		{"warm-mem", got["warm-mem"], ref.MemWarmAllocs, ref.MemWarmBytes, ref.MemWarmAllocs + base.Gate.WarmSlackAllocs,
			fmt.Sprintf("baseline +%d allocs jitter slack", base.Gate.WarmSlackAllocs)},
	}
	failed := 0
	for _, c := range checks {
		if c.meas.allocs == 0 {
			fmt.Printf("FAIL %-8s missing from benchmark output (want %s/%s)\n", c.name, base.Benchmark, c.name)
			failed++
			continue
		}
		verdict := "ok  "
		if c.meas.allocs > c.limit {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%s %-8s %9d allocs/op (baseline %9d from %s, limit %9d: %s); %9d B/op (baseline %9d)\n",
			verdict, c.name, c.meas.allocs, c.baseAllocs, ref.Date, c.limit, c.rule, c.meas.bytes, c.baseBytes)
		if c.meas.allocs <= c.limit && c.baseAllocs > 0 {
			if drop := 100 * float64(c.baseAllocs-c.meas.allocs) / float64(c.baseAllocs); drop >= 10 {
				fmt.Printf("     %-8s improved %.1f%% — consider appending a new data point to the trajectory\n",
					c.name, drop)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d allocation gates failed against %s's %s point",
			failed, len(checks), baselinePath, ref.Date)
	}
	return nil
}

// parseBench extracts the per-variant measurements of the named
// benchmark ("cold", "warm", "warm-mem") from `go test -bench` output.
func parseBench(in io.Reader, benchmark string) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest, ok := strings.Cut(m[1], "/")
		if !ok || name != benchmark {
			continue
		}
		bytes, err1 := strconv.ParseInt(m[2], 10, 64)
		allocs, err2 := strconv.ParseInt(m[3], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("unparseable row %q", sc.Text())
		}
		out[rest] = measurement{allocs: allocs, bytes: bytes}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no %s/... result rows found (did the run use -benchmem?)", benchmark)
	}
	return out, nil
}
