package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testBaseline = `{
  "benchmark": "BenchmarkSuiteWarmVsCold",
  "gate": {"cold_allocs_tolerance_pct": 10, "warm_slack_allocs": 16},
  "data_points": [
    {"date": "2026-01-01", "cold_allocs_per_op": 9999999, "warm_allocs_per_op": 9999},
    {
      "date": "2026-08-07",
      "cold_allocs_per_op": 471013, "cold_bytes_per_op": 90054512,
      "warm_allocs_per_op": 4449, "warm_bytes_per_op": 229944,
      "mem_warm_allocs_per_op": 4170, "mem_warm_bytes_per_op": 170514
    }
  ]
}`

func benchOutput(cold, warm, memWarm int64) string {
	return `goos: linux
goarch: amd64
pkg: resilience
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSuiteWarmVsCold/cold-8         	       3	 425449664 ns/op	90054538 B/op	 ` +
		itoa(cold) + ` allocs/op
BenchmarkSuiteWarmVsCold/warm         	       3	   1947424 ns/op	  229944 B/op	    ` +
		itoa(warm) + ` allocs/op
BenchmarkSuiteWarmVsCold/warm-mem     	       3	   1851299 ns/op	  170514 B/op	    ` +
		itoa(memWarm) + ` allocs/op
PASS
ok  	resilience	4.211s
`
}

func itoa(v int64) string {
	if v < 0 {
		panic("negative")
	}
	b := [20]byte{}
	i := len(b)
	for {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return string(b[i:])
}

// gateRun writes the baseline and bench output to temp files and runs
// the gate, returning its error.
func gateRun(t *testing.T, baseline, bench string) error {
	t.Helper()
	dir := t.TempDir()
	bp := filepath.Join(dir, "BENCH_alloc.json")
	op := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(bp, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(op, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	return run(bp, []string{op})
}

func TestGatePassesAtBaseline(t *testing.T) {
	if err := gateRun(t, testBaseline, benchOutput(471013, 4449, 4170)); err != nil {
		t.Fatalf("baseline-exact run failed the gate: %v", err)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	// Cold +9.9%, warm and warm-mem at the edge of the jitter slack.
	if err := gateRun(t, testBaseline, benchOutput(517000, 4465, 4186)); err != nil {
		t.Fatalf("in-tolerance run failed the gate: %v", err)
	}
}

func TestGateFailsOnColdRegression(t *testing.T) {
	// Cold +11% exceeds the 10% tolerance.
	err := gateRun(t, testBaseline, benchOutput(522825, 4449, 4170))
	if err == nil || !strings.Contains(err.Error(), "1 of 3") {
		t.Fatalf("cold regression not caught: %v", err)
	}
}

func TestGateFailsOnWarmRegression(t *testing.T) {
	// A reintroduced per-result decode costs thousands of allocs; even a
	// slack-plus-one regression must fail.
	err := gateRun(t, testBaseline, benchOutput(471013, 4449+17, 4170))
	if err == nil {
		t.Fatal("warm regression passed the gate")
	}
}

func TestGateFailsOnMissingVariant(t *testing.T) {
	partial := `BenchmarkSuiteWarmVsCold/cold-8   3   425449664 ns/op   90054538 B/op   471013 allocs/op` + "\n"
	err := gateRun(t, testBaseline, partial)
	if err == nil || !strings.Contains(err.Error(), "2 of 3") {
		t.Fatalf("missing warm variants not caught: %v", err)
	}
}

func TestGateFailsWithoutBenchmem(t *testing.T) {
	noMem := `BenchmarkSuiteWarmVsCold/cold-8   3   425449664 ns/op` + "\n"
	err := gateRun(t, testBaseline, noMem)
	if err == nil || !strings.Contains(err.Error(), "-benchmem") {
		t.Fatalf("memless output not diagnosed: %v", err)
	}
}

func TestGateUsesLastDataPoint(t *testing.T) {
	// The first (stale, huge) data point must not be the reference: a
	// count below it but far above the last point has to fail.
	err := gateRun(t, testBaseline, benchOutput(5000000, 4449, 4170))
	if err == nil {
		t.Fatal("gate compared against a stale data point")
	}
}
