package resilience

import (
	"io"
	"runtime"
	"strconv"
	"testing"

	"resilience/internal/bitstring"
	"resilience/internal/ca"
	"resilience/internal/dcsp"
	"resilience/internal/experiments"
	"resilience/internal/graph"
	"resilience/internal/magent"
	"resilience/internal/maintain"
	"resilience/internal/rescache"
	"resilience/internal/rescache/fsstore"
	"resilience/internal/rescache/memstore"
	"resilience/internal/rng"
	"resilience/internal/runner"
)

// benchExperiment runs one registered experiment workload per iteration,
// including text rendering. Quick mode keeps the full sweep of
// `go test -bench=.` tractable while exercising exactly the code paths
// that regenerate each table; run the cmd/resilience CLI for full-size
// tables.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiments.Config{Seed: 42, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Record(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderText(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllParallel measures the wall time of the full -quick suite on
// the bounded worker pool, serial vs one worker per CPU. On multi-core
// hardware jobs=NumCPU should come in well below jobs=1; on a single-core
// machine the two coincide.
func BenchmarkAllParallel(b *testing.B) {
	for _, jobs := range []int{1, runtime.NumCPU()} {
		b.Run("jobs="+strconv.Itoa(jobs), func(b *testing.B) {
			exps := experiments.All()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum := runner.Run(exps, runner.Options{Jobs: jobs, Seed: 42, Quick: true}, nil)
				if sum.Failed != 0 {
					b.Fatalf("suite failed: %+v", sum)
				}
			}
		})
	}
}

// One benchmark per experiment table/figure (see DESIGN.md's index).

func BenchmarkE01BruneauTriangle(b *testing.B)   { benchExperiment(b, "e01") }
func BenchmarkE02KRecoverability(b *testing.B)   { benchExperiment(b, "e02") }
func BenchmarkE03Spacecraft(b *testing.B)        { benchExperiment(b, "e03") }
func BenchmarkE04Maintainability(b *testing.B)   { benchExperiment(b, "e04") }
func BenchmarkE05ConcaveFitness(b *testing.B)    { benchExperiment(b, "e05") }
func BenchmarkE06DiversitySurvival(b *testing.B) { benchExperiment(b, "e06") }
func BenchmarkE07Knockout(b *testing.B)          { benchExperiment(b, "e07") }
func BenchmarkE08Stickleback(b *testing.B)       { benchExperiment(b, "e08") }
func BenchmarkE09RAID(b *testing.B)              { benchExperiment(b, "e09") }
func BenchmarkE10DesignDiversity(b *testing.B)   { benchExperiment(b, "e10") }
func BenchmarkE11ForestFire(b *testing.B)        { benchExperiment(b, "e11") }
func BenchmarkE12Portfolio(b *testing.B)         { benchExperiment(b, "e12") }
func BenchmarkE13MAPE(b *testing.B)              { benchExperiment(b, "e13") }
func BenchmarkE14EarlyWarning(b *testing.B)      { benchExperiment(b, "e14") }
func BenchmarkE15BlackSwan(b *testing.B)         { benchExperiment(b, "e15") }
func BenchmarkE16SeaWall(b *testing.B)           { benchExperiment(b, "e16") }
func BenchmarkE17ModeSwitch(b *testing.B)        { benchExperiment(b, "e17") }
func BenchmarkE18Tradeoff(b *testing.B)          { benchExperiment(b, "e18") }
func BenchmarkE19Sandpile(b *testing.B)          { benchExperiment(b, "e19") }
func BenchmarkE20ScaleFree(b *testing.B)         { benchExperiment(b, "e20") }
func BenchmarkE21Reserves(b *testing.B)          { benchExperiment(b, "e21") }
func BenchmarkE22Interop(b *testing.B)           { benchExperiment(b, "e22") }

// Extension experiments (the paper's §4–5 open problems).

func BenchmarkE23TigerTeam(b *testing.B)      { benchExperiment(b, "e23") }
func BenchmarkE24Coordination(b *testing.B)   { benchExperiment(b, "e24") }
func BenchmarkE25ShockInference(b *testing.B) { benchExperiment(b, "e25") }
func BenchmarkE26Granularity(b *testing.B)    { benchExperiment(b, "e26") }

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// cost of the core primitives that every experiment leans on.

// BenchmarkAblationGreedyVsOptimalRepair compares the greedy repairer
// against BFS-optimal repair on the same damaged configuration.
func BenchmarkAblationGreedyVsOptimalRepair(b *testing.B) {
	for _, tc := range []struct {
		name string
		rep  dcsp.Repairer
	}{
		{"greedy", dcsp.GreedyRepairer{}},
		{"optimal", dcsp.OptimalRepairer{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			r := rng.New(1)
			c := dcsp.AllOnes{N: 24}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := bitstring.Ones(24)
				s.FlipRandom(5, r)
				if _, err := dcsp.Recover(s, c, tc.rep, 1, 10, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPolicySynthesis measures Baral–Eiter value iteration
// at two state-space sizes, documenting the polynomial growth E04 relies
// on.
func BenchmarkAblationPolicySynthesis(b *testing.B) {
	for _, n := range []int{256, 2048} {
		b.Run("states="+strconv.Itoa(n), func(b *testing.B) {
			sys, err := maintain.NewSystem(n)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.MarkNormal(0); err != nil {
				b.Fatal(err)
			}
			act := sys.AddAction("repair")
			for i := 1; i < n; i++ {
				if err := sys.AddTransition(maintain.StateID(i), act, maintain.StateID(i-1)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.SynthesizePolicy(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSandpileDrive measures the per-grain cost of the
// relaxation cascade at the critical state.
func BenchmarkAblationSandpileDrive(b *testing.B) {
	r := rng.New(1)
	s, err := ca.NewSandpile(32)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		s.AddRandomGrain(r) // reach SOC before timing
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddRandomGrain(r)
	}
}

// BenchmarkAblationBAGeneration measures scale-free graph construction.
func BenchmarkAblationBAGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rng.New(uint64(i))
		if _, err := graph.BarabasiAlbert(2000, 2, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWorldStep measures one tick of the multi-agent
// testbed at the default configuration.
func BenchmarkAblationWorldStep(b *testing.B) {
	r := rng.New(1)
	cfg := magent.DefaultConfig()
	env, _, err := magent.MaskScenario{CareBits: 6, ShiftDistance: 2, ShiftEvery: 100, Shifts: 0}.Generate(cfg.GenomeLen, r)
	if err != nil {
		b.Fatal(err)
	}
	w, err := magent.NewWorld(cfg, env, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}

func BenchmarkE27Cascade(b *testing.B)      { benchExperiment(b, "e27") }
func BenchmarkE28MutualAid(b *testing.B)    { benchExperiment(b, "e28") }
func BenchmarkE29Anticipation(b *testing.B) { benchExperiment(b, "e29") }
func BenchmarkE30CoRegulation(b *testing.B) { benchExperiment(b, "e30") }

func BenchmarkE31MayStability(b *testing.B) { benchExperiment(b, "e31") }

// BenchmarkSuiteWarmVsCold measures what the result cache buys: "cold"
// populates a fresh cache directory every iteration (compute + store),
// "warm" replays the same suite out of an already-populated filesystem
// tier, and "warm-mem" replays it out of the in-memory tier — counter-
// asserted to touch the disk zero times. The warm/cold ratio is the
// fraction of suite cost the cache cannot skip (key hashing, JSON
// decode, rendering); warm-mem vs warm is what the memory tier saves on
// top (the disk read). See BENCH_warm_cache.json for recorded data
// points.
func BenchmarkSuiteWarmVsCold(b *testing.B) {
	exps := experiments.All()
	run := func(b *testing.B, cache *rescache.Cache) {
		sum := runner.Run(exps, runner.Options{Jobs: 1, Seed: 42, Quick: true, Cache: cache}, nil)
		if sum.Failed != 0 {
			b.Fatalf("suite failed: %+v", sum)
		}
	}
	openFS := func(b *testing.B) *fsstore.Store {
		st, err := fsstore.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cache := rescache.New(openFS(b))
			b.StartTimer()
			run(b, cache)
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := rescache.New(openFS(b))
		run(b, cache) // populate
		if cache.Stores() != int64(len(exps)) {
			b.Fatalf("populated %d entries, want %d", cache.Stores(), len(exps))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, cache)
		}
	})
	b.Run("warm-mem", func(b *testing.B) {
		fs := openFS(b)
		mem, err := memstore.New(len(exps)+1, 0)
		if err != nil {
			b.Fatal(err)
		}
		cache := rescache.New(rescache.Tiered(mem, fs))
		run(b, cache) // populate both tiers (Put writes through)
		diskReads := fs.Stats()[0].Gets
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, cache)
		}
		b.StopTimer()
		if got := fs.Stats()[0].Gets; got != diskReads {
			b.Fatalf("memory-warm run read the disk tier %d times, want 0", got-diskReads)
		}
	})
}
