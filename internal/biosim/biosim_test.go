package biosim

import (
	"testing"

	"resilience/internal/rng"
)

func TestGenomeSpecValidate(t *testing.T) {
	if err := EColiSpec().Validate(); err != nil {
		t.Fatalf("ecoli spec invalid: %v", err)
	}
	bad := []GenomeSpec{
		{Genes: 0, MaxRedundancy: 2},
		{Genes: 10, EssentialSingletons: -1, MaxRedundancy: 2},
		{Genes: 10, MaxRedundancy: 1},
		{Genes: 10, EssentialSingletons: 5, RedundantPathways: 5, MaxRedundancy: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
}

func TestSingleKnockoutMostlyViable(t *testing.T) {
	// The paper's E. coli claim: ~4000 of ~4300 single knockouts remain
	// viable. Structurally, only the essential singletons are lethal.
	r := rng.New(1)
	g, err := GenerateGenome(EColiSpec(), r)
	if err != nil {
		t.Fatal(err)
	}
	viable := g.KnockoutScreen()
	lethal := g.NumGenes() - viable
	if lethal != 300 {
		t.Fatalf("lethal knockouts = %d, want exactly the 300 essential singletons", lethal)
	}
	frac := float64(viable) / float64(g.NumGenes())
	if frac < 0.92 || frac > 0.94 {
		t.Fatalf("viable fraction = %v, want ~0.93", frac)
	}
}

func TestViableBaseline(t *testing.T) {
	r := rng.New(2)
	g, err := GenerateGenome(GenomeSpec{Genes: 50, EssentialSingletons: 5, RedundantPathways: 10, MaxRedundancy: 3}, r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Viable(nil) {
		t.Fatal("intact genome must be viable")
	}
	if g.NumPathways() != 15 {
		t.Fatalf("pathways = %d", g.NumPathways())
	}
}

func TestMultipleKnockoutsDegrade(t *testing.T) {
	// Redundancy shields against single hits but erodes under many
	// simultaneous knockouts.
	r := rng.New(3)
	g, err := GenerateGenome(GenomeSpec{Genes: 200, EssentialSingletons: 10, RedundantPathways: 60, MaxRedundancy: 3}, r)
	if err != nil {
		t.Fatal(err)
	}
	survive := func(k int) float64 {
		ok := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			if g.RandomKnockouts(k, r) {
				ok++
			}
		}
		return float64(ok) / trials
	}
	s1 := survive(1)
	s20 := survive(20)
	s100 := survive(100)
	if !(s1 > s20 && s20 > s100) {
		t.Fatalf("viability should fall with knockouts: %v, %v, %v", s1, s20, s100)
	}
	if s1 < 0.9 {
		t.Fatalf("single-knockout viability = %v, want high", s1)
	}
}

func TestRandomKnockoutsClamps(t *testing.T) {
	r := rng.New(4)
	g, err := GenerateGenome(GenomeSpec{Genes: 10, EssentialSingletons: 2, RedundantPathways: 2, MaxRedundancy: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.RandomKnockouts(100, r) {
		t.Fatal("knocking out every gene must be lethal (essential singletons exist)")
	}
}

func TestNewDormantTraitValidation(t *testing.T) {
	if _, err := NewDormantTrait(0, 0, 0.001, -0.01, 0.1); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewDormantTrait(10, 11, 0.001, -0.01, 0.1); err == nil {
		t.Error("want error for armored > n")
	}
	if _, err := NewDormantTrait(10, 5, 1.5, -0.01, 0.1); err == nil {
		t.Error("want error for mu > 1")
	}
}

func TestDormantTraitDeclinesWithoutPredation(t *testing.T) {
	r := rng.New(5)
	d, err := NewDormantTrait(2000, 1000, 0.002, -0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	d.Run(300, r)
	if f := d.Frequency(); f > 0.2 {
		t.Fatalf("armor frequency = %v, want decline under cost", f)
	}
}

func TestDormantTraitPersistsAtMutationSelectionBalance(t *testing.T) {
	// The allele must NOT vanish: mutation keeps reintroducing it — the
	// dormant redundancy the paper highlights.
	r := rng.New(6)
	d, err := NewDormantTrait(2000, 1000, 0.002, -0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	d.Run(300, r)
	lowSamples, presentSamples := 0, 0
	for i := 0; i < 200; i++ {
		d.Run(5, r)
		lowSamples++
		if d.ArmorCount > 0 {
			presentSamples++
		}
	}
	if float64(presentSamples)/float64(lowSamples) < 0.8 {
		t.Fatalf("allele present in only %d/%d samples", presentSamples, lowSamples)
	}
}

func TestDormantTraitReactivatesUnderPredation(t *testing.T) {
	// Fig 1: predation pressure returns and the armored phenotype sweeps
	// back.
	r := rng.New(7)
	d, err := NewDormantTrait(2000, 1000, 0.002, -0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	d.Run(400, r) // decline phase
	low := d.Frequency()
	d.Predation = true
	d.Run(200, r) // trout arrive
	high := d.Frequency()
	if high < 0.9 {
		t.Fatalf("armor frequency after predation = %v, want sweep toward fixation", high)
	}
	if high <= low {
		t.Fatalf("reactivation failed: %v -> %v", low, high)
	}
}
