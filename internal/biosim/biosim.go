// Package biosim holds the biological models behind §3.1.1 of the paper:
//
//   - Genome redundancy: "E. Coli has approximately 4,300 genes … almost
//     4,000 of them are known to be redundant — that is, knocking out one
//     of them will not hamper its ability to reproduce." We model a
//     genome as a set of pathways (functions), each realized by one or
//     more genes; the organism is viable iff every essential pathway has
//     at least one working gene. Knockout screens reproduce the Keio
//     collection result structurally.
//
//   - The dormant-trait (stickleback) model: an armor allele that is
//     slightly deleterious without predators persists at low frequency
//     under mutation–selection balance and sweeps back when predation
//     pressure returns (Fig 1).
package biosim

import (
	"errors"
	"fmt"

	"resilience/internal/rng"
)

// Genome is a synthetic genome organized into pathways.
type Genome struct {
	// pathway[i] lists the gene indexes that can each perform function i.
	pathways [][]int
	numGenes int
}

// GenomeSpec describes a synthetic genome to generate.
type GenomeSpec struct {
	// Genes is the total gene count (E. coli ≈ 4300).
	Genes int
	// EssentialSingletons is the number of pathways carried by exactly
	// one gene (knocking those out is lethal; E. coli ≈ 300).
	EssentialSingletons int
	// RedundantPathways is the number of pathways carried by 2 or more
	// genes.
	RedundantPathways int
	// MaxRedundancy is the maximum genes per redundant pathway
	// (uniform 2..MaxRedundancy).
	MaxRedundancy int
}

// Validate checks the spec is realizable.
func (s GenomeSpec) Validate() error {
	switch {
	case s.Genes <= 0:
		return errors.New("biosim: genome needs genes")
	case s.EssentialSingletons < 0 || s.RedundantPathways < 0:
		return errors.New("biosim: negative pathway counts")
	case s.MaxRedundancy < 2:
		return errors.New("biosim: max redundancy must be >= 2")
	case s.EssentialSingletons+2*s.RedundantPathways > s.Genes:
		return fmt.Errorf("biosim: %d genes cannot cover %d singleton + %d redundant pathways",
			s.Genes, s.EssentialSingletons, s.RedundantPathways)
	}
	return nil
}

// EColiSpec returns a spec matching the paper's numbers: ~4300 genes of
// which ~300 are individually essential.
func EColiSpec() GenomeSpec {
	return GenomeSpec{
		Genes:               4300,
		EssentialSingletons: 300,
		RedundantPathways:   1600,
		MaxRedundancy:       4,
	}
}

// GenerateGenome builds a random genome per the spec. Every pathway's
// genes are distinct; singleton pathways use dedicated genes; redundant
// pathways draw from the remaining pool (a gene may serve several
// redundant pathways, as real enzymes do).
func GenerateGenome(spec GenomeSpec, r *rng.Source) (*Genome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Genome{numGenes: spec.Genes}
	perm := r.Perm(spec.Genes)
	// Dedicated essential genes.
	for i := 0; i < spec.EssentialSingletons; i++ {
		g.pathways = append(g.pathways, []int{perm[i]})
	}
	pool := perm[spec.EssentialSingletons:]
	for i := 0; i < spec.RedundantPathways; i++ {
		k := 2 + r.Intn(spec.MaxRedundancy-1)
		if k > len(pool) {
			k = len(pool)
		}
		genes := make([]int, k)
		// Sample k distinct genes from the pool.
		seen := map[int]struct{}{}
		for j := 0; j < k; j++ {
			for {
				cand := pool[r.Intn(len(pool))]
				if _, dup := seen[cand]; !dup {
					seen[cand] = struct{}{}
					genes[j] = cand
					break
				}
			}
		}
		g.pathways = append(g.pathways, genes)
	}
	return g, nil
}

// NumGenes returns the gene count.
func (g *Genome) NumGenes() int { return g.numGenes }

// NumPathways returns the pathway count.
func (g *Genome) NumPathways() int { return len(g.pathways) }

// Viable reports whether an organism missing the given genes can still
// perform every pathway function.
func (g *Genome) Viable(knockedOut map[int]bool) bool {
	for _, genes := range g.pathways {
		ok := false
		for _, gene := range genes {
			if !knockedOut[gene] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// KnockoutScreen knocks out every gene one at a time (the Keio
// collection experiment) and returns the number of viable single-gene
// knockouts.
func (g *Genome) KnockoutScreen() (viable int) {
	ko := map[int]bool{}
	for gene := 0; gene < g.numGenes; gene++ {
		ko[gene] = true
		if g.Viable(ko) {
			viable++
		}
		delete(ko, gene)
	}
	return viable
}

// RandomKnockouts knocks out k distinct random genes and reports
// viability; used to probe how redundancy degrades under multiple hits.
func (g *Genome) RandomKnockouts(k int, r *rng.Source) bool {
	if k > g.numGenes {
		k = g.numGenes
	}
	ko := make(map[int]bool, k)
	for _, gene := range r.Perm(g.numGenes)[:k] {
		ko[gene] = true
	}
	return g.Viable(ko)
}

// DormantTrait is the stickleback armor model: a one-locus, two-allele
// Wright–Fisher population. The armor allele has selection coefficient
// SNeutral (typically slightly negative — armor is costly in fresh water
// without predators) or SPredation (positive) depending on Predation,
// with symmetric per-generation mutation Mu between alleles.
type DormantTrait struct {
	// N is the population size.
	N int
	// Mu is the per-generation mutation probability per individual.
	Mu float64
	// SNeutral is armor's selection coefficient without predators.
	SNeutral float64
	// SPredation is armor's selection coefficient with predators.
	SPredation float64
	// Predation toggles the selective regime — the trout returning to
	// Lake Washington.
	Predation bool

	// ArmorCount is the current number of armored individuals.
	ArmorCount int
}

// NewDormantTrait builds the model with the given initial armored count.
func NewDormantTrait(n, armored int, mu, sNeutral, sPredation float64) (*DormantTrait, error) {
	if n <= 0 || armored < 0 || armored > n {
		return nil, fmt.Errorf("biosim: invalid population n=%d armored=%d", n, armored)
	}
	if mu < 0 || mu > 1 {
		return nil, fmt.Errorf("biosim: mutation rate %v out of [0,1]", mu)
	}
	return &DormantTrait{N: n, Mu: mu, SNeutral: sNeutral, SPredation: sPredation, ArmorCount: armored}, nil
}

// Frequency returns the armor allele frequency.
func (d *DormantTrait) Frequency() float64 { return float64(d.ArmorCount) / float64(d.N) }

// Step advances one Wright–Fisher generation: selection reweights the
// armor frequency, mutation flips alleles both ways, and the next
// generation is a binomial sample of size N.
func (d *DormantTrait) Step(r *rng.Source) {
	s := d.SNeutral
	if d.Predation {
		s = d.SPredation
	}
	p := d.Frequency()
	// Selection: armored fitness 1+s, plain fitness 1.
	wBar := p*(1+s) + (1 - p)
	if wBar <= 0 {
		wBar = 1e-12
	}
	p = p * (1 + s) / wBar
	// Symmetric mutation.
	p = p*(1-d.Mu) + (1-p)*d.Mu
	// Binomial resample.
	count := 0
	for i := 0; i < d.N; i++ {
		if r.Bool(p) {
			count++
		}
	}
	d.ArmorCount = count
}

// Run advances n generations.
func (d *DormantTrait) Run(n int, r *rng.Source) {
	for i := 0; i < n; i++ {
		d.Step(r)
	}
}
