package campaign

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzCampaignSpecParse: the spec parser is total — any byte sequence
// either yields a valid spec (which must expand without panicking) or a
// structured "campaign:"-prefixed error, never a panic.
func FuzzCampaignSpecParse(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(sweepSpec))
	f.Add([]byte(`{"experiments":["t01"],"seeds":{"list":[1,2]},"sizes":["quick","full"]}`))
	f.Add([]byte(`{"seeds":{"from":18446744073709551615,"count":2}}`))
	f.Add([]byte(`{"plans":[null,{"retries":1,"faults":[{"experiment":"*","kind":"rng","skips":1}]}]}`))
	f.Add([]byte(`{"perturb":[{"delayScale":1e308},{"retriesDelta":-9}]}`))
	f.Add([]byte(`{"search":{"budget":4,"objective":"deadline-miss","deadlineAttempts":2,"seams":["worker","ghost"]}}`))
	f.Add([]byte(`{"deadlineAttempts": 3, "name": "\\u0000"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"plans":[{"faults":[{"experiment":"t01","kind":"delay","delayMs":-1}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			if spec != nil {
				t.Fatalf("error %v returned alongside a spec", err)
			}
			if !strings.Contains(err.Error(), "campaign:") && !strings.Contains(err.Error(), "faultinject:") {
				t.Fatalf("unstructured error: %v", err)
			}
			return
		}
		// A spec that parses must expand deterministically or fail with
		// a structured error — and expansion must not depend on who
		// asks: two calls agree cell for cell.
		a, errA := spec.Expand(toyRegistry())
		b, errB := spec.Expand(toyRegistry())
		if (errA == nil) != (errB == nil) {
			t.Fatalf("expand nondeterministic: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		if len(a) != len(b) {
			t.Fatalf("expand sizes differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Experiment.ID != b[i].Experiment.ID || a[i].Seed != b[i].Seed ||
				a[i].Size != b[i].Size || a[i].PlanHash != b[i].PlanHash {
				t.Fatalf("expand cell %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}
	})
}

// FuzzCampaignSummary: the summary builder tolerates arbitrary row
// sequences — decoded from hostile NDJSON or synthesized from raw
// bytes — and always produces a marshalable document whose reported
// quantiles stay inside the observed range.
func FuzzCampaignSummary(f *testing.F) {
	f.Add([]byte(`{"scenario":0,"experiment":"e01","seed":1,"size":"quick","plan":"clean","status":"ok","recovered":false,"failedAttempts":0,"retries":0,"triangleArea":0}`))
	f.Add([]byte(`{"status":"degraded","failedAttempts":2,"recovered":true,"retries":2,"triangleArea":200,"deadlineMiss":true,"digest":"abc"}` + "\n" + `{"status":"weird"}`))
	f.Add([]byte(`{"triangleArea":-5,"retries":-2,"failedAttempts":-1}`))
	f.Add([]byte(`{"triangleArea":1e300,"failedAttempts":2147483647}`))
	f.Add([]byte("garbage\n\n{\"status\":\"shed\"}\nmore garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewSummaryBuilder(RunConfig{Name: "fuzz", DeadlineAttempts: 1})
		rows := 0
		for _, line := range bytes.Split(data, []byte("\n")) {
			var row Row
			if err := json.Unmarshal(line, &row); err != nil {
				// Synthesize a row from the raw bytes so the builder also
				// sees statuses/digests no marshaller would produce.
				row = Row{
					Status:         string(line),
					Digest:         string(line),
					Error:          string(line),
					FailedAttempts: len(line) - 4,
					Retries:        len(line)%7 - 3,
					TriangleArea:   float64(len(line)*100 - 350),
					Recovered:      len(line)%2 == 0,
					DeadlineMiss:   len(line)%3 == 0,
				}
			}
			b.Add(row)
			rows++
		}
		sum := b.Summary()
		if sum.Scenarios != rows {
			t.Fatalf("summary counted %d rows, want %d", sum.Scenarios, rows)
		}
		if got := sum.OK + sum.Degraded + sum.Failed + sum.Shed + sum.Errors; got != rows {
			t.Fatalf("status counts sum to %d, want %d", got, rows)
		}
		doc, err := json.Marshal(sum)
		if err != nil {
			t.Fatalf("summary does not marshal: %v", err)
		}
		if !bytes.Contains(doc, []byte(SpecSchema)) {
			t.Fatal("summary lost its schema tag")
		}
		for name, d := range map[string]DistSnapshot{
			"triangleArea":     sum.Distributions.TriangleArea,
			"recoveryAttempts": sum.Distributions.RecoveryAttempts,
			"retries":          sum.Distributions.Retries,
		} {
			if d.Count == 0 {
				continue
			}
			for q, v := range map[string]float64{"p50": d.P50, "p90": d.P90, "p99": d.P99} {
				if v < d.Min || v > d.Max {
					t.Fatalf("%s %s = %v outside [%v, %v]", name, q, v, d.Min, d.Max)
				}
			}
			if d.P50 > d.P90 || d.P90 > d.P99 {
				t.Fatalf("%s quantiles not ordered: %+v", name, d)
			}
		}
	})
}
