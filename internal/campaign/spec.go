// Package campaign turns one run — an (experiment, seed, plan) triple —
// into thousands: a spec-driven sweep engine for the paper's
// "anticipation" strategy (§3.4). A resilient system must discover the
// scenarios that hurt it *before* they happen, so a campaign expands a
// declarative JSON spec (experiment sets × seed ranges × fault-plan
// grids × quick/full sizes × parameter perturbations) into a scenario
// list, fans it through the staged engine and result cache on a
// bounded-parallel executor, streams one NDJSON row per scenario, and
// summarizes the population with distributions of recovery indicators —
// Bruneau-triangle area, recovery time, retries — plus diversity
// indices over statuses and outcome digests (internal/diversity), the
// "report distributions, not points" discipline of the Quality
// Indicators for Collective Systems Resilience line of work.
//
// On top of sweeps sits an adversarial mode (Spec.Search): a seeded
// evolutionary loop that mutates fault plans to maximize damage
// (triangle area) or deadline-bounded recovery violations à la
// Time-Bounded Resilience, reporting the worst plan found as a
// replayable artifact (`resilience chaos <worst-plan.json>`).
//
// Determinism contract: rows and the summary document depend only on
// the spec (its seeds, plans, and search seed) — never on -jobs, cache
// warmth, or wall time. Recovery is therefore accounted *logically*:
// each failed attempt costs one unit of time at full (100%) quality
// loss, so a scenario's triangle area is 100 × failedAttempts and its
// recovery time is its attempt count. Wall-clock recovery measures stay
// in obs instruments (campaign.scenario.seconds), which never feed
// stdout, exactly like the rest of the repo.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"resilience/internal/experiments"
	"resilience/internal/faultinject"
)

// SpecSchema names the campaign spec / output document schema.
const SpecSchema = "resilience-campaign/1"

// MaxScenarios bounds one spec's expansion; a grid past this is almost
// certainly a typo (and would OOM the row buffer long before it
// finished running).
const MaxScenarios = 250_000

// Seeds describes the seed axis: either an explicit list or a
// contiguous range [From, From+Count).
type Seeds struct {
	From  *uint64  `json:"from,omitempty"`
	Count int      `json:"count,omitempty"`
	List  []uint64 `json:"list,omitempty"`
}

// expand returns the seed values in axis order.
func (s *Seeds) expand() []uint64 {
	if s == nil {
		return []uint64{DefaultSeed}
	}
	if len(s.List) > 0 {
		return s.List
	}
	from := uint64(1)
	if s.From != nil {
		from = *s.From
	}
	out := make([]uint64, s.Count)
	for i := range out {
		out[i] = from + uint64(i)
	}
	return out
}

func (s *Seeds) validate() error {
	if s == nil {
		return nil
	}
	if len(s.List) > 0 {
		if s.Count != 0 || s.From != nil {
			return fmt.Errorf("campaign: seeds: use either list or from/count, not both")
		}
		return nil
	}
	if s.Count < 1 {
		return fmt.Errorf("campaign: seeds: count must be >= 1 (got %d)", s.Count)
	}
	// The cap is enforced here, before expand ever allocates: a spec is
	// client-supplied over /v1/campaign, and an unbounded count would
	// let a tiny request body demand a multi-TB seed slice.
	if s.Count > MaxScenarios {
		return fmt.Errorf("campaign: seeds: count %d exceeds the scenario cap (%d)", s.Count, MaxScenarios)
	}
	return nil
}

// DefaultSeed matches the CLI's -seed default; a spec without a seeds
// axis sweeps exactly one scenario per cell at this seed.
const DefaultSeed = 42

// Perturb is one parameter perturbation applied to every non-nil plan
// on the plan axis: multiplicative scales on the plan's timing-ish
// parameters and an additive delta on its retry budget. The zero value
// is the identity (the unperturbed plan).
type Perturb struct {
	Name         string  `json:"name,omitempty"`
	DelayScale   float64 `json:"delayScale,omitempty"`
	SkipsScale   float64 `json:"skipsScale,omitempty"`
	BackoffScale float64 `json:"backoffScale,omitempty"`
	TimeoutScale float64 `json:"timeoutScale,omitempty"`
	RetriesDelta int     `json:"retriesDelta,omitempty"`
}

func (p Perturb) isIdentity() bool { return p == Perturb{} }

func (p Perturb) validate(i int) error {
	for _, s := range []struct {
		name string
		v    float64
	}{{"delayScale", p.DelayScale}, {"skipsScale", p.SkipsScale}, {"backoffScale", p.BackoffScale}, {"timeoutScale", p.TimeoutScale}} {
		if s.v < 0 || math.IsNaN(s.v) || math.IsInf(s.v, 0) {
			return fmt.Errorf("campaign: perturb %d: %s must be a finite value >= 0", i, s.name)
		}
	}
	return nil
}

// scaleInt applies a multiplicative perturbation to an integer
// parameter, keeping it at least floor so a scaled-down fault stays a
// valid fault (delayMs > 0, skips > 0) instead of failing validation.
func scaleInt(v int, scale float64, floor int) int {
	if scale == 0 || v == 0 {
		return v
	}
	n := int(math.Round(float64(v) * scale))
	if n < floor {
		n = floor
	}
	return n
}

// apply returns a private perturbed copy of plan.
func (p Perturb) apply(plan *faultinject.Plan) *faultinject.Plan {
	out := clonePlan(plan)
	if p.isIdentity() {
		return out
	}
	out.Retries += p.RetriesDelta
	if out.Retries < 0 {
		out.Retries = 0
	}
	out.BackoffMs = scaleInt(out.BackoffMs, p.BackoffScale, 0)
	// Floor 1: TimeoutMs 0 means "no timeout" in faultinject, so letting
	// a small scale round a positive timeout down to 0 would turn a
	// tightening perturbation into the removal of the timeout entirely.
	out.TimeoutMs = scaleInt(out.TimeoutMs, p.TimeoutScale, 1)
	for i := range out.Faults {
		f := &out.Faults[i]
		f.DelayMs = scaleInt(f.DelayMs, p.DelayScale, 1)
		f.Skips = scaleInt(f.Skips, p.SkipsScale, 1)
	}
	return out
}

// clonePlan deep-copies a fault plan so every scenario owns its plan
// privately: the runner attaches observers to plans, and a shared plan
// written from parallel scenario workers would be a data race.
func clonePlan(p *faultinject.Plan) *faultinject.Plan {
	if p == nil {
		return nil
	}
	out := &faultinject.Plan{
		Name:      p.Name,
		Retries:   p.Retries,
		BackoffMs: p.BackoffMs,
		TimeoutMs: p.TimeoutMs,
	}
	if len(p.Faults) > 0 {
		out.Faults = append([]faultinject.Fault(nil), p.Faults...)
	}
	return out
}

// Search configures the adversarial mode: a seeded evolutionary loop
// over fault plans, replacing the plan axis of a sweep.
type Search struct {
	// Budget is how many candidate plans the search evaluates (each
	// evaluation runs the whole base grid). The baseline, when enabled,
	// spends the same budget on pure random sampling.
	Budget int `json:"budget"`
	// Objective selects what "worst" means: "triangle-area" maximizes
	// the summed logical Bruneau area; "deadline-miss" maximizes the
	// number of scenarios whose recovery did not complete within
	// DeadlineAttempts attempts (ties broken by area).
	Objective string `json:"objective"`
	// DeadlineAttempts is the recovery deadline, in attempts, for the
	// "deadline-miss" objective: a scenario misses when it needed more
	// than this many attempts to produce a healthy result.
	DeadlineAttempts int `json:"deadlineAttempts,omitempty"`
	// Seed drives every random choice the search makes; same spec +
	// same seed ⇒ the same candidates in the same order, byte-identical
	// output. Defaults to 1.
	Seed uint64 `json:"seed,omitempty"`
	// Retries is the candidate plans' retry budget (default 2). Fault
	// attempts are confined to [1, Retries], so attempt Retries+1 is
	// always clean and every candidate plan is recoverable by
	// construction — the worst plan replays through `resilience chaos`
	// without failing the suite, and the maximum damage per scenario is
	// a bounded 100×Retries.
	Retries int `json:"retries,omitempty"`
	// MaxFaults bounds a candidate's genome length (default 3).
	MaxFaults int `json:"maxFaults,omitempty"`
	// Population is the elite pool size for the evolutionary loop
	// (default 8, clamped to Budget).
	Population int `json:"population,omitempty"`
	// Seams is the seam pool mutations draw from; defaults to
	// ["worker", "body"]. Including seams the target experiments do not
	// have (decoys) makes the space harder for random sampling — which
	// is the point of searching.
	Seams []string `json:"seams,omitempty"`
	// Baseline controls whether the same-budget random-sweep baseline
	// runs for comparison; nil means true.
	Baseline *bool `json:"baseline,omitempty"`
}

func (s *Search) validate() error {
	if s.Budget < 2 {
		return fmt.Errorf("campaign: search: budget must be >= 2 (got %d)", s.Budget)
	}
	switch s.Objective {
	case ObjectiveTriangleArea:
	case ObjectiveDeadlineMiss:
		if s.DeadlineAttempts < 1 {
			return fmt.Errorf("campaign: search: objective %q needs deadlineAttempts >= 1", s.Objective)
		}
	default:
		return fmt.Errorf("campaign: search: unknown objective %q (want %q or %q)",
			s.Objective, ObjectiveTriangleArea, ObjectiveDeadlineMiss)
	}
	if s.Retries < 0 || s.MaxFaults < 0 || s.Population < 0 {
		return fmt.Errorf("campaign: search: negative retries/maxFaults/population")
	}
	return nil
}

// The supported search objectives.
const (
	ObjectiveTriangleArea = "triangle-area"
	ObjectiveDeadlineMiss = "deadline-miss"
)

// Spec is a campaign document. Every axis is optional; the zero spec
// sweeps the whole registry once at the default seed, quick size,
// clean (no fault plan).
type Spec struct {
	Name string `json:"name,omitempty"`
	// Experiments is the experiment-set axis (registry IDs); empty
	// means every registered experiment.
	Experiments []string `json:"experiments,omitempty"`
	// Seeds is the seed axis.
	Seeds *Seeds `json:"seeds,omitempty"`
	// Sizes is the workload-size axis: "quick" and/or "full". Empty
	// means ["quick"].
	Sizes []string `json:"sizes,omitempty"`
	// Plans is the fault-plan axis: inline fault-plan documents
	// (internal/faultinject), with null meaning the clean baseline.
	// Empty means [null]. Mutually exclusive with Search.
	Plans []json.RawMessage `json:"plans,omitempty"`
	// Perturb is the parameter-perturbation axis, applied to every
	// non-null plan (a clean cell has nothing to perturb, so it is
	// swept exactly once regardless). Empty means [identity].
	Perturb []Perturb `json:"perturb,omitempty"`
	// DeadlineAttempts, when > 0, adds deadline-bounded recoverability
	// accounting to sweep rows and the summary: a scenario misses the
	// deadline when it needed more than this many attempts to recover.
	DeadlineAttempts int `json:"deadlineAttempts,omitempty"`
	// Search switches the campaign to adversarial mode.
	Search *Search `json:"search,omitempty"`

	// plans holds the parsed plan axis after ParseSpec.
	plans []*faultinject.Plan
}

// ParseSpec decodes and validates a campaign spec. It is strict —
// unknown fields, trailing data, and invalid embedded fault plans are
// errors — so a typo'd axis fails loudly instead of silently sweeping
// the wrong grid.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign: parse spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaign: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's axes and parses its embedded fault plans.
func (s *Spec) Validate() error {
	if err := s.Seeds.validate(); err != nil {
		return err
	}
	for _, size := range s.Sizes {
		if size != "quick" && size != "full" {
			return fmt.Errorf("campaign: unknown size %q (want \"quick\" or \"full\")", size)
		}
	}
	for i, p := range s.Perturb {
		if err := p.validate(i); err != nil {
			return err
		}
	}
	if s.DeadlineAttempts < 0 {
		return fmt.Errorf("campaign: negative deadlineAttempts")
	}
	s.plans = nil
	for i, raw := range s.Plans {
		if len(raw) == 0 || bytes.Equal(bytes.TrimSpace(raw), []byte("null")) {
			s.plans = append(s.plans, nil)
			continue
		}
		p, err := faultinject.Parse(raw)
		if err != nil {
			return fmt.Errorf("campaign: plan %d: %w", i, err)
		}
		s.plans = append(s.plans, p)
	}
	if s.Search != nil {
		if len(s.Plans) > 0 {
			return fmt.Errorf("campaign: \"plans\" and \"search\" are mutually exclusive (the search owns the plan axis)")
		}
		if len(s.Perturb) > 0 {
			return fmt.Errorf("campaign: \"perturb\" and \"search\" are mutually exclusive")
		}
		if err := s.Search.validate(); err != nil {
			return err
		}
	}
	return nil
}

// planVariant is one cell of the (plan × perturb) grid.
type planVariant struct {
	plan *faultinject.Plan
	name string
	hash string
	raw  json.RawMessage
}

// planVariants expands the plan × perturbation grid. Plan hashes and
// wire documents are computed once per variant, not once per scenario.
func (s *Spec) planVariants() ([]planVariant, error) {
	plans := s.plans
	if len(plans) == 0 {
		plans = []*faultinject.Plan{nil}
	}
	perturbs := s.Perturb
	if len(perturbs) == 0 {
		perturbs = []Perturb{{}}
	}
	var out []planVariant
	for pi, plan := range plans {
		if plan == nil {
			out = append(out, planVariant{name: "clean"})
			continue
		}
		name := plan.Name
		if name == "" {
			name = fmt.Sprintf("plan%d", pi)
		}
		for _, pert := range perturbs {
			v := planVariant{plan: pert.apply(plan), name: name}
			if !pert.isIdentity() {
				suffix := pert.Name
				if suffix == "" {
					suffix = "perturbed"
				}
				v.name += "+" + suffix
			}
			if err := v.plan.Validate(); err != nil {
				return nil, fmt.Errorf("campaign: plan %q perturbed to an invalid plan: %w", v.name, err)
			}
			v.hash = v.plan.Hash()
			raw, err := json.Marshal(v.plan)
			if err != nil {
				return nil, fmt.Errorf("campaign: marshal plan %q: %w", v.name, err)
			}
			v.raw = raw
			out = append(out, v)
		}
	}
	return out, nil
}

// Scenario is one expanded cell of the campaign grid: a single
// (experiment, seed, size, plan) run.
type Scenario struct {
	Index      int
	Experiment experiments.Experiment
	Seed       uint64
	Quick      bool
	Size       string
	// Plan is this scenario's private fault plan (nil = clean); every
	// scenario owns its own copy so executors may attach observers
	// without racing.
	Plan     *faultinject.Plan
	PlanName string
	// PlanHash is the full content hash ("" for clean), the same value
	// the result cache keys on.
	PlanHash string
	// PlanRaw is the plan's compact wire document, used by the HTTP
	// server to rebuild a faithful request body when proxying the run
	// to its cache digest's owner.
	PlanRaw json.RawMessage
	// NoCache asks the executor to bypass the result cache — set by the
	// adversarial search, whose thousands of one-off candidate plans
	// would otherwise pollute the store.
	NoCache bool
}

// Expand resolves the spec against a registry and returns the scenario
// list in canonical order: experiments × seeds × sizes × plan
// variants, outermost to innermost. The order is part of the output
// contract — row N of two runs of the same spec is the same scenario.
func (s *Spec) Expand(reg []experiments.Experiment) ([]Scenario, error) {
	if reg == nil {
		reg = experiments.All()
	}
	byID := make(map[string]experiments.Experiment, len(reg))
	for _, e := range reg {
		byID[e.ID] = e
	}
	var exps []experiments.Experiment
	if len(s.Experiments) == 0 {
		exps = reg
	} else {
		seen := make(map[string]bool, len(s.Experiments))
		for _, id := range s.Experiments {
			e, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("campaign: unknown experiment %q", id)
			}
			if seen[id] {
				return nil, fmt.Errorf("campaign: duplicate experiment %q", id)
			}
			seen[id] = true
			exps = append(exps, e)
		}
	}
	seeds := s.Seeds.expand()
	sizes := s.Sizes
	if len(sizes) == 0 {
		sizes = []string{"quick"}
	}
	variants, err := s.planVariants()
	if err != nil {
		return nil, err
	}
	// Grid size is checked one factor at a time against the remaining
	// headroom (division, never multiplication) so the arithmetic cannot
	// overflow int no matter how large an axis is.
	total := 1
	for _, n := range []int{len(exps), len(seeds), len(sizes), len(variants)} {
		if n == 0 {
			return nil, fmt.Errorf("campaign: spec expands to zero scenarios")
		}
		if total > MaxScenarios/n {
			return nil, fmt.Errorf("campaign: spec expands to more than %d scenarios", MaxScenarios)
		}
		total *= n
	}
	out := make([]Scenario, 0, total)
	for _, e := range exps {
		for _, seed := range seeds {
			for _, size := range sizes {
				for _, v := range variants {
					out = append(out, Scenario{
						Index:      len(out),
						Experiment: e,
						Seed:       seed,
						Quick:      size == "quick",
						Size:       size,
						Plan:       clonePlan(v.plan),
						PlanName:   v.name,
						PlanHash:   v.hash,
						PlanRaw:    v.raw,
					})
				}
			}
		}
	}
	return out, nil
}
