package campaign

import (
	"strings"
	"testing"
)

// TestParseSpecRejects walks the validation table: every malformed spec
// fails loudly with a structured error, never a panic or a silent
// default.
func TestParseSpecRejects(t *testing.T) {
	for _, tc := range []struct {
		name, doc, want string
	}{
		{"empty input", ``, "parse spec"},
		{"not json", `{{`, "parse spec"},
		{"unknown field", `{"experimnets": ["e01"]}`, "unknown field"},
		{"trailing data", `{} {}`, "trailing data"},
		{"bad size", `{"sizes": ["medium"]}`, "unknown size"},
		{"seeds zero count", `{"seeds": {"count": 0}}`, "count must be >= 1"},
		{"seeds list and range", `{"seeds": {"list": [1], "count": 2}}`, "not both"},
		{"negative deadline", `{"deadlineAttempts": -1}`, "negative deadlineAttempts"},
		// The seed-count cap fires at validation, before expand ever
		// allocates: a tiny request body must not demand a huge slice.
		{"seeds count over cap", `{"seeds": {"count": 300000}}`, "scenario cap"},
		{"seeds count absurd", `{"seeds": {"count": 1000000000000}}`, "scenario cap"},
		{"bad plan", `{"plans": [{"faults": [{"experiment": "e01", "kind": "fire"}]}]}`, "unknown kind"},
		{"plan unknown field", `{"plans": [{"surprise": 1}]}`, "unknown field"},
		{"negative perturb scale", `{"perturb": [{"delayScale": -1}]}`, "delayScale"},
		{"plans with search", `{"plans": [null], "search": {"budget": 2, "objective": "triangle-area"}}`, "mutually exclusive"},
		{"perturb with search", `{"perturb": [{}], "search": {"budget": 2, "objective": "triangle-area"}}`, "mutually exclusive"},
		{"search tiny budget", `{"search": {"budget": 1, "objective": "triangle-area"}}`, "budget must be >= 2"},
		{"search bad objective", `{"search": {"budget": 4, "objective": "chaos"}}`, "unknown objective"},
		{"deadline objective without deadline", `{"search": {"budget": 4, "objective": "deadline-miss"}}`, "deadlineAttempts"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.doc))
			if err == nil {
				t.Fatalf("ParseSpec accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestExpandRejects covers registry-time failures.
func TestExpandRejects(t *testing.T) {
	for _, tc := range []struct {
		name, doc, want string
	}{
		{"unknown experiment", `{"experiments": ["zzz"]}`, "unknown experiment"},
		{"duplicate experiment", `{"experiments": ["t01", "t01"]}`, "duplicate experiment"},
		// Each axis is individually under the cap; only the product —
		// computed with overflow-safe headroom checks — exceeds it.
		{"grid too large", `{"seeds": {"count": 200000}, "sizes": ["quick", "full"]}`, "more than"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseSpec([]byte(tc.doc))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := spec.Expand(toyRegistry()); err == nil {
				t.Fatalf("Expand accepted %s", tc.doc)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestZeroSpecDefaults: the empty spec sweeps the whole registry once,
// quick, clean, at the default seed.
func TestZeroSpecDefaults(t *testing.T) {
	spec, err := ParseSpec([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := spec.Expand(toyRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 3 {
		t.Fatalf("expanded %d scenarios, want one per registry entry", len(scs))
	}
	for _, sc := range scs {
		if sc.Seed != DefaultSeed || !sc.Quick || sc.Plan != nil || sc.PlanName != "clean" || sc.PlanHash != "" {
			t.Fatalf("default scenario = %+v", sc)
		}
	}
}

// TestPerturbApply pins the perturbation semantics: multiplicative
// scales with validity floors, additive retries, and distinct plan
// hashes per variant (so the cache never conflates them).
func TestPerturbApply(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
	  "experiments": ["t01"],
	  "plans": [{"name": "p", "retries": 2, "backoffMs": 10, "timeoutMs": 100, "faults": [
	    {"experiment": "t01", "kind": "delay", "delayMs": 8, "attempt": 1},
	    {"experiment": "t01", "kind": "rng", "skips": 4, "attempt": 2}]}],
	  "perturb": [
	    {"name": "double", "delayScale": 2, "skipsScale": 2, "backoffScale": 2, "timeoutScale": 2, "retriesDelta": 1},
	    {"name": "crush", "delayScale": 0.01, "skipsScale": 0.01, "timeoutScale": 0.001, "retriesDelta": -5}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := spec.Expand(toyRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("expanded %d scenarios, want 2", len(scs))
	}
	double, crush := scs[0], scs[1]
	if double.PlanName != "p+double" || crush.PlanName != "p+crush" {
		t.Fatalf("variant names = %q, %q", double.PlanName, crush.PlanName)
	}
	d := double.Plan
	if d.Retries != 3 || d.BackoffMs != 20 || d.TimeoutMs != 200 || d.Faults[0].DelayMs != 16 || d.Faults[1].Skips != 8 {
		t.Fatalf("double variant = %+v", d)
	}
	c := crush.Plan
	// Scaled-down parameters floor at the smallest valid value; retries
	// floor at zero. The timeout floors at 1, not 0 — TimeoutMs 0 means
	// "no timeout", so a tightening perturbation must never remove it.
	if c.Retries != 0 || c.Faults[0].DelayMs != 1 || c.Faults[1].Skips != 1 || c.TimeoutMs != 1 {
		t.Fatalf("crush variant = %+v", c)
	}
	if double.PlanHash == crush.PlanHash || double.PlanHash == "" {
		t.Fatalf("variant hashes collide: %q vs %q", double.PlanHash, crush.PlanHash)
	}
}

// TestSeedsExpansion covers both seed-axis shapes.
func TestSeedsExpansion(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"experiments": ["t01"], "seeds": {"from": 100, "count": 3}}`))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := spec.Expand(toyRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for _, sc := range scs {
		got = append(got, sc.Seed)
	}
	if len(got) != 3 || got[0] != 100 || got[1] != 101 || got[2] != 102 {
		t.Fatalf("range seeds = %v", got)
	}
	spec, err = ParseSpec([]byte(`{"experiments": ["t01"], "seeds": {"list": [9, 3, 9]}}`))
	if err != nil {
		t.Fatal(err)
	}
	scs, err = spec.Expand(toyRegistry())
	if err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	for _, sc := range scs {
		got = append(got, sc.Seed)
	}
	if len(got) != 3 || got[0] != 9 || got[1] != 3 || got[2] != 9 {
		t.Fatalf("list seeds = %v", got)
	}
}
