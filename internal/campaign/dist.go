package campaign

import (
	"math"
	"sort"
)

// Dist bucket layout, modelled on obs.Timing but for the campaign's
// *logical* measures (triangle area in quality%·attempts, attempt
// counts, retries): log-linear bounds spanning distDecades decades up
// from distMin, distPerDecade buckets per decade. At 8 buckets per
// decade adjacent bounds differ by a factor of 10^(1/8) ≈ 1.33, so a
// quantile read from a bucket's geometric midpoint is within ±15% of
// the true sample. Unlike obs.Timing, Dist feeds stdout — its inputs
// are already deterministic (logical units, never wall time), and its
// bucket arithmetic uses only exact-in-float64 operations on those
// inputs, so a snapshot is byte-stable run to run.
const (
	distMin       = 1.0 // counts and areas are >= 1 when nonzero
	distDecades   = 6   // up through 1e6: far past any bounded campaign
	distPerDecade = 8
)

// distBounds holds the precomputed bucket upper bounds.
var distBounds = func() []float64 {
	n := distDecades * distPerDecade
	b := make([]float64, n+1)
	for i := range b {
		b[i] = distMin * math.Pow(10, float64(i)/distPerDecade)
	}
	return b
}()

// Dist accumulates one campaign measure across scenarios. Not safe for
// concurrent use: the campaign executor accumulates rows on the single
// in-order emit path, exactly where NDJSON is written.
type Dist struct {
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets []int64 // len(distBounds)+1; last is +Inf overflow
}

// Observe records one sample. NaN and negative samples are dropped
// (campaign measures are counts and areas, never negative).
func (d *Dist) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	if d.buckets == nil {
		d.buckets = make([]int64, len(distBounds)+1)
	}
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if d.count == 0 || v > d.max {
		d.max = v
	}
	d.count++
	d.sum += v
	d.buckets[sort.SearchFloat64s(distBounds, v)]++
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1): the geometric
// midpoint of the bucket holding the q-th sample, clamped to the
// observed [min, max] so every reported quantile is bounded by real
// samples and degenerate distributions read back exactly. Returns 0
// when nothing was observed. Monotone in q by construction: rank is
// nondecreasing in q, the bucket cursor only moves right, and the
// midpoint sequence min ≤ mid(i) ≤ … ≤ max is nondecreasing.
func (d *Dist) Quantile(q float64) float64 {
	if d.count == 0 {
		return 0
	}
	if q <= 0 || math.IsNaN(q) {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	rank := int64(math.Ceil(q * float64(d.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range d.buckets {
		cum += n
		if cum < rank {
			continue
		}
		var mid float64
		switch {
		case i == 0:
			// Underflow bucket: everything at or below distMin; min is
			// the honest point estimate.
			mid = d.min
		case i > len(distBounds)-1:
			mid = d.max
		default:
			mid = math.Sqrt(distBounds[i-1] * distBounds[i])
		}
		return math.Min(math.Max(mid, d.min), d.max)
	}
	return d.max
}

// DistBucket is one non-empty bucket of a snapshot: cumulative count of
// samples at or below the upper bound Le (Prometheus-style "le").
type DistBucket struct {
	Le  float64 `json:"le"`
	Cum int64   `json:"cum"`
}

// DistSnapshot is the exportable state of a Dist: summary moments, the
// standard quantiles, and the non-empty cumulative buckets (so a
// 49-slot layout with three occupied buckets serializes as three
// entries, not fifty).
type DistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Mean    float64      `json:"mean"`
	P50     float64      `json:"p50"`
	P90     float64      `json:"p90"`
	P99     float64      `json:"p99"`
	Buckets []DistBucket `json:"buckets,omitempty"`
}

// Snapshot exports the distribution. The overflow bucket's bound
// serializes as the observed max (JSON has no +Inf).
func (d *Dist) Snapshot() DistSnapshot {
	s := DistSnapshot{
		Count: d.count,
		Sum:   d.sum,
		Min:   d.min,
		Max:   d.max,
		P50:   d.Quantile(0.50),
		P90:   d.Quantile(0.90),
		P99:   d.Quantile(0.99),
	}
	if d.count > 0 {
		s.Mean = d.sum / float64(d.count)
	}
	var cum int64
	for i, n := range d.buckets {
		cum += n
		if n == 0 {
			continue
		}
		le := s.Max
		if i < len(distBounds) {
			le = distBounds[i]
		}
		s.Buckets = append(s.Buckets, DistBucket{Le: le, Cum: cum})
	}
	return s
}
