package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"resilience/internal/experiments"
	"resilience/internal/rescache"
	"resilience/internal/rescache/memstore"
	"resilience/internal/rng"
	"resilience/internal/runner"
)

// toyExp builds a fast experiment whose output depends on its seed and
// on a strikable random stream ("stage/work"), so rng faults change its
// digest and seed sweeps produce distinct outcomes.
func toyExp(id string) experiments.Experiment {
	return experiments.Experiment{
		ID: id, Title: "toy " + id, Source: "test",
		Modules: []string{"test"}, SupportsQuick: true,
		Run: func(rec *experiments.Recorder, cfg experiments.Config) error {
			r := rng.New(cfg.Seed)
			if err := cfg.Strike("stage/work", r); err != nil {
				return err
			}
			rec.Scalar("draw", r.Intn(1_000_000))
			return nil
		},
	}
}

func toyRegistry() []experiments.Experiment {
	return []experiments.Experiment{toyExp("t01"), toyExp("t02"), toyExp("t03")}
}

func newMemCache(t *testing.T) *rescache.Cache {
	t.Helper()
	mem, err := memstore.New(4096, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	return rescache.New(mem)
}

// sweepSpec is a small mixed grid: clean cells, a recoverable error
// plan, an exhausting plan, and a perturbation axis.
const sweepSpec = `{
  "name": "toy-sweep",
  "experiments": ["t01", "t02"],
  "seeds": {"from": 1, "count": 3},
  "deadlineAttempts": 1,
  "plans": [
    null,
    {"name": "jolt", "retries": 2, "faults": [
      {"experiment": "t01", "kind": "error", "attempt": 1, "message": "jolt"}]},
    {"name": "wall", "retries": 1, "faults": [
      {"experiment": "t02", "kind": "error", "message": "hard down"}]}
  ],
  "perturb": [
    {},
    {"name": "stretch", "retriesDelta": 1}
  ]
}`

// runSpec expands and executes a spec against the toy registry,
// returning the marshalled row stream and summary.
func runSpec(t *testing.T, specDoc string, jobs int, cache *rescache.Cache) ([]byte, Summary) {
	t.Helper()
	spec, err := ParseSpec([]byte(specDoc))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := spec.Expand(toyRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var ndjson bytes.Buffer
	enc := json.NewEncoder(&ndjson)
	cfg := RunConfig{Name: spec.Name, DeadlineAttempts: spec.DeadlineAttempts, Jobs: jobs}
	sum := Run(context.Background(), scs, cfg, LocalExec(cache, nil), func(row Row) {
		if err := enc.Encode(row); err != nil {
			t.Fatal(err)
		}
	})
	return ndjson.Bytes(), sum
}

// TestRunDeterministicAcrossJobs is the package-level half of the
// determinism battery: same spec ⇒ byte-identical NDJSON rows and
// summary at -jobs 1 and 8.
func TestRunDeterministicAcrossJobs(t *testing.T) {
	rows1, sum1 := runSpec(t, sweepSpec, 1, nil)
	rows8, sum8 := runSpec(t, sweepSpec, 8, nil)
	if !bytes.Equal(rows1, rows8) {
		t.Fatalf("row stream differs between jobs=1 and jobs=8:\n%s\n---\n%s", rows1, rows8)
	}
	doc1, err := json.Marshal(sum1)
	if err != nil {
		t.Fatal(err)
	}
	doc8, err := json.Marshal(sum8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc1, doc8) {
		t.Fatalf("summary differs between jobs=1 and jobs=8:\n%s\n---\n%s", doc1, doc8)
	}
}

// TestRunWarmReplayIdentical asserts the other determinism axis: a warm
// re-run over a shared cache emits byte-identical rows even though
// clean scenarios replay from the cache instead of computing.
func TestRunWarmReplayIdentical(t *testing.T) {
	cache := newMemCache(t)
	cold, coldSum := runSpec(t, sweepSpec, 4, cache)
	warm, warmSum := runSpec(t, sweepSpec, 4, cache)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm replay rows differ from cold run:\n%s\n---\n%s", cold, warm)
	}
	if coldSum.Scenarios != warmSum.Scenarios || coldSum.OK != warmSum.OK {
		t.Fatalf("warm summary counts differ: cold %+v warm %+v", coldSum, warmSum)
	}
}

// TestSweepSummaryCounts pins the toy grid's semantics: 2 exps × 3
// seeds × (1 clean + 2 plans × 2 perturbs) = 30 scenarios; "jolt"
// strikes only t01 (recovers), "wall" exhausts t02's retries.
func TestSweepSummaryCounts(t *testing.T) {
	rows, sum := runSpec(t, sweepSpec, 4, nil)
	if sum.Scenarios != 30 {
		t.Fatalf("scenarios = %d, want 30", sum.Scenarios)
	}
	// jolt hits t01 on attempt 1 in both perturb variants: 3 seeds × 2
	// variants = 6 degraded. wall hits t02 every attempt: base variant
	// (retries 1) fails after 2 attempts; stretched (retries 2) also
	// fails — 3 seeds × 2 variants = 6 failed.
	if sum.Degraded != 6 {
		t.Fatalf("degraded = %d, want 6", sum.Degraded)
	}
	if sum.Failed != 6 {
		t.Fatalf("failed = %d, want 6", sum.Failed)
	}
	if sum.OK != 30-6-6 {
		t.Fatalf("ok = %d, want %d", sum.OK, 30-6-6)
	}
	// Every non-clean episode misses a 1-attempt recovery deadline.
	if sum.DeadlineMisses != 12 {
		t.Fatalf("deadlineMisses = %d, want 12", sum.DeadlineMisses)
	}
	// Logical triangle area: degraded jolt rows fail exactly 1 attempt
	// (area 100); wall rows fail 2 (base) and 3 (stretched) attempts.
	wantArea := 6*100.0 + 3*200.0 + 3*300.0
	if got := sum.Distributions.TriangleArea.Sum; got != wantArea {
		t.Fatalf("triangle area sum = %v, want %v", got, wantArea)
	}
	if sum.Diversity.Statuses.Species != 3 {
		t.Fatalf("status species = %d, want 3 (ok/degraded/failed)", sum.Diversity.Statuses.Species)
	}
	// Per-seed draws differ, so the outcome population must be richer
	// than the status population.
	if sum.Diversity.Outcomes.Species <= sum.Diversity.Statuses.Species {
		t.Fatalf("outcome species = %d, want > %d", sum.Diversity.Outcomes.Species, sum.Diversity.Statuses.Species)
	}
	var n int
	for _, line := range bytes.Split(bytes.TrimSpace(rows), []byte("\n")) {
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("row %d: %v", n, err)
		}
		if row.Scenario != n {
			t.Fatalf("row %d has scenario index %d", n, row.Scenario)
		}
		n++
	}
	if n != 30 {
		t.Fatalf("emitted %d rows, want 30", n)
	}
}

// TestBuildRowExecutorErrors covers the executor-error path: ErrStatus
// routes sheds, everything else is an error, and both count as
// deadline misses when a deadline is armed.
func TestBuildRowExecutorErrors(t *testing.T) {
	errShed := errors.New("shed: queue full")
	cfg := RunConfig{
		DeadlineAttempts: 2,
		ErrStatus: func(err error) string {
			if errors.Is(err, errShed) {
				return StatusShed
			}
			return StatusError
		},
	}
	sc := Scenario{Index: 3, Experiment: toyExp("t01"), Seed: 9, Size: "quick", PlanName: "clean"}
	row := buildRow(cfg, sc, runner.Outcome{}, errShed)
	if row.Status != StatusShed || !row.DeadlineMiss || row.Error == "" {
		t.Fatalf("shed row = %+v", row)
	}
	row = buildRow(cfg, sc, runner.Outcome{}, errors.New("boom"))
	if row.Status != StatusError {
		t.Fatalf("error row = %+v", row)
	}
	// An ErrStatus returning nonsense must not invent a new status.
	cfg.ErrStatus = func(error) string { return "lunch" }
	row = buildRow(cfg, sc, runner.Outcome{}, errors.New("boom"))
	if row.Status != StatusError {
		t.Fatalf("unrecognized ErrStatus mapped to %q, want %q", row.Status, StatusError)
	}
}

// TestRunStreamsWhileLaunching: rows must be emitted while workers are
// still being launched, not in one end-of-run burst. With Jobs:1 the
// second scenario's executor refuses to finish until the first row has
// been emitted — if the launch loop shared the emit loop's goroutine
// (blocking on the semaphore until every worker launched), that wait
// would time out into an error row and fail the test.
func TestRunStreamsWhileLaunching(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"experiments":["t01"],"seeds":{"count":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := spec.Expand(toyRegistry())
	if err != nil {
		t.Fatal(err)
	}
	firstEmitted := make(chan struct{})
	exec := func(ctx context.Context, sc Scenario) (runner.Outcome, error) {
		if sc.Index == 1 {
			select {
			case <-firstEmitted:
			case <-time.After(10 * time.Second):
				return runner.Outcome{}, errors.New("row 0 not emitted while launches were pending")
			}
		}
		return runner.Outcome{}, nil
	}
	var once sync.Once
	emitted := 0
	sum := Run(context.Background(), scs, RunConfig{Jobs: 1}, exec, func(Row) {
		emitted++
		once.Do(func() { close(firstEmitted) })
	})
	if sum.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (emission stalled behind worker launches)", sum.Errors)
	}
	if emitted != 3 {
		t.Fatalf("emitted %d rows, want 3", emitted)
	}
}

// TestRunContextCanceled: a canceled context turns every scenario into
// an error row instead of hanging or panicking.
func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec, err := ParseSpec([]byte(`{"experiments":["t01"],"seeds":{"count":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := spec.Expand(toyRegistry())
	if err != nil {
		t.Fatal(err)
	}
	sum := Run(ctx, scs, RunConfig{Jobs: 2}, LocalExec(nil, nil), nil)
	if sum.Errors != 4 {
		t.Fatalf("errors = %d, want 4: %+v", sum.Errors, sum)
	}
}

// TestSummaryBuilderStableSchema: the summary document keeps its keys
// (and therefore its byte layout) even when empty.
func TestSummaryBuilderStableSchema(t *testing.T) {
	b := NewSummaryBuilder(RunConfig{Name: "empty"})
	doc, err := json.Marshal(b.Summary())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"schema":"resilience-campaign/1"`, `"scenarios":0`, `"triangleArea"`, `"recoveryAttempts"`, `"diversity"`} {
		if !bytes.Contains(doc, []byte(key)) {
			t.Fatalf("empty summary missing %s:\n%s", key, doc)
		}
	}
}

// TestExpandGridOrder pins the canonical expansion order the NDJSON
// stream relies on: experiments × seeds × sizes × plan variants.
func TestExpandGridOrder(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
	  "experiments": ["t02", "t01"],
	  "seeds": {"list": [5, 1]},
	  "sizes": ["full", "quick"],
	  "plans": [null, {"name": "p", "faults": [{"experiment": "*", "kind": "rng", "skips": 1}]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := spec.Expand(toyRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, sc := range scs {
		got = append(got, fmt.Sprintf("%s/%d/%s/%s", sc.Experiment.ID, sc.Seed, sc.Size, sc.PlanName))
	}
	want := []string{
		"t02/5/full/clean", "t02/5/full/p", "t02/5/quick/clean", "t02/5/quick/p",
		"t02/1/full/clean", "t02/1/full/p", "t02/1/quick/clean", "t02/1/quick/p",
		"t01/5/full/clean", "t01/5/full/p", "t01/5/quick/clean", "t01/5/quick/p",
		"t01/1/full/clean", "t01/1/full/p", "t01/1/quick/clean", "t01/1/quick/p",
	}
	if len(got) != len(want) {
		t.Fatalf("expanded %d scenarios, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scenario %d = %s, want %s", i, got[i], want[i])
		}
	}
	for i, sc := range scs {
		if sc.Index != i {
			t.Fatalf("scenario %d carries index %d", i, sc.Index)
		}
	}
}

// TestScenarioPlansArePrivate: expanding twice and mutating one
// scenario's plan must not leak into its siblings (each scenario owns a
// clone, so parallel executors can attach observers safely).
func TestScenarioPlansArePrivate(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
	  "experiments": ["t01"],
	  "seeds": {"count": 2},
	  "plans": [{"name": "p", "retries": 1, "faults": [{"experiment": "t01", "kind": "error", "attempt": 1}]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := spec.Expand(toyRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("expanded %d scenarios, want 2", len(scs))
	}
	if scs[0].Plan == scs[1].Plan {
		t.Fatal("scenarios share one *Plan")
	}
	scs[0].Plan.Faults[0].Kind = "panic"
	if scs[1].Plan.Faults[0].Kind != "error" {
		t.Fatal("mutating scenario 0's plan leaked into scenario 1")
	}
}
