package campaign

import (
	"context"
	"encoding/json"
	"fmt"

	"resilience/internal/experiments"
	"resilience/internal/faultinject"
	"resilience/internal/rng"
)

// Search defaults.
const (
	defaultSearchRetries    = 2
	defaultSearchMaxFaults  = 3
	defaultSearchPopulation = 8
)

// defaultSeams is the mutation seam pool when the spec names none:
// the two seams every experiment has. Specs can widen it with stage
// seams ("dcsp/generate", "mc/d3", …) — including decoy seams the
// target experiments don't have, which makes the landscape harder for
// random sampling.
var defaultSeams = []string{"worker", "body"}

// searchKinds is the fault-kind pool. Damaging kinds (panic, error)
// compete with mostly-harmless ones (delay, rng), so a random sampler
// wastes budget on duds while the evolutionary loop learns to stack
// damage.
var searchKinds = []faultinject.Kind{
	faultinject.KindPanic,
	faultinject.KindError,
	faultinject.KindDelay,
	faultinject.KindRNG,
}

// EvalRow is one candidate evaluation's NDJSON record in search mode —
// the search-campaign analogue of Row. Deterministic for a given spec.
type EvalRow struct {
	Eval  int    `json:"eval"`
	Phase string `json:"phase"` // "baseline" or "search"
	// Score is the objective scalar being maximized: summed logical
	// triangle area, or (for deadline-miss) misses lifted above any
	// possible area so lexicographic order and numeric order agree.
	Score float64 `json:"score"`
	// TriangleArea and DeadlineMisses report the candidate's raw grid
	// totals whatever the objective.
	TriangleArea   float64 `json:"triangleArea"`
	DeadlineMisses int     `json:"deadlineMisses"`
	Faults         int     `json:"faults"`
	PlanHash       string  `json:"planHash"`
	// Best marks an evaluation that strictly improved its phase's best.
	Best bool `json:"best"`
}

// SearchDoc reports the adversarial search: the worst plan found, how
// it compares to the same-budget random baseline, and the score
// distribution the search explored.
type SearchDoc struct {
	Objective   string `json:"objective"`
	Budget      int    `json:"budget"`
	Evaluations int    `json:"evaluations"`
	// Best and Baseline are the two phases' best scores on the shared
	// objective scalar; BeatBaseline is the strict comparison the CI
	// gate asserts.
	Best         float64 `json:"best"`
	Baseline     float64 `json:"baseline"`
	BeatBaseline bool    `json:"beatBaseline"`
	// BestArea/BestMisses are the winning candidate's raw grid totals.
	BestArea   float64 `json:"bestArea"`
	BestMisses int     `json:"bestMisses"`
	// WorstPlan is the winning candidate as a replayable fault-plan
	// document (compact, NDJSON-safe): feed it to `resilience chaos` to
	// reproduce the damage. WorstPlanHash is its full content hash.
	WorstPlan     json.RawMessage `json:"worstPlan"`
	WorstPlanHash string          `json:"worstPlanHash"`
	// Scores is the distribution of search-phase scores.
	Scores DistSnapshot `json:"scores"`
}

// searchScore orders candidates: primary the objective, area as the
// deadline-miss tiebreak.
type searchScore struct {
	area   float64
	misses int
}

// searchSpace is the resolved genome space one search runs over.
type searchSpace struct {
	ids       []string
	seams     []string
	retries   int
	maxFaults int
	// offset lifts a deadline-miss count above any achievable area sum,
	// making the lexicographic (misses, area) order a single float.
	offset    float64
	objective string
}

func (sp searchSpace) value(s searchScore) float64 {
	if sp.objective == ObjectiveDeadlineMiss {
		return float64(s.misses)*sp.offset + s.area
	}
	return s.area
}

// randomFault draws one genome gene. Attempts are confined to
// [1, retries], so attempt retries+1 is always clean: every candidate
// plan is recoverable by construction and replays through `resilience
// chaos` without failing the suite.
func (sp searchSpace) randomFault(r *rng.Source) faultinject.Fault {
	f := faultinject.Fault{
		Experiment: sp.ids[r.Intn(len(sp.ids))],
		Seam:       sp.seams[r.Intn(len(sp.seams))],
		Attempt:    1 + r.Intn(max(1, sp.retries)),
	}
	sp.setKind(&f, searchKinds[r.Intn(len(searchKinds))], r)
	return f
}

// setKind switches a gene's fault kind, drawing whatever parameters the
// new kind requires so the gene stays valid.
func (sp searchSpace) setKind(f *faultinject.Fault, k faultinject.Kind, r *rng.Source) {
	f.Kind = k
	f.DelayMs, f.Skips = 0, 0
	switch k {
	case faultinject.KindDelay:
		f.DelayMs = 1 + r.Intn(5)
	case faultinject.KindRNG:
		f.Skips = 1 + r.Intn(4)
	}
}

// randomPlan draws a whole candidate: 1..maxFaults random genes on a
// fixed chassis (retries from the spec, no backoff or timeout so
// evaluations stay fast and wall-clock-free).
func (sp searchSpace) randomPlan(r *rng.Source) *faultinject.Plan {
	p := &faultinject.Plan{Name: "candidate", Retries: sp.retries}
	n := 1 + r.Intn(max(1, sp.maxFaults))
	for i := 0; i < n; i++ {
		p.Faults = append(p.Faults, sp.randomFault(r))
	}
	return p
}

// mutate returns a copy of parent one step away: a gene edited,
// resampled, added, removed, or escalated. Escalation — duplicate a
// gene one attempt deeper, overwriting another slot when the genome is
// full — is the move that exploits the retry ladder's structure: a
// fault at attempt k only fires when attempts 1..k−1 already failed,
// so damage compounds only along attempt *prefixes*, which random
// sampling almost never assembles whole but escalation builds one rung
// at a time.
func (sp searchSpace) mutate(parent *faultinject.Plan, r *rng.Source) *faultinject.Plan {
	p := clonePlan(parent)
	op := r.Intn(5)
	switch {
	case op == 1 && len(p.Faults) < sp.maxFaults:
		p.Faults = append(p.Faults, sp.randomFault(r))
		return p
	case op == 2 && len(p.Faults) > 1:
		i := r.Intn(len(p.Faults))
		p.Faults = append(p.Faults[:i], p.Faults[i+1:]...)
		return p
	case op == 3:
		i := r.Intn(len(p.Faults))
		esc := p.Faults[i]
		if esc.Attempt < sp.retries {
			esc.Attempt++
			if len(p.Faults) < sp.maxFaults {
				p.Faults = append(p.Faults, esc)
			} else if len(p.Faults) > 1 {
				j := r.Intn(len(p.Faults) - 1)
				if j >= i {
					j++
				}
				p.Faults[j] = esc
			}
			return p
		}
	case op == 4:
		p.Faults[r.Intn(len(p.Faults))] = sp.randomFault(r)
		return p
	}
	f := &p.Faults[r.Intn(len(p.Faults))]
	switch r.Intn(4) {
	case 0:
		f.Experiment = sp.ids[r.Intn(len(sp.ids))]
	case 1:
		f.Seam = sp.seams[r.Intn(len(sp.seams))]
	case 2:
		sp.setKind(f, searchKinds[r.Intn(len(searchKinds))], r)
	default:
		f.Attempt = 1 + r.Intn(max(1, sp.retries))
	}
	return p
}

// elite is one member of the evolutionary pool.
type elite struct {
	plan  *faultinject.Plan
	score float64
}

// RunSearch runs the spec's adversarial mode: a same-budget random
// baseline phase, then a seeded evolutionary loop (random init, then
// tournament-select + mutate over an elite pool), every candidate
// evaluated by sweeping the spec's base grid (experiments × seeds ×
// sizes) under the candidate plan with the cache bypassed. emit (if
// non-nil) receives one EvalRow per evaluation, in order. The returned
// Summary is the winning candidate's grid summary with the SearchDoc
// attached. Deterministic: every random choice flows from search.seed,
// and evaluations inherit Run's jobs-independence.
func RunSearch(ctx context.Context, spec *Spec, reg []experiments.Experiment, cfg RunConfig, exec ExecFunc, emit func(EvalRow)) (Summary, error) {
	search := spec.Search
	if search == nil {
		return Summary{}, fmt.Errorf("campaign: spec has no search section")
	}
	base, err := spec.Expand(reg)
	if err != nil {
		return Summary{}, err
	}
	sp := searchSpace{
		retries:   search.Retries,
		maxFaults: search.MaxFaults,
		objective: search.Objective,
		seams:     search.Seams,
	}
	if sp.retries == 0 {
		sp.retries = defaultSearchRetries
	}
	if sp.maxFaults == 0 {
		sp.maxFaults = defaultSearchMaxFaults
	}
	if len(sp.seams) == 0 {
		sp.seams = defaultSeams
	}
	seen := make(map[string]bool)
	for _, sc := range base {
		if !seen[sc.Experiment.ID] {
			seen[sc.Experiment.ID] = true
			sp.ids = append(sp.ids, sc.Experiment.ID)
		}
	}
	// Max area per scenario is 100×(retries+1) (every attempt failed),
	// so this offset strictly dominates any area sum.
	sp.offset = 100*float64(sp.retries+1)*float64(len(base)) + 1

	population := search.Population
	if population == 0 {
		population = defaultSearchPopulation
	}
	if population > search.Budget {
		population = search.Budget
	}
	seed := search.Seed
	if seed == 0 {
		seed = 1
	}
	// The search deadline takes over only when set; a triangle-area
	// search otherwise keeps the spec-level deadlineAttempts the caller
	// put in cfg, so its rows and summary still account deadline misses.
	if search.DeadlineAttempts != 0 {
		cfg.DeadlineAttempts = search.DeadlineAttempts
	}

	evals := 0
	evaluate := func(p *faultinject.Plan) (searchScore, Summary) {
		scs := make([]Scenario, len(base))
		hash := p.Hash()
		raw, _ := json.Marshal(p)
		for i, sc := range base {
			sc.Plan = clonePlan(p)
			sc.PlanName = "candidate"
			sc.PlanHash = hash
			sc.PlanRaw = raw
			sc.NoCache = true
			scs[i] = sc
		}
		sum := Run(ctx, scs, cfg, exec, nil)
		evals++
		return searchScore{area: sum.Distributions.TriangleArea.Sum, misses: sum.DeadlineMisses}, sum
	}
	report := func(phase string, p *faultinject.Plan, s searchScore, best bool) {
		if emit == nil {
			return
		}
		emit(EvalRow{
			Eval:           evals,
			Phase:          phase,
			Score:          sp.value(s),
			TriangleArea:   s.area,
			DeadlineMisses: s.misses,
			Faults:         len(p.Faults),
			PlanHash:       shortHash(p.Hash()),
			Best:           best,
		})
	}

	// Phase 1: the same-budget random baseline the search must beat.
	var baselineBest float64
	runBaseline := search.Baseline == nil || *search.Baseline
	if runBaseline {
		r := rng.New(rng.Derive(seed, "baseline"))
		for i := 0; i < search.Budget; i++ {
			if ctx.Err() != nil {
				break
			}
			p := sp.randomPlan(r)
			s, _ := evaluate(p)
			v := sp.value(s)
			improved := i == 0 || v > baselineBest
			if improved {
				baselineBest = v
			}
			report("baseline", p, s, improved)
		}
	}

	// Phase 2: the evolutionary loop — random init to fill the elite
	// pool, then binary-tournament parent selection and one mutation
	// per evaluation.
	r := rng.New(rng.Derive(seed, "search"))
	var pool []elite
	var bestPlan *faultinject.Plan
	var bestScore searchScore
	var bestSum Summary
	haveBest := false
	var scores Dist
	for i := 0; i < search.Budget; i++ {
		if ctx.Err() != nil {
			break
		}
		var p *faultinject.Plan
		if i < population || len(pool) == 0 {
			p = sp.randomPlan(r)
		} else {
			// Rank-biased tournament on the score-sorted pool: two
			// uniform draws, keep the better rank. Ties in score are
			// already ordered newest-first, so plateaus favor fresh
			// genomes.
			at := r.Intn(len(pool))
			if b := r.Intn(len(pool)); b < at {
				at = b
			}
			p = sp.mutate(pool[at].plan, r)
		}
		s, sum := evaluate(p)
		v := sp.value(s)
		scores.Observe(v)
		improved := !haveBest || v > sp.value(bestScore)
		if improved {
			haveBest = true
			bestPlan, bestScore, bestSum = p, s, sum
		}
		report("search", p, s, improved)
		// Insert into the elite pool: keep the best `population` plans.
		// Ties go to the newcomer (it sorts ahead of equal scores and
		// the oldest worst elite is truncated), so the pool drifts
		// across neutral plateaus instead of freezing on its first
		// `population` candidates — without drift, an all-dud init pins
		// the search to the same few neighborhoods for the whole
		// budget. Sequential and rng-free, so still deterministic.
		at := len(pool)
		for j, e := range pool {
			if v >= e.score {
				at = j
				break
			}
		}
		if at < population {
			pool = append(pool, elite{})
			copy(pool[at+1:], pool[at:])
			pool[at] = elite{plan: p, score: v}
			if len(pool) > population {
				pool = pool[:population]
			}
		}
	}
	if !haveBest {
		return Summary{}, fmt.Errorf("campaign: search evaluated no candidates: %w", ctx.Err())
	}

	doc := &SearchDoc{
		Objective:    search.Objective,
		Budget:       search.Budget,
		Evaluations:  evals,
		Best:         sp.value(bestScore),
		Baseline:     baselineBest,
		BestArea:     bestScore.area,
		BestMisses:   bestScore.misses,
		BeatBaseline: runBaseline && sp.value(bestScore) > baselineBest,
		Scores:       scores.Snapshot(),
	}
	if raw, err := json.Marshal(bestPlan); err == nil {
		doc.WorstPlan = raw
	}
	doc.WorstPlanHash = bestPlan.Hash()
	bestSum.Search = doc
	return bestSum, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
