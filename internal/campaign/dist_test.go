package campaign

import (
	"math"
	"sort"
	"testing"

	"resilience/internal/rng"
)

// TestDistQuantileProperties is the satellite property test: over many
// random sample sets, every reported quantile is bounded by the
// observed min/max and the quantile function is monotone in rank.
func TestDistQuantileProperties(t *testing.T) {
	r := rng.New(7)
	qs := []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for trial := 0; trial < 200; trial++ {
		var d Dist
		n := 1 + r.Intn(400)
		min, max := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			// Mix magnitudes across the whole bucket range, including
			// underflow (<1) and overflow (>1e6) samples.
			v := math.Pow(10, r.Float64()*9-1)
			if r.Intn(5) == 0 {
				v = float64(r.Intn(4)) // exact small counts incl. zero
			}
			d.Observe(v)
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		prev := math.Inf(-1)
		for _, q := range qs {
			got := d.Quantile(q)
			if got < min || got > max {
				t.Fatalf("trial %d: q%.3f = %v outside [%v, %v]", trial, q, got, min, max)
			}
			if got < prev {
				t.Fatalf("trial %d: quantiles not monotone: q%.3f = %v < %v", trial, q, got, prev)
			}
			prev = got
		}
		snap := d.Snapshot()
		if snap.Count != int64(n) || snap.Min != min || snap.Max != max {
			t.Fatalf("trial %d: snapshot moments %+v, want n=%d min=%v max=%v", trial, snap, n, min, max)
		}
		if snap.P50 > snap.P90 || snap.P90 > snap.P99 {
			t.Fatalf("trial %d: snapshot quantiles not ordered: %+v", trial, snap)
		}
		// Buckets are cumulative, strictly increasing, and end at n.
		var prevCum int64
		var prevLe float64
		for i, b := range snap.Buckets {
			if b.Cum <= prevCum {
				t.Fatalf("trial %d: bucket %d cum %d not increasing past %d", trial, i, b.Cum, prevCum)
			}
			if i > 0 && b.Le <= prevLe {
				t.Fatalf("trial %d: bucket %d bound %v not increasing past %v", trial, i, b.Le, prevLe)
			}
			prevCum, prevLe = b.Cum, b.Le
		}
		if prevCum != int64(n) {
			t.Fatalf("trial %d: buckets sum to %d, want %d", trial, prevCum, n)
		}
	}
}

// TestDistDegenerate: an all-equal sample set reads back exactly at
// every quantile, and the empty distribution reports zeros.
func TestDistDegenerate(t *testing.T) {
	var d Dist
	for i := 0; i < 10; i++ {
		d.Observe(300)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := d.Quantile(q); got != 300 {
			t.Fatalf("q%.2f = %v, want exactly 300", q, got)
		}
	}
	var empty Dist
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty dist quantile != 0")
	}
	snap := empty.Snapshot()
	if snap.Count != 0 || snap.Mean != 0 || len(snap.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
}

// TestDistDropsInvalid: NaN and negative samples are ignored rather
// than corrupting the moments.
func TestDistDropsInvalid(t *testing.T) {
	var d Dist
	d.Observe(math.NaN())
	d.Observe(-4)
	d.Observe(2)
	snap := d.Snapshot()
	if snap.Count != 1 || snap.Min != 2 || snap.Max != 2 {
		t.Fatalf("snapshot = %+v, want single sample 2", snap)
	}
}

// TestDistQuantileAccuracy: against a sorted reference, bucket-midpoint
// estimates stay within one bucket width (±15%) of the true sample.
func TestDistQuantileAccuracy(t *testing.T) {
	r := rng.New(3)
	var d Dist
	var samples []float64
	for i := 0; i < 5000; i++ {
		v := 1 + math.Pow(10, r.Float64()*4)
		d.Observe(v)
		samples = append(samples, v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := samples[int(math.Ceil(q*float64(len(samples))))-1]
		got := d.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.16 {
			t.Fatalf("q%.2f = %v, true %v, relative error %.3f > 0.16", q, got, want, rel)
		}
	}
}
