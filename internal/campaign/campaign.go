package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"resilience/internal/diversity"
	"resilience/internal/experiments"
	"resilience/internal/obs"
	"resilience/internal/rescache"
	"resilience/internal/runner"
)

// Row statuses. "failed" is an experiment outcome (all attempts failed
// — that is data, not an executor problem); "shed" and "error" are
// executor verdicts (the scenario never produced an outcome at all).
const (
	StatusOK       = "ok"
	StatusDegraded = "degraded"
	StatusFailed   = "failed"
	StatusShed     = "shed"
	StatusError    = "error"
)

// Row is one scenario's NDJSON record. Every field is derived from the
// spec and the experiment's deterministic outcome — never from wall
// time, cache warmth, or -jobs — so two runs of the same spec produce
// byte-identical row streams.
type Row struct {
	Scenario   int    `json:"scenario"`
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Size       string `json:"size"`
	Plan       string `json:"plan"`
	PlanHash   string `json:"planHash,omitempty"`
	Status     string `json:"status"`
	Error      string `json:"error,omitempty"`
	// Recovered reports a recovery episode that completed: at least one
	// attempt failed and a later one succeeded.
	Recovered bool `json:"recovered"`
	// FailedAttempts is the logical damage: how many attempts failed
	// before the outcome (0 for a clean run — including a warm replay
	// of one, which runs no attempts at all).
	FailedAttempts int `json:"failedAttempts"`
	// Retries is FailedAttempts capped by the retry budget's view: for
	// a recovered scenario it equals FailedAttempts, for an exhausted
	// one it is attempts−1.
	Retries int `json:"retries"`
	// TriangleArea is the logical Bruneau triangle: each failed attempt
	// costs one time unit at 100% quality loss, so area =
	// 100 × FailedAttempts in quality%·attempts. The wall-clock triangle
	// (runner.Recovery.Loss) stays on the obs side.
	TriangleArea float64 `json:"triangleArea"`
	// DeadlineMiss reports deadline-bounded recoverability (only
	// populated when the spec sets deadlineAttempts): true when the
	// scenario did not reach a healthy result within the deadline's
	// attempt budget.
	DeadlineMiss bool `json:"deadlineMiss,omitempty"`
	// Digest is the first 12 hex digits of sha256 over the result's
	// canonical bytes — the species tag for outcome-diversity indices,
	// and a cheap cross-run equality check. Empty when the scenario
	// produced no canonical result.
	Digest string `json:"digest,omitempty"`
}

// ExecFunc executes one scenario. A non-nil outcome error (Outcome.Err)
// means the experiment itself failed — that is recorded as data. A
// non-nil returned error means the executor could not run the scenario
// at all (context canceled, request shed); RunConfig.ErrStatus maps it
// to a row status.
type ExecFunc func(ctx context.Context, sc Scenario) (runner.Outcome, error)

// RunConfig configures a campaign execution.
type RunConfig struct {
	// Name labels the summary document.
	Name string
	// DeadlineAttempts enables deadline-bounded recoverability rows and
	// counting when > 0.
	DeadlineAttempts int
	// Jobs bounds scenario-level parallelism; values below 1 mean 1.
	Jobs int
	// ErrStatus maps an executor error to a row status (StatusShed or
	// StatusError); nil, or an unrecognized return, means StatusError.
	ErrStatus func(error) string
}

// buildRow derives the deterministic row for one scenario's outcome.
func buildRow(cfg RunConfig, sc Scenario, out runner.Outcome, execErr error) Row {
	row := Row{
		Scenario:   sc.Index,
		Experiment: sc.Experiment.ID,
		Seed:       sc.Seed,
		Size:       sc.Size,
		Plan:       sc.PlanName,
	}
	if sc.PlanHash != "" {
		row.PlanHash = shortHash(sc.PlanHash)
	}
	if execErr != nil {
		row.Status = StatusError
		if cfg.ErrStatus != nil {
			if s := cfg.ErrStatus(execErr); s == StatusShed || s == StatusError {
				row.Status = s
			}
		}
		row.Error = execErr.Error()
		if cfg.DeadlineAttempts > 0 {
			row.DeadlineMiss = true
		}
		return row
	}
	if r := out.Recovery; r != nil {
		row.FailedAttempts = r.FailedAttempts
		row.Recovered = r.Recovered
	}
	row.TriangleArea = 100 * float64(row.FailedAttempts)
	if out.Attempts > 1 {
		row.Retries = out.Attempts - 1
	}
	switch {
	case out.Err != nil:
		row.Status = StatusFailed
		row.Error = out.Err.Error()
	case out.Degraded:
		row.Status = StatusDegraded
	default:
		row.Status = StatusOK
	}
	if cfg.DeadlineAttempts > 0 {
		// Attempts-to-health is failed attempts plus the one that
		// succeeded; an exhausted scenario never got healthy at all.
		row.DeadlineMiss = out.Err != nil || row.FailedAttempts+1 > cfg.DeadlineAttempts
	}
	if len(out.Canon) > 0 {
		sum := sha256.Sum256(out.Canon)
		row.Digest = hex.EncodeToString(sum[:6])
	}
	return row
}

// shortHash abbreviates a plan content hash for row display; the full
// hash still rides on Scenario.PlanHash for cache keying.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// Run executes every scenario with at most cfg.Jobs in flight, calling
// emit once per scenario in index order as rows become available —
// runner.Run's in-order delivery discipline, lifted a level: rows are
// built inside the workers (and the outcome's canonical bytes dropped
// there), but emission and summary accumulation happen on the single
// ordered loop, so the row stream and the summary are byte-identical
// at any Jobs.
func Run(ctx context.Context, scenarios []Scenario, cfg RunConfig, exec ExecFunc, emit func(Row)) Summary {
	jobs := cfg.Jobs
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(scenarios) {
		jobs = len(scenarios)
	}
	if jobs < 1 {
		jobs = 1
	}
	rows := make([]Row, len(scenarios))
	done := make([]chan struct{}, len(scenarios))
	for i := range done {
		done[i] = make(chan struct{})
	}
	// The launch loop runs on its own goroutine: it blocks on the jobs
	// semaphore, and if it shared the emit loop's goroutine no row could
	// be emitted until every worker had been launched — turning the
	// stream into a single end-of-run burst. Ordering is unaffected; the
	// emit loop below still drains done[i] in index order.
	sem := make(chan struct{}, jobs)
	go func() {
		for i := range scenarios {
			i := i
			sem <- struct{}{}
			go func() {
				defer func() { <-sem }()
				out, err := exec(ctx, scenarios[i])
				rows[i] = buildRow(cfg, scenarios[i], out, err)
				close(done[i])
			}()
		}
	}()
	b := NewSummaryBuilder(cfg)
	for i := range scenarios {
		<-done[i]
		b.Add(rows[i])
		if emit != nil {
			emit(rows[i])
		}
	}
	return b.Summary()
}

// DiversityDoc reports the paper's diversity measures over one species
// population drawn from the campaign's rows.
type DiversityDoc struct {
	// Species is the number of distinct species observed.
	Species int `json:"species"`
	// IndexG is the paper's Diversity Index G over raw counts.
	IndexG float64 `json:"indexG"`
	// InverseSimpson is the effective number of species.
	InverseSimpson float64 `json:"inverseSimpson"`
	// Shannon is the Shannon entropy in nats.
	Shannon float64 `json:"shannon"`
}

// Distributions carries the summary's three headline distributions.
type Distributions struct {
	// TriangleArea is the logical Bruneau area over all scenarios.
	TriangleArea DistSnapshot `json:"triangleArea"`
	// RecoveryAttempts is attempts-to-outcome over only the scenarios
	// that had a recovery episode (failedAttempts > 0) — the logical
	// recovery time.
	RecoveryAttempts DistSnapshot `json:"recoveryAttempts"`
	// Retries is the retry count over all scenarios.
	Retries DistSnapshot `json:"retries"`
}

// Summary is the campaign's final document (the last NDJSON line of a
// stream, or the whole body in summary formats).
type Summary struct {
	Schema    string `json:"schema"`
	Name      string `json:"name,omitempty"`
	Scenarios int    `json:"scenarios"`
	OK        int    `json:"ok"`
	Degraded  int    `json:"degraded"`
	Failed    int    `json:"failed"`
	Shed      int    `json:"shed"`
	Errors    int    `json:"errors"`
	Retries   int    `json:"retries"`
	// DeadlineAttempts echoes the spec's recovery deadline (0 = none);
	// DeadlineMisses counts scenarios that were not healthy within it.
	DeadlineAttempts int           `json:"deadlineAttempts"`
	DeadlineMisses   int           `json:"deadlineMisses"`
	Distributions    Distributions `json:"distributions"`
	Diversity        struct {
		// Statuses treats each row status as a species — a healthy
		// campaign is dominated by one species ("ok"), an interesting
		// one is not.
		Statuses DiversityDoc `json:"statuses"`
		// Outcomes treats each distinct result digest as a species:
		// how many genuinely different results the grid produced.
		Outcomes DiversityDoc `json:"outcomes"`
	} `json:"diversity"`
	Search *SearchDoc `json:"search,omitempty"`
}

// SummaryBuilder accumulates rows into a Summary. Add is total over
// arbitrary rows — statuses it does not recognize count as errors, and
// negative or NaN measures are dropped by the distributions — so a
// partial or even corrupted row stream still summarizes. Not safe for
// concurrent use; feed it from the ordered emit loop.
type SummaryBuilder struct {
	cfg        RunConfig
	sum        Summary
	area       Dist
	recovery   Dist
	retries    Dist
	statusPop  map[string]int
	outcomePop map[string]int
}

// NewSummaryBuilder returns a builder for one campaign run.
func NewSummaryBuilder(cfg RunConfig) *SummaryBuilder {
	b := &SummaryBuilder{
		cfg:        cfg,
		statusPop:  make(map[string]int),
		outcomePop: make(map[string]int),
	}
	b.sum.Schema = SpecSchema
	b.sum.Name = cfg.Name
	b.sum.DeadlineAttempts = cfg.DeadlineAttempts
	return b
}

// Add accumulates one row.
func (b *SummaryBuilder) Add(row Row) {
	b.sum.Scenarios++
	switch row.Status {
	case StatusOK:
		b.sum.OK++
	case StatusDegraded:
		b.sum.Degraded++
	case StatusFailed:
		b.sum.Failed++
	case StatusShed:
		b.sum.Shed++
	default:
		b.sum.Errors++
	}
	if row.Retries > 0 {
		b.sum.Retries += row.Retries
	}
	if row.DeadlineMiss {
		b.sum.DeadlineMisses++
	}
	b.area.Observe(row.TriangleArea)
	if row.FailedAttempts > 0 {
		attempts := row.FailedAttempts
		if row.Recovered {
			attempts++
		}
		b.recovery.Observe(float64(attempts))
	}
	b.retries.Observe(float64(row.Retries))
	b.statusPop[row.Status]++
	// Rows without a digest (shed, errored, unmarshalable) share one
	// species: "no result" is itself an outcome the grid produced.
	key := row.Digest
	if key == "" {
		key = "(none)"
	}
	b.outcomePop[key]++
}

// Summary finalizes and returns the document.
func (b *SummaryBuilder) Summary() Summary {
	s := b.sum
	s.Distributions.TriangleArea = b.area.Snapshot()
	s.Distributions.RecoveryAttempts = b.recovery.Snapshot()
	s.Distributions.Retries = b.retries.Snapshot()
	s.Diversity.Statuses = diversityDoc(b.statusPop)
	s.Diversity.Outcomes = diversityDoc(b.outcomePop)
	return s
}

// diversityDoc computes the diversity measures over a species→count
// population. Keys are sorted before accumulation so float summation
// order — and therefore the serialized digits — is deterministic.
func diversityDoc(pop map[string]int) DiversityDoc {
	if len(pop) == 0 {
		return DiversityDoc{}
	}
	keys := make([]string, 0, len(pop))
	for k := range pop {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pops := make([]float64, len(keys))
	for i, k := range keys {
		pops[i] = float64(pop[k])
	}
	doc := DiversityDoc{Species: diversity.Richness(pops)}
	if g, err := diversity.IndexG(pops); err == nil {
		doc.IndexG = g
	}
	if inv, err := diversity.InverseSimpson(pops); err == nil {
		doc.InverseSimpson = inv
	}
	if h, err := diversity.Shannon(pops); err == nil {
		doc.Shannon = h
	}
	return doc
}

// LocalExec returns an ExecFunc that runs scenarios in-process through
// the staged engine via runner.Run — the same retry/timeout/cache path
// `resilience suite` uses, one experiment per call. Each scenario runs
// at Jobs:1 inside its worker slot (campaign-level parallelism already
// saturates the pool) with BytesOnly hits, so a warm scenario costs a
// cache read and a digest. The observer receives wall-clock instruments
// (campaign.scenario.seconds etc.); rows never do.
func LocalExec(cache *rescache.Cache, observer *obs.Observer) ExecFunc {
	return func(ctx context.Context, sc Scenario) (runner.Outcome, error) {
		if err := ctx.Err(); err != nil {
			return runner.Outcome{}, err
		}
		opts := runner.Options{
			Jobs:      1,
			Seed:      sc.Seed,
			Quick:     sc.Quick,
			Obs:       observer,
			BytesOnly: true,
		}
		if sc.Plan != nil {
			opts.Hooks = sc.Plan.HookFor
			opts.Retries = sc.Plan.Retries
			opts.Backoff = sc.Plan.Backoff()
			opts.Timeout = sc.Plan.Timeout()
		}
		if !sc.NoCache {
			opts.Cache = cache
			opts.PlanHash = sc.PlanHash
		}
		var out runner.Outcome
		runner.Run([]experiments.Experiment{sc.Experiment}, opts, func(o runner.Outcome) { out = o })
		return out, nil
	}
}
