package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"resilience/internal/faultinject"
)

// searchSpecDoc is the toy adversarial spec the regression tests pin:
// two experiments, one seed, a seam pool salted with ghost seams that
// never fire (decoys random sampling wastes budget on), and attempt
// budgets that reward stacking damage precisely.
const searchSpecDoc = `{
  "name": "toy-search",
  "experiments": ["t01", "t02"],
  "seeds": {"list": [7]},
  "search": {"budget": 40, "objective": "triangle-area", "seed": 1,
             "retries": 3, "maxFaults": 3,
             "seams": ["worker", "body", "ghost/a", "ghost/b", "ghost/c"]}
}`

func runSearchSpec(t *testing.T, doc string, jobs int) (Summary, []byte) {
	t.Helper()
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var rows bytes.Buffer
	enc := json.NewEncoder(&rows)
	sum, err := RunSearch(context.Background(), spec, toyRegistry(),
		RunConfig{Name: spec.Name, Jobs: jobs}, LocalExec(nil, nil), func(row EvalRow) {
			if err := enc.Encode(row); err != nil {
				t.Fatal(err)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	return sum, rows.Bytes()
}

// TestSearchBeatsBaseline is the forward direction of the adversarial
// regression: on the same budget, the seeded evolutionary search must
// find a strictly worse plan than pure random sampling.
func TestSearchBeatsBaseline(t *testing.T) {
	sum, rows := runSearchSpec(t, searchSpecDoc, 4)
	doc := sum.Search
	if doc == nil {
		t.Fatal("summary carries no search document")
	}
	if doc.Evaluations != 80 {
		t.Fatalf("evaluations = %d, want 80 (budget 40 × baseline + search)", doc.Evaluations)
	}
	if !doc.BeatBaseline || doc.Best <= doc.Baseline {
		t.Fatalf("search did not beat baseline: best %v vs baseline %v", doc.Best, doc.Baseline)
	}
	if doc.Best != doc.BestArea {
		t.Fatalf("triangle-area objective: best %v != bestArea %v", doc.Best, doc.BestArea)
	}
	if len(doc.WorstPlan) == 0 || doc.WorstPlanHash == "" {
		t.Fatal("no worst-plan artifact")
	}
	// The artifact is a valid, replayable fault plan whose hash matches.
	plan, err := faultinject.Parse(doc.WorstPlan)
	if err != nil {
		t.Fatalf("worst plan does not parse: %v", err)
	}
	if plan.Hash() != doc.WorstPlanHash {
		t.Fatalf("worst plan hash %q != reported %q", plan.Hash(), doc.WorstPlanHash)
	}
	// Eval rows stream in order with coherent phases.
	lines := bytes.Split(bytes.TrimSpace(rows), []byte("\n"))
	if len(lines) != 80 {
		t.Fatalf("emitted %d eval rows, want 80", len(lines))
	}
	for i, line := range lines {
		var row EvalRow
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("eval row %d: %v", i, err)
		}
		if row.Eval != i+1 {
			t.Fatalf("eval row %d numbered %d", i, row.Eval)
		}
		wantPhase := "baseline"
		if i >= 40 {
			wantPhase = "search"
		}
		if row.Phase != wantPhase {
			t.Fatalf("eval row %d phase %q, want %q", i, row.Phase, wantPhase)
		}
	}
}

// TestSearchWorstPlanReplays is the reverse direction: sweeping the
// same grid under the worst-plan artifact reproduces exactly the
// triangle area the search reported — the artifact is evidence, not
// just a trophy.
func TestSearchWorstPlanReplays(t *testing.T) {
	sum, _ := runSearchSpec(t, searchSpecDoc, 4)
	doc := sum.Search
	if doc == nil {
		t.Fatal("summary carries no search document")
	}
	replayDoc := fmt.Sprintf(`{"experiments":["t01","t02"],"seeds":{"list":[7]},"plans":[%s]}`, doc.WorstPlan)
	_, replay := runSpec(t, replayDoc, 1, nil)
	if got := replay.Distributions.TriangleArea.Sum; got != doc.BestArea {
		t.Fatalf("replayed area %v != reported %v", got, doc.BestArea)
	}
	// Candidate plans are recoverable by construction (fault attempts
	// stay within the retry budget), so the replay degrades — it never
	// fails the sweep.
	if replay.Failed != 0 || replay.Errors != 0 {
		t.Fatalf("worst-plan replay failed scenarios: %+v", replay)
	}
	if replay.Degraded == 0 {
		t.Fatal("worst-plan replay did no damage at all")
	}
}

// TestSearchDeterministic: the whole search — rows and summary — is a
// pure function of the spec, at any jobs setting.
func TestSearchDeterministic(t *testing.T) {
	sumA, rowsA := runSearchSpec(t, searchSpecDoc, 1)
	sumB, rowsB := runSearchSpec(t, searchSpecDoc, 8)
	if !bytes.Equal(rowsA, rowsB) {
		t.Fatal("eval rows differ across jobs")
	}
	docA, err := json.Marshal(sumA)
	if err != nil {
		t.Fatal(err)
	}
	docB, err := json.Marshal(sumB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(docA, docB) {
		t.Fatalf("search summaries differ:\n%s\n---\n%s", docA, docB)
	}
}

// TestSearchDeadlineMissObjective exercises the Time-Bounded-Resilience
// objective: misses dominate the score, area only breaks ties.
func TestSearchDeadlineMissObjective(t *testing.T) {
	doc := `{
	  "experiments": ["t01", "t02"],
	  "seeds": {"list": [7]},
	  "search": {"budget": 12, "objective": "deadline-miss", "deadlineAttempts": 1,
	             "seed": 5, "retries": 2, "maxFaults": 2}
	}`
	sum, _ := runSearchSpec(t, doc, 4)
	sd := sum.Search
	if sd == nil {
		t.Fatal("no search document")
	}
	if sd.Objective != ObjectiveDeadlineMiss {
		t.Fatalf("objective = %q", sd.Objective)
	}
	// Two scenarios in the grid: misses are bounded by it, and with
	// damaging kinds in the pool the search must miss at least once.
	if sd.BestMisses < 1 || sd.BestMisses > 2 {
		t.Fatalf("bestMisses = %d, want 1..2", sd.BestMisses)
	}
	if sd.Best < float64(sd.BestMisses) {
		t.Fatalf("score %v below miss count %d", sd.Best, sd.BestMisses)
	}
	if sum.DeadlineAttempts != 1 {
		t.Fatalf("summary deadlineAttempts = %d, want 1", sum.DeadlineAttempts)
	}
}

// TestSearchKeepsSpecDeadline: a triangle-area search must not clobber
// a spec-level deadlineAttempts the caller put in cfg — the search has
// no deadline of its own, so the rows and summary keep accounting
// misses against the spec's deadline.
func TestSearchKeepsSpecDeadline(t *testing.T) {
	doc := `{
	  "experiments": ["t01"],
	  "seeds": {"list": [7]},
	  "deadlineAttempts": 1,
	  "search": {"budget": 8, "objective": "triangle-area", "seed": 3, "retries": 2}
	}`
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunSearch(context.Background(), spec, toyRegistry(),
		RunConfig{DeadlineAttempts: spec.DeadlineAttempts, Jobs: 2}, LocalExec(nil, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DeadlineAttempts != 1 {
		t.Fatalf("summary deadlineAttempts = %d, want the spec's 1", sum.DeadlineAttempts)
	}
	// The winning plan does damage (the search maximizes area), so under
	// a 1-attempt deadline its grid must record at least one miss.
	if sum.DeadlineMisses == 0 {
		t.Fatal("spec-level deadline recorded no misses under the worst plan")
	}
}

// TestSearchNoBaseline: disabling the baseline halves the budget spent
// and never claims a win.
func TestSearchNoBaseline(t *testing.T) {
	doc := `{
	  "experiments": ["t01"],
	  "seeds": {"list": [7]},
	  "search": {"budget": 6, "objective": "triangle-area", "seed": 2, "baseline": false}
	}`
	sum, rows := runSearchSpec(t, doc, 2)
	sd := sum.Search
	if sd.Evaluations != 6 {
		t.Fatalf("evaluations = %d, want 6", sd.Evaluations)
	}
	if sd.BeatBaseline || sd.Baseline != 0 {
		t.Fatalf("baseline-off search claims a baseline: %+v", sd)
	}
	if n := bytes.Count(rows, []byte(`"phase":"baseline"`)); n != 0 {
		t.Fatalf("%d baseline rows emitted with baseline off", n)
	}
}
