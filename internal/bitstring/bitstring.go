// Package bitstring implements fixed-length bit strings, the configuration
// space of the paper's dynamic-constraint-satisfaction model (Fig 4, §4.2):
// "a system status can be represented as a bit string of length n. At any
// given time, the system takes one of the 2^n possible configurations."
package bitstring

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"resilience/internal/rng"
)

// ErrLengthMismatch is returned when two bit strings of different lengths
// are combined.
var ErrLengthMismatch = errors.New("bitstring: length mismatch")

const wordBits = 64

// String is a fixed-length string of booleans. The zero value is the empty
// string of length 0. Strings are value types in spirit: all mutating
// methods operate on the receiver, and Clone produces an independent copy.
type String struct {
	n     int
	words []uint64
}

// New returns an all-zero bit string of length n. Negative n is treated
// as zero.
func New(n int) String {
	if n < 0 {
		n = 0
	}
	return String{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Random returns a uniformly random bit string of length n.
func Random(n int, r *rng.Source) String {
	s := New(n)
	for i := range s.words {
		s.words[i] = r.Uint64()
	}
	s.maskTail()
	return s
}

// Parse builds a bit string from a text form such as "0110"; index 0 is the
// leftmost character. Any rune other than '0' or '1' is an error.
func Parse(text string) (String, error) {
	s := New(len(text))
	for i, c := range text {
		switch c {
		case '0':
		case '1':
			s.Set(i, true)
		default:
			return String{}, fmt.Errorf("bitstring: invalid character %q at %d", c, i)
		}
	}
	return s, nil
}

// MustParse is Parse that panics on malformed input; for tests and
// package-level literals only.
func MustParse(text string) String {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Ones returns an all-one bit string of length n.
func Ones(n int) String {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.maskTail()
	return s
}

func (s *String) maskTail() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// Len returns the number of bits.
func (s String) Len() int { return s.n }

// Get reports the bit at index i. Out-of-range indexes report false.
func (s String) Get(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Set assigns the bit at index i. Out-of-range indexes are ignored.
func (s *String) Set(i int, v bool) {
	if i < 0 || i >= s.n {
		return
	}
	if v {
		s.words[i/wordBits] |= 1 << (i % wordBits)
	} else {
		s.words[i/wordBits] &^= 1 << (i % wordBits)
	}
}

// Flip inverts the bit at index i. Out-of-range indexes are ignored.
func (s *String) Flip(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] ^= 1 << (i % wordBits)
}

// Clone returns an independent copy.
func (s String) Clone() String {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return String{n: s.n, words: w}
}

// Count returns the number of set bits.
func (s String) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Hamming returns the Hamming distance between s and t.
func (s String) Hamming(t String) (int, error) {
	if s.n != t.n {
		return 0, ErrLengthMismatch
	}
	d := 0
	for i := range s.words {
		d += bits.OnesCount64(s.words[i] ^ t.words[i])
	}
	return d, nil
}

// MaskedHamming returns the number of positions where s and t differ,
// counted only at positions set in mask — popcount((s XOR t) AND mask)
// without materializing either intermediate. This is the hot kernel of
// dcsp.Mask.Violations, which greedy repair calls once per candidate
// flip per agent per step.
func (s String) MaskedHamming(t, mask String) (int, error) {
	if s.n != t.n || s.n != mask.n {
		return 0, ErrLengthMismatch
	}
	d := 0
	for i := range s.words {
		d += bits.OnesCount64((s.words[i] ^ t.words[i]) & mask.words[i])
	}
	return d, nil
}

// Equal reports whether s and t have the same length and bits.
func (s String) Equal(t String) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Xor returns s XOR t.
func (s String) Xor(t String) (String, error) {
	if s.n != t.n {
		return String{}, ErrLengthMismatch
	}
	out := s.Clone()
	for i := range out.words {
		out.words[i] ^= t.words[i]
	}
	return out, nil
}

// And returns s AND t.
func (s String) And(t String) (String, error) {
	if s.n != t.n {
		return String{}, ErrLengthMismatch
	}
	out := s.Clone()
	for i := range out.words {
		out.words[i] &= t.words[i]
	}
	return out, nil
}

// Or returns s OR t.
func (s String) Or(t String) (String, error) {
	if s.n != t.n {
		return String{}, ErrLengthMismatch
	}
	out := s.Clone()
	for i := range out.words {
		out.words[i] |= t.words[i]
	}
	return out, nil
}

// Not returns the bitwise complement of s.
func (s String) Not() String {
	out := s.Clone()
	for i := range out.words {
		out.words[i] = ^out.words[i]
	}
	out.maskTail()
	return out
}

// FlipRandom flips k distinct random bit positions and returns the set of
// flipped indexes. If k >= Len, every bit is flipped.
func (s *String) FlipRandom(k int, r *rng.Source) []int {
	if k <= 0 || s.n == 0 {
		return nil
	}
	if k > s.n {
		k = s.n
	}
	perm := r.Perm(s.n)[:k]
	for _, i := range perm {
		s.Flip(i)
	}
	return perm
}

// OneIndexes returns the indexes of all set bits in increasing order.
func (s String) OneIndexes() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ZeroIndexes returns the indexes of all clear bits in increasing order.
func (s String) ZeroIndexes() []int {
	out := make([]int, 0, s.n-s.Count())
	for i := 0; i < s.n; i++ {
		if !s.Get(i) {
			out = append(out, i)
		}
	}
	return out
}

// Uint64 returns the low-order bits of s as an integer. Only valid for
// Len <= 64; longer strings return the first word.
func (s String) Uint64() uint64 {
	if len(s.words) == 0 {
		return 0
	}
	return s.words[0]
}

// FromUint64 builds an n-bit string (n <= 64) from the low bits of v.
func FromUint64(v uint64, n int) String {
	s := New(n)
	if len(s.words) > 0 {
		s.words[0] = v
		s.maskTail()
	}
	return s
}

// String renders the bits as a 0/1 text string, index 0 leftmost.
func (s String) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Key returns a compact comparable key for use in maps.
func (s String) Key() string {
	// The textual form is unambiguous and fine for n up to a few thousand.
	return s.String()
}
