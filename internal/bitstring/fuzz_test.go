package bitstring

import (
	"testing"
)

// FuzzParse checks that Parse never panics, and that accepted inputs
// round-trip exactly through String().
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"", "0", "1", "0101", "111111111111111111", "01x", "２進"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return // rejected input: nothing more to check
		}
		if got := s.String(); got != text {
			t.Fatalf("round trip %q -> %q", text, got)
		}
		if s.Len() != len(text) {
			t.Fatalf("length %d for %q", s.Len(), text)
		}
		// Count must equal the number of '1' runes.
		ones := 0
		for _, c := range text {
			if c == '1' {
				ones++
			}
		}
		if s.Count() != ones {
			t.Fatalf("count %d, want %d", s.Count(), ones)
		}
	})
}
