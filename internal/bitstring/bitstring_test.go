package bitstring

import (
	"errors"
	"testing"
	"testing/quick"

	"resilience/internal/rng"
)

func TestNewZero(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
}

func TestNewNegative(t *testing.T) {
	s := New(-5)
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestSetGetFlip(t *testing.T) {
	s := New(100)
	s.Set(0, true)
	s.Set(63, true)
	s.Set(64, true)
	s.Set(99, true)
	for _, i := range []int{0, 63, 64, 99} {
		if !s.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	s.Flip(63)
	if s.Get(63) {
		t.Error("bit 63 still set after flip")
	}
	s.Set(0, false)
	if s.Get(0) {
		t.Error("bit 0 still set after clear")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	s := New(8)
	s.Set(-1, true)
	s.Set(8, true)
	s.Flip(100)
	if s.Count() != 0 {
		t.Fatal("out-of-range writes modified the string")
	}
	if s.Get(-1) || s.Get(8) {
		t.Fatal("out-of-range reads returned true")
	}
}

func TestOnes(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := Ones(n)
		if s.Count() != n {
			t.Errorf("Ones(%d).Count = %d", n, s.Count())
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	const text = "0110100111"
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != text {
		t.Fatalf("round trip %q -> %q", text, s.String())
	}
}

func TestParseInvalid(t *testing.T) {
	if _, err := Parse("01x0"); err == nil {
		t.Fatal("expected error on invalid character")
	}
}

func TestHamming(t *testing.T) {
	a := MustParse("110010")
	b := MustParse("011010")
	d, err := a.Hamming(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("Hamming = %d, want 2", d)
	}
}

func TestHammingMismatch(t *testing.T) {
	a := New(4)
	b := New(5)
	if _, err := a.Hamming(b); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustParse("1010")
	b := a.Clone()
	b.Flip(0)
	if !a.Get(0) {
		t.Fatal("mutation of clone leaked into original")
	}
}

func TestXorSelfIsZero(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%150) + 1
		s := Random(n, rng.New(seed))
		x, err := s.Xor(s)
		if err != nil {
			return false
		}
		_ = r
		return x.Count() == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorHammingAgree(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%150) + 1
		r := rng.New(seed)
		a := Random(n, r)
		b := Random(n, r)
		x, err := a.Xor(b)
		if err != nil {
			return false
		}
		d, err := a.Hamming(b)
		if err != nil {
			return false
		}
		return x.Count() == d
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNotComplement(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 150)
		s := Random(n, rng.New(seed))
		return s.Not().Count() == n-s.Count()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAndOr(t *testing.T) {
	a := MustParse("1100")
	b := MustParse("1010")
	and, err := a.And(b)
	if err != nil {
		t.Fatal(err)
	}
	if and.String() != "1000" {
		t.Fatalf("And = %s", and.String())
	}
	or, err := a.Or(b)
	if err != nil {
		t.Fatal(err)
	}
	if or.String() != "1110" {
		t.Fatalf("Or = %s", or.String())
	}
}

func TestBinaryOpsLengthMismatch(t *testing.T) {
	a, b := New(3), New(4)
	if _, err := a.Xor(b); !errors.Is(err, ErrLengthMismatch) {
		t.Error("Xor: want ErrLengthMismatch")
	}
	if _, err := a.And(b); !errors.Is(err, ErrLengthMismatch) {
		t.Error("And: want ErrLengthMismatch")
	}
	if _, err := a.Or(b); !errors.Is(err, ErrLengthMismatch) {
		t.Error("Or: want ErrLengthMismatch")
	}
}

func TestFlipRandomDistinct(t *testing.T) {
	r := rng.New(2)
	s := New(50)
	flipped := s.FlipRandom(10, r)
	if len(flipped) != 10 {
		t.Fatalf("flipped %d bits, want 10", len(flipped))
	}
	if s.Count() != 10 {
		t.Fatalf("Count = %d, want 10 (positions must be distinct)", s.Count())
	}
}

func TestFlipRandomClamp(t *testing.T) {
	r := rng.New(3)
	s := New(5)
	flipped := s.FlipRandom(99, r)
	if len(flipped) != 5 || s.Count() != 5 {
		t.Fatalf("FlipRandom over-length: %d flips, count %d", len(flipped), s.Count())
	}
	if got := s.FlipRandom(0, r); got != nil {
		t.Fatalf("FlipRandom(0) = %v, want nil", got)
	}
}

func TestOneZeroIndexes(t *testing.T) {
	s := MustParse("10110")
	ones := s.OneIndexes()
	if len(ones) != 3 || ones[0] != 0 || ones[1] != 2 || ones[2] != 3 {
		t.Fatalf("OneIndexes = %v", ones)
	}
	zeros := s.ZeroIndexes()
	if len(zeros) != 2 || zeros[0] != 1 || zeros[1] != 4 {
		t.Fatalf("ZeroIndexes = %v", zeros)
	}
}

func TestIndexesPartition(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 200)
		s := Random(n, rng.New(seed))
		return len(s.OneIndexes())+len(s.ZeroIndexes()) == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		s := FromUint64(v, n)
		mask := uint64(1)<<n - 1
		if n == 64 {
			mask = ^uint64(0)
		}
		return s.Uint64() == v&mask
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	a := MustParse("101")
	b := MustParse("101")
	c := MustParse("100")
	d := MustParse("1010")
	if !a.Equal(b) {
		t.Error("equal strings reported unequal")
	}
	if a.Equal(c) {
		t.Error("different bits reported equal")
	}
	if a.Equal(d) {
		t.Error("different lengths reported equal")
	}
}

func TestRandomTailMasked(t *testing.T) {
	// A random 65-bit string must never report bits beyond its length.
	for seed := uint64(0); seed < 20; seed++ {
		s := Random(65, rng.New(seed))
		n := 0
		for i := 0; i < 65; i++ {
			if s.Get(i) {
				n++
			}
		}
		if n != s.Count() {
			t.Fatalf("tail bits leak into Count: %d vs %d", n, s.Count())
		}
	}
}

func BenchmarkHamming(b *testing.B) {
	r := rng.New(1)
	x := Random(1024, r)
	y := Random(1024, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = x.Hamming(y)
	}
}
