package bitstring

import (
	"testing"
	"testing/quick"

	"resilience/internal/rng"
)

// randomPair draws two independent random strings of the same length.
func randomPair(n int, r *rng.Source) (String, String) {
	return Random(n, r), Random(n, r)
}

// TestHammingProperties checks the metric axioms of Hamming distance on
// randomly generated strings: identity, symmetry, triangle inequality,
// and the XOR/popcount identity d(s,t) = |s⊕t|.
func TestHammingProperties(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(300)
		s, u := randomPair(n, r)
		v := Random(n, r)
		dss, err := s.Hamming(s)
		if err != nil || dss != 0 {
			t.Fatalf("d(s,s) = %d, %v", dss, err)
		}
		dsu, _ := s.Hamming(u)
		dus, _ := u.Hamming(s)
		if dsu != dus {
			t.Fatalf("n=%d: d(s,u)=%d but d(u,s)=%d", n, dsu, dus)
		}
		if dsu < 0 || dsu > n {
			t.Fatalf("n=%d: d(s,u)=%d out of [0,%d]", n, dsu, n)
		}
		duv, _ := u.Hamming(v)
		dsv, _ := s.Hamming(v)
		if dsv > dsu+duv {
			t.Fatalf("n=%d: triangle violated: %d > %d+%d", n, dsv, dsu, duv)
		}
		x, err := s.Xor(u)
		if err != nil {
			t.Fatal(err)
		}
		if x.Count() != dsu {
			t.Fatalf("n=%d: |s xor u| = %d, d(s,u) = %d", n, x.Count(), dsu)
		}
	}
}

// TestMaskedHammingMatchesMaterialized checks the allocation-free masked
// distance against the definitional form |(s⊕t)∧m| built from Xor, And
// and Count, over random strings spanning multiple words.
func TestMaskedHammingMatchesMaterialized(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(300)
		s, u := randomPair(n, r)
		m := Random(n, r)
		got, err := s.MaskedHamming(u, m)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := s.Xor(u)
		if err != nil {
			t.Fatal(err)
		}
		masked, err := diff.And(m)
		if err != nil {
			t.Fatal(err)
		}
		if want := masked.Count(); got != want {
			t.Fatalf("n=%d: MaskedHamming = %d, |(s xor u) and m| = %d", n, got, want)
		}
		if full, _ := s.MaskedHamming(u, Ones(n)); full != masked.Count() {
			dsu, _ := s.Hamming(u)
			if full != dsu {
				t.Fatalf("n=%d: all-ones mask gives %d, Hamming gives %d", n, full, dsu)
			}
		}
	}
	if _, err := New(3).MaskedHamming(New(3), New(4)); err == nil {
		t.Fatal("mask length mismatch not rejected")
	}
	if _, err := New(3).MaskedHamming(New(4), New(3)); err == nil {
		t.Fatal("operand length mismatch not rejected")
	}
}

// TestHammingQuick drives the same symmetry/identity invariants through
// testing/quick over single-word strings.
func TestHammingQuick(t *testing.T) {
	prop := func(av, bv uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		a, b := FromUint64(av, n), FromUint64(bv, n)
		ab, err1 := a.Hamming(b)
		ba, err2 := b.Hamming(a)
		aa, err3 := a.Hamming(a)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return ab == ba && aa == 0 && ab >= 0 && ab <= n && a.Equal(b) == (ab == 0)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestComplementAndCountQuick: |¬s| = n − |s|, and De Morgan-ish count
// identities |s∧t| + |s∨t| = |s| + |t|.
func TestComplementAndCountQuick(t *testing.T) {
	prop := func(av, bv uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		a, b := FromUint64(av, n), FromUint64(bv, n)
		if a.Not().Count() != n-a.Count() {
			return false
		}
		and, err1 := a.And(b)
		or, err2 := a.Or(b)
		if err1 != nil || err2 != nil {
			return false
		}
		return and.Count()+or.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestParseStringRoundTripQuick: String() inverts Parse on every valid
// bit text derived from an integer.
func TestParseStringRoundTripQuick(t *testing.T) {
	prop := func(v uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		s := FromUint64(v, n)
		parsed, err := Parse(s.String())
		if err != nil || !parsed.Equal(s) {
			return false
		}
		mask := ^uint64(0)
		if n < 64 {
			mask = uint64(1)<<n - 1
		}
		return s.Uint64() == v&mask
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFlipRandomMovesExactlyK: flipping k distinct random positions
// moves the string exactly Hamming distance k, and flipping them again
// restores it.
func TestFlipRandomMovesExactlyK(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(200)
		k := r.Intn(n + 10) // sometimes k > n: clamps to n
		s := Random(n, r)
		before := s.Clone()
		flipped := s.FlipRandom(k, r)
		wantK := k
		if wantK > n {
			wantK = n
		}
		if n == 0 {
			wantK = 0
		}
		if len(flipped) != wantK {
			t.Fatalf("n=%d k=%d: flipped %d positions", n, k, len(flipped))
		}
		d, err := s.Hamming(before)
		if err != nil || d != wantK {
			t.Fatalf("n=%d k=%d: moved distance %d (%v)", n, k, d, err)
		}
		for _, i := range flipped {
			s.Flip(i)
		}
		if !s.Equal(before) {
			t.Fatalf("n=%d k=%d: double flip did not restore", n, k)
		}
	}
}

// TestOneZeroIndexesPartition: OneIndexes and ZeroIndexes partition
// [0, n) and agree with Get.
func TestOneZeroIndexesPartition(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(300)
		s := Random(n, r)
		ones, zeros := s.OneIndexes(), s.ZeroIndexes()
		if len(ones)+len(zeros) != n || len(ones) != s.Count() {
			t.Fatalf("n=%d: %d ones + %d zeros", n, len(ones), len(zeros))
		}
		for _, i := range ones {
			if !s.Get(i) {
				t.Fatalf("OneIndexes reported clear bit %d", i)
			}
		}
		for _, i := range zeros {
			if s.Get(i) {
				t.Fatalf("ZeroIndexes reported set bit %d", i)
			}
		}
	}
}
