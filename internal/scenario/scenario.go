// Package scenario loads declarative resilience scenarios from JSON: a
// component system, a fault schedule, and an optional MAPE controller
// with mode switching. It is the configuration surface that lets
// downstream users run chaos experiments against their own topologies
// without writing Go:
//
//	{
//	  "name": "regional grid",
//	  "demand": 300, "reserve": 150, "steps": 80, "baselineQuality": 99,
//	  "components": [
//	    {"name": "transmission", "capacity": 0, "group": "transmission"},
//	    {"name": "nuclear-0", "capacity": 30, "group": "nuclear",
//	     "requiresGroups": ["transmission"]}
//	  ],
//	  "faults": [{"step": 10, "type": "crash-group", "target": "nuclear"}],
//	  "controller": {"repairBudget": 1},
//	  "modeSwitch": {"enterBelow": 80, "exitAbove": 99,
//	                 "emergencyDemand": 220, "emergencyRepairBudget": 3}
//	}
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"resilience/internal/chaos"
	"resilience/internal/core"
	"resilience/internal/mape"
	"resilience/internal/metrics"
	"resilience/internal/modeswitch"
	"resilience/internal/rng"
	"resilience/internal/sysmodel"
)

// File is the top-level scenario document.
type File struct {
	Name    string  `json:"name"`
	Demand  float64 `json:"demand"`
	Reserve float64 `json:"reserve"`
	// Steps is the simulation length.
	Steps int `json:"steps"`
	// BaselineQuality is the episode baseline for assessment (default
	// 99).
	BaselineQuality float64     `json:"baselineQuality"`
	Components      []Component `json:"components"`
	Faults          []Fault     `json:"faults"`
	// Controller enables a MAPE repair loop.
	Controller *Controller `json:"controller,omitempty"`
	// ModeSwitch layers emergency-mode policies on the controller (it
	// requires Controller).
	ModeSwitch *ModeSwitch `json:"modeSwitch,omitempty"`
}

// Component declares one system component.
type Component struct {
	Name           string   `json:"name"`
	Capacity       float64  `json:"capacity"`
	Group          string   `json:"group,omitempty"`
	DependsOn      []string `json:"dependsOn,omitempty"`
	RequiresGroups []string `json:"requiresGroups,omitempty"`
	DegradedFactor *float64 `json:"degradedFactor,omitempty"`
}

// Fault schedules one injection.
type Fault struct {
	Step int `json:"step"`
	// Type is one of: crash, degrade, repair, crash-group,
	// crash-random, xevent.
	Type string `json:"type"`
	// Target names a component (crash/degrade/repair) or a group
	// (crash-group).
	Target string `json:"target,omitempty"`
	// N is the count for crash-random.
	N int `json:"n,omitempty"`
	// Scale and Alpha parameterize xevent.
	Scale float64 `json:"scale,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
}

// Controller enables the MAPE loop.
type Controller struct {
	// RepairBudget is the per-cycle repair limit (0 = unlimited).
	RepairBudget int `json:"repairBudget"`
	// ImpactPlanner selects the centralized impact-aware planner
	// instead of the default.
	ImpactPlanner bool `json:"impactPlanner,omitempty"`
}

// ModeSwitch layers emergency policies on the controller.
type ModeSwitch struct {
	EnterBelow            float64 `json:"enterBelow"`
	ExitAbove             float64 `json:"exitAbove"`
	EmergencyDemand       float64 `json:"emergencyDemand"`
	EmergencyRepairBudget int     `json:"emergencyRepairBudget"`
}

// Load parses and validates a scenario document.
func Load(r io.Reader) (*File, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks structural consistency without building the system.
func (f *File) Validate() error {
	if f.Steps <= 0 {
		return fmt.Errorf("scenario: steps %d must be positive", f.Steps)
	}
	if f.Demand <= 0 {
		return errors.New("scenario: demand must be positive")
	}
	if len(f.Components) == 0 {
		return errors.New("scenario: no components")
	}
	names := make(map[string]bool, len(f.Components))
	groups := map[string]bool{}
	for _, c := range f.Components {
		if c.Name == "" {
			return errors.New("scenario: component with empty name")
		}
		if names[c.Name] {
			return fmt.Errorf("scenario: duplicate component %q", c.Name)
		}
		names[c.Name] = true
		if c.Group != "" {
			groups[c.Group] = true
		}
	}
	for _, c := range f.Components {
		for _, d := range c.DependsOn {
			if !names[d] {
				return fmt.Errorf("scenario: component %q depends on unknown %q", c.Name, d)
			}
		}
		for _, g := range c.RequiresGroups {
			if !groups[g] {
				return fmt.Errorf("scenario: component %q requires unknown group %q", c.Name, g)
			}
		}
	}
	for i, fault := range f.Faults {
		if fault.Step < 0 || fault.Step >= f.Steps {
			return fmt.Errorf("scenario: fault %d at step %d outside run of %d steps", i, fault.Step, f.Steps)
		}
		switch fault.Type {
		case "crash", "degrade", "repair":
			if !names[fault.Target] {
				return fmt.Errorf("scenario: fault %d targets unknown component %q", i, fault.Target)
			}
		case "crash-group":
			if !groups[fault.Target] {
				return fmt.Errorf("scenario: fault %d targets unknown group %q", i, fault.Target)
			}
		case "crash-random":
			if fault.N < 1 {
				return fmt.Errorf("scenario: fault %d crash-random needs n >= 1", i)
			}
		case "xevent":
			if fault.Scale <= 0 || fault.Alpha <= 0 {
				return fmt.Errorf("scenario: fault %d xevent needs positive scale and alpha", i)
			}
		default:
			return fmt.Errorf("scenario: fault %d has unknown type %q", i, fault.Type)
		}
	}
	if f.ModeSwitch != nil {
		if f.Controller == nil {
			return errors.New("scenario: modeSwitch requires controller")
		}
		if f.ModeSwitch.ExitAbove < f.ModeSwitch.EnterBelow {
			return errors.New("scenario: modeSwitch exitAbove below enterBelow")
		}
		if f.ModeSwitch.EmergencyDemand <= 0 {
			return errors.New("scenario: modeSwitch emergency demand must be positive")
		}
	}
	return nil
}

// Build constructs the system and the name→ID index.
func (f *File) Build() (*sysmodel.System, map[string]sysmodel.ComponentID, error) {
	b := sysmodel.NewBuilder()
	ids := make(map[string]sysmodel.ComponentID, len(f.Components))
	// Two passes: declare all components first so forward dependencies
	// resolve.
	pending := make([][]sysmodel.ComponentOption, len(f.Components))
	for i, c := range f.Components {
		opts := make([]sysmodel.ComponentOption, 0, 4)
		if c.Group != "" {
			opts = append(opts, sysmodel.WithGroup(c.Group))
		}
		if c.DegradedFactor != nil {
			opts = append(opts, sysmodel.WithDegradedFactor(*c.DegradedFactor))
		}
		if len(c.RequiresGroups) > 0 {
			opts = append(opts, sysmodel.WithRequiresGroup(c.RequiresGroups...))
		}
		pending[i] = opts
	}
	// sysmodel's builder fixes dependencies at creation, so order
	// components topologically by declaration: dependencies must be
	// declared first. We therefore require DependsOn targets to appear
	// earlier in the file.
	for i, c := range f.Components {
		opts := pending[i]
		if len(c.DependsOn) > 0 {
			depIDs := make([]sysmodel.ComponentID, 0, len(c.DependsOn))
			for _, d := range c.DependsOn {
				id, ok := ids[d]
				if !ok {
					return nil, nil, fmt.Errorf("scenario: component %q depends on %q which is declared later; declare dependencies first", c.Name, d)
				}
				depIDs = append(depIDs, id)
			}
			opts = append(opts, sysmodel.WithDependsOn(depIDs...))
		}
		ids[c.Name] = b.Component(c.Name, c.Capacity, opts...)
	}
	sys, err := b.Build(f.Demand, f.Reserve)
	if err != nil {
		return nil, nil, err
	}
	return sys, ids, nil
}

// faultFor translates a declared fault into a chaos.Fault.
func faultFor(fault Fault, ids map[string]sysmodel.ComponentID) (chaos.Fault, error) {
	switch fault.Type {
	case "crash":
		return chaos.Crash{ID: ids[fault.Target]}, nil
	case "degrade":
		return chaos.Degrade{ID: ids[fault.Target]}, nil
	case "repair":
		return chaos.Repair{ID: ids[fault.Target]}, nil
	case "crash-group":
		return chaos.CrashGroup{Group: fault.Target}, nil
	case "crash-random":
		return chaos.CrashRandom{N: fault.N}, nil
	case "xevent":
		return chaos.XEvent{Scale: fault.Scale, Alpha: fault.Alpha}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown fault type %q", fault.Type)
	}
}

// Result is a completed scenario run.
type Result struct {
	Name    string
	Trace   *metrics.Trace
	Profile core.Profile
	// Injections logs the faults that fired.
	Injections []chaos.InjectionRecord
	// EmergencySteps counts steps spent in emergency mode (0 without
	// modeSwitch).
	EmergencySteps int
}

// Run executes the scenario with the given seed.
func (f *File) Run(seed uint64) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	sys, ids, err := f.Build()
	if err != nil {
		return nil, err
	}
	var ctrl *mape.Controller
	var mc *mape.ModeController
	if f.Controller != nil {
		ctrl = mape.NewController(f.baseline(), f.Controller.RepairBudget)
		if f.Controller.ImpactPlanner {
			ctrl.Planner = mape.ImpactPlanner{Sys: sys}
		}
		if f.ModeSwitch != nil {
			sw, err := modeswitch.NewSwitcher(modeswitch.Config{
				EnterBelow: f.ModeSwitch.EnterBelow,
				ExitAbove:  f.ModeSwitch.ExitAbove,
			})
			if err != nil {
				return nil, err
			}
			mc, err = mape.NewModeController(ctrl, sw, map[modeswitch.Mode]mape.ModePolicy{
				modeswitch.Normal: {
					Demand:       f.Demand,
					RepairBudget: f.Controller.RepairBudget,
				},
				modeswitch.Emergency: {
					Demand:       f.ModeSwitch.EmergencyDemand,
					RepairBudget: f.ModeSwitch.EmergencyRepairBudget,
				},
			})
			if err != nil {
				return nil, err
			}
		}
	}
	schedule := make(map[int][]chaos.Fault, len(f.Faults))
	for _, fd := range f.Faults {
		cf, err := faultFor(fd, ids)
		if err != nil {
			return nil, err
		}
		schedule[fd.Step] = append(schedule[fd.Step], cf)
	}
	r := rng.New(seed)
	res := &Result{Name: f.Name}
	tr := metrics.NewTrace(0, 1)
	for step := 0; step < f.Steps; step++ {
		for _, cf := range schedule[step] {
			if err := cf.Inject(sys, r); err != nil {
				return nil, fmt.Errorf("fault at step %d: %w", step, err)
			}
			res.Injections = append(res.Injections, chaos.InjectionRecord{
				Step: step, Description: cf.String(),
			})
		}
		rep := sys.Step()
		tr.Append(rep.Quality)
		switch {
		case mc != nil:
			_, mode, err := mc.Tick(sys)
			if err != nil {
				return nil, err
			}
			if mode == modeswitch.Emergency {
				res.EmergencySteps++
			}
		case ctrl != nil:
			if _, err := ctrl.Tick(sys); err != nil {
				return nil, err
			}
		}
	}
	res.Trace = tr
	profile, err := core.Assess(tr, f.baseline())
	if err != nil {
		return nil, err
	}
	res.Profile = profile
	return res, nil
}

func (f *File) baseline() float64 {
	if f.BaselineQuality > 0 {
		return f.BaselineQuality
	}
	return 99
}
