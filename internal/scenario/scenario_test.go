package scenario

import (
	"strings"
	"testing"
)

const gridJSON = `{
  "name": "regional grid",
  "demand": 300, "reserve": 10, "steps": 80, "baselineQuality": 99,
  "components": [
    {"name": "transmission", "capacity": 0, "group": "transmission"},
    {"name": "nuclear-0", "capacity": 120, "group": "nuclear", "requiresGroups": ["transmission"]},
    {"name": "thermal-0", "capacity": 120, "group": "thermal", "requiresGroups": ["transmission"]},
    {"name": "thermal-1", "capacity": 100, "group": "thermal", "requiresGroups": ["transmission"]}
  ],
  "faults": [{"step": 10, "type": "crash-group", "target": "nuclear"}],
  "controller": {"repairBudget": 1},
  "modeSwitch": {"enterBelow": 80, "exitAbove": 99,
                 "emergencyDemand": 220, "emergencyRepairBudget": 3}
}`

func TestLoadValid(t *testing.T) {
	f, err := Load(strings.NewReader(gridJSON))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "regional grid" || len(f.Components) != 4 || len(f.Faults) != 1 {
		t.Fatalf("loaded = %+v", f)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"steps": 5, "bogus": 1}`)); err == nil {
		t.Fatal("want error for unknown field")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader(`{nope`)); err == nil {
		t.Fatal("want decode error")
	}
}

func mutateJSON(t *testing.T, replace, with string) string {
	t.Helper()
	if !strings.Contains(gridJSON, replace) {
		t.Fatalf("test fixture missing %q", replace)
	}
	return strings.Replace(gridJSON, replace, with, 1)
}

func TestValidateErrors(t *testing.T) {
	cases := map[string][2]string{
		"zero steps":        {`"steps": 80`, `"steps": 0`},
		"zero demand":       {`"demand": 300`, `"demand": 0`},
		"dup name":          {`"name": "thermal-1"`, `"name": "thermal-0"`},
		"unknown dep group": {`"requiresGroups": ["transmission"]}` + "\n" + `  ],`, `"requiresGroups": ["nope"]}` + "\n" + `  ],`},
		"fault step":        {`"step": 10`, `"step": 99`},
		"fault type":        {`"type": "crash-group"`, `"type": "explode"`},
		"fault target":      {`"target": "nuclear"`, `"target": "solar"`},
		"hysteresis":        {`"exitAbove": 99`, `"exitAbove": 10`},
	}
	for name, rw := range cases {
		doc := mutateJSON(t, rw[0], rw[1])
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: want validation error", name)
		}
	}
}

func TestValidateModeSwitchNeedsController(t *testing.T) {
	doc := strings.Replace(gridJSON, `"controller": {"repairBudget": 1},`, ``, 1)
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Fatal("want error for modeSwitch without controller")
	}
}

func TestBuildForwardDependencyRejected(t *testing.T) {
	doc := `{
  "demand": 10, "steps": 5,
  "components": [
    {"name": "api", "capacity": 10, "dependsOn": ["db"]},
    {"name": "db", "capacity": 0}
  ]
}`
	f, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Build(); err == nil {
		t.Fatal("want error for dependency declared later")
	}
}

func TestBuildAndIndex(t *testing.T) {
	f, err := Load(strings.NewReader(gridJSON))
	if err != nil {
		t.Fatal(err)
	}
	sys, ids, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumComponents() != 4 || len(ids) != 4 {
		t.Fatalf("components = %d index = %d", sys.NumComponents(), len(ids))
	}
	if _, ok := ids["nuclear-0"]; !ok {
		t.Fatal("index missing nuclear-0")
	}
}

func TestRunEndToEnd(t *testing.T) {
	f, err := Load(strings.NewReader(gridJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() != 80 {
		t.Fatalf("trace length = %d", res.Trace.Len())
	}
	if len(res.Injections) != 1 || res.Injections[0].Step != 10 {
		t.Fatalf("injections = %+v", res.Injections)
	}
	if !res.Profile.Recovered {
		t.Fatal("grid should recover with the controller")
	}
	if res.EmergencySteps == 0 {
		t.Fatal("losing 120 of 340 capacity should trip emergency mode")
	}
	// Quality must have dipped (the fault really fired).
	if res.Profile.Report.Robustness >= 100 {
		t.Fatal("no quality dip recorded")
	}
}

func TestRunWithoutController(t *testing.T) {
	doc := `{
  "demand": 100, "steps": 20,
  "components": [
    {"name": "a", "capacity": 50},
    {"name": "b", "capacity": 50}
  ],
  "faults": [{"step": 3, "type": "crash", "target": "a"}]
}`
	f, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.Recovered {
		t.Fatal("uncontrolled crash should not recover")
	}
	if res.EmergencySteps != 0 {
		t.Fatal("no mode switch configured")
	}
}

func TestRunDeterministic(t *testing.T) {
	doc := `{
  "demand": 100, "steps": 30,
  "components": [
    {"name": "a", "capacity": 25}, {"name": "b", "capacity": 25},
    {"name": "c", "capacity": 25}, {"name": "d", "capacity": 25}
  ],
  "faults": [{"step": 2, "type": "xevent", "scale": 1, "alpha": 1.5}],
  "controller": {"repairBudget": 1}
}`
	f, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	a, err := f.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Profile.Report.Loss != b.Profile.Report.Loss {
		t.Fatal("same seed must reproduce the same loss")
	}
}

func TestDegradedFactorAndRepairFaults(t *testing.T) {
	doc := `{
  "demand": 100, "steps": 20,
  "components": [{"name": "a", "capacity": 100, "degradedFactor": 0.25}],
  "faults": [
    {"step": 2, "type": "degrade", "target": "a"},
    {"step": 10, "type": "repair", "target": "a"}
  ]
}`
	f, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.Report.Robustness != 25 {
		t.Fatalf("robustness = %v, want 25 (degraded factor)", res.Profile.Report.Robustness)
	}
	if !res.Profile.Recovered {
		t.Fatal("scheduled repair should recover the run")
	}
}

func TestImpactPlannerOption(t *testing.T) {
	doc := `{
  "demand": 100, "steps": 25,
  "components": [
    {"name": "db", "capacity": 10},
    {"name": "svc", "capacity": 90, "dependsOn": ["db"]}
  ],
  "faults": [
    {"step": 2, "type": "crash", "target": "svc"},
    {"step": 2, "type": "crash", "target": "db"}
  ],
  "controller": {"repairBudget": 1, "impactPlanner": true}
}`
	f, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Profile.Recovered {
		t.Fatal("should recover")
	}
}

func TestValidateMoreErrors(t *testing.T) {
	cases := []string{
		// empty component name
		`{"demand": 10, "steps": 5, "components": [{"name": "", "capacity": 1}]}`,
		// no components
		`{"demand": 10, "steps": 5, "components": []}`,
		// unknown dependency
		`{"demand": 10, "steps": 5, "components": [{"name": "a", "capacity": 1, "dependsOn": ["ghost"]}]}`,
		// crash-random without n
		`{"demand": 10, "steps": 5, "components": [{"name": "a", "capacity": 1}],
		  "faults": [{"step": 1, "type": "crash-random"}]}`,
		// xevent without scale
		`{"demand": 10, "steps": 5, "components": [{"name": "a", "capacity": 1}],
		  "faults": [{"step": 1, "type": "xevent", "alpha": 2}]}`,
		// negative fault step
		`{"demand": 10, "steps": 5, "components": [{"name": "a", "capacity": 1}],
		  "faults": [{"step": -1, "type": "crash", "target": "a"}]}`,
		// mode switch with zero emergency demand
		`{"demand": 10, "steps": 5, "components": [{"name": "a", "capacity": 1}],
		  "controller": {"repairBudget": 1},
		  "modeSwitch": {"enterBelow": 50, "exitAbove": 80, "emergencyDemand": 0,
		                 "emergencyRepairBudget": 1}}`,
	}
	for i, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestRunPropagatesBuildError(t *testing.T) {
	// Valid per Validate but rejected at Build (negative capacity is a
	// builder-level error).
	doc := `{"demand": 10, "steps": 5,
	  "components": [{"name": "a", "capacity": -1}]}`
	f, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(1); err == nil {
		t.Fatal("want build error propagated from Run")
	}
}

func TestBaselineDefault(t *testing.T) {
	doc := `{"demand": 10, "steps": 5,
	  "components": [{"name": "a", "capacity": 10}]}`
	f, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if f.baseline() != 99 {
		t.Fatalf("default baseline = %v, want 99", f.baseline())
	}
	f.BaselineQuality = 95
	if f.baseline() != 95 {
		t.Fatalf("explicit baseline = %v", f.baseline())
	}
}

func TestFaultForUnknownType(t *testing.T) {
	if _, err := faultFor(Fault{Type: "meteor"}, nil); err == nil {
		t.Fatal("want error for unknown fault type")
	}
}

func TestRunCrashGroupScenario(t *testing.T) {
	// Exercise every fault constructor through Run.
	doc := `{
	  "demand": 100, "steps": 30,
	  "components": [
	    {"name": "a", "capacity": 40, "group": "g"},
	    {"name": "b", "capacity": 40, "group": "g"},
	    {"name": "c", "capacity": 20}
	  ],
	  "faults": [
	    {"step": 2, "type": "crash-group", "target": "g"},
	    {"step": 5, "type": "repair", "target": "a"},
	    {"step": 6, "type": "repair", "target": "b"},
	    {"step": 10, "type": "degrade", "target": "c"},
	    {"step": 15, "type": "repair", "target": "c"},
	    {"step": 20, "type": "crash-random", "n": 1},
	    {"step": 22, "type": "xevent", "scale": 0.5, "alpha": 2}
	  ],
	  "controller": {"repairBudget": 2}
	}`
	f, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Injections) != 7 {
		t.Fatalf("injections = %d, want 7", len(res.Injections))
	}
}
