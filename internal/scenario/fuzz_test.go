package scenario

import (
	"strings"
	"testing"
)

// FuzzLoad checks that arbitrary documents never panic the loader, and
// that any document it accepts can be built and run briefly without
// error — the loader's validation must be sufficient for execution.
func FuzzLoad(f *testing.F) {
	f.Add(gridJSON)
	f.Add(`{"demand": 10, "steps": 3, "components": [{"name": "a", "capacity": 10}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Add(`{"demand": 1e308, "steps": 1, "components": [{"name": "x", "capacity": -5}]}`)
	f.Fuzz(func(t *testing.T, doc string) {
		file, err := Load(strings.NewReader(doc))
		if err != nil {
			return
		}
		if file.Steps > 200 || len(file.Components) > 64 {
			return // keep fuzz iterations fast
		}
		if _, err := file.Run(1); err != nil {
			// Build-time rejections (negative capacity, forward deps,
			// degraded factor range) are legitimate errors, not bugs —
			// the invariant under test is "no panic".
			t.Logf("accepted document failed to run: %v", err)
		}
	})
}
