// End-to-end battery: real loadgen runs against in-process servertest
// daemons, reconciled against the server's own counters.
package loadgen_test

import (
	"context"
	"testing"
	"time"

	"resilience/internal/experiments"
	"resilience/internal/loadgen"
	"resilience/internal/servertest"
)

func benchExp(id string, delay time.Duration) experiments.Experiment {
	return experiments.Experiment{
		ID: id, Title: "bench fake " + id, Source: "test",
		Modules: []string{"test"}, SupportsQuick: true,
		Run: func(rec *experiments.Recorder, cfg experiments.Config) error {
			if delay > 0 {
				time.Sleep(delay)
			}
			rec.Notef("seed %d", cfg.Seed)
			return nil
		},
	}
}

// TestBenchReconcilesWithServerCounters is the acceptance check for the
// report: run a mixed repeated/unique workload, then reconcile the
// client-observed status breakdown against the server's scraped counter
// deltas — every fresh computation stored once, every coalesced waiter
// counted by the server, every cache hit seen by rescache.
func TestBenchReconcilesWithServerCounters(t *testing.T) {
	n := servertest.Boot(t, servertest.WithRegistry(
		benchExp("b01", time.Millisecond), benchExp("b02", time.Millisecond)))

	r, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   n.URL,
		Clients:  4,
		Requests: 120,
		Seed:     1,
		Mix: loadgen.Mix{
			IDs:         []string{"b01", "b02"},
			RepeatRatio: 0.5, // half the keys land on the hot pool: cache + coalescer traffic
			Quick:       true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sent != 120 {
		t.Fatalf("sent %d, want the full 120-request budget", r.Sent)
	}
	if r.Errors != 0 {
		t.Fatalf("errors %d (%v), want 0", r.Errors, r.Statuses)
	}
	if !r.Verdict.Pass {
		t.Fatalf("verdict %+v, want pass", r.Verdict)
	}
	if r.Latency.Count != 120 || r.Latency.P50Ms <= 0 || r.Latency.P999Ms < r.Latency.P50Ms {
		t.Fatalf("implausible latency summary %+v", r.Latency)
	}

	// Reconcile with the server's ledger. Only run-work counters are
	// comparable (server.requests also counts the bench's own /metrics
	// scrapes).
	ok, coalesced, cached := r.Statuses["ok"], r.Statuses["coalesced"], r.Cached()
	if got := ok + coalesced + cached; got != r.Sent {
		t.Fatalf("breakdown %v sums to %d, want %d", r.Statuses, got, r.Sent)
	}
	if ok == 0 || cached == 0 {
		t.Fatalf("degenerate mix: ok=%d cached=%d — the bench exercised nothing", ok, cached)
	}
	for counter, want := range map[string]int64{
		"rescache.stores":  ok, // each fresh compute stores exactly once
		"server.coalesced": coalesced,
		"rescache.hits":    cached,
		"runner.attempts":  ok, // no retries, no faults: one attempt per compute
	} {
		if got := r.MetricsDelta[counter]; got != want {
			t.Errorf("server counter %s moved by %d, client observed %d\nbreakdown: %v\ndeltas: %v",
				counter, got, want, r.Statuses, r.MetricsDelta)
		}
	}
}

// TestBenchSuiteMix: an all-suite workload classifies as suite traffic
// and still drains clean.
func TestBenchSuiteMix(t *testing.T) {
	n := servertest.Boot(t, servertest.WithRegistry(
		benchExp("b01", 0), benchExp("b02", 0), benchExp("b03", 0)))
	r, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   n.URL,
		Clients:  2,
		Requests: 20,
		Seed:     9,
		Mix: loadgen.Mix{
			IDs:        []string{"b01", "b02", "b03"},
			SuiteRatio: 1,
			Quick:      true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Statuses["suite"] != r.Sent || r.Sent != 20 {
		t.Fatalf("all-suite run classified %v (sent %d)", r.Statuses, r.Sent)
	}
	if r.HungAfterDrain != 0 || !r.Verdict.Pass {
		t.Fatalf("hung=%d verdict=%+v", r.HungAfterDrain, r.Verdict)
	}
}

// TestBenchRejectsBadConfig: a config that cannot run fails fast
// instead of reporting an empty pass.
func TestBenchRejectsBadConfig(t *testing.T) {
	for name, cfg := range map[string]loadgen.Config{
		"no target":   {Requests: 1, Mix: loadgen.Mix{IDs: []string{"a"}}},
		"no budget":   {Target: "http://127.0.0.1:1", Mix: loadgen.Mix{IDs: []string{"a"}}},
		"no ids":      {Target: "http://127.0.0.1:1", Requests: 1},
		"unreachable": {Target: "http://127.0.0.1:1", Requests: 1, Mix: loadgen.Mix{IDs: []string{"a"}}},
	} {
		if _, err := loadgen.Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: ran, want error", name)
		}
	}
}

// TestDiscoverIDs: the default ID pool comes from the target's own
// catalogue.
func TestDiscoverIDs(t *testing.T) {
	n := servertest.Boot(t, servertest.WithRegistry(benchExp("b01", 0), benchExp("b02", 0)))
	ids, err := loadgen.DiscoverIDs(n.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "b01" || ids[1] != "b02" {
		t.Fatalf("discovered %v", ids)
	}
}
