package loadgen

import (
	"strings"
	"testing"
)

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO([]byte(`{"p99Ms":50,"maxErrorRatio":0,"minThroughput":10}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.P99Ms != 50 || s.MaxErrorRatio == nil || *s.MaxErrorRatio != 0 || s.MinThroughput != 10 {
		t.Fatalf("parsed %+v", s)
	}
	for name, doc := range map[string]string{
		"unknown field": `{"p99":50}`,
		"negative":      `{"p50Ms":-1}`,
		"ratio > 1":     `{"maxErrorRatio":1.5}`,
		"trailing data": `{"p50Ms":1} {"p50Ms":2}`,
		"not json":      `p99 under 50ms please`,
	} {
		if _, err := ParseSLO([]byte(doc)); err == nil {
			t.Errorf("%s: parsed, want error", name)
		}
	}
}

// report builds a healthy baseline report the table cases then distort.
func benchReport() *Report {
	return &Report{
		Sent:          1000,
		Errors:        0,
		ThroughputRPS: 200,
		Latency:       LatencyMs{Count: 1000, P50Ms: 5, P99Ms: 40, P999Ms: 90},
		Statuses:      map[string]int64{"ok": 1000},
	}
}

// TestSLOVerdictTable drives Evaluate across the pass/fail boundaries:
// bounds are budgets, so landing exactly on one passes and only
// exceeding it fails.
func TestSLOVerdictTable(t *testing.T) {
	ratio := func(v float64) *float64 { return &v }
	cases := []struct {
		name     string
		slo      *SLO
		mutate   func(*Report)
		pass     bool
		mentions string
	}{
		{"nil SLO healthy run", nil, nil, true, ""},
		{"nil SLO empty run", nil, func(r *Report) { r.Sent = 0; r.Latency = LatencyMs{} }, false, "no requests"},
		{"nil SLO hung after drain", nil, func(r *Report) { r.HungAfterDrain = 2 }, false, "still in flight"},
		{"p99 exactly on budget", &SLO{P99Ms: 40}, nil, true, ""},
		{"p99 over budget", &SLO{P99Ms: 39.9}, nil, false, "p99"},
		{"p50 over budget", &SLO{P50Ms: 4}, nil, false, "p50"},
		{"p999 over budget", &SLO{P999Ms: 89}, nil, false, "p999"},
		{"zero errors allowed, none seen", &SLO{MaxErrorRatio: ratio(0)}, nil, true, ""},
		{"zero errors allowed, one seen", &SLO{MaxErrorRatio: ratio(0)},
			func(r *Report) { r.Errors = 1 }, false, "error ratio"},
		{"error ratio exactly on budget", &SLO{MaxErrorRatio: ratio(0.1)},
			func(r *Report) { r.Errors = 100 }, true, ""},
		{"error ratio over budget", &SLO{MaxErrorRatio: ratio(0.1)},
			func(r *Report) { r.Errors = 101 }, false, "error ratio"},
		{"throughput exactly on budget", &SLO{MinThroughput: 200}, nil, true, ""},
		{"throughput under budget", &SLO{MinThroughput: 201}, nil, false, "throughput"},
		{"empty run skips latency checks", &SLO{P99Ms: 1},
			func(r *Report) { r.Sent = 0; r.Latency = LatencyMs{} }, false, "no requests"},
		{"several violations listed", &SLO{P50Ms: 1, P99Ms: 1, MinThroughput: 10000}, nil, false, "p50"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := benchReport()
			if tc.mutate != nil {
				tc.mutate(r)
			}
			v := tc.slo.Evaluate(r)
			if v.Pass != tc.pass {
				t.Fatalf("pass = %t, want %t (violations %v)", v.Pass, tc.pass, v.Violations)
			}
			if v.Pass != (len(v.Violations) == 0) {
				t.Fatalf("pass flag disagrees with violations %v", v.Violations)
			}
			if tc.mentions != "" && !strings.Contains(strings.Join(v.Violations, "; "), tc.mentions) {
				t.Fatalf("violations %v do not mention %q", v.Violations, tc.mentions)
			}
		})
	}

	r := benchReport()
	slo := &SLO{P50Ms: 1, P99Ms: 1, MinThroughput: 10000}
	if v := slo.Evaluate(r); len(v.Violations) != 3 {
		t.Fatalf("want all 3 violations listed, got %v", v.Violations)
	}
}
