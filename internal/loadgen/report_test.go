package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAppendTrajectory: the trajectory file is created with the
// standard skeleton on first append and grows one data point per run,
// preserving earlier points byte-for-byte.
func TestAppendTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	r := benchReport()
	r.Schema = ReportSchema
	r.Date = "2026-08-07"
	r.Clients = 4
	r.Seed = 42
	r.ThroughputRPS = 123.456
	r.Statuses["coalesced"] = 7
	r.Verdict = Verdict{Pass: true}
	if err := r.AppendTrajectory(path); err != nil {
		t.Fatal(err)
	}
	r2 := benchReport()
	r2.Date = "2026-08-08"
	r2.Chaos = &ChaosReport{Name: "stall"}
	r2.Verdict = Verdict{Pass: false, Violations: []string{"p99 blown"}}
	if err := r2.AppendTrajectory(path); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var traj struct {
		Benchmark   string `json:"benchmark"`
		Description string `json:"description"`
		DataPoints  []struct {
			Date    string  `json:"date"`
			Clients int     `json:"clients"`
			RPS     float64 `json:"throughput_rps"`
			Ok      int64   `json:"ok"`
			Chaos   string  `json:"chaos"`
			Pass    bool    `json:"slo_pass"`
		} `json:"data_points"`
	}
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("trajectory is not JSON: %v", err)
	}
	if traj.Benchmark != "BenchServeLoad" || traj.Description == "" {
		t.Fatalf("skeleton fields missing: %+v", traj)
	}
	if len(traj.DataPoints) != 2 {
		t.Fatalf("data points = %d, want 2", len(traj.DataPoints))
	}
	p1, p2 := traj.DataPoints[0], traj.DataPoints[1]
	if p1.Date != "2026-08-07" || p1.Clients != 4 || p1.RPS != 123.46 || p1.Ok != 1000 || !p1.Pass {
		t.Fatalf("first point %+v", p1)
	}
	if p2.Date != "2026-08-08" || p2.Chaos != "stall" || p2.Pass {
		t.Fatalf("second point %+v", p2)
	}

	// A non-trajectory file refuses the append instead of being clobbered.
	bad := filepath.Join(t.TempDir(), "notes.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendTrajectory(bad); err == nil {
		t.Fatal("appending over a non-trajectory file must fail")
	}
}

func TestParseChaos(t *testing.T) {
	p, err := ParseChaos([]byte(`{"name":"stall","strikes":[
		{"afterMs":100,"durationMs":200,"plan":{"faults":[]}},
		{"afterMs":300,"corruptDir":"/tmp/cache"},
		{"afterMs":400,"killPid":123,"signal":"TERM"},
		{"afterMs":500,"durationMs":100,"mode":"emergency"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "stall" || len(p.Strikes) != 4 {
		t.Fatalf("parsed %+v", p)
	}
	for name, doc := range map[string]string{
		"no strikes":          `{"name":"x"}`,
		"empty strike":        `{"strikes":[{"afterMs":1}]}`,
		"two actions":         `{"strikes":[{"plan":{},"killPid":1}]}`,
		"mode plus kill":      `{"strikes":[{"mode":"normal","killPid":1}]}`,
		"bad mode":            `{"strikes":[{"mode":"panic"}]}`,
		"negative offset":     `{"strikes":[{"afterMs":-1,"killPid":1}]}`,
		"signal without pid":  `{"strikes":[{"corruptDir":"/x","signal":"TERM"}]}`,
		"bad signal":          `{"strikes":[{"killPid":1,"signal":"HUP"}]}`,
		"duration on oneshot": `{"strikes":[{"killPid":1,"durationMs":5}]}`,
		"unknown field":       `{"strikes":[{"afterMss":1,"killPid":1}]}`,
	} {
		if _, err := ParseChaos([]byte(doc)); err == nil {
			t.Errorf("%s: parsed, want error", name)
		}
	}
}
