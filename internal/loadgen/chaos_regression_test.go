// Chaos-under-load regression battery: fault plans strike the server
// mid-bench, and the SLO verdict distinguishes a fleet that degrades
// gracefully (retries absorb the disturbance, error budget intact) from
// one that leaks it to clients (5xxs blow the budget). Both directions
// are pinned so the harness itself cannot rot into always-green.
package loadgen_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"resilience/internal/loadgen"
	"resilience/internal/servertest"
)

func zeroRatio() *float64 { v := 0.0; return &v }

// TestChaosUnderLoadHoldsSLO: a recoverable fault plan (error on
// attempt 1, one retry) strikes mid-run. Disturbed requests degrade —
// 200 with the degradation annotated in the status header — and the
// zero-error budget still holds: graceful degradation is not an error.
func TestChaosUnderLoadHoldsSLO(t *testing.T) {
	n := servertest.Boot(t, servertest.WithRegistry(benchExp("b01", time.Millisecond)))
	plan := json.RawMessage(`{"retries":1,"faults":[{"experiment":"*","seam":"body","kind":"error","attempt":1}]}`)

	r, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   n.URL,
		Clients:  4,
		Duration: 500 * time.Millisecond,
		Seed:     3,
		Mix:      loadgen.Mix{IDs: []string{"b01"}, Quick: true}, // unique seeds: every request computes
		SLO:      &loadgen.SLO{MaxErrorRatio: zeroRatio()},
		Chaos: &loadgen.ChaosPlan{
			Name:    "recoverable-errors",
			Strikes: []loadgen.Strike{{AfterMs: 100, Plan: plan}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Statuses["degraded"] == 0 {
		t.Fatalf("no degraded responses — the strike never landed: %v (chaos %+v)", r.Statuses, r.Chaos)
	}
	if r.Errors != 0 {
		t.Fatalf("errors %d under a recoverable plan, want 0: %v", r.Errors, r.Statuses)
	}
	if !r.Verdict.Pass {
		t.Fatalf("verdict %+v, want pass — degraded-but-recovered must not blow the budget", r.Verdict)
	}
	if r.Chaos == nil || len(r.Chaos.Applied) == 0 || len(r.Chaos.Errors) != 0 {
		t.Fatalf("chaos report %+v, want applied strikes and no errors", r.Chaos)
	}

	// The bench must disarm the seam on its way out: a finished run
	// never leaves the server degrading traffic it no longer measures.
	resp, err := http.Get(n.URL + "/v1/chaos")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"armed": false`) {
		t.Fatalf("seam still armed after the bench: %s", body)
	}
}

// TestChaosUnderLoadBlowsBudget is the deliberately failing direction:
// an unrecoverable plan (error on every attempt, no retries) turns
// every computation into a 5xx, and the zero-error budget must report
// the violation. If this test ever sees a passing verdict, the harness
// has stopped measuring.
func TestChaosUnderLoadBlowsBudget(t *testing.T) {
	n := servertest.Boot(t, servertest.WithRegistry(benchExp("b01", time.Millisecond)))
	plan := json.RawMessage(`{"faults":[{"experiment":"*","seam":"body","kind":"error"}]}`)

	r, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   n.URL,
		Clients:  2,
		Duration: 400 * time.Millisecond,
		Seed:     5,
		Mix:      loadgen.Mix{IDs: []string{"b01"}, Quick: true},
		SLO:      &loadgen.SLO{MaxErrorRatio: zeroRatio()},
		Chaos: &loadgen.ChaosPlan{
			Name:    "unrecoverable-errors",
			Strikes: []loadgen.Strike{{AfterMs: 50, Plan: plan}},
		},
	})
	if err != nil {
		t.Fatal(err) // the bench itself must still run; only the verdict fails
	}
	if r.Statuses["error.5xx"] == 0 {
		t.Fatalf("no 5xx under an unrecoverable plan: %v (chaos %+v)", r.Statuses, r.Chaos)
	}
	if r.Verdict.Pass {
		t.Fatal("verdict passed with a blown error budget — the harness stopped measuring")
	}
	found := false
	for _, v := range r.Verdict.Violations {
		if strings.Contains(v, "error ratio") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations %v do not name the error ratio", r.Verdict.Violations)
	}
}

// TestChaosCorruptionUnderLoad: scribbling over the filesystem cache
// tier mid-run must not surface errors to clients — a corrupt entry is
// a miss (recomputed, restored), not a 5xx. This is §3.3's adaptability
// claim measured at the HTTP edge.
func TestChaosCorruptionUnderLoad(t *testing.T) {
	n := servertest.Boot(t, servertest.WithRegistry(benchExp("b01", 0)))
	r, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   n.URL,
		Clients:  2,
		Duration: 400 * time.Millisecond,
		Seed:     11,
		Mix: loadgen.Mix{
			IDs:         []string{"b01"},
			RepeatRatio: 1, // hammer the hot pool so the corrupted entries get re-read
			Quick:       true,
		},
		SLO: &loadgen.SLO{MaxErrorRatio: zeroRatio()},
		Chaos: &loadgen.ChaosPlan{
			Name:    "disk-corruption",
			Strikes: []loadgen.Strike{{AfterMs: 100, CorruptDir: n.CacheDir}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Chaos == nil || len(r.Chaos.Errors) != 0 {
		t.Fatalf("corruption strike did not apply cleanly: %+v", r.Chaos)
	}
	if r.Errors != 0 || !r.Verdict.Pass {
		t.Fatalf("corruption leaked to clients: errors=%d verdict=%+v statuses=%v",
			r.Errors, r.Verdict, r.Statuses)
	}
	if r.Statuses["ok"] < 2 {
		t.Fatalf("expected recomputes after corruption, got %v", r.Statuses)
	}
}
