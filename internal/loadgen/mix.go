// Package loadgen is the closed-loop load generator behind `resilience
// bench`: N virtual clients replay a deterministic mix of /v1/run and
// /v1/suite requests against a live serve endpoint, per-request latency
// lands in a log-linear histogram, and the run ends with a
// machine-readable report plus an error-budget verdict against a
// configurable SLO. A chaos controller can disturb the server mid-run
// (armed fault plans, cache-dir corruption, process kills) to measure
// resilience under load rather than in isolation.
package loadgen

import (
	"fmt"

	"resilience/internal/rng"
)

// Mix describes the workload blend each virtual client replays. The mix
// is deterministic: a (bench seed, client index) pair always yields the
// same request sequence, so a bench run is reproducible end to end and
// two runs against different builds compare like for like.
type Mix struct {
	// IDs is the experiment pool requests draw from. Required.
	IDs []string
	// SuiteRatio is the fraction of requests sent to /v1/suite instead
	// of /v1/run (0 = runs only, 1 = suites only).
	SuiteRatio float64
	// RepeatRatio is the fraction of requests that reuse a seed from a
	// small hot pool — repeated (id, seed) keys land on the coalescer
	// and the cache tiers; the remainder draw unique seeds and stress
	// compute.
	RepeatRatio float64
	// HotSeeds is the size of the hot seed pool (default 8).
	HotSeeds int
	// SuiteSize is how many experiment IDs each suite request carries
	// (default min(3, len(IDs))).
	SuiteSize int
	// Quick asks the server for quick-mode runs.
	Quick bool
}

// Request is one generated request: either a single run (ID) or a suite
// (IDs), always with a concrete seed.
type Request struct {
	Suite bool
	ID    string
	IDs   []string
	Seed  uint64
	Quick bool
}

func (m Mix) validate() error {
	if len(m.IDs) == 0 {
		return fmt.Errorf("loadgen: mix needs at least one experiment ID")
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"suite ratio", m.SuiteRatio}, {"repeat ratio", m.RepeatRatio}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("loadgen: %s %v outside [0,1]", r.name, r.v)
		}
	}
	if m.HotSeeds < 0 || m.SuiteSize < 0 {
		return fmt.Errorf("loadgen: negative pool sizes")
	}
	return nil
}

func (m Mix) hotSeedCount() int {
	if m.HotSeeds > 0 {
		return m.HotSeeds
	}
	return 8
}

func (m Mix) suiteSize() int {
	if m.SuiteSize > 0 && m.SuiteSize <= len(m.IDs) {
		return m.SuiteSize
	}
	if len(m.IDs) < 3 {
		return len(m.IDs)
	}
	return 3
}

// Sequence is one client's deterministic request stream.
type Sequence struct {
	mix Mix
	src *rng.Source
	hot []uint64
}

// Sequence derives client i's request stream from the bench seed. The
// hot seed pool is shared across clients (derived from the bench seed
// alone), so repeated keys collide fleet-wide — that collision is the
// point: it is what exercises coalescing and the cache tiers.
func (m Mix) Sequence(seed uint64, client int) *Sequence {
	hot := make([]uint64, m.hotSeedCount())
	for i := range hot {
		hot[i] = rng.DeriveStage(seed, "hot", i)
	}
	return &Sequence{
		mix: m,
		src: rng.New(rng.DeriveStage(seed, "client", client)),
		hot: hot,
	}
}

// Next returns the client's next request.
func (s *Sequence) Next() Request {
	m := s.mix
	req := Request{Quick: m.Quick}
	if s.src.Bool(m.SuiteRatio) {
		req.Suite = true
		perm := s.src.Perm(len(m.IDs))
		req.IDs = make([]string, m.suiteSize())
		for i := range req.IDs {
			req.IDs[i] = m.IDs[perm[i]]
		}
	} else {
		req.ID = m.IDs[s.src.Intn(len(m.IDs))]
	}
	if s.src.Bool(m.RepeatRatio) {
		req.Seed = s.hot[s.src.Intn(len(s.hot))]
	} else {
		req.Seed = s.src.Uint64()
	}
	return req
}
