package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resilience/internal/obs"
)

// Config describes one bench run.
type Config struct {
	// Target is the serve endpoint's base URL (no trailing slash).
	Target string
	// Clients is the number of closed-loop virtual clients (default 1).
	// Each client issues its next request only after the previous one
	// completes, so offered load adapts to what the server sustains.
	Clients int
	// Duration stops the run after a wall-clock budget; Requests stops
	// it after a total request count. At least one must be set; with
	// both, whichever trips first ends the run.
	Duration time.Duration
	Requests int64
	// Mix is the workload blend (required: at least one experiment ID).
	Mix Mix
	// Seed makes the request mix reproducible.
	Seed uint64
	// SLO is the error budget the run is judged against; nil applies
	// only the universal checks.
	SLO *SLO
	// Chaos, when set, disturbs the server mid-run.
	Chaos *ChaosPlan
	// Log receives human progress lines (nil = silent).
	Log io.Writer
	// DrainTimeout bounds the wait for the server's inflight gauge to
	// reach zero after the clients stop (default 5s).
	DrainTimeout time.Duration
	// RequestTimeout bounds one HTTP request (default 60s).
	RequestTimeout time.Duration
}

func (c *Config) validate() error {
	if c.Target == "" {
		return fmt.Errorf("loadgen: no target URL")
	}
	if c.Duration <= 0 && c.Requests <= 0 {
		return fmt.Errorf("loadgen: need a duration or a request count")
	}
	if c.Clients < 0 {
		return fmt.Errorf("loadgen: negative client count")
	}
	return c.Mix.validate()
}

// tally is one client's private scoreboard, merged after the run so the
// hot path never contends on a shared map.
type tally struct {
	statuses map[string]int64
	proxied  int64
}

// Run executes the bench: scrape /metrics, unleash the clients (and the
// chaos controller, if any), wait for the drain, scrape again, and
// judge the result. An SLO violation is reported in the verdict, not as
// an error — the error return is for runs that could not execute at
// all.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	clients := cfg.Clients
	if clients == 0 {
		clients = 1
	}
	reqTimeout := cfg.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = 60 * time.Second
	}
	httpc := &http.Client{
		Timeout: reqTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        clients + 4,
			MaxIdleConnsPerHost: clients + 4,
		},
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	before, err := scrapeMetrics(httpc, cfg.Target)
	if err != nil {
		return nil, fmt.Errorf("loadgen: target not benchable: %w", err)
	}

	runCtx := ctx
	var cancelRun context.CancelFunc
	if cfg.Duration > 0 {
		runCtx, cancelRun = context.WithTimeout(ctx, cfg.Duration)
	} else {
		runCtx, cancelRun = context.WithCancel(ctx)
	}
	defer cancelRun()

	var chaosCh chan *ChaosReport
	if cfg.Chaos != nil {
		chaosCh = make(chan *ChaosReport, 1)
		go func() { chaosCh <- runChaos(runCtx, httpc, cfg.Chaos, cfg.Target, logf) }()
	}

	logf("bench: %d clients against %s (suite ratio %.2f, repeat ratio %.2f, seed %d)",
		clients, cfg.Target, cfg.Mix.SuiteRatio, cfg.Mix.RepeatRatio, cfg.Seed)
	timing := &obs.Timing{}
	var issued atomic.Int64
	tallies := make([]tally, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq := cfg.Mix.Sequence(cfg.Seed, i)
			t := tally{statuses: map[string]int64{}}
			backoff := time.NewTimer(0)
			if !backoff.Stop() {
				<-backoff.C
			}
			defer backoff.Stop()
			for runCtx.Err() == nil {
				if cfg.Requests > 0 && issued.Add(1) > cfg.Requests {
					break
				}
				if doRequest(httpc, cfg.Target, seq.Next(), timing, &t) {
					// The server shed us with a Retry-After: honor it
					// (capped well below the header's 1s so a closed-loop
					// bench still measures the overload, not the sleep).
					backoff.Reset(100 * time.Millisecond)
					select {
					case <-runCtx.Done():
					case <-backoff.C:
					}
				}
			}
			tallies[i] = t
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	cancelRun() // ends the chaos timeline even on a count-bounded run

	var chaosRep *ChaosReport
	if chaosCh != nil {
		chaosRep = <-chaosCh
	}

	hung := awaitDrain(httpc, cfg.Target, cfg.DrainTimeout)
	after, err := scrapeMetrics(httpc, cfg.Target)
	if err != nil {
		logf("bench: post-run metrics scrape failed: %v", err)
		after = &obs.Document{}
	}

	r := &Report{
		Schema:         ReportSchema,
		Target:         cfg.Target,
		Clients:        clients,
		Seed:           cfg.Seed,
		ElapsedSeconds: elapsed.Seconds(),
		Statuses:       map[string]int64{},
		HungAfterDrain: hung,
		Chaos:          chaosRep,
		MetricsDelta:   counterDelta(before, after),
	}
	r.stamp(time.Now())
	for _, t := range tallies {
		for k, v := range t.statuses {
			r.Statuses[k] += v
			r.Sent += v
			if strings.HasPrefix(k, "error.") {
				r.Errors += v
			}
		}
		r.Proxied += t.proxied
	}
	if elapsed > 0 {
		r.ThroughputRPS = float64(r.Sent) / elapsed.Seconds()
	}
	snap := timing.Snapshot()
	r.Latency = LatencyMs{
		Count:  snap.Count,
		MeanMs: snap.Mean() * 1e3,
		MinMs:  snap.Min * 1e3,
		MaxMs:  snap.Max * 1e3,
		P50Ms:  snap.P50 * 1e3,
		P90Ms:  snap.P90 * 1e3,
		P99Ms:  snap.P99 * 1e3,
		P999Ms: snap.P999 * 1e3,
	}
	r.Verdict = cfg.SLO.Evaluate(r)
	logf("bench: %d requests in %.2fs (%.1f req/s), p50 %.2fms p99 %.2fms p999 %.2fms, %d errors, verdict pass=%t",
		r.Sent, r.ElapsedSeconds, r.ThroughputRPS, r.Latency.P50Ms, r.Latency.P99Ms, r.Latency.P999Ms,
		r.Errors, r.Verdict.Pass)
	return r, nil
}

// runBody is the /v1/run and /v1/suite request document.
type runBody struct {
	Seed  uint64   `json:"seed"`
	Quick bool     `json:"quick,omitempty"`
	IDs   []string `json:"ids,omitempty"`
}

// doRequest issues one generated request and scores the outcome,
// reporting whether the server shed it (so the client can back off). The
// latency of every attempt — including failures — is observed; a slow
// error is still a slow answer from the client's point of view.
func doRequest(httpc *http.Client, target string, req Request, timing *obs.Timing, t *tally) (shed bool) {
	body, err := json.Marshal(runBody{Seed: req.Seed, Quick: req.Quick, IDs: req.IDs})
	if err != nil {
		t.statuses["error.transport"]++
		return false
	}
	url := target + "/v1/run/" + req.ID
	if req.Suite {
		url = target + "/v1/suite"
	}
	start := time.Now()
	resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		timing.Observe(time.Since(start).Seconds())
		t.statuses["error.transport"]++
		return false
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // latency includes the full body
	resp.Body.Close()
	timing.Observe(time.Since(start).Seconds())
	if resp.Header.Get("X-Resilience-Proxied") != "" {
		t.proxied++
	}
	class := classify(resp.StatusCode, resp.Header.Get("X-Resilience-Status"), resp.Header.Get("Retry-After"), req.Suite)
	t.statuses[class]++
	return class == "shed"
}

// classify maps one response to a breakdown class. Proxied responses
// carry the owner's status verbatim, so they classify like local ones
// (the proxied count is tracked separately off the header). A 429 that
// carries Retry-After is the adaptive server's structured load shed —
// a distinct "shed" class, not an "error." one, because the verdict for
// an overload run judges "degraded, not collapsed": the server refusing
// work it cannot absorb is the designed behavior, while a bare 429
// stays error.4xx.
func classify(code int, status, retryAfter string, suite bool) string {
	switch {
	case code >= 200 && code < 300:
		if suite {
			return "suite"
		}
		switch {
		case status == "ok (coalesced)":
			return "coalesced"
		case strings.HasPrefix(status, "ok (cached"):
			tier := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(status, "ok (cached"), ")"))
			if tier == "" {
				return "cached"
			}
			return "cached." + tier
		case strings.HasPrefix(status, "ok (degraded"):
			return "degraded"
		default:
			return "ok"
		}
	case code == http.StatusTooManyRequests && retryAfter != "":
		return "shed"
	case code >= 400 && code < 500:
		return "error.4xx"
	case code >= 500:
		return "error.5xx"
	default:
		return "error.transport"
	}
}

// scrapeMetrics fetches and decodes the target's /metrics document.
func scrapeMetrics(httpc *http.Client, target string) (*obs.Document, error) {
	resp, err := httpc.Get(target + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics = %d", resp.StatusCode)
	}
	var doc obs.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("bad metrics document: %w", err)
	}
	return &doc, nil
}

// awaitDrain polls the server's inflight gauge until it reaches zero or
// the timeout expires, returning the count still in flight — a nonzero
// value means the server is holding requests the clients already gave
// up on, which the verdict treats as a violation regardless of SLO.
func awaitDrain(httpc *http.Client, target string, timeout time.Duration) int64 {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	var last int64
	for {
		doc, err := scrapeMetrics(httpc, target)
		if err == nil {
			// The gauge counts only run/suite work, never the scrape
			// itself, so a drained server reads exactly 0.
			last = int64(doc.Gauges["server.inflight"])
			if last <= 0 {
				return 0
			}
		}
		if time.Now().After(deadline) {
			return last
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// counterDelta subtracts the pre-run counter snapshot from the post-run
// one, keeping only counters that moved.
func counterDelta(before, after *obs.Document) map[string]int64 {
	delta := map[string]int64{}
	for k, v := range after.Counters {
		if d := v - before.Counters[k]; d != 0 {
			delta[k] = d
		}
	}
	if len(delta) == 0 {
		return nil
	}
	return delta
}

// DiscoverIDs asks the target for its experiment catalogue — the
// default ID pool when the caller does not name one.
func DiscoverIDs(target string) ([]string, error) {
	resp, err := http.Get(target + "/v1/experiments")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/experiments = %d", resp.StatusCode)
	}
	var entries []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		return nil, fmt.Errorf("bad experiments document: %w", err)
	}
	ids := make([]string, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("target serves no experiments")
	}
	return ids, nil
}
