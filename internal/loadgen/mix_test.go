package loadgen

import (
	"reflect"
	"testing"
)

func testMix() Mix {
	return Mix{
		IDs:         []string{"e01", "e02", "e03"},
		SuiteRatio:  0.3,
		RepeatRatio: 0.5,
		Quick:       true,
	}
}

// TestMixDeterminism: a (bench seed, client) pair must always yield the
// same request sequence — reproducibility is what makes two bench runs
// comparable.
func TestMixDeterminism(t *testing.T) {
	m := testMix()
	const steps = 200
	a, b := m.Sequence(42, 3), m.Sequence(42, 3)
	for i := 0; i < steps; i++ {
		ra, rb := a.Next(), b.Next()
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("step %d diverged: %+v vs %+v", i, ra, rb)
		}
	}

	// Different clients (and different bench seeds) draw different
	// streams.
	for name, other := range map[string]*Sequence{
		"other client": m.Sequence(42, 4),
		"other seed":   m.Sequence(43, 3),
	} {
		ref, same := m.Sequence(42, 3), 0
		for i := 0; i < steps; i++ {
			if reflect.DeepEqual(ref.Next(), other.Next()) {
				same++
			}
		}
		if same == steps {
			t.Fatalf("%s replayed the identical sequence", name)
		}
	}
}

// TestMixRatios pins the edge ratios: 0 means never, 1 means always,
// and repeat draws stay inside the shared hot pool.
func TestMixRatios(t *testing.T) {
	m := testMix()
	m.SuiteRatio, m.RepeatRatio = 0, 1
	hot := map[uint64]bool{}
	seq := m.Sequence(7, 0)
	for i := 0; i < 300; i++ {
		r := seq.Next()
		if r.Suite {
			t.Fatal("suite request with SuiteRatio 0")
		}
		if r.ID == "" || !r.Quick {
			t.Fatalf("bad run request %+v", r)
		}
		hot[r.Seed] = true
	}
	if len(hot) > m.hotSeedCount() {
		t.Fatalf("repeat draws produced %d distinct seeds, want <= %d (the hot pool)",
			len(hot), m.hotSeedCount())
	}

	// Hot pools are shared across clients: another client's repeats draw
	// the very same seeds, which is what makes keys collide fleet-wide.
	other := m.Sequence(7, 9)
	for i := 0; i < 50; i++ {
		if r := other.Next(); !hot[r.Seed] {
			t.Fatalf("client 9 drew seed %d outside the shared hot pool", r.Seed)
		}
	}

	m.SuiteRatio, m.RepeatRatio = 1, 0
	seen := map[uint64]bool{}
	seq = m.Sequence(7, 0)
	for i := 0; i < 300; i++ {
		r := seq.Next()
		if !r.Suite || len(r.IDs) != m.suiteSize() {
			t.Fatalf("want suite of %d ids, got %+v", m.suiteSize(), r)
		}
		if seen[r.Seed] {
			t.Fatalf("unique draw repeated seed %d", r.Seed)
		}
		seen[r.Seed] = true
	}
}

func TestMixValidate(t *testing.T) {
	for name, m := range map[string]Mix{
		"no ids":       {},
		"ratio > 1":    {IDs: []string{"a"}, SuiteRatio: 1.5},
		"ratio < 0":    {IDs: []string{"a"}, RepeatRatio: -0.1},
		"negative cap": {IDs: []string{"a"}, HotSeeds: -1},
	} {
		if err := m.validate(); err == nil {
			t.Errorf("%s: validate passed, want error", name)
		}
	}
	if err := testMix().validate(); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
}
