package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ReportSchema identifies the bench report layout.
const ReportSchema = "resilience-bench/1"

// LatencyMs summarizes the per-request latency histogram in
// milliseconds.
type LatencyMs struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"meanMs"`
	MinMs  float64 `json:"minMs"`
	MaxMs  float64 `json:"maxMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
}

// Report is the machine-readable outcome of one bench run. Statuses is
// the client-observed breakdown keyed by outcome class: "ok",
// "cached.mem" / "cached.fs" / "cached.peer" / "cached", "coalesced",
// "degraded", "suite", "shed" (a structured 429 + Retry-After from an
// adaptive server — counted apart from the "error." classes because
// shedding is designed degradation, not collapse), and
// "error.transport" / "error.4xx" / "error.5xx". MetricsDelta carries
// the change in every server counter
// between the pre- and post-run /metrics scrapes, so a report can be
// reconciled against what the server says happened.
type Report struct {
	Schema         string           `json:"schema"`
	Date           string           `json:"date"`
	Target         string           `json:"target"`
	Clients        int              `json:"clients"`
	Seed           uint64           `json:"seed"`
	ElapsedSeconds float64          `json:"elapsedSeconds"`
	Sent           int64            `json:"sent"`
	ThroughputRPS  float64          `json:"throughputRps"`
	Latency        LatencyMs        `json:"latency"`
	Statuses       map[string]int64 `json:"statuses"`
	Proxied        int64            `json:"proxied"`
	Errors         int64            `json:"errors"`
	HungAfterDrain int64            `json:"hungAfterDrain"`
	Chaos          *ChaosReport     `json:"chaos,omitempty"`
	MetricsDelta   map[string]int64 `json:"metricsDelta,omitempty"`
	Verdict        Verdict          `json:"verdict"`
}

// status returns a breakdown entry without materializing zero keys.
func (r *Report) status(key string) int64 { return r.Statuses[key] }

// Cached sums the cache-hit classes across tiers.
func (r *Report) Cached() int64 {
	return r.status("cached") + r.status("cached.mem") + r.status("cached.fs") + r.status("cached.peer")
}

// trajectory mirrors the BENCH_*.json layout shared by the repo's other
// benchmark trajectory files.
type trajectory struct {
	Benchmark   string            `json:"benchmark"`
	Description string            `json:"description"`
	DataPoints  []json.RawMessage `json:"data_points"`
}

// trajectoryPoint is the compact per-run row appended to
// BENCH_serve.json.
type trajectoryPoint struct {
	Date          string  `json:"date"`
	Clients       int     `json:"clients"`
	Seed          uint64  `json:"seed"`
	Sent          int64   `json:"sent"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
	Ok            int64   `json:"ok"`
	Cached        int64   `json:"cached"`
	Coalesced     int64   `json:"coalesced"`
	Degraded      int64   `json:"degraded"`
	Suite         int64   `json:"suite"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	Proxied       int64   `json:"proxied"`
	Chaos         string  `json:"chaos,omitempty"`
	SLOPass       bool    `json:"slo_pass"`
}

const trajectoryDescription = "Closed-loop `resilience bench` runs against a live serve endpoint: " +
	"N virtual clients replaying a deterministic /v1/run + /v1/suite mix " +
	"(repeat-ratio controls how often hot keys land on the coalescer and cache tiers), " +
	"per-request latency quantiles from a log-linear histogram, the client-observed " +
	"status breakdown, and the SLO verdict. One row per recorded run; rows are " +
	"timing-bearing and machine-appended, never edited by hand."

// AppendTrajectory appends this run as one data point to the trajectory
// file at path (created with the standard skeleton if missing).
func (r *Report) AppendTrajectory(path string) error {
	traj := trajectory{
		Benchmark:   "BenchServeLoad",
		Description: trajectoryDescription,
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &traj); err != nil {
			return fmt.Errorf("loadgen: %s is not a trajectory file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	point, err := json.Marshal(trajectoryPoint{
		Date:          r.Date,
		Clients:       r.Clients,
		Seed:          r.Seed,
		Sent:          r.Sent,
		ThroughputRPS: round2(r.ThroughputRPS),
		P50Ms:         round2(r.Latency.P50Ms),
		P99Ms:         round2(r.Latency.P99Ms),
		P999Ms:        round2(r.Latency.P999Ms),
		Ok:            r.status("ok"),
		Cached:        r.Cached(),
		Coalesced:     r.status("coalesced"),
		Degraded:      r.status("degraded"),
		Suite:         r.status("suite"),
		Shed:          r.status("shed"),
		Errors:        r.Errors,
		Proxied:       r.Proxied,
		Chaos:         chaosName(r.Chaos),
		SLOPass:       r.Verdict.Pass,
	})
	if err != nil {
		return err
	}
	traj.DataPoints = append(traj.DataPoints, point)
	out, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func chaosName(c *ChaosReport) string {
	switch {
	case c == nil:
		return ""
	case c.Name != "":
		return c.Name
	default:
		return "unnamed"
	}
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// WriteJSON writes the full report as indented JSON.
func (r *Report) WriteJSON(w interface{ Write([]byte) (int, error) }) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// stamp fills the report's date from the wall clock (split out so tests
// can pin it).
func (r *Report) stamp(now time.Time) { r.Date = now.UTC().Format("2006-01-02") }
