package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// SLO is the error budget a bench run is judged against. Zero-valued
// latency/throughput bounds are unchecked; MaxErrorRatio distinguishes
// "unchecked" (nil) from "zero errors allowed" (pointer to 0). Two
// checks are universal and apply even with a nil SLO: a run that
// completed no requests is a failure, and so are requests still in
// flight after the clients drained (a hung server masquerading as a
// quiet one).
type SLO struct {
	// P50Ms / P99Ms / P999Ms bound the respective latency quantiles in
	// milliseconds; 0 leaves a quantile unchecked.
	P50Ms  float64 `json:"p50Ms,omitempty"`
	P99Ms  float64 `json:"p99Ms,omitempty"`
	P999Ms float64 `json:"p999Ms,omitempty"`
	// MaxErrorRatio bounds errors/sent (transport errors plus non-2xx).
	MaxErrorRatio *float64 `json:"maxErrorRatio,omitempty"`
	// MinThroughput bounds achieved requests per second from below.
	MinThroughput float64 `json:"minThroughput,omitempty"`
}

// ParseSLO decodes an SLO document strictly: unknown fields and
// negative bounds are errors, so a typoed budget fails loudly instead
// of silently checking nothing.
func ParseSLO(data []byte) (*SLO, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SLO
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loadgen: bad SLO: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("loadgen: bad SLO: trailing data")
	}
	for _, b := range []struct {
		name string
		v    float64
	}{{"p50Ms", s.P50Ms}, {"p99Ms", s.P99Ms}, {"p999Ms", s.P999Ms}, {"minThroughput", s.MinThroughput}} {
		if b.v < 0 {
			return nil, fmt.Errorf("loadgen: bad SLO: negative %s", b.name)
		}
	}
	if s.MaxErrorRatio != nil && (*s.MaxErrorRatio < 0 || *s.MaxErrorRatio > 1) {
		return nil, fmt.Errorf("loadgen: bad SLO: maxErrorRatio outside [0,1]")
	}
	return &s, nil
}

// Verdict is the budget evaluation: Pass with an empty violation list,
// or the specific bounds that were blown.
type Verdict struct {
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// Evaluate judges a finished run. A nil SLO applies only the universal
// checks (empty run, hung requests after drain).
func (s *SLO) Evaluate(r *Report) Verdict {
	var v []string
	if r.Sent == 0 {
		v = append(v, "no requests completed")
	}
	if r.HungAfterDrain > 0 {
		v = append(v, fmt.Sprintf("%d requests still in flight after drain", r.HungAfterDrain))
	}
	if s != nil && r.Sent > 0 {
		for _, b := range []struct {
			name  string
			bound float64
			got   float64
		}{
			{"p50", s.P50Ms, r.Latency.P50Ms},
			{"p99", s.P99Ms, r.Latency.P99Ms},
			{"p999", s.P999Ms, r.Latency.P999Ms},
		} {
			if b.bound > 0 && b.got > b.bound {
				v = append(v, fmt.Sprintf("%s %.2fms exceeds budget %.2fms", b.name, b.got, b.bound))
			}
		}
		if s.MaxErrorRatio != nil {
			ratio := float64(r.Errors) / float64(r.Sent)
			if ratio > *s.MaxErrorRatio {
				v = append(v, fmt.Sprintf("error ratio %.4f exceeds budget %.4f (%d/%d)",
					ratio, *s.MaxErrorRatio, r.Errors, r.Sent))
			}
		}
		if s.MinThroughput > 0 && r.ThroughputRPS < s.MinThroughput {
			v = append(v, fmt.Sprintf("throughput %.1f req/s below budget %.1f",
				r.ThroughputRPS, s.MinThroughput))
		}
	}
	return Verdict{Pass: len(v) == 0, Violations: v}
}
