package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"
)

// ChaosPlan is the client-side chaos timeline `resilience bench
// -chaos-plan` drives while the load runs: each Strike fires at an
// offset from the start of the run and disturbs the *server* — this is
// deliberately distinct from internal/faultinject plans, which describe
// what a fault does once armed; a Strike describes when and where one
// lands.
type ChaosPlan struct {
	Name    string   `json:"name,omitempty"`
	Strikes []Strike `json:"strikes"`
}

// Strike is one disturbance. Exactly one action must be set:
//
//   - Plan: a raw internal/faultinject plan POSTed to the target's
//     /v1/chaos seam (disarmed again after DurationMs, or at the end of
//     the run).
//   - CorruptDir: scribble garbage over the entries of a cache
//     directory, so the filesystem tier's integrity checks have
//     something real to catch.
//   - KillPid: signal a process — the fleet-mode "kill one ring member
//     mid-run" disturbance (Signal names TERM or KILL, default KILL).
//   - Mode: force the target's serving mode ("normal", "pressured" or
//     "emergency") via POST /v1/mode — the §3.4.5 operator override,
//     driven on a timeline so a bench can assert how the fleet behaves
//     in a degraded mode and after recovery (DurationMs > 0 reverts to
//     normal when the window ends).
type Strike struct {
	AfterMs    int             `json:"afterMs"`
	DurationMs int             `json:"durationMs,omitempty"`
	Target     string          `json:"target,omitempty"` // base URL; defaults to the bench target
	Plan       json.RawMessage `json:"plan,omitempty"`
	CorruptDir string          `json:"corruptDir,omitempty"`
	KillPid    int             `json:"killPid,omitempty"`
	Signal     string          `json:"signal,omitempty"`
	Mode       string          `json:"mode,omitempty"`
}

// ParseChaos decodes a chaos plan strictly and validates that every
// strike names exactly one action.
func ParseChaos(data []byte) (*ChaosPlan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p ChaosPlan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("loadgen: bad chaos plan: %w", err)
	}
	if len(p.Strikes) == 0 {
		return nil, fmt.Errorf("loadgen: chaos plan has no strikes")
	}
	for i, s := range p.Strikes {
		actions := 0
		if len(s.Plan) > 0 {
			actions++
		}
		if s.CorruptDir != "" {
			actions++
		}
		if s.KillPid != 0 {
			actions++
		}
		if s.Mode != "" {
			actions++
		}
		if actions != 1 {
			return nil, fmt.Errorf("loadgen: strike %d must set exactly one of plan, corruptDir, killPid, mode", i)
		}
		if s.AfterMs < 0 || s.DurationMs < 0 {
			return nil, fmt.Errorf("loadgen: strike %d has a negative offset", i)
		}
		if s.Signal != "" && s.KillPid == 0 {
			return nil, fmt.Errorf("loadgen: strike %d sets signal without killPid", i)
		}
		switch strings.ToUpper(s.Signal) {
		case "", "KILL", "TERM":
		default:
			return nil, fmt.Errorf("loadgen: strike %d signal %q (want TERM or KILL)", i, s.Signal)
		}
		switch s.Mode {
		case "", "normal", "pressured", "emergency":
		default:
			return nil, fmt.Errorf("loadgen: strike %d mode %q (want normal, pressured or emergency)", i, s.Mode)
		}
		if s.DurationMs > 0 && len(s.Plan) == 0 && s.Mode == "" {
			return nil, fmt.Errorf("loadgen: strike %d sets durationMs on a one-shot action", i)
		}
	}
	return &p, nil
}

// ChaosReport records what the controller actually did, for the bench
// report: one human-readable line per applied event, plus any apply
// errors (an unreachable seam is itself a finding, not a bench crash).
type ChaosReport struct {
	Name    string   `json:"name,omitempty"`
	Applied []string `json:"applied,omitempty"`
	Errors  []string `json:"errors,omitempty"`
}

// chaosEvent is one point on the controller timeline.
type chaosEvent struct {
	at    time.Duration
	label string
	apply func() error
}

// runChaos executes the plan's timeline from the start of the load run
// until ctx is cancelled or the timeline is exhausted, then disarms any
// seam it armed. It is synchronous — Run launches it in a goroutine and
// waits for the returned report after the clients drain.
func runChaos(ctx context.Context, client *http.Client, plan *ChaosPlan, target string, logf func(string, ...any)) *ChaosReport {
	rep := &ChaosReport{Name: plan.Name}
	events := make([]chaosEvent, 0, 2*len(plan.Strikes))
	armed := map[string]bool{}  // seam URLs that may still hold our plan
	forced := map[string]bool{} // mode endpoints we left off normal
	for _, s := range plan.Strikes {
		s := s
		url := s.Target
		if url == "" {
			url = target
		}
		at := time.Duration(s.AfterMs) * time.Millisecond
		switch {
		case s.Mode != "":
			events = append(events, chaosEvent{at, fmt.Sprintf("t+%v force mode %s on %s", at, s.Mode, url), func() error {
				forced[url] = s.Mode != "normal"
				return postMode(client, url, s.Mode)
			}})
			if s.DurationMs > 0 {
				off := at + time.Duration(s.DurationMs)*time.Millisecond
				events = append(events, chaosEvent{off, fmt.Sprintf("t+%v revert mode on %s", off, url), func() error {
					forced[url] = false
					return postMode(client, url, "normal")
				}})
			}
		case len(s.Plan) > 0:
			events = append(events, chaosEvent{at, fmt.Sprintf("t+%v arm fault plan on %s", at, url), func() error {
				armed[url] = true
				return postChaos(client, url, s.Plan)
			}})
			if s.DurationMs > 0 {
				off := at + time.Duration(s.DurationMs)*time.Millisecond
				events = append(events, chaosEvent{off, fmt.Sprintf("t+%v disarm %s", off, url), func() error {
					armed[url] = false
					return postChaos(client, url, nil)
				}})
			}
		case s.CorruptDir != "":
			events = append(events, chaosEvent{at, fmt.Sprintf("t+%v corrupt cache dir %s", at, s.CorruptDir), func() error {
				return corruptDir(s.CorruptDir)
			}})
		default:
			sig := syscall.SIGKILL
			if strings.EqualFold(s.Signal, "TERM") {
				sig = syscall.SIGTERM
			}
			events = append(events, chaosEvent{at, fmt.Sprintf("t+%v signal pid %d (%v)", at, s.KillPid, sig), func() error {
				return signalPid(s.KillPid, sig)
			}})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	for _, ev := range events {
		wait := ev.at - time.Since(start)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				disarmAll(client, armed, rep)
				revertModes(client, forced, rep)
				return rep
			case <-timer.C:
			}
		}
		logf("chaos: %s", ev.label)
		if err := ev.apply(); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", ev.label, err))
		} else {
			rep.Applied = append(rep.Applied, ev.label)
		}
	}
	<-ctx.Done()
	disarmAll(client, armed, rep)
	revertModes(client, forced, rep)
	return rep
}

// revertModes returns every server the timeline left in a degraded mode
// to normal, mirroring disarmAll: a finished bench never strands a
// daemon shedding traffic it no longer measures.
func revertModes(client *http.Client, forced map[string]bool, rep *ChaosReport) {
	for url, on := range forced {
		if !on {
			continue
		}
		if err := postMode(client, url, "normal"); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("final mode revert %s: %v", url, err))
		} else {
			rep.Applied = append(rep.Applied, "final mode revert "+url)
		}
	}
}

// postMode forces a server's serving mode through its /v1/mode endpoint.
func postMode(client *http.Client, target, mode string) error {
	body, err := json.Marshal(struct {
		Mode string `json:"mode"`
	}{mode})
	if err != nil {
		return err
	}
	resp, err := client.Post(target+"/v1/mode", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST /v1/mode = %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return nil
}

// disarmAll clears every seam the timeline may have left armed, so a
// finished bench never leaves a server degrading traffic it no longer
// measures.
func disarmAll(client *http.Client, armed map[string]bool, rep *ChaosReport) {
	for url, on := range armed {
		if !on {
			continue
		}
		if err := postChaos(client, url, nil); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("final disarm %s: %v", url, err))
		} else {
			rep.Applied = append(rep.Applied, "final disarm "+url)
		}
	}
}

// postChaos arms (or, with a nil plan, disarms) a server's /v1/chaos
// seam.
func postChaos(client *http.Client, target string, plan json.RawMessage) error {
	body := bytes.NewReader(plan)
	resp, err := client.Post(target+"/v1/chaos", "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST /v1/chaos = %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return nil
}

// corruptDir overwrites the head of every regular file under dir (up to
// a sanity cap) with garbage, simulating disk corruption under the
// filesystem cache tier.
func corruptDir(dir string) error {
	const maxFiles = 256
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.Type().IsRegular() || n >= maxFiles {
			return err
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		_, werr := f.WriteAt([]byte("\x00CHAOS\x00 scribbled by resilience bench"), 0)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		n++
		return nil
	})
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("no files to corrupt under %s", dir)
	}
	return nil
}

// signalPid delivers sig to pid.
func signalPid(pid int, sig syscall.Signal) error {
	p, err := os.FindProcess(pid)
	if err != nil {
		return err
	}
	return p.Signal(sig)
}
