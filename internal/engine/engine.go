// Package engine executes an experiment as an ordered list of named
// stages instead of one monolithic body. The paper's active-resilience
// loop (§4: anticipate → model → respond → switch modes) presumes a
// system whose execution decomposes into observable, restartable units;
// the engine is that decomposition applied to the experiment suite
// itself. Each stage boundary is, in one mechanism:
//
//   - a cancellation point: the runner's per-attempt timeout is observed
//     at the next stage, so abandoned attempts drain without the
//     hand-written Canceled() polls PR 2/3 copy-pasted into experiments;
//   - a fault seam: the stage name is the seam name, so fault-injection
//     plans (internal/faultinject) target stages without per-experiment
//     boilerplate, and the runner's seam observer counts the crossing
//     and stamps it on the attempt span;
//   - an RNG hand-off: every stage can ask for an independent random
//     source derived from (seed, experiment ID, stage index, stage
//     name), so future stage-level re-execution or sharding does not
//     perturb sibling stages.
//
// The package deliberately imports only internal/rng: callers (the
// experiments package) adapt their own hook/cancel plumbing into a
// Context of plain closures, which keeps the dependency arrow pointing
// one way. SchemaVersion feeds the result cache key (internal/rescache):
// bumping it invalidates every cached result produced under the old
// execution semantics.
package engine

import (
	"resilience/internal/rng"
)

// SchemaVersion identifies the engine's execution semantics. It is part
// of the content-addressed result-cache key: any change to how stages
// run (ordering, seam firing, RNG derivation) must bump it so stale
// cached results are invalidated rather than replayed.
const SchemaVersion = 1

// Stage is one named unit of an experiment.
type Stage struct {
	// Name is the stage's seam name. The engine fires the context's
	// Strike at it before Fn runs, which doubles as the cancellation
	// check. An empty name skips both — used by Single so unmigrated
	// monolithic bodies keep their exact pre-engine behaviour.
	Name string
	// RNG, when non-nil, is the random source in scope at this stage's
	// seam: an "rng" fault at the seam perturbs this stream, exactly as
	// the hand-placed Strike calls did before the engine existed.
	RNG *rng.Source
	// Fn does the stage's work. It receives a per-stage source derived
	// from the context (see Context.StageRNG); stages that thread their
	// own legacy streams may ignore it. A nil Fn is a pure seam stage —
	// a named cancellation/fault point with no work of its own.
	Fn func(r *rng.Source) error
}

// Context carries the per-attempt state a stage list runs under. It is
// built by the experiments package from its Config, as plain closures so
// this package needs no knowledge of hooks or recorders.
type Context struct {
	// ID is the experiment ID, e.g. "e02". It salts per-stage RNG
	// derivation.
	ID string
	// Seed is the experiment's derived seed (not the CLI root seed).
	Seed uint64
	// Strike fires the fault/cancellation seam with the given name and
	// in-scope source; nil disables seam firing (unit tests).
	Strike func(seam string, r *rng.Source) error
	// OnStage, when non-nil, observes every stage start (for obs
	// counters); it must not fail.
	OnStage func(index int, name string)
}

// StageRNG derives the independent random source handed to stage index
// with the given name: rng.DeriveStage over (seed, "id/name", index).
// The derivation depends only on the experiment's seed and the stage's
// identity, never on execution order or sibling stages.
func (ctx Context) StageRNG(index int, name string) *rng.Source {
	return rng.New(rng.DeriveStage(ctx.Seed, ctx.ID+"/"+name, index))
}

// Run executes the stages in order. Before each named stage it reports
// the stage to OnStage and fires Strike at the stage's name — so a
// canceled attempt fails fast at its next stage boundary and fault
// plans can target the stage as a seam. Errors are returned exactly as
// the stage (or strike) produced them, unwrapped, so rendered error
// text is identical to the pre-engine monolithic form.
func Run(ctx Context, stages []Stage) error {
	for i, st := range stages {
		if ctx.OnStage != nil {
			ctx.OnStage(i, st.Name)
		}
		if st.Name != "" && ctx.Strike != nil {
			if err := ctx.Strike(st.Name, st.RNG); err != nil {
				return err
			}
		}
		if st.Fn == nil {
			continue
		}
		if err := st.Fn(ctx.StageRNG(i, st.Name)); err != nil {
			return err
		}
	}
	return nil
}

// Single wraps a monolithic experiment body as a one-stage list: the
// compatibility shim for unmigrated experiments. The stage is unnamed,
// so no extra seam fires and no extra cancellation check runs — the
// body behaves byte-identically to its pre-engine form.
func Single(fn func() error) []Stage {
	return []Stage{{Fn: func(*rng.Source) error { return fn() }}}
}
