package engine

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"resilience/internal/rng"
)

// TestRunOrderAndSeams: stages run in declaration order, and every
// named stage fires its seam (with its declared RNG) before its Fn.
func TestRunOrderAndSeams(t *testing.T) {
	r := rng.New(7)
	var trace []string
	ctx := Context{
		ID: "t01", Seed: 42,
		Strike: func(seam string, src *rng.Source) error {
			if seam == "generate" && src != r {
				t.Errorf("seam %q fired with wrong RNG", seam)
			}
			trace = append(trace, "strike:"+seam)
			return nil
		},
		OnStage: func(i int, name string) {
			trace = append(trace, fmt.Sprintf("stage%d:%s", i, name))
		},
	}
	err := Run(ctx, []Stage{
		{Name: "generate", RNG: r, Fn: func(*rng.Source) error {
			trace = append(trace, "fn:generate")
			return nil
		}},
		{Fn: func(*rng.Source) error { trace = append(trace, "fn:anon"); return nil }},
		{Name: "seam-only"}, // nil Fn: pure cancellation/fault point
		{Name: "report", Fn: func(*rng.Source) error { trace = append(trace, "fn:report"); return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"stage0:generate", "strike:generate", "fn:generate",
		"stage1:", "fn:anon",
		"stage2:seam-only", "strike:seam-only",
		"stage3:report", "strike:report", "fn:report",
	}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace\n got %v\nwant %v", trace, want)
	}
}

// TestRunStrikeErrorStopsLaterStages: a failing seam aborts the run
// with the strike's error verbatim; later stages never start.
func TestRunStrikeErrorStopsLaterStages(t *testing.T) {
	boom := errors.New("injected outage")
	ran := false
	err := Run(Context{
		Strike: func(seam string, _ *rng.Source) error {
			if seam == "fail-here" {
				return boom
			}
			return nil
		},
	}, []Stage{
		{Name: "ok", Fn: func(*rng.Source) error { return nil }},
		{Name: "fail-here", Fn: func(*rng.Source) error { ran = true; return nil }},
		{Name: "never", Fn: func(*rng.Source) error { ran = true; return nil }},
	})
	if err != boom {
		t.Fatalf("err = %v, want the strike error unwrapped", err)
	}
	if ran {
		t.Fatal("stages after the failing seam still ran")
	}
}

// TestRunFnErrorUnwrapped: stage errors surface exactly as returned —
// no wrapping, so rendered error text matches the monolithic form.
func TestRunFnErrorUnwrapped(t *testing.T) {
	boom := errors.New("stage work failed")
	err := Run(Context{}, []Stage{
		{Name: "a", Fn: func(*rng.Source) error { return boom }},
	})
	if err != boom {
		t.Fatalf("err = %v, want stage error unwrapped", err)
	}
}

// TestSingleParity: the compatibility shim runs the body once, fires no
// seam, and passes the body's error through.
func TestSingleParity(t *testing.T) {
	var strikes int
	calls := 0
	boom := errors.New("body error")
	err := Run(Context{
		Strike: func(string, *rng.Source) error { strikes++; return nil },
	}, Single(func() error { calls++; return boom }))
	if err != boom || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the body error after one call", err, calls)
	}
	if strikes != 0 {
		t.Fatalf("Single fired %d seams, want 0 (shim must not add seams)", strikes)
	}
}

// TestStageRNGDeterministic: the per-stage hand-off depends only on
// (seed, id, index, name) — stable across calls, distinct across
// stages and seeds.
func TestStageRNGDeterministic(t *testing.T) {
	ctx := Context{ID: "e99", Seed: 1234}
	a1 := ctx.StageRNG(0, "generate").Uint64()
	a2 := ctx.StageRNG(0, "generate").Uint64()
	if a1 != a2 {
		t.Fatal("StageRNG is not deterministic for identical stage identity")
	}
	b := ctx.StageRNG(1, "generate").Uint64()
	c := ctx.StageRNG(0, "report").Uint64()
	d := Context{ID: "e99", Seed: 1235}.StageRNG(0, "generate").Uint64()
	if a1 == b || a1 == c || a1 == d {
		t.Fatalf("StageRNG streams collide across index/name/seed: %d %d %d %d", a1, b, c, d)
	}
}

// TestRunNilCallbacks: a context with no Strike/OnStage still runs
// every stage (unit-test ergonomics; Record always installs Strike).
func TestRunNilCallbacks(t *testing.T) {
	n := 0
	err := Run(Context{}, []Stage{
		{Name: "a", Fn: func(*rng.Source) error { n++; return nil }},
		{Name: "b", Fn: func(*rng.Source) error { n++; return nil }},
	})
	if err != nil || n != 2 {
		t.Fatalf("err=%v n=%d, want both stages to run", err, n)
	}
}
