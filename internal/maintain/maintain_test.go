package maintain

import (
	"errors"
	"testing"
	"testing/quick"

	"resilience/internal/rng"
)

// buildChain makes states 0..n-1 with 0 normal and a "repair" action that
// deterministically moves i -> i-1.
func buildChain(t *testing.T, n int) *System {
	t.Helper()
	s, err := NewSystem(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkNormal(0); err != nil {
		t.Fatal(err)
	}
	repair := s.AddAction("repair")
	for i := 1; i < n; i++ {
		if err := s.AddTransition(StateID(i), repair, StateID(i-1)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(0); err == nil {
		t.Error("want error for zero states")
	}
	if _, err := NewSystem(-2); err == nil {
		t.Error("want error for negative states")
	}
}

func TestChainDistances(t *testing.T) {
	s := buildChain(t, 6)
	pol, err := s.SynthesizePolicy()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if got := pol.Distance(StateID(i)); got != i {
			t.Errorf("Distance(%d) = %d, want %d", i, got, i)
		}
	}
}

func TestChainKMaintainable(t *testing.T) {
	s := buildChain(t, 6)
	rep, _, err := s.CheckKMaintainable(5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Maintainable {
		t.Fatalf("chain should be 5-maintainable: %+v", rep)
	}
	if rep.WorstDistance != 5 {
		t.Fatalf("worst = %d, want 5", rep.WorstDistance)
	}
	rep, _, err = s.CheckKMaintainable(4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Maintainable {
		t.Fatal("chain must not be 4-maintainable")
	}
	if len(rep.Violations) != 1 || rep.Violations[0] != 5 {
		t.Fatalf("violations = %v, want [5]", rep.Violations)
	}
}

func TestUnmaintainableState(t *testing.T) {
	s, err := NewSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkNormal(0); err != nil {
		t.Fatal(err)
	}
	a := s.AddAction("fix")
	if err := s.AddTransition(1, a, 0); err != nil {
		t.Fatal(err)
	}
	// State 2 has no applicable action.
	rep, pol, err := s.CheckKMaintainable(10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Maintainable {
		t.Fatal("state 2 is stuck; system must not be maintainable")
	}
	if len(rep.UnmaintainableStates) != 1 || rep.UnmaintainableStates[0] != 2 {
		t.Fatalf("unmaintainable = %v", rep.UnmaintainableStates)
	}
	if pol.Distance(2) != Unreachable {
		t.Fatal("stuck state must have Unreachable distance")
	}
	if _, ok := pol.Action(2); ok {
		t.Fatal("no action should be prescribed in a stuck state")
	}
}

func TestNondeterministicWorstCase(t *testing.T) {
	// Action "risky" from state 2 goes to 0 (normal) or 3; action "safe"
	// goes to 1 which deterministically reaches 0. State 3 is stuck.
	// The optimal policy must prefer "safe" (guaranteed 2) over "risky"
	// (unbounded worst case).
	s, err := NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkNormal(0); err != nil {
		t.Fatal(err)
	}
	risky := s.AddAction("risky")
	safe := s.AddAction("safe")
	step := s.AddAction("step")
	if err := s.AddTransition(2, risky, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTransition(2, safe, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTransition(1, step, 0); err != nil {
		t.Fatal(err)
	}
	pol, err := s.SynthesizePolicy()
	if err != nil {
		t.Fatal(err)
	}
	a, ok := pol.Action(2)
	if !ok {
		t.Fatal("state 2 must have an action")
	}
	if a != safe {
		t.Fatalf("policy chose %q, want safe", s.ActionName(a))
	}
	if pol.Distance(2) != 2 {
		t.Fatalf("Distance(2) = %d, want 2", pol.Distance(2))
	}
}

func TestNondeterministicMaxOverOutcomes(t *testing.T) {
	// One action from 1 leads to {0, 2}; from 2 an action leads to 0.
	// Worst-case distance of 1 is 1 + max(0, 1) = 2.
	s, err := NewSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkNormal(0); err != nil {
		t.Fatal(err)
	}
	a := s.AddAction("act")
	if err := s.AddTransition(1, a, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTransition(2, a, 0); err != nil {
		t.Fatal(err)
	}
	pol, err := s.SynthesizePolicy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Distance(1) != 2 {
		t.Fatalf("Distance(1) = %d, want 2 (worst case over outcomes)", pol.Distance(1))
	}
}

func TestPolicyExecuteDeterministic(t *testing.T) {
	s := buildChain(t, 5)
	pol, err := s.SynthesizePolicy()
	if err != nil {
		t.Fatal(err)
	}
	traj, err := pol.Execute(4, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 5 || traj[len(traj)-1] != 0 {
		t.Fatalf("trajectory = %v", traj)
	}
}

func TestPolicyExecuteWorstCaseWithinBound(t *testing.T) {
	// Verify the synthesized distance is honoured under adversarial
	// outcome resolution.
	s, err := NewSystem(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkNormal(0); err != nil {
		t.Fatal(err)
	}
	a := s.AddAction("go")
	if err := s.AddTransition(4, a, 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTransition(3, a, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTransition(2, a, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTransition(1, a, 0); err != nil {
		t.Fatal(err)
	}
	pol, err := s.SynthesizePolicy()
	if err != nil {
		t.Fatal(err)
	}
	d := pol.Distance(4)
	traj, err := pol.Execute(4, d+1, pol.WorstCase)
	if err != nil {
		t.Fatalf("worst-case execution exceeded bound %d: %v (traj %v)", d, err, traj)
	}
	if len(traj)-1 > d {
		t.Fatalf("trajectory length %d exceeds guaranteed distance %d", len(traj)-1, d)
	}
}

func TestPolicyExecuteStuck(t *testing.T) {
	s, err := NewSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkNormal(0); err != nil {
		t.Fatal(err)
	}
	pol, err := s.SynthesizePolicy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pol.Execute(1, 5, nil); err == nil {
		t.Fatal("executing from a stuck state should error")
	}
	// From a normal state, Execute returns immediately.
	traj, err := pol.Execute(0, 5, nil)
	if err != nil || len(traj) != 1 {
		t.Fatalf("traj = %v err = %v", traj, err)
	}
}

func TestExogenousReachable(t *testing.T) {
	s, err := NewSystem(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddExogenous(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddExogenous(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AddExogenous(3, 4); err != nil {
		t.Fatal(err)
	}
	reach, err := s.ExogenousReachable(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reach) != 3 {
		t.Fatalf("reachable = %v, want {0,1,2}", reach)
	}
	if _, err := s.ExogenousReachable(99); !errors.Is(err, ErrUnknownState) {
		t.Fatal("want ErrUnknownState")
	}
}

func TestCheckOverExogenousEnvelopeOnly(t *testing.T) {
	// State 3 is unmaintainable but unreachable by exogenous events;
	// checking only the envelope must pass.
	s, err := NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkNormal(0); err != nil {
		t.Fatal(err)
	}
	fix := s.AddAction("fix")
	if err := s.AddTransition(1, fix, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTransition(2, fix, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddExogenous(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddExogenous(1, 2); err != nil {
		t.Fatal(err)
	}
	envelope, err := s.ExogenousReachable(0)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := s.CheckKMaintainable(2, envelope...)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Maintainable {
		t.Fatalf("envelope should be 2-maintainable: %+v", rep)
	}
	repAll, _, err := s.CheckKMaintainable(2)
	if err != nil {
		t.Fatal(err)
	}
	if repAll.Maintainable {
		t.Fatal("full-state check must fail because of state 3")
	}
}

func TestValidationErrors(t *testing.T) {
	s, err := NewSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkNormal(7); !errors.Is(err, ErrUnknownState) {
		t.Error("MarkNormal: want ErrUnknownState")
	}
	a := s.AddAction("a")
	if err := s.AddTransition(9, a, 0); !errors.Is(err, ErrUnknownState) {
		t.Error("AddTransition from: want ErrUnknownState")
	}
	if err := s.AddTransition(0, a, 9); !errors.Is(err, ErrUnknownState) {
		t.Error("AddTransition to: want ErrUnknownState")
	}
	if err := s.AddTransition(0, ActionID(5), 1); !errors.Is(err, ErrUnknownAction) {
		t.Error("want ErrUnknownAction")
	}
	if err := s.AddTransition(0, a); err == nil {
		t.Error("want error for no outcomes")
	}
	if err := s.AddExogenous(9, 0); !errors.Is(err, ErrUnknownState) {
		t.Error("AddExogenous: want ErrUnknownState")
	}
	if _, _, err := s.CheckKMaintainable(-1); err == nil {
		t.Error("want error for negative k")
	}
	if _, _, err := s.CheckKMaintainable(1, StateID(99)); !errors.Is(err, ErrUnknownState) {
		t.Error("CheckKMaintainable states: want ErrUnknownState")
	}
}

func TestNoActionsSystem(t *testing.T) {
	s, err := NewSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MarkNormal(0); err != nil {
		t.Fatal(err)
	}
	pol, err := s.SynthesizePolicy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Distance(0) != 0 || pol.Distance(1) != Unreachable {
		t.Fatalf("distances = %d, %d", pol.Distance(0), pol.Distance(1))
	}
}

func TestActionName(t *testing.T) {
	s, err := NewSystem(1)
	if err != nil {
		t.Fatal(err)
	}
	a := s.AddAction("reboot")
	if s.ActionName(a) != "reboot" {
		t.Fatal("ActionName mismatch")
	}
	if s.ActionName(ActionID(-1)) != "" || s.ActionName(ActionID(5)) != "" {
		t.Fatal("invalid IDs should return empty name")
	}
}

// TestRandomSystemPolicySound generates random systems and verifies that
// every finite policy distance is achievable: executing the policy with
// adversarial outcome choice reaches a normal state in at most
// Distance(s) steps.
func TestRandomSystemPolicySound(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(12)
		s, err := NewSystem(n)
		if err != nil {
			return false
		}
		if err := s.MarkNormal(0); err != nil {
			return false
		}
		nActions := 1 + r.Intn(3)
		acts := make([]ActionID, nActions)
		for i := range acts {
			acts[i] = s.AddAction("a")
		}
		// Random sparse transitions.
		for st := 1; st < n; st++ {
			for _, a := range acts {
				if !r.Bool(0.7) {
					continue
				}
				outs := make([]StateID, 1+r.Intn(2))
				for i := range outs {
					outs[i] = StateID(r.Intn(n))
				}
				if err := s.AddTransition(StateID(st), a, outs...); err != nil {
					return false
				}
			}
		}
		pol, err := s.SynthesizePolicy()
		if err != nil {
			return false
		}
		for st := 0; st < n; st++ {
			d := pol.Distance(StateID(st))
			if d == Unreachable {
				continue
			}
			traj, err := pol.Execute(StateID(st), d, pol.WorstCase)
			if err != nil {
				return false
			}
			if len(traj)-1 > d {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceOutOfRange(t *testing.T) {
	s := buildChain(t, 3)
	pol, err := s.SynthesizePolicy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Distance(StateID(-1)) != Unreachable || pol.Distance(StateID(10)) != Unreachable {
		t.Fatal("out-of-range distances must be Unreachable")
	}
}
