// Package maintain implements the K-maintainability notion the paper
// adopts from Baral and Eiter (§4.3): "a system is K-maintainable if, for
// any non-normal state of the system, there exists a sequence of actions
// (i.e., events controllable by a system administrator) that move the
// system back to one of the normal states within k steps."
//
// The model is a finite transition system with nondeterministic agent
// actions (an action may have several possible outcomes) and exogenous
// events (uncontrollable transitions that knock the system out of normal
// states). Policy synthesis follows Baral–Eiter's polynomial-time
// construction, realized here as value iteration on the AND–OR graph:
//
//	dist(s) = 0                                         if s is normal
//	dist(s) = min over actions a applicable in s of
//	          1 + max over outcomes s' of a in s of dist(s')
//
// A state is maintainable iff dist(s) is finite even under worst-case
// outcome resolution, and the system is K-maintainable over a state set
// iff max dist ≤ K. The computation is O(iterations × transitions) with
// at most |S| iterations — polynomial, as Baral–Eiter prove.
package maintain

import (
	"errors"
	"fmt"
	"math"
)

// Unreachable is the distance reported for states from which no policy can
// guarantee reaching a normal state.
const Unreachable = math.MaxInt

// StateID identifies a state; valid IDs are 0..NumStates-1.
type StateID int

// ActionID identifies an agent action.
type ActionID int

// ErrUnknownState is returned for out-of-range state IDs.
var ErrUnknownState = errors.New("maintain: unknown state")

// ErrUnknownAction is returned for out-of-range action IDs.
var ErrUnknownAction = errors.New("maintain: unknown action")

// System is a finite transition system under construction or analysis.
type System struct {
	numStates int
	normal    []bool
	actions   []string
	// trans[state][action] = possible outcome states (nondeterministic).
	trans []map[ActionID][]StateID
	// exo[state] = states reachable by one exogenous event.
	exo [][]StateID
}

// NewSystem creates a system with n states, none of them normal.
func NewSystem(n int) (*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("maintain: system needs at least one state, got %d", n)
	}
	s := &System{
		numStates: n,
		normal:    make([]bool, n),
		trans:     make([]map[ActionID][]StateID, n),
		exo:       make([][]StateID, n),
	}
	for i := range s.trans {
		s.trans[i] = map[ActionID][]StateID{}
	}
	return s, nil
}

// NumStates returns the number of states.
func (s *System) NumStates() int { return s.numStates }

// MarkNormal declares the given states normal.
func (s *System) MarkNormal(states ...StateID) error {
	for _, st := range states {
		if err := s.checkState(st); err != nil {
			return err
		}
		s.normal[st] = true
	}
	return nil
}

// IsNormal reports whether st is a normal state.
func (s *System) IsNormal(st StateID) bool {
	return st >= 0 && int(st) < s.numStates && s.normal[st]
}

// AddAction registers a named agent action and returns its ID.
func (s *System) AddAction(name string) ActionID {
	s.actions = append(s.actions, name)
	return ActionID(len(s.actions) - 1)
}

// ActionName returns the name of an action, or "" for invalid IDs.
func (s *System) ActionName(a ActionID) string {
	if a < 0 || int(a) >= len(s.actions) {
		return ""
	}
	return s.actions[a]
}

// AddTransition declares that executing action a in state from may lead to
// any of the given outcome states. Calling it again for the same (from, a)
// adds more possible outcomes.
func (s *System) AddTransition(from StateID, a ActionID, outcomes ...StateID) error {
	if err := s.checkState(from); err != nil {
		return err
	}
	if a < 0 || int(a) >= len(s.actions) {
		return ErrUnknownAction
	}
	if len(outcomes) == 0 {
		return errors.New("maintain: transition needs at least one outcome")
	}
	for _, o := range outcomes {
		if err := s.checkState(o); err != nil {
			return err
		}
	}
	s.trans[from][a] = append(s.trans[from][a], outcomes...)
	return nil
}

// AddExogenous declares an uncontrollable event from → to.
func (s *System) AddExogenous(from, to StateID) error {
	if err := s.checkState(from); err != nil {
		return err
	}
	if err := s.checkState(to); err != nil {
		return err
	}
	s.exo[from] = append(s.exo[from], to)
	return nil
}

func (s *System) checkState(st StateID) error {
	if st < 0 || int(st) >= s.numStates {
		return fmt.Errorf("%w: %d", ErrUnknownState, st)
	}
	return nil
}

// Policy is a synthesized control policy: for every maintainable
// non-normal state, the action to execute, plus the guaranteed worst-case
// distance to a normal state.
type Policy struct {
	sys      *System
	action   []ActionID // -1 = none (normal or unmaintainable)
	distance []int
}

// SynthesizePolicy runs the Baral–Eiter construction and returns the
// optimal (distance-minimizing) policy.
func (s *System) SynthesizePolicy() (*Policy, error) {
	if len(s.actions) == 0 {
		// A system with no agent actions still has a trivial policy; only
		// normal states are maintainable.
		p := &Policy{sys: s, action: make([]ActionID, s.numStates), distance: make([]int, s.numStates)}
		for i := range p.action {
			p.action[i] = -1
			if s.normal[i] {
				p.distance[i] = 0
			} else {
				p.distance[i] = Unreachable
			}
		}
		return p, nil
	}
	dist := make([]int, s.numStates)
	act := make([]ActionID, s.numStates)
	for i := range dist {
		act[i] = -1
		if s.normal[i] {
			dist[i] = 0
		} else {
			dist[i] = Unreachable
		}
	}
	// Value iteration: converges within numStates sweeps because optimal
	// distances are bounded by numStates.
	for iter := 0; iter < s.numStates; iter++ {
		changed := false
		for st := 0; st < s.numStates; st++ {
			if s.normal[st] {
				continue
			}
			bestDist, bestAct := dist[st], act[st]
			for a, outcomes := range s.trans[st] {
				worst := 0
				feasible := true
				for _, o := range outcomes {
					d := dist[o]
					if d == Unreachable {
						feasible = false
						break
					}
					if d > worst {
						worst = d
					}
				}
				if !feasible {
					continue
				}
				if cand := worst + 1; cand < bestDist {
					bestDist, bestAct = cand, a
				}
			}
			if bestDist < dist[st] {
				dist[st], act[st] = bestDist, bestAct
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return &Policy{sys: s, action: act, distance: dist}, nil
}

// Action returns the policy's action for st; ok is false for normal or
// unmaintainable states (where no action is prescribed).
func (p *Policy) Action(st StateID) (ActionID, bool) {
	if st < 0 || int(st) >= len(p.action) || p.action[st] < 0 {
		return 0, false
	}
	return p.action[st], true
}

// Distance returns the guaranteed worst-case number of agent steps from st
// to a normal state under the policy (0 for normal states, Unreachable for
// unmaintainable ones).
func (p *Policy) Distance(st StateID) int {
	if st < 0 || int(st) >= len(p.distance) {
		return Unreachable
	}
	return p.distance[st]
}

// MaintainabilityReport summarizes a K-maintainability check.
type MaintainabilityReport struct {
	// K is the bound checked.
	K int
	// Maintainable is true iff every checked state has distance ≤ K.
	Maintainable bool
	// WorstDistance is the maximum finite distance among checked states.
	WorstDistance int
	// UnmaintainableStates lists checked states with no guaranteed
	// recovery at all.
	UnmaintainableStates []StateID
	// Violations lists checked states whose distance exceeds K but is
	// finite.
	Violations []StateID
}

// CheckKMaintainable verifies K-maintainability over the given states (or
// over every state if none are given), per the paper's definition.
func (s *System) CheckKMaintainable(k int, states ...StateID) (MaintainabilityReport, *Policy, error) {
	if k < 0 {
		return MaintainabilityReport{}, nil, fmt.Errorf("maintain: negative k %d", k)
	}
	pol, err := s.SynthesizePolicy()
	if err != nil {
		return MaintainabilityReport{}, nil, err
	}
	if len(states) == 0 {
		states = make([]StateID, s.numStates)
		for i := range states {
			states[i] = StateID(i)
		}
	}
	rep := MaintainabilityReport{K: k, Maintainable: true}
	for _, st := range states {
		if err := s.checkState(st); err != nil {
			return MaintainabilityReport{}, nil, err
		}
		d := pol.Distance(st)
		switch {
		case d == Unreachable:
			rep.UnmaintainableStates = append(rep.UnmaintainableStates, st)
			rep.Maintainable = false
		case d > k:
			rep.Violations = append(rep.Violations, st)
			rep.Maintainable = false
			if d > rep.WorstDistance {
				rep.WorstDistance = d
			}
		default:
			if d > rep.WorstDistance {
				rep.WorstDistance = d
			}
		}
	}
	return rep, pol, nil
}

// ExogenousReachable returns all states reachable from the given start
// states through any number of exogenous events — the damage envelope the
// administrator must be able to recover from.
func (s *System) ExogenousReachable(start ...StateID) ([]StateID, error) {
	seen := make([]bool, s.numStates)
	var queue []StateID
	for _, st := range start {
		if err := s.checkState(st); err != nil {
			return nil, err
		}
		if !seen[st] {
			seen[st] = true
			queue = append(queue, st)
		}
	}
	for head := 0; head < len(queue); head++ {
		for _, to := range s.exo[queue[head]] {
			if !seen[to] {
				seen[to] = true
				queue = append(queue, to)
			}
		}
	}
	return queue, nil
}

// Execute runs the policy from st, resolving nondeterminism with choose
// (which picks an outcome index given the candidate outcomes). It returns
// the visited trajectory ending at the first normal state, or an error if
// the policy gets stuck or the step bound maxSteps is exceeded.
func (p *Policy) Execute(st StateID, maxSteps int, choose func(outcomes []StateID) int) ([]StateID, error) {
	if choose == nil {
		choose = func([]StateID) int { return 0 }
	}
	traj := []StateID{st}
	for step := 0; step < maxSteps; step++ {
		if p.sys.IsNormal(st) {
			return traj, nil
		}
		a, ok := p.Action(st)
		if !ok {
			return traj, fmt.Errorf("maintain: no action prescribed in state %d", st)
		}
		outcomes := p.sys.trans[st][a]
		if len(outcomes) == 0 {
			return traj, fmt.Errorf("maintain: action %q has no outcomes in state %d", p.sys.ActionName(a), st)
		}
		i := choose(outcomes)
		if i < 0 || i >= len(outcomes) {
			i = 0
		}
		st = outcomes[i]
		traj = append(traj, st)
	}
	if p.sys.IsNormal(st) {
		return traj, nil
	}
	return traj, fmt.Errorf("maintain: not normal after %d steps", maxSteps)
}

// WorstCase resolves nondeterminism adversarially: it always picks the
// outcome with the largest policy distance. Useful for verifying that the
// synthesized bound is tight.
func (p *Policy) WorstCase(outcomes []StateID) int {
	worst, worstD := 0, -1
	for i, o := range outcomes {
		if d := p.Distance(o); d > worstD {
			worst, worstD = i, d
		}
	}
	return worst
}
