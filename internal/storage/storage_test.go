package storage

import (
	"testing"

	"resilience/internal/rng"
)

func TestSchemeProperties(t *testing.T) {
	cases := []struct {
		scheme    Scheme
		tolerance int
		overhead  int // for 4 data disks
	}{
		{Striping, 0, 0},
		{Mirroring, 1, 4},
		{SingleParity, 1, 1},
		{DoubleParity, 2, 2},
	}
	for _, c := range cases {
		tol, err := c.scheme.Tolerance()
		if err != nil || tol != c.tolerance {
			t.Errorf("%s tolerance = %d err=%v, want %d", c.scheme, tol, err, c.tolerance)
		}
		over, err := c.scheme.Overhead(4)
		if err != nil || over != c.overhead {
			t.Errorf("%s overhead = %d err=%v, want %d", c.scheme, over, err, c.overhead)
		}
		if c.scheme.String() == "" {
			t.Errorf("scheme %d has no name", c.scheme)
		}
	}
	if _, err := Scheme(99).Tolerance(); err == nil {
		t.Error("want error for unknown scheme")
	}
	if _, err := Scheme(99).Overhead(4); err == nil {
		t.Error("want error for unknown scheme overhead")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme should still render")
	}
}

func TestArrayValidate(t *testing.T) {
	good := Array{DataDisks: 4, Scheme: SingleParity, FailProb: 0.001, RepairSteps: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Array{
		{DataDisks: 0, Scheme: SingleParity, FailProb: 0.01, RepairSteps: 1},
		{DataDisks: 4, Scheme: SingleParity, FailProb: -0.1, RepairSteps: 1},
		{DataDisks: 4, Scheme: SingleParity, FailProb: 1.1, RepairSteps: 1},
		{DataDisks: 4, Scheme: SingleParity, FailProb: 0.1, RepairSteps: 0},
		{DataDisks: 4, Scheme: Scheme(99), FailProb: 0.1, RepairSteps: 1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("array %d should be invalid", i)
		}
	}
}

func TestTotalDisks(t *testing.T) {
	a := Array{DataDisks: 6, Scheme: DoubleParity, FailProb: 0.01, RepairSteps: 5}
	total, err := a.TotalDisks()
	if err != nil || total != 8 {
		t.Fatalf("total = %d err=%v, want 8", total, err)
	}
}

func TestStripingLosesOnAnyFailure(t *testing.T) {
	r := rng.New(1)
	a := Array{DataDisks: 8, Scheme: Striping, FailProb: 0.01, RepairSteps: 10}
	res, err := a.SimulateMission(500, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	// P(no failure over 500 steps on 8 disks) ≈ (1-0.01)^(8*500) ≈ 0 —
	// essentially every mission loses data.
	if res.LossProb() < 0.99 {
		t.Fatalf("striping loss prob = %v, want ~1", res.LossProb())
	}
	if res.MeanTimeToLoss <= 0 {
		t.Fatalf("mean time to loss = %v", res.MeanTimeToLoss)
	}
}

func TestRedundancyOrdering(t *testing.T) {
	// §3.1.2: more redundancy, fewer losses. With identical disk counts
	// of data, loss probability must be ordered
	// striping > single parity > double parity.
	r := rng.New(2)
	results, err := CompareSchemes(8, 0.002, 5, 500, 600, r)
	if err != nil {
		t.Fatal(err)
	}
	strip := results[Striping].LossProb()
	single := results[SingleParity].LossProb()
	double := results[DoubleParity].LossProb()
	if !(strip > single && single > double) {
		t.Fatalf("ordering violated: striping %v, single %v, double %v", strip, single, double)
	}
	if strip < 0.9 {
		t.Fatalf("striping loss = %v, want near certain at these rates", strip)
	}
}

func TestZeroFailProbNeverLoses(t *testing.T) {
	r := rng.New(3)
	a := Array{DataDisks: 4, Scheme: Striping, FailProb: 0, RepairSteps: 5}
	res, err := a.SimulateMission(1000, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses != 0 {
		t.Fatalf("losses = %d with zero failure probability", res.Losses)
	}
	if res.LossProb() != 0 || res.MeanTimeToLoss != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestFasterRepairImprovesDurability(t *testing.T) {
	r := rng.New(4)
	slow := Array{DataDisks: 6, Scheme: SingleParity, FailProb: 0.005, RepairSteps: 40}
	fast := Array{DataDisks: 6, Scheme: SingleParity, FailProb: 0.005, RepairSteps: 2}
	resSlow, err := slow.SimulateMission(300, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	resFast, err := fast.SimulateMission(300, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	if resFast.LossProb() >= resSlow.LossProb() {
		t.Fatalf("fast repair loss %v should be below slow repair %v",
			resFast.LossProb(), resSlow.LossProb())
	}
}

func TestSimulateMissionValidation(t *testing.T) {
	r := rng.New(5)
	a := Array{DataDisks: 4, Scheme: SingleParity, FailProb: 0.01, RepairSteps: 5}
	if _, err := a.SimulateMission(0, 10, r); err == nil {
		t.Error("want error for zero steps")
	}
	if _, err := a.SimulateMission(10, 0, r); err == nil {
		t.Error("want error for zero trials")
	}
	bad := Array{DataDisks: 0, Scheme: SingleParity, FailProb: 0.01, RepairSteps: 5}
	if _, err := bad.SimulateMission(10, 10, r); err == nil {
		t.Error("want validation error")
	}
}

func TestLossProbEmpty(t *testing.T) {
	if (MissionResult{}).LossProb() != 0 {
		t.Fatal("empty result loss prob should be 0")
	}
}
