// Package storage models redundant disk arrays — the engineering
// redundancy example of §3.1.2: "mission-critical storage systems use
// RAID (Redundant Arrays of Inexpensive Disks) so that the system can
// continue to function even though one or more disks fail."
//
// An Array is a group of disks with independent per-step failure
// probability and a repair time. Data is lost when the number of
// simultaneously failed disks exceeds the scheme's fault tolerance.
// Monte-Carlo simulation estimates the probability of data loss over a
// mission, for the classic schemes (striping, mirroring, single parity,
// double parity).
package storage

import (
	"errors"
	"fmt"

	"resilience/internal/rng"
)

// Scheme is a redundancy layout.
type Scheme int

// Redundancy schemes.
const (
	// Striping (RAID 0): no redundancy — any failure loses data.
	Striping Scheme = iota + 1
	// Mirroring (RAID 1): tolerance 1 within a mirror pair.
	Mirroring
	// SingleParity (RAID 5): tolerance 1 across the group.
	SingleParity
	// DoubleParity (RAID 6): tolerance 2 across the group.
	DoubleParity
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case Striping:
		return "striping"
	case Mirroring:
		return "mirroring"
	case SingleParity:
		return "single-parity"
	case DoubleParity:
		return "double-parity"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Tolerance returns how many simultaneous failures the scheme survives.
func (s Scheme) Tolerance() (int, error) {
	switch s {
	case Striping:
		return 0, nil
	case Mirroring, SingleParity:
		return 1, nil
	case DoubleParity:
		return 2, nil
	default:
		return 0, fmt.Errorf("storage: unknown scheme %d", s)
	}
}

// Overhead returns the extra disks the scheme needs for dataDisks of
// data.
func (s Scheme) Overhead(dataDisks int) (int, error) {
	switch s {
	case Striping:
		return 0, nil
	case Mirroring:
		return dataDisks, nil
	case SingleParity:
		return 1, nil
	case DoubleParity:
		return 2, nil
	default:
		return 0, fmt.Errorf("storage: unknown scheme %d", s)
	}
}

// Array is a disk group under a redundancy scheme.
type Array struct {
	// DataDisks is the number of data-bearing disks.
	DataDisks int
	// Scheme is the redundancy layout.
	Scheme Scheme
	// FailProb is each disk's independent per-step failure probability.
	FailProb float64
	// RepairSteps is how many steps a failed disk takes to rebuild.
	RepairSteps int
}

// Validate checks the array parameters.
func (a Array) Validate() error {
	if a.DataDisks <= 0 {
		return errors.New("storage: need at least one data disk")
	}
	if a.FailProb < 0 || a.FailProb > 1 {
		return fmt.Errorf("storage: failure probability %v out of [0,1]", a.FailProb)
	}
	if a.RepairSteps < 1 {
		return errors.New("storage: repair must take at least one step")
	}
	if _, err := a.Scheme.Tolerance(); err != nil {
		return err
	}
	return nil
}

// TotalDisks returns data plus redundancy disks.
func (a Array) TotalDisks() (int, error) {
	over, err := a.Scheme.Overhead(a.DataDisks)
	if err != nil {
		return 0, err
	}
	return a.DataDisks + over, nil
}

// MissionResult summarizes a durability simulation.
type MissionResult struct {
	// Trials is the number of simulated missions.
	Trials int
	// Losses is how many missions lost data.
	Losses int
	// MeanTimeToLoss is the mean step of data loss among lost missions
	// (NaN-free: 0 when no losses).
	MeanTimeToLoss float64
}

// LossProb returns Losses/Trials.
func (m MissionResult) LossProb() float64 {
	if m.Trials == 0 {
		return 0
	}
	return float64(m.Losses) / float64(m.Trials)
}

// SimulateMission runs `trials` missions of `steps` steps each and counts
// missions where simultaneous failures exceeded the scheme's tolerance.
func (a Array) SimulateMission(steps, trials int, r *rng.Source) (MissionResult, error) {
	if err := a.Validate(); err != nil {
		return MissionResult{}, err
	}
	if steps <= 0 || trials <= 0 {
		return MissionResult{}, fmt.Errorf("storage: steps %d and trials %d must be positive", steps, trials)
	}
	total, err := a.TotalDisks()
	if err != nil {
		return MissionResult{}, err
	}
	tol, err := a.Scheme.Tolerance()
	if err != nil {
		return MissionResult{}, err
	}
	res := MissionResult{Trials: trials}
	var lossTimeSum float64
	repairLeft := make([]int, total)
	for trial := 0; trial < trials; trial++ {
		for i := range repairLeft {
			repairLeft[i] = 0
		}
		for t := 1; t <= steps; t++ {
			down := 0
			for i := range repairLeft {
				if repairLeft[i] > 0 {
					repairLeft[i]--
					if repairLeft[i] > 0 {
						down++
					}
					continue
				}
				if r.Bool(a.FailProb) {
					repairLeft[i] = a.RepairSteps
					down++
				}
			}
			if down > tol {
				res.Losses++
				lossTimeSum += float64(t)
				break
			}
		}
	}
	if res.Losses > 0 {
		res.MeanTimeToLoss = lossTimeSum / float64(res.Losses)
	}
	return res, nil
}

// CompareSchemes simulates the same workload under each scheme and
// returns loss probabilities keyed by scheme.
func CompareSchemes(dataDisks int, failProb float64, repairSteps, steps, trials int, r *rng.Source) (map[Scheme]MissionResult, error) {
	out := make(map[Scheme]MissionResult, 4)
	for _, s := range []Scheme{Striping, Mirroring, SingleParity, DoubleParity} {
		a := Array{DataDisks: dataDisks, Scheme: s, FailProb: failProb, RepairSteps: repairSteps}
		res, err := a.SimulateMission(steps, trials, r)
		if err != nil {
			return nil, fmt.Errorf("scheme %s: %w", s, err)
		}
		out[s] = res
	}
	return out, nil
}
