// Package xevent implements the extreme-event statistics of §3.4.6: "common
// statistics based on Gaussian distribution, mean values, and standard
// deviations etc. do not work for extreme events … Many extreme events,
// such as earthquakes, are known to follow a power-law distribution, and
// depending on the parameter, a power-law distribution may not have a
// finite average value or a finite standard deviation. This means that we
// can not rely on insurance because insurance is based on the estimated
// average loss of multiple incidents."
//
// The package provides shock ensembles (Gaussian vs Pareto), sample-mean
// stability diagnostics, an insurance ruin model, and the sea-wall
// decision problem (how high to build against power-law flood heights).
package xevent

import (
	"errors"
	"fmt"
	"math"

	"resilience/internal/rng"
)

// ShockDist generates shock magnitudes.
type ShockDist interface {
	// Sample draws one shock magnitude (non-negative).
	Sample(r *rng.Source) float64
	// String names the distribution.
	String() string
}

// Gaussian is a truncated-at-zero normal shock distribution — the "thin
// tailed" world where averages work.
type Gaussian struct {
	Mean, StdDev float64
}

var _ ShockDist = Gaussian{}

// Sample implements ShockDist.
func (g Gaussian) Sample(r *rng.Source) float64 {
	v := r.Norm(g.Mean, g.StdDev)
	if v < 0 {
		return 0
	}
	return v
}

// String implements ShockDist.
func (g Gaussian) String() string { return fmt.Sprintf("gaussian(%v,%v)", g.Mean, g.StdDev) }

// Pareto is a power-law shock distribution; Alpha <= 1 has infinite mean,
// Alpha <= 2 infinite variance.
type Pareto struct {
	Scale, Alpha float64
}

var _ ShockDist = Pareto{}

// Sample implements ShockDist.
func (p Pareto) Sample(r *rng.Source) float64 { return r.Pareto(p.Scale, p.Alpha) }

// String implements ShockDist.
func (p Pareto) String() string { return fmt.Sprintf("pareto(%v,%v)", p.Scale, p.Alpha) }

// MeanStability diagnoses whether the sample mean of a shock ensemble is
// trustworthy: it draws n samples and reports the largest single-sample
// share of the total (for heavy tails one event dominates) and the
// relative drift of the running mean over the last half of the sample.
type MeanStability struct {
	N             int
	Mean          float64
	MaxShare      float64
	HalfMeanDrift float64
	LargestSample float64
}

// AssessMeanStability draws n samples and computes the diagnostics.
func AssessMeanStability(d ShockDist, n int, r *rng.Source) (MeanStability, error) {
	if d == nil {
		return MeanStability{}, errors.New("xevent: nil distribution")
	}
	if n < 10 {
		return MeanStability{}, fmt.Errorf("xevent: need at least 10 samples, got %d", n)
	}
	var total, largest float64
	var halfMean float64
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		total += v
		if v > largest {
			largest = v
		}
		if i == n/2-1 {
			halfMean = total / float64(n/2)
		}
	}
	mean := total / float64(n)
	out := MeanStability{N: n, Mean: mean, LargestSample: largest}
	if total > 0 {
		out.MaxShare = largest / total
	}
	if halfMean > 0 {
		out.HalfMeanDrift = math.Abs(mean-halfMean) / halfMean
	}
	return out, nil
}

// Insurer models the paper's insurance argument: capital collects a
// premium per period and pays the period's losses; ruin occurs when
// capital goes negative.
type Insurer struct {
	// Capital is the starting reserve.
	Capital float64
	// Premium is the income per period.
	Premium float64
	// LossesPerPeriod is the expected number of claims per period
	// (Poisson).
	LossesPerPeriod float64
}

// Validate checks the insurer parameters.
func (ins Insurer) Validate() error {
	if ins.Capital <= 0 || ins.Premium < 0 || ins.LossesPerPeriod < 0 {
		return fmt.Errorf("xevent: invalid insurer %+v", ins)
	}
	return nil
}

// RuinProbability simulates `trials` runs of `periods` periods with claim
// sizes from the distribution and returns the fraction that went broke.
func (ins Insurer) RuinProbability(d ShockDist, periods, trials int, r *rng.Source) (float64, error) {
	if err := ins.Validate(); err != nil {
		return 0, err
	}
	if d == nil {
		return 0, errors.New("xevent: nil distribution")
	}
	if periods <= 0 || trials <= 0 {
		return 0, fmt.Errorf("xevent: periods %d and trials %d must be positive", periods, trials)
	}
	ruined := 0
	for trial := 0; trial < trials; trial++ {
		capital := ins.Capital
		for t := 0; t < periods; t++ {
			capital += ins.Premium
			claims := r.Poisson(ins.LossesPerPeriod)
			for c := 0; c < claims; c++ {
				capital -= d.Sample(r)
			}
			if capital < 0 {
				ruined++
				break
			}
		}
	}
	return float64(ruined) / float64(trials), nil
}

// WallProblem is the sea-wall decision of §3.4.6: flood heights follow a
// power law (the 2011 tsunami was 14 m against a 5.7 m design; the Meiji
// Sanriku tsunami reached 40 m); walls cost money per meter; each
// overtopping event costs a fixed catastrophic damage.
type WallProblem struct {
	// Floods is the flood-height distribution (meters).
	Floods Pareto
	// EventsPerYear is the expected number of significant floods per
	// year (Poisson).
	EventsPerYear float64
	// CostPerMeter is the construction cost of one meter of wall.
	CostPerMeter float64
	// DamagePerOvertop is the loss when a flood exceeds the wall.
	DamagePerOvertop float64
	// Years is the planning horizon.
	Years int
}

// Validate checks the problem parameters.
func (w WallProblem) Validate() error {
	if w.Floods.Scale <= 0 || w.Floods.Alpha <= 0 {
		return errors.New("xevent: flood distribution needs positive scale and alpha")
	}
	if w.EventsPerYear < 0 || w.CostPerMeter < 0 || w.DamagePerOvertop < 0 || w.Years <= 0 {
		return fmt.Errorf("xevent: invalid wall problem %+v", w)
	}
	return nil
}

// OvertopProbability returns P(flood height > h) for one flood event.
func (w WallProblem) OvertopProbability(h float64) float64 {
	if h <= w.Floods.Scale {
		return 1
	}
	return math.Pow(w.Floods.Scale/h, w.Floods.Alpha)
}

// ExpectedCost returns the analytic expected total cost of a wall of
// height h over the horizon: construction plus expected overtopping
// damage.
func (w WallProblem) ExpectedCost(h float64) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if h < 0 {
		return 0, fmt.Errorf("xevent: negative wall height %v", h)
	}
	expectedOvertops := w.EventsPerYear * float64(w.Years) * w.OvertopProbability(h)
	return w.CostPerMeter*h + w.DamagePerOvertop*expectedOvertops, nil
}

// Optimize evaluates the candidate heights and returns the cheapest, its
// cost, and all candidate costs in input order.
func (w WallProblem) Optimize(heights []float64) (best float64, bestCost float64, costs []float64, err error) {
	if len(heights) == 0 {
		return 0, 0, nil, errors.New("xevent: no candidate heights")
	}
	costs = make([]float64, len(heights))
	bestCost = math.Inf(1)
	for i, h := range heights {
		c, cerr := w.ExpectedCost(h)
		if cerr != nil {
			return 0, 0, nil, cerr
		}
		costs[i] = c
		if c < bestCost {
			best, bestCost = h, c
		}
	}
	return best, bestCost, costs, nil
}

// SimulateDamage Monte-Carlo checks the analytic expectation: it returns
// the mean total cost of a wall of height h over `trials` horizons.
func (w WallProblem) SimulateDamage(h float64, trials int, r *rng.Source) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if h < 0 || trials <= 0 {
		return 0, fmt.Errorf("xevent: invalid h=%v trials=%d", h, trials)
	}
	var total float64
	for trial := 0; trial < trials; trial++ {
		cost := w.CostPerMeter * h
		for y := 0; y < w.Years; y++ {
			events := r.Poisson(w.EventsPerYear)
			for e := 0; e < events; e++ {
				if w.Floods.Sample(r) > h {
					cost += w.DamagePerOvertop
				}
			}
		}
		total += cost
	}
	return total / float64(trials), nil
}
