package xevent

import (
	"math"
	"testing"

	"resilience/internal/rng"
)

func TestShockDistStrings(t *testing.T) {
	if (Gaussian{Mean: 1, StdDev: 2}).String() == "" || (Pareto{Scale: 1, Alpha: 2}).String() == "" {
		t.Fatal("distributions must name themselves")
	}
}

func TestGaussianTruncation(t *testing.T) {
	r := rng.New(1)
	g := Gaussian{Mean: 0.5, StdDev: 2}
	for i := 0; i < 10000; i++ {
		if g.Sample(r) < 0 {
			t.Fatal("gaussian shock went negative")
		}
	}
}

func TestAssessMeanStabilityValidation(t *testing.T) {
	r := rng.New(2)
	if _, err := AssessMeanStability(nil, 100, r); err == nil {
		t.Error("want error for nil distribution")
	}
	if _, err := AssessMeanStability(Gaussian{Mean: 1, StdDev: 1}, 5, r); err == nil {
		t.Error("want error for tiny n")
	}
}

func TestGaussianMeansStable(t *testing.T) {
	r := rng.New(3)
	ms, err := AssessMeanStability(Gaussian{Mean: 10, StdDev: 2}, 100000, r)
	if err != nil {
		t.Fatal(err)
	}
	if ms.MaxShare > 0.01 {
		t.Fatalf("gaussian max share = %v, want tiny", ms.MaxShare)
	}
	if ms.HalfMeanDrift > 0.02 {
		t.Fatalf("gaussian mean drift = %v, want tiny", ms.HalfMeanDrift)
	}
	if math.Abs(ms.Mean-10) > 0.1 {
		t.Fatalf("mean = %v", ms.Mean)
	}
}

func TestParetoHeavyTailUnstable(t *testing.T) {
	// §3.4.6: for alpha near 1 the mean is dominated by single events.
	// Compare the heavy tail against the Gaussian on the same metric and
	// require an order-of-magnitude difference.
	r := rng.New(4)
	heavy, err := AssessMeanStability(Pareto{Scale: 1, Alpha: 1.1}, 100000, r)
	if err != nil {
		t.Fatal(err)
	}
	light, err := AssessMeanStability(Gaussian{Mean: 10, StdDev: 2}, 100000, r)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.MaxShare < 50*light.MaxShare {
		t.Fatalf("heavy-tail max share %v should dwarf gaussian %v", heavy.MaxShare, light.MaxShare)
	}
	if heavy.LargestSample < 1000 {
		t.Fatalf("largest pareto(1.1) sample = %v over 1e5 draws, suspiciously small", heavy.LargestSample)
	}
}

func TestInsurerValidate(t *testing.T) {
	if err := (Insurer{Capital: 100, Premium: 1, LossesPerPeriod: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Insurer{
		{Capital: 0, Premium: 1, LossesPerPeriod: 1},
		{Capital: 10, Premium: -1, LossesPerPeriod: 1},
		{Capital: 10, Premium: 1, LossesPerPeriod: -1},
	}
	for i, ins := range bad {
		if err := ins.Validate(); err == nil {
			t.Errorf("insurer %d should be invalid", i)
		}
	}
}

func TestInsuranceWorksForThinTails(t *testing.T) {
	// Premium priced 30% above expected Gaussian losses: the insurer
	// should essentially never go broke.
	r := rng.New(5)
	ins := Insurer{Capital: 200, Premium: 13, LossesPerPeriod: 1}
	ruin, err := ins.RuinProbability(Gaussian{Mean: 10, StdDev: 3}, 500, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	if ruin > 0.02 {
		t.Fatalf("gaussian ruin = %v, want ~0", ruin)
	}
}

func TestInsuranceFailsForHeavyTails(t *testing.T) {
	// Same premium margin against Pareto(alpha=1.1) claims whose
	// empirical "mean" looks similar early on: ruin becomes common —
	// "we can not rely on insurance".
	r := rng.New(6)
	// Pareto(1, 1.1) has mean 11 — same nominal expected claim as the
	// Gaussian case above — but infinite variance.
	ins := Insurer{Capital: 200, Premium: 13, LossesPerPeriod: 1}
	ruin, err := ins.RuinProbability(Pareto{Scale: 1, Alpha: 1.1}, 500, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	if ruin < 0.1 {
		t.Fatalf("heavy-tail ruin = %v, want substantial (thin-tail case is ~0)", ruin)
	}
}

func TestRuinProbabilityValidation(t *testing.T) {
	r := rng.New(7)
	ins := Insurer{Capital: 10, Premium: 1, LossesPerPeriod: 1}
	if _, err := ins.RuinProbability(nil, 10, 10, r); err == nil {
		t.Error("want error for nil distribution")
	}
	if _, err := ins.RuinProbability(Gaussian{Mean: 1, StdDev: 1}, 0, 10, r); err == nil {
		t.Error("want error for zero periods")
	}
	if _, err := (Insurer{}).RuinProbability(Gaussian{Mean: 1, StdDev: 1}, 10, 10, r); err == nil {
		t.Error("want validation error")
	}
}

func defaultWall() WallProblem {
	return WallProblem{
		Floods:           Pareto{Scale: 1, Alpha: 1.8},
		EventsPerYear:    0.5,
		CostPerMeter:     10,
		DamagePerOvertop: 500,
		Years:            100,
	}
}

func TestWallValidate(t *testing.T) {
	if err := defaultWall().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := defaultWall()
	bad.Floods.Alpha = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero alpha")
	}
	bad2 := defaultWall()
	bad2.Years = 0
	if err := bad2.Validate(); err == nil {
		t.Error("want error for zero years")
	}
}

func TestOvertopProbability(t *testing.T) {
	w := defaultWall()
	if p := w.OvertopProbability(0.5); p != 1 {
		t.Fatalf("below scale p = %v, want 1", p)
	}
	p2 := w.OvertopProbability(2)
	want := math.Pow(0.5, 1.8)
	if math.Abs(p2-want) > 1e-12 {
		t.Fatalf("p(2) = %v, want %v", p2, want)
	}
	if w.OvertopProbability(40) >= w.OvertopProbability(15) {
		t.Fatal("overtop probability must decrease with height")
	}
}

func TestExpectedCostShape(t *testing.T) {
	// Very low walls pay in damage; very high walls pay in concrete.
	// The optimum is interior and far below the 40 m historical maximum
	// — the paper's point that "it is not practical to build such a
	// high sea wall".
	w := defaultWall()
	heights := []float64{0.5, 2, 5.7, 10, 15, 25, 40}
	best, bestCost, costs, err := w.Optimize(heights)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != len(heights) {
		t.Fatalf("costs = %d", len(costs))
	}
	if best <= 0.5 {
		t.Fatalf("optimal wall %v: zero protection should not win", best)
	}
	if best >= 40 {
		t.Fatalf("optimal wall %v: historical-max wall should not win", best)
	}
	cost40, err := w.ExpectedCost(40)
	if err != nil {
		t.Fatal(err)
	}
	if bestCost >= cost40 {
		t.Fatalf("best cost %v should beat the 40m wall %v", bestCost, cost40)
	}
}

func TestOptimizeValidation(t *testing.T) {
	w := defaultWall()
	if _, _, _, err := w.Optimize(nil); err == nil {
		t.Error("want error for no candidates")
	}
	if _, _, _, err := w.Optimize([]float64{-1}); err == nil {
		t.Error("want error for negative height")
	}
	if _, err := w.ExpectedCost(-5); err == nil {
		t.Error("want error for negative height")
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	r := rng.New(8)
	w := defaultWall()
	for _, h := range []float64{2, 5.7, 15} {
		analytic, err := w.ExpectedCost(h)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := w.SimulateDamage(h, 4000, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc-analytic)/analytic > 0.1 {
			t.Fatalf("h=%v: MC %v vs analytic %v", h, mc, analytic)
		}
	}
	if _, err := w.SimulateDamage(5, 0, r); err == nil {
		t.Error("want error for zero trials")
	}
}
