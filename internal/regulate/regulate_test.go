package regulate

import (
	"testing"

	"resilience/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(*Config){
		"entities": func(c *Config) { c.Entities = 0 },
		"drift":    func(c *Config) { c.DriftRate = -1 },
		"noise":    func(c *Config) { c.ObservationNoise = -1 },
		"gain0":    func(c *Config) { c.AdaptGain = 0 },
		"gain2":    func(c *Config) { c.AdaptGain = 2 },
		"defect":   func(c *Config) { c.DefectorFraction = 1.5 },
		"lag":      func(c *Config) { c.LegislativeLag = 0 },
		"band":     func(c *Config) { c.ComplianceBand = -0.1 },
	}
	for name, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: want validation error", name)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := Simulate(Statute, DefaultConfig(), 0, r); err == nil {
		t.Error("want error for zero steps")
	}
	if _, err := Simulate(Regime(9), DefaultConfig(), 10, r); err == nil {
		t.Error("want error for unknown regime")
	}
	bad := DefaultConfig()
	bad.Entities = 0
	if _, err := Simulate(Statute, bad, 10, r); err == nil {
		t.Error("want config error")
	}
}

func TestRegimeStrings(t *testing.T) {
	if Statute.String() != "statute" || SelfRegulation.String() != "self-regulation" ||
		CoRegulation.String() != "co-regulation" {
		t.Fatal("regime names")
	}
	if Regime(42).String() == "" {
		t.Fatal("unknown regime should render")
	}
}

func TestStatuteHarmGrowsWithLag(t *testing.T) {
	// Longer legislative lag means the rule drifts further from reality
	// between revisions.
	cfg := DefaultConfig()
	cfg.DefectorFraction = 0
	run := func(lag int, seed uint64) float64 {
		c := cfg
		c.LegislativeLag = lag
		res, err := Simulate(Statute, c, 1000, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanHarm
	}
	fast := run(5, 1)
	slow := run(200, 1)
	if slow <= fast {
		t.Fatalf("slow-lag harm %v should exceed fast-lag %v", slow, fast)
	}
}

func TestSelfRegulationTracksButTailsOut(t *testing.T) {
	cfg := DefaultConfig()
	r := rng.New(2)
	res, err := Simulate(SelfRegulation, cfg, 1000, r)
	if err != nil {
		t.Fatal(err)
	}
	// Compliant entities track closely: mean harm small-ish. But the
	// defectors generate a fat tail: max harm near the full range.
	if res.MeanHarm > 0.2 {
		t.Fatalf("self-regulation mean harm = %v", res.MeanHarm)
	}
	if res.MaxHarm < 0.5 {
		t.Fatalf("self-regulation max harm = %v, want a defector tail", res.MaxHarm)
	}
	if res.Revisions != 0 {
		t.Fatalf("self-regulation performed %d statute revisions", res.Revisions)
	}
}

func TestCoRegulationDominates(t *testing.T) {
	// Ikegai's claim: co-regulation is both faster than statute (lower
	// mean harm) and bounds the defector tail that pure self-regulation
	// leaves open.
	results, err := Compare(DefaultConfig(), 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	statute := results[Statute]
	selfReg := results[SelfRegulation]
	coReg := results[CoRegulation]
	if coReg.MeanHarm >= statute.MeanHarm {
		t.Fatalf("co-regulation mean %v should beat statute %v", coReg.MeanHarm, statute.MeanHarm)
	}
	if coReg.MaxHarm >= selfReg.MaxHarm {
		t.Fatalf("co-regulation max %v should beat self-regulation %v", coReg.MaxHarm, selfReg.MaxHarm)
	}
}

func TestStatuteUniformCompliance(t *testing.T) {
	// Under statute, revisions happen on schedule and harm is identical
	// across entities at any step (everyone holds the same behavior), so
	// p95 ≈ max over per-step values is driven by time, not entities.
	cfg := DefaultConfig()
	res, err := Simulate(Statute, cfg, 500, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Revisions fire at t = 0, lag, 2·lag, … < steps.
	wantRevisions := (500 + cfg.LegislativeLag - 1) / cfg.LegislativeLag
	if res.Revisions != wantRevisions {
		t.Fatalf("revisions = %d, want %d", res.Revisions, wantRevisions)
	}
}

func TestReflect01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.5, 0.5}, {-0.2, 0.2}, {1.3, 0.7}, {0, 0}, {1, 1},
	}
	for _, c := range cases {
		if got := reflect01(c.in); got != c.want {
			t.Errorf("reflect01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 0, 1) != 1 || clamp(-5, 0, 1) != 0 || clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp")
	}
}

func TestCompareDeterministic(t *testing.T) {
	a, err := Compare(DefaultConfig(), 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(DefaultConfig(), 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	for regime := range a {
		if a[regime] != b[regime] {
			t.Fatalf("regime %s not deterministic", regime)
		}
	}
}
