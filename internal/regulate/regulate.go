// Package regulate models the regulatory-adaptability comparison of
// §3.3.3: "A legal system is usually very rigid. Laws take a long time to
// be discussed … However, there are other regulatory approaches … One
// approach is self-regulation by the stakeholders, or co-regulation
// combining top-down guidances (sometimes called 'nudging') and bottom-up
// self-regulations. Ikegai argues that co-regulation is more flexible and
// faster to adapt to the environment change."
//
// The model: N regulated entities each hold a behavior b ∈ [0,1]; the
// environment defines a drifting ideal behavior τ(t) (the moving threat
// landscape of Internet services). Harm of an entity is |b − τ|. Three
// regimes:
//
//   - Statute: one rule, revised only every LegislativeLag steps (set to
//     τ at revision); everyone complies exactly. Slow but uniform.
//   - SelfRegulation: each entity adapts toward its own noisy reading of
//     τ every step — except a defector fraction that ignores τ entirely.
//     Fast on average, unbounded at the tail.
//   - CoRegulation: the statute still anchors (revised with the same
//     lag), entities self-adapt every step, and compliance is enforced
//     only as a band around the statute — defectors are clamped into the
//     band. Fast AND tail-bounded.
package regulate

import (
	"errors"
	"fmt"
	"math"

	"resilience/internal/rng"
	"resilience/internal/stats"
)

// Regime selects the regulatory mechanism.
type Regime int

// Regulatory regimes.
const (
	Statute Regime = iota + 1
	SelfRegulation
	CoRegulation
)

// String returns the regime name.
func (r Regime) String() string {
	switch r {
	case Statute:
		return "statute"
	case SelfRegulation:
		return "self-regulation"
	case CoRegulation:
		return "co-regulation"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// Config parameterizes the simulation.
type Config struct {
	// Entities is the number of regulated actors.
	Entities int
	// DriftRate is the per-step standard deviation of the ideal
	// behavior's reflected random walk in [0,1].
	DriftRate float64
	// ObservationNoise is the standard deviation of each entity's
	// per-step reading of the ideal.
	ObservationNoise float64
	// AdaptGain in (0,1] is how far an entity moves toward its reading
	// per step.
	AdaptGain float64
	// DefectorFraction of entities ignore the ideal entirely and keep a
	// fixed self-serving behavior.
	DefectorFraction float64
	// LegislativeLag is the number of steps between statute revisions.
	LegislativeLag int
	// ComplianceBand is the enforced half-width around the statute in
	// co-regulation.
	ComplianceBand float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Entities < 1:
		return errors.New("regulate: need at least one entity")
	case c.DriftRate < 0 || c.ObservationNoise < 0:
		return errors.New("regulate: negative noise parameters")
	case c.AdaptGain <= 0 || c.AdaptGain > 1:
		return fmt.Errorf("regulate: adapt gain %v out of (0,1]", c.AdaptGain)
	case c.DefectorFraction < 0 || c.DefectorFraction > 1:
		return fmt.Errorf("regulate: defector fraction %v out of [0,1]", c.DefectorFraction)
	case c.LegislativeLag < 1:
		return errors.New("regulate: legislative lag must be >= 1")
	case c.ComplianceBand < 0:
		return errors.New("regulate: negative compliance band")
	}
	return nil
}

// DefaultConfig returns the baseline used by experiment E30.
func DefaultConfig() Config {
	return Config{
		Entities:         200,
		DriftRate:        0.02,
		ObservationNoise: 0.05,
		AdaptGain:        0.5,
		DefectorFraction: 0.1,
		LegislativeLag:   50,
		ComplianceBand:   0.15,
	}
}

// Result summarizes a regime's harm distribution over a run: per-step,
// per-entity misalignment |b − τ|.
type Result struct {
	Regime   Regime
	MeanHarm float64
	P95Harm  float64
	MaxHarm  float64
	// Revisions counts statute updates performed.
	Revisions int
}

// Simulate runs one regime for the given steps.
func Simulate(regime Regime, cfg Config, steps int, r *rng.Source) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if steps < 1 {
		return Result{}, fmt.Errorf("regulate: steps %d must be >= 1", steps)
	}
	switch regime {
	case Statute, SelfRegulation, CoRegulation:
	default:
		return Result{}, fmt.Errorf("regulate: unknown regime %d", regime)
	}
	ideal := 0.5
	statute := ideal
	behaviors := make([]float64, cfg.Entities)
	defector := make([]bool, cfg.Entities)
	for i := range behaviors {
		behaviors[i] = ideal
		if r.Float64() < cfg.DefectorFraction {
			defector[i] = true
			behaviors[i] = r.Float64() // fixed self-serving behavior
		}
	}
	res := Result{Regime: regime}
	harms := make([]float64, 0, steps*cfg.Entities)
	for t := 0; t < steps; t++ {
		// The threat landscape drifts (reflected random walk).
		ideal += r.Norm(0, cfg.DriftRate)
		ideal = reflect01(ideal)
		// Statute revision.
		if (regime == Statute || regime == CoRegulation) && t%cfg.LegislativeLag == 0 {
			statute = ideal
			res.Revisions++
		}
		for i := range behaviors {
			switch regime {
			case Statute:
				behaviors[i] = statute
			case SelfRegulation:
				if !defector[i] {
					reading := ideal + r.Norm(0, cfg.ObservationNoise)
					behaviors[i] += cfg.AdaptGain * (reading - behaviors[i])
				}
			case CoRegulation:
				if !defector[i] {
					reading := ideal + r.Norm(0, cfg.ObservationNoise)
					behaviors[i] += cfg.AdaptGain * (reading - behaviors[i])
				}
				// Enforcement clamps everyone into the statute band.
				behaviors[i] = clamp(behaviors[i], statute-cfg.ComplianceBand, statute+cfg.ComplianceBand)
			}
			behaviors[i] = clamp(behaviors[i], 0, 1)
			harms = append(harms, math.Abs(behaviors[i]-ideal))
		}
	}
	res.MeanHarm = stats.Mean(harms)
	res.P95Harm = stats.Quantile(harms, 0.95)
	res.MaxHarm = stats.Max(harms)
	return res, nil
}

// Compare simulates all three regimes with independent streams split
// from the seed and returns results keyed by regime.
func Compare(cfg Config, steps int, seed uint64) (map[Regime]Result, error) {
	root := rng.New(seed)
	out := make(map[Regime]Result, 3)
	for _, regime := range []Regime{Statute, SelfRegulation, CoRegulation} {
		res, err := Simulate(regime, cfg, steps, root.Split())
		if err != nil {
			return nil, err
		}
		out[regime] = res
	}
	return out, nil
}

func reflect01(x float64) float64 {
	for x < 0 || x > 1 {
		if x < 0 {
			x = -x
		}
		if x > 1 {
			x = 2 - x
		}
	}
	return x
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
