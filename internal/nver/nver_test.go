package nver

import (
	"math"
	"testing"

	"resilience/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestValidate(t *testing.T) {
	good := Voting{Versions: 3, IndepFailProb: 0.01, DesignFlawProb: 0.001}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Voting{
		{Versions: 0, IndepFailProb: 0.1, DesignFlawProb: 0.1},
		{Versions: 3, IndepFailProb: -0.1, DesignFlawProb: 0.1},
		{Versions: 3, IndepFailProb: 0.1, DesignFlawProb: 1.5},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestFailureProbNoFlaws(t *testing.T) {
	// Without design flaws, shared and diverse are identical: plain
	// 2-of-3 majority failure = 3p²(1−p) + p³.
	p := 0.1
	want := 3*p*p*(1-p) + p*p*p
	for _, shared := range []bool{true, false} {
		v := Voting{Versions: 3, IndepFailProb: p, SharedDesign: shared}
		got, err := v.FailureProb()
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, want, 1e-12) {
			t.Fatalf("shared=%v: prob = %v, want %v", shared, got, want)
		}
	}
}

func TestSharedDesignDominatedByFlaw(t *testing.T) {
	// With a shared design, the flaw probability is a hard floor on
	// system failure, no matter how many versions vote.
	v := Voting{Versions: 9, IndepFailProb: 0.001, DesignFlawProb: 0.01, SharedDesign: true}
	got, err := v.FailureProb()
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.01 {
		t.Fatalf("shared-design failure %v must be at least the flaw prob", got)
	}
}

func TestDiversityGainLarge(t *testing.T) {
	// §3.2.2: diverse designs turn the common-mode flaw into independent
	// faults that the majority voter absorbs — orders of magnitude
	// safer.
	gain, err := DiversityGain(3, 0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 20 {
		t.Fatalf("diversity gain = %v, want large", gain)
	}
}

func TestDiverseMajorityFormula(t *testing.T) {
	// Diverse: per-version p = 1-(1-i)(1-f); majority of 3.
	i, f := 0.02, 0.03
	p := 1 - (1-i)*(1-f)
	want := 3*p*p*(1-p) + p*p*p
	v := Voting{Versions: 3, IndepFailProb: i, DesignFlawProb: f, SharedDesign: false}
	got, err := v.FailureProb()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("prob = %v, want %v", got, want)
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	r := rng.New(1)
	for _, shared := range []bool{true, false} {
		v := Voting{Versions: 3, IndepFailProb: 0.05, DesignFlawProb: 0.02, SharedDesign: shared}
		analytic, err := v.FailureProb()
		if err != nil {
			t.Fatal(err)
		}
		mc, err := v.Simulate(300000, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc-analytic) > 0.003 {
			t.Fatalf("shared=%v: MC %v vs analytic %v", shared, mc, analytic)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	r := rng.New(2)
	v := Voting{Versions: 3, IndepFailProb: 0.1, DesignFlawProb: 0.1}
	if _, err := v.Simulate(0, r); err == nil {
		t.Error("want error for zero inputs")
	}
	bad := Voting{Versions: 0}
	if _, err := bad.Simulate(10, r); err == nil {
		t.Error("want validation error")
	}
	if _, err := bad.FailureProb(); err == nil {
		t.Error("want validation error from FailureProb")
	}
}

func TestSingleVersion(t *testing.T) {
	// One version: majority = itself; failure = combined probability.
	v := Voting{Versions: 1, IndepFailProb: 0.1, DesignFlawProb: 0.05, SharedDesign: false}
	got, err := v.FailureProb()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.1)*(1-0.05)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("prob = %v, want %v", got, want)
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if binomialPMF(3, 0, 0) != 1 || binomialPMF(3, 1, 0) != 0 {
		t.Fatal("p=0 edge")
	}
	if binomialPMF(3, 3, 1) != 1 || binomialPMF(3, 2, 1) != 0 {
		t.Fatal("p=1 edge")
	}
	var sum float64
	for k := 0; k <= 5; k++ {
		sum += binomialPMF(5, k, 0.37)
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Fatalf("pmf sums to %v", sum)
	}
}

func TestMoreVersionsHelpOnlyWithDiversity(t *testing.T) {
	// Scaling from 3 to 5 diverse versions reduces failure; with a
	// shared design the flaw floor does not move.
	gain3, err := DiversityGain(3, 0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	gain5, err := DiversityGain(5, 0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if gain5 <= gain3 {
		t.Fatalf("gain should grow with versions: %v vs %v", gain3, gain5)
	}
}
