// Package nver models N-version redundancy with and without design
// diversity — the Boeing 777 example of §3.2.2: "These three computers
// are based on different hardware and software developed by independent
// vendors. If these three computers share the same design, a design flaw
// would make all the computers fail at the same time."
//
// Each input may trigger two failure mechanisms per version: an
// independent random fault (probability IndepFailProb, independent across
// versions) and a design-flaw fault (probability DesignFlawProb per
// design). With a shared design, one flaw event fails every version at
// once; with diverse designs, each version carries its own independent
// flaw event. The voter needs a strict majority of correct versions.
package nver

import (
	"errors"
	"fmt"
	"math"

	"resilience/internal/rng"
)

// Voting is an N-version majority-voting system.
type Voting struct {
	// Versions is the number of redundant channels (odd for a clean
	// majority; 3 for the 777).
	Versions int
	// IndepFailProb is each version's independent per-input failure
	// probability.
	IndepFailProb float64
	// DesignFlawProb is the per-input probability that a design's flaw
	// is triggered.
	DesignFlawProb float64
	// SharedDesign selects common-mode (true) versus diverse designs
	// (false).
	SharedDesign bool
}

// Validate checks the parameters.
func (v Voting) Validate() error {
	if v.Versions < 1 {
		return errors.New("nver: need at least one version")
	}
	if v.IndepFailProb < 0 || v.IndepFailProb > 1 {
		return fmt.Errorf("nver: independent failure probability %v out of [0,1]", v.IndepFailProb)
	}
	if v.DesignFlawProb < 0 || v.DesignFlawProb > 1 {
		return fmt.Errorf("nver: design flaw probability %v out of [0,1]", v.DesignFlawProb)
	}
	return nil
}

// majorityNeeded returns the number of failed versions that defeats the
// voter: more than half.
func (v Voting) majorityNeeded() int { return v.Versions/2 + 1 }

// FailureProb returns the exact analytic probability that the voted
// output is wrong for one input.
func (v Voting) FailureProb() (float64, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	if v.SharedDesign {
		// One flaw event fails all versions; otherwise versions fail
		// independently.
		pMajIndep := v.tailBinomial(v.IndepFailProb)
		return v.DesignFlawProb + (1-v.DesignFlawProb)*pMajIndep, nil
	}
	// Diverse designs: each version fails independently with combined
	// probability p = 1 − (1−indep)(1−flaw).
	p := 1 - (1-v.IndepFailProb)*(1-v.DesignFlawProb)
	return v.tailBinomial(p), nil
}

// tailBinomial returns P(X >= majorityNeeded) for X ~ Binomial(Versions, p).
func (v Voting) tailBinomial(p float64) float64 {
	need := v.majorityNeeded()
	var total float64
	for k := need; k <= v.Versions; k++ {
		total += binomialPMF(v.Versions, k, p)
	}
	return total
}

func binomialPMF(n, k int, p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Compute C(n,k) p^k (1-p)^(n-k) in log space for stability.
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logC := 0.0
	for i := 0; i < k; i++ {
		logC += math.Log(float64(n-i)) - math.Log(float64(i+1))
	}
	return math.Exp(logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

// Simulate estimates the failure probability by Monte Carlo over the
// given number of inputs.
func (v Voting) Simulate(inputs int, r *rng.Source) (float64, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	if inputs <= 0 {
		return 0, fmt.Errorf("nver: inputs %d must be positive", inputs)
	}
	failures := 0
	need := v.majorityNeeded()
	for i := 0; i < inputs; i++ {
		failed := 0
		sharedFlaw := v.SharedDesign && r.Bool(v.DesignFlawProb)
		for ver := 0; ver < v.Versions; ver++ {
			bad := r.Bool(v.IndepFailProb)
			if v.SharedDesign {
				bad = bad || sharedFlaw
			} else {
				bad = bad || r.Bool(v.DesignFlawProb)
			}
			if bad {
				failed++
			}
		}
		if failed >= need {
			failures++
		}
	}
	return float64(failures) / float64(inputs), nil
}

// DiversityGain returns the ratio of shared-design failure probability to
// diverse-design failure probability for the same parameters — how many
// times safer design diversity makes the system.
func DiversityGain(versions int, indep, flaw float64) (float64, error) {
	shared := Voting{Versions: versions, IndepFailProb: indep, DesignFlawProb: flaw, SharedDesign: true}
	diverse := Voting{Versions: versions, IndepFailProb: indep, DesignFlawProb: flaw, SharedDesign: false}
	ps, err := shared.FailureProb()
	if err != nil {
		return 0, err
	}
	pd, err := diverse.FailureProb()
	if err != nil {
		return 0, err
	}
	if pd == 0 {
		return math.Inf(1), nil
	}
	return ps / pd, nil
}
