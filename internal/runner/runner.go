// Package runner executes suites of experiments on a bounded worker
// pool. Results are delivered in input order regardless of the number of
// workers, each experiment's random stream is derived independently from
// the root seed, and a failing experiment is isolated: it is reported and
// the rest of the suite still runs. Together these make the rendered
// output of a suite byte-identical for a given seed whatever -jobs is.
//
// The runner also demonstrates the paper's resilience strategies on
// itself: under a fault-injection hook (internal/faultinject) it retries
// failed attempts with seed-derived backoff, bounds each attempt with a
// timeout, and degrades gracefully — a faulted-then-recovered experiment
// renders with a degraded/retries annotation instead of failing the
// suite, and the recovery is measured as a Bruneau-style triangle
// (time-to-recover plus quality loss over the failed attempts).
package runner

import (
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"resilience/internal/engine"
	"resilience/internal/experiments"
	"resilience/internal/obs"
	"resilience/internal/rescache"
	"resilience/internal/rng"
)

// Options configures a suite run.
type Options struct {
	// Jobs is the maximum number of experiments running concurrently.
	// Values below 1 mean GOMAXPROCS.
	Jobs int
	// Seed is the root seed. Each experiment runs with the derived seed
	// rng.Derive(Seed, id), so its stream does not depend on which other
	// experiments run or in what order.
	Seed uint64
	// Quick shrinks workloads.
	Quick bool
	// Hooks supplies the fault-injection hook for one attempt of one
	// experiment; nil (or nil returns) means no faults.
	// faultinject.(*Plan).HookFor has this signature.
	Hooks func(expID string, attempt int) experiments.Hook
	// Retries is how many times a failed experiment is re-run before it
	// counts as failed. 0 preserves the single-attempt behaviour.
	Retries int
	// Backoff is the base sleep before each retry. The actual sleep is
	// Backoff plus jitter in [0, Backoff) drawn from a stream derived
	// from (Seed, id), so retry schedules reproduce run to run.
	Backoff time.Duration
	// Timeout bounds one attempt's wall time; 0 means unbounded. A
	// timed-out attempt is canceled (experiments.Config.Cancel closes,
	// so a cooperative body drains at its next seam or iteration
	// boundary) and counts as a failure for retry purposes.
	Timeout time.Duration
	// Obs receives metrics and spans for the run; nil disables
	// instrumentation. Counters it accumulates (attempts, retries, seam
	// crossings, pass/fail/degraded totals) are seed- and
	// plan-deterministic; gauges, histograms, and spans carry
	// timing-bearing data and never feed stdout.
	Obs *obs.Observer
	// Cache short-circuits experiments whose result is already stored
	// under the current (seed, quick, plan, schema) key; nil disables
	// caching. Only clean first-attempt results are stored: retried or
	// timed-out outcomes can depend on wall time, so they are always
	// recomputed.
	Cache *rescache.Cache
	// PlanHash is the fault plan's content hash ("" when no plan is
	// loaded); it is part of the cache key so editing a plan invalidates
	// every entry recorded under the old one.
	PlanHash string
	// BytesOnly makes cache hits return only the canonical bytes
	// (Outcome.Canon) without decoding a Result. The HTTP server sets it:
	// a warm /v1/run or /v1/suite response copies the cached bytes to the
	// wire, so paying a JSON decode per hit would be pure waste. Computed
	// (non-hit) outcomes always carry both Result and Canon, and failures
	// always come from a computation, so error envelopes keep their
	// partial Result either way.
	BytesOnly bool
}

// Recovery is the Bruneau-style recovery triangle of one experiment that
// failed at least one attempt: how long the component was down and how
// much quality was lost before it came back.
type Recovery struct {
	// FailedAttempts is how many attempts failed before the outcome.
	FailedAttempts int
	// Recovered reports whether a later attempt succeeded.
	Recovered bool
	// TimeToRecover is the wall time from the first attempt's start to
	// the final outcome — the triangle's base (t1 − t0 of §4.1).
	TimeToRecover time.Duration
	// Loss is the triangle's area ∫(100−Q)dt with Q = 0 while attempts
	// were failing, in units of quality-percent × seconds.
	Loss float64
}

// Outcome is the report for one experiment.
type Outcome struct {
	// Experiment is the registry entry that ran.
	Experiment experiments.Experiment
	// Result holds the recorded tables, scalars and notes. It is non-nil
	// even on failure (partial results plus the error) — except on a
	// cache hit under Options.BytesOnly, where only Canon is populated.
	Result *experiments.Result
	// Canon is the result's canonical JSON encoding, marshalled exactly
	// once per computation (or read back verbatim from the cache). Every
	// downstream consumer — cache store, coalesced waiters, HTTP
	// response bodies, the CLI's JSON renderer — copies these bytes
	// instead of re-marshalling, which is what makes a fresh run, a
	// replay, and a proxied response byte-identical by construction.
	// Treat it as immutable. Nil when the result failed to marshal (the
	// consumer falls back to marshalling Result itself).
	Canon []byte
	// Err is the experiment's failure, nil on success. Panics surface as
	// *experiments.PanicError; timeouts as *TimeoutError.
	Err error
	// Elapsed is the experiment's wall time across all attempts.
	Elapsed time.Duration
	// AllocBytes is the heap allocated while the experiment's attempts
	// ran: the sum of per-attempt runtime.MemStats.TotalAlloc deltas, so
	// backoff sleeps between attempts are excluded. It is exact at
	// Jobs=1 and an attribution-free approximation otherwise (TotalAlloc
	// is process-wide, so concurrent experiments' allocations mix).
	AllocBytes uint64
	// Attempts is how many attempts ran (1 = no retries needed, 0 = the
	// result came from the cache, or from a coalesced concurrent run,
	// and no attempt ran at all).
	Attempts int
	// CacheHit reports that Result was served from Options.Cache.
	CacheHit bool
	// CacheTier names the storage tier that served a CacheHit ("mem",
	// "fs", "peer"); "" when unknown. It flows into Status() so the
	// stderr progress lines and the HTTP status header show where a hit
	// actually came from — a mem hit and a peer round trip are very
	// different latencies wearing the same CacheHit flag.
	CacheTier string
	// Remote reports that Result was produced by another node in the
	// serve fleet (the digest's consistent-hash owner) and fetched over
	// HTTP. The runner itself never sets it; the coordinator in
	// internal/server stamps proxied outcomes with the owner's rendered
	// status (RemoteStatus, passed through verbatim so the two nodes
	// never disagree about what happened) and base URL (RemoteNode).
	Remote       bool
	RemoteStatus string
	RemoteNode   string
	// Coalesced reports that Result was shared from an identical run
	// already in flight (same cache key) instead of being computed or
	// read from the cache. The runner itself never coalesces — each
	// experiment appears once per suite — but the HTTP server
	// (internal/server) folds a thundering herd of identical requests
	// onto one computation and stamps the waiters' outcomes with it.
	Coalesced bool
	// Degraded reports a faulted-then-recovered experiment: at least one
	// attempt failed but a later one succeeded, so the suite renders the
	// result with an annotation instead of failing.
	Degraded bool
	// TimedOut reports that the final attempt hit Options.Timeout.
	TimedOut bool
	// Recovery measures the recovery triangle; nil when the first
	// attempt succeeded.
	Recovery *Recovery
}

// Status renders the outcome's one-word(ish) status: "ok" possibly
// refined to "ok (coalesced)", "ok (cached <tier>)", or "ok (degraded,
// N attempts)", or "FAILED: <err>". It is the single source for the
// CLI's stderr progress lines and the HTTP server's X-Resilience-Status
// header, so the two surfaces never disagree about what happened.
// Coalesced outranks the leader's flags: the waiter's request did no
// work of its own, whatever the shared computation went through. A
// Remote outcome relays the owning node's status verbatim for the same
// reason — the proxying node did no work either.
func (o Outcome) Status() string {
	switch {
	case o.Err != nil:
		return "FAILED: " + o.Err.Error()
	case o.Coalesced:
		return "ok (coalesced)"
	case o.Remote && o.RemoteStatus != "":
		return o.RemoteStatus
	case o.Remote:
		return "ok (proxied)"
	case o.CacheHit && o.CacheTier != "":
		return "ok (cached " + o.CacheTier + ")"
	case o.CacheHit:
		return "ok (cached)"
	case o.Degraded:
		return fmt.Sprintf("ok (degraded, %d attempts)", o.Attempts)
	default:
		return "ok"
	}
}

// Summary aggregates a suite run.
type Summary struct {
	Total     int
	Passed    int
	Failed    int
	FailedIDs []string
	// Degraded counts experiments that failed at least one attempt but
	// recovered; they are included in Passed.
	Degraded    int
	DegradedIDs []string
	// Retries is the total number of re-run attempts across the suite.
	Retries int
	// CacheHits counts experiments whose result was served from the
	// result cache (Outcome.CacheHit).
	CacheHits int
	// Coalesced counts experiments whose result was shared from an
	// identical in-flight run (Outcome.Coalesced) — distinct from
	// CacheHits so operators can tell a warm cache from a thundering
	// herd folded onto one computation.
	Coalesced int
	// RecoveryTime sums TimeToRecover over experiments that needed
	// recovery (degraded or failed).
	RecoveryTime time.Duration
	// RecoveryLoss sums the Bruneau triangle areas over those
	// experiments, in quality-percent × seconds.
	RecoveryLoss float64
	// Elapsed is the suite wall time.
	Elapsed time.Duration
}

// TimeoutError reports an attempt that exceeded the per-attempt bound.
// Its message depends only on the configured limit, so rendered output
// stays deterministic.
type TimeoutError struct {
	Limit time.Duration
}

func (e *TimeoutError) Error() string { return fmt.Sprintf("timeout: attempt exceeded %v", e.Limit) }

// Config returns the experiment config a suite run uses for e: the
// per-experiment seed derived from the root seed. Single-experiment runs
// use the same derivation, so they reproduce the rows of a full run.
func Config(opts Options, e experiments.Experiment) experiments.Config {
	return experiments.Config{Seed: rng.Derive(opts.Seed, e.ID), Quick: opts.Quick}
}

// Run executes every experiment with at most opts.Jobs in flight, calling
// emit (if non-nil) once per experiment in input order as results become
// available. It never aborts early: failures are recorded in the summary
// and the remaining experiments still run.
func Run(exps []experiments.Experiment, opts Options, emit func(Outcome)) Summary {
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(exps) {
		jobs = len(exps)
	}
	start := time.Now()
	suiteSpan := opts.Obs.Span("suite", "suite")
	opts.Obs.Counter("runner.experiments").Add(int64(len(exps)))

	outcomes := make([]Outcome, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	if jobs < 1 {
		jobs = 1
	}
	sem := make(chan struct{}, jobs)
	for i := range exps {
		i := i
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			outcomes[i] = runOne(exps[i], opts, sem, suiteSpan)
			close(done[i])
		}()
	}

	var sum Summary
	sum.Total = len(exps)
	for i := range exps {
		<-done[i]
		o := outcomes[i]
		if o.Err != nil {
			sum.Failed++
			sum.FailedIDs = append(sum.FailedIDs, o.Experiment.ID)
		} else {
			sum.Passed++
		}
		if o.Degraded {
			sum.Degraded++
			sum.DegradedIDs = append(sum.DegradedIDs, o.Experiment.ID)
		}
		if o.CacheHit {
			sum.CacheHits++
		}
		if o.Coalesced {
			sum.Coalesced++
		}
		if o.Attempts > 1 {
			sum.Retries += o.Attempts - 1
		}
		if o.Recovery != nil {
			sum.RecoveryTime += o.Recovery.TimeToRecover
			sum.RecoveryLoss += o.Recovery.Loss
			// Recovery-triangle samples: base and area per recovery
			// episode, §4.1's two axes as distributions.
			opts.Obs.Histogram("runner.recovery.seconds").Observe(o.Recovery.TimeToRecover.Seconds())
			opts.Obs.Histogram("runner.recovery.loss").Observe(o.Recovery.Loss)
		}
		if emit != nil {
			emit(o)
		}
	}
	// Touch every deterministic suite counter, even at zero, so the
	// metrics document has a stable schema run to run.
	opts.Obs.Counter("runner.passed").Add(int64(sum.Passed))
	opts.Obs.Counter("runner.failed").Add(int64(sum.Failed))
	opts.Obs.Counter("runner.degraded").Add(int64(sum.Degraded))
	opts.Obs.Counter("runner.retries").Add(int64(sum.Retries))
	opts.Obs.Counter("runner.timeouts").Add(0)
	sum.Elapsed = time.Since(start)
	opts.Obs.Histogram("runner.suite.seconds").Observe(sum.Elapsed.Seconds())
	suiteSpan.End()
	return sum
}

// runOne executes a single experiment through the retry loop and
// measures its total wall time and allocation. sem is the worker-pool
// semaphore (nil outside a pool): the slot is released for the length
// of each backoff sleep so one flaky experiment does not stall a
// healthy one waiting for a worker.
func runOne(e experiments.Experiment, opts Options, sem chan struct{}, parent *obs.Span) Outcome {
	start := time.Now()
	span := parent.Child("experiment:"+e.ID, "experiment")
	span.SetAttr("id", e.ID)
	defer span.End()

	if data, tier, ok := opts.Cache.GetBytes(cacheKey(opts, e)); ok {
		span.Event("cache hit (" + tier + ")")
		hit := Outcome{Experiment: e, Canon: data, CacheHit: true, CacheTier: tier}
		if opts.BytesOnly {
			hit.Elapsed = time.Since(start)
			return hit
		}
		// Callers that inspect the Result (text rendering, the CLI) still
		// get a decoded copy; a payload that passed the cache's validation
		// but fails to decode is treated as the miss it is.
		var res experiments.Result
		if err := json.Unmarshal(data, &res); err == nil && res.ID == e.ID {
			hit.Result = &res
			hit.Elapsed = time.Since(start)
			return hit
		}
		span.Event("cache payload undecodable, recomputing")
	}

	attempts := opts.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var backoff *rng.Source
	var out Outcome
	var failedLoss float64
	sawTimeout := false
	for a := 1; a <= attempts; a++ {
		if a > 1 && opts.Backoff > 0 {
			if backoff == nil {
				backoff = rng.New(rng.Derive(opts.Seed, e.ID+"/retry"))
			}
			// Full base plus deterministic jitter in [0, base). Sleep
			// with the worker slot released: the schedule is part of
			// the experiment's recovery story, not work the pool
			// should serialize behind.
			sleep := opts.Backoff + time.Duration(backoff.Float64()*float64(opts.Backoff))
			span.Eventf("backoff %v before attempt %d", sleep.Round(time.Millisecond), a)
			if sem != nil {
				<-sem
			}
			time.Sleep(sleep)
			if sem != nil {
				sem <- struct{}{}
			}
		}
		attemptStart := time.Now()
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		allocBefore := mem.TotalAlloc
		res, err, timedOut := runAttempt(e, opts, a, span)
		runtime.ReadMemStats(&mem)
		out.AllocBytes += mem.TotalAlloc - allocBefore
		out.Result, out.Err, out.TimedOut = res, err, timedOut
		out.Attempts = a
		sawTimeout = sawTimeout || timedOut
		if err == nil {
			if a > 1 {
				out.Degraded = true
				out.Recovery = &Recovery{
					FailedAttempts: a - 1,
					Recovered:      true,
					TimeToRecover:  time.Since(start),
					Loss:           failedLoss,
				}
				annotate(&out, sawTimeout)
			}
			break
		}
		failedLoss += 100 * time.Since(attemptStart).Seconds()
	}
	if out.Err != nil {
		out.Recovery = &Recovery{
			FailedAttempts: out.Attempts,
			Recovered:      false,
			TimeToRecover:  time.Since(start),
			Loss:           failedLoss,
		}
	}
	out.Experiment = e
	out.Elapsed = time.Since(start)
	if out.Result != nil {
		// Marshal once: the encoder is canonical on its first pass
		// (struct-valued cells emit sorted key order, numbers normalize
		// through float64), so these bytes are what the cache stores,
		// what a replay serves, and what every response body copies — no
		// canonicalizing round trip, and no re-marshal downstream.
		if canon, cerr := out.Result.AppendCanonical(make([]byte, 0, 2048)); cerr == nil {
			out.Canon = canon
		} else {
			span.Eventf("canonical encode failed: %v", cerr)
		}
	}
	if out.Err == nil && out.Attempts == 1 && !out.TimedOut && out.Canon != nil {
		if perr := opts.Cache.PutBytes(cacheKey(opts, e), out.Canon); perr != nil {
			// A full or read-only cache slows the next run down; it must
			// not fail this one.
			span.Eventf("cache store failed: %v", perr)
		}
	}
	opts.Obs.Histogram("runner.experiment.seconds").Observe(out.Elapsed.Seconds())
	return out
}

// CacheKey returns the rescache key a run with opts uses for e. The
// HTTP server coalesces concurrent identical requests on this key's
// digest, so two requests fold onto one computation exactly when the
// cache would consider them the same run.
func CacheKey(opts Options, e experiments.Experiment) rescache.Key {
	return cacheKey(opts, e)
}

// cacheKey addresses e's result for this run: per-experiment derived
// seed (the same one Config hands the body), quick flag, fault-plan
// hash, and the engine schema version.
func cacheKey(opts Options, e experiments.Experiment) rescache.Key {
	return rescache.Key{
		ID:       e.ID,
		Seed:     rng.Derive(opts.Seed, e.ID),
		Quick:    opts.Quick,
		PlanHash: opts.PlanHash,
		Schema:   engine.SchemaVersion,
	}
}

// annotate stamps a recovered result with its degradation record. The
// annotation depends only on attempt counts (plan-deterministic), never
// on wall time, so rendered output stays byte-identical across runs.
func annotate(out *Outcome, sawTimeout bool) {
	if out.Result == nil {
		return
	}
	retries := out.Attempts - 1
	noun := "retries"
	if retries == 1 {
		noun = "retry"
	}
	cause := ""
	if sawTimeout {
		cause = " after timeout"
	}
	out.Result.Annotate("degraded: recovered on attempt %d (%d %s%s)", out.Attempts, retries, noun, cause)
	out.Result.AddScalar("degraded", true)
	out.Result.AddScalar("retries", retries)
}

// runAttempt executes one attempt: the worker-seam strike, then the
// experiment body, bounded by Options.Timeout when set. A timed-out
// attempt is canceled via experiments.Config.Cancel; the abandoned
// goroutine is tracked through the observer (runner.goroutines.*
// gauges) until it drains.
func runAttempt(e experiments.Experiment, opts Options, attempt int, parent *obs.Span) (*experiments.Result, error, bool) {
	span := parent.Child(fmt.Sprintf("attempt %d", attempt), "attempt")
	defer span.End()
	opts.Obs.Counter("runner.attempts").Inc()
	attemptStart := time.Now()
	defer func() {
		opts.Obs.Histogram("runner.attempt.seconds").Observe(time.Since(attemptStart).Seconds())
	}()
	cfg := Config(opts, e)
	if opts.Hooks != nil {
		cfg.Hook = opts.Hooks(e.ID, attempt)
	}
	if opts.Obs != nil {
		// Observe every seam crossing (injected or clean) on the
		// attempt span; the wrapper delegates to the plan's hook, so
		// behaviour is unchanged.
		cfg.Hook = seamObserver{inner: cfg.Hook, obs: opts.Obs, span: span}
	}
	// The worker seam fires outside Record's recovery, so guard it here:
	// a worker-seam panic must not kill the pool goroutine.
	if cfg.Hook != nil {
		if err := strikeWorker(cfg); err != nil {
			res := experiments.NewRecorder(e, cfg).Result()
			res.Error = err.Error()
			return res, err, false
		}
	}
	if opts.Timeout <= 0 {
		res, err := e.Record(cfg)
		return res, err, false
	}
	cancel := make(chan struct{})
	cfg.Cancel = cancel
	type recorded struct {
		res *experiments.Result
		err error
	}
	ch := make(chan recorded, 1)
	go func() {
		res, err := e.Record(cfg)
		ch <- recorded{res, err}
	}()
	timer := time.NewTimer(opts.Timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.res, r.err, false
	case <-timer.C:
		// Cancel the attempt: the body observes the closed channel at
		// its next seam or iteration boundary and returns ErrCanceled,
		// so the goroutine drains instead of leaking — it no longer
		// burns CPU alongside the retry or pollutes other experiments'
		// AllocBytes. The drain is tracked asynchronously: leaked =
		// abandoned − drained, and a body that never checks its cancel
		// signal shows up as a permanently non-zero leak gauge.
		close(cancel)
		span.Event("timeout")
		opts.Obs.Counter("runner.timeouts").Inc()
		opts.Obs.Gauge("runner.goroutines.abandoned").Add(1)
		opts.Obs.Gauge("runner.goroutines.leaked").Add(1)
		go func() {
			<-ch
			opts.Obs.Gauge("runner.goroutines.drained").Add(1)
			opts.Obs.Gauge("runner.goroutines.leaked").Add(-1)
			span.Event("drained")
		}()
		err := &TimeoutError{Limit: opts.Timeout}
		res := experiments.NewRecorder(e, cfg).Result()
		res.Error = err.Error()
		return res, err, true
	}
}

// seamObserver wraps an attempt's fault hook: it counts every seam
// crossing and stamps it on the attempt span, then delegates to the
// wrapped hook (nil inner = clean run). Seam-crossing counts depend
// only on seed and plan, so they belong to the deterministic section of
// the metrics document — except crossings an abandoned attempt makes
// while draining, which are timing-bearing like everything else about
// timeouts.
type seamObserver struct {
	inner experiments.Hook
	obs   *obs.Observer
	span  *obs.Span
}

func (s seamObserver) Strike(seam string, r *rng.Source) error {
	s.obs.Counter("runner.seam." + seam).Inc()
	s.span.Event("seam:" + seam)
	if s.inner == nil {
		return nil
	}
	return s.inner.Strike(seam, r)
}

// strikeWorker fires the worker seam, converting a panic into the same
// *experiments.PanicError a body panic produces.
func strikeWorker(cfg experiments.Config) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &experiments.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return cfg.Strike("worker", nil)
}
