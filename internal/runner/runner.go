// Package runner executes suites of experiments on a bounded worker
// pool. Results are delivered in input order regardless of the number of
// workers, each experiment's random stream is derived independently from
// the root seed, and a failing experiment is isolated: it is reported and
// the rest of the suite still runs. Together these make the rendered
// output of a suite byte-identical for a given seed whatever -jobs is.
//
// The runner also demonstrates the paper's resilience strategies on
// itself: under a fault-injection hook (internal/faultinject) it retries
// failed attempts with seed-derived backoff, bounds each attempt with a
// timeout, and degrades gracefully — a faulted-then-recovered experiment
// renders with a degraded/retries annotation instead of failing the
// suite, and the recovery is measured as a Bruneau-style triangle
// (time-to-recover plus quality loss over the failed attempts).
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"resilience/internal/experiments"
	"resilience/internal/rng"
)

// Options configures a suite run.
type Options struct {
	// Jobs is the maximum number of experiments running concurrently.
	// Values below 1 mean GOMAXPROCS.
	Jobs int
	// Seed is the root seed. Each experiment runs with the derived seed
	// rng.Derive(Seed, id), so its stream does not depend on which other
	// experiments run or in what order.
	Seed uint64
	// Quick shrinks workloads.
	Quick bool
	// Hooks supplies the fault-injection hook for one attempt of one
	// experiment; nil (or nil returns) means no faults.
	// faultinject.(*Plan).HookFor has this signature.
	Hooks func(expID string, attempt int) experiments.Hook
	// Retries is how many times a failed experiment is re-run before it
	// counts as failed. 0 preserves the single-attempt behaviour.
	Retries int
	// Backoff is the base sleep before each retry. The actual sleep is
	// Backoff plus jitter in [0, Backoff) drawn from a stream derived
	// from (Seed, id), so retry schedules reproduce run to run.
	Backoff time.Duration
	// Timeout bounds one attempt's wall time; 0 means unbounded. A
	// timed-out attempt is abandoned (its goroutine finishes in the
	// background) and counts as a failure for retry purposes.
	Timeout time.Duration
}

// Recovery is the Bruneau-style recovery triangle of one experiment that
// failed at least one attempt: how long the component was down and how
// much quality was lost before it came back.
type Recovery struct {
	// FailedAttempts is how many attempts failed before the outcome.
	FailedAttempts int
	// Recovered reports whether a later attempt succeeded.
	Recovered bool
	// TimeToRecover is the wall time from the first attempt's start to
	// the final outcome — the triangle's base (t1 − t0 of §4.1).
	TimeToRecover time.Duration
	// Loss is the triangle's area ∫(100−Q)dt with Q = 0 while attempts
	// were failing, in units of quality-percent × seconds.
	Loss float64
}

// Outcome is the report for one experiment.
type Outcome struct {
	// Experiment is the registry entry that ran.
	Experiment experiments.Experiment
	// Result holds the recorded tables, scalars and notes. It is non-nil
	// even on failure (partial results plus the error).
	Result *experiments.Result
	// Err is the experiment's failure, nil on success. Panics surface as
	// *experiments.PanicError; timeouts as *TimeoutError.
	Err error
	// Elapsed is the experiment's wall time across all attempts.
	Elapsed time.Duration
	// AllocBytes is the heap allocated while the experiment ran. It is
	// exact at Jobs=1 and an attribution-free approximation otherwise
	// (concurrent experiments' allocations mix).
	AllocBytes uint64
	// Attempts is how many attempts ran (1 = no retries needed).
	Attempts int
	// Degraded reports a faulted-then-recovered experiment: at least one
	// attempt failed but a later one succeeded, so the suite renders the
	// result with an annotation instead of failing.
	Degraded bool
	// TimedOut reports that the final attempt hit Options.Timeout.
	TimedOut bool
	// Recovery measures the recovery triangle; nil when the first
	// attempt succeeded.
	Recovery *Recovery
}

// Summary aggregates a suite run.
type Summary struct {
	Total     int
	Passed    int
	Failed    int
	FailedIDs []string
	// Degraded counts experiments that failed at least one attempt but
	// recovered; they are included in Passed.
	Degraded    int
	DegradedIDs []string
	// Retries is the total number of re-run attempts across the suite.
	Retries int
	// RecoveryTime sums TimeToRecover over experiments that needed
	// recovery (degraded or failed).
	RecoveryTime time.Duration
	// RecoveryLoss sums the Bruneau triangle areas over those
	// experiments, in quality-percent × seconds.
	RecoveryLoss float64
	// Elapsed is the suite wall time.
	Elapsed time.Duration
}

// TimeoutError reports an attempt that exceeded the per-attempt bound.
// Its message depends only on the configured limit, so rendered output
// stays deterministic.
type TimeoutError struct {
	Limit time.Duration
}

func (e *TimeoutError) Error() string { return fmt.Sprintf("timeout: attempt exceeded %v", e.Limit) }

// Config returns the experiment config a suite run uses for e: the
// per-experiment seed derived from the root seed. Single-experiment runs
// use the same derivation, so they reproduce the rows of a full run.
func Config(opts Options, e experiments.Experiment) experiments.Config {
	return experiments.Config{Seed: rng.Derive(opts.Seed, e.ID), Quick: opts.Quick}
}

// Run executes every experiment with at most opts.Jobs in flight, calling
// emit (if non-nil) once per experiment in input order as results become
// available. It never aborts early: failures are recorded in the summary
// and the remaining experiments still run.
func Run(exps []experiments.Experiment, opts Options, emit func(Outcome)) Summary {
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(exps) {
		jobs = len(exps)
	}
	start := time.Now()

	outcomes := make([]Outcome, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	if jobs < 1 {
		jobs = 1
	}
	sem := make(chan struct{}, jobs)
	for i := range exps {
		i := i
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			outcomes[i] = runOne(exps[i], opts)
			close(done[i])
		}()
	}

	var sum Summary
	sum.Total = len(exps)
	for i := range exps {
		<-done[i]
		o := outcomes[i]
		if o.Err != nil {
			sum.Failed++
			sum.FailedIDs = append(sum.FailedIDs, o.Experiment.ID)
		} else {
			sum.Passed++
		}
		if o.Degraded {
			sum.Degraded++
			sum.DegradedIDs = append(sum.DegradedIDs, o.Experiment.ID)
		}
		if o.Attempts > 1 {
			sum.Retries += o.Attempts - 1
		}
		if o.Recovery != nil {
			sum.RecoveryTime += o.Recovery.TimeToRecover
			sum.RecoveryLoss += o.Recovery.Loss
		}
		if emit != nil {
			emit(o)
		}
	}
	sum.Elapsed = time.Since(start)
	return sum
}

// runOne executes a single experiment through the retry loop and
// measures its total wall time and allocation.
func runOne(e experiments.Experiment, opts Options) Outcome {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()

	attempts := opts.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	var backoff *rng.Source
	var out Outcome
	var failedLoss float64
	sawTimeout := false
	for a := 1; a <= attempts; a++ {
		if a > 1 && opts.Backoff > 0 {
			if backoff == nil {
				backoff = rng.New(rng.Derive(opts.Seed, e.ID+"/retry"))
			}
			// Full base plus deterministic jitter in [0, base).
			time.Sleep(opts.Backoff + time.Duration(backoff.Float64()*float64(opts.Backoff)))
		}
		attemptStart := time.Now()
		res, err, timedOut := runAttempt(e, opts, a)
		out.Result, out.Err, out.TimedOut = res, err, timedOut
		out.Attempts = a
		sawTimeout = sawTimeout || timedOut
		if err == nil {
			if a > 1 {
				out.Degraded = true
				out.Recovery = &Recovery{
					FailedAttempts: a - 1,
					Recovered:      true,
					TimeToRecover:  time.Since(start),
					Loss:           failedLoss,
				}
				annotate(&out, sawTimeout)
			}
			break
		}
		failedLoss += 100 * time.Since(attemptStart).Seconds()
	}
	if out.Err != nil {
		out.Recovery = &Recovery{
			FailedAttempts: out.Attempts,
			Recovered:      false,
			TimeToRecover:  time.Since(start),
			Loss:           failedLoss,
		}
	}
	out.Experiment = e
	out.Elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	out.AllocBytes = after.TotalAlloc - before.TotalAlloc
	return out
}

// annotate stamps a recovered result with its degradation record. The
// annotation depends only on attempt counts (plan-deterministic), never
// on wall time, so rendered output stays byte-identical across runs.
func annotate(out *Outcome, sawTimeout bool) {
	if out.Result == nil {
		return
	}
	retries := out.Attempts - 1
	noun := "retries"
	if retries == 1 {
		noun = "retry"
	}
	cause := ""
	if sawTimeout {
		cause = " after timeout"
	}
	out.Result.Annotate("degraded: recovered on attempt %d (%d %s%s)", out.Attempts, retries, noun, cause)
	out.Result.AddScalar("degraded", true)
	out.Result.AddScalar("retries", retries)
}

// runAttempt executes one attempt: the worker-seam strike, then the
// experiment body, bounded by Options.Timeout when set.
func runAttempt(e experiments.Experiment, opts Options, attempt int) (*experiments.Result, error, bool) {
	cfg := Config(opts, e)
	if opts.Hooks != nil {
		cfg.Hook = opts.Hooks(e.ID, attempt)
	}
	// The worker seam fires outside Record's recovery, so guard it here:
	// a worker-seam panic must not kill the pool goroutine.
	if cfg.Hook != nil {
		if err := strikeWorker(cfg); err != nil {
			res := experiments.NewRecorder(e, cfg).Result()
			res.Error = err.Error()
			return res, err, false
		}
	}
	if opts.Timeout <= 0 {
		res, err := e.Record(cfg)
		return res, err, false
	}
	type recorded struct {
		res *experiments.Result
		err error
	}
	ch := make(chan recorded, 1)
	go func() {
		res, err := e.Record(cfg)
		ch <- recorded{res, err}
	}()
	timer := time.NewTimer(opts.Timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.res, r.err, false
	case <-timer.C:
		err := &TimeoutError{Limit: opts.Timeout}
		res := experiments.NewRecorder(e, cfg).Result()
		res.Error = err.Error()
		return res, err, true
	}
}

// strikeWorker fires the worker seam, converting a panic into the same
// *experiments.PanicError a body panic produces.
func strikeWorker(cfg experiments.Config) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &experiments.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return cfg.Strike("worker", nil)
}
