// Package runner executes suites of experiments on a bounded worker
// pool. Results are delivered in input order regardless of the number of
// workers, each experiment's random stream is derived independently from
// the root seed, and a failing experiment is isolated: it is reported and
// the rest of the suite still runs. Together these make the rendered
// output of a suite byte-identical for a given seed whatever -jobs is.
package runner

import (
	"runtime"
	"time"

	"resilience/internal/experiments"
	"resilience/internal/rng"
)

// Options configures a suite run.
type Options struct {
	// Jobs is the maximum number of experiments running concurrently.
	// Values below 1 mean GOMAXPROCS.
	Jobs int
	// Seed is the root seed. Each experiment runs with the derived seed
	// rng.Derive(Seed, id), so its stream does not depend on which other
	// experiments run or in what order.
	Seed uint64
	// Quick shrinks workloads.
	Quick bool
}

// Outcome is the report for one experiment.
type Outcome struct {
	// Experiment is the registry entry that ran.
	Experiment experiments.Experiment
	// Result holds the recorded tables, scalars and notes. It is non-nil
	// even on failure (partial results plus the error).
	Result *experiments.Result
	// Err is the experiment's failure, nil on success. Panics surface as
	// *experiments.PanicError.
	Err error
	// Elapsed is the experiment's wall time.
	Elapsed time.Duration
	// AllocBytes is the heap allocated while the experiment ran. It is
	// exact at Jobs=1 and an attribution-free approximation otherwise
	// (concurrent experiments' allocations mix).
	AllocBytes uint64
}

// Summary aggregates a suite run.
type Summary struct {
	Total     int
	Passed    int
	Failed    int
	FailedIDs []string
	// Elapsed is the suite wall time.
	Elapsed time.Duration
}

// Config returns the experiment config a suite run uses for e: the
// per-experiment seed derived from the root seed. Single-experiment runs
// use the same derivation, so they reproduce the rows of a full run.
func Config(opts Options, e experiments.Experiment) experiments.Config {
	return experiments.Config{Seed: rng.Derive(opts.Seed, e.ID), Quick: opts.Quick}
}

// Run executes every experiment with at most opts.Jobs in flight, calling
// emit (if non-nil) once per experiment in input order as results become
// available. It never aborts early: failures are recorded in the summary
// and the remaining experiments still run.
func Run(exps []experiments.Experiment, opts Options, emit func(Outcome)) Summary {
	jobs := opts.Jobs
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(exps) {
		jobs = len(exps)
	}
	start := time.Now()

	outcomes := make([]Outcome, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	if jobs < 1 {
		jobs = 1
	}
	sem := make(chan struct{}, jobs)
	for i := range exps {
		i := i
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			outcomes[i] = runOne(exps[i], opts)
			close(done[i])
		}()
	}

	var sum Summary
	sum.Total = len(exps)
	for i := range exps {
		<-done[i]
		o := outcomes[i]
		if o.Err != nil {
			sum.Failed++
			sum.FailedIDs = append(sum.FailedIDs, o.Experiment.ID)
		} else {
			sum.Passed++
		}
		if emit != nil {
			emit(o)
		}
	}
	sum.Elapsed = time.Since(start)
	return sum
}

// runOne executes a single experiment and measures its wall time and
// allocation.
func runOne(e experiments.Experiment, opts Options) Outcome {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := e.Record(Config(opts, e))
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Outcome{
		Experiment: e,
		Result:     res,
		Err:        err,
		Elapsed:    elapsed,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}
}
