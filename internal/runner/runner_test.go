package runner

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"resilience/internal/experiments"
	"resilience/internal/rng"
)

// fakeExp builds an unregistered experiment for runner tests.
func fakeExp(id string, run experiments.Runner) experiments.Experiment {
	return experiments.Experiment{
		ID: id, Title: "fake " + id, Source: "test",
		Modules: []string{"test"}, SupportsQuick: true, Run: run,
	}
}

func noop(rec *experiments.Recorder, cfg experiments.Config) error {
	rec.Notef("ok")
	return nil
}

func TestRunEmitsInInputOrder(t *testing.T) {
	var exps []experiments.Experiment
	for i := 0; i < 12; i++ {
		exps = append(exps, fakeExp(fmt.Sprintf("t%02d", i), noop))
	}
	for _, jobs := range []int{1, 4, 16} {
		var got []string
		sum := Run(exps, Options{Jobs: jobs, Seed: 1}, func(o Outcome) {
			got = append(got, o.Experiment.ID)
		})
		var want []string
		for _, e := range exps {
			want = append(want, e.ID)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("jobs=%d: emit order %v, want %v", jobs, got, want)
		}
		if sum.Total != 12 || sum.Passed != 12 || sum.Failed != 0 {
			t.Fatalf("jobs=%d: summary %+v", jobs, sum)
		}
	}
}

func TestRunIsolatesFailures(t *testing.T) {
	boom := errors.New("boom")
	exps := []experiments.Experiment{
		fakeExp("t00", noop),
		fakeExp("t01", func(rec *experiments.Recorder, cfg experiments.Config) error { return boom }),
		fakeExp("t02", func(rec *experiments.Recorder, cfg experiments.Config) error { panic("kaboom") }),
		fakeExp("t03", noop),
	}
	var outs []Outcome
	sum := Run(exps, Options{Jobs: 2, Seed: 1}, func(o Outcome) { outs = append(outs, o) })
	if sum.Passed != 2 || sum.Failed != 2 {
		t.Fatalf("summary %+v, want 2 passed / 2 failed", sum)
	}
	if !reflect.DeepEqual(sum.FailedIDs, []string{"t01", "t02"}) {
		t.Fatalf("FailedIDs %v", sum.FailedIDs)
	}
	if !errors.Is(outs[1].Err, boom) {
		t.Fatalf("t01 err = %v", outs[1].Err)
	}
	var pe *experiments.PanicError
	if !errors.As(outs[2].Err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("t02 err = %v, want PanicError(kaboom)", outs[2].Err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	// The failures still produced (partial) results for rendering.
	for i, o := range outs {
		if o.Result == nil {
			t.Fatalf("outcome %d has nil Result", i)
		}
	}
}

func TestRunDerivesIndependentSeeds(t *testing.T) {
	// Each experiment must see rng.Derive(root, id), independent of
	// which other experiments run.
	seen := map[string]uint64{}
	record := func(rec *experiments.Recorder, cfg experiments.Config) error {
		return nil
	}
	exps := []experiments.Experiment{fakeExp("t00", record), fakeExp("t01", record)}
	Run(exps, Options{Jobs: 1, Seed: 42}, func(o Outcome) {
		seen[o.Experiment.ID] = o.Result.Seed
	})
	for id, seed := range seen {
		if want := rng.Derive(42, id); seed != want {
			t.Errorf("%s ran with seed %d, want Derive(42,%q)=%d", id, seed, id, want)
		}
	}
	if seen["t00"] == seen["t01"] {
		t.Fatal("distinct experiments share a seed")
	}
	// Running a subset must not change the seed an experiment sees.
	var solo uint64
	Run(exps[1:], Options{Jobs: 1, Seed: 42}, func(o Outcome) { solo = o.Result.Seed })
	if solo != seen["t01"] {
		t.Fatalf("subset run changed t01's seed: %d vs %d", solo, seen["t01"])
	}
}

func TestRunDeterministicAcrossJobs(t *testing.T) {
	// Rendered text must not depend on the worker count.
	render := func(jobs int) []string {
		var texts []string
		exps := experiments.All()[:6]
		Run(exps, Options{Jobs: jobs, Seed: 42, Quick: true}, func(o Outcome) {
			if o.Err != nil {
				t.Fatalf("%s: %v", o.Experiment.ID, o.Err)
			}
			var b bytes.Buffer
			if err := experiments.RenderText(&b, o.Result); err != nil {
				t.Fatal(err)
			}
			texts = append(texts, b.String())
		})
		return texts
	}
	a := render(1)
	b := render(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rendered output differs between jobs=1 and jobs=8")
	}
}

func TestRunNilEmitAndStats(t *testing.T) {
	exps := []experiments.Experiment{fakeExp("t00", noop)}
	sum := Run(exps, Options{Seed: 1}, nil)
	if sum.Passed != 1 {
		t.Fatalf("summary %+v", sum)
	}
	var out Outcome
	Run(exps, Options{Jobs: 1, Seed: 1}, func(o Outcome) { out = o })
	if out.Elapsed < 0 {
		t.Fatalf("negative elapsed %v", out.Elapsed)
	}
}

// TestOutcomeStatus pins the one-word status vocabulary shared by the
// CLI stats line and the server's X-Resilience-Status header: cached,
// coalesced, degraded, and failed runs must all be distinguishable.
func TestOutcomeStatus(t *testing.T) {
	cases := []struct {
		name string
		out  Outcome
		want string
	}{
		{"fresh", Outcome{Attempts: 1}, "ok"},
		{"cached", Outcome{CacheHit: true}, "ok (cached)"},
		{"cached-mem", Outcome{CacheHit: true, CacheTier: "mem"}, "ok (cached mem)"},
		{"cached-fs", Outcome{CacheHit: true, CacheTier: "fs"}, "ok (cached fs)"},
		{"cached-peer", Outcome{CacheHit: true, CacheTier: "peer"}, "ok (cached peer)"},
		{"remote", Outcome{Remote: true}, "ok (proxied)"},
		{"remote-relays-owner", Outcome{Remote: true, RemoteStatus: "ok (degraded, 2 attempts)"}, "ok (degraded, 2 attempts)"},
		{"coalesced", Outcome{Coalesced: true}, "ok (coalesced)"},
		{"degraded", Outcome{Degraded: true, Attempts: 2}, "ok (degraded, 2 attempts)"},
		{"failed", Outcome{Err: errors.New("boom"), Attempts: 3}, "FAILED: boom"},
		// Precedence: an error outranks every ok-flavor; coalesced
		// outranks cached (a waiter never read the cache itself).
		{"failed-degraded", Outcome{Err: errors.New("boom"), Degraded: true}, "FAILED: boom"},
		{"coalesced-beats-cached", Outcome{Coalesced: true, CacheHit: true}, "ok (coalesced)"},
		{"coalesced-beats-remote", Outcome{Coalesced: true, Remote: true, RemoteStatus: "ok"}, "ok (coalesced)"},
		{"failed-remote", Outcome{Err: errors.New("boom"), Remote: true, RemoteStatus: "FAILED: boom"}, "FAILED: boom"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.out.Status(); got != tc.want {
				t.Fatalf("Status() = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestSummaryCountsCacheHits: a second Run over the same cache serves
// every experiment from it, and the summary tallies each hit so the
// stats line can report a warm suite.
func TestSummaryCountsCacheHits(t *testing.T) {
	cache := testCache(t)
	exps := []experiments.Experiment{fakeExp("t00", noop), fakeExp("t01", noop)}
	opts := Options{Jobs: 1, Seed: 42, Quick: true, Cache: cache}
	cold := Run(exps, opts, nil)
	if cold.CacheHits != 0 || cold.Coalesced != 0 {
		t.Fatalf("cold run CacheHits=%d Coalesced=%d, want 0/0", cold.CacheHits, cold.Coalesced)
	}
	var statuses []string
	warm := Run(exps, opts, func(o Outcome) { statuses = append(statuses, o.Status()) })
	if warm.CacheHits != len(exps) {
		t.Fatalf("warm run CacheHits=%d, want %d", warm.CacheHits, len(exps))
	}
	// The runner itself never coalesces (that is internal/server's job),
	// so a warm run reports cached, not coalesced.
	if warm.Coalesced != 0 {
		t.Fatalf("warm run Coalesced=%d, want 0", warm.Coalesced)
	}
	for _, s := range statuses {
		if s != "ok (cached fs)" {
			t.Fatalf("warm status %q, want ok (cached fs)", s)
		}
	}
}
