package runner

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"resilience/internal/experiments"
	"resilience/internal/faultinject"
)

// planHooks parses a fault-plan document and returns runner options
// pre-wired to it.
func planHooks(t *testing.T, doc string) Options {
	t.Helper()
	p, err := faultinject.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Jobs: 1, Seed: 1,
		Hooks:   p.HookFor,
		Retries: p.Retries,
		Backoff: p.Backoff(),
		Timeout: p.Timeout(),
	}
}

// TestRetryDegradationPaths walks the retry/timeout/degradation matrix:
// which faults recover, how many attempts they take, and what the
// rendered annotation says.
func TestRetryDegradationPaths(t *testing.T) {
	for _, tc := range []struct {
		name         string
		plan         string
		wantErr      bool
		wantAttempts int
		wantDegraded bool
		wantNote     string // substring of the rendered text, "" = no degraded note
	}{
		{
			name: "error on attempt 1, success on attempt 2",
			plan: `{"retries":2,"faults":[
				{"experiment":"t00","kind":"error","attempt":1,"message":"flaky"}]}`,
			wantAttempts: 2, wantDegraded: true,
			wantNote: "degraded: recovered on attempt 2 (1 retry)",
		},
		{
			name: "worker panic on attempts 1-2, success on attempt 3",
			plan: `{"retries":2,"backoffMs":1,"faults":[
				{"experiment":"t00","seam":"worker","kind":"panic","attempt":1},
				{"experiment":"t00","seam":"worker","kind":"panic","attempt":2}]}`,
			wantAttempts: 3, wantDegraded: true,
			wantNote: "degraded: recovered on attempt 3 (2 retries)",
		},
		{
			name: "timeout on attempt 1, success on attempt 2",
			plan: `{"retries":1,"timeoutMs":40,"faults":[
				{"experiment":"t00","kind":"delay","delayMs":400,"attempt":1}]}`,
			wantAttempts: 2, wantDegraded: true,
			wantNote: "degraded: recovered on attempt 2 (1 retry after timeout)",
		},
		{
			name: "error on every attempt exhausts retries",
			plan: `{"retries":2,"faults":[
				{"experiment":"t00","kind":"error","message":"hard down"}]}`,
			wantErr: true, wantAttempts: 3,
		},
		{
			name: "no retries preserves single-attempt failure",
			plan: `{"faults":[
				{"experiment":"t00","kind":"error","message":"one shot"}]}`,
			wantErr: true, wantAttempts: 1,
		},
		{
			name:         "unmatched experiment runs clean",
			plan:         `{"retries":2,"faults":[{"experiment":"zzz","kind":"panic"}]}`,
			wantAttempts: 1,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := planHooks(t, tc.plan)
			var out Outcome
			sum := Run([]experiments.Experiment{fakeExp("t00", noop)}, opts, func(o Outcome) { out = o })
			if (out.Err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", out.Err, tc.wantErr)
			}
			if out.Attempts != tc.wantAttempts {
				t.Fatalf("attempts = %d, want %d", out.Attempts, tc.wantAttempts)
			}
			if out.Degraded != tc.wantDegraded {
				t.Fatalf("degraded = %v, want %v", out.Degraded, tc.wantDegraded)
			}
			var b bytes.Buffer
			if err := experiments.RenderText(&b, out.Result); err != nil {
				t.Fatal(err)
			}
			if tc.wantNote != "" && !strings.Contains(b.String(), tc.wantNote) {
				t.Fatalf("rendered text missing %q:\n%s", tc.wantNote, b.String())
			}
			if tc.wantNote == "" && strings.Contains(b.String(), "degraded:") {
				t.Fatalf("unexpected degraded annotation:\n%s", b.String())
			}
			// Summary bookkeeping matches the outcome.
			if tc.wantDegraded && (sum.Degraded != 1 || sum.Passed != 1) {
				t.Fatalf("summary %+v, want 1 degraded pass", sum)
			}
			if tc.wantErr && sum.Failed != 1 {
				t.Fatalf("summary %+v, want 1 failure", sum)
			}
			if want := tc.wantAttempts - 1; sum.Retries != want {
				t.Fatalf("summary retries = %d, want %d", sum.Retries, want)
			}
		})
	}
}

func TestTimeoutProducesDeterministicError(t *testing.T) {
	opts := planHooks(t, `{"timeoutMs":30,"faults":[
		{"experiment":"t00","kind":"delay","delayMs":500}]}`)
	var out Outcome
	Run([]experiments.Experiment{fakeExp("t00", noop)}, opts, func(o Outcome) { out = o })
	var te *TimeoutError
	if !errors.As(out.Err, &te) || te.Limit != 30*time.Millisecond {
		t.Fatalf("err = %v, want TimeoutError(30ms)", out.Err)
	}
	if !out.TimedOut {
		t.Fatal("outcome not marked TimedOut")
	}
	// The rendered error depends only on the configured limit, never on
	// measured wall time, so faulted output stays reproducible.
	if want := "timeout: attempt exceeded 30ms"; out.Result.Error != want {
		t.Fatalf("result error %q, want %q", out.Result.Error, want)
	}
}

func TestRecoveryTriangle(t *testing.T) {
	opts := planHooks(t, `{"retries":1,"faults":[
		{"experiment":"t00","kind":"delay","delayMs":25,"attempt":1},
		{"experiment":"t00","kind":"error","attempt":1}]}`)
	var out Outcome
	sum := Run([]experiments.Experiment{fakeExp("t00", noop)}, opts, func(o Outcome) { out = o })
	rec := out.Recovery
	if rec == nil || !rec.Recovered || rec.FailedAttempts != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
	// The failed attempt was delayed ~25ms with quality 0, so the
	// triangle area is at least 100 · 0.025 quality-percent-seconds and
	// the base covers the whole episode.
	if rec.Loss < 100*0.025 {
		t.Fatalf("loss %.3f, want >= 2.5", rec.Loss)
	}
	if rec.TimeToRecover < 25*time.Millisecond {
		t.Fatalf("time-to-recover %v too short", rec.TimeToRecover)
	}
	if sum.RecoveryLoss != rec.Loss || sum.RecoveryTime != rec.TimeToRecover {
		t.Fatalf("summary recovery (%v, %.3f) does not aggregate the outcome (%v, %.3f)",
			sum.RecoveryTime, sum.RecoveryLoss, rec.TimeToRecover, rec.Loss)
	}
}

// TestPanicUnderParallelismRendersRest is the satellite scenario: one
// experiment panics on every attempt at -jobs 8 and the suite still
// renders the other N-1 results.
func TestPanicUnderParallelismRendersRest(t *testing.T) {
	p, err := faultinject.Parse([]byte(`{"retries":1,"faults":[
		{"experiment":"t03","kind":"panic","message":"unrecoverable"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var exps []experiments.Experiment
	for _, id := range []string{"t00", "t01", "t02", "t03", "t04", "t05", "t06", "t07"} {
		exps = append(exps, fakeExp(id, noop))
	}
	var rendered []string
	sum := Run(exps, Options{Jobs: 8, Seed: 1, Hooks: p.HookFor, Retries: p.Retries}, func(o Outcome) {
		var b bytes.Buffer
		if err := experiments.RenderText(&b, o.Result); err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, b.String())
	})
	if sum.Passed != 7 || sum.Failed != 1 || len(sum.FailedIDs) != 1 || sum.FailedIDs[0] != "t03" {
		t.Fatalf("summary %+v", sum)
	}
	if len(rendered) != 8 {
		t.Fatalf("rendered %d results, want 8", len(rendered))
	}
	if !strings.Contains(rendered[3], "ERROR: panic: faultinject: unrecoverable") {
		t.Fatalf("t03 rendering missing the panic error:\n%s", rendered[3])
	}
	for i, text := range rendered {
		if i != 3 && !strings.Contains(text, "ok") {
			t.Fatalf("experiment %d did not render its note:\n%s", i, text)
		}
	}
}

// TestRetryBackoffIsSeedDerived checks the backoff schedule reproduces:
// same seed ⇒ same jitter, different seed ⇒ (almost surely) different.
func TestRetryBackoffIsSeedDerived(t *testing.T) {
	var calls atomic.Int32
	flaky := func(rec *experiments.Recorder, cfg experiments.Config) error {
		if calls.Add(1)%2 == 1 {
			return errors.New("first attempt fails")
		}
		rec.Notef("ok")
		return nil
	}
	run := func(seed uint64) time.Duration {
		var out Outcome
		Run([]experiments.Experiment{fakeExp("t00", flaky)},
			Options{Jobs: 1, Seed: seed, Retries: 1, Backoff: 10 * time.Millisecond},
			func(o Outcome) { out = o })
		if out.Err != nil || out.Attempts != 2 {
			t.Fatalf("outcome err=%v attempts=%d", out.Err, out.Attempts)
		}
		return out.Elapsed
	}
	// The sleep is Backoff + jitter·Backoff with jitter ∈ [0,1) drawn
	// from Derive(seed, id+"/retry"): bounded below by the base and
	// above by twice the base (plus scheduling noise).
	if e := run(1); e < 10*time.Millisecond {
		t.Fatalf("elapsed %v shorter than the base backoff", e)
	}
}

func TestFaultedSuiteStillDeterministicAcrossJobs(t *testing.T) {
	// The flagship guarantee: a faulted run of real experiments renders
	// byte-identically at any worker count.
	p, err := faultinject.Parse([]byte(`{"retries":1,"faults":[
		{"experiment":"e01","kind":"error","attempt":1},
		{"experiment":"e02","seam":"dcsp/generate","kind":"rng","skips":13}]}`))
	if err != nil {
		t.Fatal(err)
	}
	render := func(jobs int) string {
		var b bytes.Buffer
		exps := experiments.All()[:6]
		Run(exps, Options{Jobs: jobs, Seed: 42, Quick: true, Hooks: p.HookFor, Retries: p.Retries},
			func(o Outcome) {
				if o.Err != nil {
					t.Fatalf("%s: %v", o.Experiment.ID, o.Err)
				}
				if err := experiments.RenderText(&b, o.Result); err != nil {
					t.Fatal(err)
				}
			})
		return b.String()
	}
	if render(1) != render(8) {
		t.Fatal("faulted output differs between jobs=1 and jobs=8")
	}
}
