package runner

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"resilience/internal/experiments"
	"resilience/internal/rescache"
	"resilience/internal/rescache/fsstore"
)

// testCache builds a filesystem-backed cache in a temp dir, the
// construction rescache.New(store) callers use since the Store split.
func testCache(t *testing.T) *rescache.Cache {
	t.Helper()
	st, err := fsstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return rescache.New(st)
}

// countingExp returns an experiment that counts how many times its body
// actually runs, so tests can distinguish cache hits from recomputes.
func countingExp(id string, calls *atomic.Int64) experiments.Experiment {
	return fakeExp(id, func(rec *experiments.Recorder, cfg experiments.Config) error {
		calls.Add(1)
		rec.Table("t", "col").Row(experiments.D(1))
		return nil
	})
}

func TestCacheShortCircuitsSecondRun(t *testing.T) {
	cache := testCache(t)
	var calls atomic.Int64
	exps := []experiments.Experiment{countingExp("t01", &calls), countingExp("t02", &calls)}
	opts := Options{Jobs: 1, Seed: 42, Cache: cache}

	var cold []Outcome
	Run(exps, opts, func(o Outcome) { cold = append(cold, o) })
	if calls.Load() != 2 {
		t.Fatalf("cold run executed %d bodies, want 2", calls.Load())
	}
	if cache.Stores() != 2 {
		t.Fatalf("cold run stored %d entries, want 2", cache.Stores())
	}
	for _, o := range cold {
		if o.CacheHit {
			t.Fatalf("%s: cold run must not hit", o.Experiment.ID)
		}
	}

	var warm []Outcome
	Run(exps, opts, func(o Outcome) { warm = append(warm, o) })
	if calls.Load() != 2 {
		t.Fatalf("warm run re-executed bodies (%d total calls)", calls.Load())
	}
	for i, o := range warm {
		if !o.CacheHit || o.Attempts != 0 || o.Err != nil {
			t.Fatalf("%s: want clean cache hit, got %+v", o.Experiment.ID, o)
		}
		if o.Result.ID != cold[i].Result.ID || len(o.Result.Tables) != len(cold[i].Result.Tables) {
			t.Fatalf("%s: cached result differs from computed one", o.Experiment.ID)
		}
	}
}

func TestCacheKeyComponentsForceRecompute(t *testing.T) {
	cache := testCache(t)
	var calls atomic.Int64
	exps := []experiments.Experiment{countingExp("t01", &calls)}
	base := Options{Jobs: 1, Seed: 42, Cache: cache}
	Run(exps, base, nil)
	for name, opts := range map[string]Options{
		"seed change": {Jobs: 1, Seed: 43, Cache: cache},
		"quick flip":  {Jobs: 1, Seed: 42, Quick: true, Cache: cache},
		"plan edit":   {Jobs: 1, Seed: 42, Cache: cache, PlanHash: "deadbeef"},
	} {
		before := calls.Load()
		Run(exps, opts, nil)
		if calls.Load() != before+1 {
			t.Errorf("%s must force a recompute", name)
		}
	}
	before := calls.Load()
	Run(exps, base, nil)
	if calls.Load() != before {
		t.Error("unchanged options must hit the cache")
	}
}

func TestFailedAndRetriedOutcomesNotCached(t *testing.T) {
	cache := testCache(t)
	var calls atomic.Int64
	failing := fakeExp("tfail", func(rec *experiments.Recorder, cfg experiments.Config) error {
		calls.Add(1)
		return errors.New("boom")
	})
	// Fails once, then succeeds: a degraded outcome, which must also be
	// recomputed (its annotation depends on the retry schedule).
	var flaky atomic.Int64
	flakyExp := fakeExp("tflaky", func(rec *experiments.Recorder, cfg experiments.Config) error {
		if flaky.Add(1) == 1 {
			return errors.New("first attempt fails")
		}
		rec.Table("t", "col").Row(experiments.D(1))
		return nil
	})
	opts := Options{Jobs: 1, Seed: 42, Cache: cache, Retries: 1, Backoff: time.Millisecond}
	Run([]experiments.Experiment{failing, flakyExp}, opts, nil)
	if cache.Stores() != 0 {
		t.Fatalf("failed/degraded outcomes stored %d entries, want 0", cache.Stores())
	}
}

func TestNilCacheUnchangedBehaviour(t *testing.T) {
	var calls atomic.Int64
	exps := []experiments.Experiment{countingExp("t01", &calls)}
	Run(exps, Options{Jobs: 1, Seed: 42}, nil)
	Run(exps, Options{Jobs: 1, Seed: 42}, nil)
	if calls.Load() != 2 {
		t.Fatalf("cacheless runs executed %d bodies, want 2", calls.Load())
	}
}

func TestAllocBytesPerAttempt(t *testing.T) {
	// An experiment that allocates ~8 MiB per attempt: AllocBytes must
	// reflect the attempts' allocations, not wall-clock bystanders.
	exp := fakeExp("talloc", func(rec *experiments.Recorder, cfg experiments.Config) error {
		buf := make([]byte, 8<<20)
		buf[0] = 1
		rec.Table("t", "col").Row(experiments.D(int(buf[0])))
		return nil
	})
	var got Outcome
	Run([]experiments.Experiment{exp}, Options{Jobs: 1, Seed: 42}, func(o Outcome) { got = o })
	if got.AllocBytes < 8<<20 {
		t.Fatalf("AllocBytes = %d, want at least the attempt's 8 MiB", got.AllocBytes)
	}
}
