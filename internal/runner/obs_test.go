package runner

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"resilience/internal/experiments"
	"resilience/internal/obs"
)

// TestTimeoutAttemptDrains is the leak regression: a timed-out attempt
// must observe its cancel signal and exit instead of running forever
// alongside the retry. On the pre-cancellation runner the spinning body
// below never returns (Strike never fails), so this test hangs at the
// drain wait and fails by deadline.
func TestTimeoutAttemptDrains(t *testing.T) {
	var exited atomic.Bool
	spin := func(rec *experiments.Recorder, cfg experiments.Config) error {
		for {
			if err := cfg.Strike("tick", nil); err != nil {
				exited.Store(true)
				return err
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	o := obs.New()
	var out Outcome
	Run([]experiments.Experiment{fakeExp("t00", spin)},
		Options{Jobs: 1, Seed: 1, Timeout: 20 * time.Millisecond, Obs: o},
		func(oc Outcome) { out = oc })
	var te *TimeoutError
	if !errors.As(out.Err, &te) || !out.TimedOut {
		t.Fatalf("outcome err=%v timedOut=%v, want timeout", out.Err, out.TimedOut)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !exited.Load() {
		if time.Now().After(deadline) {
			t.Fatal("abandoned attempt never observed its cancel signal (goroutine leak)")
		}
		time.Sleep(time.Millisecond)
	}
	// The obs layer accounts for the drain: leaked returns to zero.
	for {
		abandoned := o.Gauge("runner.goroutines.abandoned").Value()
		drained := o.Gauge("runner.goroutines.drained").Value()
		leaked := o.Gauge("runner.goroutines.leaked").Value()
		if abandoned == 1 && drained == 1 && leaked == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine accounting never settled: abandoned=%v drained=%v leaked=%v",
				abandoned, drained, leaked)
		}
		time.Sleep(time.Millisecond)
	}
	if got := o.Counter("runner.timeouts").Value(); got != 1 {
		t.Fatalf("runner.timeouts = %d, want 1", got)
	}
}

// TestBackoffReleasesWorkerSlot: a retrying experiment must not hold a
// worker slot while it sleeps its backoff. With one slot, one flaky
// experiment (long backoff) and three healthy ones, the healthy bodies
// must all complete during the flaky experiment's sleep — on the old
// runner they could only start after it, failing the bound below.
func TestBackoffReleasesWorkerSlot(t *testing.T) {
	const backoff = 300 * time.Millisecond
	start := time.Now()
	var flakyCalls atomic.Int32
	flaky := fakeExp("t00", func(rec *experiments.Recorder, cfg experiments.Config) error {
		if flakyCalls.Add(1) == 1 {
			return errors.New("first attempt fails")
		}
		rec.Notef("ok")
		return nil
	})
	healthyDone := make(chan time.Duration, 3)
	healthy := func(rec *experiments.Recorder, cfg experiments.Config) error {
		healthyDone <- time.Since(start)
		rec.Notef("ok")
		return nil
	}
	exps := []experiments.Experiment{flaky}
	for i := 1; i <= 3; i++ {
		exps = append(exps, fakeExp(fmt.Sprintf("t%02d", i), healthy))
	}
	sum := Run(exps, Options{Jobs: 1, Seed: 1, Retries: 1, Backoff: backoff}, nil)
	if sum.Passed != 4 || sum.Degraded != 1 {
		t.Fatalf("summary %+v, want 4 passed with 1 degraded", sum)
	}
	close(healthyDone)
	var done []time.Duration
	for d := range healthyDone {
		done = append(done, d)
	}
	if len(done) != 3 {
		t.Fatalf("%d healthy experiments ran, want 3", len(done))
	}
	for _, d := range done {
		if d >= backoff {
			t.Fatalf("healthy experiment finished at %v, after the flaky backoff (%v): "+
				"the sleep held the worker slot", d, backoff)
		}
	}
}

// TestRunZeroExperiments: the empty suite neither emits nor panics and
// reports an all-zero summary.
func TestRunZeroExperiments(t *testing.T) {
	emitted := 0
	sum := Run(nil, Options{Jobs: 4, Seed: 1}, func(Outcome) { emitted++ })
	if emitted != 0 {
		t.Fatalf("emit called %d times for an empty suite", emitted)
	}
	if sum.Total != 0 || sum.Passed != 0 || sum.Failed != 0 || sum.Degraded != 0 || sum.Retries != 0 {
		t.Fatalf("summary %+v, want zeros", sum)
	}
	if sum.FailedIDs != nil || sum.DegradedIDs != nil {
		t.Fatalf("summary carries IDs for an empty suite: %+v", sum)
	}
}

// TestRunAllFailedSuite: every experiment failing is accounted exactly,
// with no pass/degraded leakage.
func TestRunAllFailedSuite(t *testing.T) {
	boom := errors.New("down")
	var exps []experiments.Experiment
	var want []string
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("t%02d", i)
		want = append(want, id)
		exps = append(exps, fakeExp(id, func(rec *experiments.Recorder, cfg experiments.Config) error {
			return boom
		}))
	}
	sum := Run(exps, Options{Jobs: 2, Seed: 1}, nil)
	if sum.Total != 5 || sum.Passed != 0 || sum.Failed != 5 || sum.Degraded != 0 {
		t.Fatalf("summary %+v, want 5 failures", sum)
	}
	if !reflect.DeepEqual(sum.FailedIDs, want) {
		t.Fatalf("FailedIDs %v, want %v", sum.FailedIDs, want)
	}
}

// TestTimeoutOnFinalAttempt: when the last attempt times out, the
// outcome keeps TimedOut, the recovery triangle reports no recovery,
// and the rendered result carries the deterministic timeout error.
func TestTimeoutOnFinalAttempt(t *testing.T) {
	opts := planHooks(t, `{"retries":1,"timeoutMs":30,"faults":[
		{"experiment":"t00","kind":"delay","delayMs":400}]}`)
	var out Outcome
	sum := Run([]experiments.Experiment{fakeExp("t00", noop)}, opts, func(o Outcome) { out = o })
	if !out.TimedOut || out.Attempts != 2 {
		t.Fatalf("timedOut=%v attempts=%d, want timeout on attempt 2", out.TimedOut, out.Attempts)
	}
	if out.Recovery == nil || out.Recovery.Recovered || out.Recovery.FailedAttempts != 2 {
		t.Fatalf("recovery %+v, want unrecovered after 2 failed attempts", out.Recovery)
	}
	if want := "timeout: attempt exceeded 30ms"; out.Result.Error != want {
		t.Fatalf("result error %q, want %q", out.Result.Error, want)
	}
	if sum.Failed != 1 || sum.Degraded != 0 || sum.Retries != 1 {
		t.Fatalf("summary %+v, want 1 failed with 1 retry", sum)
	}
	if sum.RecoveryTime != out.Recovery.TimeToRecover || sum.RecoveryLoss != out.Recovery.Loss {
		t.Fatalf("summary recovery (%v, %v) does not match outcome (%v, %v)",
			sum.RecoveryTime, sum.RecoveryLoss, out.Recovery.TimeToRecover, out.Recovery.Loss)
	}
}

// TestRunCountersDeterministic: the deterministic counter section must
// not depend on the worker count.
func TestRunCountersDeterministic(t *testing.T) {
	counters := func(jobs int) map[string]int64 {
		o := obs.New()
		opts := planHooks(t, `{"retries":1,"faults":[
			{"experiment":"t01","kind":"error","attempt":1}]}`)
		opts.Jobs = jobs
		opts.Obs = o
		var exps []experiments.Experiment
		for i := 0; i < 6; i++ {
			exps = append(exps, fakeExp(fmt.Sprintf("t%02d", i), noop))
		}
		Run(exps, opts, nil)
		return o.Metrics.Snapshot().Counters
	}
	a, b := counters(1), counters(6)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("counters differ between jobs=1 and jobs=6:\n%v\n%v", a, b)
	}
	for name, want := range map[string]int64{
		"runner.experiments":  6,
		"runner.attempts":     7,
		"runner.retries":      1,
		"runner.degraded":     1,
		"runner.passed":       6,
		"runner.failed":       0,
		"runner.seam.worker":  7,
		"faultinject.strikes": 0, // plan not wired through SetObserver here
	} {
		if a[name] != want {
			t.Errorf("counter %s = %d, want %d", name, a[name], want)
		}
	}
	if _, ok := a["runner.timeouts"]; !ok {
		t.Error("runner.timeouts missing from the counter schema")
	}
}

// TestRunSpansCoverHierarchy: the trace holds suite → experiment →
// attempt spans with seam events.
func TestRunSpansCoverHierarchy(t *testing.T) {
	o := obs.New()
	exps := []experiments.Experiment{fakeExp("t00", noop), fakeExp("t01", noop)}
	Run(exps, Options{Jobs: 2, Seed: 1, Obs: o}, nil)
	spans := o.Trace.Snapshot()
	kinds := map[string]int{}
	for _, s := range spans {
		kinds[s.Kind]++
		if s.DurationUs < 0 {
			t.Errorf("span %q never ended", s.Name)
		}
	}
	if kinds["suite"] != 1 || kinds["experiment"] != 2 || kinds["attempt"] != 2 {
		t.Fatalf("span kinds %v, want 1 suite / 2 experiments / 2 attempts", kinds)
	}
	var sawSeam bool
	for _, s := range spans {
		for _, e := range s.Events {
			if strings.HasPrefix(e.Name, "seam:") {
				sawSeam = true
			}
		}
	}
	if !sawSeam {
		t.Fatal("no seam events recorded on attempt spans")
	}
}
