// Package belief implements the uncertainty reasoning the paper calls for
// in §4.3: k-maintainability "requires us to know in advance all possible
// events, some of which could be totally unexpected. … We, therefore,
// expect that reasoning techniques dealing with various uncertainty of a
// system model [Chan & Darwiche; Sakama & Inoue] be a promising tool."
//
// A Posterior maintains Bayesian beliefs over competing shock-class
// hypotheses (e.g. "damage sizes are Pareto with α = 1.1 / 1.5 / 2 / 3"),
// updated from observed shock magnitudes — including soft (virtual)
// evidence in Pearl's sense, following Chan & Darwiche's treatment of
// revision under uncertain evidence. The predictive tail of the mixture
// then answers the design question the paper's spacecraft example leaves
// open: how large a repair capability k covers the next shock with
// probability 1 − ε, when the event distribution itself is uncertain?
package belief

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Hypothesis is one candidate shock-class model.
type Hypothesis struct {
	// Name identifies the hypothesis in reports.
	Name string
	// Prior is the prior probability mass (positive; normalized at
	// construction).
	Prior float64
	// LogLik returns the log-likelihood of one observed shock magnitude.
	// It may return -Inf for impossible observations.
	LogLik func(x float64) float64
	// Tail returns P(X > t) under the hypothesis.
	Tail func(t float64) float64
}

// Posterior is a Bayesian posterior over hypotheses.
type Posterior struct {
	hyps []Hypothesis
	logw []float64
	obs  int
}

// NewPosterior validates the hypotheses and starts from their priors.
func NewPosterior(hyps []Hypothesis) (*Posterior, error) {
	if len(hyps) == 0 {
		return nil, errors.New("belief: no hypotheses")
	}
	p := &Posterior{hyps: make([]Hypothesis, len(hyps)), logw: make([]float64, len(hyps))}
	copy(p.hyps, hyps)
	for i, h := range hyps {
		if h.Prior <= 0 {
			return nil, fmt.Errorf("belief: hypothesis %q needs positive prior", h.Name)
		}
		if h.LogLik == nil || h.Tail == nil {
			return nil, fmt.Errorf("belief: hypothesis %q needs LogLik and Tail", h.Name)
		}
		p.logw[i] = math.Log(h.Prior)
	}
	return p, nil
}

// Observations returns how many updates have been applied.
func (p *Posterior) Observations() int { return p.obs }

// Observe applies one hard observation (an exactly measured shock
// magnitude).
func (p *Posterior) Observe(x float64) {
	for i, h := range p.hyps {
		p.logw[i] += h.LogLik(x)
	}
	p.obs++
	p.renormalize()
}

// ObserveVirtual applies Pearl-style virtual evidence: lik[i] is the
// likelihood of the (uncertain) evidence under hypothesis i. This is the
// Chan–Darwiche setting where the evidence itself is unreliable — e.g. a
// damaged sensor reporting "the shock looked big".
func (p *Posterior) ObserveVirtual(lik []float64) error {
	if len(lik) != len(p.hyps) {
		return fmt.Errorf("belief: likelihood vector length %d != %d hypotheses", len(lik), len(p.hyps))
	}
	for _, l := range lik {
		if l < 0 {
			return errors.New("belief: negative likelihood")
		}
	}
	for i, l := range lik {
		if l == 0 {
			p.logw[i] = math.Inf(-1)
		} else {
			p.logw[i] += math.Log(l)
		}
	}
	p.obs++
	p.renormalize()
	return nil
}

// renormalize keeps log-weights from drifting to -Inf by subtracting the
// maximum (the normalized weights are unchanged).
func (p *Posterior) renormalize() {
	maxw := math.Inf(-1)
	for _, w := range p.logw {
		if w > maxw {
			maxw = w
		}
	}
	if math.IsInf(maxw, -1) {
		return // all hypotheses ruled out; Weights handles this
	}
	for i := range p.logw {
		p.logw[i] -= maxw
	}
}

// Weights returns the normalized posterior probabilities. If every
// hypothesis has been ruled out it returns the uniform distribution
// (total ignorance).
func (p *Posterior) Weights() []float64 {
	out := make([]float64, len(p.logw))
	var total float64
	for i, w := range p.logw {
		out[i] = math.Exp(w)
		total += out[i]
	}
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// MAP returns the maximum-a-posteriori hypothesis and its probability.
func (p *Posterior) MAP() (Hypothesis, float64) {
	weights := p.Weights()
	best := 0
	for i, w := range weights {
		if w > weights[best] {
			best = i
		}
	}
	return p.hyps[best], weights[best]
}

// PredictiveTail returns P(next shock > t) under the posterior mixture —
// the quantity that sizes a defense against an uncertain event class.
func (p *Posterior) PredictiveTail(t float64) float64 {
	weights := p.Weights()
	var tail float64
	for i, h := range p.hyps {
		tail += weights[i] * h.Tail(t)
	}
	return tail
}

// CoverageLevel returns the smallest candidate level t with
// PredictiveTail(t) <= eps — e.g. the repair capability k that covers the
// next shock with probability 1−eps. Candidates are tried in ascending
// order; an error is returned if none suffices.
func (p *Posterior) CoverageLevel(eps float64, candidates []float64) (float64, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("belief: eps %v out of (0,1)", eps)
	}
	if len(candidates) == 0 {
		return 0, errors.New("belief: no candidate levels")
	}
	sorted := append([]float64(nil), candidates...)
	sort.Float64s(sorted)
	for _, t := range sorted {
		if p.PredictiveTail(t) <= eps {
			return t, nil
		}
	}
	return 0, fmt.Errorf("belief: no candidate achieves tail <= %v (best %v)",
		eps, p.PredictiveTail(sorted[len(sorted)-1]))
}

// ParetoHypothesis builds a Pareto(xm, alpha) shock-class hypothesis.
func ParetoHypothesis(name string, prior, xm, alpha float64) Hypothesis {
	return Hypothesis{
		Name:  name,
		Prior: prior,
		LogLik: func(x float64) float64 {
			if x < xm {
				return math.Inf(-1)
			}
			return math.Log(alpha) + alpha*math.Log(xm) - (alpha+1)*math.Log(x)
		},
		Tail: func(t float64) float64 {
			if t <= xm {
				return 1
			}
			return math.Pow(xm/t, alpha)
		},
	}
}

// ExponentialHypothesis builds an Exp(rate) shock-class hypothesis — the
// thin-tailed alternative.
func ExponentialHypothesis(name string, prior, rate float64) Hypothesis {
	return Hypothesis{
		Name:  name,
		Prior: prior,
		LogLik: func(x float64) float64 {
			if x < 0 {
				return math.Inf(-1)
			}
			return math.Log(rate) - rate*x
		},
		Tail: func(t float64) float64 {
			if t <= 0 {
				return 1
			}
			return math.Exp(-rate * t)
		},
	}
}
