package belief

import (
	"math"
	"testing"

	"resilience/internal/rng"
)

func paretoFamily() []Hypothesis {
	return []Hypothesis{
		ParetoHypothesis("alpha=1.1", 1, 1, 1.1),
		ParetoHypothesis("alpha=1.5", 1, 1, 1.5),
		ParetoHypothesis("alpha=2.0", 1, 1, 2.0),
		ParetoHypothesis("alpha=3.0", 1, 1, 3.0),
	}
}

func TestNewPosteriorValidation(t *testing.T) {
	if _, err := NewPosterior(nil); err == nil {
		t.Error("want error for no hypotheses")
	}
	bad := []Hypothesis{{Name: "x", Prior: 0, LogLik: func(float64) float64 { return 0 }, Tail: func(float64) float64 { return 0 }}}
	if _, err := NewPosterior(bad); err == nil {
		t.Error("want error for zero prior")
	}
	missing := []Hypothesis{{Name: "x", Prior: 1}}
	if _, err := NewPosterior(missing); err == nil {
		t.Error("want error for nil functions")
	}
}

func TestPriorWeights(t *testing.T) {
	p, err := NewPosterior([]Hypothesis{
		ParetoHypothesis("a", 3, 1, 2),
		ParetoHypothesis("b", 1, 1, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	w := p.Weights()
	if math.Abs(w[0]-0.75) > 1e-12 || math.Abs(w[1]-0.25) > 1e-12 {
		t.Fatalf("prior weights = %v", w)
	}
}

func TestPosteriorConcentratesOnTruth(t *testing.T) {
	// Data from Pareto(1, 1.5); the posterior over {1.1, 1.5, 2, 3}
	// must concentrate on alpha=1.5.
	r := rng.New(1)
	p, err := NewPosterior(paretoFamily())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p.Observe(r.Pareto(1, 1.5))
	}
	hyp, prob := p.MAP()
	if hyp.Name != "alpha=1.5" {
		t.Fatalf("MAP = %s (%v)", hyp.Name, prob)
	}
	if prob < 0.9 {
		t.Fatalf("MAP probability = %v, want concentrated", prob)
	}
	if p.Observations() != 500 {
		t.Fatalf("observations = %d", p.Observations())
	}
}

func TestImpossibleObservationRulesOut(t *testing.T) {
	p, err := NewPosterior([]Hypothesis{
		ParetoHypothesis("pareto", 1, 2, 2), // support [2, inf)
		ExponentialHypothesis("exp", 1, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(1.0) // below the Pareto scale: impossible under it
	w := p.Weights()
	if w[0] != 0 {
		t.Fatalf("ruled-out hypothesis weight = %v", w[0])
	}
	if math.Abs(w[1]-1) > 1e-12 {
		t.Fatalf("surviving hypothesis weight = %v", w[1])
	}
}

func TestAllRuledOutFallsBackToUniform(t *testing.T) {
	p, err := NewPosterior([]Hypothesis{
		ParetoHypothesis("a", 1, 5, 2),
		ParetoHypothesis("b", 1, 5, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Observe(1.0) // impossible under both
	w := p.Weights()
	if math.Abs(w[0]-0.5) > 1e-12 || math.Abs(w[1]-0.5) > 1e-12 {
		t.Fatalf("weights = %v, want uniform fallback", w)
	}
}

func TestObserveVirtual(t *testing.T) {
	p, err := NewPosterior([]Hypothesis{
		ParetoHypothesis("a", 1, 1, 2),
		ParetoHypothesis("b", 1, 1, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sensor says "probably class a": likelihood 0.9 vs 0.3.
	if err := p.ObserveVirtual([]float64{0.9, 0.3}); err != nil {
		t.Fatal(err)
	}
	w := p.Weights()
	if math.Abs(w[0]-0.75) > 1e-9 {
		t.Fatalf("virtual evidence weights = %v, want 0.75/0.25", w)
	}
	if err := p.ObserveVirtual([]float64{1}); err == nil {
		t.Error("want error for wrong-length likelihood")
	}
	if err := p.ObserveVirtual([]float64{-1, 1}); err == nil {
		t.Error("want error for negative likelihood")
	}
	// Zero likelihood rules out.
	if err := p.ObserveVirtual([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	w = p.Weights()
	if w[1] != 0 {
		t.Fatalf("zero-likelihood hypothesis weight = %v", w[1])
	}
}

func TestPredictiveTailMixesHypotheses(t *testing.T) {
	p, err := NewPosterior([]Hypothesis{
		ParetoHypothesis("heavy", 1, 1, 1.1),
		ParetoHypothesis("light", 1, 1, 3.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	// At the prior (50/50), the tail at t=10 mixes the two.
	want := 0.5*math.Pow(0.1, 1.1) + 0.5*math.Pow(0.1, 3.0)
	if got := p.PredictiveTail(10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tail = %v, want %v", got, want)
	}
	if p.PredictiveTail(0.5) != 1 {
		t.Fatal("tail below scale should be 1")
	}
}

func TestCoverageLevel(t *testing.T) {
	p, err := NewPosterior([]Hypothesis{ParetoHypothesis("a", 1, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	// P(X > t) = t^-2; tail <= 0.01 needs t >= 10.
	lvl, err := p.CoverageLevel(0.0101, []float64{50, 5, 10, 2}) // unsorted on purpose
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 10 {
		t.Fatalf("coverage level = %v, want 10", lvl)
	}
	if _, err := p.CoverageLevel(0.01, []float64{2, 3}); err == nil {
		t.Error("want error when no candidate suffices")
	}
	if _, err := p.CoverageLevel(0, []float64{10}); err == nil {
		t.Error("want error for eps=0")
	}
	if _, err := p.CoverageLevel(0.1, nil); err == nil {
		t.Error("want error for no candidates")
	}
}

func TestCoverageAdaptsWithEvidence(t *testing.T) {
	// The design lesson of §3.4.6: before evidence, the mixture's heavy
	// hypothesis forces a high defense; after thin-tailed data, the
	// required level drops.
	r := rng.New(2)
	p, err := NewPosterior([]Hypothesis{
		ParetoHypothesis("heavy", 1, 1, 1.1),
		ParetoHypothesis("light", 1, 1, 3.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	candidates := []float64{2, 5, 10, 20, 50, 100, 500}
	before, err := p.CoverageLevel(0.01, candidates)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		p.Observe(r.Pareto(1, 3.0))
	}
	after, err := p.CoverageLevel(0.01, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("coverage should drop with thin-tailed evidence: %v -> %v", before, after)
	}
}

func TestExponentialHypothesis(t *testing.T) {
	h := ExponentialHypothesis("e", 1, 2)
	if !math.IsInf(h.LogLik(-1), -1) {
		t.Fatal("negative observation should be impossible")
	}
	if h.Tail(0) != 1 || h.Tail(-1) != 1 {
		t.Fatal("tail at/below 0 should be 1")
	}
	want := math.Exp(-2 * 3)
	if math.Abs(h.Tail(3)-want) > 1e-12 {
		t.Fatalf("tail(3) = %v, want %v", h.Tail(3), want)
	}
}

func TestLongStreamNumericallyStable(t *testing.T) {
	// 100k observations must not underflow the weights thanks to
	// renormalization.
	r := rng.New(3)
	p, err := NewPosterior(paretoFamily())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		p.Observe(r.Pareto(1, 2.0))
	}
	hyp, prob := p.MAP()
	if hyp.Name != "alpha=2.0" || math.IsNaN(prob) || prob < 0.99 {
		t.Fatalf("MAP = %s %v", hyp.Name, prob)
	}
}
