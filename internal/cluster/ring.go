// Package cluster implements the consistent-hash ring the sharded serve
// fleet coordinates on. Every node builds the ring from the same member
// list (its own advertised URL plus its peers'), so all nodes agree —
// with no coordination traffic — on the single owner of every cache
// digest. Requests for a digest funnel to its owner, where the
// singleflight coalescer collapses the fleet-wide thundering herd onto
// one computation; the owner's store is the digest's durable home.
//
// Virtual nodes (replicas of each member on the ring) smooth the
// distribution, and consistent hashing keeps reassignment minimal: when
// a member leaves, only the digests it owned move, everything else
// stays put — the paper's redundancy strategy (§3.1) applied to the
// serving fleet itself.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member used when the
// caller does not choose. 64 points per member keeps the expected
// imbalance across a handful of nodes within a few percent.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring. Construct with New; a nil
// or empty ring owns nothing.
type Ring struct {
	members []string
	points  []point
}

type point struct {
	hash   uint64
	member string
}

// New builds a ring from members (deduplicated; order does not matter —
// two nodes given the same set in any order build identical rings).
// replicas <= 0 means DefaultReplicas.
func New(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]point, 0, len(uniq)*replicas)}
	for _, m := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{hash: hash(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly unlikely) tie-break on member so
		// every node still agrees on the ordering.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owner returns the member that owns key (the first ring point at or
// after the key's hash, wrapping), or "" for an empty ring. Keys are
// typically rescache digests, but any string shards consistently.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the ring's member list, sorted and deduplicated.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}

// hash maps a string onto the ring: the first 8 bytes of its sha256,
// big-endian. sha256 keeps placement uniform and platform-independent.
func hash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
