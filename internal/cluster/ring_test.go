package cluster_test

import (
	"fmt"
	"reflect"
	"testing"

	"resilience/internal/cluster"
)

var members = []string{
	"http://node-a:8080",
	"http://node-b:8080",
	"http://node-c:8080",
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("digest-%04d", i)
	}
	return out
}

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	a := cluster.New(members, 0)
	// Same set, reversed, with a duplicate and an empty string thrown in:
	// every node must build the identical ring from its own view.
	b := cluster.New([]string{members[2], "", members[1], members[0], members[1]}, 0)
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("Members differ: %v vs %v", a.Members(), b.Members())
	}
	for _, k := range keys(500) {
		ao, bo := a.Owner(k), b.Owner(k)
		if ao != bo {
			t.Fatalf("Owner(%q) disagrees across construction orders: %q vs %q", k, ao, bo)
		}
		if ao != a.Owner(k) {
			t.Fatalf("Owner(%q) not deterministic", k)
		}
	}
}

func TestOwnerDistribution(t *testing.T) {
	r := cluster.New(members, 0)
	counts := map[string]int{}
	const n = 3000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	if len(counts) != len(members) {
		t.Fatalf("only %d of %d members own keys: %v", len(counts), len(members), counts)
	}
	// With 64 virtual nodes per member, no member should stray wildly
	// from the n/3 ideal; a factor-of-2 band is a loose but meaningful
	// check that virtual nodes are smoothing the split.
	ideal := n / len(members)
	for m, c := range counts {
		if c < ideal/2 || c > ideal*2 {
			t.Errorf("%s owns %d keys, outside [%d, %d]", m, c, ideal/2, ideal*2)
		}
	}
}

func TestMemberRemovalMovesOnlyItsKeys(t *testing.T) {
	full := cluster.New(members, 0)
	reduced := cluster.New(members[:2], 0)
	moved := 0
	for _, k := range keys(2000) {
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before == members[2] {
			if after == members[2] {
				t.Fatalf("departed member still owns %q", k)
			}
			moved++
			continue
		}
		// Consistent hashing's whole point: keys not owned by the
		// departed member must not move.
		if after != before {
			t.Fatalf("Owner(%q) moved %q -> %q though %q left", k, before, after, members[2])
		}
	}
	if moved == 0 {
		t.Fatal("departed member owned no keys; distribution test should have caught this")
	}
}

func TestEmptyAndNilRings(t *testing.T) {
	var nilRing *cluster.Ring
	if got := nilRing.Owner("x"); got != "" {
		t.Fatalf("nil ring Owner = %q, want empty", got)
	}
	if nilRing.Size() != 0 || nilRing.Members() != nil {
		t.Fatal("nil ring must be empty")
	}
	empty := cluster.New(nil, 0)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	if empty.Size() != 0 {
		t.Fatalf("empty ring Size = %d", empty.Size())
	}
}

func TestSingleMemberOwnsEverything(t *testing.T) {
	r := cluster.New([]string{"http://solo:8080"}, 0)
	for _, k := range keys(50) {
		if got := r.Owner(k); got != "http://solo:8080" {
			t.Fatalf("Owner(%q) = %q", k, got)
		}
	}
	if r.Size() != 1 {
		t.Fatalf("Size = %d, want 1", r.Size())
	}
}

func TestMembersReturnsCopy(t *testing.T) {
	r := cluster.New(members, 0)
	got := r.Members()
	got[0] = "scribbled"
	if r.Members()[0] == "scribbled" {
		t.Fatal("Members leaked the internal slice")
	}
}
