package mape

import (
	"errors"

	"resilience/internal/modeswitch"
	"resilience/internal/sysmodel"
)

// ModePolicy is the "set of policies" a mode prescribes (§3.4.6): the
// demand level the system commits to serving (emergency load shedding
// lowers it) and the adaptation budget (emergency response mobilizes more
// repair capacity per cycle).
type ModePolicy struct {
	Demand       float64
	RepairBudget int
}

// ModeController wraps a MAPE controller with the paper's mode-switching
// strategy: each cycle it feeds the observed quality to the Switcher and
// applies the active mode's policy before the next cycle.
type ModeController struct {
	Inner    *Controller
	Switcher *modeswitch.Switcher
	Policies map[modeswitch.Mode]ModePolicy
	// Hold, if non-nil and returning true, pins the mode to Emergency
	// regardless of the observed quality — the hook for anticipation
	// sentinels (§3.4.1) whose standing warnings outrank the current
	// reading: quality looks perfect right up until the anticipated
	// shock lands.
	Hold func() bool

	applied modeswitch.Mode
}

// NewModeController assembles a mode-aware controller. Policies must
// contain entries for both Normal and Emergency.
func NewModeController(inner *Controller, sw *modeswitch.Switcher, policies map[modeswitch.Mode]ModePolicy) (*ModeController, error) {
	if inner == nil || sw == nil {
		return nil, errors.New("mape: nil inner controller or switcher")
	}
	for _, m := range []modeswitch.Mode{modeswitch.Normal, modeswitch.Emergency} {
		p, ok := policies[m]
		if !ok {
			return nil, errors.New("mape: policies must cover normal and emergency modes")
		}
		if p.Demand <= 0 {
			return nil, errors.New("mape: mode policy demand must be positive")
		}
	}
	return &ModeController{Inner: inner, Switcher: sw, Policies: policies}, nil
}

// Tick runs one MAPE cycle, updates the mode from the observed quality,
// and applies the mode's policy. It returns the cycle report and the mode
// in force after the cycle.
func (mc *ModeController) Tick(sys *sysmodel.System) (CycleReport, modeswitch.Mode, error) {
	rep, err := mc.Inner.Tick(sys)
	if err != nil {
		return CycleReport{}, mc.Switcher.Mode(), err
	}
	mode := mc.Switcher.Observe(rep.Observation.Quality)
	if mc.Hold != nil && mc.Hold() && mode != modeswitch.Emergency {
		mc.Switcher.Force(modeswitch.Emergency, rep.Observation.Quality)
		mode = modeswitch.Emergency
	}
	if mode != mc.applied {
		pol := mc.Policies[mode]
		if err := sys.SetDemand(pol.Demand); err != nil {
			return CycleReport{}, mode, err
		}
		mc.Inner.Executor.Budget = pol.RepairBudget
		mc.applied = mode
	}
	return rep, mode, nil
}
