package mape

import (
	"testing"
	"time"

	"resilience/internal/sysmodel"
)

func buildFarm(t *testing.T, n int, demand, reserve float64) (*sysmodel.System, []sysmodel.ComponentID) {
	t.Helper()
	b := sysmodel.NewBuilder()
	ids := make([]sysmodel.ComponentID, n)
	for i := range ids {
		ids[i] = b.Component("node", demand/float64(n))
	}
	sys, err := b.Build(demand, reserve)
	if err != nil {
		t.Fatal(err)
	}
	return sys, ids
}

func TestKnowledgeBounded(t *testing.T) {
	k := NewKnowledge(3)
	for i := 0; i < 10; i++ {
		k.Record(Observation{Time: i, Quality: float64(i)})
	}
	hist := k.QualityHistory()
	if len(hist) != 3 {
		t.Fatalf("history = %d, want 3", len(hist))
	}
	if hist[2] != 9 {
		t.Fatalf("latest quality = %v", hist[2])
	}
	latest, ok := k.Latest()
	if !ok || latest.Time != 9 {
		t.Fatalf("latest = %+v ok=%v", latest, ok)
	}
	empty := NewKnowledge(0) // clamps to 1
	if _, ok := empty.Latest(); ok {
		t.Fatal("empty knowledge should report no latest")
	}
}

func TestQualityMonitor(t *testing.T) {
	sys, ids := buildFarm(t, 4, 100, 50)
	if err := sys.SetStatus(ids[0], sysmodel.Down); err != nil {
		t.Fatal(err)
	}
	obs := QualityMonitor{}.Observe(sys)
	if obs.Quality != 75 {
		t.Fatalf("quality = %v, want 75", obs.Quality)
	}
	if len(obs.Down) != 1 || obs.Down[0] != ids[0] {
		t.Fatalf("down = %v", obs.Down)
	}
	if obs.Reserve != 50 {
		t.Fatalf("reserve = %v", obs.Reserve)
	}
}

func TestThresholdAnalyzer(t *testing.T) {
	a := ThresholdAnalyzer{Baseline: 99}
	healthy := a.Analyze(Observation{Quality: 100}, nil)
	if healthy.Degraded || healthy.Severity != 0 {
		t.Fatalf("healthy = %+v", healthy)
	}
	sick := a.Analyze(Observation{Quality: 49.5}, nil)
	if !sick.Degraded {
		t.Fatal("should be degraded")
	}
	if sick.Severity <= 0 || sick.Severity > 1 {
		t.Fatalf("severity = %v", sick.Severity)
	}
	dead := a.Analyze(Observation{Quality: -50}, nil)
	if dead.Severity != 1 {
		t.Fatalf("severity clamp = %v", dead.Severity)
	}
}

func TestControllerRepairsFailures(t *testing.T) {
	sys, ids := buildFarm(t, 5, 100, 0)
	for _, id := range ids[:3] {
		if err := sys.SetStatus(id, sysmodel.Down); err != nil {
			t.Fatal(err)
		}
	}
	c := NewController(99, 0) // unlimited budget
	rep, err := c.Tick(sys)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Assessment.Degraded || rep.Planned != 3 || len(rep.Applied) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if len(sys.DownComponents()) != 0 {
		t.Fatal("controller should have repaired everything")
	}
}

func TestExecutorBudgetLimitsAdaptationSpeed(t *testing.T) {
	sys, ids := buildFarm(t, 6, 120, 0)
	for _, id := range ids {
		if err := sys.SetStatus(id, sysmodel.Down); err != nil {
			t.Fatal(err)
		}
	}
	c := NewController(99, 2)
	// Cycle 1 repairs 2, leaving 4.
	rep, err := c.Tick(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Applied) != 2 {
		t.Fatalf("applied = %d, want budget 2", len(rep.Applied))
	}
	if got := len(sys.DownComponents()); got != 4 {
		t.Fatalf("down after cycle = %d, want 4", got)
	}
	// Three cycles in total clear the backlog.
	for i := 0; i < 2; i++ {
		if _, err := c.Tick(sys); err != nil {
			t.Fatal(err)
		}
	}
	if len(sys.DownComponents()) != 0 {
		t.Fatal("backlog should be cleared after 3 cycles")
	}
}

func TestControllerHealthyNoPlan(t *testing.T) {
	sys, _ := buildFarm(t, 2, 20, 0)
	c := NewController(99, 0)
	rep, err := c.Tick(sys)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assessment.Degraded || rep.Planned != 0 || len(rep.Applied) != 0 {
		t.Fatalf("healthy tick = %+v", rep)
	}
}

func TestControllerValidation(t *testing.T) {
	c := NewController(99, 0)
	if _, err := c.Tick(nil); err == nil {
		t.Error("want error for nil system")
	}
	broken := &Controller{}
	sys, _ := buildFarm(t, 1, 10, 0)
	if _, err := broken.Tick(sys); err == nil {
		t.Error("want error for unassembled controller")
	}
}

func TestActionStrings(t *testing.T) {
	if (RepairAction{ID: 1}).String() == "" || (ShedLoadAction{NewDemand: 5}).String() == "" {
		t.Fatal("action descriptions must be non-empty")
	}
}

func TestShedLoadAction(t *testing.T) {
	sys, _ := buildFarm(t, 2, 100, 0)
	if err := (ShedLoadAction{NewDemand: 60}).Execute(sys); err != nil {
		t.Fatal(err)
	}
	if sys.Demand() != 60 {
		t.Fatalf("demand = %v", sys.Demand())
	}
	if err := (ShedLoadAction{NewDemand: 0}).Execute(sys); err == nil {
		t.Fatal("want error for zero demand")
	}
}

func TestLoopLifecycle(t *testing.T) {
	sys, ids := buildFarm(t, 3, 30, 0)
	if err := sys.SetStatus(ids[0], sysmodel.Down); err != nil {
		t.Fatal(err)
	}
	c := NewController(99, 0)
	l, err := StartLoop(c, sys, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Cycles() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	l.Stop()
	if l.Cycles() < 3 {
		t.Fatalf("cycles = %d, want >= 3", l.Cycles())
	}
	if l.Err() != nil {
		t.Fatalf("loop error: %v", l.Err())
	}
	if len(sys.DownComponents()) != 0 {
		t.Fatal("loop should have repaired the component")
	}
}

func TestStartLoopValidation(t *testing.T) {
	sys, _ := buildFarm(t, 1, 10, 0)
	c := NewController(99, 0)
	if _, err := StartLoop(nil, sys, time.Millisecond); err == nil {
		t.Error("want error for nil controller")
	}
	if _, err := StartLoop(c, nil, time.Millisecond); err == nil {
		t.Error("want error for nil system")
	}
	if _, err := StartLoop(c, sys, 0); err == nil {
		t.Error("want error for zero interval")
	}
}

func TestFasterControlSmallerLoss(t *testing.T) {
	// The adaptability claim of §3.3: the same fault, controlled at
	// different cadences — the faster (bigger-budget) loop yields a
	// smaller Bruneau loss. Simulated synchronously for determinism.
	runLoss := func(budget int) float64 {
		sys, ids := buildFarm(t, 10, 100, 0)
		c := NewController(99, budget)
		for _, id := range ids[:8] {
			if err := sys.SetStatus(id, sysmodel.Down); err != nil {
				t.Fatal(err)
			}
		}
		var loss float64
		for step := 0; step < 20; step++ {
			rep := sys.Step()
			loss += 100 - rep.Quality
			if _, err := c.Tick(sys); err != nil {
				t.Fatal(err)
			}
		}
		return loss
	}
	fast := runLoss(4)
	slow := runLoss(1)
	if fast >= slow {
		t.Fatalf("fast loss %v should be below slow loss %v", fast, slow)
	}
}

// TestKnowledgeMeanQuality: the smoothing window clamps to available
// history and reports not-ok when empty.
func TestKnowledgeMeanQuality(t *testing.T) {
	k := NewKnowledge(10)
	if _, ok := k.MeanQuality(3); ok {
		t.Fatal("empty knowledge must report ok=false")
	}
	for i, q := range []float64{100, 80, 60, 40} {
		k.Record(Observation{Time: i, Quality: q})
	}
	if _, ok := k.MeanQuality(0); ok {
		t.Fatal("n < 1 must report ok=false")
	}
	if m, ok := k.MeanQuality(2); !ok || m != 50 {
		t.Fatalf("MeanQuality(2) = %v/%v, want 50/true", m, ok)
	}
	// n beyond the history clamps to all four samples.
	if m, ok := k.MeanQuality(99); !ok || m != 70 {
		t.Fatalf("MeanQuality(99) = %v/%v, want 70/true", m, ok)
	}
}

// TestObservationSignals: named raw readings ride along in the
// knowledge store untouched.
func TestObservationSignals(t *testing.T) {
	k := NewKnowledge(4)
	k.Record(Observation{Time: 1, Quality: 33, Signals: map[string]float64{"queued": 4, "p99": 0.120}})
	got, ok := k.Latest()
	if !ok || got.Signals["queued"] != 4 || got.Signals["p99"] != 0.120 {
		t.Fatalf("signals lost in the store: %+v (ok=%v)", got, ok)
	}
}
