package mape

import (
	"testing"

	"resilience/internal/modeswitch"
	"resilience/internal/sysmodel"
)

func modePolicies() map[modeswitch.Mode]ModePolicy {
	return map[modeswitch.Mode]ModePolicy{
		modeswitch.Normal:    {Demand: 100, RepairBudget: 1},
		modeswitch.Emergency: {Demand: 50, RepairBudget: 4},
	}
}

func newSwitcher(t *testing.T) *modeswitch.Switcher {
	t.Helper()
	sw, err := modeswitch.NewSwitcher(modeswitch.Config{EnterBelow: 60, ExitAbove: 95})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestNewModeControllerValidation(t *testing.T) {
	sw := newSwitcher(t)
	inner := NewController(99, 1)
	if _, err := NewModeController(nil, sw, modePolicies()); err == nil {
		t.Error("want error for nil inner")
	}
	if _, err := NewModeController(inner, nil, modePolicies()); err == nil {
		t.Error("want error for nil switcher")
	}
	missing := map[modeswitch.Mode]ModePolicy{modeswitch.Normal: {Demand: 100, RepairBudget: 1}}
	if _, err := NewModeController(inner, sw, missing); err == nil {
		t.Error("want error for missing emergency policy")
	}
	bad := modePolicies()
	bad[modeswitch.Emergency] = ModePolicy{Demand: 0, RepairBudget: 1}
	if _, err := NewModeController(inner, sw, bad); err == nil {
		t.Error("want error for non-positive demand")
	}
}

func TestModeControllerSwitchesAndSheds(t *testing.T) {
	sys, ids := buildFarm(t, 10, 100, 0)
	sw := newSwitcher(t)
	inner := NewController(99, 1)
	mc, err := NewModeController(inner, sw, modePolicies())
	if err != nil {
		t.Fatal(err)
	}
	// Take 8 of 10 nodes down: quality 20.
	for _, id := range ids[:8] {
		if err := sys.SetStatus(id, sysmodel.Down); err != nil {
			t.Fatal(err)
		}
	}
	_, mode, err := mc.Tick(sys)
	if err != nil {
		t.Fatal(err)
	}
	if mode != modeswitch.Emergency {
		t.Fatalf("mode = %v, want emergency", mode)
	}
	if sys.Demand() != 50 {
		t.Fatalf("demand = %v, want shed to 50", sys.Demand())
	}
	if inner.Executor.Budget != 4 {
		t.Fatalf("budget = %d, want 4", inner.Executor.Budget)
	}
	// Emergency budget repairs quickly; after a few cycles quality
	// recovers and the mode returns to normal with demand restored.
	for i := 0; i < 6; i++ {
		if _, mode, err = mc.Tick(sys); err != nil {
			t.Fatal(err)
		}
	}
	if mode != modeswitch.Normal {
		t.Fatalf("mode = %v, want normal after recovery", mode)
	}
	if sys.Demand() != 100 {
		t.Fatalf("demand = %v, want restored to 100", sys.Demand())
	}
	if inner.Executor.Budget != 1 {
		t.Fatalf("budget = %d, want restored to 1", inner.Executor.Budget)
	}
}

func TestModeControllerStableWhenHealthy(t *testing.T) {
	sys, _ := buildFarm(t, 4, 100, 0)
	sw := newSwitcher(t)
	mc, err := NewModeController(NewController(99, 1), sw, modePolicies())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_, mode, err := mc.Tick(sys)
		if err != nil {
			t.Fatal(err)
		}
		if mode != modeswitch.Emergency && sys.Demand() != 100 {
			t.Fatalf("healthy system demand drifted to %v", sys.Demand())
		}
		if mode == modeswitch.Emergency {
			t.Fatal("healthy system entered emergency")
		}
	}
	if len(sw.Transitions()) != 0 {
		t.Fatalf("transitions = %d, want 0", len(sw.Transitions()))
	}
}

func TestModeControllerHoldPinsEmergency(t *testing.T) {
	sys, _ := buildFarm(t, 4, 100, 0)
	sw := newSwitcher(t)
	mc, err := NewModeController(NewController(99, 1), sw, modePolicies())
	if err != nil {
		t.Fatal(err)
	}
	hold := true
	mc.Hold = func() bool { return hold }
	// Healthy system, but the hold pins emergency.
	_, mode, err := mc.Tick(sys)
	if err != nil {
		t.Fatal(err)
	}
	if mode != modeswitch.Emergency {
		t.Fatalf("mode = %v, want pinned emergency", mode)
	}
	if sys.Demand() != 50 {
		t.Fatalf("demand = %v, want emergency policy applied", sys.Demand())
	}
	// Release the hold: the healthy quality stands the system down.
	hold = false
	if _, mode, err = mc.Tick(sys); err != nil {
		t.Fatal(err)
	}
	if mode != modeswitch.Normal {
		t.Fatalf("mode = %v, want normal after release", mode)
	}
	if sys.Demand() != 100 {
		t.Fatalf("demand = %v, want restored", sys.Demand())
	}
}
