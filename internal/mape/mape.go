// Package mape implements the Monitor–Analyze–Plan–Execute autonomic
// control loop the paper cites as the engineering form of adaptability
// (§3.3.2, IBM's Autonomic Computing): "it senses the changes and reacts
// automatically to handle the situations."
//
// The loop runs over a sysmodel.System. Each Tick performs one MAPE-K
// cycle: the Monitor samples system state into the Knowledge store, the
// Analyzer decides whether the system is degraded, the Planner proposes
// actions, and the Executor applies at most its per-cycle budget — the
// budget is the paper's adaptability knob (actions per unit time).
//
// For real-time deployments, Loop drives Tick on a wall-clock ticker with
// a managed goroutine (Stop blocks until exit); simulations call Tick
// directly for determinism.
package mape

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"resilience/internal/sysmodel"
)

// Observation is one monitoring sample.
type Observation struct {
	Time    int
	Quality float64
	Reserve float64
	Down    []sysmodel.ComponentID
	Supply  float64
	// Signals carries named raw readings behind the quality scalar
	// (queue depth, latency quantiles, hit ratios…) so a Knowledge
	// consumer can explain *why* quality moved, not just that it did.
	Signals map[string]float64
}

// Knowledge is the shared K of MAPE-K: a bounded history of observations.
type Knowledge struct {
	mu      sync.Mutex
	history []Observation
	limit   int
}

// NewKnowledge creates a knowledge store keeping at most limit
// observations (minimum 1).
func NewKnowledge(limit int) *Knowledge {
	if limit < 1 {
		limit = 1
	}
	return &Knowledge{limit: limit}
}

// Record appends an observation, evicting the oldest beyond the limit.
func (k *Knowledge) Record(obs Observation) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.history = append(k.history, obs)
	if len(k.history) > k.limit {
		k.history = k.history[len(k.history)-k.limit:]
	}
}

// Latest returns the most recent observation; ok is false when empty.
func (k *Knowledge) Latest() (Observation, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.history) == 0 {
		return Observation{}, false
	}
	return k.history[len(k.history)-1], true
}

// MeanQuality averages quality over the last n observations (clamped to
// what exists); ok is false when the store is empty or n < 1. Control
// loops use it to smooth a noisy per-tick signal before thresholding.
func (k *Knowledge) MeanQuality(n int) (mean float64, ok bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.history) == 0 || n < 1 {
		return 0, false
	}
	if n > len(k.history) {
		n = len(k.history)
	}
	sum := 0.0
	for _, o := range k.history[len(k.history)-n:] {
		sum += o.Quality
	}
	return sum / float64(n), true
}

// QualityHistory returns the recorded quality series, oldest first.
func (k *Knowledge) QualityHistory() []float64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]float64, len(k.history))
	for i, o := range k.history {
		out[i] = o.Quality
	}
	return out
}

// Monitor samples the managed system.
type Monitor interface {
	Observe(sys *sysmodel.System) Observation
}

// Analyzer turns an observation into an assessment.
type Analyzer interface {
	Analyze(obs Observation, k *Knowledge) Assessment
}

// Assessment is the analyzer's verdict.
type Assessment struct {
	// Degraded reports whether corrective action is needed.
	Degraded bool
	// Severity is 0 (healthy) to 1 (total outage).
	Severity float64
	// Down lists the failed components the analysis identified.
	Down []sysmodel.ComponentID
}

// Action is a planned adaptation.
type Action interface {
	Execute(sys *sysmodel.System) error
	String() string
}

// Planner proposes actions for an assessment.
type Planner interface {
	Plan(a Assessment, k *Knowledge) []Action
}

// Executor applies planned actions under a per-cycle budget.
type Executor struct {
	// Budget is the maximum actions applied per cycle (the adaptability
	// rate); 0 means unlimited.
	Budget int
}

// Execute applies up to Budget actions, returning those applied.
func (e Executor) Execute(sys *sysmodel.System, actions []Action) ([]Action, error) {
	n := len(actions)
	if e.Budget > 0 && n > e.Budget {
		n = e.Budget
	}
	applied := make([]Action, 0, n)
	for _, a := range actions[:n] {
		if err := a.Execute(sys); err != nil {
			return applied, fmt.Errorf("execute %s: %w", a, err)
		}
		applied = append(applied, a)
	}
	return applied, nil
}

// Controller wires the four phases around a Knowledge store.
type Controller struct {
	Monitor  Monitor
	Analyzer Analyzer
	Planner  Planner
	Executor Executor
	K        *Knowledge
}

// NewController assembles a controller with the default components:
// quality monitor, threshold analyzer at the given baseline quality, and
// a repair planner, with the given per-cycle action budget.
func NewController(baseline float64, budget int) *Controller {
	return &Controller{
		Monitor:  QualityMonitor{},
		Analyzer: ThresholdAnalyzer{Baseline: baseline},
		Planner:  RepairPlanner{},
		Executor: Executor{Budget: budget},
		K:        NewKnowledge(1024),
	}
}

// CycleReport summarizes one MAPE cycle.
type CycleReport struct {
	Observation Observation
	Assessment  Assessment
	Planned     int
	Applied     []Action
}

// Tick runs one full MAPE-K cycle against the system.
func (c *Controller) Tick(sys *sysmodel.System) (CycleReport, error) {
	if sys == nil {
		return CycleReport{}, errors.New("mape: nil system")
	}
	if c.Monitor == nil || c.Analyzer == nil || c.Planner == nil || c.K == nil {
		return CycleReport{}, errors.New("mape: controller not fully assembled")
	}
	obs := c.Monitor.Observe(sys)
	c.K.Record(obs)
	assessment := c.Analyzer.Analyze(obs, c.K)
	var planned []Action
	if assessment.Degraded {
		planned = c.Planner.Plan(assessment, c.K)
	}
	applied, err := c.Executor.Execute(sys, planned)
	if err != nil {
		return CycleReport{}, err
	}
	return CycleReport{
		Observation: obs,
		Assessment:  assessment,
		Planned:     len(planned),
		Applied:     applied,
	}, nil
}

// QualityMonitor samples supply, reserve, quality and down components
// without advancing time: it peeks via a zero-cost snapshot plus the
// system's current demand.
type QualityMonitor struct{}

var _ Monitor = QualityMonitor{}

// Observe implements Monitor.
func (QualityMonitor) Observe(sys *sysmodel.System) Observation {
	snap := sys.Snapshot()
	var supply float64
	var down []sysmodel.ComponentID
	for _, c := range snap {
		if c.Functional {
			eff := c.Capacity
			if c.Status == sysmodel.Degraded {
				eff *= 0.5
			}
			supply += eff
		}
		if c.Status == sysmodel.Down {
			down = append(down, c.ID)
		}
	}
	demand := sys.Demand()
	q := supply / demand * 100
	if q > 100 {
		q = 100
	}
	return Observation{
		Time:    sys.Time(),
		Quality: q,
		Reserve: sys.Reserve(),
		Down:    down,
		Supply:  supply,
	}
}

// ThresholdAnalyzer flags degradation when quality drops below Baseline.
type ThresholdAnalyzer struct {
	Baseline float64
}

var _ Analyzer = ThresholdAnalyzer{}

// Analyze implements Analyzer.
func (a ThresholdAnalyzer) Analyze(obs Observation, _ *Knowledge) Assessment {
	degraded := obs.Quality < a.Baseline
	sev := 0.0
	if degraded {
		sev = (a.Baseline - obs.Quality) / a.Baseline
		if sev > 1 {
			sev = 1
		}
	}
	return Assessment{Degraded: degraded, Severity: sev, Down: obs.Down}
}

// RepairAction restores one component to Up.
type RepairAction struct {
	ID sysmodel.ComponentID
}

var _ Action = RepairAction{}

// Execute implements Action.
func (a RepairAction) Execute(sys *sysmodel.System) error {
	return sys.SetStatus(a.ID, sysmodel.Up)
}

// String implements Action.
func (a RepairAction) String() string { return fmt.Sprintf("repair(%d)", a.ID) }

// ShedLoadAction lowers demand to the given level — emergency-mode load
// shedding.
type ShedLoadAction struct {
	NewDemand float64
}

var _ Action = ShedLoadAction{}

// Execute implements Action.
func (a ShedLoadAction) Execute(sys *sysmodel.System) error {
	return sys.SetDemand(a.NewDemand)
}

// String implements Action.
func (a ShedLoadAction) String() string { return fmt.Sprintf("shed-load(%v)", a.NewDemand) }

// RepairPlanner proposes repairing every down component, worst first
// (stable order by ID).
type RepairPlanner struct{}

var _ Planner = RepairPlanner{}

// Plan implements Planner.
func (RepairPlanner) Plan(a Assessment, _ *Knowledge) []Action {
	actions := make([]Action, 0, len(a.Down))
	for _, id := range a.Down {
		actions = append(actions, RepairAction{ID: id})
	}
	return actions
}

// Loop drives a Controller on a wall-clock ticker. Create with StartLoop;
// Stop signals the goroutine and waits for it to exit.
type Loop struct {
	stop chan struct{}
	done chan struct{}

	mu     sync.Mutex
	cycles int
	lastE  error
}

// StartLoop begins ticking the controller against sys every interval.
func StartLoop(c *Controller, sys *sysmodel.System, interval time.Duration) (*Loop, error) {
	if c == nil || sys == nil {
		return nil, errors.New("mape: nil controller or system")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("mape: interval %v must be positive", interval)
	}
	l := &Loop{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(l.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_, err := c.Tick(sys)
				l.mu.Lock()
				l.cycles++
				if err != nil {
					l.lastE = err
				}
				l.mu.Unlock()
			case <-l.stop:
				return
			}
		}
	}()
	return l, nil
}

// Stop signals the loop to exit and waits for the goroutine to finish.
func (l *Loop) Stop() {
	close(l.stop)
	<-l.done
}

// Cycles returns how many cycles have run.
func (l *Loop) Cycles() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cycles
}

// Err returns the most recent cycle error, if any.
func (l *Loop) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastE
}
