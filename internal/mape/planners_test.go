package mape

import (
	"fmt"
	"testing"

	"resilience/internal/rng"
	"resilience/internal/sysmodel"
)

// buildHubSystem creates a db hub that six services depend on plus one
// independent cache.
func buildHubSystem(t *testing.T) (*sysmodel.System, sysmodel.ComponentID, []sysmodel.ComponentID) {
	t.Helper()
	b := sysmodel.NewBuilder()
	db := b.Component("db", 10)
	svcs := make([]sysmodel.ComponentID, 6)
	for i := range svcs {
		svcs[i] = b.Component(fmt.Sprintf("svc-%d", i), 15, sysmodel.WithDependsOn(db))
	}
	sys, err := b.Build(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys, db, svcs
}

func TestRepairImpactHubDominates(t *testing.T) {
	sys, db, svcs := buildHubSystem(t)
	// Everything down: fixing the db alone restores only its own 10
	// (services are still down); but with services up and db down,
	// fixing the db restores 10 + 6*15.
	if err := sys.SetStatus(db, sysmodel.Down); err != nil {
		t.Fatal(err)
	}
	impactDBAlone, err := sys.RepairImpact(db)
	if err != nil {
		t.Fatal(err)
	}
	if impactDBAlone != 100 {
		t.Fatalf("db impact with services up = %v, want 100 (10 + 6x15)", impactDBAlone)
	}
	if err := sys.SetStatus(svcs[0], sysmodel.Down); err != nil {
		t.Fatal(err)
	}
	impactSvc, err := sys.RepairImpact(svcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if impactSvc != 0 {
		t.Fatalf("service impact while db is down = %v, want 0", impactSvc)
	}
	if _, err := sys.RepairImpact(sysmodel.ComponentID(99)); err == nil {
		t.Fatal("want error for unknown component")
	}
}

func TestRepairImpactDoesNotMutate(t *testing.T) {
	sys, db, _ := buildHubSystem(t)
	if err := sys.SetStatus(db, sysmodel.Down); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RepairImpact(db); err != nil {
		t.Fatal(err)
	}
	st, err := sys.Status(db)
	if err != nil {
		t.Fatal(err)
	}
	if st != sysmodel.Down {
		t.Fatal("RepairImpact mutated the component status")
	}
}

func TestImpactPlannerOrdersHubFirst(t *testing.T) {
	sys, db, svcs := buildHubSystem(t)
	for _, id := range append([]sysmodel.ComponentID{db}, svcs...) {
		if err := sys.SetStatus(id, sysmodel.Down); err != nil {
			t.Fatal(err)
		}
	}
	obs := QualityMonitor{}.Observe(sys)
	assessment := ThresholdAnalyzer{Baseline: 99}.Analyze(obs, nil)
	plan := ImpactPlanner{Sys: sys}.Plan(assessment, nil)
	if len(plan) != 7 {
		t.Fatalf("plan size = %d", len(plan))
	}
	first, ok := plan[0].(RepairAction)
	if !ok || first.ID != db {
		t.Fatalf("first repair = %v, want the db hub", plan[0])
	}
}

func TestLocalPlannerCoversAllFailures(t *testing.T) {
	r := rng.New(1)
	sys, db, svcs := buildHubSystem(t)
	for _, id := range append([]sysmodel.ComponentID{db}, svcs...) {
		if err := sys.SetStatus(id, sysmodel.Down); err != nil {
			t.Fatal(err)
		}
	}
	obs := QualityMonitor{}.Observe(sys)
	assessment := ThresholdAnalyzer{Baseline: 99}.Analyze(obs, nil)
	plan := LocalPlanner{R: r}.Plan(assessment, nil)
	if len(plan) != 7 {
		t.Fatalf("plan size = %d", len(plan))
	}
	seen := map[sysmodel.ComponentID]bool{}
	for _, a := range plan {
		ra, ok := a.(RepairAction)
		if !ok {
			t.Fatalf("unexpected action %T", a)
		}
		if seen[ra.ID] {
			t.Fatalf("duplicate repair of %d", ra.ID)
		}
		seen[ra.ID] = true
	}
	// Nil RNG degrades to assessment order, not a crash.
	plan2 := LocalPlanner{}.Plan(assessment, nil)
	if len(plan2) != 7 {
		t.Fatalf("nil-rng plan size = %d", len(plan2))
	}
}

func TestCentralizedBeatsDecentralized(t *testing.T) {
	// §4.5: with one repair per cycle, the impact-aware coordinator
	// restores quality faster than uncoordinated local repair, on a
	// topology where order matters (hub + dependents).
	runLoss := func(planner func(sys *sysmodel.System) Planner, seed uint64) float64 {
		sys, db, svcs := buildHubSystem(t)
		for _, id := range append([]sysmodel.ComponentID{db}, svcs...) {
			if err := sys.SetStatus(id, sysmodel.Down); err != nil {
				t.Fatal(err)
			}
		}
		c := NewController(99, 1)
		c.Planner = planner(sys)
		var loss float64
		for step := 0; step < 12; step++ {
			rep := sys.Step()
			loss += 100 - rep.Quality
			if _, err := c.Tick(sys); err != nil {
				t.Fatal(err)
			}
		}
		return loss
	}
	central := runLoss(func(sys *sysmodel.System) Planner {
		return ImpactPlanner{Sys: sys}
	}, 0)
	// Average the decentralized baseline over several orderings.
	var localSum float64
	const trials = 10
	for seed := uint64(0); seed < trials; seed++ {
		localSum += runLoss(func(*sysmodel.System) Planner {
			return LocalPlanner{R: rng.New(seed)}
		}, seed)
	}
	local := localSum / trials
	if central >= local {
		t.Fatalf("centralized loss %v should be below decentralized mean %v", central, local)
	}
}
