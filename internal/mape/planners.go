package mape

import (
	"sort"

	"resilience/internal/rng"
	"resilience/internal/sysmodel"
)

// ImpactPlanner is the centralized coordinator of §4.5: it holds a global
// view of the dependency graph (via the system's RepairImpact probe) and
// schedules repairs highest-impact first, so scarce repair budget restores
// the most supply per cycle.
//
// ImpactPlanner needs the live system to evaluate impact, so it is bound
// to one system at construction.
type ImpactPlanner struct {
	Sys *sysmodel.System
}

var _ Planner = ImpactPlanner{}

// Plan implements Planner: repairs ordered by descending supply impact.
func (p ImpactPlanner) Plan(a Assessment, _ *Knowledge) []Action {
	type scored struct {
		id     sysmodel.ComponentID
		impact float64
	}
	items := make([]scored, 0, len(a.Down))
	for _, id := range a.Down {
		impact, err := p.Sys.RepairImpact(id)
		if err != nil {
			continue
		}
		items = append(items, scored{id: id, impact: impact})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].impact > items[j].impact })
	actions := make([]Action, 0, len(items))
	for _, it := range items {
		actions = append(actions, RepairAction{ID: it.id})
	}
	return actions
}

// LocalPlanner is the decentralized baseline of §4.5: each failed
// component repairs itself with no coordination, so the repair order is
// arbitrary — a random permutation of the failures. Same budget, no
// global view.
type LocalPlanner struct {
	R *rng.Source
}

var _ Planner = LocalPlanner{}

// Plan implements Planner: repairs in random order.
func (p LocalPlanner) Plan(a Assessment, _ *Knowledge) []Action {
	order := make([]sysmodel.ComponentID, len(a.Down))
	copy(order, a.Down)
	if p.R != nil {
		p.R.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	actions := make([]Action, 0, len(order))
	for _, id := range order {
		actions = append(actions, RepairAction{ID: id})
	}
	return actions
}
