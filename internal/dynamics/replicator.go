// Package dynamics implements the population dynamics of §3.2.4: the
// replicator equation
//
//	pᵢ(t+1) = pᵢ(t) · πᵢ / π̄(t)
//
// where πᵢ is the fitness of species i and π̄ the population-weighted mean
// fitness, together with the fitness shapes the paper discusses — linear
// cumulative advantage versus the concave, diminishing-return fitness of
// Fig 2 ("as the species gain a larger fitness, a contribution of each
// advantageous mutation to the fitness declines") and density-dependent
// fitness ("the dominating species loses its advantage as its population
// increases, and this gives spaces for other species to occupy").
//
// The package also provides a finite-population stochastic mode
// (Wright–Fisher resampling) for the weak-selection experiments, and the
// early-warning-signal machinery of §3.4.1 in warning.go.
package dynamics

import (
	"errors"
	"fmt"
	"math"

	"resilience/internal/diversity"
	"resilience/internal/rng"
)

// Fitness returns the fitness πᵢ of species i given its current population
// and the time step — the environment enters through the closure.
type Fitness func(species int, pop float64, t int) float64

// ErrExtinct is returned when every species has died out.
var ErrExtinct = errors.New("dynamics: total extinction")

// Ecosystem is a population vector evolving under the replicator equation.
type Ecosystem struct {
	// Pops holds the population of each species. Extinct species stay in
	// the slice with population zero so indices remain stable.
	Pops []float64
	// Fitness is the current fitness function; experiments swap it to
	// model environment change.
	Fitness Fitness
	// ExtinctBelow zeroes any population falling below this threshold
	// after a step (default 0 = never).
	ExtinctBelow float64

	t int
}

// NewEcosystem builds an ecosystem with the given initial populations and
// fitness function.
func NewEcosystem(pops []float64, f Fitness) (*Ecosystem, error) {
	if len(pops) == 0 {
		return nil, errors.New("dynamics: no species")
	}
	if f == nil {
		return nil, errors.New("dynamics: nil fitness")
	}
	var total float64
	for i, p := range pops {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, fmt.Errorf("dynamics: invalid population %v for species %d", p, i)
		}
		total += p
	}
	if total == 0 {
		return nil, ErrExtinct
	}
	e := &Ecosystem{Pops: make([]float64, len(pops)), Fitness: f}
	copy(e.Pops, pops)
	return e, nil
}

// Time returns the number of steps taken.
func (e *Ecosystem) Time() int { return e.t }

// Total returns the total population.
func (e *Ecosystem) Total() float64 {
	var total float64
	for _, p := range e.Pops {
		total += p
	}
	return total
}

// MeanFitness returns π̄ = Σ pᵢπᵢ / Σ pᵢ.
func (e *Ecosystem) MeanFitness() (float64, error) {
	var wsum, total float64
	for i, p := range e.Pops {
		if p <= 0 {
			continue
		}
		wsum += p * e.Fitness(i, p, e.t)
		total += p
	}
	if total == 0 {
		return 0, ErrExtinct
	}
	return wsum / total, nil
}

// Step advances one deterministic replicator generation. The replicator
// map conserves total population exactly (up to floating point), which
// Step asserts by construction rather than renormalization.
func (e *Ecosystem) Step() error {
	mean, err := e.MeanFitness()
	if err != nil {
		return err
	}
	if mean <= 0 {
		return errors.New("dynamics: non-positive mean fitness")
	}
	for i, p := range e.Pops {
		if p <= 0 {
			continue
		}
		e.Pops[i] = p * e.Fitness(i, p, e.t) / mean
	}
	e.applyExtinction()
	e.t++
	if e.Total() == 0 {
		return ErrExtinct
	}
	return nil
}

// StepStochastic advances one Wright–Fisher generation with effective
// population size n: the next generation is a multinomial sample of n
// individuals drawn with probability proportional to pᵢπᵢ. Total
// population is rescaled so that Σp is preserved. Finite n introduces the
// genetic drift that the near-neutral theory (§3.2.4) rests on.
func (e *Ecosystem) StepStochastic(n int, r *rng.Source) error {
	if n <= 0 {
		return fmt.Errorf("dynamics: population size %d must be positive", n)
	}
	total := e.Total()
	if total == 0 {
		return ErrExtinct
	}
	weights := make([]float64, len(e.Pops))
	var wsum float64
	for i, p := range e.Pops {
		if p <= 0 {
			continue
		}
		w := p * e.Fitness(i, p, e.t)
		if w < 0 {
			w = 0
		}
		weights[i] = w
		wsum += w
	}
	if wsum == 0 {
		return errors.New("dynamics: zero total fitness")
	}
	counts := make([]int, len(e.Pops))
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	for i := range e.Pops {
		e.Pops[i] = float64(counts[i]) / float64(n) * total
	}
	e.applyExtinction()
	e.t++
	if e.Total() == 0 {
		return ErrExtinct
	}
	return nil
}

func (e *Ecosystem) applyExtinction() {
	if e.ExtinctBelow <= 0 {
		return
	}
	for i, p := range e.Pops {
		if p > 0 && p < e.ExtinctBelow {
			e.Pops[i] = 0
		}
	}
}

// Run advances n deterministic steps, stopping early on extinction.
func (e *Ecosystem) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Survivors returns the number of species with positive population.
func (e *Ecosystem) Survivors() int { return diversity.Richness(e.Pops) }

// Dominance returns the largest population share.
func (e *Ecosystem) Dominance() (float64, error) { return diversity.Dominance(e.Pops) }

// DiversityG returns the paper's diversity index of the current
// population.
func (e *Ecosystem) DiversityG() (float64, error) { return diversity.IndexG(e.Pops) }

// ConstFitness gives species i the fixed fitness values[i]; missing
// indices default to 1. This is the paper's plain replicator setting where
// "the most fit species will ultimately dominate the entire ecosystem
// without a mechanism that penalizes such domination".
func ConstFitness(values []float64) Fitness {
	vals := make([]float64, len(values))
	copy(vals, values)
	return func(i int, _ float64, _ int) float64 {
		if i < 0 || i >= len(vals) {
			return 1
		}
		return vals[i]
	}
}

// LinearAdvantage maps a cumulative advantage aᵢ to fitness 1 + s·aᵢ —
// constant marginal returns, the straight line of Fig 2.
func LinearAdvantage(adv []float64, s float64) Fitness {
	a := make([]float64, len(adv))
	copy(a, adv)
	return func(i int, _ float64, _ int) float64 {
		if i < 0 || i >= len(a) {
			return 1
		}
		return 1 + s*a[i]
	}
}

// ConcaveAdvantage maps cumulative advantage aᵢ to fitness 1 + s·ln(1+aᵢ)
// — the concave, diminishing-return curve of Fig 2 under which selection
// between highly advantaged variants becomes weak and slightly deleterious
// variants persist (Akashi et al.'s weak-selection regime).
func ConcaveAdvantage(adv []float64, s float64) Fitness {
	a := make([]float64, len(adv))
	copy(a, adv)
	return func(i int, _ float64, _ int) float64 {
		if i < 0 || i >= len(a) {
			return 1
		}
		return 1 + s*math.Log1p(a[i])
	}
}

// DensityDependent wraps base fitness values with the decreasing
// population response πᵢ(pᵢ) = baseᵢ / (1 + c·pᵢ): "the dominating species
// loses its advantage as its population increases".
func DensityDependent(base []float64, c float64) Fitness {
	b := make([]float64, len(base))
	copy(b, base)
	return func(i int, pop float64, _ int) float64 {
		if i < 0 || i >= len(b) {
			return 1
		}
		return b[i] / (1 + c*pop)
	}
}

// GaussianTrait builds an environment-dependent fitness: species i has a
// fixed trait, and fitness falls off as a Gaussian of the distance between
// the trait and the environment's current optimum. The optimum is read on
// every call, so callers can shift the environment mid-run.
func GaussianTrait(traits []float64, optimum *float64, width, floor float64) Fitness {
	tr := make([]float64, len(traits))
	copy(tr, traits)
	return func(i int, _ float64, _ int) float64 {
		if i < 0 || i >= len(tr) || width <= 0 {
			return floor
		}
		d := tr[i] - *optimum
		return floor + math.Exp(-d*d/(2*width*width))
	}
}
