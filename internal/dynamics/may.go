package dynamics

import (
	"errors"
	"fmt"
	"math"

	"resilience/internal/rng"
)

// This file addresses the open question the paper closes with (§6): "we
// expect that the model can give some explanations to unsolved
// open-questions in certain areas, such as why the ecosystem in the
// Antarctic Ocean is stable despite the fact that it is very simple (and
// less diverse)."
//
// May (1972) showed that a random community of n species with connectance
// c and interaction strength σ is almost surely UNSTABLE once
// σ·sqrt(n·c) > d (the self-regulation strength): complexity destabilizes.
// Diversity helps a system survive environmental *change* (E06), yet makes
// its equilibrium *dynamics* more fragile — exactly the tension behind the
// Antarctic question. We reproduce May's transition with a
// simulation-based stability test (no eigensolver in the stdlib): the
// linearized dynamics x' = Mx decay from a random perturbation iff every
// eigenvalue has negative real part.

// Community is a linearized ecosystem Jacobian.
type Community struct {
	// N is the number of species.
	N int
	// M is the row-major N×N Jacobian.
	M []float64
}

// RandomCommunity builds May's random Jacobian: diagonal entries are
// −selfReg (each species damps itself); each off-diagonal entry is
// nonzero with probability connectance, drawn from Norm(0, sigma).
func RandomCommunity(n int, connectance, sigma, selfReg float64, r *rng.Source) (*Community, error) {
	if n < 1 {
		return nil, fmt.Errorf("dynamics: community needs n >= 1, got %d", n)
	}
	if connectance < 0 || connectance > 1 {
		return nil, fmt.Errorf("dynamics: connectance %v out of [0,1]", connectance)
	}
	if sigma < 0 || selfReg <= 0 {
		return nil, errors.New("dynamics: sigma must be >= 0 and selfReg > 0")
	}
	c := &Community{N: n, M: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				c.M[i*n+j] = -selfReg
				continue
			}
			if r.Bool(connectance) {
				c.M[i*n+j] = r.Norm(0, sigma)
			}
		}
	}
	return c, nil
}

// MayThreshold returns σ·sqrt(n·c) — May's complexity measure. The
// community is almost surely stable when this is below the
// self-regulation strength and almost surely unstable above it.
func MayThreshold(n int, connectance, sigma float64) float64 {
	return sigma * math.Sqrt(float64(n)*connectance)
}

// Stable reports whether the community's equilibrium is asymptotically
// stable, by integrating x' = Mx from a random perturbation for the given
// horizon and testing decay. A generic initial vector excites the leading
// eigenmode, so the end-to-start norm ratio discriminates the sign of the
// spectral abscissa; transient (non-normal) growth is averaged out by the
// long horizon.
func (c *Community) Stable(horizon, dt float64, r *rng.Source) (bool, error) {
	if horizon <= 0 || dt <= 0 || dt >= horizon {
		return false, fmt.Errorf("dynamics: invalid horizon %v / dt %v", horizon, dt)
	}
	n := c.N
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Norm(0, 1)
	}
	norm0 := norm2(x)
	if norm0 == 0 {
		return false, errors.New("dynamics: degenerate perturbation")
	}
	next := make([]float64, n)
	steps := int(horizon / dt)
	// logGrowth accumulates periodic renormalization factors so the
	// state never overflows or underflows; only the total growth rate
	// matters for the stability verdict.
	var logGrowth float64
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			var acc float64
			row := c.M[i*n : (i+1)*n]
			for j, m := range row {
				acc += m * x[j]
			}
			next[i] = x[i] + dt*acc
		}
		x, next = next, x
		if s%100 == 99 {
			nrm := norm2(x)
			if nrm == 0 {
				return true, nil // fully decayed
			}
			logGrowth += math.Log(nrm / norm0)
			scale := norm0 / nrm
			for i := range x {
				x[i] *= scale
			}
		}
	}
	total := logGrowth + math.Log(norm2(x)/norm0)
	return total < 0, nil
}

// StabilityProbability estimates P(stable) over `trials` random
// communities with the given parameters.
func StabilityProbability(n int, connectance, sigma, selfReg float64, trials int, horizon, dt float64, r *rng.Source) (float64, error) {
	if trials < 1 {
		return 0, errors.New("dynamics: trials must be >= 1")
	}
	stable := 0
	for t := 0; t < trials; t++ {
		c, err := RandomCommunity(n, connectance, sigma, selfReg, r)
		if err != nil {
			return 0, err
		}
		ok, err := c.Stable(horizon, dt, r)
		if err != nil {
			return 0, err
		}
		if ok {
			stable++
		}
	}
	return float64(stable) / float64(trials), nil
}

func norm2(x []float64) float64 {
	var ss float64
	for _, v := range x {
		ss += v * v
	}
	return math.Sqrt(ss)
}
