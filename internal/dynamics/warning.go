package dynamics

import (
	"errors"
	"fmt"
	"math"

	"resilience/internal/rng"
	"resilience/internal/stats"
)

// FoldModel is the canonical bistable system with a fold (saddle-node)
// bifurcation used in the early-warning literature the paper cites
// (Scheffer et al., §3.4.1) — a lake-eutrophication style model:
//
//	dx/dt = Driver − Decay·x + Recovery·x²/(x²+1) + noise
//
// As Driver is ramped up slowly, the low-x equilibrium vanishes at a fold
// and the state jumps to the high-x branch (the "tipping point"). Before
// the jump the system exhibits critical slowing down: rising variance and
// rising lag-1 autocorrelation.
type FoldModel struct {
	// Driver is the slowly changing control parameter (e.g. nutrient
	// loading).
	Driver float64
	// Decay is the linear loss rate b.
	Decay float64
	// Recovery is the strength of the self-reinforcing feedback.
	Recovery float64
	// Noise is the standard deviation of the stochastic forcing per
	// unit time.
	Noise float64
	// Dt is the Euler–Maruyama integration step.
	Dt float64

	// X is the current state.
	X float64
}

// DefaultFoldModel returns the standard parameterization (b=1, r=2.2)
// that tips near Driver ≈ 0.2–0.3.
func DefaultFoldModel() *FoldModel {
	return &FoldModel{Decay: 1, Recovery: 2.2, Noise: 0.01, Dt: 0.1, X: 0.1}
}

// Step advances the model one Dt.
func (m *FoldModel) Step(r *rng.Source) {
	drift := m.Driver - m.Decay*m.X + m.Recovery*m.X*m.X/(m.X*m.X+1)
	dt := m.Dt
	if dt < 0 {
		dt = 0
	}
	m.X += drift*dt + m.Noise*r.Norm(0, 1)*math.Sqrt(dt)
	if m.X < 0 {
		m.X = 0
	}
}

// RampResult is the output of a driver-ramp simulation.
type RampResult struct {
	// X is the state trajectory.
	X []float64
	// Driver is the driver value at each sample.
	Driver []float64
	// TipIndex is the first sample where X exceeded the tipping
	// threshold, or -1 if the system never tipped.
	TipIndex int
}

// RampDriver slowly increases the driver from start to end over steps
// integration steps, recording the trajectory. tipThreshold defines when
// the system counts as having jumped to the upper branch.
func (m *FoldModel) RampDriver(start, end float64, steps int, tipThreshold float64, r *rng.Source) (RampResult, error) {
	if steps <= 1 {
		return RampResult{}, fmt.Errorf("dynamics: ramp needs at least 2 steps, got %d", steps)
	}
	res := RampResult{
		X:        make([]float64, 0, steps),
		Driver:   make([]float64, 0, steps),
		TipIndex: -1,
	}
	for i := 0; i < steps; i++ {
		m.Driver = start + (end-start)*float64(i)/float64(steps-1)
		m.Step(r)
		res.X = append(res.X, m.X)
		res.Driver = append(res.Driver, m.Driver)
		if res.TipIndex < 0 && m.X >= tipThreshold {
			res.TipIndex = i
		}
	}
	return res, nil
}

// Signals carries the early-warning indicators computed over a pre-tip
// window: the Kendall trend of rolling lag-1 autocorrelation and of
// rolling variance. Values near +1 mean a strong rising trend — the
// early-warning signature.
type Signals struct {
	AR1Trend      float64
	VarianceTrend float64
	// FinalAR1 is the last rolling lag-1 autocorrelation value.
	FinalAR1 float64
}

// ErrShortSeries is returned when the series is too short for the chosen
// window.
var ErrShortSeries = errors.New("dynamics: series too short for early-warning analysis")

// EarlyWarning computes Scheffer-style leading indicators on the series:
// rolling windows of the given size produce AR(1) and variance series
// whose Kendall trends are returned. Detrending is done per-window by
// removing the window mean.
func EarlyWarning(series []float64, window int) (Signals, error) {
	if window < 4 || len(series) < 2*window {
		return Signals{}, ErrShortSeries
	}
	ar1 := stats.RollingApply(series, window, func(w []float64) float64 {
		ac, err := stats.Autocorrelation(w, 1)
		if err != nil {
			return 0
		}
		return ac
	})
	variance := stats.RollingApply(series, window, stats.Variance)
	at, err := stats.KendallTau(ar1)
	if err != nil {
		return Signals{}, err
	}
	vt, err := stats.KendallTau(variance)
	if err != nil {
		return Signals{}, err
	}
	return Signals{AR1Trend: at, VarianceTrend: vt, FinalAR1: ar1[len(ar1)-1]}, nil
}

// DetectionResult reports whether and when an early-warning alarm fired.
type DetectionResult struct {
	// Alarmed is true if both trends exceeded the threshold before the
	// tip.
	Alarmed bool
	// AlarmIndex is the sample at which the alarm first fired (-1 if
	// never).
	AlarmIndex int
	// LeadTime is TipIndex − AlarmIndex when both exist.
	LeadTime int
	Signals  Signals
}

// DetectBeforeTip evaluates early-warning detection on a ramp result: it
// scans growing prefixes of the pre-tip series and fires when both trend
// statistics exceed tauThreshold. A negative TipIndex (no tip) yields
// Alarmed=false with the full-series signals.
func DetectBeforeTip(res RampResult, window int, tauThreshold float64) (DetectionResult, error) {
	end := res.TipIndex
	if end < 0 {
		end = len(res.X)
	}
	pre := res.X[:end]
	out := DetectionResult{AlarmIndex: -1, LeadTime: -1}
	full, err := EarlyWarning(pre, window)
	if err != nil {
		return DetectionResult{}, err
	}
	out.Signals = full
	// Scan prefixes at a coarse stride to find the first alarm point.
	stride := window / 2
	if stride < 1 {
		stride = 1
	}
	for n := 2 * window; n <= len(pre); n += stride {
		sig, err := EarlyWarning(pre[:n], window)
		if err != nil {
			continue
		}
		if sig.AR1Trend >= tauThreshold && sig.VarianceTrend >= tauThreshold {
			out.Alarmed = true
			out.AlarmIndex = n - 1
			if res.TipIndex >= 0 {
				out.LeadTime = res.TipIndex - out.AlarmIndex
			}
			break
		}
	}
	return out, nil
}
