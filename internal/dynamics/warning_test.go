package dynamics

import (
	"errors"
	"testing"

	"resilience/internal/rng"
)

func TestFoldModelBistability(t *testing.T) {
	r := rng.New(1)
	// Low driver: stays on the low branch.
	low := DefaultFoldModel()
	low.Driver = 0.05
	for i := 0; i < 5000; i++ {
		low.Step(r)
	}
	if low.X > 0.5 {
		t.Fatalf("low-driver state = %v, want low branch", low.X)
	}
	// High driver: jumps to the high branch.
	high := DefaultFoldModel()
	high.Driver = 0.6
	for i := 0; i < 5000; i++ {
		high.Step(r)
	}
	if high.X < 1.0 {
		t.Fatalf("high-driver state = %v, want high branch", high.X)
	}
}

func TestFoldModelNonNegative(t *testing.T) {
	r := rng.New(2)
	m := DefaultFoldModel()
	m.Noise = 0.5 // violent noise
	for i := 0; i < 10000; i++ {
		m.Step(r)
		if m.X < 0 {
			t.Fatal("state went negative")
		}
	}
}

func TestRampDriverTips(t *testing.T) {
	r := rng.New(3)
	m := DefaultFoldModel()
	res, err := m.RampDriver(0, 0.5, 20000, 1.0, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.TipIndex < 0 {
		t.Fatal("ramp to driver 0.5 should tip")
	}
	if res.TipIndex < 1000 {
		t.Fatalf("tip at %d: suspiciously early", res.TipIndex)
	}
	if len(res.X) != 20000 || len(res.Driver) != 20000 {
		t.Fatalf("trajectory lengths %d/%d", len(res.X), len(res.Driver))
	}
}

func TestRampDriverValidation(t *testing.T) {
	r := rng.New(4)
	m := DefaultFoldModel()
	if _, err := m.RampDriver(0, 1, 1, 1.0, r); err == nil {
		t.Fatal("want error for too few steps")
	}
}

func TestEarlyWarningRisingSignals(t *testing.T) {
	// Near the fold, AR(1) and variance must trend upward (critical
	// slowing down). Use a slow ramp and analyse the pre-tip window.
	r := rng.New(5)
	m := DefaultFoldModel()
	res, err := m.RampDriver(0, 0.45, 40000, 1.0, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.TipIndex < 0 {
		t.Fatal("expected a tip")
	}
	sig, err := EarlyWarning(res.X[:res.TipIndex], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if sig.AR1Trend < 0.3 {
		t.Fatalf("AR1 trend = %v, want clearly positive", sig.AR1Trend)
	}
	if sig.VarianceTrend < 0.3 {
		t.Fatalf("variance trend = %v, want clearly positive", sig.VarianceTrend)
	}
}

func TestEarlyWarningFlatOnStationarySeries(t *testing.T) {
	// White noise far from any transition: trends should hover near 0.
	r := rng.New(6)
	series := make([]float64, 4000)
	for i := range series {
		series[i] = r.Norm(0, 1)
	}
	sig, err := EarlyWarning(series, 400)
	if err != nil {
		t.Fatal(err)
	}
	if sig.AR1Trend > 0.5 || sig.AR1Trend < -0.5 {
		t.Fatalf("white-noise AR1 trend = %v, want near 0", sig.AR1Trend)
	}
}

func TestEarlyWarningShortSeries(t *testing.T) {
	if _, err := EarlyWarning(make([]float64, 10), 8); !errors.Is(err, ErrShortSeries) {
		t.Fatal("want ErrShortSeries")
	}
	if _, err := EarlyWarning(make([]float64, 100), 2); !errors.Is(err, ErrShortSeries) {
		t.Fatal("want ErrShortSeries for tiny window")
	}
}

func TestDetectBeforeTipFires(t *testing.T) {
	r := rng.New(7)
	m := DefaultFoldModel()
	res, err := m.RampDriver(0, 0.45, 40000, 1.0, r)
	if err != nil {
		t.Fatal(err)
	}
	det, err := DetectBeforeTip(res, 1000, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Alarmed {
		t.Fatalf("early warning should fire before the tip: %+v", det.Signals)
	}
	if det.LeadTime <= 0 {
		t.Fatalf("lead time = %d, want positive", det.LeadTime)
	}
}

func TestDetectBeforeTipNoTip(t *testing.T) {
	r := rng.New(8)
	m := DefaultFoldModel()
	res, err := m.RampDriver(0, 0.05, 8000, 1.0, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.TipIndex >= 0 {
		t.Skip("unexpected tip at very low driver")
	}
	det, err := DetectBeforeTip(res, 500, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if det.Alarmed && det.LeadTime != -1 {
		t.Fatal("lead time must be -1 without a tip")
	}
}
