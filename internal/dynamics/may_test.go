package dynamics

import (
	"math"
	"testing"

	"resilience/internal/rng"
)

func TestRandomCommunityValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := RandomCommunity(0, 0.5, 1, 1, r); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := RandomCommunity(5, 1.5, 1, 1, r); err == nil {
		t.Error("want error for connectance > 1")
	}
	if _, err := RandomCommunity(5, 0.5, -1, 1, r); err == nil {
		t.Error("want error for negative sigma")
	}
	if _, err := RandomCommunity(5, 0.5, 1, 0, r); err == nil {
		t.Error("want error for zero self-regulation")
	}
}

func TestRandomCommunityStructure(t *testing.T) {
	r := rng.New(2)
	c, err := RandomCommunity(10, 0.3, 0.5, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if c.M[i*10+i] != -2 {
			t.Fatalf("diagonal[%d] = %v, want -2", i, c.M[i*10+i])
		}
	}
	// Off-diagonal density ≈ connectance.
	nonzero := 0
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i != j && c.M[i*10+j] != 0 {
				nonzero++
			}
		}
	}
	frac := float64(nonzero) / 90
	if frac < 0.1 || frac > 0.55 {
		t.Fatalf("off-diagonal density %v far from connectance 0.3", frac)
	}
}

func TestStableDecoupledCommunity(t *testing.T) {
	// sigma = 0: M = −d·I, trivially stable.
	r := rng.New(3)
	c, err := RandomCommunity(8, 0.5, 0, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Stable(50, 0.02, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("decoupled community must be stable")
	}
}

func TestUnstableByConstruction(t *testing.T) {
	// A 2x2 matrix with eigenvalue +1: [[1,0],[0,-1]].
	r := rng.New(4)
	c := &Community{N: 2, M: []float64{1, 0, 0, -1}}
	ok, err := c.Stable(50, 0.01, r)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("matrix with positive eigenvalue must be unstable")
	}
}

func TestStableValidation(t *testing.T) {
	r := rng.New(5)
	c := &Community{N: 1, M: []float64{-1}}
	if _, err := c.Stable(0, 0.01, r); err == nil {
		t.Error("want error for zero horizon")
	}
	if _, err := c.Stable(10, 0, r); err == nil {
		t.Error("want error for zero dt")
	}
	if _, err := c.Stable(1, 2, r); err == nil {
		t.Error("want error for dt >= horizon")
	}
}

func TestMayThreshold(t *testing.T) {
	got := MayThreshold(25, 0.4, 0.5)
	want := 0.5 * math.Sqrt(10)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("threshold = %v, want %v", got, want)
	}
}

func TestMayTransition(t *testing.T) {
	// Below May's bound (σ√(nc) « d) communities are almost surely
	// stable; above it almost surely unstable.
	r := rng.New(6)
	// n=20, c=0.3: threshold σ* = 1/√6 ≈ 0.41 for d=1.
	below, err := StabilityProbability(20, 0.3, 0.15, 1, 30, 60, 0.02, r)
	if err != nil {
		t.Fatal(err)
	}
	above, err := StabilityProbability(20, 0.3, 1.2, 1, 30, 60, 0.02, r)
	if err != nil {
		t.Fatal(err)
	}
	if below < 0.9 {
		t.Fatalf("sub-threshold stability = %v, want ~1", below)
	}
	if above > 0.2 {
		t.Fatalf("super-threshold stability = %v, want ~0", above)
	}
}

func TestComplexityDestabilizes(t *testing.T) {
	// May's paradox at fixed interaction strength: more species ⇒ less
	// stable. This is the §6 Antarctic answer: a simple community can be
	// dynamically stable where a rich one cannot.
	r := rng.New(7)
	const sigma, conn = 0.45, 0.3
	small, err := StabilityProbability(5, conn, sigma, 1, 40, 60, 0.02, r)
	if err != nil {
		t.Fatal(err)
	}
	large, err := StabilityProbability(60, conn, sigma, 1, 40, 60, 0.02, r)
	if err != nil {
		t.Fatal(err)
	}
	if small <= large {
		t.Fatalf("small community stability %v should exceed large %v", small, large)
	}
	if small < 0.8 {
		t.Fatalf("small community stability = %v, want high", small)
	}
	if large > 0.3 {
		t.Fatalf("large community stability = %v, want low", large)
	}
}

func TestStabilityProbabilityValidation(t *testing.T) {
	r := rng.New(8)
	if _, err := StabilityProbability(5, 0.5, 0.5, 1, 0, 10, 0.01, r); err == nil {
		t.Error("want error for zero trials")
	}
	if _, err := StabilityProbability(0, 0.5, 0.5, 1, 5, 10, 0.01, r); err == nil {
		t.Error("want error propagated from community construction")
	}
}
