package dynamics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"resilience/internal/rng"
)

func TestNewEcosystemValidation(t *testing.T) {
	f := ConstFitness([]float64{1})
	if _, err := NewEcosystem(nil, f); err == nil {
		t.Error("want error for no species")
	}
	if _, err := NewEcosystem([]float64{1}, nil); err == nil {
		t.Error("want error for nil fitness")
	}
	if _, err := NewEcosystem([]float64{-1}, f); err == nil {
		t.Error("want error for negative population")
	}
	if _, err := NewEcosystem([]float64{math.NaN()}, f); err == nil {
		t.Error("want error for NaN population")
	}
	if _, err := NewEcosystem([]float64{0, 0}, f); !errors.Is(err, ErrExtinct) {
		t.Error("want ErrExtinct for all-zero populations")
	}
}

func TestReplicatorConservesTotal(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(8)
		pops := make([]float64, n)
		fit := make([]float64, n)
		for i := range pops {
			pops[i] = 1 + r.Float64()*10
			fit[i] = 0.5 + r.Float64()
		}
		e, err := NewEcosystem(pops, ConstFitness(fit))
		if err != nil {
			return false
		}
		before := e.Total()
		for s := 0; s < 20; s++ {
			if err := e.Step(); err != nil {
				return false
			}
		}
		return math.Abs(e.Total()-before) < 1e-6*before
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatorGrowthDirection(t *testing.T) {
	// Fitter species must grow, less fit must shrink, every step.
	e, err := NewEcosystem([]float64{10, 10}, ConstFitness([]float64{2, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if e.Pops[0] <= 10 || e.Pops[1] >= 10 {
		t.Fatalf("pops after step = %v", e.Pops)
	}
}

func TestLinearFitnessDomination(t *testing.T) {
	// The paper: "the most fit species will ultimately dominate the
	// entire ecosystem without a mechanism that penalizes such
	// domination."
	adv := []float64{1, 2, 3, 4, 10}
	pops := []float64{20, 20, 20, 20, 20}
	e, err := NewEcosystem(pops, LinearAdvantage(adv, 1))
	if err != nil {
		t.Fatal(err)
	}
	e.ExtinctBelow = 1e-6
	if err := e.Run(300); err != nil {
		t.Fatal(err)
	}
	dom, err := e.Dominance()
	if err != nil {
		t.Fatal(err)
	}
	if dom < 0.999 {
		t.Fatalf("dominance = %v, want near-total under linear fitness", dom)
	}
}

func TestDensityDependenceMaintainsCoexistence(t *testing.T) {
	// With decreasing πᵢ(pᵢ) the dominating species loses its advantage:
	// all species persist.
	base := []float64{1.0, 1.1, 1.2, 1.3}
	pops := []float64{25, 25, 25, 25}
	e, err := NewEcosystem(pops, DensityDependent(base, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	e.ExtinctBelow = 1e-6
	if err := e.Run(500); err != nil {
		t.Fatal(err)
	}
	if e.Survivors() != 4 {
		t.Fatalf("survivors = %d, want 4 (coexistence)", e.Survivors())
	}
	dom, err := e.Dominance()
	if err != nil {
		t.Fatal(err)
	}
	if dom > 0.6 {
		t.Fatalf("dominance = %v, want bounded under density dependence", dom)
	}
}

func TestConcaveSlowerDominationThanLinear(t *testing.T) {
	// Fig 2: under the concave fitness curve, selection among advantaged
	// variants is weak, so domination takes much longer than under
	// linear fitness with the same advantage spread.
	adv := []float64{8, 9, 10, 11, 12}
	stepsToDominate := func(f Fitness) int {
		e, err := NewEcosystem([]float64{20, 20, 20, 20, 20}, f)
		if err != nil {
			t.Fatal(err)
		}
		for s := 1; s <= 5000; s++ {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
			dom, err := e.Dominance()
			if err != nil {
				t.Fatal(err)
			}
			if dom > 0.9 {
				return s
			}
		}
		return 5001
	}
	linear := stepsToDominate(LinearAdvantage(adv, 1))
	concave := stepsToDominate(ConcaveAdvantage(adv, 1))
	if concave < 3*linear {
		t.Fatalf("concave domination in %d steps vs linear %d: want ≥3× slower", concave, linear)
	}
}

func TestGaussianTraitEnvironmentShift(t *testing.T) {
	traits := []float64{0, 1, 2, 3}
	opt := 0.0
	e, err := NewEcosystem([]float64{25, 25, 25, 25}, GaussianTrait(traits, &opt, 1.0, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Pops[0] < e.Pops[3] {
		t.Fatalf("species at optimum should lead: %v", e.Pops)
	}
	// Shift the environment: optimum moves to trait 3. The trailing
	// species has been driven to a tiny (but nonzero) population and must
	// regrow — the paper's "diversity enables survival of change" story.
	opt = 3
	if err := e.Run(400); err != nil {
		t.Fatal(err)
	}
	if e.Pops[3] < e.Pops[0] {
		t.Fatalf("after shift species 3 should lead: %v", e.Pops)
	}
}

func TestExtinctionThreshold(t *testing.T) {
	e, err := NewEcosystem([]float64{100, 0.5}, ConstFitness([]float64{2, 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	e.ExtinctBelow = 0.1
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if e.Pops[1] != 0 {
		t.Fatalf("species 1 should be extinct, pop = %v", e.Pops[1])
	}
	if e.Survivors() != 1 {
		t.Fatalf("survivors = %d", e.Survivors())
	}
}

func TestTotalExtinctionError(t *testing.T) {
	e, err := NewEcosystem([]float64{0.05, 0.05}, ConstFitness([]float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	e.ExtinctBelow = 1 // everything dies after the first step
	if err := e.Step(); !errors.Is(err, ErrExtinct) {
		t.Fatalf("err = %v, want ErrExtinct", err)
	}
}

func TestStepStochasticPreservesTotal(t *testing.T) {
	r := rng.New(1)
	e, err := NewEcosystem([]float64{30, 30, 40}, ConstFitness([]float64{1, 1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	before := e.Total()
	if err := e.StepStochastic(500, r); err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Total()-before) > 1e-9 {
		t.Fatalf("total changed: %v -> %v", before, e.Total())
	}
}

func TestStepStochasticDrift(t *testing.T) {
	// With neutral fitness and a tiny population, drift must eventually
	// fix one species (classic Wright–Fisher behaviour).
	r := rng.New(2)
	e, err := NewEcosystem([]float64{50, 50}, ConstFitness([]float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	fixed := false
	for s := 0; s < 2000; s++ {
		if err := e.StepStochastic(20, r); err != nil {
			t.Fatal(err)
		}
		if e.Pops[0] == 0 || e.Pops[1] == 0 {
			fixed = true
			break
		}
	}
	if !fixed {
		t.Fatal("neutral drift with N=20 should fix within 2000 generations")
	}
}

func TestStepStochasticSelection(t *testing.T) {
	// Strong selection with a large population: the fit species should
	// win essentially always.
	wins := 0
	for seed := uint64(0); seed < 20; seed++ {
		r := rng.New(seed)
		e, err := NewEcosystem([]float64{50, 50}, ConstFitness([]float64{1.5, 1}))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 300; s++ {
			if err := e.StepStochastic(1000, r); err != nil {
				t.Fatal(err)
			}
		}
		if e.Pops[0] > e.Pops[1] {
			wins++
		}
	}
	if wins < 19 {
		t.Fatalf("fit species won only %d/20 runs", wins)
	}
}

func TestStepStochasticValidation(t *testing.T) {
	r := rng.New(3)
	e, err := NewEcosystem([]float64{1}, ConstFitness([]float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StepStochastic(0, r); err == nil {
		t.Error("want error for n=0")
	}
	bad, err := NewEcosystem([]float64{1}, ConstFitness([]float64{0}))
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.StepStochastic(10, r); err == nil {
		t.Error("want error for zero total fitness")
	}
}

func TestMeanFitness(t *testing.T) {
	e, err := NewEcosystem([]float64{1, 3}, ConstFitness([]float64{2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.MeanFitness()
	if err != nil {
		t.Fatal(err)
	}
	want := (1*2 + 3*4) / 4.0
	if math.Abs(m-want) > 1e-12 {
		t.Fatalf("mean fitness = %v, want %v", m, want)
	}
}

func TestDiversityGAccessor(t *testing.T) {
	e, err := NewEcosystem([]float64{10, 10}, ConstFitness([]float64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	g, err := e.DiversityG()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-1.0/100) > 1e-12 {
		t.Fatalf("G = %v, want 0.01", g)
	}
}

func TestFitnessHelpersOutOfRange(t *testing.T) {
	for name, f := range map[string]Fitness{
		"Const":   ConstFitness([]float64{2}),
		"Linear":  LinearAdvantage([]float64{2}, 1),
		"Concave": ConcaveAdvantage([]float64{2}, 1),
		"Density": DensityDependent([]float64{2}, 1),
	} {
		if got := f(5, 1, 0); got != 1 {
			t.Errorf("%s out-of-range fitness = %v, want fallback 1", name, got)
		}
	}
}
