package dcsp

import (
	"math"

	"resilience/internal/bitstring"
	"resilience/internal/rng"
)

// AnnealingRepairer plans repairs by simulated annealing over the
// configuration space: it searches for a low-violation configuration by
// accepting uphill moves with temperature-dependent probability, then
// schedules the bit flips toward the best configuration found. Unlike
// GreedyRepairer it escapes local minima in deceptive environments, and
// unlike OptimalRepairer its cost does not explode with the search depth
// — the trade is that the repair path is not guaranteed minimal.
type AnnealingRepairer struct {
	// Iterations per plan (default 2000).
	Iterations int
	// StartTemp is the initial temperature (default 2).
	StartTemp float64
	// Cooling is the per-iteration temperature multiplier (default
	// 0.995).
	Cooling float64
}

var _ Repairer = AnnealingRepairer{}

func (a AnnealingRepairer) params() (iters int, temp, cooling float64) {
	iters = a.Iterations
	if iters <= 0 {
		iters = 2000
	}
	temp = a.StartTemp
	if temp <= 0 {
		temp = 2
	}
	cooling = a.Cooling
	if cooling <= 0 || cooling >= 1 {
		cooling = 0.995
	}
	return iters, temp, cooling
}

// energy scores a configuration: 0 iff fit. Graded constraints grade the
// search surface; others give a flat 0/1 landscape (annealing then
// degenerates to random search, which is still an escape hatch).
func energy(s bitstring.String, c Constraint) float64 {
	if g, ok := c.(Graded); ok {
		return float64(g.Violations(s))
	}
	if c.Fit(s) {
		return 0
	}
	return 1
}

// PlanFlips implements Repairer.
func (a AnnealingRepairer) PlanFlips(s bitstring.String, c Constraint, budget int, r *rng.Source) []int {
	if c.Fit(s) || budget <= 0 || s.Len() == 0 {
		return nil
	}
	iters, temp, cooling := a.params()
	current := s.Clone()
	curE := energy(current, c)
	best := current.Clone()
	bestE := curE
	for i := 0; i < iters && bestE > 0; i++ {
		flip := r.Intn(current.Len())
		current.Flip(flip)
		newE := energy(current, c)
		dE := newE - curE
		if dE <= 0 || r.Float64() < math.Exp(-dE/temp) {
			curE = newE
			if curE < bestE {
				bestE = curE
				best = current.Clone()
			}
		} else {
			current.Flip(flip) // reject
		}
		temp *= cooling
	}
	diff, err := s.Xor(best)
	if err != nil {
		return nil
	}
	flips := diff.OneIndexes()
	if len(flips) == 0 {
		// Search made no progress: take a random step rather than
		// stalling forever.
		return []int{r.Intn(s.Len())}
	}
	if budget < len(flips) {
		flips = flips[:budget]
	}
	return flips
}
