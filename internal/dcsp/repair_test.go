package dcsp

import (
	"errors"
	"testing"

	"resilience/internal/bitstring"
	"resilience/internal/rng"
)

func TestGreedyRepairerFixesAllOnes(t *testing.T) {
	r := rng.New(1)
	c := AllOnes{N: 12}
	s := bitstring.Ones(12)
	s.FlipRandom(4, r)
	plan := GreedyRepairer{}.PlanFlips(s, c, 4, r)
	if len(plan) != 4 {
		t.Fatalf("plan length = %d, want 4", len(plan))
	}
	for _, i := range plan {
		s.Flip(i)
	}
	if !c.Fit(s) {
		t.Fatal("greedy plan did not restore fitness")
	}
}

func TestGreedyRepairerStopsWhenFit(t *testing.T) {
	r := rng.New(2)
	c := AllOnes{N: 8}
	if plan := (GreedyRepairer{}).PlanFlips(bitstring.Ones(8), c, 3, r); plan != nil {
		t.Fatalf("fit state should yield empty plan, got %v", plan)
	}
}

func TestGreedyRepairerPartialBudget(t *testing.T) {
	r := rng.New(3)
	c := AllOnes{N: 10}
	s := bitstring.Ones(10)
	s.FlipRandom(5, r)
	plan := GreedyRepairer{}.PlanFlips(s, c, 2, r)
	if len(plan) != 2 {
		t.Fatalf("plan length = %d, want exactly budget 2", len(plan))
	}
	before := c.Violations(s)
	for _, i := range plan {
		s.Flip(i)
	}
	if got := c.Violations(s); got != before-2 {
		t.Fatalf("violations after = %d, want %d", got, before-2)
	}
}

func TestGreedyRepairerNonGradedFallsBack(t *testing.T) {
	r := rng.New(4)
	pred := Predicate{N: 6, Fn: func(s bitstring.String) bool { return s.Count() == 6 }}
	s := bitstring.New(6)
	plan := GreedyRepairer{}.PlanFlips(s, pred, 3, r)
	if len(plan) != 3 {
		t.Fatalf("fallback plan length = %d, want 3", len(plan))
	}
}

func TestGreedyRepairerCNF(t *testing.T) {
	r := rng.New(5)
	cnf, planted, err := RandomPlantedCNF(14, 40, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	damaged := planted.Clone()
	damaged.FlipRandom(3, r)
	res, err := Recover(damaged, cnf, GreedyRepairer{Noise: 0.2}, 1, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("greedy+noise failed to re-satisfy a lightly damaged planted CNF")
	}
}

func TestRandomRepairer(t *testing.T) {
	r := rng.New(6)
	c := AllOnes{N: 4}
	if plan := (RandomRepairer{}).PlanFlips(bitstring.Ones(4), c, 2, r); plan != nil {
		t.Fatal("fit state should yield nil plan")
	}
	s := bitstring.New(4)
	plan := RandomRepairer{}.PlanFlips(s, c, 10, r)
	if len(plan) != 4 {
		t.Fatalf("budget should clamp to n: got %d", len(plan))
	}
}

func TestShortestRepairPathAlreadyFit(t *testing.T) {
	path, err := ShortestRepairPath(bitstring.Ones(5), AllOnes{N: 5}, 1000)
	if err != nil || path != nil {
		t.Fatalf("path = %v err = %v, want nil,nil", path, err)
	}
}

func TestShortestRepairPathEnumerable(t *testing.T) {
	a := bitstring.MustParse("1111")
	b := bitstring.MustParse("0000")
	c, err := NewSet(4, a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := bitstring.MustParse("1110")
	path, err := ShortestRepairPath(s, c, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != 3 {
		t.Fatalf("path = %v, want [3]", path)
	}
}

func TestShortestRepairPathBFS(t *testing.T) {
	// Non-enumerable graded constraint forces the BFS branch.
	c := AtLeast{N: 6, K: 5}
	s := bitstring.MustParse("110000") // needs 3 more ones
	path, err := ShortestRepairPath(s, c, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("BFS path length = %d, want 3", len(path))
	}
	for _, i := range path {
		s.Flip(i)
	}
	if !c.Fit(s) {
		t.Fatal("BFS path does not reach the fit set")
	}
}

func TestShortestRepairPathExhausted(t *testing.T) {
	// An unsatisfiable predicate exhausts any budget.
	c := Predicate{N: 8, Fn: func(bitstring.String) bool { return false }}
	if _, err := ShortestRepairPath(bitstring.New(8), c, 100); !errors.Is(err, ErrSearchExhausted) {
		t.Fatalf("err = %v, want ErrSearchExhausted", err)
	}
}

func TestDistanceToFit(t *testing.T) {
	c := AllOnes{N: 10}
	s := bitstring.Ones(10)
	s.Flip(0)
	s.Flip(5)
	s.Flip(9)
	d, err := DistanceToFit(s, c, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Fatalf("distance = %d, want 3", d)
	}
}

func TestOptimalRepairerUsesShortestPath(t *testing.T) {
	r := rng.New(7)
	c := AllOnes{N: 8}
	s := bitstring.Ones(8)
	s.Flip(1)
	s.Flip(6)
	plan := OptimalRepairer{}.PlanFlips(s, c, 8, r)
	if len(plan) != 2 {
		t.Fatalf("optimal plan length = %d, want 2", len(plan))
	}
	if plan2 := (OptimalRepairer{}).PlanFlips(bitstring.Ones(8), c, 4, r); plan2 != nil {
		t.Fatal("fit state should yield nil plan")
	}
}

func TestOptimalRepairerFallsBackOnExhaustion(t *testing.T) {
	r := rng.New(8)
	// Graded but with a tiny node budget on a big instance: must fall
	// back to greedy rather than return nothing.
	c := AtLeast{N: 40, K: 40}
	s := bitstring.New(40)
	plan := OptimalRepairer{MaxNodes: 10}.PlanFlips(s, c, 5, r)
	if len(plan) == 0 {
		t.Fatal("fallback plan must be non-empty for an unfit state")
	}
}
