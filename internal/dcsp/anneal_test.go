package dcsp

import (
	"testing"

	"resilience/internal/bitstring"
	"resilience/internal/rng"
)

// deceptiveConstraint is fit only at 1ⁿ, but penalizes odd popcounts so
// EVERY single-bit flip from an even-count state looks worse — a local
// minimum that strict greedy descent cannot leave.
type deceptiveConstraint struct {
	n int
}

var _ Graded = deceptiveConstraint{}

func (c deceptiveConstraint) Len() int { return c.n }

func (c deceptiveConstraint) Fit(s bitstring.String) bool {
	return s.Len() == c.n && s.Count() == c.n
}

func (c deceptiveConstraint) Violations(s bitstring.String) int {
	if s.Len() != c.n {
		return c.MaxViolations()
	}
	v := c.n - s.Count()
	if v == 0 {
		return 0
	}
	if s.Count()%2 == 1 {
		v += 3 // odd counts penalized: every single flip from even looks bad
	}
	return v
}

func (c deceptiveConstraint) MaxViolations() int { return c.n + 3 }

func TestAnnealingEscapesDeceptiveMinimum(t *testing.T) {
	const n = 10
	c := deceptiveConstraint{n: n}
	start := bitstring.New(n)
	for i := 0; i < n; i += 2 {
		start.Set(i, true) // count 5... make it even: set 4 bits
	}
	start.Set(8, false) // count 4 (even), violations 6
	if c.Fit(start) {
		t.Fatal("setup: start must be unfit")
	}

	// Strict greedy (no noise) must stall: every single flip increases
	// the violation count from an even state.
	rGreedy := rng.New(1)
	resGreedy, err := Recover(start, c, GreedyRepairer{}, 1, 15, rGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if resGreedy.Recovered {
		t.Fatal("strict greedy should be trapped by the deceptive landscape")
	}

	// Annealing escapes.
	recovered := 0
	for seed := uint64(0); seed < 5; seed++ {
		r := rng.New(seed)
		res, err := Recover(start, c, AnnealingRepairer{Iterations: 5000}, n, 10, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Recovered {
			recovered++
		}
	}
	if recovered < 4 {
		t.Fatalf("annealing recovered only %d/5 runs", recovered)
	}
}

func TestAnnealingFitIsNoop(t *testing.T) {
	r := rng.New(2)
	if plan := (AnnealingRepairer{}).PlanFlips(bitstring.Ones(8), AllOnes{N: 8}, 4, r); plan != nil {
		t.Fatal("fit state should plan nothing")
	}
	if plan := (AnnealingRepairer{}).PlanFlips(bitstring.New(0), AllOnes{N: 0}, 4, r); plan != nil {
		t.Fatal("empty string should plan nothing")
	}
	if plan := (AnnealingRepairer{}).PlanFlips(bitstring.New(4), AllOnes{N: 4}, 0, r); plan != nil {
		t.Fatal("zero budget should plan nothing")
	}
}

func TestAnnealingRespectsBudget(t *testing.T) {
	r := rng.New(3)
	c := AllOnes{N: 16}
	s := bitstring.New(16)
	plan := AnnealingRepairer{Iterations: 4000}.PlanFlips(s, c, 3, r)
	if len(plan) > 3 {
		t.Fatalf("plan length = %d, budget 3", len(plan))
	}
	if len(plan) == 0 {
		t.Fatal("plan should not be empty for an unfit state")
	}
}

func TestAnnealingSolvesPlantedCNF(t *testing.T) {
	r := rng.New(4)
	cnf, planted, err := RandomPlantedCNF(16, 50, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	damaged := planted.Clone()
	damaged.FlipRandom(5, r)
	res, err := Recover(damaged, cnf, AnnealingRepairer{Iterations: 8000}, 4, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("annealing failed to re-satisfy a damaged planted CNF")
	}
}

func TestAnnealingNonGraded(t *testing.T) {
	// Flat landscape: annealing degenerates to random search; on a tiny
	// instance it should still stumble into the single fit config.
	r := rng.New(5)
	pred := Predicate{N: 4, Fn: func(s bitstring.String) bool { return s.Count() == 4 }}
	res, err := Recover(bitstring.New(4), pred, AnnealingRepairer{Iterations: 20000}, 4, 40, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("random-search fallback should solve a 4-bit instance")
	}
}

func TestAnnealingDefaultsApplied(t *testing.T) {
	iters, temp, cooling := AnnealingRepairer{}.params()
	if iters != 2000 || temp != 2 || cooling != 0.995 {
		t.Fatalf("defaults = %d %v %v", iters, temp, cooling)
	}
	iters, temp, cooling = AnnealingRepairer{Iterations: 10, StartTemp: 5, Cooling: 0.9}.params()
	if iters != 10 || temp != 5 || cooling != 0.9 {
		t.Fatalf("explicit = %d %v %v", iters, temp, cooling)
	}
	// Out-of-range cooling falls back.
	_, _, cooling = AnnealingRepairer{Cooling: 1.5}.params()
	if cooling != 0.995 {
		t.Fatalf("cooling fallback = %v", cooling)
	}
}
