package dcsp

import (
	"errors"

	"resilience/internal/bitstring"
	"resilience/internal/rng"
)

// Repairer chooses which bits to flip in one adaptation step. The paper
// models adaptation as "the system flips one bit at a time"; the
// flips-per-step budget is the adaptability knob of §4.4 ("we quantify the
// speed of an adaptation by the number of bits an agent can flip at a
// time").
type Repairer interface {
	// PlanFlips returns up to budget distinct bit indexes to flip in
	// state s under constraint c. Returning an empty plan means the
	// repairer is stuck this step.
	PlanFlips(s bitstring.String, c Constraint, budget int, r *rng.Source) []int
}

// GreedyRepairer flips, at each step, the bits that most reduce the
// violation count of a Graded constraint. With probability Noise it takes
// a random walk step instead (a WalkSAT-style escape from local minima).
type GreedyRepairer struct {
	// Noise in [0,1]: probability of flipping a random bit instead of the
	// greedy choice. Zero is pure hill climbing.
	Noise float64
}

var _ Repairer = GreedyRepairer{}

// PlanFlips implements Repairer. For non-Graded constraints it degrades to
// random flips.
func (g GreedyRepairer) PlanFlips(s bitstring.String, c Constraint, budget int, r *rng.Source) []int {
	graded, ok := c.(Graded)
	if !ok {
		return randomFlips(s.Len(), budget, r)
	}
	if graded.Violations(s) == 0 {
		return nil
	}
	work := s.Clone()
	plan := make([]int, 0, budget)
	for len(plan) < budget {
		cur := graded.Violations(work)
		if cur == 0 {
			break
		}
		if g.Noise > 0 && r.Bool(g.Noise) {
			i := r.Intn(work.Len())
			work.Flip(i)
			plan = append(plan, i)
			continue
		}
		best, bestV := -1, cur
		// Evaluate each single-bit flip; ties broken by random scan
		// order so repeated runs do not share deterministic ruts.
		for _, i := range r.Perm(work.Len()) {
			work.Flip(i)
			v := graded.Violations(work)
			work.Flip(i)
			if v < bestV {
				best, bestV = i, v
			}
		}
		if best < 0 {
			// Local minimum: random escape.
			best = r.Intn(work.Len())
		}
		work.Flip(best)
		plan = append(plan, best)
	}
	return plan
}

// RandomRepairer flips uniformly random bits — the no-intelligence
// baseline.
type RandomRepairer struct{}

var _ Repairer = RandomRepairer{}

// PlanFlips implements Repairer.
func (RandomRepairer) PlanFlips(s bitstring.String, c Constraint, budget int, r *rng.Source) []int {
	if c.Fit(s) {
		return nil
	}
	return randomFlips(s.Len(), budget, r)
}

func randomFlips(n, budget int, r *rng.Source) []int {
	if budget <= 0 || n == 0 {
		return nil
	}
	if budget > n {
		budget = n
	}
	return r.Perm(n)[:budget]
}

// OptimalRepairer plans flips along a true shortest path to the fit set,
// found by breadth-first search over the configuration hypercube. It is
// exact but exponential in the search depth, so it carries a node budget;
// if the budget is exhausted it falls back to greedy planning.
type OptimalRepairer struct {
	// MaxNodes bounds the BFS frontier; 0 means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes is the BFS node budget used when MaxNodes is zero.
const DefaultMaxNodes = 1 << 18

var _ Repairer = OptimalRepairer{}

// PlanFlips implements Repairer.
func (o OptimalRepairer) PlanFlips(s bitstring.String, c Constraint, budget int, r *rng.Source) []int {
	if c.Fit(s) {
		return nil
	}
	path, err := ShortestRepairPath(s, c, o.maxNodes())
	if err != nil || len(path) == 0 {
		return GreedyRepairer{Noise: 0.1}.PlanFlips(s, c, budget, r)
	}
	if budget > len(path) {
		budget = len(path)
	}
	return path[:budget]
}

func (o OptimalRepairer) maxNodes() int {
	if o.MaxNodes > 0 {
		return o.MaxNodes
	}
	return DefaultMaxNodes
}

// ErrSearchExhausted is returned when a bounded search gives up before
// finding a fit configuration.
var ErrSearchExhausted = errors.New("dcsp: search budget exhausted before reaching the fit set")

// ShortestRepairPath returns a minimum-length sequence of bit flips that
// turns s into a fit configuration, by BFS over the hypercube with the
// given node budget.
//
// If the constraint is Enumerable the search instead picks the nearest fit
// configuration by Hamming distance directly, which is exact and cheap.
func ShortestRepairPath(s bitstring.String, c Constraint, maxNodes int) ([]int, error) {
	if c.Fit(s) {
		return nil, nil
	}
	if en, ok := c.(Enumerable); ok {
		return nearestFitFlips(s, en)
	}
	type node struct {
		state  bitstring.String
		parent int
		flip   int
	}
	nodes := []node{{state: s, parent: -1, flip: -1}}
	visited := map[string]struct{}{s.Key(): {}}
	for head := 0; head < len(nodes); head++ {
		cur := nodes[head]
		for i := 0; i < s.Len(); i++ {
			next := cur.state.Clone()
			next.Flip(i)
			key := next.Key()
			if _, seen := visited[key]; seen {
				continue
			}
			visited[key] = struct{}{}
			nodes = append(nodes, node{state: next, parent: head, flip: i})
			if c.Fit(next) {
				// Reconstruct path.
				var rev []int
				for idx := len(nodes) - 1; idx > 0; idx = nodes[idx].parent {
					rev = append(rev, nodes[idx].flip)
				}
				path := make([]int, 0, len(rev))
				for j := len(rev) - 1; j >= 0; j-- {
					path = append(path, rev[j])
				}
				return path, nil
			}
			if len(nodes) > maxNodes {
				return nil, ErrSearchExhausted
			}
		}
	}
	return nil, ErrSearchExhausted
}

func nearestFitFlips(s bitstring.String, en Enumerable) ([]int, error) {
	bestDist := -1
	var best bitstring.String
	for _, cfg := range en.FitConfigs() {
		d, err := s.Hamming(cfg)
		if err != nil {
			continue
		}
		if bestDist < 0 || d < bestDist {
			bestDist, best = d, cfg
		}
	}
	if bestDist < 0 {
		return nil, ErrSearchExhausted
	}
	diff, err := s.Xor(best)
	if err != nil {
		return nil, err
	}
	return diff.OneIndexes(), nil
}

// DistanceToFit returns the minimum number of bit flips from s to the fit
// set of c — the quantity that determines recoverability under a given
// repair rate.
func DistanceToFit(s bitstring.String, c Constraint, maxNodes int) (int, error) {
	path, err := ShortestRepairPath(s, c, maxNodes)
	if err != nil {
		return 0, err
	}
	return len(path), nil
}
