package dcsp

import (
	"errors"
	"fmt"
	"sort"

	"resilience/internal/bitstring"
	"resilience/internal/metrics"
	"resilience/internal/rng"
)

// Event is a shock in the dynamic CSP: "the environment changes from C to
// C′. It is also possible for the system to change its state as a result
// of an event."
type Event interface {
	// Apply transforms the environment and/or state.
	Apply(env Constraint, s bitstring.String, r *rng.Source) (Constraint, bitstring.String)
}

// DamageEvent perturbs only the state using a DamageModel.
type DamageEvent struct {
	Model DamageModel
}

var _ Event = DamageEvent{}

// Apply implements Event.
func (e DamageEvent) Apply(env Constraint, s bitstring.String, r *rng.Source) (Constraint, bitstring.String) {
	if e.Model == nil {
		return env, s
	}
	return env, e.Model.Damage(s, r)
}

// EnvironmentShift replaces the constraint: the world changed and the old
// configuration may no longer be fit.
type EnvironmentShift struct {
	NewEnv Constraint
}

var _ Event = EnvironmentShift{}

// Apply implements Event.
func (e EnvironmentShift) Apply(env Constraint, s bitstring.String, r *rng.Source) (Constraint, bitstring.String) {
	if e.NewEnv == nil {
		return env, s
	}
	return e.NewEnv, s
}

// CompositeEvent applies several events in order — e.g. an earthquake that
// both shifts the environment and damages the state.
type CompositeEvent []Event

var _ Event = CompositeEvent(nil)

// Apply implements Event.
func (ce CompositeEvent) Apply(env Constraint, s bitstring.String, r *rng.Source) (Constraint, bitstring.String) {
	for _, e := range ce {
		env, s = e.Apply(env, s, r)
	}
	return env, s
}

// TimedEvent schedules an event at a simulation step.
type TimedEvent struct {
	Step  int
	Event Event
}

// System is a running dynamic-CSP system: an environment, a configuration,
// and a repair capability.
type System struct {
	Env          Constraint
	State        bitstring.String
	Repairer     Repairer
	FlipsPerStep int
}

// NewSystem builds a System, validating dimensions.
func NewSystem(env Constraint, initial bitstring.String, rep Repairer, flipsPerStep int) (*System, error) {
	if env == nil {
		return nil, errors.New("dcsp: nil environment")
	}
	if initial.Len() != env.Len() {
		return nil, ErrDimensionMismatch
	}
	if rep == nil {
		return nil, errors.New("dcsp: nil repairer")
	}
	if flipsPerStep < 1 {
		return nil, fmt.Errorf("dcsp: flipsPerStep %d must be >= 1", flipsPerStep)
	}
	return &System{Env: env, State: initial.Clone(), Repairer: rep, FlipsPerStep: flipsPerStep}, nil
}

// Quality returns the system quality in [0, 100]: full when fit; for
// Graded environments it degrades linearly with the violation fraction;
// otherwise any unfit state scores zero.
func (sys *System) Quality() float64 {
	if sys.Env.Fit(sys.State) {
		return metrics.FullQuality
	}
	if g, ok := sys.Env.(Graded); ok {
		frac := float64(g.Violations(sys.State)) / float64(g.MaxViolations())
		if frac > 1 {
			frac = 1
		}
		return metrics.FullQuality * (1 - frac)
	}
	return 0
}

// Step performs one adaptation step: if unfit, ask the repairer for up to
// FlipsPerStep flips and apply them.
func (sys *System) Step(r *rng.Source) {
	if sys.Env.Fit(sys.State) {
		return
	}
	for _, i := range sys.Repairer.PlanFlips(sys.State, sys.Env, sys.FlipsPerStep, r) {
		sys.State.Flip(i)
	}
}

// Run simulates steps time steps, applying scheduled events before the
// repair action of their step, and returns the quality trace (one sample
// per step, plus the initial sample).
func (sys *System) Run(steps int, schedule []TimedEvent, r *rng.Source) (*metrics.Trace, error) {
	if steps < 0 {
		return nil, fmt.Errorf("dcsp: negative steps %d", steps)
	}
	events := make([]TimedEvent, len(schedule))
	copy(events, schedule)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Step < events[j].Step })
	// Sample quality at the start of each step, after that step's events
	// but before repair, so the abrupt drop of Fig 3 is visible in the
	// trace; a final sample captures the state after the last repair.
	tr := metrics.NewTrace(0, 1)
	next := 0
	for t := 0; t < steps; t++ {
		for next < len(events) && events[next].Step == t {
			sys.Env, sys.State = events[next].Event.Apply(sys.Env, sys.State, r)
			next++
		}
		tr.Append(sys.Quality())
		sys.Step(r)
	}
	tr.Append(sys.Quality())
	return tr, nil
}
