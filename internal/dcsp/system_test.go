package dcsp

import (
	"errors"
	"testing"

	"resilience/internal/bitstring"
	"resilience/internal/metrics"
	"resilience/internal/rng"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, bitstring.New(4), GreedyRepairer{}, 1); err == nil {
		t.Error("want error for nil env")
	}
	if _, err := NewSystem(AllOnes{N: 4}, bitstring.New(5), GreedyRepairer{}, 1); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("want ErrDimensionMismatch")
	}
	if _, err := NewSystem(AllOnes{N: 4}, bitstring.New(4), nil, 1); err == nil {
		t.Error("want error for nil repairer")
	}
	if _, err := NewSystem(AllOnes{N: 4}, bitstring.New(4), GreedyRepairer{}, 0); err == nil {
		t.Error("want error for zero flipsPerStep")
	}
}

func TestSystemQualityGraded(t *testing.T) {
	sys, err := NewSystem(AllOnes{N: 10}, bitstring.Ones(10), GreedyRepairer{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q := sys.Quality(); q != metrics.FullQuality {
		t.Fatalf("fit quality = %v", q)
	}
	sys.State.Flip(0)
	sys.State.Flip(1)
	if q := sys.Quality(); q != 80 {
		t.Fatalf("quality = %v, want 80 (2/10 violated)", q)
	}
}

func TestSystemQualityNonGraded(t *testing.T) {
	pred := Predicate{N: 4, Fn: func(s bitstring.String) bool { return s.Count() == 4 }}
	sys, err := NewSystem(pred, bitstring.New(4), RandomRepairer{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q := sys.Quality(); q != 0 {
		t.Fatalf("unfit non-graded quality = %v, want 0", q)
	}
}

func TestSystemStepRepairs(t *testing.T) {
	r := rng.New(1)
	sys, err := NewSystem(AllOnes{N: 8}, bitstring.Ones(8), GreedyRepairer{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys.State.FlipRandom(4, r)
	sys.Step(r)
	sys.Step(r)
	if !sys.Env.Fit(sys.State) {
		t.Fatal("two steps of 2 repairs should fix 4 failures")
	}
	// Step on a fit system is a no-op.
	before := sys.State.Clone()
	sys.Step(r)
	if !sys.State.Equal(before) {
		t.Fatal("Step mutated a fit state")
	}
}

func TestSystemRunWithEvents(t *testing.T) {
	r := rng.New(2)
	sys, err := NewSystem(AllOnes{N: 10}, bitstring.Ones(10), GreedyRepairer{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedule := []TimedEvent{
		{Step: 3, Event: DamageEvent{Model: ExactFlips{K: 4}}},
	}
	tr, err := sys.Run(20, schedule, r)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 21 {
		t.Fatalf("trace length = %d, want 21", tr.Len())
	}
	rep, err := metrics.Assess(tr, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %d, want 1", len(rep.Episodes))
	}
	if !rep.Episodes[0].Recovered() {
		t.Fatal("system should recover within the run")
	}
	// 4 failures at 1 repair/step: recovery takes 4 steps.
	if got := rep.Episodes[0].RecoveryTime; got != 4 {
		t.Fatalf("recovery time = %v, want 4", got)
	}
}

func TestSystemRunEnvironmentShift(t *testing.T) {
	r := rng.New(3)
	sys, err := NewSystem(AtLeast{N: 10, K: 2}, bitstring.MustParse("1100000000"), GreedyRepairer{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	schedule := []TimedEvent{
		{Step: 2, Event: EnvironmentShift{NewEnv: AtLeast{N: 10, K: 6}}},
	}
	tr, err := sys.Run(15, schedule, r)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Env.Fit(sys.State) {
		t.Fatal("system should adapt to the new environment")
	}
	if sys.State.Count() < 6 {
		t.Fatalf("final ones = %d, want >= 6", sys.State.Count())
	}
	if tr.Len() != 16 {
		t.Fatalf("trace length = %d", tr.Len())
	}
}

func TestSystemRunNegativeSteps(t *testing.T) {
	r := rng.New(4)
	sys, err := NewSystem(AllOnes{N: 4}, bitstring.Ones(4), GreedyRepairer{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(-1, nil, r); err == nil {
		t.Fatal("want error for negative steps")
	}
}

func TestCompositeEvent(t *testing.T) {
	r := rng.New(5)
	env := Constraint(AllOnes{N: 6})
	s := bitstring.Ones(6)
	ev := CompositeEvent{
		EnvironmentShift{NewEnv: AtLeast{N: 6, K: 3}},
		DamageEvent{Model: ExactFlips{K: 2}},
	}
	env2, s2 := ev.Apply(env, s, r)
	if _, ok := env2.(AtLeast); !ok {
		t.Fatalf("env not shifted: %T", env2)
	}
	h, err := s.Hamming(s2)
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Fatalf("damage hamming = %d, want 2", h)
	}
}

func TestNilEventFields(t *testing.T) {
	r := rng.New(6)
	env := Constraint(AllOnes{N: 3})
	s := bitstring.Ones(3)
	env2, s2 := DamageEvent{}.Apply(env, s, r)
	if env2 != env || !s2.Equal(s) {
		t.Error("nil damage model should be identity")
	}
	env3, s3 := EnvironmentShift{}.Apply(env, s, r)
	if env3 != env || !s3.Equal(s) {
		t.Error("nil new env should be identity")
	}
}

func TestEventsAppliedInStepOrder(t *testing.T) {
	r := rng.New(7)
	sys, err := NewSystem(AllOnes{N: 6}, bitstring.Ones(6), GreedyRepairer{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Schedule deliberately out of order; Run must sort.
	schedule := []TimedEvent{
		{Step: 8, Event: DamageEvent{Model: ExactFlips{K: 1}}},
		{Step: 2, Event: DamageEvent{Model: ExactFlips{K: 1}}},
	}
	tr, err := sys.Run(12, schedule, r)
	if err != nil {
		t.Fatal(err)
	}
	eps := tr.Episodes(99)
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2 separate dips", len(eps))
	}
}
