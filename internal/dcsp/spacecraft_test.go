package dcsp

import (
	"testing"

	"resilience/internal/rng"
)

func TestNewSpacecraftValidation(t *testing.T) {
	if _, err := NewSpacecraft(0, 1, 1); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := NewSpacecraft(5, -1, 1); err == nil {
		t.Error("want error for negative hits")
	}
	if _, err := NewSpacecraft(5, 6, 1); err == nil {
		t.Error("want error for hits > n")
	}
	if _, err := NewSpacecraft(5, 2, 0); err == nil {
		t.Error("want error for zero repairs per step")
	}
}

func TestSpacecraftKRecoverablePaperClaim(t *testing.T) {
	// §4.2: n components, debris causes at most k failures, fix one per
	// step ⇒ k-recoverable.
	sc, err := NewSpacecraft(32, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.VerifyKRecoverable()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recoverable {
		t.Fatalf("paper claim violated: %+v", rep)
	}
	if rep.K != 5 {
		t.Fatalf("K = %d, want 5", rep.K)
	}
	if rep.WorstSteps != 5 {
		t.Fatalf("worst steps = %d, want 5 (tight)", rep.WorstSteps)
	}
}

func TestSpacecraftFasterRepairHalvesK(t *testing.T) {
	sc, err := NewSpacecraft(32, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sc.VerifyKRecoverable()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recoverable || rep.K != 3 {
		t.Fatalf("report = %+v, want 3-recoverable", rep)
	}
}

func TestSpacecraftMission(t *testing.T) {
	r := rng.New(42)
	sc, err := NewSpacecraft(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	mission, err := sc.SimulateMission(2000, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	if mission.Strikes == 0 {
		t.Fatal("expected at least one debris strike at rate 0.05 over 2000 steps")
	}
	if len(mission.Availability) != 2000 {
		t.Fatalf("availability samples = %d", len(mission.Availability))
	}
	// Quiescence + k-recoverability: availability never stays degraded
	// longer than MaxDebrisHits consecutive steps.
	run := 0
	for _, q := range mission.Availability {
		if q < 100 {
			run++
			if run > sc.MaxDebrisHits {
				t.Fatalf("degraded run %d exceeds k=%d", run, sc.MaxDebrisHits)
			}
		} else {
			run = 0
		}
	}
}

func TestSpacecraftMissionNegativeSteps(t *testing.T) {
	r := rng.New(1)
	sc, err := NewSpacecraft(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.SimulateMission(-1, 0.1, r); err == nil {
		t.Fatal("want error for negative steps")
	}
}

func TestSpacecraftFailedComponents(t *testing.T) {
	r := rng.New(2)
	sc, err := NewSpacecraft(10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.FailedComponents() != 0 {
		t.Fatal("new spacecraft should be healthy")
	}
	env, state := sc.DebrisStrike().Apply(sc.System().Env, sc.System().State, r)
	sc.System().Env, sc.System().State = env, state
	if f := sc.FailedComponents(); f < 1 || f > 3 {
		t.Fatalf("failed components = %d, want 1..3", f)
	}
}
