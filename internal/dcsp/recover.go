package dcsp

import (
	"errors"
	"fmt"

	"resilience/internal/bitstring"
	"resilience/internal/rng"
)

// DamageModel generates perturbations of a given event type D — "an event
// (a shock) of type D (say, earthquake of magnitude 7)".
type DamageModel interface {
	// Damage returns a perturbed copy of s.
	Damage(s bitstring.String, r *rng.Source) bitstring.String
}

// ExactFlips damages the state by flipping exactly K distinct random bits.
type ExactFlips struct {
	K int
}

var _ DamageModel = ExactFlips{}

// Damage implements DamageModel.
func (d ExactFlips) Damage(s bitstring.String, r *rng.Source) bitstring.String {
	out := s.Clone()
	out.FlipRandom(d.K, r)
	return out
}

// UpToFlips flips a uniform 1..K distinct random bits — the spacecraft's
// "at most k component failures".
type UpToFlips struct {
	K int
}

var _ DamageModel = UpToFlips{}

// Damage implements DamageModel.
func (d UpToFlips) Damage(s bitstring.String, r *rng.Source) bitstring.String {
	out := s.Clone()
	if d.K <= 0 {
		return out
	}
	out.FlipRandom(1+r.Intn(d.K), r)
	return out
}

// ClearBits zeroes up to K random currently-set bits — component failures
// that can only break working parts (space debris cannot "fix" a
// component).
type ClearBits struct {
	K int
}

var _ DamageModel = ClearBits{}

// Damage implements DamageModel.
func (d ClearBits) Damage(s bitstring.String, r *rng.Source) bitstring.String {
	out := s.Clone()
	ones := out.OneIndexes()
	if d.K <= 0 || len(ones) == 0 {
		return out
	}
	k := d.K
	if k > len(ones) {
		k = len(ones)
	}
	r.Shuffle(len(ones), func(i, j int) { ones[i], ones[j] = ones[j], ones[i] })
	for _, i := range ones[:k] {
		out.Set(i, false)
	}
	return out
}

// RecoveryResult records one recovery attempt.
type RecoveryResult struct {
	// Steps is the number of repair steps taken (0 if already fit).
	Steps int
	// Recovered reports whether a fit configuration was reached within
	// the step limit.
	Recovered bool
	// FlipsUsed is the total number of bit flips performed.
	FlipsUsed int
	// Final is the final configuration.
	Final bitstring.String
}

// Recover runs the repair loop: at each step the repairer may flip up to
// flipsPerStep bits; recovery succeeds when the state becomes fit. It
// stops after maxSteps steps.
func Recover(s bitstring.String, c Constraint, rep Repairer, flipsPerStep, maxSteps int, r *rng.Source) (RecoveryResult, error) {
	if rep == nil {
		return RecoveryResult{}, errors.New("dcsp: nil repairer")
	}
	if flipsPerStep < 1 {
		return RecoveryResult{}, fmt.Errorf("dcsp: flipsPerStep %d must be >= 1", flipsPerStep)
	}
	state := s.Clone()
	res := RecoveryResult{}
	for step := 0; step < maxSteps; step++ {
		if c.Fit(state) {
			res.Recovered = true
			res.Final = state
			return res, nil
		}
		plan := rep.PlanFlips(state, c, flipsPerStep, r)
		res.Steps++
		for _, i := range plan {
			state.Flip(i)
			res.FlipsUsed++
		}
	}
	res.Recovered = c.Fit(state)
	res.Final = state
	return res, nil
}

// RecoverabilityReport summarizes a k-recoverability check.
type RecoverabilityReport struct {
	// Trials is the number of (fit state, damage) pairs examined.
	Trials int
	// Failures is how many trials did not recover within K steps.
	Failures int
	// WorstSteps is the largest recovery step count observed among
	// successful recoveries.
	WorstSteps int
	// Recoverable is true iff every trial recovered within K steps —
	// the paper's definition of a k-recoverable system.
	Recoverable bool
	// K is the step bound checked.
	K int
}

// FailureRate returns Failures/Trials, or 0 for an empty report.
func (rr RecoverabilityReport) FailureRate() float64 {
	if rr.Trials == 0 {
		return 0
	}
	return float64(rr.Failures) / float64(rr.Trials)
}

// CheckKRecoverableMC estimates k-recoverability by Monte Carlo: it
// repeatedly picks a fit starting state, applies the damage model, and
// runs the repair loop for at most k steps.
//
// Starting states are drawn from the constraint's fit set when it is
// Enumerable; otherwise the caller must supply at least one fit seed
// state.
func CheckKRecoverableMC(c Constraint, dm DamageModel, rep Repairer, flipsPerStep, k, trials int, r *rng.Source, seeds ...bitstring.String) (RecoverabilityReport, error) {
	if k < 0 || trials <= 0 {
		return RecoverabilityReport{}, fmt.Errorf("dcsp: invalid check parameters k=%d trials=%d", k, trials)
	}
	var pool []bitstring.String
	if en, ok := c.(Enumerable); ok {
		pool = en.FitConfigs()
	}
	for _, s := range seeds {
		if c.Fit(s) {
			pool = append(pool, s)
		}
	}
	if len(pool) == 0 {
		return RecoverabilityReport{}, errors.New("dcsp: no fit starting states available")
	}
	report := RecoverabilityReport{K: k}
	for i := 0; i < trials; i++ {
		start := pool[r.Intn(len(pool))]
		damaged := dm.Damage(start, r)
		res, err := Recover(damaged, c, rep, flipsPerStep, k, r)
		if err != nil {
			return RecoverabilityReport{}, err
		}
		report.Trials++
		if !res.Recovered {
			report.Failures++
		} else if res.Steps > report.WorstSteps {
			report.WorstSteps = res.Steps
		}
	}
	report.Recoverable = report.Failures == 0
	return report, nil
}

// CheckKRecoverableExhaustive verifies k-recoverability exactly for an
// Enumerable constraint under damage of up to maxFlips arbitrary bit
// flips: for every fit state and every damage pattern of 1..maxFlips
// flips, the shortest repair path must be coverable within k steps of
// flipsPerStep flips each. This matches the paper's universally
// quantified definition ("for ANY perturbations of type D").
//
// Complexity is |C| × Σ C(n, j) shortest-path computations, so it is meant
// for small n and maxFlips.
func CheckKRecoverableExhaustive(c Enumerable, maxFlips, flipsPerStep, k int, searchNodes int) (RecoverabilityReport, error) {
	if maxFlips < 0 || flipsPerStep < 1 || k < 0 {
		return RecoverabilityReport{}, fmt.Errorf("dcsp: invalid parameters maxFlips=%d flipsPerStep=%d k=%d", maxFlips, flipsPerStep, k)
	}
	if searchNodes <= 0 {
		searchNodes = DefaultMaxNodes
	}
	report := RecoverabilityReport{K: k}
	n := c.Len()
	budgetFlips := k * flipsPerStep
	for _, start := range c.FitConfigs() {
		err := forEachSubsetUpTo(n, maxFlips, func(flips []int) error {
			damaged := start.Clone()
			for _, i := range flips {
				damaged.Flip(i)
			}
			report.Trials++
			dist, err := DistanceToFit(damaged, c, searchNodes)
			if err != nil {
				return err
			}
			stepsNeeded := (dist + flipsPerStep - 1) / flipsPerStep
			if dist > budgetFlips {
				report.Failures++
			} else if stepsNeeded > report.WorstSteps {
				report.WorstSteps = stepsNeeded
			}
			return nil
		})
		if err != nil {
			return RecoverabilityReport{}, err
		}
	}
	report.Recoverable = report.Failures == 0
	return report, nil
}

// forEachSubsetUpTo enumerates every non-empty subset of {0..n-1} with at
// most maxSize elements.
func forEachSubsetUpTo(n, maxSize int, fn func([]int) error) error {
	if maxSize > n {
		maxSize = n
	}
	subset := make([]int, 0, maxSize)
	var walk func(next int) error
	walk = func(next int) error {
		if len(subset) > 0 {
			if err := fn(subset); err != nil {
				return err
			}
		}
		if len(subset) == maxSize {
			return nil
		}
		for i := next; i < n; i++ {
			subset = append(subset, i)
			if err := walk(i + 1); err != nil {
				return err
			}
			subset = subset[:len(subset)-1]
		}
		return nil
	}
	return walk(0)
}
