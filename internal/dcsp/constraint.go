// Package dcsp implements the paper's mathematical model of resilience
// (§4, Fig 4): a system whose status is a bit string of length n operating
// in an environment represented as a constraint — "a subset C of all fit
// configurations. A system configuration s is said to be fit iff s ∈ C."
// Shocks (events of type D) change the environment from C to C′ and may
// damage the state; the system adapts "by flipping some bits" — one or
// more per step — and is k-recoverable if it can fix its configuration for
// any perturbation of type D within k steps.
package dcsp

import (
	"errors"
	"fmt"

	"resilience/internal/bitstring"
	"resilience/internal/rng"
)

// ErrDimensionMismatch is returned when a configuration's length does not
// match the constraint's variable count.
var ErrDimensionMismatch = errors.New("dcsp: configuration length does not match constraint")

// Constraint is an environment: the set C of fit configurations over
// bit strings of length Len().
type Constraint interface {
	// Len is the number of Boolean variables n.
	Len() int
	// Fit reports whether s ∈ C. Implementations treat a wrong-length s
	// as unfit.
	Fit(s bitstring.String) bool
}

// Graded is a constraint that can quantify how far a configuration is from
// fitness, enabling greedy repair and partial-quality measurement.
type Graded interface {
	Constraint
	// Violations returns a non-negative count that is zero iff Fit(s).
	Violations(s bitstring.String) int
	// MaxViolations is the largest value Violations can return.
	MaxViolations() int
}

// Enumerable is a constraint whose fit set can be listed explicitly,
// enabling exact distance computation and exhaustive recoverability checks.
type Enumerable interface {
	Constraint
	// FitConfigs returns all fit configurations. Callers must not mutate
	// the returned strings.
	FitConfigs() []bitstring.String
}

// AllOnes is the spacecraft constraint of §4.2: C = 1ⁿ — "every component
// of the spacecraft is good".
type AllOnes struct {
	N int
}

var (
	_ Graded     = AllOnes{}
	_ Enumerable = AllOnes{}
)

// Len returns the number of variables.
func (c AllOnes) Len() int { return c.N }

// Fit reports whether every bit is one.
func (c AllOnes) Fit(s bitstring.String) bool {
	return s.Len() == c.N && s.Count() == c.N
}

// Violations counts the failed (zero) components.
func (c AllOnes) Violations(s bitstring.String) int {
	if s.Len() != c.N {
		return c.N
	}
	return c.N - s.Count()
}

// MaxViolations returns N.
func (c AllOnes) MaxViolations() int { return c.N }

// FitConfigs returns the single configuration 1ⁿ.
func (c AllOnes) FitConfigs() []bitstring.String {
	return []bitstring.String{bitstring.Ones(c.N)}
}

// AtLeast requires at least K ones — a capacity constraint: the system
// needs K functioning units out of N (e.g. generation capacity, §3.1.2).
type AtLeast struct {
	N, K int
}

var _ Graded = AtLeast{}

// Len returns the number of variables.
func (c AtLeast) Len() int { return c.N }

// Fit reports whether at least K bits are set.
func (c AtLeast) Fit(s bitstring.String) bool {
	return s.Len() == c.N && s.Count() >= c.K
}

// Violations returns how many additional ones are needed.
func (c AtLeast) Violations(s bitstring.String) int {
	if s.Len() != c.N {
		return c.K
	}
	if d := c.K - s.Count(); d > 0 {
		return d
	}
	return 0
}

// MaxViolations returns K.
func (c AtLeast) MaxViolations() int { return c.K }

// Mask requires the bits selected by Care to equal Template. Bits outside
// Care are free. It models environments that pin some variables — e.g. a
// regulation fixing part of the configuration.
type Mask struct {
	Template bitstring.String
	Care     bitstring.String
}

var _ Graded = Mask{}

// NewMask builds a Mask constraint; template and care must have equal
// length.
func NewMask(template, care bitstring.String) (Mask, error) {
	if template.Len() != care.Len() {
		return Mask{}, ErrDimensionMismatch
	}
	return Mask{Template: template.Clone(), Care: care.Clone()}, nil
}

// Len returns the number of variables.
func (c Mask) Len() int { return c.Template.Len() }

// Fit reports whether all cared bits match the template.
func (c Mask) Fit(s bitstring.String) bool { return c.Violations(s) == 0 && s.Len() == c.Len() }

// Violations counts cared bits that differ from the template. It runs
// allocation-free: greedy repair probes it once per candidate flip, so a
// materialized XOR/AND intermediate here dominated the whole suite's
// allocation profile.
func (c Mask) Violations(s bitstring.String) int {
	d, err := s.MaskedHamming(c.Template, c.Care)
	if err != nil {
		return c.MaxViolations()
	}
	return d
}

// MaxViolations returns the number of cared bits.
func (c Mask) MaxViolations() int {
	if n := c.Care.Count(); n > 0 {
		return n
	}
	return 1
}

// Set is an explicit environment: the fit set is exactly the given
// configurations.
type Set struct {
	n       int
	configs []bitstring.String
	index   map[string]struct{}
}

var _ Enumerable = (*Set)(nil)

// NewSet builds a Set constraint over n variables from the given fit
// configurations; all must have length n and there must be at least one.
func NewSet(n int, configs ...bitstring.String) (*Set, error) {
	if len(configs) == 0 {
		return nil, errors.New("dcsp: set constraint needs at least one fit configuration")
	}
	s := &Set{n: n, index: make(map[string]struct{}, len(configs))}
	for _, c := range configs {
		if c.Len() != n {
			return nil, ErrDimensionMismatch
		}
		key := c.Key()
		if _, dup := s.index[key]; dup {
			continue
		}
		s.index[key] = struct{}{}
		s.configs = append(s.configs, c.Clone())
	}
	return s, nil
}

// Len returns the number of variables.
func (c *Set) Len() int { return c.n }

// Fit reports membership in the explicit fit set.
func (c *Set) Fit(s bitstring.String) bool {
	if s.Len() != c.n {
		return false
	}
	_, ok := c.index[s.Key()]
	return ok
}

// FitConfigs lists the fit set.
func (c *Set) FitConfigs() []bitstring.String { return c.configs }

// Predicate wraps an arbitrary fitness test.
type Predicate struct {
	N  int
	Fn func(bitstring.String) bool
}

var _ Constraint = Predicate{}

// Len returns the number of variables.
func (c Predicate) Len() int { return c.N }

// Fit applies the predicate.
func (c Predicate) Fit(s bitstring.String) bool {
	return s.Len() == c.N && c.Fn != nil && c.Fn(s)
}

// Literal is a possibly negated variable reference in a CNF clause.
type Literal struct {
	Var int
	Neg bool
}

// Clause is a disjunction of literals.
type Clause []Literal

// Satisfied reports whether any literal of the clause holds under s.
func (cl Clause) Satisfied(s bitstring.String) bool {
	for _, lit := range cl {
		if s.Get(lit.Var) != lit.Neg {
			return true
		}
	}
	return false
}

// CNF is a conjunctive-normal-form environment: fit iff every clause is
// satisfied. Random satisfiable instances model rugged, structured
// environments for the recoverability experiments.
type CNF struct {
	N       int
	Clauses []Clause
}

var _ Graded = CNF{}

// Len returns the number of variables.
func (c CNF) Len() int { return c.N }

// Fit reports whether all clauses are satisfied.
func (c CNF) Fit(s bitstring.String) bool {
	return s.Len() == c.N && c.Violations(s) == 0
}

// Violations counts unsatisfied clauses.
func (c CNF) Violations(s bitstring.String) int {
	if s.Len() != c.N {
		return c.MaxViolations()
	}
	v := 0
	for _, cl := range c.Clauses {
		if !cl.Satisfied(s) {
			v++
		}
	}
	return v
}

// MaxViolations returns the clause count (at least 1).
func (c CNF) MaxViolations() int {
	if len(c.Clauses) > 0 {
		return len(c.Clauses)
	}
	return 1
}

// RandomPlantedCNF generates a satisfiable CNF over n variables with the
// given number of clauses of k literals each, planted around a random
// solution (every clause is satisfied by the planted assignment). It
// returns the formula and the planted solution.
func RandomPlantedCNF(n, clauses, k int, r *rng.Source) (CNF, bitstring.String, error) {
	if n <= 0 || clauses < 0 || k <= 0 || k > n {
		return CNF{}, bitstring.String{}, fmt.Errorf("dcsp: invalid cnf shape n=%d clauses=%d k=%d", n, clauses, k)
	}
	planted := bitstring.Random(n, r)
	cnf := CNF{N: n, Clauses: make([]Clause, 0, clauses)}
	for len(cnf.Clauses) < clauses {
		vars := r.Perm(n)[:k]
		cl := make(Clause, k)
		for i, v := range vars {
			cl[i] = Literal{Var: v, Neg: r.Bool(0.5)}
		}
		if !cl.Satisfied(planted) {
			// Fix one literal so the planted assignment satisfies the
			// clause.
			i := r.Intn(k)
			cl[i].Neg = !planted.Get(cl[i].Var)
		}
		cnf.Clauses = append(cnf.Clauses, cl)
	}
	return cnf, planted, nil
}
