package dcsp

import (
	"fmt"

	"resilience/internal/bitstring"
	"resilience/internal/rng"
)

// Spacecraft is the paper's worked example (§4.2): "The system consists of
// a fixed set of n components, each of which has a single binary variable
// nᵢ representing the availability of the component … Suppose that the
// constraint C = 1ⁿ at every time t … and that the spacecraft is
// occasionally hit by space debris causing at most k component failures.
// … If the spacecraft can fix one component at each time step, we consider
// that the spacecraft is k-recoverable."
type Spacecraft struct {
	sys *System
	// MaxDebrisHits is k, the worst-case component failures per strike.
	MaxDebrisHits int
}

// NewSpacecraft builds an n-component spacecraft that repairs
// repairsPerStep components per time step and faces debris strikes of at
// most maxDebrisHits failures.
func NewSpacecraft(n, maxDebrisHits, repairsPerStep int) (*Spacecraft, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dcsp: spacecraft needs n > 0, got %d", n)
	}
	if maxDebrisHits < 0 || maxDebrisHits > n {
		return nil, fmt.Errorf("dcsp: maxDebrisHits %d out of range [0,%d]", maxDebrisHits, n)
	}
	sys, err := NewSystem(AllOnes{N: n}, bitstring.Ones(n), GreedyRepairer{}, repairsPerStep)
	if err != nil {
		return nil, err
	}
	return &Spacecraft{sys: sys, MaxDebrisHits: maxDebrisHits}, nil
}

// System exposes the underlying dynamic-CSP system.
func (sc *Spacecraft) System() *System { return sc.sys }

// DebrisStrike returns the spacecraft's damage event: up to
// MaxDebrisHits good components fail.
func (sc *Spacecraft) DebrisStrike() Event {
	return DamageEvent{Model: ClearBits{K: sc.MaxDebrisHits}}
}

// FailedComponents returns how many components are currently down.
func (sc *Spacecraft) FailedComponents() int {
	return sc.sys.Env.Len() - sc.sys.State.Count()
}

// VerifyKRecoverable checks the paper's claim exhaustively: under debris
// causing at most MaxDebrisHits failures and one repair per step, the
// spacecraft recovers within MaxDebrisHits steps. More generally it
// verifies k-recoverability for k = ceil(MaxDebrisHits / repairsPerStep).
func (sc *Spacecraft) VerifyKRecoverable() (RecoverabilityReport, error) {
	n := sc.sys.Env.Len()
	k := (sc.MaxDebrisHits + sc.sys.FlipsPerStep - 1) / sc.sys.FlipsPerStep
	report := RecoverabilityReport{K: k}
	// With C = 1ⁿ the distance to fitness equals the number of failed
	// components, so exhaustive verification reduces to checking every
	// failure count 1..MaxDebrisHits rather than every subset.
	for failures := 1; failures <= sc.MaxDebrisHits && failures <= n; failures++ {
		report.Trials++
		stepsNeeded := (failures + sc.sys.FlipsPerStep - 1) / sc.sys.FlipsPerStep
		if stepsNeeded > k {
			report.Failures++
		} else if stepsNeeded > report.WorstSteps {
			report.WorstSteps = stepsNeeded
		}
	}
	report.Recoverable = report.Failures == 0
	return report, nil
}

// SimulateMission runs the spacecraft for steps time steps with debris
// strikes arriving as a Poisson process of the given rate, honouring the
// paper's quiescence assumption ("once the spacecraft has component
// failures at time t, it will not have another component failure until
// time t + k"): while any component is down, no new strike occurs. It
// returns the per-step availability trace.
func (sc *Spacecraft) SimulateMission(steps int, strikeRate float64, r *rng.Source) (*SpacecraftMission, error) {
	if steps < 0 {
		return nil, fmt.Errorf("dcsp: negative steps %d", steps)
	}
	mission := &SpacecraftMission{}
	for t := 0; t < steps; t++ {
		if sc.FailedComponents() == 0 && r.Bool(strikeRate) {
			sc.sys.Env, sc.sys.State = sc.DebrisStrike().Apply(sc.sys.Env, sc.sys.State, r)
			mission.Strikes++
		}
		sc.sys.Step(r)
		mission.Availability = append(mission.Availability, sc.sys.Quality())
		if sc.FailedComponents() > 0 {
			mission.DegradedSteps++
		}
	}
	return mission, nil
}

// SpacecraftMission summarizes a simulated mission.
type SpacecraftMission struct {
	Strikes       int
	DegradedSteps int
	Availability  []float64
}
