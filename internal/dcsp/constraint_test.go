package dcsp

import (
	"errors"
	"testing"
	"testing/quick"

	"resilience/internal/bitstring"
	"resilience/internal/rng"
)

func TestAllOnes(t *testing.T) {
	c := AllOnes{N: 5}
	if !c.Fit(bitstring.Ones(5)) {
		t.Error("1^n must be fit")
	}
	s := bitstring.Ones(5)
	s.Flip(2)
	if c.Fit(s) {
		t.Error("damaged state must be unfit")
	}
	if got := c.Violations(s); got != 1 {
		t.Errorf("Violations = %d, want 1", got)
	}
	if c.MaxViolations() != 5 {
		t.Errorf("MaxViolations = %d", c.MaxViolations())
	}
	cfgs := c.FitConfigs()
	if len(cfgs) != 1 || !cfgs[0].Equal(bitstring.Ones(5)) {
		t.Error("FitConfigs must be exactly {1^n}")
	}
	// Wrong length is unfit and maximally violated.
	if c.Fit(bitstring.Ones(4)) {
		t.Error("wrong-length config must be unfit")
	}
	if c.Violations(bitstring.Ones(4)) != 5 {
		t.Error("wrong-length config must be maximally violated")
	}
}

func TestAtLeast(t *testing.T) {
	c := AtLeast{N: 6, K: 4}
	s := bitstring.MustParse("111100")
	if !c.Fit(s) {
		t.Error("4 ones should satisfy AtLeast(4)")
	}
	s.Flip(0)
	if c.Fit(s) {
		t.Error("3 ones should violate AtLeast(4)")
	}
	if got := c.Violations(s); got != 1 {
		t.Errorf("Violations = %d, want 1", got)
	}
	if c.Violations(bitstring.New(6)) != 4 {
		t.Error("empty state should need K ones")
	}
	if c.Violations(bitstring.Ones(6)) != 0 {
		t.Error("full state has no violations")
	}
}

func TestMask(t *testing.T) {
	tmpl := bitstring.MustParse("10100")
	care := bitstring.MustParse("11100")
	m, err := NewMask(tmpl, care)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Fit(bitstring.MustParse("10111")) {
		t.Error("free bits must not matter")
	}
	if m.Fit(bitstring.MustParse("00100")) {
		t.Error("mismatched cared bit must be unfit")
	}
	if got := m.Violations(bitstring.MustParse("01000")); got != 3 {
		t.Errorf("Violations = %d, want 3", got)
	}
	if m.MaxViolations() != 3 {
		t.Errorf("MaxViolations = %d, want 3", m.MaxViolations())
	}
}

func TestMaskLengthMismatch(t *testing.T) {
	if _, err := NewMask(bitstring.New(3), bitstring.New(4)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("want ErrDimensionMismatch")
	}
}

func TestMaskZeroCare(t *testing.T) {
	m, err := NewMask(bitstring.New(4), bitstring.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxViolations() < 1 {
		t.Error("MaxViolations must be positive to avoid division by zero")
	}
	if !m.Fit(bitstring.MustParse("1010")) {
		t.Error("everything is fit when nothing is cared about")
	}
}

func TestSet(t *testing.T) {
	a := bitstring.MustParse("101")
	b := bitstring.MustParse("010")
	c, err := NewSet(3, a, b, a) // duplicate ignored
	if err != nil {
		t.Fatal(err)
	}
	if len(c.FitConfigs()) != 2 {
		t.Fatalf("FitConfigs = %d, want 2 (dedup)", len(c.FitConfigs()))
	}
	if !c.Fit(a) || !c.Fit(b) {
		t.Error("members must be fit")
	}
	if c.Fit(bitstring.MustParse("111")) {
		t.Error("non-member must be unfit")
	}
	if c.Fit(bitstring.MustParse("1010")) {
		t.Error("wrong length must be unfit")
	}
}

func TestSetErrors(t *testing.T) {
	if _, err := NewSet(3); err == nil {
		t.Error("want error for empty fit set")
	}
	if _, err := NewSet(3, bitstring.New(4)); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("want ErrDimensionMismatch")
	}
}

func TestPredicate(t *testing.T) {
	even := Predicate{N: 4, Fn: func(s bitstring.String) bool { return s.Count()%2 == 0 }}
	if !even.Fit(bitstring.MustParse("1100")) {
		t.Error("even parity should fit")
	}
	if even.Fit(bitstring.MustParse("1000")) {
		t.Error("odd parity should not fit")
	}
	nilFn := Predicate{N: 4}
	if nilFn.Fit(bitstring.New(4)) {
		t.Error("nil predicate must reject")
	}
}

func TestClauseSatisfied(t *testing.T) {
	s := bitstring.MustParse("10")
	cl := Clause{{Var: 0, Neg: false}, {Var: 1, Neg: false}}
	if !cl.Satisfied(s) {
		t.Error("x0 ∨ x1 should hold for 10")
	}
	cl2 := Clause{{Var: 1, Neg: false}}
	if cl2.Satisfied(s) {
		t.Error("x1 should fail for 10")
	}
	cl3 := Clause{{Var: 1, Neg: true}}
	if !cl3.Satisfied(s) {
		t.Error("¬x1 should hold for 10")
	}
}

func TestCNFViolations(t *testing.T) {
	// (x0) ∧ (¬x1) over 2 vars.
	cnf := CNF{N: 2, Clauses: []Clause{
		{{Var: 0}},
		{{Var: 1, Neg: true}},
	}}
	if !cnf.Fit(bitstring.MustParse("10")) {
		t.Error("10 should satisfy")
	}
	if got := cnf.Violations(bitstring.MustParse("01")); got != 2 {
		t.Errorf("Violations = %d, want 2", got)
	}
	if cnf.MaxViolations() != 2 {
		t.Errorf("MaxViolations = %d", cnf.MaxViolations())
	}
	if (CNF{N: 2}).MaxViolations() != 1 {
		t.Error("empty CNF MaxViolations must be positive")
	}
}

func TestRandomPlantedCNFSatisfiable(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 8 + r.Intn(8)
		cnf, planted, err := RandomPlantedCNF(n, 4*n, 3, r)
		if err != nil {
			return false
		}
		return cnf.Fit(planted)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPlantedCNFInvalid(t *testing.T) {
	r := rng.New(1)
	cases := [][3]int{{0, 5, 3}, {5, -1, 3}, {5, 5, 0}, {5, 5, 6}}
	for _, c := range cases {
		if _, _, err := RandomPlantedCNF(c[0], c[1], c[2], r); err == nil {
			t.Errorf("RandomPlantedCNF(%v) should error", c)
		}
	}
}
