package dcsp

import (
	"testing"
	"testing/quick"

	"resilience/internal/bitstring"
	"resilience/internal/rng"
)

func TestDamageModels(t *testing.T) {
	r := rng.New(1)
	s := bitstring.Ones(20)

	d1 := ExactFlips{K: 5}.Damage(s, r)
	h, err := s.Hamming(d1)
	if err != nil {
		t.Fatal(err)
	}
	if h != 5 {
		t.Fatalf("ExactFlips hamming = %d, want 5", h)
	}

	d2 := UpToFlips{K: 5}.Damage(s, r)
	h, err = s.Hamming(d2)
	if err != nil {
		t.Fatal(err)
	}
	if h < 1 || h > 5 {
		t.Fatalf("UpToFlips hamming = %d, want 1..5", h)
	}

	d3 := ClearBits{K: 7}.Damage(s, r)
	if got := 20 - d3.Count(); got != 7 {
		t.Fatalf("ClearBits cleared %d, want 7", got)
	}
	// ClearBits never sets bits.
	or, err := s.Or(d3)
	if err != nil {
		t.Fatal(err)
	}
	if !or.Equal(s) {
		t.Fatal("ClearBits set a bit")
	}
}

func TestDamageModelsDegenerate(t *testing.T) {
	r := rng.New(2)
	s := bitstring.Ones(4)
	if d := (UpToFlips{K: 0}).Damage(s, r); !d.Equal(s) {
		t.Error("UpToFlips{0} should be identity")
	}
	if d := (ClearBits{K: 0}).Damage(s, r); !d.Equal(s) {
		t.Error("ClearBits{0} should be identity")
	}
	empty := bitstring.New(4)
	if d := (ClearBits{K: 3}).Damage(empty, r); !d.Equal(empty) {
		t.Error("ClearBits on empty state should be identity")
	}
	// ClearBits clamps to available ones.
	few := bitstring.MustParse("1000")
	if d := (ClearBits{K: 10}).Damage(few, r); d.Count() != 0 {
		t.Error("ClearBits should clear all available ones")
	}
}

func TestRecoverAlreadyFit(t *testing.T) {
	r := rng.New(3)
	res, err := Recover(bitstring.Ones(6), AllOnes{N: 6}, GreedyRepairer{}, 1, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered || res.Steps != 0 || res.FlipsUsed != 0 {
		t.Fatalf("res = %+v, want immediate recovery", res)
	}
}

func TestRecoverWithinBudget(t *testing.T) {
	r := rng.New(4)
	c := AllOnes{N: 16}
	s := bitstring.Ones(16)
	s.FlipRandom(6, r)
	res, err := Recover(s, c, GreedyRepairer{}, 2, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("should recover")
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want 3 (6 failures at 2 repairs/step)", res.Steps)
	}
}

func TestRecoverExceedsBudget(t *testing.T) {
	r := rng.New(5)
	c := AllOnes{N: 16}
	s := bitstring.Ones(16)
	s.FlipRandom(10, r)
	res, err := Recover(s, c, GreedyRepairer{}, 1, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered {
		t.Fatal("cannot repair 10 failures in 5 single-flip steps")
	}
}

func TestRecoverValidation(t *testing.T) {
	r := rng.New(6)
	if _, err := Recover(bitstring.New(4), AllOnes{N: 4}, nil, 1, 5, r); err == nil {
		t.Error("want error for nil repairer")
	}
	if _, err := Recover(bitstring.New(4), AllOnes{N: 4}, GreedyRepairer{}, 0, 5, r); err == nil {
		t.Error("want error for zero flipsPerStep")
	}
}

func TestCheckKRecoverableMCSpacecraftLaw(t *testing.T) {
	// The paper's claim: damage ≤ k, one repair per step ⇒ k-recoverable.
	r := rng.New(7)
	c := AllOnes{N: 20}
	rep, err := CheckKRecoverableMC(c, UpToFlips{K: 6}, GreedyRepairer{}, 1, 6, 300, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recoverable {
		t.Fatalf("expected recoverable, got %+v", rep)
	}
	if rep.WorstSteps > 6 {
		t.Fatalf("worst steps %d > k", rep.WorstSteps)
	}
}

func TestCheckKRecoverableMCDetectsFailure(t *testing.T) {
	// k too small: damage of exactly 6 bits cannot be fixed in 3 steps.
	r := rng.New(8)
	c := AllOnes{N: 20}
	rep, err := CheckKRecoverableMC(c, ExactFlips{K: 6}, GreedyRepairer{}, 1, 3, 100, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recoverable {
		t.Fatal("should not be 3-recoverable under 6-bit damage at 1 flip/step")
	}
	if rep.FailureRate() != 1 {
		t.Fatalf("failure rate = %v, want 1 (exact 6-bit damage always needs 6 steps)", rep.FailureRate())
	}
}

func TestCheckKRecoverableMCSeeds(t *testing.T) {
	r := rng.New(9)
	// Non-enumerable constraint requires seeds.
	c := AtLeast{N: 10, K: 8}
	if _, err := CheckKRecoverableMC(c, ExactFlips{K: 2}, GreedyRepairer{}, 1, 4, 50, r); err == nil {
		t.Error("want error with no fit seeds for non-enumerable constraint")
	}
	rep, err := CheckKRecoverableMC(c, ExactFlips{K: 2}, GreedyRepairer{}, 1, 4, 50, r, bitstring.Ones(10))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recoverable {
		t.Fatalf("expected recoverable, got %+v", rep)
	}
	// Unfit seeds are ignored.
	if _, err := CheckKRecoverableMC(c, ExactFlips{K: 2}, GreedyRepairer{}, 1, 4, 10, r, bitstring.New(10)); err == nil {
		t.Error("unfit seed should not qualify as a starting state")
	}
}

func TestCheckKRecoverableMCValidation(t *testing.T) {
	r := rng.New(10)
	c := AllOnes{N: 4}
	if _, err := CheckKRecoverableMC(c, ExactFlips{K: 1}, GreedyRepairer{}, 1, -1, 10, r); err == nil {
		t.Error("want error for negative k")
	}
	if _, err := CheckKRecoverableMC(c, ExactFlips{K: 1}, GreedyRepairer{}, 1, 3, 0, r); err == nil {
		t.Error("want error for zero trials")
	}
}

func TestCheckKRecoverableExhaustive(t *testing.T) {
	c := AllOnes{N: 8}
	rep, err := CheckKRecoverableExhaustive(c, 3, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recoverable {
		t.Fatalf("8-component AllOnes under ≤3 flips must be 3-recoverable: %+v", rep)
	}
	// Trials = C(8,1)+C(8,2)+C(8,3) = 8+28+56 = 92.
	if rep.Trials != 92 {
		t.Fatalf("trials = %d, want 92", rep.Trials)
	}
	if rep.WorstSteps != 3 {
		t.Fatalf("worst = %d, want 3", rep.WorstSteps)
	}
}

func TestCheckKRecoverableExhaustiveFailure(t *testing.T) {
	c := AllOnes{N: 6}
	rep, err := CheckKRecoverableExhaustive(c, 3, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recoverable {
		t.Fatal("3-bit damage cannot be 2-recoverable at 1 flip/step")
	}
	// Failures are exactly the C(6,3) = 20 three-bit patterns.
	if rep.Failures != 20 {
		t.Fatalf("failures = %d, want 20", rep.Failures)
	}
}

func TestCheckKRecoverableExhaustiveFasterRepair(t *testing.T) {
	// Doubling the repair rate halves the needed k (monotonicity in the
	// repair budget).
	c := AllOnes{N: 8}
	rep, err := CheckKRecoverableExhaustive(c, 4, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recoverable {
		t.Fatalf("4-bit damage at 2 flips/step must be 2-recoverable: %+v", rep)
	}
}

func TestCheckKRecoverableExhaustiveValidation(t *testing.T) {
	c := AllOnes{N: 4}
	if _, err := CheckKRecoverableExhaustive(c, -1, 1, 2, 0); err == nil {
		t.Error("want error for negative maxFlips")
	}
	if _, err := CheckKRecoverableExhaustive(c, 2, 0, 2, 0); err == nil {
		t.Error("want error for zero flipsPerStep")
	}
}

func TestRecoverabilityMonotoneInK(t *testing.T) {
	// Property: if the system is k-recoverable it is (k+1)-recoverable.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(4)
		d := 1 + r.Intn(3)
		k := d // exactly enough
		c := AllOnes{N: n}
		rep1, err := CheckKRecoverableExhaustive(c, d, 1, k, 0)
		if err != nil {
			return false
		}
		rep2, err := CheckKRecoverableExhaustive(c, d, 1, k+1, 0)
		if err != nil {
			return false
		}
		return !rep1.Recoverable || rep2.Recoverable
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSubsetCounts(t *testing.T) {
	count := 0
	if err := forEachSubsetUpTo(5, 2, func(s []int) error {
		count++
		if len(s) == 0 || len(s) > 2 {
			t.Fatalf("bad subset %v", s)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 15 { // C(5,1)+C(5,2) = 5+10
		t.Fatalf("count = %d, want 15", count)
	}
}

func TestFailureRateEmpty(t *testing.T) {
	if (RecoverabilityReport{}).FailureRate() != 0 {
		t.Fatal("empty report failure rate should be 0")
	}
}
