// Package rng provides a deterministic, splittable pseudo-random number
// generator and the sampling distributions used throughout the resilience
// simulators.
//
// Every simulator in this repository takes an explicit *rng.Source so that
// experiments are reproducible bit-for-bit from a seed. The generator is
// xoshiro256** seeded via SplitMix64, following the reference construction
// by Blackman and Vigna. Sources are NOT safe for concurrent use; use Split
// to derive independent streams for concurrent components.
package rng

import (
	"math"
	"math/bits"
	"strconv"
)

// Source is a deterministic pseudo-random number generator.
// The zero value is not valid; use New or Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	return &src
}

// splitMix64 advances a SplitMix64 state and returns the new state and output.
func splitMix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives a new Source whose stream is independent of the parent's
// subsequent output. It consumes one value from the parent stream.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Derive maps a root seed and a label to a child seed, deterministically
// and independently of any other label. It lets a suite of named tasks
// (e.g. experiments) each get a stable seed from one root seed without
// threading a shared Source through them, so the per-task streams do not
// depend on execution order or on which other tasks run.
func Derive(root uint64, label string) uint64 {
	state := root
	var out uint64
	state, out = splitMix64(state)
	seed := out
	for _, b := range []byte(label) {
		state, out = splitMix64(state ^ uint64(b))
		seed = seed*0x100000001b3 ^ out
	}
	_, out = splitMix64(seed)
	return out
}

// DeriveStage maps (root, label, index) to a child seed: Derive applied
// to the label and then to the decimal index. The execution engine
// (internal/engine) uses it to hand each stage of an experiment an
// independent stream keyed by experiment ID, stage name, and stage
// index, with the same order-independence guarantees as Derive.
func DeriveStage(root uint64, label string, index int) uint64 {
	return Derive(Derive(root, label), strconv.Itoa(index))
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). n must be > 0; if n <= 0 it
// returns 0 so that callers never panic on degenerate workloads.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the polar (Marsaglia) method.
func (r *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). rate must be > 0.
func (r *Source) Exp(rate float64) float64 {
	u := r.Float64()
	// Avoid log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Pareto returns a Pareto(type I) distributed value with scale xm > 0 and
// tail index alpha > 0. For alpha <= 1 the distribution has infinite mean;
// for alpha <= 2 it has infinite variance — the regime of the paper's
// X-events (§3.4.6).
func (r *Source) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean lambda,
// using Knuth's method for small lambda and normal approximation above 30.
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(r.Norm(lambda, math.Sqrt(lambda))))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Categorical samples an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero.
// If all weights are zero it returns a uniform index.
func (r *Source) Categorical(weights []float64) int {
	if len(weights) == 0 {
		return 0
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	target := r.Float64() * total
	var cum float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		cum += w
		if target < cum {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap, via Fisher–Yates.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
