package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("stream diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p2 := New(7)
	p2.Uint64() // consume the split draw
	match := 0
	for i := 0; i < 64; i++ {
		if child.Uint64() == p2.Uint64() {
			match++
		}
	}
	if match > 2 {
		t.Fatalf("child stream mirrors parent: %d/64 matches", match)
	}
}

func TestDerive(t *testing.T) {
	// Stable: same root + label always yields the same seed.
	if Derive(42, "e07") != Derive(42, "e07") {
		t.Fatal("Derive is not deterministic")
	}
	// Sensitive to both root and label.
	if Derive(42, "e07") == Derive(43, "e07") {
		t.Fatal("Derive ignores the root seed")
	}
	seen := map[uint64]string{}
	for _, label := range []string{"", "e01", "e02", "e10", "e01x", "x01e", "10e"} {
		s := Derive(42, label)
		if prev, dup := seen[s]; dup {
			t.Fatalf("Derive collision: %q and %q -> %d", prev, label, s)
		}
		seen[s] = label
	}
	// Derived streams should look independent.
	a := New(Derive(1, "a"))
	b := New(Derive(1, "b"))
	match := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			match++
		}
	}
	if match > 2 {
		t.Fatalf("derived streams correlated: %d/64 matches", match)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(4)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnDegenerate(t *testing.T) {
	r := New(5)
	if got := r.Intn(0); got != 0 {
		t.Fatalf("Intn(0) = %d, want 0", got)
	}
	if got := r.Intn(-3); got != 0 {
		t.Fatalf("Intn(-3) = %d, want 0", got)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(6)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v", i, c, want)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(8)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", p)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(10)
	const trials = 200000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		v := r.Norm(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("stddev %v, want ~2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := New(11)
	const trials = 200000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += r.Exp(2)
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean %v, want ~0.5", mean)
	}
}

func TestParetoSupport(t *testing.T) {
	r := New(12)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.5, 2.5)
		if v < 1.5 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestParetoFiniteMean(t *testing.T) {
	// alpha = 3 has mean xm*alpha/(alpha-1) = 1.5.
	r := New(13)
	const trials = 500000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += r.Pareto(1, 3)
	}
	mean := sum / trials
	if math.Abs(mean-1.5) > 0.05 {
		t.Fatalf("Pareto(1,3) mean %v, want ~1.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(14)
	for _, lambda := range []float64{0.5, 4, 50} {
		const trials = 100000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / trials
		if math.Abs(mean-lambda) > 0.05*lambda+0.02 {
			t.Errorf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestPoissonDegenerate(t *testing.T) {
	r := New(15)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := r.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d", got)
	}
}

func TestCategoricalWeights(t *testing.T) {
	r := New(16)
	weights := []float64{1, 0, 3}
	const trials = 100000
	counts := make([]int, 3)
	for i := 0; i < trials; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	r := New(17)
	if got := r.Categorical(nil); got != 0 {
		t.Fatalf("Categorical(nil) = %d", got)
	}
	// All-zero weights: must stay in range.
	for i := 0; i < 100; i++ {
		v := r.Categorical([]float64{0, 0, 0})
		if v < 0 || v > 2 {
			t.Fatalf("Categorical all-zero out of range: %d", v)
		}
	}
	// Negative weights treated as zero.
	for i := 0; i < 100; i++ {
		if got := r.Categorical([]float64{-1, 5, -2}); got != 1 {
			t.Fatalf("negative weights sampled index %d", got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(18)
	if err := quick.Check(func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformity(t *testing.T) {
	// All 6 permutations of 3 elements should appear roughly equally.
	r := New(19)
	counts := map[[3]int]int{}
	const trials = 60000
	for i := 0; i < trials; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(x, y int) { a[x], a[y] = a[y], a[x] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d permutations, want 6", len(counts))
	}
	for p, c := range counts {
		if math.Abs(float64(c)-trials/6) > 5*math.Sqrt(trials/6.0) {
			t.Errorf("permutation %v count %d far from %d", p, c, trials/6)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm(0, 1)
	}
}
