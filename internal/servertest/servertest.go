// Package servertest boots in-process resilience serve daemons for
// tests: a single node or a small consistent-hash fleet, wired exactly
// like `resilience serve` (tiered cache, observer, ring, peer store),
// listening on ephemeral ports, readiness-checked before the test runs,
// and drained on cleanup. It replaces the hand-rolled boot code that
// used to be copied between the CLI serve tests, the server cluster
// tests, and the load-generator end-to-end battery.
package servertest

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"resilience/internal/adapt"
	"resilience/internal/cluster"
	"resilience/internal/experiments"
	"resilience/internal/obs"
	"resilience/internal/rescache"
	"resilience/internal/rescache/fsstore"
	"resilience/internal/rescache/memstore"
	"resilience/internal/rescache/peerstore"
	"resilience/internal/server"
)

// Node is one booted daemon: its base URL, the live server and observer
// for white-box assertions, and the cache directory its filesystem tier
// writes to (handy for corruption tests).
type Node struct {
	URL      string
	Server   *server.Server
	Obs      *obs.Observer
	Ring     *cluster.Ring
	CacheDir string
	// Adapt is the node's MAPE-K controller, non-nil only under
	// WithAdapt. Tests may Tick or Force it directly.
	Adapt *adapt.Controller

	tb       testing.TB
	listener net.Listener
	serveErr chan error
	stopped  bool
}

// config collects the Boot options.
type config struct {
	registry       []experiments.Experiment
	memEntries     int
	maxInflight    int
	requestTimeout time.Duration
	noCache        bool
	adapt          bool
	adaptInterval  time.Duration
	adaptTuning    adapt.Tuning
}

// Option customizes a booted node (every node of a fleet gets the same
// options).
type Option func(*config)

// WithRegistry serves the given experiments instead of the full
// registry — the usual choice for tests that want fast fake bodies.
func WithRegistry(reg ...experiments.Experiment) Option {
	return func(c *config) { c.registry = reg }
}

// WithMemEntries stacks a bounded in-memory LRU tier of n entries over
// the filesystem tier (off by default, so cache-tier assertions see
// "fs" unless a test opts in).
func WithMemEntries(n int) Option {
	return func(c *config) { c.memEntries = n }
}

// WithMaxInflight bounds the node's worker pool.
func WithMaxInflight(n int) Option {
	return func(c *config) { c.maxInflight = n }
}

// WithRequestTimeout bounds one request end to end.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.requestTimeout = d }
}

// WithoutCache boots the node cacheless (requests still coalesce).
func WithoutCache() Option {
	return func(c *config) { c.noCache = true }
}

// WithAdapt runs the node under its MAPE-K controller, exactly like
// `resilience serve -adapt`: the control loop ticks every interval,
// POST /v1/mode routes through Controller.Force, and the loop stops on
// cleanup before the server drains. Tuning zero values take
// adapt.DefaultTuning — tests that need fast transitions pass short
// streaks.
func WithAdapt(interval time.Duration, tuning adapt.Tuning) Option {
	return func(c *config) {
		c.adapt = true
		c.adaptInterval = interval
		c.adaptTuning = tuning
	}
}

// Boot starts a single-node daemon on an ephemeral port, waits for
// /readyz, and registers a drained shutdown on test cleanup.
func Boot(tb testing.TB, opts ...Option) *Node {
	tb.Helper()
	nodes := boot(tb, 1, opts)
	return nodes[0]
}

// BootFleet starts n daemons joined into one consistent-hash ring (each
// node advertising its real URL, with a peer cache tier over the other
// members), waits for every /readyz, and registers shutdown on test
// cleanup. It exists because a ring needs every member's URL before any
// member's server can be built — the chicken-and-egg every hand-rolled
// fleet test solved with its own lazy-handler shim.
func BootFleet(tb testing.TB, n int, opts ...Option) []*Node {
	tb.Helper()
	if n < 2 {
		tb.Fatalf("servertest: a fleet needs at least 2 nodes, got %d", n)
	}
	return boot(tb, n, opts)
}

func boot(tb testing.TB, n int, opts []Option) []*Node {
	tb.Helper()
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}

	// Listen first: the ring wants every member's URL up front, and a
	// bound listener pins the ephemeral port before any server exists.
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatalf("servertest: listen: %v", err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	var ring *cluster.Ring
	if n > 1 {
		ring = cluster.New(urls, 0)
	}

	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = bootNode(tb, cfg, listeners[i], urls[i], ring)
	}
	for _, node := range nodes {
		waitReady(tb, node.URL)
	}
	return nodes
}

// bootNode assembles one node the way cmd/resilience's serve() does:
// mem-over-fs local tiers served to the fleet, a peer tier joining only
// the node's own read path, and the server draining on cleanup.
func bootNode(tb testing.TB, cfg config, l net.Listener, self string, ring *cluster.Ring) *Node {
	tb.Helper()
	o := obs.New()
	o.Trace.SetLimit(4096)

	node := &Node{URL: self, Obs: o, Ring: ring, tb: tb, listener: l, serveErr: make(chan error, 1)}
	var local, mem, fs rescache.Store
	if !cfg.noCache {
		if cfg.memEntries > 0 {
			m, err := memstore.New(cfg.memEntries, 0)
			if err != nil {
				tb.Fatalf("servertest: memstore: %v", err)
			}
			mem = m
		}
		node.CacheDir = tb.TempDir()
		f, err := fsstore.Open(node.CacheDir)
		if err != nil {
			tb.Fatalf("servertest: fsstore: %v", err)
		}
		fs = f
		local = rescache.Tiered(mem, fs)
	}
	var peer rescache.Store
	if ring != nil && !cfg.noCache {
		peer = peerstore.New(func(digest string) (string, bool) {
			owner := ring.Owner(digest)
			return owner, owner != "" && owner != self
		}, nil)
	}
	var cache *rescache.Cache
	if !cfg.noCache {
		cache = rescache.New(rescache.Tiered(mem, fs, peer))
		cache.SetObserver(o)
	}
	node.Server = server.New(server.Config{
		Registry:       cfg.registry,
		Cache:          cache,
		Local:          local,
		Ring:           ring,
		Self:           self,
		Obs:            o,
		MaxInflight:    cfg.maxInflight,
		RequestTimeout: cfg.requestTimeout,
	})
	var ctrl *adapt.Controller
	if cfg.adapt {
		var err error
		ctrl, err = adapt.New(adapt.Config{
			Target: node.Server,
			Obs:    o,
			Tuning: cfg.adaptTuning,
		})
		if err != nil {
			tb.Fatalf("servertest: adapt: %v", err)
		}
		node.Adapt = ctrl
		node.Server.SetForceMode(ctrl.Force)
	}
	go func() { node.serveErr <- node.Server.Serve(l) }()
	tb.Cleanup(node.stop)
	if ctrl != nil {
		ctrl.Start(cfg.adaptInterval)
		tb.Cleanup(ctrl.Stop) // LIFO: the loop stops before the drain
	}
	return node
}

// waitReady polls /readyz until the node answers 200.
func waitReady(tb testing.TB, url string) {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			tb.Fatalf("servertest: %s never became ready (last error: %v)", url, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Shutdown drains the node gracefully and waits for Serve to return.
// It is what cleanup runs; tests call it early to exercise drains.
func (n *Node) Shutdown() {
	n.tb.Helper()
	if n.stopped {
		return
	}
	n.stopped = true
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := n.Server.Shutdown(ctx); err != nil {
		n.tb.Errorf("servertest: shutdown %s: %v", n.URL, err)
	}
	if err := <-n.serveErr; err != nil && err != http.ErrServerClosed {
		n.tb.Errorf("servertest: serve %s: %v", n.URL, err)
	}
}

// Kill stops the node abruptly — no drain, listener torn down — the
// fleet-test analogue of kill -9 on a ring member. The node stops
// answering; its Serve error is swallowed.
func (n *Node) Kill() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.listener.Close()
	go func() {
		// Serve returns with the listener error; unblock the channel so
		// nothing leaks, and also stop keep-alive connections answering.
		<-n.serveErr
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	n.Server.Shutdown(ctx) //nolint:errcheck // best-effort teardown of live conns
}

// stop is the cleanup hook: a graceful Shutdown unless the test already
// stopped the node itself.
func (n *Node) stop() {
	if n.stopped {
		return
	}
	n.Shutdown()
}
