package servertest

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"resilience/internal/experiments"
)

func fake(id string) experiments.Experiment {
	return experiments.Experiment{
		ID: id, Title: "fake " + id, Source: "test",
		Modules: []string{"test"}, SupportsQuick: true,
		Run: func(rec *experiments.Recorder, cfg experiments.Config) error {
			rec.Notef("seed %d", cfg.Seed)
			return nil
		},
	}
}

// TestBootSingleNode: Boot returns a ready daemon that serves runs and
// metrics, with the observer visible for white-box assertions.
func TestBootSingleNode(t *testing.T) {
	n := Boot(t, WithRegistry(fake("t01")))
	resp, err := http.Post(n.URL+"/v1/run/t01", "application/json", strings.NewReader(`{"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("run = %d: %s", resp.StatusCode, body)
	}
	if got := n.Obs.Metrics.Counter("runner.attempts").Value(); got != 1 {
		t.Fatalf("runner.attempts = %d, want 1", got)
	}
	if n.CacheDir == "" {
		t.Fatal("node should expose its cache directory")
	}
	// Shutdown is idempotent and drains cleanly before cleanup re-runs it.
	n.Shutdown()
	n.Shutdown()
}

// TestBootFleet: three nodes share one ring, report each other as
// members, and a killed member leaves the survivors answering.
func TestBootFleet(t *testing.T) {
	nodes := BootFleet(t, 3, WithRegistry(fake("t01")))
	resp, err := http.Get(nodes[0].URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Members []string `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Members) != 3 {
		t.Fatalf("members = %v, want 3", st.Members)
	}

	nodes[2].Kill()
	if _, err := http.Get(nodes[2].URL + "/healthz"); err == nil {
		t.Fatal("killed node still answering")
	}
	resp, err = http.Get(nodes[0].URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("survivor unhealthy: %v", err)
	}
	resp.Body.Close()
}
