// Package stats provides the descriptive and time-series statistics used by
// the resilience experiments: summary statistics, histograms, lag
// autocorrelation (for Scheffer early-warning signals, §3.4.1), Kendall's
// tau trend test, linear regression, and heavy-tail estimators (Hill tail
// index and log–log CCDF fits) for the paper's X-event analysis (§3.4.6).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator needs more samples than
// it was given.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance; 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value; +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value; -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation on
// the sorted sample. It copies its input. Empty input returns NaN.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Median: Quantile(xs, 0.5),
		P95:    Quantile(xs, 0.95),
		P99:    Quantile(xs, 0.99),
		Max:    Max(xs),
	}
}

// Autocorrelation returns the lag-k sample autocorrelation of xs, the
// central quantity in critical-slowing-down detection: near a tipping
// point, lag-1 autocorrelation rises toward 1.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	if lag < 0 || len(xs) <= lag+1 {
		return 0, ErrInsufficientData
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < len(xs); i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0, nil
	}
	for i := 0; i < len(xs)-lag; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den, nil
}

// RollingApply slides a window of the given size over xs and applies f to
// each window, returning one value per complete window.
func RollingApply(xs []float64, window int, f func([]float64) float64) []float64 {
	if window <= 0 || len(xs) < window {
		return nil
	}
	out := make([]float64, 0, len(xs)-window+1)
	for i := 0; i+window <= len(xs); i++ {
		out = append(out, f(xs[i:i+window]))
	}
	return out
}

// KendallTau returns Kendall's rank correlation between xs and the index
// sequence 0..n-1, i.e. a nonparametric trend statistic in [-1, 1].
// Positive values indicate an increasing trend. Scheffer et al. use this to
// quantify rising variance/autocorrelation before a transition.
func KendallTau(xs []float64) (float64, error) {
	n := len(xs)
	if n < 2 {
		return 0, ErrInsufficientData
	}
	var concordant, discordant int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case xs[j] > xs[i]:
				concordant++
			case xs[j] < xs[i]:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

// LinearFit holds the result of an ordinary-least-squares line fit.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine fits y = Slope*x + Intercept by least squares.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// HillEstimator returns the Hill estimate of the power-law tail index alpha
// using the k largest order statistics of xs. All samples used must be
// positive. Typical usage: k ~ 10% of n.
func HillEstimator(xs []float64, k int) (float64, error) {
	if k < 1 || len(xs) <= k {
		return 0, ErrInsufficientData
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	// Largest k+1 order statistics.
	tail := sorted[len(sorted)-k-1:]
	if tail[0] <= 0 {
		return 0, errors.New("stats: hill estimator requires positive tail samples")
	}
	var sum float64
	for _, x := range tail[1:] {
		sum += math.Log(x / tail[0])
	}
	if sum == 0 {
		return 0, errors.New("stats: hill estimator degenerate tail")
	}
	return float64(k) / sum, nil
}

// FitPowerLawCCDF fits P(X >= x) ~ x^(-alpha) by log–log regression on the
// empirical CCDF above xmin, returning the estimated alpha and the fit R².
func FitPowerLawCCDF(xs []float64, xmin float64) (alpha, r2 float64, err error) {
	var tail []float64
	for _, x := range xs {
		if x >= xmin && x > 0 {
			tail = append(tail, x)
		}
	}
	if len(tail) < 10 {
		return 0, 0, ErrInsufficientData
	}
	sort.Float64s(tail)
	n := len(tail)
	logx := make([]float64, 0, n)
	logp := make([]float64, 0, n)
	for i, x := range tail {
		// CCDF at x: fraction of samples >= x.
		p := float64(n-i) / float64(n)
		logx = append(logx, math.Log(x))
		logp = append(logp, math.Log(p))
	}
	fit, err := FitLine(logx, logp)
	if err != nil {
		return 0, 0, err
	}
	return -fit.Slope, fit.R2, nil
}

// Histogram is a fixed-bin linear histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	total  int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || hi <= lo {
		return nil, errors.New("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// Outliers returns counts below Lo and at/above Hi.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// LogHistogram bins positive observations into logarithmically spaced
// buckets — the natural view of avalanche-size and X-event magnitude
// distributions.
type LogHistogram struct {
	base   float64
	Counts map[int]int
	total  int
}

// NewLogHistogram creates a log-histogram with the given base (>1), e.g. 2
// for doubling buckets.
func NewLogHistogram(base float64) (*LogHistogram, error) {
	if base <= 1 {
		return nil, errors.New("stats: log histogram base must exceed 1")
	}
	return &LogHistogram{base: base, Counts: map[int]int{}}, nil
}

// Add records one positive observation; non-positive values are counted in
// Total but placed in bucket math.MinInt.
func (h *LogHistogram) Add(x float64) {
	h.total++
	if x <= 0 {
		h.Counts[math.MinInt]++
		return
	}
	h.Counts[int(math.Floor(math.Log(x)/math.Log(h.base)))]++
}

// Total returns the number of observations recorded.
func (h *LogHistogram) Total() int { return h.total }

// Buckets returns the bucket exponents in increasing order along with
// their counts and the bucket lower bounds (base^exponent).
func (h *LogHistogram) Buckets() (exponents []int, lowerBounds []float64, counts []int) {
	exponents = make([]int, 0, len(h.Counts))
	for e := range h.Counts {
		if e == math.MinInt {
			continue
		}
		exponents = append(exponents, e)
	}
	sort.Ints(exponents)
	lowerBounds = make([]float64, len(exponents))
	counts = make([]int, len(exponents))
	for i, e := range exponents {
		lowerBounds[i] = math.Pow(h.base, float64(e))
		counts[i] = h.Counts[e]
	}
	return exponents, lowerBounds, counts
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs: `resamples` resamples with replacement are drawn using
// intn, and the (1−confidence)/2 and (1+confidence)/2 quantiles of their
// means are returned. Survival rates and loss means in the experiment
// tables use this to show sampling uncertainty.
func BootstrapCI(xs []float64, confidence float64, resamples int, intn func(int) int) (lo, hi float64, err error) {
	if len(xs) < 2 {
		return 0, 0, ErrInsufficientData
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, errors.New("stats: confidence out of (0,1)")
	}
	if resamples < 10 {
		return 0, 0, errors.New("stats: need at least 10 resamples")
	}
	if intn == nil {
		return 0, 0, errors.New("stats: nil sampler")
	}
	means := make([]float64, resamples)
	n := len(xs)
	for b := 0; b < resamples; b++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += xs[intn(n)]
		}
		means[b] = sum / float64(n)
	}
	alpha := (1 - confidence) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha), nil
}
