package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"resilience/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance(nil) != 0 {
		t.Error("Variance(nil) != 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty should be +/-Inf")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
	if s := Summarize(nil); s.N != 0 {
		t.Error("Summarize(nil).N != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Float64()
	}
	if err := quick.Check(func(a, b float64) bool {
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
}

func TestAutocorrelationPerfect(t *testing.T) {
	// A constant-increment alternating series has lag-1 autocorr near -1.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	ac, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ac > -0.9 {
		t.Fatalf("alternating series lag-1 autocorr = %v, want ~-1", ac)
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Norm(0, 1)
	}
	ac, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ac) > 0.05 {
		t.Fatalf("white-noise lag-1 autocorr = %v, want ~0", ac)
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with phi=0.8 should measure autocorr near 0.8.
	r := rng.New(3)
	xs := make([]float64, 20000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.8*xs[i-1] + r.Norm(0, 1)
	}
	ac, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ac, 0.8, 0.03) {
		t.Fatalf("AR(1) autocorr = %v, want ~0.8", ac)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation([]float64{1, 2}, 5); !errors.Is(err, ErrInsufficientData) {
		t.Error("want ErrInsufficientData for lag beyond data")
	}
	if _, err := Autocorrelation([]float64{1, 2, 3}, -1); !errors.Is(err, ErrInsufficientData) {
		t.Error("want ErrInsufficientData for negative lag")
	}
	// Constant series: zero denominator handled as zero correlation.
	ac, err := Autocorrelation([]float64{5, 5, 5, 5}, 1)
	if err != nil || ac != 0 {
		t.Errorf("constant series: ac=%v err=%v", ac, err)
	}
}

func TestRollingApply(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := RollingApply(xs, 2, Mean)
	want := []float64{1.5, 2.5, 3.5}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if RollingApply(xs, 5, Mean) != nil {
		t.Error("window larger than data should return nil")
	}
	if RollingApply(xs, 0, Mean) != nil {
		t.Error("zero window should return nil")
	}
}

func TestKendallTau(t *testing.T) {
	inc := []float64{1, 2, 3, 4, 5}
	tau, err := KendallTau(inc)
	if err != nil || tau != 1 {
		t.Fatalf("increasing tau = %v err=%v, want 1", tau, err)
	}
	dec := []float64{5, 4, 3, 2, 1}
	tau, err = KendallTau(dec)
	if err != nil || tau != -1 {
		t.Fatalf("decreasing tau = %v, want -1", tau)
	}
	if _, err := KendallTau([]float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Error("want ErrInsufficientData for single point")
	}
}

func TestKendallTauRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = r.Float64()
		}
		tau, err := KendallTau(xs)
		return err == nil && tau >= -1 && tau <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Error("want ErrInsufficientData")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Error("want ErrInsufficientData for mismatched lengths")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for degenerate x")
	}
}

func TestHillEstimatorRecovers(t *testing.T) {
	r := rng.New(4)
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Pareto(1, 2.5)
	}
	alpha, err := HillEstimator(xs, n/10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(alpha, 2.5, 0.15) {
		t.Fatalf("Hill alpha = %v, want ~2.5", alpha)
	}
}

func TestHillEstimatorErrors(t *testing.T) {
	if _, err := HillEstimator([]float64{1, 2}, 5); !errors.Is(err, ErrInsufficientData) {
		t.Error("want ErrInsufficientData")
	}
	if _, err := HillEstimator([]float64{-1, -2, -3, 4}, 3); err == nil {
		t.Error("want error for non-positive tail")
	}
}

func TestFitPowerLawCCDF(t *testing.T) {
	r := rng.New(5)
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Pareto(1, 1.8)
	}
	alpha, r2, err := FitPowerLawCCDF(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(alpha, 1.8, 0.2) {
		t.Fatalf("CCDF alpha = %v, want ~1.8", alpha)
	}
	if r2 < 0.98 {
		t.Fatalf("CCDF fit R2 = %v, want near 1", r2)
	}
}

func TestFitPowerLawCCDFInsufficient(t *testing.T) {
	if _, _, err := FitPowerLawCCDF([]float64{1, 2, 3}, 1); !errors.Is(err, ErrInsufficientData) {
		t.Error("want ErrInsufficientData")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Fatalf("outliers = %d,%d", under, over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bin4 = %d, want 1", h.Counts[4])
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("want error for hi <= lo")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("want error for zero bins")
	}
}

func TestLogHistogram(t *testing.T) {
	h, err := NewLogHistogram(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, 2, 3, 4, 7.9, 8, 0, -5} {
		h.Add(x)
	}
	exps, lows, counts := h.Buckets()
	// Buckets: 1 -> [1,2), 2,3 -> [2,4), 4,7.9 -> [4,8), 8 -> [8,16).
	if len(exps) != 4 {
		t.Fatalf("buckets = %v %v %v", exps, lows, counts)
	}
	wantCounts := []int{1, 2, 2, 1}
	for i := range wantCounts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", counts, wantCounts)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestLogHistogramInvalidBase(t *testing.T) {
	if _, err := NewLogHistogram(1); err == nil {
		t.Error("want error for base <= 1")
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		xs := make([]float64, int(nRaw)%50)
		for i := range xs {
			xs[i] = r.Norm(0, 10)
		}
		return Variance(xs) >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAutocorrelation(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Autocorrelation(xs, 1)
	}
}

func TestBootstrapCIBasics(t *testing.T) {
	r := rng.New(20)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Norm(10, 2)
	}
	lo, hi, err := BootstrapCI(xs, 0.95, 2000, r.Intn)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Fatalf("interval inverted: [%v, %v]", lo, hi)
	}
	m := Mean(xs)
	if m < lo || m > hi {
		t.Fatalf("sample mean %v outside its own bootstrap CI [%v, %v]", m, lo, hi)
	}
	// The CI should be roughly mean ± 2*sd/sqrt(n) ≈ ±0.28.
	if hi-lo > 1.2 || hi-lo < 0.2 {
		t.Fatalf("CI width %v implausible", hi-lo)
	}
}

func TestBootstrapCIShrinksWithN(t *testing.T) {
	r := rng.New(21)
	width := func(n int) float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm(0, 1)
		}
		lo, hi, err := BootstrapCI(xs, 0.95, 1000, r.Intn)
		if err != nil {
			t.Fatal(err)
		}
		return hi - lo
	}
	small := width(30)
	large := width(3000)
	if large >= small {
		t.Fatalf("CI width should shrink with n: %v -> %v", small, large)
	}
}

func TestBootstrapCIValidation(t *testing.T) {
	r := rng.New(22)
	if _, _, err := BootstrapCI([]float64{1}, 0.95, 100, r.Intn); !errors.Is(err, ErrInsufficientData) {
		t.Error("want ErrInsufficientData")
	}
	xs := []float64{1, 2, 3}
	if _, _, err := BootstrapCI(xs, 0, 100, r.Intn); err == nil {
		t.Error("want error for confidence 0")
	}
	if _, _, err := BootstrapCI(xs, 0.95, 5, r.Intn); err == nil {
		t.Error("want error for too few resamples")
	}
	if _, _, err := BootstrapCI(xs, 0.95, 100, nil); err == nil {
		t.Error("want error for nil sampler")
	}
}
