// Package metrics implements the paper's quantitative definition of
// resilience (§4.1, Fig 3), adopted from Bruneau's seismic-resilience
// framework: a system's quality Q(t) ∈ [0, 100] degrades abruptly at time
// t0 after a shock and recovers by time t1, and the resilience loss is the
// area of the "resilience triangle"
//
//	R = ∫_{t0}^{t1} [100 − Q(t)] dt .
//
// The smaller the area, the more resilient the system. The package
// decomposes the loss into the paper's two dimensions — resistance
// (reduced service degradation at t0) and recoverability (reduced time to
// recovery) — and aggregates losses over shock ensembles.
package metrics

import (
	"errors"
	"math"
)

// FullQuality is the nominal quality level of an undisturbed system.
const FullQuality = 100.0

// ErrEmptyTrace is returned when a metric is applied to a trace with no
// samples.
var ErrEmptyTrace = errors.New("metrics: empty trace")

// Trace is a uniformly sampled quality time series: sample i is the quality
// at time Start + i*Step. Quality values are clamped to [0, FullQuality]
// on Append.
type Trace struct {
	Start float64
	Step  float64
	Q     []float64
}

// NewTrace creates an empty trace starting at time start with the given
// sampling step. A non-positive step is coerced to 1.
func NewTrace(start, step float64) *Trace {
	if step <= 0 {
		step = 1
	}
	return &Trace{Start: start, Step: step}
}

// Append records the next quality sample, clamped to [0, FullQuality].
func (tr *Trace) Append(q float64) {
	if q < 0 {
		q = 0
	}
	if q > FullQuality {
		q = FullQuality
	}
	tr.Q = append(tr.Q, q)
}

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.Q) }

// End returns the time of the last sample; Start for an empty trace.
func (tr *Trace) End() float64 {
	if len(tr.Q) == 0 {
		return tr.Start
	}
	return tr.Start + float64(len(tr.Q)-1)*tr.Step
}

// TimeAt returns the time of sample i.
func (tr *Trace) TimeAt(i int) float64 { return tr.Start + float64(i)*tr.Step }

// Loss returns the Bruneau resilience loss R = ∫ (100 − Q) dt over the
// whole trace, by the trapezoid rule. Larger loss means less resilient.
func (tr *Trace) Loss() (float64, error) {
	if len(tr.Q) == 0 {
		return 0, ErrEmptyTrace
	}
	if len(tr.Q) == 1 {
		return 0, nil
	}
	var area float64
	for i := 1; i < len(tr.Q); i++ {
		d0 := FullQuality - tr.Q[i-1]
		d1 := FullQuality - tr.Q[i]
		area += (d0 + d1) / 2 * tr.Step
	}
	return area, nil
}

// LossBetween integrates the deficit only over samples with times in
// [t0, t1].
func (tr *Trace) LossBetween(t0, t1 float64) (float64, error) {
	if len(tr.Q) == 0 {
		return 0, ErrEmptyTrace
	}
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	var area float64
	for i := 1; i < len(tr.Q); i++ {
		ta, tb := tr.TimeAt(i-1), tr.TimeAt(i)
		if tb < t0 || ta > t1 {
			continue
		}
		d0 := FullQuality - tr.Q[i-1]
		d1 := FullQuality - tr.Q[i]
		area += (d0 + d1) / 2 * tr.Step
	}
	return area, nil
}

// Normalized returns the loss divided by the worst possible loss over the
// trace duration (total outage for the whole window), yielding a
// dimensionless value in [0, 1]: 0 is perfectly resilient, 1 is total
// sustained failure.
func (tr *Trace) Normalized() (float64, error) {
	loss, err := tr.Loss()
	if err != nil {
		return 0, err
	}
	duration := float64(len(tr.Q)-1) * tr.Step
	if duration == 0 {
		return 0, nil
	}
	return loss / (FullQuality * duration), nil
}

// Robustness returns the minimum quality reached — Bruneau's "strength"
// dimension. FullQuality for an undisturbed trace.
func (tr *Trace) Robustness() (float64, error) {
	if len(tr.Q) == 0 {
		return 0, ErrEmptyTrace
	}
	minQ := math.Inf(1)
	for _, q := range tr.Q {
		if q < minQ {
			minQ = q
		}
	}
	return minQ, nil
}

// Episode describes one contiguous degradation: quality drops below the
// baseline at StartIndex and first returns to >= baseline at EndIndex
// (EndIndex == -1 if the trace ends unrecovered).
type Episode struct {
	StartIndex int
	EndIndex   int
	StartTime  float64
	// RecoveryTime is t1 − t0, the paper's recoverability dimension;
	// +Inf if the trace ends before recovery.
	RecoveryTime float64
	// Depth is 100 − min Q during the episode, the resistance dimension.
	Depth float64
	// Loss is the triangle area of this episode alone.
	Loss float64
}

// Recovered reports whether the episode ended within the trace.
func (e Episode) Recovered() bool { return e.EndIndex >= 0 }

// Episodes scans the trace for degradations below the given baseline
// quality and returns one Episode per contiguous dip, in time order.
func (tr *Trace) Episodes(baseline float64) []Episode {
	var out []Episode
	in := false
	var cur Episode
	var minQ float64
	flush := func(end int) {
		cur.EndIndex = end
		cur.Depth = FullQuality - minQ
		if end >= 0 {
			cur.RecoveryTime = tr.TimeAt(end) - cur.StartTime
			cur.Loss, _ = tr.LossBetween(cur.StartTime, tr.TimeAt(end))
		} else {
			cur.RecoveryTime = math.Inf(1)
			cur.Loss, _ = tr.LossBetween(cur.StartTime, tr.End())
		}
		out = append(out, cur)
	}
	for i, q := range tr.Q {
		if !in && q < baseline {
			in = true
			cur = Episode{StartIndex: i, StartTime: tr.TimeAt(i)}
			minQ = q
		} else if in {
			if q < minQ {
				minQ = q
			}
			if q >= baseline {
				in = false
				flush(i)
			}
		}
	}
	if in {
		flush(-1)
	}
	return out
}

// Report is the full resilience assessment of a single trace.
type Report struct {
	Loss         float64
	Normalized   float64
	Robustness   float64
	Episodes     []Episode
	MeanRecovery float64 // mean recovery time over recovered episodes; NaN if none
}

// Assess produces a Report against the given baseline quality.
func Assess(tr *Trace, baseline float64) (Report, error) {
	loss, err := tr.Loss()
	if err != nil {
		return Report{}, err
	}
	norm, err := tr.Normalized()
	if err != nil {
		return Report{}, err
	}
	rob, err := tr.Robustness()
	if err != nil {
		return Report{}, err
	}
	eps := tr.Episodes(baseline)
	var recSum float64
	var recN int
	for _, e := range eps {
		if e.Recovered() {
			recSum += e.RecoveryTime
			recN++
		}
	}
	mean := math.NaN()
	if recN > 0 {
		mean = recSum / float64(recN)
	}
	return Report{
		Loss:         loss,
		Normalized:   norm,
		Robustness:   rob,
		Episodes:     eps,
		MeanRecovery: mean,
	}, nil
}

// ScenarioLoss pairs one shock scenario's probability with its measured
// resilience loss.
type ScenarioLoss struct {
	Probability float64
	Loss        float64
}

// ExpectedLoss aggregates losses over a shock ensemble, as the paper notes
// community resilience "must include probabilities of the occurrences of
// various earthquakes". Probabilities need not sum to one; they are used
// as weights.
func ExpectedLoss(scenarios []ScenarioLoss) (float64, error) {
	if len(scenarios) == 0 {
		return 0, errors.New("metrics: no scenarios")
	}
	var wsum, acc float64
	for _, s := range scenarios {
		if s.Probability < 0 {
			return 0, errors.New("metrics: negative probability")
		}
		wsum += s.Probability
		acc += s.Probability * s.Loss
	}
	if wsum == 0 {
		return 0, errors.New("metrics: zero total probability")
	}
	return acc / wsum, nil
}

// RecoveryProfile generates a canonical trace for analytical comparisons:
// full quality for lead samples, an instantaneous drop to floor, then
// recovery to full over recover samples along the given shape.
type RecoveryShape int

// Recovery shapes for synthetic traces.
const (
	// StepRecovery jumps straight back to full quality after the outage.
	StepRecovery RecoveryShape = iota + 1
	// LinearRecovery climbs back at constant rate.
	LinearRecovery
	// ExponentialRecovery recovers fast at first, slow near the end
	// (time constant = recover/3).
	ExponentialRecovery
)

// SyntheticTrace builds a trace of the given shape: lead samples at full
// quality, a drop to floor, recover samples of recovery, then tail samples
// at full quality.
func SyntheticTrace(shape RecoveryShape, floor float64, lead, recover, tail int, step float64) *Trace {
	tr := NewTrace(0, step)
	for i := 0; i < lead; i++ {
		tr.Append(FullQuality)
	}
	for i := 0; i < recover; i++ {
		frac := float64(i) / float64(recover)
		var q float64
		switch shape {
		case StepRecovery:
			q = floor
		case LinearRecovery:
			q = floor + (FullQuality-floor)*frac
		case ExponentialRecovery:
			tau := float64(recover) / 3
			q = FullQuality - (FullQuality-floor)*math.Exp(-float64(i)/tau)
		default:
			q = floor
		}
		tr.Append(q)
	}
	for i := 0; i < tail; i++ {
		tr.Append(FullQuality)
	}
	return tr
}
