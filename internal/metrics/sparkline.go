package metrics

import (
	"strings"
)

// sparkLevels are the eight block glyphs from lowest to highest.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the trace's quality series as a fixed-width Unicode
// sparkline scaled to [0, FullQuality] — a one-line Fig 3 for terminals.
// Wider traces are downsampled by taking the minimum of each bucket (the
// pessimistic view: a dip never disappears by resampling); narrower
// traces render one glyph per sample. Width < 1 and empty traces return
// "".
func (tr *Trace) Sparkline(width int) string {
	n := len(tr.Q)
	if n == 0 || width < 1 {
		return ""
	}
	if width > n {
		width = n
	}
	var b strings.Builder
	b.Grow(width * 3) // block glyphs are 3 bytes in UTF-8
	for i := 0; i < width; i++ {
		lo := i * n / width
		hi := (i + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		minQ := tr.Q[lo]
		for _, q := range tr.Q[lo+1 : hi] {
			if q < minQ {
				minQ = q
			}
		}
		idx := int(minQ / FullQuality * float64(len(sparkLevels)))
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		if idx < 0 {
			idx = 0
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}
