package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"resilience/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAppendClamps(t *testing.T) {
	tr := NewTrace(0, 1)
	tr.Append(-10)
	tr.Append(150)
	if tr.Q[0] != 0 || tr.Q[1] != FullQuality {
		t.Fatalf("clamping failed: %v", tr.Q)
	}
}

func TestNewTraceBadStep(t *testing.T) {
	tr := NewTrace(0, -2)
	if tr.Step != 1 {
		t.Fatalf("Step = %v, want coerced 1", tr.Step)
	}
}

func TestLossEmptyAndSingle(t *testing.T) {
	tr := NewTrace(0, 1)
	if _, err := tr.Loss(); !errors.Is(err, ErrEmptyTrace) {
		t.Error("want ErrEmptyTrace")
	}
	tr.Append(50)
	loss, err := tr.Loss()
	if err != nil || loss != 0 {
		t.Fatalf("single-sample loss = %v err=%v", loss, err)
	}
}

func TestLossRectangle(t *testing.T) {
	// Q = 60 for 10 steps of size 1 => deficit 40 * 10 intervals... the
	// trapezoid over 11 samples spans 10 units: loss = 400.
	tr := NewTrace(0, 1)
	for i := 0; i < 11; i++ {
		tr.Append(60)
	}
	loss, err := tr.Loss()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(loss, 400, 1e-9) {
		t.Fatalf("loss = %v, want 400", loss)
	}
}

func TestLossTriangle(t *testing.T) {
	// Fig 3: abrupt drop to 0 at t0, linear recovery to 100 over 10 steps.
	// Area of the triangle = 1/2 * base * height = 1/2 * 10 * 100 = 500.
	tr := NewTrace(0, 1)
	for i := 0; i <= 10; i++ {
		tr.Append(float64(i) * 10)
	}
	loss, err := tr.Loss()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(loss, 500, 1e-9) {
		t.Fatalf("triangle loss = %v, want 500", loss)
	}
}

func TestPerfectTraceZeroLoss(t *testing.T) {
	tr := NewTrace(0, 0.5)
	for i := 0; i < 100; i++ {
		tr.Append(FullQuality)
	}
	loss, err := tr.Loss()
	if err != nil || loss != 0 {
		t.Fatalf("loss = %v err=%v, want 0", loss, err)
	}
	n, err := tr.Normalized()
	if err != nil || n != 0 {
		t.Fatalf("normalized = %v, want 0", n)
	}
}

func TestLossBetween(t *testing.T) {
	tr := NewTrace(0, 1)
	for i := 0; i < 10; i++ {
		if i >= 3 && i < 6 {
			tr.Append(0)
		} else {
			tr.Append(100)
		}
	}
	full, err := tr.Loss()
	if err != nil {
		t.Fatal(err)
	}
	window, err := tr.LossBetween(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(window, full, 1e-9) {
		t.Fatalf("window loss %v should equal full loss %v (dip inside window)", window, full)
	}
	outside, err := tr.LossBetween(7.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if outside != 0 {
		t.Fatalf("loss outside dip = %v, want 0", outside)
	}
	// Reversed bounds are normalized.
	rev, err := tr.LossBetween(7, 2)
	if err != nil || !almostEqual(rev, window, 1e-9) {
		t.Fatalf("reversed bounds loss = %v, want %v", rev, window)
	}
}

func TestNormalizedRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		r := rng.New(seed)
		tr := NewTrace(0, 1)
		for i := 0; i < n; i++ {
			tr.Append(r.Float64() * 100)
		}
		v, err := tr.Normalized()
		return err == nil && v >= 0 && v <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRobustness(t *testing.T) {
	tr := NewTrace(0, 1)
	for _, q := range []float64{100, 80, 30, 90, 100} {
		tr.Append(q)
	}
	rob, err := tr.Robustness()
	if err != nil || rob != 30 {
		t.Fatalf("Robustness = %v err=%v, want 30", rob, err)
	}
}

func TestEpisodesSingle(t *testing.T) {
	tr := NewTrace(0, 1)
	for _, q := range []float64{100, 100, 50, 20, 60, 100, 100} {
		tr.Append(q)
	}
	eps := tr.Episodes(99)
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	e := eps[0]
	if e.StartIndex != 2 || e.EndIndex != 5 {
		t.Fatalf("episode bounds = %d..%d", e.StartIndex, e.EndIndex)
	}
	if !e.Recovered() {
		t.Error("episode should be recovered")
	}
	if e.RecoveryTime != 3 {
		t.Fatalf("RecoveryTime = %v, want 3", e.RecoveryTime)
	}
	if e.Depth != 80 {
		t.Fatalf("Depth = %v, want 80", e.Depth)
	}
	if e.Loss <= 0 {
		t.Fatalf("Loss = %v, want > 0", e.Loss)
	}
}

func TestEpisodesMultipleAndUnrecovered(t *testing.T) {
	tr := NewTrace(0, 1)
	for _, q := range []float64{100, 40, 100, 100, 30, 30} {
		tr.Append(q)
	}
	eps := tr.Episodes(99)
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2", len(eps))
	}
	if !eps[0].Recovered() {
		t.Error("first episode should be recovered")
	}
	if eps[1].Recovered() {
		t.Error("second episode should be unrecovered")
	}
	if !math.IsInf(eps[1].RecoveryTime, 1) {
		t.Fatalf("unrecovered RecoveryTime = %v, want +Inf", eps[1].RecoveryTime)
	}
}

func TestEpisodesNone(t *testing.T) {
	tr := NewTrace(0, 1)
	for i := 0; i < 5; i++ {
		tr.Append(100)
	}
	if eps := tr.Episodes(99); len(eps) != 0 {
		t.Fatalf("episodes = %d, want 0", len(eps))
	}
}

func TestAssess(t *testing.T) {
	tr := SyntheticTrace(LinearRecovery, 0, 2, 10, 2, 1)
	rep, err := Assess(tr, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loss <= 0 {
		t.Fatalf("Loss = %v", rep.Loss)
	}
	if rep.Robustness != 0 {
		t.Fatalf("Robustness = %v, want 0", rep.Robustness)
	}
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %d", len(rep.Episodes))
	}
	if math.IsNaN(rep.MeanRecovery) {
		t.Fatal("MeanRecovery is NaN for a recovered trace")
	}
}

func TestAssessEmpty(t *testing.T) {
	if _, err := Assess(NewTrace(0, 1), 99); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("want ErrEmptyTrace")
	}
}

func TestFasterRecoverySmallerLoss(t *testing.T) {
	// The paper's core monotonicity: reduced time to recovery (t1−t0)
	// shrinks the triangle.
	fast := SyntheticTrace(LinearRecovery, 20, 1, 5, 1, 1)
	slow := SyntheticTrace(LinearRecovery, 20, 1, 50, 1, 1)
	lf, err := fast.Loss()
	if err != nil {
		t.Fatal(err)
	}
	ls, err := slow.Loss()
	if err != nil {
		t.Fatal(err)
	}
	if lf >= ls {
		t.Fatalf("fast loss %v should be < slow loss %v", lf, ls)
	}
}

func TestShallowerDropSmallerLoss(t *testing.T) {
	// Resistance: reduced degradation at t0 shrinks the triangle.
	shallow := SyntheticTrace(LinearRecovery, 80, 1, 10, 1, 1)
	deep := SyntheticTrace(LinearRecovery, 10, 1, 10, 1, 1)
	lsh, err := shallow.Loss()
	if err != nil {
		t.Fatal(err)
	}
	ld, err := deep.Loss()
	if err != nil {
		t.Fatal(err)
	}
	if lsh >= ld {
		t.Fatalf("shallow loss %v should be < deep loss %v", lsh, ld)
	}
}

func TestRecoveryShapeOrdering(t *testing.T) {
	// For the same floor and duration: exponential recovers quality
	// fastest (smallest loss), step holds the floor longest (largest).
	step := SyntheticTrace(StepRecovery, 20, 1, 20, 1, 1)
	lin := SyntheticTrace(LinearRecovery, 20, 1, 20, 1, 1)
	exp := SyntheticTrace(ExponentialRecovery, 20, 1, 20, 1, 1)
	ls, _ := step.Loss()
	ll, _ := lin.Loss()
	le, _ := exp.Loss()
	if !(le < ll && ll < ls) {
		t.Fatalf("loss ordering exp %v < lin %v < step %v violated", le, ll, ls)
	}
}

func TestExpectedLoss(t *testing.T) {
	el, err := ExpectedLoss([]ScenarioLoss{
		{Probability: 0.9, Loss: 10},
		{Probability: 0.1, Loss: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(el, 0.9*10+0.1*1000, 1e-9) {
		t.Fatalf("expected loss = %v", el)
	}
}

func TestExpectedLossErrors(t *testing.T) {
	if _, err := ExpectedLoss(nil); err == nil {
		t.Error("want error for empty ensemble")
	}
	if _, err := ExpectedLoss([]ScenarioLoss{{Probability: -1, Loss: 5}}); err == nil {
		t.Error("want error for negative probability")
	}
	if _, err := ExpectedLoss([]ScenarioLoss{{Probability: 0, Loss: 5}}); err == nil {
		t.Error("want error for zero total weight")
	}
}

func TestExpectedLossUnnormalizedWeights(t *testing.T) {
	a, err := ExpectedLoss([]ScenarioLoss{{2, 10}, {2, 30}})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 20, 1e-9) {
		t.Fatalf("weighted mean = %v, want 20", a)
	}
}

func TestLossMonotoneInDeficitProperty(t *testing.T) {
	// Lowering any sample cannot decrease the loss.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		tr := NewTrace(0, 1)
		n := 20
		for i := 0; i < n; i++ {
			tr.Append(50 + r.Float64()*50)
		}
		l1, err := tr.Loss()
		if err != nil {
			return false
		}
		i := r.Intn(n)
		tr.Q[i] = tr.Q[i] / 2
		l2, err := tr.Loss()
		if err != nil {
			return false
		}
		return l2 >= l1-1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeAtAndEnd(t *testing.T) {
	tr := NewTrace(10, 2)
	tr.Append(100)
	tr.Append(100)
	tr.Append(100)
	if tr.TimeAt(2) != 14 {
		t.Fatalf("TimeAt(2) = %v", tr.TimeAt(2))
	}
	if tr.End() != 14 {
		t.Fatalf("End = %v", tr.End())
	}
	empty := NewTrace(5, 1)
	if empty.End() != 5 {
		t.Fatalf("empty End = %v, want Start", empty.End())
	}
}

func TestSparklineBasics(t *testing.T) {
	tr := NewTrace(0, 1)
	if tr.Sparkline(10) != "" {
		t.Fatal("empty trace should render empty")
	}
	for _, q := range []float64{100, 100, 0, 100} {
		tr.Append(q)
	}
	s := tr.Sparkline(4)
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline = %q, want 4 glyphs", s)
	}
	runes := []rune(s)
	if runes[0] != '█' || runes[2] != '▁' {
		t.Fatalf("sparkline = %q: full should be block, outage should be floor", s)
	}
	if tr.Sparkline(0) != "" {
		t.Fatal("width 0 should render empty")
	}
}

func TestSparklineDownsamplePessimistic(t *testing.T) {
	// A one-sample outage must survive downsampling to a narrow width.
	tr := NewTrace(0, 1)
	for i := 0; i < 100; i++ {
		if i == 50 {
			tr.Append(0)
		} else {
			tr.Append(100)
		}
	}
	s := []rune(tr.Sparkline(10))
	found := false
	for _, r := range s {
		if r == '▁' {
			found = true
		}
	}
	if !found {
		t.Fatalf("sparkline %q lost the outage in downsampling", string(s))
	}
}

func TestSparklineWidthClamp(t *testing.T) {
	tr := NewTrace(0, 1)
	tr.Append(50)
	tr.Append(50)
	if got := len([]rune(tr.Sparkline(99))); got != 2 {
		t.Fatalf("glyphs = %d, want clamped to sample count", got)
	}
}
