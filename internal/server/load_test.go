package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"resilience/internal/experiments"
	"resilience/internal/obs"
	"resilience/internal/runner"
)

// herdSize is the thundering-herd width of the coalescing test: the
// acceptance criterion's 32 concurrent identical requests.
const herdSize = 32

// TestCoalescedHerdComputesOnce is the load test of the tentpole's
// coalescing contract: herdSize concurrent identical /v1/run requests
// produce exactly one computation, one cache store, and herdSize−1
// coalesced waiters sharing the leader's result byte for byte.
//
// The experiment body blocks until released, and the test releases it
// only once every follower is registered on the flight, so the herd is
// provably concurrent — no follower can slip in after the leader
// finished and be served by the cache instead.
func TestCoalescedHerdComputesOnce(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var runs int // guarded by the flight group: only the leader runs
	gate := fakeExp("tgate", func(rec *experiments.Recorder, cfg experiments.Config) error {
		runs++
		rec.Notef("gated run, seed %d", cfg.Seed)
		started <- struct{}{}
		<-release
		return nil
	})
	s, ts, o := newTestServer(t, Config{
		Registry:    []experiments.Experiment{gate},
		MaxInflight: 4,
	})

	type reply struct {
		status string
		body   string
		code   int
	}
	replies := make(chan reply, herdSize)
	var wg sync.WaitGroup
	for i := 0; i < herdSize; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run/tgate", "application/json",
				strings.NewReader(`{"seed":7,"quick":true}`))
			if err != nil {
				replies <- reply{status: "transport error: " + err.Error()}
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			replies <- reply{status: resp.Header.Get(statusHeader), body: string(body), code: resp.StatusCode}
		}()
	}

	// Wait for the leader to be computing, then for all herdSize−1
	// followers to be parked on its flight, then release the leader.
	<-started
	key := runner.CacheKey(s.options(runParams{Seed: 7, Quick: true}), gate).Digest()
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.waiterCount(key) != herdSize-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d followers joined the flight", s.flights.waiterCount(key), herdSize-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(replies)

	var okCount, coalescedCount int
	var firstBody string
	for r := range replies {
		if r.code != 200 {
			t.Fatalf("herd member got %d %q", r.code, r.status)
		}
		if firstBody == "" {
			firstBody = r.body
		} else if r.body != firstBody {
			t.Fatal("herd members received different bodies")
		}
		switch r.status {
		case "ok":
			okCount++
		case "ok (coalesced)":
			coalescedCount++
		default:
			t.Fatalf("unexpected status %q", r.status)
		}
	}
	if okCount != 1 || coalescedCount != herdSize-1 {
		t.Fatalf("got %d ok / %d coalesced, want 1 / %d", okCount, coalescedCount, herdSize-1)
	}
	if runs != 1 {
		t.Fatalf("experiment body ran %d times, want 1", runs)
	}
	if stores := o.Metrics.Counter("rescache.stores").Value(); stores != 1 {
		t.Fatalf("rescache.stores = %d, want exactly 1", stores)
	}
	if co := o.Metrics.Counter("server.coalesced").Value(); co != herdSize-1 {
		t.Fatalf("server.coalesced = %d, want %d", co, herdSize-1)
	}
	// A straggler arriving after the herd dispersed is a cache hit, not
	// a coalesced waiter: the flight must be unregistered by now.
	_, hdr, _ := post(t, ts.URL+"/v1/run/tgate", `{"seed":7,"quick":true}`)
	if got := hdr.Get(statusHeader); got != "ok (cached fs)" {
		t.Fatalf("straggler status %q, want ok (cached fs)", got)
	}
}

// TestWarmSuiteByteIdentical is the acceptance criterion's suite half:
// a second identical POST /v1/suite over the full registry streams a
// byte-identical NDJSON body, with every experiment served from the
// cache (rescache.hits covers the registry).
func TestWarmSuiteByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	_, ts, o := newTestServer(t, Config{Registry: experiments.All()})
	n := len(experiments.All())
	req := `{"seed":42,"quick":true}`
	code, _, cold := post(t, ts.URL+"/v1/suite", req)
	if code != 200 {
		t.Fatalf("cold suite status %d", code)
	}
	code, _, warm := post(t, ts.URL+"/v1/suite", req)
	if code != 200 {
		t.Fatalf("warm suite status %d", code)
	}
	if cold != warm {
		t.Fatal("warm suite body differs from cold run")
	}
	if got := strings.Count(cold, "\n"); got != n {
		t.Fatalf("suite streamed %d lines, want %d", got, n)
	}
	if hits := o.Metrics.Counter("rescache.hits").Value(); hits != int64(n) {
		t.Fatalf("rescache.hits = %d, want %d (warm run fully cached)", hits, n)
	}
	if stores := o.Metrics.Counter("rescache.stores").Value(); stores != int64(n) {
		t.Fatalf("rescache.stores = %d, want %d (cold run stores once each)", stores, n)
	}
}

// TestShutdownDrainsInflight proves graceful shutdown: a run in flight
// when Shutdown begins completes with a 200, Shutdown waits for it, and
// afterwards nothing is left running — the inflight gauge is back to
// zero and the goroutine count settles to its pre-server level (the
// PR 3 leak-test pattern).
func TestShutdownDrainsInflight(t *testing.T) {
	before := runtime.NumGoroutine()

	started := make(chan struct{}, 1)
	slow := fakeExp("tslow", func(rec *experiments.Recorder, cfg experiments.Config) error {
		started <- struct{}{}
		time.Sleep(200 * time.Millisecond)
		rec.Notef("slow done")
		return nil
	})
	o := obs.New()
	s := New(Config{Registry: []experiments.Experiment{slow}, Obs: o, RequestTimeout: 10 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := fmt.Sprintf("http://%s/v1/run/tslow", l.Addr())

	type result struct {
		code int
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Post(url, "application/json", strings.NewReader(`{}`))
		if err != nil {
			got <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got <- result{code: resp.StatusCode}
	}()

	<-started // the run is in flight; begin the drain
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || r.code != 200 {
		t.Fatalf("in-flight request during drain: code %d err %v, want 200", r.code, r.err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}

	// Everything must have drained: inflight back to zero, goroutines
	// back to (roughly) the pre-server count. Poll with a deadline, as
	// the PR 3 leak tests do, since conn teardown is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for {
		inflight := o.Gauge("server.inflight").Value()
		if inflight == 0 && runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never drained: inflight=%v goroutines=%d (was %d)",
				inflight, runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRequestTimeoutWhileQueued: with the single worker slot held by a
// gated run, a second *different* request (no coalescing possible)
// times out in the queue with a structured 504 instead of waiting
// forever. The gated run carries a plan with a long per-attempt
// timeout, so the slot stays held past the queued request's deadline —
// without it the leader's attempt would time out at the same instant
// and release the slot, racing the assertion.
func TestRequestTimeoutWhileQueued(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	gate := fakeExp("tgate", func(rec *experiments.Recorder, cfg experiments.Config) error {
		started <- struct{}{}
		<-release
		return nil
	})
	_, ts, _ := newTestServer(t, Config{
		Registry:       []experiments.Experiment{gate, fakeExp("t01", noop)},
		MaxInflight:    1,
		RequestTimeout: 150 * time.Millisecond,
	})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		resp, err := http.Post(ts.URL+"/v1/run/tgate", "application/json",
			strings.NewReader(`{"plan":{"timeoutMs":60000,"faults":[]}}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started
	code, _, body := post(t, ts.URL+"/v1/run/t01", `{}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued request status %d, want 504: %s", code, body)
	}
	if eb := decodeErrorBody(t, body); eb.Error.Code != "timeout" {
		t.Fatalf("error code %q, want timeout", eb.Error.Code)
	}
	close(release)
	<-leaderDone
}
