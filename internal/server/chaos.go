package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"resilience/internal/faultinject"
)

// emptyJSONBody reports a body that means "nothing": blank or "null".
func emptyJSONBody(data []byte) bool {
	trimmed := bytes.TrimSpace(data)
	return len(trimmed) == 0 || bytes.Equal(trimmed, []byte("null"))
}

// Server-side chaos: the deterministic disturbance seam the resilience
// bench points at a live daemon. An armed fault plan applies to every
// computed run on this node — its faults strike the same engine seams a
// request-supplied plan would, and its retries/backoff/timeout knobs
// govern the recovery the server attempts — so "graceful degradation
// under injected failure while serving traffic" becomes something a
// load generator can switch on mid-run and measure from outside.
//
// Two deliberate asymmetries versus request-supplied plans:
//
//   - The chaos plan does NOT enter the cache key or the coalescing
//     digest. Chaos is a disturbance to the serving system, not a
//     different workload: cached entries keep serving hits untouched
//     (they do not compute, so there is nothing to strike), herds still
//     coalesce, and the runner's only-clean-first-attempt-results store
//     policy keeps degraded output out of the cache.
//   - "rng" faults are rejected at arm time. An rng fault perturbs
//     result bytes while leaving the attempt "clean", which under the
//     no-rekey rule above would let silently-corrupted results into the
//     cache under the clean key — exactly the failure the content-
//     addressed store exists to prevent. Server-side chaos covers
//     crash/error/latency faults; silent corruption stays a client-side
//     (request-plan) experiment, where it is keyed honestly.
//
// A request that carries its own plan is left alone: the client asked
// for a specific faulted run, and that contract (including its cache
// key) wins over ambient chaos.

// maxChaosBodyBytes bounds an arm request; matches run requests.
const maxChaosBodyBytes = maxBodyBytes

// SetChaos arms plan as the server's ambient fault plan (nil disarms).
// Plans containing "rng" faults are rejected — see the package note on
// silent corruption.
func (s *Server) SetChaos(plan *faultinject.Plan) error {
	if plan != nil {
		for i, f := range plan.Faults {
			if f.Kind == faultinject.KindRNG {
				return fmt.Errorf("chaos plan fault %d: kind %q cannot be armed server-side "+
					"(it would corrupt results stored under a clean cache key); use panic/error/delay", i, f.Kind)
			}
		}
		plan.SetObserver(s.obs)
	}
	s.chaos.Store(&chaosState{plan: plan})
	s.obs.Counter("server.chaos.updates").Inc()
	armed := 0.0
	if plan != nil {
		armed = 1
	}
	s.obs.Gauge("server.chaos.armed").Set(armed)
	return nil
}

// Chaos returns the currently armed plan, or nil.
func (s *Server) Chaos() *faultinject.Plan {
	if st := s.chaos.Load(); st != nil {
		return st.plan
	}
	return nil
}

// chaosState wraps the plan so an atomic.Pointer can distinguish
// "never set" from "armed nil" without a typed-nil footgun.
type chaosState struct {
	plan *faultinject.Plan
}

// chaosStatus is the GET /v1/chaos document.
type chaosStatus struct {
	Armed  bool   `json:"armed"`
	Name   string `json:"name,omitempty"`
	Faults int    `json:"faults,omitempty"`
}

// handleChaosGet reports whether a chaos plan is armed, so a load
// generator can verify its strike landed before measuring under it.
func (s *Server) handleChaosGet(w http.ResponseWriter, r *http.Request) {
	st := chaosStatus{}
	if plan := s.Chaos(); plan != nil {
		st.Armed = true
		st.Name = plan.Name
		st.Faults = len(plan.Faults)
	}
	w.Header().Set("Content-Type", "application/json")
	writeIndentedJSON(w, st)
}

// handleChaosPost arms the fault plan in the request body, or disarms
// when the body is empty or "null". The plan is validated exactly like
// a request-supplied one (strict fields, coherent faults), plus the
// no-rng rule.
func (s *Server) handleChaosPost(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxChaosBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "read request body: "+err.Error())
		return
	}
	if len(data) > maxChaosBodyBytes {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("request body exceeds %d bytes", maxChaosBodyBytes))
		return
	}
	var plan *faultinject.Plan
	if !emptyJSONBody(data) {
		plan, err = faultinject.Parse(data)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_plan", err.Error())
			return
		}
	}
	if err := s.SetChaos(plan); err != nil {
		writeError(w, http.StatusBadRequest, "bad_plan", err.Error())
		return
	}
	st := chaosStatus{}
	if plan != nil {
		st.Armed = true
		st.Name = plan.Name
		st.Faults = len(plan.Faults)
	}
	w.Header().Set("Content-Type", "application/json")
	writeIndentedJSON(w, st)
}
