// Cluster behaviour tests, written against the public surface (package
// server_test) on top of internal/servertest — the fleet boot that used
// to be hand-rolled here (a lazy-handler shim so the ring could know
// every member's URL before any member's server existed) now lives in
// servertest.BootFleet for every suite to share.
package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resilience/internal/experiments"
	"resilience/internal/rescache"
	"resilience/internal/runner"
	"resilience/internal/servertest"
)

// Wire constants pinned by these black-box tests; they must match the
// values internal/server serves (drift here is an API break).
const (
	statusHeaderName  = "X-Resilience-Status"
	proxiedHeaderName = "X-Resilience-Proxied"
	tierHeaderName    = "X-Resilience-Tier"
	maxCacheEntry     = 32 << 20
)

func clusterFake(id string, run experiments.Runner) experiments.Experiment {
	return experiments.Experiment{
		ID: id, Title: "fake " + id, Source: "test",
		Modules: []string{"test"}, SupportsQuick: true, Run: run,
	}
}

func clusterNoop(rec *experiments.Recorder, cfg experiments.Config) error {
	rec.Notef("seed %d quick %t", cfg.Seed, cfg.Quick)
	return nil
}

func httpDo(t *testing.T, method, url, body string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(data)
}

// errEnvelope mirrors the server's error body shape for black-box
// assertions.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func decodeEnvelope(t *testing.T, body string) errEnvelope {
	t.Helper()
	var eb errEnvelope
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("response is not a JSON error envelope: %v\n%s", err, body)
	}
	return eb
}

// TestCachePeerProtocol pins the /v1/cache wire contract the peerstore
// tier speaks: GET misses are 404, PUT stores into the node's local
// tiers, and a stored entry reads back byte-identical with its tier
// named in the response header.
func TestCachePeerProtocol(t *testing.T) {
	n := servertest.Boot(t, servertest.WithRegistry(clusterFake("t01", clusterNoop)))
	d := (rescache.Key{ID: "e01", Seed: 7}).Digest()

	if code, _, body := httpDo(t, "GET", n.URL+"/v1/cache/"+d, ""); code != 404 {
		t.Fatalf("missing entry GET = %d %s, want 404", code, body)
	} else if eb := decodeEnvelope(t, body); eb.Error.Code != "not_found" {
		t.Fatalf("missing entry error code %q", eb.Error.Code)
	}
	if code, _, body := httpDo(t, "PUT", n.URL+"/v1/cache/"+d, "opaque entry bytes"); code != 204 {
		t.Fatalf("PUT = %d %s, want 204", code, body)
	}
	code, hdr, body := httpDo(t, "GET", n.URL+"/v1/cache/"+d, "")
	if code != 200 || body != "opaque entry bytes" {
		t.Fatalf("GET after PUT = %d %q", code, body)
	}
	if got := hdr.Get(tierHeaderName); got != "fs" {
		t.Fatalf("%s = %q, want fs", tierHeaderName, got)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
}

func TestCachePeerProtocolRejectsBadRequests(t *testing.T) {
	n := servertest.Boot(t, servertest.WithRegistry(clusterFake("t01", clusterNoop)))
	for _, bad := range []string{"short", strings.Repeat("Z", 64)} {
		if code, _, body := httpDo(t, "GET", n.URL+"/v1/cache/"+bad, ""); code != 400 {
			t.Errorf("GET bad digest %q = %d, want 400", bad, code)
		} else if eb := decodeEnvelope(t, body); eb.Error.Code != "bad_digest" {
			t.Errorf("GET bad digest error code %q", eb.Error.Code)
		}
		if code, _, _ := httpDo(t, "PUT", n.URL+"/v1/cache/"+bad, "x"); code != 400 {
			t.Errorf("PUT bad digest %q = %d, want 400", bad, code)
		}
	}
	d := (rescache.Key{ID: "e01"}).Digest()
	big := strings.Repeat("x", maxCacheEntry+1)
	if code, _, body := httpDo(t, "PUT", n.URL+"/v1/cache/"+d, big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT = %d %s, want 413", code, body)
	} else if eb := decodeEnvelope(t, body); eb.Error.Code != "too_large" {
		t.Fatalf("oversized PUT error code %q", eb.Error.Code)
	}
}

// clusterDoc mirrors the GET /v1/cluster document for decoding.
type clusterDoc struct {
	Self     string   `json:"self"`
	Members  []string `json:"members"`
	Draining bool     `json:"draining"`
	Health   string   `json:"health"`
	Owner    string   `json:"owner"`
}

// TestClusterStatusDocument checks one node's fleet view: membership,
// health, and digest-ownership debugging.
func TestClusterStatusDocument(t *testing.T) {
	nodes := servertest.BootFleet(t, 2, servertest.WithRegistry(clusterFake("t01", clusterNoop)))
	n := nodes[0]

	code, _, body := httpDo(t, "GET", n.URL+"/v1/cluster", "")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var st clusterDoc
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("cluster document is not JSON: %v\n%s", err, body)
	}
	if st.Self != n.URL {
		t.Fatalf("self = %q, want %q", st.Self, n.URL)
	}
	if len(st.Members) != 2 {
		t.Fatalf("members = %v, want both ring members", st.Members)
	}
	if st.Health != "ok" || st.Draining {
		t.Fatalf("health %q draining %t", st.Health, st.Draining)
	}
	if st.Owner != "" {
		t.Fatalf("owner %q without ?digest", st.Owner)
	}

	d := (rescache.Key{ID: "e01"}).Digest()
	_, _, body = httpDo(t, "GET", n.URL+"/v1/cluster?digest="+d, "")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Owner != n.Ring.Owner(d) {
		t.Fatalf("owner = %q, want ring's %q", st.Owner, n.Ring.Owner(d))
	}
	if code, _, _ := httpDo(t, "GET", n.URL+"/v1/cluster?digest=nope", ""); code != 400 {
		t.Fatalf("bad ?digest status %d, want 400", code)
	}
}

// TestTwoNodeHerdComputesOnceFleetWide is the coordinator's core
// promise: an identical herd split across both nodes of a ring produces
// exactly one computation and one cache store in the whole fleet, with
// every response byte-identical and the non-owner's answered by proxy.
func TestTwoNodeHerdComputesOnceFleetWide(t *testing.T) {
	var calls atomic.Int64
	exp := clusterFake("t01", func(rec *experiments.Recorder, cfg experiments.Config) error {
		calls.Add(1)
		time.Sleep(30 * time.Millisecond) // hold the flight open so herds pile up
		rec.Notef("computed once")
		return nil
	})
	nodes := servertest.BootFleet(t, 2, servertest.WithRegistry(exp))

	// The coalescing digest is the cache key's: derived seed, quick
	// flag, no plan — computable from the outside via runner.CacheKey.
	digest := runner.CacheKey(runner.Options{Seed: 7}, exp).Digest()
	owner := nodes[0].Ring.Owner(digest)
	if owner != nodes[0].URL && owner != nodes[1].URL {
		t.Fatalf("ring owner %q is not a member", owner)
	}

	const per = 8
	type reply struct {
		code       int
		body       string
		proxiedVia string
	}
	replies := make(chan reply, 2*per)
	var wg sync.WaitGroup
	for _, n := range nodes {
		for i := 0; i < per; i++ {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				resp, err := http.Post(u+"/v1/run/t01", "application/json", strings.NewReader(`{"seed":7}`))
				if err != nil {
					t.Errorf("post %s: %v", u, err)
					return
				}
				defer resp.Body.Close()
				body, _ := io.ReadAll(resp.Body)
				replies <- reply{resp.StatusCode, string(body), resp.Header.Get(proxiedHeaderName)}
			}(n.URL)
		}
	}
	wg.Wait()
	close(replies)

	if calls.Load() != 1 {
		t.Fatalf("fleet computed %d times, want exactly 1", calls.Load())
	}
	stores := nodes[0].Obs.Metrics.Counter("rescache.stores").Value() +
		nodes[1].Obs.Metrics.Counter("rescache.stores").Value()
	if stores != 1 {
		t.Fatalf("fleet stored %d entries, want exactly 1", stores)
	}

	var first string
	proxied := 0
	for r := range replies {
		if r.code != 200 {
			t.Fatalf("herd member got %d: %s", r.code, r.body)
		}
		if first == "" {
			first = r.body
		} else if r.body != first {
			t.Fatal("herd responses are not byte-identical")
		}
		if r.proxiedVia != "" {
			proxied++
			if r.proxiedVia != owner {
				t.Fatalf("proxied via %q, want the owner %q", r.proxiedVia, owner)
			}
		}
	}
	if proxied == 0 {
		t.Fatal("no response reports being proxied to the owner")
	}
}

// TestDeadOwnerFallsBackToLocalCompute: when a digest's owner is
// unreachable, the non-owner computes locally — a degraded fleet slows
// down, it never turns membership changes into 5xxs.
func TestDeadOwnerFallsBackToLocalCompute(t *testing.T) {
	exp := clusterFake("t01", clusterNoop)
	nodes := servertest.BootFleet(t, 2, servertest.WithRegistry(exp))
	survivor, victim := nodes[0], nodes[1]
	victim.Kill()

	// Find a seed whose digest the dead peer owns, so the request must
	// try (and fail) to proxy.
	var seed uint64
	for seed = 1; ; seed++ {
		d := runner.CacheKey(runner.Options{Seed: seed}, exp).Digest()
		if survivor.Ring.Owner(d) == victim.URL {
			break
		}
	}
	code, hdr, body := httpDo(t, "POST", survivor.URL+"/v1/run/t01",
		`{"seed":`+strconv.FormatUint(seed, 10)+`}`)
	if code != 200 {
		t.Fatalf("dead-owner run = %d, want 200: %s", code, body)
	}
	if got := hdr.Get(statusHeaderName); got != "ok" {
		t.Fatalf("status %q, want ok (a local compute)", got)
	}
	if got := hdr.Get(proxiedHeaderName); got != "" {
		t.Fatalf("%s = %q, want unset", proxiedHeaderName, got)
	}
	if n := survivor.Obs.Metrics.Counter("server.proxy.errors").Value(); n < 1 {
		t.Fatalf("server.proxy.errors = %d, want >= 1", n)
	}
	if n := survivor.Obs.Metrics.Counter("server.proxied").Value(); n != 0 {
		t.Fatalf("server.proxied = %d, want 0", n)
	}
}
