package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resilience/internal/cluster"
	"resilience/internal/experiments"
	"resilience/internal/obs"
	"resilience/internal/rescache"
	"resilience/internal/rescache/fsstore"
	"resilience/internal/runner"
)

// lateHandler lets a httptest server start (and pick its URL) before the
// Server that will answer on it exists — the ring needs every member's
// URL up front, but each member's URL is only known after its listener
// starts.
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h = h
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// newClusterNode builds one fleet member: its own observer, its own
// filesystem cache tier, and the shared ring.
func newClusterNode(t *testing.T, reg []experiments.Experiment, self string, ring *cluster.Ring) (*Server, *obs.Observer) {
	t.Helper()
	o := obs.New()
	st, err := fsstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := rescache.New(st)
	cache.SetObserver(o)
	s := New(Config{Registry: reg, Obs: o, Cache: cache, Ring: ring, Self: self})
	return s, o
}

func put(t *testing.T, url, body string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(data)
}

// TestCachePeerProtocol pins the /v1/cache wire contract the peerstore
// tier speaks: GET misses are 404, PUT stores into the node's local
// tiers, and a stored entry reads back byte-identical with its tier
// named in the response header.
func TestCachePeerProtocol(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	d := (rescache.Key{ID: "e01", Seed: 7}).Digest()

	if code, _, body := get(t, ts.URL+"/v1/cache/"+d); code != 404 {
		t.Fatalf("missing entry GET = %d %s, want 404", code, body)
	} else if eb := decodeErrorBody(t, body); eb.Error.Code != "not_found" {
		t.Fatalf("missing entry error code %q", eb.Error.Code)
	}
	if code, _, body := put(t, ts.URL+"/v1/cache/"+d, "opaque entry bytes"); code != 204 {
		t.Fatalf("PUT = %d %s, want 204", code, body)
	}
	code, hdr, body := get(t, ts.URL+"/v1/cache/"+d)
	if code != 200 || body != "opaque entry bytes" {
		t.Fatalf("GET after PUT = %d %q", code, body)
	}
	if got := hdr.Get(tierHeader); got != "fs" {
		t.Fatalf("%s = %q, want fs", tierHeader, got)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
}

func TestCachePeerProtocolRejectsBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, bad := range []string{"short", strings.Repeat("Z", 64)} {
		if code, _, body := get(t, ts.URL+"/v1/cache/"+bad); code != 400 {
			t.Errorf("GET bad digest %q = %d, want 400", bad, code)
		} else if eb := decodeErrorBody(t, body); eb.Error.Code != "bad_digest" {
			t.Errorf("GET bad digest error code %q", eb.Error.Code)
		}
		if code, _, _ := put(t, ts.URL+"/v1/cache/"+bad, "x"); code != 400 {
			t.Errorf("PUT bad digest %q = %d, want 400", bad, code)
		}
	}
	d := (rescache.Key{ID: "e01"}).Digest()
	big := strings.Repeat("x", maxCacheEntryBytes+1)
	if code, _, body := put(t, ts.URL+"/v1/cache/"+d, big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT = %d %s, want 413", code, body)
	} else if eb := decodeErrorBody(t, body); eb.Error.Code != "too_large" {
		t.Fatalf("oversized PUT error code %q", eb.Error.Code)
	}
}

// TestClusterStatusDocument checks one node's fleet view: membership,
// health, and digest-ownership debugging.
func TestClusterStatusDocument(t *testing.T) {
	lh := &lateHandler{}
	ts := httptest.NewServer(lh)
	t.Cleanup(ts.Close)
	ring := cluster.New([]string{ts.URL, "http://peer.invalid:9"}, 0)
	reg := []experiments.Experiment{fakeExp("t01", noop)}
	s, _ := newClusterNode(t, reg, ts.URL, ring)
	lh.set(s.Handler())

	code, _, body := get(t, ts.URL+"/v1/cluster")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var st clusterStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("cluster document is not JSON: %v\n%s", err, body)
	}
	if st.Self != ts.URL {
		t.Fatalf("self = %q, want %q", st.Self, ts.URL)
	}
	if len(st.Members) != 2 {
		t.Fatalf("members = %v, want both ring members", st.Members)
	}
	if st.Health != "ok" || st.Draining {
		t.Fatalf("health %q draining %t", st.Health, st.Draining)
	}
	if st.Owner != "" {
		t.Fatalf("owner %q without ?digest", st.Owner)
	}

	d := (rescache.Key{ID: "e01"}).Digest()
	_, _, body = get(t, ts.URL+"/v1/cluster?digest="+d)
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Owner != ring.Owner(d) {
		t.Fatalf("owner = %q, want ring's %q", st.Owner, ring.Owner(d))
	}
	if code, _, _ := get(t, ts.URL+"/v1/cluster?digest=nope"); code != 400 {
		t.Fatalf("bad ?digest status %d, want 400", code)
	}
}

// TestTwoNodeHerdComputesOnceFleetWide is the coordinator's core
// promise: an identical herd split across both nodes of a ring produces
// exactly one computation and one cache store in the whole fleet, with
// every response byte-identical and the non-owner's answered by proxy.
func TestTwoNodeHerdComputesOnceFleetWide(t *testing.T) {
	var calls atomic.Int64
	exp := fakeExp("t01", func(rec *experiments.Recorder, cfg experiments.Config) error {
		calls.Add(1)
		time.Sleep(30 * time.Millisecond) // hold the flight open so herds pile up
		rec.Notef("computed once")
		return nil
	})
	reg := []experiments.Experiment{exp}

	lhA, lhB := &lateHandler{}, &lateHandler{}
	tsA, tsB := httptest.NewServer(lhA), httptest.NewServer(lhB)
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	ring := cluster.New([]string{tsA.URL, tsB.URL}, 0)
	sA, oA := newClusterNode(t, reg, tsA.URL, ring)
	sB, oB := newClusterNode(t, reg, tsB.URL, ring)
	lhA.set(sA.Handler())
	lhB.set(sB.Handler())

	p := runParams{Seed: 7}
	digest := runner.CacheKey(sA.options(p), exp).Digest()
	owner := ring.Owner(digest)
	if owner != tsA.URL && owner != tsB.URL {
		t.Fatalf("ring owner %q is not a member", owner)
	}

	const per = 8
	type reply struct {
		code       int
		body       string
		proxiedVia string
	}
	replies := make(chan reply, 2*per)
	var wg sync.WaitGroup
	for _, u := range []string{tsA.URL, tsB.URL} {
		for i := 0; i < per; i++ {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				resp, err := http.Post(u+"/v1/run/t01", "application/json", strings.NewReader(`{"seed":7}`))
				if err != nil {
					t.Errorf("post %s: %v", u, err)
					return
				}
				defer resp.Body.Close()
				body, _ := io.ReadAll(resp.Body)
				replies <- reply{resp.StatusCode, string(body), resp.Header.Get(proxiedHeader)}
			}(u)
		}
	}
	wg.Wait()
	close(replies)

	if calls.Load() != 1 {
		t.Fatalf("fleet computed %d times, want exactly 1", calls.Load())
	}
	storesA := oA.Metrics.Counter("rescache.stores").Value()
	storesB := oB.Metrics.Counter("rescache.stores").Value()
	if storesA+storesB != 1 {
		t.Fatalf("fleet stored %d entries (%d + %d), want exactly 1", storesA+storesB, storesA, storesB)
	}

	var first string
	proxied := 0
	for r := range replies {
		if r.code != 200 {
			t.Fatalf("herd member got %d: %s", r.code, r.body)
		}
		if first == "" {
			first = r.body
		} else if r.body != first {
			t.Fatal("herd responses are not byte-identical")
		}
		if r.proxiedVia != "" {
			proxied++
			if r.proxiedVia != owner {
				t.Fatalf("proxied via %q, want the owner %q", r.proxiedVia, owner)
			}
		}
	}
	if proxied == 0 {
		t.Fatal("no response reports being proxied to the owner")
	}
}

// TestDeadOwnerFallsBackToLocalCompute: when a digest's owner is
// unreachable, the non-owner computes locally — a degraded fleet slows
// down, it never turns membership changes into 5xxs.
func TestDeadOwnerFallsBackToLocalCompute(t *testing.T) {
	reg := []experiments.Experiment{fakeExp("t01", noop)}
	lh := &lateHandler{}
	ts := httptest.NewServer(lh)
	t.Cleanup(ts.Close)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // the peer is in the ring but refuses connections

	ring := cluster.New([]string{ts.URL, dead.URL}, 0)
	s, o := newClusterNode(t, reg, ts.URL, ring)
	lh.set(s.Handler())

	// Find a seed whose digest the dead peer owns, so the request must
	// try (and fail) to proxy.
	var seed uint64
	for seed = 1; ; seed++ {
		d := runner.CacheKey(s.options(runParams{Seed: seed}), reg[0]).Digest()
		if _, remote := s.owner(d); remote {
			break
		}
	}
	code, hdr, body := post(t, ts.URL+"/v1/run/t01", `{"seed":`+strconv.FormatUint(seed, 10)+`}`)
	if code != 200 {
		t.Fatalf("dead-owner run = %d, want 200: %s", code, body)
	}
	if got := hdr.Get(statusHeader); got != "ok" {
		t.Fatalf("status %q, want ok (a local compute)", got)
	}
	if got := hdr.Get(proxiedHeader); got != "" {
		t.Fatalf("%s = %q, want unset", proxiedHeader, got)
	}
	if n := o.Metrics.Counter("server.proxy.errors").Value(); n < 1 {
		t.Fatalf("server.proxy.errors = %d, want >= 1", n)
	}
	if n := o.Metrics.Counter("server.proxied").Value(); n != 0 {
		t.Fatalf("server.proxied = %d, want 0", n)
	}
}
