// Package server exposes the experiment suite as a long-running HTTP
// service: the network surface the ROADMAP's "serves heavy traffic"
// north star asks for, wrapped around the same registry, staged engine,
// result cache, and observability layer the CLI uses. The paper's
// resilience machinery only matters once the system is operated as a
// service under sustained load, so the server is production-shaped:
//
//   - bounded concurrency — computing requests take a slot on a
//     resizable worker pool (see pool.go); excess requests queue FIFO,
//     bounded by the per-request timeout and, under pressure, by the
//     operational mode's admission policy rather than melting the host;
//   - operational modes — the server runs a normal → pressured →
//     emergency ladder (§3.4.6, see mode.go): pressured forces quick
//     runs and sheds with structured 429s once the queue passes its
//     bound, emergency serves cache-only with compute suspended. The
//     internal/adapt controller (or POST /v1/mode) drives transitions;
//     every response names its mode in the X-Resilience-Mode header;
//   - request coalescing — concurrent requests for the same
//     (experiment, seed, quick, plan) tuple fold onto one computation,
//     keyed by the same rescache digest the result cache uses, so a
//     thundering herd computes once and N−1 callers share the result;
//   - graceful shutdown — Shutdown marks the server draining (readyz
//     flips to 503, new /v1 requests are refused) and waits for
//     in-flight runs to finish;
//   - observability — server.requests / server.coalesced counters and a
//     server.inflight gauge join the runner/rescache metrics in the
//     resilience-metrics/1 document served at /metrics, and each
//     request runs under a span (the tracer is expected to be
//     limit-bounded by the caller; see obs.Tracer.SetLimit).
//
// Endpoints:
//
//	GET  /v1/experiments   registry listing (same JSON as `list -format json`)
//	POST /v1/run/{id}      run one experiment; body {seed, quick, plan}
//	POST /v1/suite         run many; streams one compact Result per line (NDJSON)
//	POST /v1/campaign      sweep a campaign spec (internal/campaign); streams
//	                       one row per scenario + a summary line (NDJSON),
//	                       parallelism capped at half the pool, shed per mode

//	GET  /v1/cache/{digest} peer cache protocol: local entry bytes or 404
//	PUT  /v1/cache/{digest} peer cache protocol: store entry bytes
//	GET  /v1/cluster       fleet status: ring, tier stats, cache health
//	GET  /v1/chaos         chaos seam status: is a fault plan armed?
//	POST /v1/chaos         arm (or clear) a server-side fault plan; see chaos.go
//	GET  /v1/mode          operational mode + shed/switch counts; see mode.go
//	POST /v1/mode          force a mode (operator/chaos override)
//	GET  /healthz          liveness
//	GET  /readyz           readiness (503 while draining) + mode + cache health
//	GET  /metrics          obs metrics document (resilience-metrics/1)
//
// With a ring configured (Config.Self + Config.Peers) the server is a
// fleet coordinator: each run request's cache digest is consistent-
// hashed across the ring, and a node that does not own the digest
// first reads through its tiered cache (memory, disk, then the owner's
// store over the peer protocol) and otherwise proxies the run to the
// owner — so coalescing collapses an identical-request herd to one
// computation fleet-wide, not just per process. A dead owner degrades
// the request to local compute (counted in server.proxy.errors), never
// to a 5xx.
//
// Response bodies for /v1/run are byte-identical to the CLI's `-format
// json` output for the same seed/quick/plan, and /v1/suite lines are
// deterministic for a given request document, so both are golden-
// testable and a warm repeat is byte-identical to the cold run. Run
// metadata that may differ between identical requests (cached,
// coalesced, attempts) travels in X-Resilience-* headers, never in the
// body. A degraded-but-recovered run is HTTP 200 with the degradation
// annotation in the body, exactly as the CLI renders it; only a run
// whose final attempt failed maps to a 5xx.
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"resilience/internal/cluster"
	"resilience/internal/engine"
	"resilience/internal/experiments"
	"resilience/internal/obs"
	"resilience/internal/rescache"
)

// DefaultRequestTimeout bounds one request end to end (queueing,
// coalesced waiting, and the run itself) when Config leaves it unset.
const DefaultRequestTimeout = 60 * time.Second

// Config assembles a Server.
type Config struct {
	// Registry is the experiment set to serve; nil means
	// experiments.All().
	Registry []experiments.Experiment
	// Cache is the shared result cache; nil disables caching (requests
	// still coalesce, but nothing persists between them).
	Cache *rescache.Cache
	// Obs receives the server's counters, gauges, and request spans and
	// backs /metrics; nil means a fresh private observer.
	Obs *obs.Observer
	// MaxInflight bounds how many runs compute concurrently (the worker
	// pool size); values below 1 mean GOMAXPROCS. Coalesced waiters do
	// not hold slots.
	MaxInflight int
	// RequestTimeout bounds one request end to end; 0 means
	// DefaultRequestTimeout, negative means unbounded.
	RequestTimeout time.Duration
	// Local is the node's own storage (typically the mem+fs tiers,
	// without the peer tier) served to the fleet at /v1/cache; nil
	// falls back to Cache's store, and the endpoint 404s when neither
	// exists. Keeping the peer tier out of Local is what prevents
	// cache-protocol loops: a node answers for what it holds, it never
	// asks the ring on a peer's behalf.
	Local rescache.Store
	// Ring is the fleet's consistent-hash ring (internal/cluster); nil
	// means a single-node server with no proxying.
	Ring *cluster.Ring
	// Self is this node's advertised base URL — the ring member that
	// means "run it here". Required when Ring is set.
	Self string
}

// Server is the HTTP experiment service. Construct with New; serve with
// Serve (or mount Handler on an existing http.Server); stop with
// Shutdown.
type Server struct {
	reg         []experiments.Experiment
	byID        map[string]experiments.Experiment
	cache       *rescache.Cache
	local       rescache.Store
	ring        *cluster.Ring
	self        string
	proxy       *http.Client
	obs         *obs.Observer
	pool        *workPool
	baseWorkers int
	flights     flightGroup
	timeout     time.Duration
	handler     http.Handler
	httpSrv     *http.Server
	draining    atomic.Bool
	chaos       atomic.Pointer[chaosState]
	mode        atomic.Int32
	// forceMode, when set (SetForceMode, before serving starts), is how
	// POST /v1/mode overrides the mode: through the adapt controller so
	// its hysteresis follows the override.
	forceMode func(Mode)
}

// New builds a Server from cfg. The returned server is immediately
// ready: Handler can be mounted without calling Serve.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = experiments.All()
	}
	inflight := cfg.MaxInflight
	if inflight < 1 {
		inflight = runtime.GOMAXPROCS(0)
	}
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	local := cfg.Local
	if local == nil && cfg.Cache != nil {
		local = cfg.Cache.Store()
	}
	s := &Server{
		reg:         reg,
		byID:        make(map[string]experiments.Experiment, len(reg)),
		cache:       cfg.Cache,
		local:       local,
		ring:        cfg.Ring,
		self:        cfg.Self,
		proxy:       &http.Client{},
		obs:         o,
		pool:        newWorkPool(inflight, o),
		baseWorkers: inflight,
		timeout:     timeout,
	}
	for _, e := range reg {
		s.byID[e.ID] = e
	}
	// Register the server's deterministic counters up front so they
	// appear (as zeros) in every /metrics document.
	o.Counter("server.requests")
	o.Counter("server.coalesced")
	o.Counter("server.proxied")
	o.Counter("server.proxy.errors")
	o.Counter("server.chaos.updates")
	o.Counter("server.shed")
	o.Counter("server.mode.switches")
	o.Counter("server.campaign.requests")
	o.Counter("server.campaign.scenarios")
	o.Counter("server.campaign.shed")
	o.Gauge("server.inflight")
	o.Gauge("server.chaos.armed")
	o.Gauge("server.mode")
	o.Timing("server.latency")
	o.Timing("server.queue.wait")

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /v1/run/{id}", s.handleRun)
	mux.HandleFunc("POST /v1/suite", s.handleSuite)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	mux.HandleFunc("GET /v1/cache/{digest}", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{digest}", s.handleCachePut)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("GET /v1/chaos", s.handleChaosGet)
	mux.HandleFunc("POST /v1/chaos", s.handleChaosPost)
	mux.HandleFunc("GET /v1/mode", s.handleModeGet)
	mux.HandleFunc("POST /v1/mode", s.handleModePost)
	s.handler = s.instrument(mux)
	s.httpSrv = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the server's root handler, for tests and callers that
// manage their own http.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on l until Shutdown or a listener error.
// Like http.Server.Serve it always returns a non-nil error;
// http.ErrServerClosed after a clean Shutdown.
func (s *Server) Serve(l net.Listener) error { return s.httpSrv.Serve(l) }

// Shutdown drains the server: readiness flips to 503, new /v1 requests
// are refused with a structured "draining" error, and in-flight runs
// are given until ctx expires to finish. It returns ctx.Err() if the
// drain did not complete in time.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.httpSrv.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// instrument wraps the mux with the request-scoped observability and
// lifecycle concerns shared by every endpoint: the draining gate, the
// server.requests counter, the work-tracking instruments, a per-request
// span, and the end-to-end request timeout.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() && strings.HasPrefix(r.URL.Path, "/v1/") {
			writeError(w, http.StatusServiceUnavailable, "draining",
				"server is draining; retry against another instance")
			return
		}
		s.obs.Counter("server.requests").Inc()
		// Only run/suite work moves the inflight gauge and latency
		// timing. Scrapes and probes must not: the SLO hung-after-drain
		// check and the adapt Monitor both read these as "work the
		// server owes someone", and a /metrics poll during a bench run
		// would inflate exactly the signal it is trying to observe.
		if isWork(r.URL.Path) {
			s.obs.Gauge("server.inflight").Add(1)
			start := time.Now()
			defer func() {
				s.obs.Timing("server.latency").Observe(time.Since(start).Seconds())
				s.obs.Gauge("server.inflight").Add(-1)
			}()
		}
		span := s.obs.Span(r.Method+" "+r.URL.Path, "request")
		defer span.End()
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// isWork reports whether a request path is run/suite computation — the
// work the inflight gauge, server.latency timing, and adapt controller
// track, as opposed to scrapes, probes, and control-plane calls.
func isWork(path string) bool {
	return strings.HasPrefix(path, "/v1/run/") || path == "/v1/suite" || path == "/v1/campaign"
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// handleReadyz reports readiness plus cache-backend health, so a cache
// directory that breaks after startup is surfaced here instead of
// degrading silently one miss at a time. A degraded cache does not flip
// readiness — the node can still compute — but the probe result and the
// running backend-error count are in the body for operators and load
// balancers that look.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ready\n"))
	fmt.Fprintf(w, "mode: %s\n", s.Mode())
	switch {
	case s.cache == nil:
		w.Write([]byte("cache: off\n"))
	default:
		if err := s.cache.Check(); err != nil {
			fmt.Fprintf(w, "cache: degraded: %v\n", err)
		} else {
			w.Write([]byte("cache: ok\n"))
		}
		if n := s.cache.Errors(); n > 0 {
			fmt.Fprintf(w, "cache: %d backend errors since boot\n", n)
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.obs.WriteJSON(w)
}

// handleExperiments serves the registry listing with the same document
// shape (and bytes) as `resilience list -format json`.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID            string   `json:"id"`
		Title         string   `json:"title"`
		Source        string   `json:"source"`
		Modules       []string `json:"modules"`
		SupportsQuick bool     `json:"supportsQuick"`
	}
	entries := make([]entry, 0, len(s.reg))
	for _, e := range s.reg {
		entries = append(entries, entry{e.ID, e.Title, e.Source, e.Modules, e.SupportsQuick})
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(schemaHeader, strconv.Itoa(engine.SchemaVersion))
	writeIndentedJSON(w, entries)
}
