package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"resilience/internal/campaign"
	"resilience/internal/experiments"
)

// splitCampaignStream decodes a /v1/campaign NDJSON body into its
// scenario rows and trailing summary line.
func splitCampaignStream(t *testing.T, body string) ([]campaign.Row, campaign.Summary) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) < 1 {
		t.Fatalf("empty campaign stream: %q", body)
	}
	var sum campaign.Summary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatalf("last stream line is not a summary: %v\n%s", err, lines[len(lines)-1])
	}
	rows := make([]campaign.Row, 0, len(lines)-1)
	for i, line := range lines[:len(lines)-1] {
		var row campaign.Row
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row %d invalid: %v\n%s", i, err, line)
		}
		rows = append(rows, row)
	}
	return rows, sum
}

// TestCampaignEndpointStreams: the happy path — rows stream in scenario
// order, the summary is the last line, and the response is annotated
// with mode and schema headers.
func TestCampaignEndpointStreams(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	spec := `{"name":"e2e","experiments":["t01","t02"],"seeds":{"from":1,"count":3}}`
	code, hdr, body := post(t, ts.URL+"/v1/campaign", spec)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if m := hdr.Get(modeHeader); m != "normal" {
		t.Fatalf("mode header %q", m)
	}
	rows, sum := splitCampaignStream(t, body)
	if len(rows) != 6 || sum.Scenarios != 6 || sum.OK != 6 {
		t.Fatalf("stream shape: %d rows, summary %+v", len(rows), sum)
	}
	for i, row := range rows {
		if row.Scenario != i {
			t.Fatalf("row %d carries scenario %d", i, row.Scenario)
		}
		if row.Status != campaign.StatusOK || row.Digest == "" {
			t.Fatalf("row %d: %+v", i, row)
		}
	}
	if sum.Schema != campaign.SpecSchema {
		t.Fatalf("summary schema %q", sum.Schema)
	}
}

// TestCampaignEndpointWarmHits: re-running the same campaign against
// the same node replays every scenario from the result cache — the
// ≥95% warm-hit acceptance bar, which a clean grid meets at 100%.
func TestCampaignEndpointWarmHits(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	spec := `{"name":"warm","experiments":["t01","t02"],"seeds":{"from":1,"count":10}}`
	_, _, cold := post(t, ts.URL+"/v1/campaign", spec)
	before := s.cache.Stats()
	code, _, warm := post(t, ts.URL+"/v1/campaign", spec)
	if code != 200 {
		t.Fatalf("warm status %d", code)
	}
	if cold != warm {
		t.Fatal("warm campaign body differs from cold")
	}
	hits := s.cache.Stats().Hits - before.Hits
	if hits < 19 { // 19/20 = 95%
		t.Fatalf("warm re-run hit only %d/20 scenarios in cache", hits)
	}
	_, sum := splitCampaignStream(t, warm)
	if sum.OK != 20 || sum.Errors != 0 {
		t.Fatalf("warm summary %+v", sum)
	}
}

// TestCampaignEndpointShedsInEmergency: emergency mode refuses campaign
// admission with the pool's structured shed — 429 + Retry-After — and
// recovers once the mode steps back down.
func TestCampaignEndpointShedsInEmergency(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	s.SetMode(ModeEmergency)
	spec := `{"experiments":["t01"]}`
	code, hdr, body := post(t, ts.URL+"/v1/campaign", spec)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if eb := decodeErrorBody(t, body); eb.Error.Code != "shed" {
		t.Fatalf("error code %q, want shed", eb.Error.Code)
	}
	if hdr.Get(modeHeader) != "emergency" {
		t.Fatalf("mode header %q", hdr.Get(modeHeader))
	}
	s.SetMode(ModeNormal)
	if code, _, _ := post(t, ts.URL+"/v1/campaign", spec); code != 200 {
		t.Fatalf("post-recovery status %d", code)
	}
}

// TestCampaignEndpointPartialUnderEscalation: a mode escalation in the
// middle of a campaign does not abort the stream — the scenarios that
// already ran keep their rows, and the rest come back as "shed" rows
// (emergency serves only cache hits), with the summary counting them.
func TestCampaignEndpointPartialUnderEscalation(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once bool
	blocker := fakeExp("t01", func(rec *experiments.Recorder, cfg experiments.Config) error {
		if !once {
			once = true
			close(started)
			<-release
		}
		return noop(rec, cfg)
	})
	s, ts, _ := newTestServer(t, Config{
		Registry: []experiments.Experiment{blocker, fakeExp("t02", noop), fakeExp("t03", noop)},
		// MaxInflight 2 ⇒ campaign jobs 1: scenarios run sequentially, so
		// the escalation lands deterministically between rows 0 and 1.
		MaxInflight: 2,
	})
	type result struct {
		code int
		body string
	}
	got := make(chan result, 1)
	go func() {
		code, _, body := post(t, ts.URL+"/v1/campaign", `{"experiments":["t01","t02","t03"]}`)
		got <- result{code, body}
	}()
	<-started
	s.SetMode(ModeEmergency)
	close(release)
	res := <-got
	if res.code != 200 {
		t.Fatalf("status %d: %s", res.code, res.body)
	}
	rows, sum := splitCampaignStream(t, res.body)
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if rows[0].Status != campaign.StatusOK {
		t.Fatalf("row 0 (ran before escalation) = %+v", rows[0])
	}
	for _, row := range rows[1:] {
		if row.Status != campaign.StatusShed {
			t.Fatalf("post-escalation row not shed: %+v", row)
		}
		if row.Error == "" {
			t.Fatalf("shed row missing its annotation: %+v", row)
		}
	}
	if sum.OK != 1 || sum.Shed != 2 {
		t.Fatalf("summary %+v, want 1 ok / 2 shed", sum)
	}
}

// TestCampaignEndpointNeverStarvesRun: with a campaign monopolizing its
// half of the pool, an interactive /v1/run still gets a slot and
// completes while the campaign is in flight.
func TestCampaignEndpointNeverStarvesRun(t *testing.T) {
	slow := fakeExp("t01", func(rec *experiments.Recorder, cfg experiments.Config) error {
		time.Sleep(5 * time.Millisecond)
		return noop(rec, cfg)
	})
	_, ts, _ := newTestServer(t, Config{
		Registry:    []experiments.Experiment{slow, fakeExp("t02", noop)},
		MaxInflight: 4, // campaign jobs 2, leaving slots for /v1/run
	})
	done := make(chan string, 1)
	go func() {
		_, _, body := post(t, ts.URL+"/v1/campaign",
			`{"experiments":["t01"],"seeds":{"from":1,"count":60}}`)
		done <- body
	}()
	time.Sleep(20 * time.Millisecond) // campaign is mid-flight
	start := time.Now()
	code, _, body := post(t, ts.URL+"/v1/run/t02", `{"seed":7}`)
	elapsed := time.Since(start)
	if code != 200 {
		t.Fatalf("/v1/run under campaign load: %d %s", code, body)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("/v1/run starved for %v behind the campaign", elapsed)
	}
	stream := <-done
	_, sum := splitCampaignStream(t, stream)
	if sum.Scenarios != 60 || sum.OK != 60 {
		t.Fatalf("campaign summary %+v", sum)
	}
}

// TestCampaignEndpointRejects: malformed, oversized, unknown and
// search-mode specs are structured 400s, not streams.
func TestCampaignEndpointRejects(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, spec, code string
	}{
		{"malformed", `{"experiments":`, "bad_request"},
		{"unknown field", `{"experimints":["t01"]}`, "bad_request"},
		{"unknown experiment", `{"experiments":["zz"]}`, "bad_request"},
		{"search mode", `{"experiments":["t01"],"search":{"budget":4,"objective":"triangle-area"}}`, "bad_request"},
		{"too large", fmt.Sprintf(`{"experiments":["t01"],"seeds":{"from":1,"count":%d}}`, maxCampaignScenarios+1), "campaign_too_large"},
	} {
		code, _, body := post(t, ts.URL+"/v1/campaign", tc.spec)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, code, body)
			continue
		}
		if eb := decodeErrorBody(t, body); eb.Error.Code != tc.code {
			t.Errorf("%s: error code %q, want %q", tc.name, eb.Error.Code, tc.code)
		}
	}
}
