package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"resilience/internal/engine"
	"resilience/internal/experiments"
	"resilience/internal/faultinject"
	"resilience/internal/runner"
)

// Response headers carrying run metadata. Anything that can legally
// differ between two identical requests (a warm repeat is cached, a
// herd member is coalesced) lives here so response *bodies* stay
// deterministic and golden-testable.
const (
	statusHeader   = "X-Resilience-Status"
	attemptsHeader = "X-Resilience-Attempts"
	schemaHeader   = "X-Resilience-Schema"
	// modeHeader names the operational mode a run/suite request was
	// served under. Bodies stay deterministic *per mode* (pressured
	// forces quick, so its 200 body is exactly the quick:true body);
	// the header is how a client learns which contract applied.
	modeHeader = "X-Resilience-Mode"
)

// DefaultSeed is the root seed used when a request document omits one —
// the same default as the CLI's -seed flag.
const DefaultSeed = 42

// maxBodyBytes bounds a request document; a fault plan is a few KiB at
// most, so 1 MiB is generous without letting a client balloon memory.
const maxBodyBytes = 1 << 20

// runRequest is the wire shape of a /v1/run and /v1/suite request body.
// All fields are optional; an empty (or absent) body means "seed 42,
// full size, no faults, whole registry".
type runRequest struct {
	// Seed is the root seed; each experiment still runs with its
	// derived per-experiment seed, exactly like the CLI.
	Seed *uint64 `json:"seed"`
	// Quick shrinks workloads.
	Quick bool `json:"quick"`
	// Plan is an inline fault-injection plan document
	// (internal/faultinject); it also enables the plan's retries,
	// backoff, and per-attempt timeout.
	Plan json.RawMessage `json:"plan"`
	// IDs restricts a /v1/suite run to the listed experiments, in the
	// given order. Invalid on /v1/run (the id is in the path).
	IDs []string `json:"ids"`
}

// runParams is a decoded, validated request.
type runParams struct {
	Seed  uint64
	Quick bool
	Plan  *faultinject.Plan
	// PlanRaw is the plan document exactly as the client sent it, kept
	// so a coordinator can rebuild a faithful request body when proxying
	// the run to the digest's owner (who re-parses and re-validates it).
	PlanRaw json.RawMessage
	IDs     []string
}

// decodeRunRequest parses a request body into runParams. It is strict —
// unknown fields, trailing data, and invalid plans are errors — so
// typos in hand-written requests fail loudly instead of silently
// running the wrong experiment. An empty body yields the defaults.
func decodeRunRequest(body io.Reader) (runParams, error) {
	p := runParams{Seed: DefaultSeed}
	data, err := io.ReadAll(io.LimitReader(body, maxBodyBytes+1))
	if err != nil {
		return p, fmt.Errorf("read request body: %w", err)
	}
	if len(data) > maxBodyBytes {
		return p, fmt.Errorf("request body exceeds %d bytes", maxBodyBytes)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return p, nil
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var raw runRequest
	if err := dec.Decode(&raw); err != nil {
		return p, fmt.Errorf("parse request body: %w", err)
	}
	if dec.More() {
		return p, errors.New("trailing data after request document")
	}
	if raw.Seed != nil {
		p.Seed = *raw.Seed
	}
	p.Quick = raw.Quick
	p.IDs = raw.IDs
	if len(raw.Plan) > 0 && !bytes.Equal(bytes.TrimSpace(raw.Plan), []byte("null")) {
		plan, err := faultinject.Parse(raw.Plan)
		if err != nil {
			return p, fmt.Errorf("invalid fault plan: %w", err)
		}
		p.Plan = plan
		p.PlanRaw = raw.Plan
	}
	return p, nil
}

// options builds the runner options one request's runs execute under.
// The per-attempt timeout is the plan's when set, else the request
// budget, so a run that ignores its cancel signal cannot outlive the
// request that asked for it.
//
// A request without its own plan runs under the server's armed chaos
// plan, when there is one (see chaos.go): its faults, retries, backoff
// and timeout apply to the computation, but the cache key and the
// coalescing digest stay those of the clean run — chaos disturbs the
// serving system, it does not define a new workload.
func (s *Server) options(p runParams) runner.Options {
	opts := runner.Options{
		Jobs:  1,
		Seed:  p.Seed,
		Quick: p.Quick,
		Obs:   s.obs,
		Cache: s.cache,
		// The server only ever copies canonical bytes to the wire, so a
		// cache hit must not pay a JSON decode: warm responses are a
		// byte copy (Outcome.Canon), and failures still carry their
		// partial Result because they always come from a computation.
		BytesOnly: true,
	}
	switch {
	case p.Plan != nil:
		p.Plan.SetObserver(s.obs)
		opts.Hooks = p.Plan.HookFor
		opts.Retries = p.Plan.Retries
		opts.Backoff = p.Plan.Backoff()
		opts.Timeout = p.Plan.Timeout()
		opts.PlanHash = p.Plan.Hash()
	default:
		if chaos := s.Chaos(); chaos != nil {
			opts.Hooks = chaos.HookFor
			opts.Retries = chaos.Retries
			opts.Backoff = chaos.Backoff()
			opts.Timeout = chaos.Timeout()
			// No PlanHash on purpose: cached clean entries keep serving,
			// and only-clean-first-attempt stores keep degraded results
			// out of the cache.
		}
	}
	if opts.Timeout <= 0 && s.timeout > 0 {
		opts.Timeout = s.timeout
	}
	return opts
}

// execute runs one experiment for one request, coalescing onto an
// identical in-flight run when there is one. Only the flight leader
// takes a worker-pool slot; waiters block on the leader's completion
// (or their own deadline). The returned error is a transport-level
// failure (timeout while queued or waiting, shed under pressure,
// cache-only miss in emergency); an experiment failure travels inside
// the Outcome.
//
// mode is the caller's snapshot of the operational mode: pressured
// forces quick-size runs (before the cache key is computed, so the
// stored entry is honestly quick) and its queue bound sheds with
// errShed; emergency answers from cache or not at all. The snapshot
// keeps one request's policy coherent even if the controller switches
// mid-flight.
//
// With a ring configured, the flight leader on a node that does not
// own the run's cache digest first reads through the tiered cache
// (whose peer tier asks the owner's store directly) and otherwise
// proxies the run to the owner — where the owner's own flight group
// coalesces the whole fleet's herd onto one computation. Because the
// proxy happens *inside* this node's flight, a local herd collapses to
// a single proxied request first. forwarded marks a request another
// node already routed here: the loop guard — answer it locally no
// matter what this node's ring says. An unreachable or draining owner
// degrades to local compute (counted in server.proxy.errors), never to
// a 5xx.
func (s *Server) execute(ctx context.Context, e experiments.Experiment, p runParams, forwarded bool, mode Mode) (runner.Outcome, error) {
	pol := policyFor(mode, s.baseWorkers)
	if pol.ForceQuick {
		// Degrade *before* building options so the cache key and the
		// coalescing digest are the quick run's — a forced-quick result
		// is stored and shared as exactly what it is.
		p.Quick = true
	}
	opts := s.options(p)
	cacheKey := runner.CacheKey(opts, e)
	key := cacheKey.Digest()
	out, coalesced, err := s.flights.do(ctx, key, func() (runner.Outcome, error) {
		if pol.CacheOnly {
			// Emergency: serve what we already know (any tier — the
			// peer tier still reads through the owner's store), suspend
			// everything else. No slot taken, no proxied compute.
			if s.cache != nil {
				if data, tier, ok := s.cache.GetBytes(cacheKey); ok {
					return runner.Outcome{Experiment: e, Canon: data, CacheHit: true, CacheTier: tier}, nil
				}
			}
			return runner.Outcome{}, errCacheOnly
		}
		if owner, remote := s.owner(key); remote && !forwarded {
			// Config.Cache may legally be nil ("nil disables caching"):
			// a ring-configured node without a cache skips the
			// read-through and goes straight to the owner.
			if s.cache != nil {
				if data, tier, ok := s.cache.GetBytes(cacheKey); ok {
					return runner.Outcome{Experiment: e, Canon: data, CacheHit: true, CacheTier: tier}, nil
				}
			}
			got, err := s.proxyRun(ctx, owner, e, p)
			if err == nil {
				s.obs.Counter("server.proxied").Inc()
				return got, nil
			}
			s.obs.Counter("server.proxy.errors").Inc()
			// Fall through: the owner is unreachable, so this node
			// computes (and stores) the result itself.
		}
		if err := s.pool.Acquire(ctx); err != nil {
			if errors.Is(err, errShed) {
				s.obs.Counter("server.shed").Inc()
			}
			return runner.Outcome{}, err
		}
		defer s.pool.Release()
		var got runner.Outcome
		runner.Run([]experiments.Experiment{e}, opts, func(o runner.Outcome) { got = o })
		return got, nil
	})
	if err != nil {
		return out, err
	}
	if coalesced {
		// The waiter shares the leader's Result; its own request did no
		// work, whatever the leader went through to produce it.
		out.Coalesced = true
		out.CacheHit = false
		out.Attempts = 0
		s.obs.Counter("server.coalesced").Inc()
	}
	return out, nil
}

// handleRun executes one experiment and responds with the Result JSON
// document — byte-identical to `resilience <id> -format json` for the
// same seed/quick/plan. Degraded-but-recovered runs are 200 with the
// degradation annotation in the body; only a run whose final attempt
// failed is a 500 (with the partial result attached to the error
// envelope, mirroring the CLI, which still renders it).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.byID[id]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_experiment", fmt.Sprintf("unknown experiment %q", id))
		return
	}
	p, err := decodeRunRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if len(p.IDs) > 0 {
		writeError(w, http.StatusBadRequest, "bad_request", `"ids" is only valid for /v1/suite; the run target is in the path`)
		return
	}
	mode := s.Mode()
	w.Header().Set(modeHeader, mode.String())
	out, err := s.execute(r.Context(), e, p, r.Header.Get(forwardedHeader) != "", mode)
	if err != nil {
		writeTransportError(w, err)
		return
	}
	w.Header().Set(statusHeader, out.Status())
	w.Header().Set(attemptsHeader, strconv.Itoa(out.Attempts))
	w.Header().Set(schemaHeader, strconv.Itoa(engine.SchemaVersion))
	if out.Remote && out.RemoteNode != "" {
		w.Header().Set(proxiedHeader, out.RemoteNode)
	}
	if out.Err != nil {
		writeErrorResult(w, http.StatusInternalServerError, "experiment_failed", out.Err.Error(), id, out.Result)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// A warm (or proxied, or coalesced) outcome already carries its
	// canonical bytes: indent them on the way out, no decode, no
	// re-marshal. The body is byte-identical either way.
	if out.Canon != nil {
		experiments.RenderJSONBytes(w, out.Canon)
		return
	}
	experiments.RenderJSON(w, out.Result)
}

// handleSuite runs a set of experiments (the whole registry, or the
// request's "ids" subset) and streams one compact Result JSON document
// per line — NDJSON — in input order as results become available, the
// same order-preserving emit contract internal/runner gives the CLI.
// Every line is deterministic for the request document, so a warm
// repeat of the same request streams a byte-identical body; a failed
// experiment's line is its (partial) Result carrying the error field,
// and never aborts the stream.
func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	p, err := decodeRunRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	exps := s.reg
	if len(p.IDs) > 0 {
		exps = make([]experiments.Experiment, 0, len(p.IDs))
		seen := make(map[string]bool, len(p.IDs))
		for _, id := range p.IDs {
			e, ok := s.byID[id]
			if !ok {
				writeError(w, http.StatusNotFound, "unknown_experiment", fmt.Sprintf("unknown experiment %q", id))
				return
			}
			// Reject duplicates before the fan-out below: a request
			// repeating one id thousands of times would spawn thousands
			// of goroutines only for all but one to coalesce — a cheap
			// memory-amplification lever. The registry bounds a valid
			// request's fan-out.
			if seen[id] {
				writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("duplicate id %q in suite request", id))
				return
			}
			seen[id] = true
			exps = append(exps, e)
		}
	}
	mode := s.Mode()
	w.Header().Set(modeHeader, mode.String())
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(schemaHeader, strconv.Itoa(engine.SchemaVersion))

	// Fan every experiment out immediately; the worker pool inside
	// execute bounds actual compute, and identical concurrent suite
	// requests coalesce per experiment.
	ctx := r.Context()
	forwarded := r.Header.Get(forwardedHeader) != ""
	outs := make([]runner.Outcome, len(exps))
	errs := make([]error, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range exps {
		i := i
		done[i] = make(chan struct{})
		go func() {
			defer close(done[i])
			outs[i], errs[i] = s.execute(ctx, exps[i], p, forwarded, mode)
		}()
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range exps {
		<-done[i]
		if errs[i] != nil {
			// Headers are gone; report the transport failure as an
			// in-stream error line and keep going.
			enc.Encode(errorBody{Error: errObj{
				Code: transportCode(errs[i]), Message: errs[i].Error(), ID: exps[i].ID,
			}})
		} else if outs[i].Canon != nil {
			// The canonical bytes ARE the NDJSON line (the encoder
			// would produce exactly these bytes plus the newline).
			w.Write(outs[i].Canon)
			io.WriteString(w, "\n")
		} else {
			enc.Encode(outs[i].Result)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// errObj is the machine-readable error payload.
type errObj struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	ID      string `json:"id,omitempty"`
}

// errorBody is the envelope of every non-2xx response (and of in-stream
// suite error lines): always {"error":{...}}, optionally with the
// partial result a failed experiment still recorded.
type errorBody struct {
	Error  errObj              `json:"error"`
	Result *experiments.Result `json:"result,omitempty"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeErrorResult(w, status, code, msg, "", nil)
}

func writeErrorResult(w http.ResponseWriter, status int, code, msg, id string, res *experiments.Result) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeIndentedJSON(w, errorBody{Error: errObj{Code: code, Message: msg, ID: id}, Result: res})
}

// errCacheOnly is returned by execute when the emergency policy finds
// no cached result: compute is suspended, so a miss is all the server
// can honestly say.
var errCacheOnly = errors.New("emergency mode: compute suspended and result not cached")

// writeTransportError maps a queueing/coalescing failure to a status:
// a shed request is a 429 with Retry-After, an emergency cache miss a
// 503 with Retry-After, a request that ran out of budget a 504, and
// anything else (client disconnect, drain) a 503. Retry-After makes
// the overload responses *structured* shedding — a client can tell
// "come back later" apart from "broken".
func writeTransportError(w http.ResponseWriter, err error) {
	status := http.StatusServiceUnavailable
	switch {
	case errors.Is(err, errShed):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, errCacheOnly):
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	}
	writeError(w, status, transportCode(err), err.Error())
}

func transportCode(err error) string {
	switch {
	case errors.Is(err, errShed):
		return "shed"
	case errors.Is(err, errCacheOnly):
		return "cache_only"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	}
	return "unavailable"
}

// writeIndentedJSON renders v exactly like the CLI's writeJSON helper:
// two-space indent plus a trailing newline, so shared documents (the
// experiments listing) are byte-identical across both surfaces.
func writeIndentedJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Marshalling our own response types cannot fail in practice;
		// degrade to a bare 500 rather than panicking the handler.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(data, '\n'))
}
