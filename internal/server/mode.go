package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Mode is the server's operational mode — the paper's mode-switching
// strategy (§3.4.6) applied to the serving system itself. In normal
// mode the system works within the designed realm; under pressure it
// trades result fidelity and admission for latency; in an emergency it
// suspends compute entirely and serves only what it already knows.
// The integer values are the server.mode gauge's wire values.
type Mode int32

// Operational modes, in escalation order.
const (
	ModeNormal Mode = iota
	ModePressured
	ModeEmergency
)

// String returns the mode name as it appears in the X-Resilience-Mode
// header, /readyz, and log lines.
func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModePressured:
		return "pressured"
	case ModeEmergency:
		return "emergency"
	default:
		return fmt.Sprintf("mode(%d)", int32(m))
	}
}

// ParseMode maps a mode name back to its Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "normal":
		return ModeNormal, nil
	case "pressured":
		return ModePressured, nil
	case "emergency":
		return ModeEmergency, nil
	}
	return ModeNormal, fmt.Errorf("unknown mode %q (want normal, pressured, or emergency)", s)
}

// ModePolicy is what a mode means operationally — the actuator settings
// the server applies when it switches.
type ModePolicy struct {
	// ForceQuick runs every computation with quick-size workloads,
	// whatever the request asked for. Bodies stay deterministic *per
	// mode* (a forced-quick body is byte-identical to an explicit
	// quick:true run); the X-Resilience-Mode header is the annotation
	// that tells the client which contract it got.
	ForceQuick bool
	// MaxQueue bounds the worker-pool wait queue: -1 unbounded, 0 sheds
	// every request that cannot start immediately, n sheds once n are
	// already waiting.
	MaxQueue int
	// CacheOnly serves only cache hits; a miss is a structured 503 and
	// compute stays suspended.
	CacheOnly bool
	// Workers resizes the pool; 0 keeps the configured size.
	Workers int
}

// policyFor returns mode m's policy given the configured pool size.
//
//   - normal: full-size runs, unbounded queue (the request timeout is
//     the only back-pressure, as before this machinery existed);
//   - pressured: quick-size runs, queue bounded at 2× the pool — beyond
//     that requests shed with a 429 + Retry-After instead of queueing
//     toward their timeout. The bound also floors the quality signal
//     the adapt controller reads at size/(size+2·size) ≈ 33, holding a
//     shedding-but-serving server out of the emergency band;
//   - emergency: cache-only. Misses 503, nothing queues, and the pool
//     halves so an operator forcing recovery ramps compute back up
//     rather than stampeding it. ForceQuick stays on: degradation is
//     monotone down the ladder, so emergency serves the quick entries
//     pressured mode just warmed.
func policyFor(m Mode, base int) ModePolicy {
	switch m {
	case ModePressured:
		return ModePolicy{ForceQuick: true, MaxQueue: 2 * base}
	case ModeEmergency:
		w := base / 2
		if w < 1 {
			w = 1
		}
		return ModePolicy{ForceQuick: true, CacheOnly: true, MaxQueue: 0, Workers: w}
	default:
		return ModePolicy{MaxQueue: -1}
	}
}

// Mode returns the server's current operational mode.
func (s *Server) Mode() Mode { return Mode(s.mode.Load()) }

// SetMode switches the operational mode and applies its worker policy.
// It is the executor surface the adapt controller (and POST /v1/mode)
// actuates; calling it with the current mode is a no-op.
func (s *Server) SetMode(m Mode) {
	if Mode(s.mode.Swap(int32(m))) == m {
		return
	}
	s.obs.Gauge("server.mode").Set(float64(m))
	s.obs.Counter("server.mode.switches").Inc()
	pol := policyFor(m, s.baseWorkers)
	workers := pol.Workers
	if workers == 0 {
		workers = s.baseWorkers
	}
	s.pool.SetPolicy(workers, pol.MaxQueue)
}

// SetForceMode installs the hook POST /v1/mode routes through. The
// adapt controller registers its Force here so an operator-forced mode
// also resets the controller's hysteresis state instead of being
// fought back on the next tick. Must be called before the server
// starts serving.
func (s *Server) SetForceMode(fn func(Mode)) { s.forceMode = fn }

// modeStatus is the GET/POST /v1/mode document.
type modeStatus struct {
	Mode     string `json:"mode"`
	Adaptive bool   `json:"adaptive"`
	Switches int64  `json:"switches"`
	Shed     int64  `json:"shed"`
}

func (s *Server) writeModeStatus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	writeIndentedJSON(w, modeStatus{
		Mode:     s.Mode().String(),
		Adaptive: s.forceMode != nil,
		Switches: s.obs.Counter("server.mode.switches").Value(),
		Shed:     s.obs.Counter("server.shed").Value(),
	})
}

func (s *Server) handleModeGet(w http.ResponseWriter, r *http.Request) {
	s.writeModeStatus(w)
}

// handleModePost forces an operational mode — the operator (or a chaos
// plan's mode strike) overriding the controller, §3.4.5's "consensus
// building may decide the mode". Body: {"mode": "normal" | "pressured"
// | "emergency"}. With an adapt controller attached the force routes
// through it so the controller's hysteresis agrees with the override.
func (s *Server) handleModePost(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Mode string `json:"mode"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("parse mode request: %v", err))
		return
	}
	m, err := ParseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if s.forceMode != nil {
		s.forceMode(m)
	} else {
		s.SetMode(m)
	}
	s.writeModeStatus(w)
}
