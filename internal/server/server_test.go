package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resilience/internal/experiments"
	"resilience/internal/obs"
	"resilience/internal/rescache"
	"resilience/internal/rescache/fsstore"
)

// fakeExp builds an unregistered experiment for server tests, so the
// handler suite does not depend on (or pay for) the real registry.
func fakeExp(id string, run experiments.Runner) experiments.Experiment {
	return experiments.Experiment{
		ID: id, Title: "fake " + id, Source: "test",
		Modules: []string{"test"}, SupportsQuick: true, Run: run,
	}
}

func noop(rec *experiments.Recorder, cfg experiments.Config) error {
	rec.Notef("seed %d quick %t", cfg.Seed, cfg.Quick)
	return nil
}

// newTestServer builds a Server over fake experiments with a private
// observer and a temp-dir cache, plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Observer) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = []experiments.Experiment{
			fakeExp("t01", noop),
			fakeExp("t02", noop),
		}
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	if cfg.Cache == nil {
		st, err := fsstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cache := rescache.New(st)
		cache.SetObserver(cfg.Obs)
		cfg.Cache = cache
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, cfg.Obs
}

func get(t *testing.T, url string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

func post(t *testing.T, url, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(data)
}

// decodeErrorBody asserts a response is a well-formed error envelope.
func decodeErrorBody(t *testing.T, body string) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("error response is not a JSON envelope: %v\n%s", err, body)
	}
	if eb.Error.Code == "" || eb.Error.Message == "" {
		t.Fatalf("error envelope missing code/message: %s", body)
	}
	return eb
}

func TestHealthAndReady(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	if code, _, body := get(t, ts.URL+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, _, body := get(t, ts.URL+"/readyz"); code != 200 || !strings.HasPrefix(body, "ready\n") {
		t.Fatalf("readyz = %d %q", code, body)
	} else if !strings.Contains(body, "cache: ok") {
		t.Fatalf("readyz body missing cache health: %q", body)
	}
}

func TestExperimentsListing(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	code, hdr, body := get(t, ts.URL+"/v1/experiments")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var entries []struct {
		ID            string   `json:"id"`
		Title         string   `json:"title"`
		Modules       []string `json:"modules"`
		SupportsQuick bool     `json:"supportsQuick"`
	}
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("listing is not JSON: %v", err)
	}
	if len(entries) != 2 || entries[0].ID != "t01" || !entries[0].SupportsQuick {
		t.Fatalf("unexpected listing: %+v", entries)
	}
}

func TestRunReturnsResultDocument(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	code, hdr, body := post(t, ts.URL+"/v1/run/t01", `{"seed":7,"quick":true}`)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if got := hdr.Get(statusHeader); got != "ok" {
		t.Fatalf("%s = %q, want ok", statusHeader, got)
	}
	if got := hdr.Get(attemptsHeader); got != "1" {
		t.Fatalf("%s = %q, want 1", attemptsHeader, got)
	}
	var res experiments.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("body is not a Result document: %v", err)
	}
	if res.ID != "t01" || !res.Quick || len(res.Notes) == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

// TestRunWarmRepeatIsCachedAndByteIdentical pins the cache contract on
// the HTTP surface: the second identical request replays the stored
// result byte for byte and says so in the status header, not the body.
func TestRunWarmRepeatIsCachedAndByteIdentical(t *testing.T) {
	_, ts, o := newTestServer(t, Config{})
	_, hdr1, body1 := post(t, ts.URL+"/v1/run/t01", `{"seed":7}`)
	_, hdr2, body2 := post(t, ts.URL+"/v1/run/t01", `{"seed":7}`)
	if body1 != body2 {
		t.Fatal("warm repeat body differs from cold run")
	}
	if got := hdr1.Get(statusHeader); got != "ok" {
		t.Fatalf("cold status %q", got)
	}
	if got := hdr2.Get(statusHeader); got != "ok (cached fs)" {
		t.Fatalf("warm status %q, want ok (cached fs)", got)
	}
	if got := hdr2.Get(attemptsHeader); got != "0" {
		t.Fatalf("warm attempts %q, want 0", got)
	}
	if hits := o.Metrics.Counter("rescache.hits").Value(); hits != 1 {
		t.Fatalf("rescache.hits = %d, want 1", hits)
	}
}

// TestRunSeedChangesKey: a different seed must recompute, not hit.
func TestRunSeedChangesKey(t *testing.T) {
	_, ts, o := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/run/t01", `{"seed":7}`)
	_, hdr, _ := post(t, ts.URL+"/v1/run/t01", `{"seed":8}`)
	if got := hdr.Get(statusHeader); got != "ok" {
		t.Fatalf("different-seed status %q, want ok (a fresh compute)", got)
	}
	if stores := o.Metrics.Counter("rescache.stores").Value(); stores != 2 {
		t.Fatalf("rescache.stores = %d, want 2", stores)
	}
}

func TestRunErrorEnvelopes(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, path, body string
		wantCode         int
		wantErrCode      string
	}{
		{"unknown id", "/v1/run/e99", `{}`, 404, "unknown_experiment"},
		{"bad json", "/v1/run/t01", `{nope`, 400, "bad_request"},
		{"unknown field", "/v1/run/t01", `{"sede":7}`, 400, "bad_request"},
		{"trailing data", "/v1/run/t01", `{} {}`, 400, "bad_request"},
		{"bad plan", "/v1/run/t01", `{"plan":{"faults":[{"experiment":"t01","kind":"zap"}]}}`, 400, "bad_request"},
		{"ids on run", "/v1/run/t01", `{"ids":["t01"]}`, 400, "bad_request"},
		{"unknown suite id", "/v1/suite", `{"ids":["nope"]}`, 404, "unknown_experiment"},
	} {
		code, _, body := post(t, ts.URL+tc.path, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.wantCode, body)
			continue
		}
		if eb := decodeErrorBody(t, body); eb.Error.Code != tc.wantErrCode {
			t.Errorf("%s: error code %q, want %q", tc.name, eb.Error.Code, tc.wantErrCode)
		}
	}
}

// TestRunFailedExperimentIs500 maps a run whose final attempt failed to
// a structured 500 that still carries the partial result, mirroring the
// CLI (which renders the partial result and exits non-zero).
func TestRunFailedExperimentIs500(t *testing.T) {
	boom := fakeExp("tboom", func(rec *experiments.Recorder, cfg experiments.Config) error {
		rec.Notef("about to fail")
		return io.ErrUnexpectedEOF
	})
	_, ts, _ := newTestServer(t, Config{Registry: []experiments.Experiment{boom}})
	code, hdr, body := post(t, ts.URL+"/v1/run/tboom", `{}`)
	if code != 500 {
		t.Fatalf("status %d, want 500: %s", code, body)
	}
	if got := hdr.Get(statusHeader); !strings.HasPrefix(got, "FAILED: ") {
		t.Fatalf("%s = %q, want FAILED: ...", statusHeader, got)
	}
	eb := decodeErrorBody(t, body)
	if eb.Error.Code != "experiment_failed" || eb.Error.ID != "tboom" {
		t.Fatalf("envelope %+v", eb.Error)
	}
	if eb.Result == nil || len(eb.Result.Notes) == 0 {
		t.Fatal("envelope should carry the partial result")
	}
}

// TestRunDegradedIs200 pins the tentpole's error-mapping rule: a run
// that failed an attempt but recovered under the plan's retries is a
// success with an annotation, never a 5xx.
func TestRunDegradedIs200(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	body := `{
		"seed": 7,
		"plan": {"retries": 1, "faults": [
			{"experiment": "t01", "seam": "body", "kind": "error", "attempt": 1}
		]}
	}`
	code, hdr, respBody := post(t, ts.URL+"/v1/run/t01", body)
	if code != 200 {
		t.Fatalf("degraded run status %d, want 200: %s", code, respBody)
	}
	if got := hdr.Get(statusHeader); got != "ok (degraded, 2 attempts)" {
		t.Fatalf("%s = %q", statusHeader, got)
	}
	var res experiments.Result
	if err := json.Unmarshal([]byte(respBody), &res); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "degraded: recovered on attempt 2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("degradation annotation missing from notes: %v", res.Notes)
	}
}

// TestSuiteStreamsNDJSONInOrder checks the stream contract: one compact
// Result document per line, in request order, regardless of completion
// order.
func TestSuiteStreamsNDJSONInOrder(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	code, hdr, body := post(t, ts.URL+"/v1/suite", `{"seed":7,"ids":["t02","t01"]}`)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2:\n%s", len(lines), body)
	}
	var ids []string
	for _, line := range lines {
		var res experiments.Result
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("line is not a Result document: %v\n%s", err, line)
		}
		ids = append(ids, res.ID)
	}
	if ids[0] != "t02" || ids[1] != "t01" {
		t.Fatalf("stream order %v, want [t02 t01] (request order)", ids)
	}
}

// TestSuiteFailedExperimentKeepsStreaming: one failing experiment's
// line carries its error inside the Result; the rest still stream.
func TestSuiteFailedExperimentKeepsStreaming(t *testing.T) {
	reg := []experiments.Experiment{
		fakeExp("t01", noop),
		fakeExp("tboom", func(rec *experiments.Recorder, cfg experiments.Config) error {
			return io.ErrUnexpectedEOF
		}),
		fakeExp("t03", noop),
	}
	_, ts, _ := newTestServer(t, Config{Registry: reg})
	code, _, body := post(t, ts.URL+"/v1/suite", `{}`)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	var mid experiments.Result
	if err := json.Unmarshal([]byte(lines[1]), &mid); err != nil {
		t.Fatal(err)
	}
	if mid.ID != "tboom" || mid.Error == "" {
		t.Fatalf("failed experiment's line should carry its error: %+v", mid)
	}
}

// TestDrainingRefusesNewWork: after Shutdown begins, readiness flips to
// 503 and new /v1 requests get a structured "draining" error, while
// liveness stays 200 (the process is healthy, just leaving rotation).
func TestDrainingRefusesNewWork(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The httptest transport is closed by Shutdown; exercise the
	// handler directly, which is what a still-open keep-alive
	// connection would reach.
	_ = ts
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/run/t01", strings.NewReader("{}")))
	if rec.Code != 503 {
		t.Fatalf("draining /v1/run status %d, want 503", rec.Code)
	}
	if eb := decodeErrorBody(t, rec.Body.String()); eb.Error.Code != "draining" {
		t.Fatalf("error code %q, want draining", eb.Error.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("draining readyz status %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("draining healthz status %d, want 200", rec.Code)
	}
}

// TestMetricsDocument: /metrics serves the resilience-metrics/1
// document with the server's own counters registered even at zero.
func TestMetricsDocument(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/run/t01", `{}`)
	code, _, body := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var doc struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]float64
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}
	if doc.Schema != obs.SchemaVersion {
		t.Fatalf("schema %q, want %q", doc.Schema, obs.SchemaVersion)
	}
	for _, name := range []string{"server.requests", "server.coalesced", "rescache.stores", "runner.attempts"} {
		if _, ok := doc.Counters[name]; !ok {
			t.Errorf("metrics document missing counter %q", name)
		}
	}
	if doc.Counters["server.requests"] < 1 {
		t.Fatalf("server.requests = %d, want >= 1", doc.Counters["server.requests"])
	}
	if doc.Counters["server.coalesced"] != 0 {
		t.Fatalf("server.coalesced = %d, want 0 (sequential requests)", doc.Counters["server.coalesced"])
	}
}

// TestMethodAndRouteErrors: wrong method or path are plain mux errors,
// not panics.
func TestMethodAndRouteErrors(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/run/t01") // GET on a POST route
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run status %d, want 405", resp.StatusCode)
	}
	if code, _, _ := get(t, ts.URL+"/v1/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown route status %d, want 404", code)
	}
}
