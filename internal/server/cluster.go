package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"resilience/internal/experiments"
	"resilience/internal/rescache"
	"resilience/internal/runner"
)

// Cluster-mode headers. forwardedHeader marks a run request that was
// already proxied once: the owner must answer it itself even if its
// view of the ring disagrees (a member list typo or a mid-kill ring
// would otherwise bounce the request around forever). proxiedHeader
// tells the client which node actually computed its response.
const (
	forwardedHeader = "X-Resilience-Forwarded"
	proxiedHeader   = "X-Resilience-Proxied"
	tierHeader      = "X-Resilience-Tier"
)

// maxCacheEntryBytes bounds one PUT /v1/cache body. Matches
// peerstore.MaxEntryBytes: full-size results are hundreds of KiB, so
// 32 MiB is generous without letting a confused peer balloon memory.
const maxCacheEntryBytes = 32 << 20

// owner resolves the fleet member that owns digest, with ok reporting
// that the owner is a *remote* node this server should defer to. A
// single-node server (no ring) owns everything.
func (s *Server) owner(digest string) (string, bool) {
	if s.ring == nil {
		return s.self, false
	}
	o := s.ring.Owner(digest)
	return o, o != "" && o != s.self
}

// handleCacheGet serves one local cache entry to a peer: the stored
// bytes, or 404 when this node does not hold the digest. Only the
// node's own tiers (Config.Local) are consulted — never the peer tier —
// so the cache protocol cannot loop.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !rescache.ValidDigest(digest) {
		writeError(w, http.StatusBadRequest, "bad_digest", "digest must be 64 lowercase hex characters")
		return
	}
	if s.local == nil {
		writeError(w, http.StatusNotFound, "not_found", "this node has no cache storage")
		return
	}
	data, tier, err := s.local.Get(digest)
	switch {
	case errors.Is(err, rescache.ErrNotFound):
		writeError(w, http.StatusNotFound, "not_found", "entry not stored on this node")
	case err != nil:
		writeError(w, http.StatusInternalServerError, "store_error", err.Error())
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set(tierHeader, tier)
		w.Write(data)
	}
}

// handleCachePut stores one entry into the node's local tiers on a
// peer's behalf (replication from the computing node to the digest's
// owner). The body is the opaque entry bytes; the digest is trusted —
// peers are the fleet, not the public internet — but bounded.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !rescache.ValidDigest(digest) {
		writeError(w, http.StatusBadRequest, "bad_digest", "digest must be 64 lowercase hex characters")
		return
	}
	if s.local == nil {
		writeError(w, http.StatusNotFound, "not_found", "this node has no cache storage")
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxCacheEntryBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("read entry body: %v", err))
		return
	}
	if len(data) > maxCacheEntryBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("entry exceeds %d bytes", maxCacheEntryBytes))
		return
	}
	if err := s.local.Put(digest, data); err != nil {
		writeError(w, http.StatusInternalServerError, "store_error", err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// clusterStatus is the GET /v1/cluster document: one node's view of the
// fleet and its cache stack.
type clusterStatus struct {
	Self     string               `json:"self"`
	Members  []string             `json:"members"`
	Draining bool                 `json:"draining"`
	Cache    rescache.Stats       `json:"cache"`
	Tiers    []rescache.TierStats `json:"tiers"`
	Health   string               `json:"health"`
	// Owner is the member owning ?digest=, when asked; handy for
	// debugging ring placement from the outside.
	Owner string `json:"owner,omitempty"`
}

// handleCluster reports this node's fleet view: ring membership, cache
// traffic and tier occupancy, and cache health. With ?digest=<hex> it
// also answers which member owns that digest.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	st := clusterStatus{
		Self:     s.self,
		Members:  s.ring.Members(),
		Draining: s.draining.Load(),
		Cache:    s.cache.Stats(),
		Tiers:    s.cache.TierStats(),
		Health:   "ok",
	}
	if s.cache == nil {
		st.Health = "off"
	} else if err := s.cache.Check(); err != nil {
		st.Health = "degraded: " + err.Error()
	}
	if d := r.URL.Query().Get("digest"); d != "" {
		if !rescache.ValidDigest(d) {
			writeError(w, http.StatusBadRequest, "bad_digest", "digest must be 64 lowercase hex characters")
			return
		}
		st.Owner, _ = s.owner(d)
	}
	w.Header().Set("Content-Type", "application/json")
	writeIndentedJSON(w, st)
}

// proxyBody rebuilds the request document forwarded to a digest's
// owner. It is built from the decoded params, not the original body:
// a suite request's "ids" field must not reach /v1/run, and the owner
// re-validates the plan it is handed.
type proxyBody struct {
	Seed  uint64          `json:"seed"`
	Quick bool            `json:"quick,omitempty"`
	Plan  json.RawMessage `json:"plan,omitempty"`
}

// proxyRun forwards one experiment run to the digest's owner and
// decodes the response into an Outcome. The returned error means the
// owner is unreachable or answered nonsense — the caller falls back to
// local compute. A well-formed 200 or 500 from the owner is the run's
// real outcome (the experiment succeeded or failed over there), never
// a transport error.
func (s *Server) proxyRun(ctx context.Context, owner string, e experiments.Experiment, p runParams) (runner.Outcome, error) {
	body, err := json.Marshal(proxyBody{Seed: p.Seed, Quick: p.Quick, Plan: p.PlanRaw})
	if err != nil {
		return runner.Outcome{}, fmt.Errorf("encode proxy body: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/run/"+e.ID, bytes.NewReader(body))
	if err != nil {
		return runner.Outcome{}, fmt.Errorf("build proxy request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, s.self)
	resp, err := s.proxy.Do(req)
	if err != nil {
		return runner.Outcome{}, fmt.Errorf("proxy to %s: %w", owner, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheEntryBytes+1))
	if err != nil {
		return runner.Outcome{}, fmt.Errorf("read proxy response from %s: %w", owner, err)
	}
	out := runner.Outcome{
		Experiment:   e,
		Remote:       true,
		RemoteStatus: resp.Header.Get(statusHeader),
		RemoteNode:   owner,
	}
	if a := resp.Header.Get(attemptsHeader); a != "" {
		out.Attempts, _ = strconv.Atoi(a)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		// The owner's body is the indented rendering of its canonical
		// bytes; compacting recovers them exactly — no decode to Result.
		// The id prefix check rejects a well-formed but wrong document
		// (the canonical encoder always emits id first).
		var buf bytes.Buffer
		buf.Grow(len(data))
		if err := json.Compact(&buf, data); err != nil {
			return runner.Outcome{}, fmt.Errorf("decode proxy result from %s: %w", owner, err)
		}
		quoted, err := json.Marshal(e.ID)
		if err != nil {
			return runner.Outcome{}, fmt.Errorf("encode id %q: %w", e.ID, err)
		}
		prefix := append(append([]byte(`{"id":`), quoted...), ',')
		if !bytes.HasPrefix(buf.Bytes(), prefix) {
			return runner.Outcome{}, fmt.Errorf("proxy result from %s is not experiment %q", owner, e.ID)
		}
		out.Canon = buf.Bytes()
		return out, nil
	case http.StatusInternalServerError:
		// The owner ran the experiment and it genuinely failed; relay
		// the failure (and any partial result) as this request's real
		// outcome instead of recomputing a run that would fail the same
		// way here.
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Message == "" {
			return runner.Outcome{}, fmt.Errorf("undecodable %d from %s", resp.StatusCode, owner)
		}
		out.Err = errors.New(eb.Error.Message)
		out.Result = eb.Result
		return out, nil
	default:
		// 503 (draining), 504 (owner out of budget), or anything
		// unexpected: treat the owner as unavailable and compute here.
		return runner.Outcome{}, fmt.Errorf("proxy to %s: status %d", owner, resp.StatusCode)
	}
}
