package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"resilience/internal/obs"
)

// errShed is returned by workPool.Acquire when the admission bound is
// hit: the request is refused *before* queueing so the client gets a
// fast structured 429 instead of a slow timeout — shedding before the
// queue melts is the point of the pressured mode.
var errShed = errors.New("server overloaded: request shed, retry later")

// workPool is the server's resizable worker pool: a counting semaphore
// with an explicit FIFO wait queue, an admission bound, and live
// occupancy metrics. It replaces the fixed channel semaphore so the
// adapt controller can actuate on it at runtime:
//
//   - SetPolicy resizes the pool and bounds (or sheds down) the wait
//     queue when the operating mode changes;
//   - the server.queued gauge and server.queue.wait timing expose the
//     congestion signal the controller's Monitor samples.
//
// Fairness: slots are granted strictly in arrival order, and a policy
// change that shrinks the queue bound sheds from the *tail* (newest
// waiters), so a request never loses its place to a later one.
type workPool struct {
	obs *obs.Observer

	mu       sync.Mutex
	size     int
	maxQueue int // -1 unbounded, 0 sheds anything that cannot start now
	used     int
	waiters  []*poolWaiter
}

type poolWaiter struct {
	ready chan struct{} // closed on grant or shed
	err   error         // set before close when the waiter is shed
}

func newWorkPool(size int, o *obs.Observer) *workPool {
	p := &workPool{obs: o, size: size, maxQueue: -1}
	o.Gauge("server.pool.size").Set(float64(size))
	o.Gauge("server.queued")
	return p
}

// Acquire takes one worker slot, queueing (FIFO) while the pool is
// saturated. It returns errShed when the queue is at the admission
// bound, or ctx.Err() if the caller's budget expires while waiting.
func (p *workPool) Acquire(ctx context.Context) error {
	p.mu.Lock()
	if p.used < p.size {
		p.used++
		p.mu.Unlock()
		return nil
	}
	if p.maxQueue >= 0 && len(p.waiters) >= p.maxQueue {
		p.mu.Unlock()
		return errShed
	}
	w := &poolWaiter{ready: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	p.obs.Gauge("server.queued").Set(float64(len(p.waiters)))
	p.mu.Unlock()

	start := time.Now()
	select {
	case <-w.ready:
		if w.err == nil {
			p.obs.Timing("server.queue.wait").Observe(time.Since(start).Seconds())
		}
		return w.err
	case <-ctx.Done():
		p.mu.Lock()
		select {
		case <-w.ready:
			// Resolved in the race window. A granted slot goes back to
			// the queue head; a shed stays a shed (the context error is
			// what the caller sees either way).
			if w.err == nil {
				p.releaseLocked()
			}
			p.mu.Unlock()
			return ctx.Err()
		default:
		}
		p.removeLocked(w)
		p.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns a worker slot and hands it to the oldest waiter.
func (p *workPool) Release() {
	p.mu.Lock()
	p.releaseLocked()
	p.mu.Unlock()
}

func (p *workPool) releaseLocked() {
	p.used--
	p.grantLocked()
}

// grantLocked hands free slots to the head of the waiter queue.
func (p *workPool) grantLocked() {
	for p.used < p.size && len(p.waiters) > 0 {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.used++
		close(w.ready)
	}
	p.obs.Gauge("server.queued").Set(float64(len(p.waiters)))
}

func (p *workPool) removeLocked(target *poolWaiter) {
	for i, w := range p.waiters {
		if w == target {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			break
		}
	}
	p.obs.Gauge("server.queued").Set(float64(len(p.waiters)))
}

// SetPolicy applies a mode's worker policy: resize the pool (minimum 1
// slot) and bound the wait queue (-1 unbounded). Growing grants slots
// to queued waiters immediately; a tighter queue bound sheds the
// excess waiters from the tail right now — each unblocks with the same
// structured errShed a fresh arrival would get, so entering pressured
// mode empties a queue that has already grown past the bound instead
// of letting it drain at compute speed.
func (p *workPool) SetPolicy(size, maxQueue int) {
	if size < 1 {
		size = 1
	}
	p.mu.Lock()
	p.size = size
	p.maxQueue = maxQueue
	for maxQueue >= 0 && len(p.waiters) > maxQueue {
		w := p.waiters[len(p.waiters)-1]
		p.waiters = p.waiters[:len(p.waiters)-1]
		w.err = errShed
		close(w.ready)
	}
	p.grantLocked()
	p.mu.Unlock()
	p.obs.Gauge("server.pool.size").Set(float64(size))
}

// Size returns the current pool size.
func (p *workPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// Queued returns how many requests are waiting for a slot.
func (p *workPool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.waiters)
}
