package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"resilience/internal/campaign"
	"resilience/internal/engine"
	"resilience/internal/runner"
)

// maxCampaignScenarios bounds one request's grid. A campaign is batch
// work riding on a serving system: the cap keeps a single POST from
// monopolizing the node for minutes past its request timeout anyway.
// Larger sweeps belong on the CLI (`resilience campaign`), which has
// no co-tenants to protect.
const maxCampaignScenarios = 10_000

// handleCampaign executes a campaign spec (internal/campaign) and
// streams one NDJSON row per scenario followed by the summary document
// — the CLI's `campaign` stream, served over HTTP.
//
// The endpoint is mode-governed batch work, bounded so it can never
// starve interactive /v1/run traffic:
//
//   - scenario parallelism is capped at half the worker pool, and every
//     scenario takes a normal pool slot through the same execute path
//     /v1/run uses (coalesced, cached, ring-routed), so interactive
//     requests keep competing for slots on equal FIFO terms;
//   - admission is refused outright in emergency mode (429 + Retry-
//     After, the same structured shedding the pool applies);
//   - the mode is re-checked per scenario: a controller that escalates
//     mid-campaign turns the remaining scenarios into "shed" rows
//     (emergency serves only what the cache already knows) — a partial,
//     annotated stream rather than an aborted one. The summary's shed
//     count is the annotation.
//
// Search-mode specs are refused: an adversarial search runs thousands
// of cache-bypassing evaluations, which is CLI work, not service work.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("read request body: %v", err))
		return
	}
	if len(data) > maxBodyBytes {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("campaign spec exceeds %d bytes", maxBodyBytes))
		return
	}
	spec, err := campaign.ParseSpec(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if spec.Search != nil {
		writeError(w, http.StatusBadRequest, "bad_request",
			"search-mode campaigns are not served over HTTP; run `resilience campaign` instead")
		return
	}
	scenarios, err := spec.Expand(s.reg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	if len(scenarios) > maxCampaignScenarios {
		writeError(w, http.StatusBadRequest, "campaign_too_large",
			fmt.Sprintf("spec expands to %d scenarios (server max %d); run larger sweeps via the CLI",
				len(scenarios), maxCampaignScenarios))
		return
	}
	mode := s.Mode()
	w.Header().Set(modeHeader, mode.String())
	if mode == ModeEmergency {
		writeTransportError(w, errShed)
		return
	}
	s.obs.Counter("server.campaign.requests").Inc()

	jobs := s.baseWorkers / 2
	if jobs < 1 {
		jobs = 1
	}
	cfg := campaign.RunConfig{
		Name:             spec.Name,
		DeadlineAttempts: spec.DeadlineAttempts,
		Jobs:             jobs,
		ErrStatus: func(err error) string {
			if errors.Is(err, errShed) || errors.Is(err, errCacheOnly) {
				return campaign.StatusShed
			}
			return campaign.StatusError
		},
	}
	exec := func(ctx context.Context, sc campaign.Scenario) (runner.Outcome, error) {
		// Per-scenario mode snapshot: the ladder applies mid-campaign,
		// exactly as it would to the same runs arriving as /v1/run.
		return s.execute(ctx, sc.Experiment, runParams{
			Seed:    sc.Seed,
			Quick:   sc.Quick,
			Plan:    sc.Plan,
			PlanRaw: sc.PlanRaw,
		}, false, s.Mode())
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(schemaHeader, strconv.Itoa(engine.SchemaVersion))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	shed := s.obs.Counter("server.campaign.shed")
	sum := campaign.Run(r.Context(), scenarios, cfg, exec, func(row campaign.Row) {
		s.obs.Counter("server.campaign.scenarios").Inc()
		if row.Status == campaign.StatusShed {
			shed.Inc()
		}
		enc.Encode(row)
		if flusher != nil {
			flusher.Flush()
		}
	})
	enc.Encode(sum)
}
