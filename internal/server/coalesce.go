package server

import (
	"context"
	"sync"
	"sync/atomic"

	"resilience/internal/runner"
)

// flightGroup is a singleflight for experiment runs: concurrent do
// calls with the same key share the first caller's computation. Keys
// are rescache digests (runner.CacheKey(...).Digest()), so two requests
// coalesce exactly when the result cache would consider them the same
// run — a thundering herd of identical requests computes once, stores
// once, and the other N−1 callers share the outcome.
//
// Unlike x/sync/singleflight (not vendored; the container has no
// network), waiters are cancellable: a waiter whose context expires
// walks away with ctx.Err() while the leader keeps computing for the
// rest.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done    chan struct{}
	out     runner.Outcome
	err     error
	waiters atomic.Int64
}

// do returns fn's outcome for key, either by calling fn (leader,
// coalesced=false) or by waiting for an in-flight leader with the same
// key (coalesced=true). The leader's result — including its error — is
// shared with every waiter; a waiter's own ctx expiring unblocks just
// that waiter.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (runner.Outcome, error)) (out runner.Outcome, coalesced bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		f.waiters.Add(1)
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.out, true, f.err
		case <-ctx.Done():
			return runner.Outcome{}, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.out, f.err = fn()
	// Unregister before signalling completion: a request arriving after
	// the results are ready must start (or join) a fresh flight — it is
	// the cache's job, not the coalescer's, to serve finished runs.
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.out, false, f.err
}

// waiterCount reports how many callers are blocked on key's in-flight
// leader (0 when no flight is active). Tests use it to hold a herd in
// place before releasing the leader.
func (g *flightGroup) waiterCount(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f.waiters.Load()
	}
	return 0
}
