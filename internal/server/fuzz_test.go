package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"resilience/internal/experiments"
	"resilience/internal/obs"
)

// FuzzDecodeRunRequest fuzzes the run-request decoder and the /v1/run
// handler behind it, the HTTP sibling of the faultinject plan fuzzers:
// whatever bytes arrive, the handler must not panic, and every non-200
// response must be a well-formed error envelope. Seeded from the
// canonical plan document (testdata/plan.json) wrapped in a request
// body, plus the interesting hand-written corners.
func FuzzDecodeRunRequest(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"seed":7,"quick":true}`))
	f.Add([]byte(`{"seed":18446744073709551615}`))
	f.Add([]byte(`{"seed":-1}`))
	f.Add([]byte(`{"ids":["t01","t01"]}`))
	f.Add([]byte(`{"plan":null}`))
	f.Add([]byte(`{"plan":{"faults":[]}}`))
	f.Add([]byte(`{"plan":{"retries":1,"faults":[{"experiment":"*","kind":"error"}]}}`))
	f.Add([]byte(`{"sede":7}`))
	f.Add([]byte(`{} {}`))
	if plan, err := os.ReadFile("../../testdata/plan.json"); err == nil {
		var body bytes.Buffer
		body.WriteString(`{"seed":7,"quick":true,"plan":`)
		body.Write(plan)
		body.WriteString(`}`)
		f.Add(body.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// The decoder itself must be total: no panic, and on success a
		// plan that passed validation.
		p, err := decodeRunRequest(bytes.NewReader(data))
		if err == nil && p.Plan != nil {
			if verr := p.Plan.Validate(); verr != nil {
				t.Fatalf("decoder accepted an invalid plan: %v", verr)
			}
		}

		// Drive the full handler only for inputs whose plan cannot make
		// the run arbitrarily slow (huge retry counts or delay faults);
		// the property under test is decoder/envelope robustness, not
		// runner throughput.
		if err == nil && p.Plan != nil {
			if p.Plan.Retries > 2 {
				return
			}
			for _, fault := range p.Plan.Faults {
				if fault.DelayMs > 10 || fault.Skips > 1000 {
					return
				}
			}
			if p.Plan.TimeoutMs > 0 && p.Plan.TimeoutMs < 10000 {
				// A short plan timeout can abandon the attempt and leave
				// its goroutine draining across fuzz iterations.
				return
			}
		}
		s := New(Config{
			Registry: []experiments.Experiment{fakeExp("t01", noop)},
			Obs:      obs.New(),
		})
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/run/t01", bytes.NewReader(data))
		s.Handler().ServeHTTP(rec, req)
		switch {
		case rec.Code == 200:
			var res experiments.Result
			if jerr := json.Unmarshal(rec.Body.Bytes(), &res); jerr != nil {
				t.Fatalf("200 body is not a Result document: %v", jerr)
			}
			if res.ID != "t01" {
				t.Fatalf("200 body for wrong experiment: %q", res.ID)
			}
		case rec.Code == 400 || rec.Code == 500:
			var eb errorBody
			if jerr := json.Unmarshal(rec.Body.Bytes(), &eb); jerr != nil {
				t.Fatalf("status %d body is not an error envelope: %v\n%s", rec.Code, jerr, rec.Body.String())
			}
			if eb.Error.Code == "" || eb.Error.Message == "" {
				t.Fatalf("status %d envelope missing code/message: %s", rec.Code, rec.Body.String())
			}
			if !strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
				t.Fatalf("error response Content-Type %q", rec.Header().Get("Content-Type"))
			}
		default:
			t.Fatalf("unexpected status %d for body %q", rec.Code, data)
		}
	})
}
