package server

import (
	"net/http"
	"testing"
)

// TestChaosArmDisarm pins the /v1/chaos wire contract: unarmed by
// default, armed by POSTing a fault plan, reported by GET, cleared by
// POSTing an empty body, with the armed gauge tracking.
func TestChaosArmDisarm(t *testing.T) {
	_, ts, o := newTestServer(t, Config{})

	code, _, body := get(t, ts.URL+"/v1/chaos")
	if code != 200 || body != "{\n  \"armed\": false\n}\n" {
		t.Fatalf("initial GET /v1/chaos = %d %q", code, body)
	}

	plan := `{"name":"stall","retries":1,"faults":[{"experiment":"*","seam":"body","kind":"delay","delayMs":1}]}`
	code, _, body = post(t, ts.URL+"/v1/chaos", plan)
	if code != 200 {
		t.Fatalf("arm = %d: %s", code, body)
	}
	if got := o.Gauge("server.chaos.armed").Value(); got != 1 {
		t.Fatalf("server.chaos.armed = %v, want 1", got)
	}
	code, _, body = get(t, ts.URL+"/v1/chaos")
	if code != 200 || body != "{\n  \"armed\": true,\n  \"name\": \"stall\",\n  \"faults\": 1\n}\n" {
		t.Fatalf("armed GET /v1/chaos = %d %q", code, body)
	}

	code, _, body = post(t, ts.URL+"/v1/chaos", "")
	if code != 200 {
		t.Fatalf("disarm = %d: %s", code, body)
	}
	if got := o.Gauge("server.chaos.armed").Value(); got != 0 {
		t.Fatalf("server.chaos.armed after disarm = %v, want 0", got)
	}
	if updates := o.Counter("server.chaos.updates").Value(); updates != 2 {
		t.Fatalf("server.chaos.updates = %d, want 2", updates)
	}
}

// TestChaosRejectsBadPlans: malformed plans and rng faults (silent
// corruption under a clean cache key) must not arm.
func TestChaosRejectsBadPlans(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"malformed": `{"faults":[{"kind":"nope"}]}`,
		"rng":       `{"faults":[{"experiment":"*","kind":"rng","skips":3}]}`,
		"unknown":   `{"surprise":true}`,
	} {
		code, _, resp := post(t, ts.URL+"/v1/chaos", body)
		if code != 400 {
			t.Errorf("%s plan armed with status %d: %s", name, code, resp)
		}
		if eb := decodeErrorBody(t, resp); eb.Error.Code != "bad_plan" {
			t.Errorf("%s plan error code %q, want bad_plan", name, eb.Error.Code)
		}
	}
	if s.Chaos() != nil {
		t.Fatal("a rejected plan must leave the seam unarmed")
	}
}

// TestChaosDisturbsComputedRuns is the seam's core behaviour: with an
// error-then-recover plan armed, a plain request (no plan of its own)
// degrades and recovers — 200 with the annotation in the body and the
// attempt count in the header — and the degraded result is NOT stored,
// so the cache never serves chaos-tainted bytes under the clean key.
func TestChaosDisturbsComputedRuns(t *testing.T) {
	_, ts, o := newTestServer(t, Config{})
	plan := `{"retries":1,"faults":[{"experiment":"*","seam":"body","kind":"error","attempt":1}]}`
	if code, _, body := post(t, ts.URL+"/v1/chaos", plan); code != 200 {
		t.Fatalf("arm = %d: %s", code, body)
	}

	code, hdr, body := post(t, ts.URL+"/v1/run/t01", `{"seed":7}`)
	if code != 200 {
		t.Fatalf("chaos run = %d, want 200 (degraded but recovered): %s", code, body)
	}
	if got := hdr.Get(statusHeader); got != "ok (degraded, 2 attempts)" {
		t.Fatalf("status %q, want ok (degraded, 2 attempts)", got)
	}
	if stores := o.Metrics.Counter("rescache.stores").Value(); stores != 0 {
		t.Fatalf("rescache.stores = %d, want 0 (degraded results are never stored)", stores)
	}
	if strikes := o.Metrics.Counter("faultinject.strikes").Value(); strikes != 1 {
		t.Fatalf("faultinject.strikes = %d, want 1", strikes)
	}

	// Disarm; the same request now computes clean and stores.
	post(t, ts.URL+"/v1/chaos", "null")
	code, hdr, _ = post(t, ts.URL+"/v1/run/t01", `{"seed":7}`)
	if code != 200 || hdr.Get(statusHeader) != "ok" {
		t.Fatalf("post-chaos run = %d %q, want 200 ok", code, hdr.Get(statusHeader))
	}
	if stores := o.Metrics.Counter("rescache.stores").Value(); stores != 1 {
		t.Fatalf("rescache.stores = %d, want 1 after disarm", stores)
	}
}

// TestChaosLeavesCacheHitsAlone: an entry cached before the strike
// keeps serving while an unrecoverable plan is armed — cached reads do
// not compute, so there is nothing to strike; this is the tiered
// cache's contribution to riding out a disturbance.
func TestChaosLeavesCacheHitsAlone(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	if code, _, _ := post(t, ts.URL+"/v1/run/t01", `{"seed":9}`); code != 200 {
		t.Fatal("priming run failed")
	}
	// Error on every attempt, no retries: any computation now fails.
	plan := `{"faults":[{"experiment":"*","seam":"body","kind":"error"}]}`
	if code, _, body := post(t, ts.URL+"/v1/chaos", plan); code != 200 {
		t.Fatalf("arm = %d: %s", code, body)
	}

	code, hdr, _ := post(t, ts.URL+"/v1/run/t01", `{"seed":9}`)
	if code != 200 || hdr.Get(statusHeader) != "ok (cached fs)" {
		t.Fatalf("cached run under chaos = %d %q, want 200 ok (cached fs)", code, hdr.Get(statusHeader))
	}

	// An uncached seed under the same plan genuinely fails: 500 with the
	// structured envelope — the disturbance is real, only the cache and
	// recovery machinery soften it.
	code, _, body := post(t, ts.URL+"/v1/run/t01", `{"seed":10}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("uncached run under unrecoverable chaos = %d, want 500: %s", code, body)
	}
	if eb := decodeErrorBody(t, body); eb.Error.Code != "experiment_failed" {
		t.Fatalf("error code %q, want experiment_failed", eb.Error.Code)
	}
}

// TestChaosRequestPlanWins: a request carrying its own fault plan is
// exempt from ambient chaos — the client asked for a specific faulted
// run, keyed honestly under that plan's hash.
func TestChaosRequestPlanWins(t *testing.T) {
	_, ts, o := newTestServer(t, Config{})
	// Ambient chaos would fail every attempt...
	chaos := `{"faults":[{"experiment":"*","seam":"body","kind":"error"}]}`
	if code, _, body := post(t, ts.URL+"/v1/chaos", chaos); code != 200 {
		t.Fatalf("arm = %d: %s", code, body)
	}
	// ...but the request's own (benign) plan takes precedence.
	code, hdr, body := post(t, ts.URL+"/v1/run/t01",
		`{"seed":3,"plan":{"retries":0,"faults":[]}}`)
	if code != 200 || hdr.Get(statusHeader) != "ok" {
		t.Fatalf("own-plan run under chaos = %d %q: %s", code, hdr.Get(statusHeader), body)
	}
	if strikes := o.Metrics.Counter("faultinject.strikes").Value(); strikes != 0 {
		t.Fatalf("faultinject.strikes = %d, want 0 (chaos must not touch own-plan runs)", strikes)
	}
}
