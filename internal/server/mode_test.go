package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"resilience/internal/cluster"
	"resilience/internal/experiments"
	"resilience/internal/obs"
	"resilience/internal/runner"
)

// TestInflightGaugeExcludesScrapes is the regression test for the
// inflight-counting bug: the gauge used to move for *every* request, so
// a /metrics scrape observed itself as in-flight work — the pre-fix
// gauge value inside a scrape is 1, and the SLO hung-after-drain check
// (plus the adapt Monitor) read that phantom work as a hung server.
func TestInflightGaugeExcludesScrapes(t *testing.T) {
	_, ts, o := newTestServer(t, Config{})
	_, _, body := get(t, ts.URL+"/metrics")
	var doc struct {
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("metrics document: %v", err)
	}
	if got := doc.Gauges["server.inflight"]; got != 0 {
		t.Fatalf("a /metrics scrape reported server.inflight = %v; scrapes must not count as work", got)
	}
	// Probes must not move it either.
	get(t, ts.URL+"/healthz")
	get(t, ts.URL+"/readyz")
	if got := o.Gauge("server.inflight").Value(); got != 0 {
		t.Fatalf("server.inflight = %v after probes, want 0", got)
	}
	// Real work still counts: a gated run holds the gauge at 1.
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	gate := fakeExp("tgate", func(rec *experiments.Recorder, cfg experiments.Config) error {
		rec.Notef("gated")
		started <- struct{}{}
		<-release
		return nil
	})
	s2, ts2, o2 := newTestServer(t, Config{Registry: []experiments.Experiment{gate}})
	go func() {
		// Raw client: test helpers may not Fatal off the test goroutine.
		resp, err := http.Post(ts2.URL+"/v1/run/tgate", "application/json", strings.NewReader("{}"))
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain and move on
			resp.Body.Close()
		}
	}()
	<-started
	if got := o2.Gauge("server.inflight").Value(); got != 1 {
		t.Fatalf("server.inflight = %v during a run, want 1", got)
	}
	close(release)
	waitGaugeZero(t, o2, "server.inflight")
	if s2.Mode() != ModeNormal {
		t.Fatalf("mode drifted to %v", s2.Mode())
	}
}

func waitGaugeZero(t *testing.T, o *obs.Observer, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if o.Gauge(name).Value() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s never drained to 0 (at %v)", name, o.Gauge(name).Value())
}

// TestNilCacheRingNode is the regression test for the coordinator
// nil-cache path: Config.Cache is documented as "nil disables caching",
// and a ring-configured node must serve a digest it does not own by
// skipping the cache read-through (nothing to read) and proxying — or,
// with the owner dead, computing locally — without ever dereferencing
// the absent cache. The request must succeed end to end.
func TestNilCacheRingNode(t *testing.T) {
	self := "http://127.0.0.1:1"
	dead := "http://127.0.0.1:9" // no listener: every proxy attempt fails
	ring := cluster.New([]string{self, dead}, 0)
	s := New(Config{
		Registry: []experiments.Experiment{fakeExp("t01", noop)},
		Obs:      obs.New(),
		Cache:    nil, // the documented-legal configuration under test
		Ring:     ring,
		Self:     self,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Find a seed whose digest the dead peer owns, so the remote-owner
	// branch (the pre-fix panic site) runs.
	e := s.byID["t01"]
	for seed := uint64(0); seed < 64; seed++ {
		digest := runner.CacheKey(s.options(runParams{Seed: seed}), e).Digest()
		if owner, remote := s.owner(digest); remote && owner == dead {
			code, _, body := post(t, ts.URL+"/v1/run/t01", fmt.Sprintf(`{"seed":%d}`, seed))
			if code != 200 {
				t.Fatalf("nil-cache ring node: status %d, body %s", code, body)
			}
			return
		}
	}
	t.Fatal("no seed in range hashed to the dead peer")
}

// TestSuiteRejectsDuplicateIDs bounds the suite fan-out: one goroutine
// is spawned per requested id *before* coalescing saves the compute, so
// a request repeating an id thousands of times was a memory-
// amplification lever. Duplicates are now a 400.
func TestSuiteRejectsDuplicateIDs(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	code, _, body := post(t, ts.URL+"/v1/suite", `{"ids":["t01","t01"]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("duplicate ids: status %d, want 400 (body %s)", code, body)
	}
	eb := decodeErrorBody(t, body)
	if eb.Error.Code != "bad_request" || !strings.Contains(eb.Error.Message, "duplicate id") {
		t.Fatalf("error = %+v", eb.Error)
	}
	// The amplified shape: thousands of repeats must be rejected, fast.
	ids := make([]string, 4096)
	for i := range ids {
		ids[i] = "t01"
	}
	doc, _ := json.Marshal(map[string]any{"ids": ids})
	if code, _, _ := post(t, ts.URL+"/v1/suite", string(doc)); code != http.StatusBadRequest {
		t.Fatalf("amplified duplicate ids: status %d, want 400", code)
	}
	// Distinct ids still work.
	if code, _, _ := post(t, ts.URL+"/v1/suite", `{"ids":["t01","t02"]}`); code != 200 {
		t.Fatalf("distinct ids: status %d, want 200", code)
	}
}

// TestModeHeaderAndEndpoint: every run response names its mode; the
// /v1/mode endpoints report and force modes; /readyz includes the mode
// line.
func TestModeHeaderAndEndpoint(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	if _, hdr, _ := post(t, ts.URL+"/v1/run/t01", ""); hdr.Get(modeHeader) != "normal" {
		t.Fatalf("mode header = %q, want normal", hdr.Get(modeHeader))
	}
	code, _, body := get(t, ts.URL+"/v1/mode")
	if code != 200 || !strings.Contains(body, `"mode": "normal"`) {
		t.Fatalf("GET /v1/mode = %d %s", code, body)
	}

	code, _, body = post(t, ts.URL+"/v1/mode", `{"mode":"pressured"}`)
	if code != 200 || !strings.Contains(body, `"mode": "pressured"`) {
		t.Fatalf("POST /v1/mode = %d %s", code, body)
	}
	if s.Mode() != ModePressured {
		t.Fatalf("mode = %v after force, want pressured", s.Mode())
	}
	if _, _, body := get(t, ts.URL+"/readyz"); !strings.Contains(body, "mode: pressured") {
		t.Fatalf("readyz missing mode line: %q", body)
	}
	if _, hdr, _ := post(t, ts.URL+"/v1/run/t01", ""); hdr.Get(modeHeader) != "pressured" {
		t.Fatalf("mode header = %q, want pressured", hdr.Get(modeHeader))
	}

	// Bad requests.
	if code, _, _ := post(t, ts.URL+"/v1/mode", `{"mode":"panic"}`); code != 400 {
		t.Fatalf("unknown mode: status %d, want 400", code)
	}
	if code, _, _ := post(t, ts.URL+"/v1/mode", `{"bogus":1}`); code != 400 {
		t.Fatalf("unknown field: status %d, want 400", code)
	}

	// A registered force hook takes over (the adapt controller's seat).
	var forced Mode = -1
	s2, ts2, _ := newTestServer(t, Config{})
	s2.SetForceMode(func(m Mode) { forced = m; s2.SetMode(m) })
	post(t, ts2.URL+"/v1/mode", `{"mode":"emergency"}`)
	if forced != ModeEmergency || s2.Mode() != ModeEmergency {
		t.Fatalf("force hook: forced=%v mode=%v, want emergency/emergency", forced, s2.Mode())
	}
	if _, _, body := get(t, ts2.URL+"/v1/mode"); !strings.Contains(body, `"adaptive": true`) {
		t.Fatalf("mode status should report adaptive: %s", body)
	}
}

// TestPressuredForcesQuick: in pressured mode a full-size request is
// served the quick body — byte-identical to an explicit quick:true run
// in normal mode, so bodies stay deterministic per mode — and the
// stored cache entry is the quick entry.
func TestPressuredForcesQuick(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	_, _, wantBody := post(t, ts.URL+"/v1/run/t01", `{"seed":7,"quick":true}`)

	s2, ts2, _ := newTestServer(t, Config{})
	s2.SetMode(ModePressured)
	code, hdr, body := post(t, ts2.URL+"/v1/run/t01", `{"seed":7}`)
	if code != 200 {
		t.Fatalf("pressured run: status %d", code)
	}
	if body != wantBody {
		t.Fatalf("pressured full-size body != normal quick body:\n%s\nvs\n%s", body, wantBody)
	}
	if hdr.Get(modeHeader) != "pressured" {
		t.Fatalf("mode header = %q", hdr.Get(modeHeader))
	}

	// Back in normal mode the same request computes the full-size run:
	// the quick entry must not masquerade as the full result.
	s2.SetMode(ModeNormal)
	_, hdr, _ = post(t, ts2.URL+"/v1/run/t01", `{"seed":7}`)
	if status := hdr.Get(statusHeader); strings.Contains(status, "cached") {
		t.Fatalf("full-size run after pressured served %q; quick and full must not share a key", status)
	}
}

// TestEmergencyCacheOnly: emergency serves hits (without taking a
// worker slot) and refuses misses with a structured 503 + Retry-After;
// compute stays suspended.
func TestEmergencyCacheOnly(t *testing.T) {
	s, ts, o := newTestServer(t, Config{})
	// Warm one quick entry (emergency forces quick, so warm quick).
	if code, _, _ := post(t, ts.URL+"/v1/run/t01", `{"seed":7,"quick":true}`); code != 200 {
		t.Fatal("warmup failed")
	}
	s.SetMode(ModeEmergency)

	code, hdr, _ := post(t, ts.URL+"/v1/run/t01", `{"seed":7,"quick":true}`)
	if code != 200 {
		t.Fatalf("emergency cache hit: status %d, want 200", code)
	}
	if status := hdr.Get(statusHeader); !strings.Contains(status, "cached") {
		t.Fatalf("emergency hit status = %q, want cached", status)
	}

	attempts := o.Counter("runner.attempts").Value()
	code, hdr, body := post(t, ts.URL+"/v1/run/t01", `{"seed":8}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("emergency miss: status %d, want 503 (body %s)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("emergency miss must carry Retry-After")
	}
	if eb := decodeErrorBody(t, body); eb.Error.Code != "cache_only" {
		t.Fatalf("emergency miss code = %q, want cache_only", eb.Error.Code)
	}
	if got := o.Counter("runner.attempts").Value(); got != attempts {
		t.Fatalf("emergency miss ran compute (attempts %d -> %d)", attempts, got)
	}

	// Recovery: the same miss computes again in normal mode.
	s.SetMode(ModeNormal)
	if code, _, _ := post(t, ts.URL+"/v1/run/t01", `{"seed":8}`); code != 200 {
		t.Fatalf("post-recovery run: status %d, want 200", code)
	}
}

// TestPressuredShedsAtQueueBound: with a 1-slot pool the pressured
// queue bound is 2 — the third concurrent distinct request sheds with
// a 429 + Retry-After and the server.shed counter moves.
func TestPressuredShedsAtQueueBound(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var releaseOnce sync.Once
	// Every gated run blocks until released, jamming the 1-slot pool.
	blockAll := fakeExp("tgate", func(rec *experiments.Recorder, cfg experiments.Config) error {
		rec.Notef("gated")
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return nil
	})
	s, ts, o := newTestServer(t, Config{
		Registry:    []experiments.Experiment{blockAll, fakeExp("twarm", noop)},
		MaxInflight: 1,
	})
	// Registered after newTestServer so it runs before ts.Close (LIFO):
	// the gated handlers must unblock or Close waits on them forever.
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	// Warm a cacheable entry before the pool jams.
	post(t, ts.URL+"/v1/run/twarm", `{"seed":1,"quick":true}`)

	s.SetMode(ModePressured)
	// Occupy the slot, then fill the queue (bound = 2×1 = 2) with
	// distinct seeds so nothing coalesces.
	var wg sync.WaitGroup
	codes := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, _ := post(t, ts.URL+"/v1/run/tgate", fmt.Sprintf(`{"seed":%d}`, 10+i))
			codes[i] = code
		}(i)
		if i == 0 {
			<-started // the leader holds the slot before the queue fills
		} else {
			waitQueued(t, s, i)
		}
	}
	// Queue is at its bound: the next distinct request must shed, now.
	code, hdr, body := post(t, ts.URL+"/v1/run/tgate", `{"seed":99}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-bound request: status %d, want 429 (body %s)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response must carry Retry-After")
	}
	if eb := decodeErrorBody(t, body); eb.Error.Code != "shed" {
		t.Fatalf("shed code = %q", eb.Error.Code)
	}
	if o.Counter("server.shed").Value() == 0 {
		t.Fatal("server.shed did not count the shed")
	}
	// Pressured mode sheds uniformly: even a cache-warm request needs a
	// pool slot (the runner consults the cache after admission), so it
	// sheds too. Only emergency CacheOnly serves hits without a slot —
	// see TestEmergencyCacheOnly.
	if code, _, _ := post(t, ts.URL+"/v1/run/twarm", `{"seed":1,"quick":true}`); code != http.StatusTooManyRequests {
		t.Fatalf("warm request while jammed: status %d, want 429", code)
	}
	releaseOnce.Do(func() { close(release) })
	wg.Wait()
	for i, code := range codes {
		if code != 200 {
			t.Fatalf("queued request %d: status %d, want 200", i, code)
		}
	}
}

func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.pool.Queued() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pool queue never reached %d (at %d)", n, s.pool.Queued())
}

// TestSetModeAppliesPoolPolicy: mode changes resize the pool and trim
// an over-bound queue immediately (tail first), and the gauges track.
func TestSetModeAppliesPoolPolicy(t *testing.T) {
	o := obs.New()
	s := New(Config{Registry: []experiments.Experiment{fakeExp("t01", noop)}, Obs: o, MaxInflight: 4})
	if got := o.Gauge("server.pool.size").Value(); got != 4 {
		t.Fatalf("pool.size = %v, want 4", got)
	}
	s.SetMode(ModeEmergency)
	if got := s.pool.Size(); got != 2 {
		t.Fatalf("emergency pool size = %d, want base/2 = 2", got)
	}
	if got := o.Gauge("server.mode").Value(); got != float64(ModeEmergency) {
		t.Fatalf("server.mode gauge = %v, want %v", got, float64(ModeEmergency))
	}
	s.SetMode(ModeNormal)
	if got := s.pool.Size(); got != 4 {
		t.Fatalf("restored pool size = %d, want 4", got)
	}
	if got := o.Counter("server.mode.switches").Value(); got != 2 {
		t.Fatalf("mode.switches = %d, want 2", got)
	}
	// Same-mode set is a no-op.
	s.SetMode(ModeNormal)
	if got := o.Counter("server.mode.switches").Value(); got != 2 {
		t.Fatalf("no-op SetMode moved the counter to %d", got)
	}
}

// TestWorkPool exercises the pool directly: FIFO grants, admission
// bounds, tail-first trims on SetPolicy, and context cancellation.
func TestWorkPool(t *testing.T) {
	o := obs.New()
	p := newWorkPool(1, o)
	ctx := context.Background()
	if err := p.Acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Two FIFO waiters.
	order := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := p.Acquire(ctx); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			p.Release()
		}(i)
		deadline := time.Now().Add(5 * time.Second)
		for p.Queued() < i {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	p.Release()
	wg.Wait()
	if a, b := <-order, <-order; a != 1 || b != 2 {
		t.Fatalf("grant order = %d,%d, want FIFO 1,2", a, b)
	}

	// Admission bound: maxQueue 0 sheds instantly once the slot is held.
	p.SetPolicy(1, 0)
	if err := p.Acquire(ctx); err != nil {
		t.Fatalf("free slot: %v", err)
	}
	if err := p.Acquire(ctx); err != errShed {
		t.Fatalf("over-bound acquire = %v, want errShed", err)
	}

	// Tightening the bound sheds queued waiters from the tail.
	p.SetPolicy(1, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.Acquire(ctx)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Queued() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	p.SetPolicy(1, 1) // trims exactly one — the newest
	deadlineShed := time.Now().Add(5 * time.Second)
	for p.Queued() != 1 {
		if time.Now().After(deadlineShed) {
			t.Fatalf("queue = %d after trim, want 1", p.Queued())
		}
		time.Sleep(time.Millisecond)
	}
	p.Release() // grants the survivor
	wg.Wait()
	shed := 0
	for _, err := range errs {
		if err == errShed {
			shed++
		} else if err != nil {
			t.Fatalf("unexpected waiter error: %v", err)
		}
	}
	if shed != 1 {
		t.Fatalf("%d waiters shed, want exactly 1", shed)
	}
	p.Release()

	// Context cancellation while queued.
	if err := p.Acquire(ctx); err != nil {
		t.Fatalf("reacquire: %v", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- p.Acquire(cctx) }()
	deadline = time.Now().Add(5 * time.Second)
	for p.Queued() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("cancel waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("canceled acquire = %v, want context.Canceled", err)
	}
	if p.Queued() != 0 {
		t.Fatalf("canceled waiter left in queue (%d)", p.Queued())
	}

	// Growth grants immediately.
	done2 := make(chan error, 1)
	go func() { done2 <- p.Acquire(ctx) }()
	deadline = time.Now().Add(5 * time.Second)
	for p.Queued() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("growth waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	p.SetPolicy(2, -1)
	if err := <-done2; err != nil {
		t.Fatalf("growth grant: %v", err)
	}
}

// TestParseMode round-trips every mode and rejects garbage.
func TestParseMode(t *testing.T) {
	for _, m := range []Mode{ModeNormal, ModePressured, ModeEmergency} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("chaos"); err == nil {
		t.Fatal("ParseMode must reject unknown names")
	}
	if got := Mode(42).String(); got != "mode(42)" {
		t.Fatalf("unknown mode String = %q", got)
	}
}
