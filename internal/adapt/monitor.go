package adapt

import (
	"sync"

	"resilience/internal/obs"
)

// Sample is one Monitor reading of the serving system.
type Sample struct {
	// Inflight is the number of run/suite requests currently being
	// served (the server.inflight gauge — scrapes and probes excluded).
	Inflight float64
	// Queued is the worker-pool wait-queue depth (server.queued).
	Queued float64
	// PoolSize is the current worker-pool size (server.pool.size).
	PoolSize float64
	// LatencyP99 is the p99 of request latency in seconds over the
	// window since the previous sample (0 when no requests landed).
	LatencyP99 float64
	// QueueWaitP99 is the windowed p99 of time spent waiting for a
	// worker slot, in seconds.
	QueueWaitP99 float64
	// HitRatio is cache hits / (hits + misses) over the window, or -1
	// when the window saw no lookups.
	HitRatio float64
}

// Quality collapses the sample into the §3.4.6 health scalar the mode
// ladder observes, on a 0–100 scale: the share of demand the pool can
// start immediately, 100·size/(size+queued). An idle or keeping-up
// server reads 100; a queue as deep as the pool reads 50; 2× the pool
// reads ~33; 4× reads 20 — the emergency band. Queue depth (not
// latency) is the chosen signal because it is what the server can act
// on *before* latency is already damaged, and because it is
// policy-coupled: the pressured queue bound directly floors it.
func (s Sample) Quality() float64 {
	size := s.PoolSize
	if size < 1 {
		size = 1
	}
	return 100 * size / (size + s.Queued)
}

// Monitor produces one Sample per controller tick.
type Monitor interface {
	Sample() Sample
}

// RegistryMonitor samples the live obs registry a Server writes its
// instruments into. Latency quantiles are read over the window since
// the previous sample via obs.TimingCursor — a control loop needs "how
// slow are we *now*", not a history-dominated cumulative p99 — and the
// cache hit ratio is likewise a per-window delta of the rescache
// counters.
type RegistryMonitor struct {
	o *obs.Observer

	mu      sync.Mutex
	latency obs.TimingCursor
	wait    obs.TimingCursor
	hits    int64
	misses  int64
}

// NewRegistryMonitor builds a monitor over o with its windows anchored
// at the current instrument state.
func NewRegistryMonitor(o *obs.Observer) *RegistryMonitor {
	return &RegistryMonitor{
		o:       o,
		latency: o.Timing("server.latency").Cursor(),
		wait:    o.Timing("server.queue.wait").Cursor(),
		hits:    o.Counter("rescache.hits").Value(),
		misses:  o.Counter("rescache.misses").Value(),
	}
}

// Sample reads the registry and advances the windows.
func (m *RegistryMonitor) Sample() Sample {
	s := Sample{
		Inflight: m.o.Gauge("server.inflight").Value(),
		Queued:   m.o.Gauge("server.queued").Value(),
		PoolSize: m.o.Gauge("server.pool.size").Value(),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	lat := m.o.Timing("server.latency")
	s.LatencyP99, _ = lat.QuantileSince(m.latency, 0.99)
	m.latency = lat.Cursor()
	wait := m.o.Timing("server.queue.wait")
	s.QueueWaitP99, _ = wait.QuantileSince(m.wait, 0.99)
	m.wait = wait.Cursor()

	hits := m.o.Counter("rescache.hits").Value()
	misses := m.o.Counter("rescache.misses").Value()
	dh, dm := hits-m.hits, misses-m.misses
	m.hits, m.misses = hits, misses
	if dh+dm > 0 {
		s.HitRatio = float64(dh) / float64(dh+dm)
	} else {
		s.HitRatio = -1
	}
	return s
}
