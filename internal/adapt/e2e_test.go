// End-to-end: a real daemon under its MAPE-K controller, overloaded by
// a real loadgen burst — the in-process version of the CI overload
// bench. The acceptance shape is "degraded, not collapsed": the
// controller must move the server into pressured mode, the over-bound
// traffic must shed with structured 429s (classified "shed" by the
// bench, which requires the Retry-After header), and the mode must
// recover to normal once the burst ends.
package adapt_test

import (
	"context"
	"testing"
	"time"

	"resilience/internal/adapt"
	"resilience/internal/experiments"
	"resilience/internal/loadgen"
	"resilience/internal/server"
	"resilience/internal/servertest"
)

func slowExp(id string, delay time.Duration) experiments.Experiment {
	return experiments.Experiment{
		ID: id, Title: "slow fake " + id, Source: "test",
		Modules: []string{"test"}, SupportsQuick: true,
		Run: func(rec *experiments.Recorder, cfg experiments.Config) error {
			time.Sleep(delay)
			rec.Notef("seed %d", cfg.Seed)
			return nil
		},
	}
}

// fastTuning reacts within a few 5ms ticks instead of the production
// seconds: one bad tick enters pressured, two clean ticks recover.
// Emergency keeps the stock thresholds — the pressured queue bound
// floors quality above the emergency band, so the deep rung must stay
// quiet in this test.
func fastTuning() adapt.Tuning {
	return adapt.Tuning{
		Smooth:        1,
		PressureAfter: 1,
		ExitAfter:     2,
	}
}

func TestAdaptiveServerDegradesNotCollapses(t *testing.T) {
	n := servertest.Boot(t,
		servertest.WithRegistry(slowExp("a01", 20*time.Millisecond)),
		servertest.WithMaxInflight(1),
		servertest.WithAdapt(5*time.Millisecond, fastTuning()),
	)

	// 8 closed-loop clients against a 1-slot pool with unique seeds:
	// nothing coalesces, nothing repeats, offered load is 8× capacity.
	r, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:   n.URL,
		Clients:  8,
		Duration: 600 * time.Millisecond,
		Seed:     42,
		Mix:      loadgen.Mix{IDs: []string{"a01"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The burst must have been shed, not errored or hung: every refusal
	// was a 429 carrying Retry-After (that is what classifies as "shed").
	if r.Statuses["shed"] == 0 {
		t.Fatalf("no requests shed under 8× overload: %v", r.Statuses)
	}
	if r.Errors != 0 {
		t.Fatalf("adaptive server collapsed: %d errors (%v)", r.Errors, r.Statuses)
	}
	if !r.Verdict.Pass {
		t.Fatalf("verdict %+v, want pass", r.Verdict)
	}
	// Client-observed sheds reconcile with the server's own ledger.
	if got := r.MetricsDelta["server.shed"]; got != r.Statuses["shed"] {
		t.Fatalf("server.shed moved by %d, clients observed %d sheds", got, r.Statuses["shed"])
	}
	// The controller actually switched modes (≥1: the pressured entry;
	// recovery may land before or after the post-run scrape).
	if got := r.MetricsDelta["server.mode.switches"]; got < 1 {
		t.Fatalf("server.mode.switches moved by %d, want ≥ 1\ndeltas: %v", got, r.MetricsDelta)
	}
	// The pressured queue bound floors quality above the emergency band:
	// the deep rung must never have fired.
	if mode := server.Mode(n.Obs.Gauge("server.mode").Value()); mode == server.ModeEmergency {
		t.Fatal("server ended the burst in emergency mode")
	}

	// Recovery: with the load gone the controller must walk back to
	// normal within a few ticks.
	deadline := time.Now().Add(5 * time.Second)
	for n.Server.Mode() != server.ModeNormal {
		if time.Now().After(deadline) {
			t.Fatalf("mode stuck at %s after the burst ended", n.Server.Mode())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n.Adapt.Cycles() == 0 {
		t.Fatal("controller never ticked")
	}
}

// TestAdaptForceRoutesThroughController: with -adapt on, an operator
// POST /v1/mode goes through Controller.Force, so the ladder realigns
// and the loop un-forces the mode once the (healthy) signal allows.
func TestAdaptForceRoutesThroughController(t *testing.T) {
	n := servertest.Boot(t,
		servertest.WithRegistry(slowExp("a01", time.Millisecond)),
		servertest.WithAdapt(5*time.Millisecond, fastTuning()),
	)

	n.Adapt.Force(server.ModeEmergency)
	if got := n.Server.Mode(); got != server.ModeEmergency {
		t.Fatalf("forced mode = %s, want emergency", got)
	}
	// The server is idle, so the quality signal reads healthy and the
	// loop de-escalates rung by rung back to normal on its own.
	deadline := time.Now().Add(5 * time.Second)
	for n.Server.Mode() != server.ModeNormal {
		if time.Now().After(deadline) {
			t.Fatalf("loop never recovered a forced emergency (mode %s)", n.Server.Mode())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
