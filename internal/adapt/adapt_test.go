package adapt

import (
	"math"
	"strings"
	"testing"
	"time"

	"resilience/internal/obs"
	"resilience/internal/server"
)

// scriptMonitor replays a fixed sample script (repeating the last
// sample once exhausted) — a synthetic Knowledge history.
type scriptMonitor struct {
	samples []Sample
	i       int
}

func (m *scriptMonitor) Sample() Sample {
	if m.i < len(m.samples) {
		s := m.samples[m.i]
		m.i++
		return s
	}
	return m.samples[len(m.samples)-1]
}

// fakeTarget records every actuation.
type fakeTarget struct {
	mode  server.Mode
	calls []server.Mode
}

func (t *fakeTarget) Mode() server.Mode { return t.mode }
func (t *fakeTarget) SetMode(m server.Mode) {
	t.mode = m
	t.calls = append(t.calls, m)
}

// q builds a sample whose Quality() is exactly the given value, via a
// unit pool and the matching queue depth.
func q(quality float64) Sample {
	return Sample{PoolSize: 1, Queued: 100/quality - 1}
}

// testTuning: no smoothing, short streaks — transitions land on exact,
// assertable ticks.
func testTuning() Tuning {
	return Tuning{
		Smooth:        1,
		PressureEnter: 70, PressureExit: 90, PressureAfter: 2,
		EmergencyEnter: 20, EmergencyExit: 45, EmergencyAfter: 3,
		ExitAfter: 2,
	}
}

func newTestController(t *testing.T, mon Monitor, tgt Target, tun Tuning) *Controller {
	t.Helper()
	c, err := New(Config{Target: tgt, Obs: obs.New(), Monitor: mon, Tuning: tun})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// TestControllerModeTransitions drives synthetic quality histories
// through full MAPE-K cycles and asserts the resulting actuation
// sequence — the tentpole's core contract.
func TestControllerModeTransitions(t *testing.T) {
	cases := []struct {
		name    string
		history []float64
		want    []server.Mode // actuations, in order
		final   server.Mode
	}{
		{
			name:    "healthy stays normal",
			history: []float64{100, 100, 95, 100, 100},
			want:    nil,
			final:   server.ModeNormal,
		},
		{
			name: "one bad tick is not a streak",
			// PressureAfter is 2: a single dip must not actuate.
			history: []float64{100, 50, 100, 100},
			want:    nil,
			final:   server.ModeNormal,
		},
		{
			name:    "sustained pressure escalates",
			history: []float64{100, 50, 50, 50},
			want:    []server.Mode{server.ModePressured},
			final:   server.ModePressured,
		},
		{
			name: "collapse walks the whole ladder",
			// <20 from tick 1: pressured fires at tick 2 (streak 2),
			// emergency at tick 3 (streak 3).
			history: []float64{100, 10, 10, 10, 10},
			want:    []server.Mode{server.ModePressured, server.ModeEmergency},
			final:   server.ModeEmergency,
		},
		{
			name: "recovery unwinds with hysteresis",
			// In: 2 low ticks. Out: signal ≥ both exits (95) for
			// ExitAfter=2 ticks releases pressured.
			history: []float64{50, 50, 95, 95, 95},
			want:    []server.Mode{server.ModePressured, server.ModeNormal},
			final:   server.ModeNormal,
		},
		{
			name: "partial recovery holds the mode",
			// 80 is above PressureEnter but below PressureExit=90:
			// inside the hysteresis band, pressured holds.
			history: []float64{50, 50, 80, 80, 80, 80},
			want:    []server.Mode{server.ModePressured},
			final:   server.ModePressured,
		},
		{
			name: "emergency de-escalates to pressured first",
			// Deep collapse, then a mid recovery (50): above the
			// emergency exit (45) but below the pressured exit (90) —
			// the ladder steps down one rung and holds.
			history: []float64{10, 10, 10, 50, 50, 50, 50},
			want:    []server.Mode{server.ModePressured, server.ModeEmergency, server.ModePressured},
			final:   server.ModePressured,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			samples := make([]Sample, len(tc.history))
			for i, quality := range tc.history {
				samples[i] = q(quality)
			}
			tgt := &fakeTarget{}
			c := newTestController(t, &scriptMonitor{samples: samples}, tgt, testTuning())
			for range tc.history {
				c.Tick()
			}
			if len(tgt.calls) != len(tc.want) {
				t.Fatalf("actuations = %v, want %v", tgt.calls, tc.want)
			}
			for i := range tc.want {
				if tgt.calls[i] != tc.want[i] {
					t.Fatalf("actuations = %v, want %v", tgt.calls, tc.want)
				}
			}
			if tgt.mode != tc.final {
				t.Fatalf("final mode = %v, want %v", tgt.mode, tc.final)
			}
			if c.Cycles() != len(tc.history) {
				t.Fatalf("cycles = %d, want %d", c.Cycles(), len(tc.history))
			}
		})
	}
}

// TestControllerSmoothing: a load oscillating across the threshold
// (55, 75, 55, 75…) never holds a raw 2-tick streak, so an unsmoothed
// controller misses the chronic degradation; the 3-sample mean stays
// below the threshold and escalates.
func TestControllerSmoothing(t *testing.T) {
	samples := make([]Sample, 8)
	for i := range samples {
		if i%2 == 0 {
			samples[i] = q(55)
		} else {
			samples[i] = q(75)
		}
	}
	run := func(smooth int) server.Mode {
		tun := testTuning()
		tun.Smooth = smooth
		tgt := &fakeTarget{}
		c := newTestController(t, &scriptMonitor{samples: samples}, tgt, tun)
		for range samples {
			c.Tick()
		}
		return tgt.mode
	}
	if got := run(1); got != server.ModeNormal {
		t.Fatalf("unsmoothed mode = %v, want normal (streak broken every other tick)", got)
	}
	if got := run(3); got != server.ModePressured {
		t.Fatalf("smoothed mode = %v, want pressured (mean holds below the threshold)", got)
	}
}

// TestControllerKnowledge: every tick lands one observation, with the
// raw signals preserved for post-hoc analysis.
func TestControllerKnowledge(t *testing.T) {
	tgt := &fakeTarget{}
	s := Sample{PoolSize: 2, Queued: 4, Inflight: 2, LatencyP99: 0.120, QueueWaitP99: 0.080, HitRatio: 0.5}
	c := newTestController(t, &scriptMonitor{samples: []Sample{s}}, tgt, testTuning())
	c.Tick()
	obs, ok := c.Knowledge().Latest()
	if !ok {
		t.Fatal("knowledge empty after a tick")
	}
	wantQ := 100 * 2.0 / 6.0
	if math.Abs(obs.Quality-wantQ) > 1e-9 {
		t.Fatalf("quality = %v, want %v", obs.Quality, wantQ)
	}
	if obs.Signals["queued"] != 4 || obs.Signals["latency.p99"] != 0.120 || obs.Signals["cache.hit"] != 0.5 {
		t.Fatalf("signals = %v", obs.Signals)
	}
}

// TestControllerForce: an override actuates immediately and realigns
// the ladder, so the next healthy ticks de-escalate from the forced
// level instead of fighting it.
func TestControllerForce(t *testing.T) {
	tgt := &fakeTarget{}
	c := newTestController(t, &scriptMonitor{samples: []Sample{q(100)}}, tgt, testTuning())
	c.Force(server.ModeEmergency)
	if tgt.mode != server.ModeEmergency {
		t.Fatalf("forced mode = %v, want emergency", tgt.mode)
	}
	// Healthy signal: ExitAfter=2 ticks per rung; emergency exits first
	// (both rungs streak in parallel), then pressured.
	for i := 0; i < 4; i++ {
		c.Tick()
	}
	if tgt.mode != server.ModeNormal {
		t.Fatalf("mode after recovery = %v, want normal", tgt.mode)
	}
}

// TestControllerLog: transitions emit a line naming both modes.
func TestControllerLog(t *testing.T) {
	var buf strings.Builder
	tgt := &fakeTarget{}
	c, err := New(Config{
		Target: tgt, Obs: obs.New(), Tuning: testTuning(), Log: &buf,
		Monitor: &scriptMonitor{samples: []Sample{q(10)}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Tick()
	c.Tick()
	if !strings.Contains(buf.String(), "normal -> pressured") {
		t.Fatalf("log = %q, want a normal -> pressured line", buf.String())
	}
}

// TestControllerStartStop: the wall-clock loop ticks and stops cleanly
// (Stop blocks until the goroutine exits; double Start/Stop are no-ops).
func TestControllerStartStop(t *testing.T) {
	tgt := &fakeTarget{}
	c := newTestController(t, &scriptMonitor{samples: []Sample{q(100)}}, tgt, testTuning())
	c.Start(time.Millisecond)
	c.Start(time.Millisecond) // no-op
	deadline := time.After(2 * time.Second)
	for c.Cycles() < 3 {
		select {
		case <-deadline:
			t.Fatal("loop never ticked")
		case <-time.After(time.Millisecond):
		}
	}
	c.Stop()
	c.Stop() // no-op
	n := c.Cycles()
	time.Sleep(10 * time.Millisecond)
	if c.Cycles() != n {
		t.Fatal("controller ticked after Stop")
	}
}

// TestNewValidation: required fields and broken tunings are rejected.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil Target must be rejected")
	}
	if _, err := New(Config{Target: &fakeTarget{}}); err == nil {
		t.Fatal("nil Obs without a Monitor must be rejected")
	}
	bad := testTuning()
	bad.EmergencyEnter = 80 // does not nest inside the pressure rung
	if _, err := New(Config{Target: &fakeTarget{}, Obs: obs.New(), Tuning: bad}); err == nil {
		t.Fatal("non-nesting thresholds must be rejected")
	}
}

// TestSampleQuality pins the quality curve the tuning defaults are
// calibrated against.
func TestSampleQuality(t *testing.T) {
	cases := []struct {
		size, queued, want float64
	}{
		{4, 0, 100},
		{4, 4, 50},
		{4, 8, 100.0 / 3}, // 2× pool: the pressured floor
		{4, 16, 20},       // 4× pool: the emergency threshold
		{0, 0, 100},       // zero pool clamps to 1
		{0, 9, 10},        // clamped pool still yields a signal
	}
	for _, tc := range cases {
		got := Sample{PoolSize: tc.size, Queued: tc.queued}.Quality()
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quality(size=%v queued=%v) = %v, want %v", tc.size, tc.queued, got, tc.want)
		}
	}
}

// TestRegistryMonitorWindows: the monitor reads gauges live but reads
// timings and cache counters as per-window deltas anchored at the
// previous sample.
func TestRegistryMonitorWindows(t *testing.T) {
	o := obs.New()
	o.Gauge("server.inflight").Set(3)
	o.Gauge("server.queued").Set(5)
	o.Gauge("server.pool.size").Set(4)
	// Pre-monitor history the windows must exclude.
	o.Timing("server.latency").Observe(10.0)
	o.Counter("rescache.hits").Add(100)
	m := NewRegistryMonitor(o)

	// Window 1: fast latencies, all misses.
	for i := 0; i < 100; i++ {
		o.Timing("server.latency").Observe(0.010)
	}
	o.Counter("rescache.misses").Add(10)
	s := m.Sample()
	if s.Inflight != 3 || s.Queued != 5 || s.PoolSize != 4 {
		t.Fatalf("gauges = %+v", s)
	}
	if s.LatencyP99 > 0.02 {
		t.Fatalf("windowed p99 = %v, want ~0.010 (the 10s outlier predates the window)", s.LatencyP99)
	}
	if s.HitRatio != 0 {
		t.Fatalf("hit ratio = %v, want 0 (10 misses, 0 new hits)", s.HitRatio)
	}

	// Window 2: no lookups at all.
	s = m.Sample()
	if s.HitRatio != -1 {
		t.Fatalf("hit ratio = %v, want -1 for an empty window", s.HitRatio)
	}
	if s.LatencyP99 != 0 {
		t.Fatalf("empty-window p99 = %v, want 0", s.LatencyP99)
	}

	// Window 3: all hits.
	o.Counter("rescache.hits").Add(7)
	s = m.Sample()
	if s.HitRatio != 1 {
		t.Fatalf("hit ratio = %v, want 1", s.HitRatio)
	}
}
