// Package adapt closes the paper's MAPE-K autonomic loop (§3.3.2)
// around the serving system itself: the daemon that runs resilience
// experiments now *is* one. Each tick is one Monitor → Analyze → Plan →
// Execute cycle over a shared Knowledge store:
//
//   - Monitor: sample the live obs registry — inflight work, worker-pool
//     queue depth, windowed latency p99, queue-wait p99, cache hit
//     ratio — into a mape.Knowledge history (see monitor.go);
//   - Analyze: collapse the sample into the §3.4.6 quality scalar
//     Q ∈ [0,100], smooth it over the last few observations, and feed
//     it through a modeswitch ladder (two hysteresis Switchers:
//     normal↔pressured, pressured↔emergency);
//   - Plan: map the ladder level to a target server.Mode;
//   - Execute: actuate Target.SetMode, which applies the mode's policy
//     on the live Server — shed with structured 429s, force quick-size
//     runs, bound or suspend the worker pool, serve cache-only.
//
// This converts internal/mape and internal/modeswitch from experiment
// subjects into the daemon's own control plane: the same Knowledge
// bookkeeping and hysteresis semantics, actuating a real worker pool
// instead of a sysmodel capacity graph.
//
// The controller never blocks the request path. It owns no locks the
// handlers take; its actuators are an atomic mode word and the worker
// pool's own mutex.
package adapt

import (
	"fmt"
	"io"
	"sync"
	"time"

	"resilience/internal/mape"
	"resilience/internal/modeswitch"
	"resilience/internal/obs"
	"resilience/internal/server"
)

// Tuning parameterizes the controller: thresholds are on the smoothed
// quality signal Q ∈ [0,100], streaks are in ticks. Zero values take
// the defaults; see DefaultTuning for the rationale.
type Tuning struct {
	// History bounds the Knowledge store (default 512 observations).
	History int
	// Smooth is the moving-average window, in observations, applied to
	// quality before thresholding (default 3; 1 disables smoothing).
	Smooth int
	// PressureEnter / PressureExit bound the normal↔pressured rung
	// (defaults 70 / 90): Q below PressureEnter for PressureAfter
	// consecutive ticks enters pressured; Q at or above PressureExit
	// for ExitAfter ticks leaves it.
	PressureEnter float64
	PressureExit  float64
	PressureAfter int
	// EmergencyEnter / EmergencyExit bound the pressured↔emergency rung
	// (defaults 20 / 45) with EmergencyAfter entry ticks.
	EmergencyEnter float64
	EmergencyExit  float64
	EmergencyAfter int
	// ExitAfter is the de-escalation streak for both rungs (default 8):
	// recovery is deliberately slower than escalation so a borderline
	// load does not flap the mode.
	ExitAfter int
}

// DefaultTuning is the serving daemon's stock controller tuning.
//
// Quality is dominated by relative queue depth (see Sample.Quality):
// an empty queue reads 100, a queue at 2× the pool reads ~33, at 4×
// the pool ~20. The pressured policy bounds the queue at 2× the pool,
// so a pressured-but-coping server floats at Q ≈ 33–100 — above the
// emergency band by construction. Emergency (Q < 20 sustained for
// EmergencyAfter ticks) is reached only when a queue deeper than 4×
// the pool *persists*, i.e. the pressured actuators never got to trim
// it — and EmergencyAfter > PressureAfter guarantees the cheaper rung
// always gets its chance first.
func DefaultTuning() Tuning {
	return Tuning{
		History:        512,
		Smooth:         3,
		PressureEnter:  70,
		PressureExit:   90,
		PressureAfter:  2,
		EmergencyEnter: 20,
		EmergencyExit:  45,
		EmergencyAfter: 6,
		ExitAfter:      8,
	}
}

func (t Tuning) withDefaults() Tuning {
	d := DefaultTuning()
	if t.History <= 0 {
		t.History = d.History
	}
	if t.Smooth <= 0 {
		t.Smooth = d.Smooth
	}
	if t.PressureEnter == 0 {
		t.PressureEnter = d.PressureEnter
	}
	if t.PressureExit == 0 {
		t.PressureExit = d.PressureExit
	}
	if t.PressureAfter <= 0 {
		t.PressureAfter = d.PressureAfter
	}
	if t.EmergencyEnter == 0 {
		t.EmergencyEnter = d.EmergencyEnter
	}
	if t.EmergencyExit == 0 {
		t.EmergencyExit = d.EmergencyExit
	}
	if t.EmergencyAfter <= 0 {
		t.EmergencyAfter = d.EmergencyAfter
	}
	if t.ExitAfter <= 0 {
		t.ExitAfter = d.ExitAfter
	}
	return t
}

// Target is the actuator surface the controller drives — implemented by
// *server.Server, narrowed to an interface so tests plug in fakes.
type Target interface {
	Mode() server.Mode
	SetMode(server.Mode)
}

// Config assembles a Controller.
type Config struct {
	// Target is the server to actuate. Required.
	Target Target
	// Obs is the registry the Monitor samples and where the controller
	// exports its own adapt.* instruments. Required unless a custom
	// Monitor is supplied (then it may be nil; adapt.* export is
	// skipped on nil).
	Obs *obs.Observer
	// Monitor overrides the registry-backed monitor (tests, synthetic
	// histories). Nil means NewRegistryMonitor(Obs).
	Monitor Monitor
	// Tuning's zero values take DefaultTuning.
	Tuning Tuning
	// Log, when non-nil, receives one line per mode transition.
	Log io.Writer
}

// Controller is the MAPE-K loop instance. Construct with New, drive it
// with Tick (deterministic, for tests) or Start/Stop (wall-clock).
type Controller struct {
	mu      sync.Mutex
	target  Target
	monitor Monitor
	obs     *obs.Observer
	tuning  Tuning
	k       *mape.Knowledge
	ladder  *modeswitch.Ladder
	log     io.Writer
	cycles  int

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// New validates cfg and builds a stopped controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Target == nil {
		return nil, fmt.Errorf("adapt: Config.Target is required")
	}
	mon := cfg.Monitor
	if mon == nil {
		if cfg.Obs == nil {
			return nil, fmt.Errorf("adapt: Config.Obs is required without a custom Monitor")
		}
		mon = NewRegistryMonitor(cfg.Obs)
	}
	t := cfg.Tuning.withDefaults()
	ladder, err := modeswitch.NewLadder(
		modeswitch.Config{
			EnterBelow: t.PressureEnter, ExitAbove: t.PressureExit,
			EnterAfter: t.PressureAfter, ExitAfter: t.ExitAfter,
		},
		modeswitch.Config{
			EnterBelow: t.EmergencyEnter, ExitAbove: t.EmergencyExit,
			EnterAfter: t.EmergencyAfter, ExitAfter: t.ExitAfter,
		},
	)
	if err != nil {
		return nil, fmt.Errorf("adapt: %w", err)
	}
	return &Controller{
		target:  cfg.Target,
		monitor: mon,
		obs:     cfg.Obs,
		tuning:  t,
		k:       mape.NewKnowledge(t.History),
		ladder:  ladder,
		log:     cfg.Log,
	}, nil
}

// Knowledge exposes the controller's K store (read side: history,
// MeanQuality) for tests and reporting.
func (c *Controller) Knowledge() *mape.Knowledge { return c.k }

// Cycles returns how many MAPE-K cycles have run.
func (c *Controller) Cycles() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cycles
}

// Tick runs one MAPE-K cycle. Safe for concurrent use (the loop and a
// test may both tick); cycles are serialized.
func (c *Controller) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cycles++

	// Monitor → Knowledge.
	s := c.monitor.Sample()
	q := s.Quality()
	c.k.Record(mape.Observation{
		Time:    c.cycles,
		Quality: q,
		Supply:  s.PoolSize,
		Reserve: s.PoolSize - s.Inflight,
		Signals: map[string]float64{
			"inflight":      s.Inflight,
			"queued":        s.Queued,
			"pool.size":     s.PoolSize,
			"latency.p99":   s.LatencyP99,
			"queuewait.p99": s.QueueWaitP99,
			"cache.hit":     s.HitRatio,
		},
	})

	// Analyze: smoothed signal through the hysteresis ladder.
	signal, _ := c.k.MeanQuality(c.tuning.Smooth)
	level := c.ladder.Observe(signal)

	// Plan + Execute: actuate only on change (SetMode is a no-op on the
	// same mode anyway, but the log line should mean something).
	want := levelMode(level)
	cur := c.target.Mode()
	if want != cur {
		c.target.SetMode(want)
		c.obs.Counter("adapt.transitions").Inc()
		if c.log != nil {
			fmt.Fprintf(c.log, "adapt: mode %s -> %s (quality %.1f, queued %.0f, inflight %.0f, p99 %.1fms)\n",
				cur, want, signal, s.Queued, s.Inflight, s.LatencyP99*1000)
		}
	}
	c.obs.Counter("adapt.cycles").Inc()
	c.obs.Gauge("adapt.signal").Set(signal)
	c.obs.Gauge("adapt.level").Set(float64(level))
}

// Force overrides the loop: the ladder jumps to the mode's level (so
// hysteresis resumes from there instead of fighting the override) and
// the target switches immediately. Wire into server.SetForceMode so
// POST /v1/mode routes through here.
func (c *Controller) Force(m server.Mode) {
	c.mu.Lock()
	defer c.mu.Unlock()
	signal, _ := c.k.MeanQuality(c.tuning.Smooth)
	c.ladder.Force(modeLevel(m), signal)
	cur := c.target.Mode()
	if m != cur {
		c.target.SetMode(m)
		c.obs.Counter("adapt.transitions").Inc()
		if c.log != nil {
			fmt.Fprintf(c.log, "adapt: mode %s -> %s (forced)\n", cur, m)
		}
	}
	c.obs.Gauge("adapt.level").Set(float64(c.ladder.Level()))
}

func levelMode(level int) server.Mode {
	switch {
	case level >= 2:
		return server.ModeEmergency
	case level == 1:
		return server.ModePressured
	default:
		return server.ModeNormal
	}
}

func modeLevel(m server.Mode) int {
	switch m {
	case server.ModeEmergency:
		return 2
	case server.ModePressured:
		return 1
	default:
		return 0
	}
}

// Start launches the wall-clock loop, ticking every interval until
// Stop. Starting a started controller is a no-op.
func (c *Controller) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	c.loopMu.Lock()
	defer c.loopMu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				c.Tick()
			case <-stop:
				return
			}
		}
	}(c.stop, c.done)
}

// Stop halts the loop and blocks until the goroutine exits. Stopping a
// stopped controller is a no-op.
func (c *Controller) Stop() {
	c.loopMu.Lock()
	defer c.loopMu.Unlock()
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop, c.done = nil, nil
}
