package obs

import (
	"math"
	"testing"
)

// TestTimingQuantilesKnownInputs checks the quantile math against an
// exactly known distribution: 1000 samples at 1ms..1000ms in 1ms steps.
// The true pXX is (XX0+1)ms-ish; the log-linear buckets guarantee the
// estimate within one bucket width (±7.5% plus the bucket's span).
func TestTimingQuantilesKnownInputs(t *testing.T) {
	var tm Timing
	for i := 1; i <= 1000; i++ {
		tm.Observe(float64(i) / 1000) // 1ms .. 1000ms
	}
	if tm.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", tm.Count())
	}
	cases := []struct {
		q    float64
		want float64 // true quantile in seconds
	}{
		{0.50, 0.500},
		{0.90, 0.900},
		{0.99, 0.990},
		{0.999, 0.999},
	}
	// One bucket spans a factor of 10^(1/16) ≈ 1.155; the geometric
	// midpoint is within ±8% of any sample in the bucket.
	const tol = 0.08
	for _, c := range cases {
		got := tm.Quantile(c.q)
		if math.Abs(got-c.want)/c.want > tol {
			t.Errorf("Quantile(%v) = %v, want %v ±%.0f%%", c.q, got, c.want, tol*100)
		}
	}
	snap := tm.Snapshot()
	if snap.Min != 0.001 || snap.Max != 1.0 {
		t.Fatalf("min/max = %v/%v, want 0.001/1.0", snap.Min, snap.Max)
	}
	wantMean := 0.5005
	if math.Abs(snap.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", snap.Mean(), wantMean)
	}
}

// TestTimingDegenerate: constant samples must read back exactly (the
// min/max clamp), whatever bucket they land in.
func TestTimingDegenerate(t *testing.T) {
	var tm Timing
	for i := 0; i < 100; i++ {
		tm.Observe(0.042)
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if got := tm.Quantile(q); got != 0.042 {
			t.Fatalf("Quantile(%v) = %v, want exactly 0.042", q, got)
		}
	}
}

// TestTimingEmptyAndNil: an empty timing reports zeros, and every
// method is a no-op on nil (the package-wide contract).
func TestTimingEmptyAndNil(t *testing.T) {
	var tm Timing
	if got := tm.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	if snap := tm.Snapshot(); snap.Count != 0 || snap.P999 != 0 || snap.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", snap)
	}

	var nilT *Timing
	nilT.Observe(1)
	if nilT.Quantile(0.5) != 0 || nilT.Count() != 0 {
		t.Fatal("nil Timing must be a no-op")
	}
	if snap := nilT.Snapshot(); snap.Count != 0 {
		t.Fatal("nil Timing snapshot must be zero")
	}
}

// TestTimingOutOfRange: samples beyond the bucket range land in the
// underflow/overflow buckets and still produce sane quantiles; NaN and
// negative samples are dropped.
func TestTimingOutOfRange(t *testing.T) {
	var tm Timing
	tm.Observe(1e-9) // below the 1µs floor
	tm.Observe(5000) // above the 1000s ceiling
	tm.Observe(math.NaN())
	tm.Observe(-1)
	if tm.Count() != 2 {
		t.Fatalf("count = %d, want 2 (NaN and negative dropped)", tm.Count())
	}
	if got := tm.Quantile(0.25); got != 1e-9 {
		t.Fatalf("low quantile = %v, want the 1e-9 sample (clamped to min)", got)
	}
	if got := tm.Quantile(1); got != 5000 {
		t.Fatalf("Quantile(1) = %v, want max 5000", got)
	}
}

// TestTimingCursorWindow: a cursor splits the stream — QuantileSince
// reads only the samples after it, which is how the adapt monitor gets
// a per-tick p99 instead of a history-dominated cumulative one.
func TestTimingCursorWindow(t *testing.T) {
	var tm Timing
	// A slow era: 1000 samples around 1s.
	for i := 0; i < 1000; i++ {
		tm.Observe(1.0)
	}
	cur := tm.Cursor()
	// A fast era: 100 samples at 10ms.
	for i := 0; i < 100; i++ {
		tm.Observe(0.010)
	}
	// The cumulative p99 is still stuck in the slow era…
	if got := tm.Quantile(0.99); got < 0.5 {
		t.Fatalf("cumulative p99 = %v, want slow-era ~1s", got)
	}
	// …but the windowed read sees only the fast era.
	got, n := tm.QuantileSince(cur, 0.99)
	if n != 100 {
		t.Fatalf("window count = %d, want 100", n)
	}
	const tol = 0.08
	if math.Abs(got-0.010)/0.010 > tol {
		t.Fatalf("windowed p99 = %v, want 0.010 ±%.0f%%", got, tol*100)
	}
}

// TestTimingCursorEdges: empty windows, nil receivers, stale zero-value
// cursors, and rank clamping at q=0/q=1.
func TestTimingCursorEdges(t *testing.T) {
	var tm Timing
	cur := tm.Cursor()
	if got, n := tm.QuantileSince(cur, 0.5); got != 0 || n != 0 {
		t.Fatalf("empty window = (%v, %d), want (0, 0)", got, n)
	}
	tm.Observe(0.2)
	// A zero-value cursor covers the whole stream.
	if got, n := tm.QuantileSince(TimingCursor{}, 0.5); got != 0.2 || n != 1 {
		t.Fatalf("zero cursor = (%v, %d), want (0.2, 1)", got, n)
	}
	for _, q := range []float64{-1, 0, 1, 2} {
		if got, n := tm.QuantileSince(TimingCursor{}, q); got != 0.2 || n != 1 {
			t.Fatalf("QuantileSince(q=%v) = (%v, %d), want clamped (0.2, 1)", q, got, n)
		}
	}

	var nilT *Timing
	if nilT.Cursor().count != 0 {
		t.Fatal("nil Cursor must be zero")
	}
	if got, n := nilT.QuantileSince(TimingCursor{}, 0.5); got != 0 || n != 0 {
		t.Fatalf("nil QuantileSince = (%v, %d), want (0, 0)", got, n)
	}
}

// TestRegistryTiming: timings are registered instruments — created on
// first use, shared by name, snapshotted into the registry and the
// metrics document under "timings".
func TestRegistryTiming(t *testing.T) {
	o := New()
	o.Timing("req.latency").Observe(0.010)
	o.Timing("req.latency").Observe(0.020)
	if got := o.Timing("req.latency").Count(); got != 2 {
		t.Fatalf("count = %d, want 2 (same instrument by name)", got)
	}
	snap := o.Metrics.Snapshot()
	ts, ok := snap.Timings["req.latency"]
	if !ok {
		t.Fatal("registry snapshot missing the timing")
	}
	if ts.Count != 2 || ts.Min != 0.010 || ts.Max != 0.020 {
		t.Fatalf("snapshot = %+v", ts)
	}
	doc := o.Document()
	if _, ok := doc.Timings["req.latency"]; !ok {
		t.Fatal("metrics document missing the timing")
	}

	var nilObs *Observer
	if nilObs.Timing("x") != nil {
		t.Fatal("nil observer must hand out nil timings")
	}
}
