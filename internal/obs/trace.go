package obs

import (
	"fmt"
	"sync"
	"time"
)

// Tracer collects spans. Span timestamps are offsets from the tracer's
// creation, so a trace is self-contained and diffable without wall-clock
// noise in the document itself. All methods are nil-safe and safe for
// concurrent use.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	spans  []*Span
	nextID int
	limit  int
}

// NewTracer returns a tracer whose epoch is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// SetLimit bounds how many spans the tracer retains: once more than n
// have been started, the oldest are dropped from future Snapshots. A
// one-shot CLI run keeps the default (n <= 0, unlimited) so its trace
// is complete; a long-running server sets a limit so per-request spans
// cannot grow memory without bound. Children can outlive a dropped
// ancestor — their parent id then names a span absent from the
// document, which consumers should treat as a root.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.limit = n
	t.trim()
}

// trim enforces the retention limit; callers hold t.mu.
func (t *Tracer) trim() {
	if t.limit <= 0 || len(t.spans) <= t.limit {
		return
	}
	drop := len(t.spans) - t.limit
	// Re-slice into a fresh array so dropped spans become collectable
	// instead of pinned by the backing array.
	t.spans = append(make([]*Span, 0, t.limit), t.spans[drop:]...)
}

// Start begins a root span.
func (t *Tracer) Start(name, kind string) *Span {
	return t.newSpan(name, kind, 0)
}

func (t *Tracer) newSpan(name, kind string, parent int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{t: t, id: t.nextID, parent: parent, name: name, kind: kind, start: time.Since(t.epoch)}
	t.spans = append(t.spans, s)
	t.trim()
	return s
}

// Span is one timed operation in the suite → experiment → attempt →
// seam hierarchy. End it exactly once; events and attributes may be
// added from any goroutine until the trace is snapshotted.
type Span struct {
	t      *Tracer
	id     int
	parent int
	name   string
	kind   string
	start  time.Duration

	mu     sync.Mutex
	end    time.Duration
	ended  bool
	attrs  map[string]string
	events []event
}

type event struct {
	name string
	at   time.Duration
}

// Child begins a sub-span of s.
func (s *Span) Child(name, kind string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, kind, s.id)
}

// End closes the span. Later calls are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	at := time.Since(s.t.epoch)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.end = at
		s.ended = true
	}
}

// SetAttr attaches a key/value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
}

// Event records a point-in-time occurrence on the span (a retry, a
// backoff sleep, a timeout, a fault-seam crossing).
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	at := time.Since(s.t.epoch)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, event{name: name, at: at})
}

// Eventf records a formatted event.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil {
		return
	}
	s.Event(fmt.Sprintf(format, args...))
}

// SpanDoc is the exportable form of one span. Times are microseconds
// since the tracer epoch; DurationUs is -1 for a span never ended (an
// abandoned attempt still draining when the document was written).
type SpanDoc struct {
	ID         int               `json:"id"`
	Parent     int               `json:"parent,omitempty"`
	Name       string            `json:"name"`
	Kind       string            `json:"kind"`
	StartUs    int64             `json:"startUs"`
	DurationUs int64             `json:"durationUs"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []EventDoc        `json:"events,omitempty"`
}

// EventDoc is one span event.
type EventDoc struct {
	Name string `json:"name"`
	AtUs int64  `json:"atUs"`
}

// Snapshot exports every span in start order.
func (t *Tracer) Snapshot() []SpanDoc {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	docs := make([]SpanDoc, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		doc := SpanDoc{
			ID: s.id, Parent: s.parent, Name: s.name, Kind: s.kind,
			StartUs: s.start.Microseconds(), DurationUs: -1,
		}
		if s.ended {
			doc.DurationUs = (s.end - s.start).Microseconds()
		}
		if len(s.attrs) > 0 {
			doc.Attrs = make(map[string]string, len(s.attrs))
			for k, v := range s.attrs {
				doc.Attrs[k] = v
			}
		}
		for _, e := range s.events {
			doc.Events = append(doc.Events, EventDoc{Name: e.name, AtUs: e.at.Microseconds()})
		}
		s.mu.Unlock()
		docs = append(docs, doc)
	}
	return docs
}
