// Package obs is the repository's dependency-free observability layer:
// a metrics registry (counters, gauges, histograms), span-style tracing
// for the runner's suite → experiment → attempt → seam hierarchy, and
// pprof file wiring. The paper's active-resilience loop (§5) presumes a
// system that can measure itself; this package supplies the indicators
// that make the runner's resilience behaviour (retries, timeouts,
// degradation, recovery triangles) explicit and queryable.
//
// # Determinism contract
//
// The exported metrics document (see Document) is split along the
// repository's reproducibility guarantee:
//
//   - Counters are deterministic by contract: for a given seed and
//     fault plan they hold the same values at any -jobs setting —
//     attempts, retries, seam crossings, injected strikes, pass/fail
//     and degraded totals. They are safe to golden-test. (Counters
//     that only move when a per-attempt timeout fires, such as
//     runner.timeouts, are as deterministic as the plan's timing
//     margins allow.)
//   - Gauges, histograms, and spans are timing-bearing: wall times,
//     recovery-triangle areas, and goroutine drain accounting vary run
//     to run. They go only to stderr and artifact files, never to
//     stdout, so the same-seed ⇒ byte-identical-stdout guarantee is
//     preserved with observability enabled.
//
// Every type is nil-safe: methods on a nil *Observer, *Registry,
// *Tracer, *Counter, *Gauge, *Histogram, or *Span are no-ops, so
// instrumented code paths need no guards and pay (almost) nothing when
// observability is off.
package obs

import (
	"encoding/json"
	"io"
)

// SchemaVersion identifies the metrics document layout.
const SchemaVersion = "resilience-metrics/1"

// Observer bundles the run's metric registry and tracer. A nil
// *Observer disables instrumentation; construct with New.
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
}

// New returns an Observer with a fresh registry and tracer.
func New() *Observer {
	return &Observer{Metrics: NewRegistry(), Trace: NewTracer()}
}

// Counter returns the named counter (no-op when o is nil).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge (no-op when o is nil).
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram (no-op when o is nil).
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Timing returns the named latency histogram (no-op when o is nil).
// Timings are timing-bearing like histograms, but log-linear and
// quantile-capable — the instrument for p50/p99/p999 SLO reads.
func (o *Observer) Timing(name string) *Timing {
	if o == nil {
		return nil
	}
	return o.Metrics.Timing(name)
}

// Span starts a root span (no-op when o is nil).
func (o *Observer) Span(name, kind string) *Span {
	if o == nil {
		return nil
	}
	return o.Trace.Start(name, kind)
}

// Document is the JSON metrics document `resilience -metrics` emits.
// Counters are the deterministic section; gauges, histograms and spans
// are timing-bearing (see the package comment for the contract).
type Document struct {
	Schema     string                       `json:"schema"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timings    map[string]TimingSnapshot    `json:"timings,omitempty"`
	Spans      []SpanDoc                    `json:"spans,omitempty"`
}

// Document snapshots the observer into an exportable metrics document.
func (o *Observer) Document() *Document {
	doc := &Document{Schema: SchemaVersion, Counters: map[string]int64{}}
	if o == nil {
		return doc
	}
	if o.Metrics != nil {
		snap := o.Metrics.Snapshot()
		doc.Counters = snap.Counters
		doc.Gauges = snap.Gauges
		doc.Histograms = snap.Histograms
		doc.Timings = snap.Timings
	}
	if o.Trace != nil {
		doc.Spans = o.Trace.Snapshot()
	}
	return doc
}

// WriteJSON writes the metrics document to w as indented JSON. Map keys
// marshal sorted, so the deterministic sections are byte-stable.
func (o *Observer) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(o.Document(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
