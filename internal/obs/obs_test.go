package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runner.attempts")
	c.Inc()
	c.Add(2)
	c.Add(-5) // counters never go down
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter("runner.attempts") != c {
		t.Fatal("Counter does not return the same instrument for the same name")
	}
	g := r.Gauge("leaked")
	g.Add(2)
	g.Add(-1)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %v, want 1", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
	h := r.Histogram("attempt.seconds")
	for _, v := range []float64{0.0005, 0.002, 0.002, 5e6} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 4 || snap.Min != 0.0005 || snap.Max != 5e6 {
		t.Fatalf("histogram snapshot %+v", snap)
	}
	var total int64
	for _, b := range snap.Buckets {
		total += b.N
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
	if last := snap.Buckets[len(snap.Buckets)-1]; last.LE != "+Inf" || last.N != 1 {
		t.Fatalf("overflow bucket %+v, want +Inf with 1", last)
	}
}

func TestNilSafety(t *testing.T) {
	// Every receiver in the package must tolerate nil, so instrumented
	// code needs no guards when observability is off.
	var o *Observer
	o.Counter("x").Inc()
	o.Gauge("x").Set(1)
	o.Histogram("x").Observe(1)
	span := o.Span("suite", "suite")
	span.Event("e")
	span.SetAttr("k", "v")
	child := span.Child("c", "attempt")
	child.End()
	span.End()
	var r *Registry
	r.Counter("x").Add(1)
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("nil registry snapshot %+v", got)
	}
	var tr *Tracer
	tr.Start("x", "y").End()
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer snapshot should be nil")
	}
	doc := o.Document()
	if doc.Schema != SchemaVersion || len(doc.Counters) != 0 {
		t.Fatalf("nil observer document %+v", doc)
	}
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil observer document is not valid JSON")
	}
}

func TestTraceHierarchy(t *testing.T) {
	tr := NewTracer()
	suite := tr.Start("suite", "suite")
	exp := suite.Child("experiment:e01", "experiment")
	att := exp.Child("attempt 1", "attempt")
	att.Event("seam:worker")
	att.SetAttr("id", "e01")
	att.End()
	exp.End()
	suite.End()
	docs := tr.Snapshot()
	if len(docs) != 3 {
		t.Fatalf("%d spans, want 3", len(docs))
	}
	if docs[0].Parent != 0 || docs[1].Parent != docs[0].ID || docs[2].Parent != docs[1].ID {
		t.Fatalf("parent chain broken: %+v", docs)
	}
	if docs[2].DurationUs < 0 {
		t.Fatalf("ended span has duration %d", docs[2].DurationUs)
	}
	if len(docs[2].Events) != 1 || docs[2].Events[0].Name != "seam:worker" {
		t.Fatalf("events %+v", docs[2].Events)
	}
	if docs[2].Attrs["id"] != "e01" {
		t.Fatalf("attrs %+v", docs[2].Attrs)
	}
	// An un-ended span exports duration -1 (abandoned attempt).
	open := tr.Start("abandoned", "attempt")
	_ = open
	for _, d := range tr.Snapshot() {
		if d.Name == "abandoned" && d.DurationUs != -1 {
			t.Fatalf("open span duration %d, want -1", d.DurationUs)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	// The registry and spans are written from the runner's worker pool;
	// exercise them from many goroutines (meaningful under -race).
	o := New()
	suite := o.Span("suite", "suite")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				o.Counter("n").Inc()
				o.Gauge("g").Add(1)
				o.Histogram("h").Observe(float64(j))
				s := suite.Child("c", "attempt")
				s.Event("e")
				s.End()
			}
		}()
	}
	wg.Wait()
	suite.End()
	if got := o.Counter("n").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := len(o.Trace.Snapshot()); got != 1601 {
		t.Fatalf("%d spans, want 1601", got)
	}
}

func TestDocumentJSONStable(t *testing.T) {
	o := New()
	o.Counter("b").Add(2)
	o.Counter("a").Inc()
	o.Gauge("g").Set(1.5)
	o.Histogram("h").Observe(0.25)
	var one, two bytes.Buffer
	if err := o.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("document rendering is not stable across writes")
	}
	var doc Document
	if err := json.Unmarshal(one.Bytes(), &doc); err != nil {
		t.Fatalf("document is not valid JSON: %v", err)
	}
	if doc.Schema != SchemaVersion || doc.Counters["a"] != 1 || doc.Counters["b"] != 2 {
		t.Fatalf("document %+v", doc)
	}
}

func TestPProfFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile missing or empty: %v", err)
	}
	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
	if _, err := StartCPUProfile(filepath.Join(dir, "missing-dir", "cpu.pprof")); err == nil {
		t.Fatal("want error for uncreatable profile path")
	}
}

func TestTracerSetLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(3)
	for i := 0; i < 10; i++ {
		tr.Start(fmt.Sprintf("span%02d", i), "test").End()
	}
	docs := tr.Snapshot()
	if len(docs) != 3 {
		t.Fatalf("%d spans retained, want 3", len(docs))
	}
	// Retention keeps the newest spans, in start order.
	for i, want := range []string{"span07", "span08", "span09"} {
		if docs[i].Name != want {
			t.Fatalf("span %d is %q, want %q", i, docs[i].Name, want)
		}
	}
	// Lowering the limit on an already-full tracer trims immediately.
	tr.SetLimit(1)
	if docs := tr.Snapshot(); len(docs) != 1 || docs[0].Name != "span09" {
		t.Fatalf("after SetLimit(1): %+v", docs)
	}
	// n <= 0 disables the limit; existing spans stay, new ones accumulate.
	tr.SetLimit(0)
	tr.Start("extra", "test").End()
	if docs := tr.Snapshot(); len(docs) != 2 {
		t.Fatalf("unlimited tracer has %d spans, want 2", len(docs))
	}
	// Nil tracer: no panic.
	var nilTr *Tracer
	nilTr.SetLimit(5)
}
