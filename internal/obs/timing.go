package obs

import (
	"math"
	"sort"
	"sync"
)

// Timing bucket layout: log-linear bounds spanning timingDecades
// decades up from timingMin seconds, timingPerDecade buckets per
// decade. At 16 buckets per decade adjacent bounds differ by a factor
// of 10^(1/16) ≈ 1.155, so a quantile read from a bucket's geometric
// midpoint is within ±7.5% of the true sample — fine-grained enough to
// report a p999 honestly, coarse enough that a Timing is a fixed
// 146-slot array with no per-sample allocation.
const (
	timingMin       = 1e-6 // 1µs: below any plausible request latency
	timingDecades   = 9    // up through 1000s: beyond any request timeout
	timingPerDecade = 16
)

// timingBounds holds the precomputed bucket upper bounds (seconds).
var timingBounds = func() []float64 {
	n := timingDecades * timingPerDecade
	b := make([]float64, n+1)
	for i := range b {
		b[i] = timingMin * math.Pow(10, float64(i)/timingPerDecade)
	}
	return b
}()

// Timing is a latency histogram built for quantile reads: log-linear
// buckets fine enough to report p50/p99/p999 with bounded relative
// error, unlike the coarse decade buckets of Histogram (which exists to
// sketch distributions cheaply, not to enforce latency SLOs). Like
// every obs instrument it is timing-bearing — values vary run to run
// and never feed stdout — safe for concurrent use, and nil-safe.
type Timing struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets []int64 // len(timingBounds)+1; last is +Inf overflow
}

// Observe records one sample in seconds. NaN and negative samples are
// dropped.
func (t *Timing) Observe(v float64) {
	if t == nil || math.IsNaN(v) || v < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.buckets == nil {
		t.buckets = make([]int64, len(timingBounds)+1)
	}
	if t.count == 0 || v < t.min {
		t.min = v
	}
	if t.count == 0 || v > t.max {
		t.max = v
	}
	t.count++
	t.sum += v
	t.buckets[sort.SearchFloat64s(timingBounds, v)]++
}

// Count returns how many samples were observed.
func (t *Timing) Count() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) in seconds: the
// geometric midpoint of the bucket holding the q-th sample, clamped to
// the observed min/max so degenerate distributions (all samples equal)
// read back exactly. Returns 0 when nothing was observed.
func (t *Timing) Quantile(q float64) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.quantileLocked(q)
}

func (t *Timing) quantileLocked(q float64) float64 {
	if t.count == 0 {
		return 0
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	rank := int64(math.Ceil(q * float64(t.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range t.buckets {
		cum += n
		if cum < rank {
			continue
		}
		var mid float64
		switch {
		case i == 0:
			// Underflow bucket: everything at or below timingMin, so the
			// observed min (which must be in here) is the best estimate.
			mid = t.min
		case i > len(timingBounds)-1:
			// Overflow bucket: beyond the last bound; max is the only
			// honest point estimate.
			mid = t.max
		default:
			mid = math.Sqrt(timingBounds[i-1] * timingBounds[i])
		}
		return math.Min(math.Max(mid, t.min), t.max)
	}
	return t.max
}

// TimingCursor marks a point in a Timing's sample stream. It is an
// opaque copy of the bucket state at Cursor() time; QuantileSince
// subtracts it out to read quantiles over only the samples that arrived
// after it — the windowed view a control loop needs (a cumulative p99
// stops reacting once history dwarfs the tail).
type TimingCursor struct {
	count   int64
	buckets []int64
}

// Cursor snapshots the timing's current position for later windowed
// reads via QuantileSince.
func (t *Timing) Cursor() TimingCursor {
	if t == nil {
		return TimingCursor{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c := TimingCursor{count: t.count}
	if t.buckets != nil {
		c.buckets = append([]int64(nil), t.buckets...)
	}
	return c
}

// QuantileSince estimates the q-th quantile over the samples observed
// after cur was taken, returning the estimate (seconds) and the window's
// sample count. An empty window returns (0, 0). The estimate uses the
// same geometric-midpoint read as Quantile but clamps to the all-time
// min/max (per-window extremes are not tracked), so a window whose
// samples all share one bucket may read slightly wide of its true range.
func (t *Timing) QuantileSince(cur TimingCursor, q float64) (float64, int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	window := t.count - cur.count
	if window <= 0 || t.buckets == nil {
		return 0, 0
	}
	rank := int64(math.Ceil(q * float64(window)))
	if rank < 1 {
		rank = 1
	}
	if rank > window {
		rank = window
	}
	var cum int64
	for i, n := range t.buckets {
		if i < len(cur.buckets) {
			n -= cur.buckets[i]
		}
		cum += n
		if cum < rank {
			continue
		}
		var mid float64
		switch {
		case i == 0:
			mid = t.min
		case i > len(timingBounds)-1:
			mid = t.max
		default:
			mid = math.Sqrt(timingBounds[i-1] * timingBounds[i])
		}
		return math.Min(math.Max(mid, t.min), t.max), window
	}
	return t.max, window
}

// TimingSnapshot is the exportable state of a Timing: the summary
// moments plus the standard latency quantiles, all in seconds.
type TimingSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Mean returns the snapshot's average sample (0 when empty).
func (s TimingSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot copies the timing's current state.
func (t *Timing) Snapshot() TimingSnapshot {
	if t == nil {
		return TimingSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TimingSnapshot{
		Count: t.count,
		Sum:   t.sum,
		Min:   t.min,
		Max:   t.max,
		P50:   t.quantileLocked(0.50),
		P90:   t.quantileLocked(0.90),
		P99:   t.quantileLocked(0.99),
		P999:  t.quantileLocked(0.999),
	}
}
