package obs

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments. Instruments are created on first
// use and live for the registry's lifetime; all methods are safe for
// concurrent use and nil-safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timings  map[string]*Timing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		timings:  map[string]*Timing{},
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Timing returns the named latency histogram, creating it on first use.
func (r *Registry) Timing(name string) *Timing {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timings[name]
	if t == nil {
		t = &Timing{}
		r.timings[name] = t
	}
	return t
}

// RegistrySnapshot is a point-in-time copy of every instrument.
type RegistrySnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
	Timings    map[string]TimingSnapshot
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{Counters: map[string]int64{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		if snap.Gauges == nil {
			snap.Gauges = map[string]float64{}
		}
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		if snap.Histograms == nil {
			snap.Histograms = map[string]HistogramSnapshot{}
		}
		snap.Histograms[name] = h.Snapshot()
	}
	for name, t := range r.timings {
		if snap.Timings == nil {
			snap.Timings = map[string]TimingSnapshot{}
		}
		snap.Timings[name] = t.Snapshot()
	}
	return snap
}

// Counter is a monotonically non-decreasing event count. Counters hold
// the deterministic indicators of the metrics document (see the package
// comment), so only count plan- and seed-determined events with them.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n < 0 is ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can move both ways — used for timing-bearing
// state such as abandoned/drained goroutine accounting.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// histBounds are the histogram bucket upper bounds, decade-spaced from
// a microsecond to ~3 hours when observations are seconds; the same
// bounds serve loss areas (quality-percent·seconds). Values above the
// last bound land in the implicit +Inf bucket.
var histBounds = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4,
}

// Histogram accumulates a distribution of float64 observations into
// fixed decade buckets plus count/sum/min/max. Histograms carry
// timing-bearing data; they never feed stdout.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [12]int64 // len(histBounds) + 1 for +Inf
}

// Observe records one sample. NaN samples are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, le := range histBounds {
		if v <= le {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(histBounds)]++
}

// Bucket is one non-empty histogram bucket; LE is the upper bound
// rendered as a string ("+Inf" for the overflow bucket) so the snapshot
// marshals to JSON without infinities.
type Bucket struct {
	LE string `json:"le"`
	N  int64  `json:"n"`
}

// HistogramSnapshot is the exportable state of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state, listing only non-empty
// buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		le := "+Inf"
		if i < len(histBounds) {
			le = strconv.FormatFloat(histBounds[i], 'g', -1, 64)
		}
		snap.Buckets = append(snap.Buckets, Bucket{LE: le, N: n})
	}
	return snap
}
