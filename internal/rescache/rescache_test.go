package rescache

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"resilience/internal/experiments"
	"resilience/internal/obs"
)

// mapStore is the in-package Store double: a map with injectable
// failures, so Cache's keying/serialization logic is tested without
// dragging a real backend (the backends live in subpackages that import
// this one).
type mapStore struct {
	mu     sync.Mutex
	m      map[string][]byte
	tier   string
	getErr error
	putErr error

	gets, hits, puts int64
}

func newMapStore(tier string) *mapStore {
	return &mapStore{m: make(map[string][]byte), tier: tier}
}

func (s *mapStore) Get(digest string) ([]byte, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	if s.getErr != nil {
		return nil, "", s.getErr
	}
	data, ok := s.m[digest]
	if !ok {
		return nil, "", ErrNotFound
	}
	s.hits++
	return data, s.tier, nil
}

func (s *mapStore) Put(digest string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.putErr != nil {
		return s.putErr
	}
	s.puts++
	cp := make([]byte, len(data))
	copy(cp, data)
	s.m[digest] = cp
	return nil
}

func (s *mapStore) Stats() []TierStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []TierStats{{
		Tier: s.tier, Gets: s.gets, Hits: s.hits, Puts: s.puts,
		Entries: int64(len(s.m)), Bytes: -1,
	}}
}

func (s *mapStore) Close() error { return nil }

func (s *mapStore) String() string { return s.tier }

// corrupt overwrites the stored entry behind the cache's back.
func (s *mapStore) corrupt(digest string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[digest] = data
}

func record(t *testing.T, id string, seed uint64) *experiments.Result {
	t.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res, err := e.Record(experiments.Config{Seed: seed, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDigestDeterministicAndDistinct(t *testing.T) {
	base := Key{ID: "e05", Seed: 42, Quick: true, PlanHash: "abc", Schema: 1}
	if base.Digest() != base.Digest() {
		t.Fatal("digest not deterministic")
	}
	if !ValidDigest(base.Digest()) {
		t.Fatalf("digest %q is not sha256 hex", base.Digest())
	}
	variants := map[string]Key{
		"seed":   {ID: "e05", Seed: 43, Quick: true, PlanHash: "abc", Schema: 1},
		"quick":  {ID: "e05", Seed: 42, Quick: false, PlanHash: "abc", Schema: 1},
		"plan":   {ID: "e05", Seed: 42, Quick: true, PlanHash: "abd", Schema: 1},
		"schema": {ID: "e05", Seed: 42, Quick: true, PlanHash: "abc", Schema: 2},
		"id":     {ID: "e06", Seed: 42, Quick: true, PlanHash: "abc", Schema: 1},
	}
	for name, k := range variants {
		if k.Digest() == base.Digest() {
			t.Errorf("changing %s did not change the digest", name)
		}
	}
}

func TestValidDigest(t *testing.T) {
	for s, want := range map[string]bool{
		(Key{ID: "e05"}).Digest(): true,
		"":                        false,
		"abc":                     false,
		"ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789":  false, // uppercase
		"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz":  false, // not hex
		"../../../../../../../../etc/passwd0000000000000000000000000000000": false,
	} {
		if got := ValidDigest(s); got != want {
			t.Errorf("ValidDigest(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(newMapStore("map"))
	k := Key{ID: "e05", Seed: 42, Quick: true, Schema: 1}
	if _, _, ok := c.Get(k); ok {
		t.Fatal("empty cache must miss")
	}
	res := record(t, "e05", 42)
	if err := c.Put(k, res); err != nil {
		t.Fatal(err)
	}
	got, tier, ok := c.Get(k)
	if !ok {
		t.Fatal("stored entry must hit")
	}
	if tier != "map" {
		t.Fatalf("hit tier = %q, want the serving store's name", tier)
	}
	// The fetched result must render identically to the computed one:
	// compare canonical JSON, which preserves note/table interleaving.
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	have, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, have) {
		t.Fatalf("round-trip changed the result:\n%s\nwant\n%s", have, want)
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.Stores() != 1 {
		t.Fatalf("counters hits=%d misses=%d stores=%d, want 1/1/1",
			c.Hits(), c.Misses(), c.Stores())
	}
}

// TestInvalidation is the cache-correctness table: every key component
// that can change a result forces a miss against an entry stored under
// the base key.
func TestInvalidation(t *testing.T) {
	c := New(newMapStore("map"))
	base := Key{ID: "e05", Seed: 42, Quick: true, PlanHash: "", Schema: 1}
	if err := c.Put(base, record(t, "e05", 42)); err != nil {
		t.Fatal(err)
	}
	for name, k := range map[string]Key{
		"seed change":  {ID: "e05", Seed: 7, Quick: true, PlanHash: "", Schema: 1},
		"quick flip":   {ID: "e05", Seed: 42, Quick: false, PlanHash: "", Schema: 1},
		"plan edit":    {ID: "e05", Seed: 42, Quick: true, PlanHash: "deadbeef", Schema: 1},
		"schema bump":  {ID: "e05", Seed: 42, Quick: true, PlanHash: "", Schema: 2},
		"different id": {ID: "e06", Seed: 42, Quick: true, PlanHash: "", Schema: 1},
	} {
		if _, _, ok := c.Get(k); ok {
			t.Errorf("%s must force a miss", name)
		}
	}
	if _, _, ok := c.Get(base); !ok {
		t.Fatal("base key must still hit")
	}
}

// TestCorruptedEntryRecovers: garbage in a stored entry is a miss, and
// the next Put heals it. The suite must never fail because of a bad
// cache.
func TestCorruptedEntryRecovers(t *testing.T) {
	st := newMapStore("map")
	c := New(st)
	k := Key{ID: "e05", Seed: 42, Quick: true, Schema: 1}
	res := record(t, "e05", 42)
	for _, garbage := range []string{"", "not json", `{"id":"e99"}`} {
		st.corrupt(k.Digest(), []byte(garbage))
		if _, _, ok := c.Get(k); ok {
			t.Fatalf("corrupt entry %q must miss", garbage)
		}
		if err := c.Put(k, res); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := c.Get(k); !ok {
			t.Fatalf("Put after corruption %q must heal the entry", garbage)
		}
	}
}

// TestBackendErrorIsCountedMiss: a store failure (as opposed to
// ErrNotFound) is still a miss for the caller, but lands in the errors
// counter so a broken backend degrades loudly.
func TestBackendErrorIsCountedMiss(t *testing.T) {
	st := newMapStore("map")
	c := New(st)
	k := Key{ID: "e05", Seed: 42, Quick: true, Schema: 1}
	st.getErr = errors.New("disk on fire")
	if _, _, ok := c.Get(k); ok {
		t.Fatal("backend failure must read as a miss")
	}
	if c.Errors() != 1 || c.Misses() != 1 {
		t.Fatalf("errors=%d misses=%d, want 1/1", c.Errors(), c.Misses())
	}
	st.getErr = nil
	if _, _, ok := c.Get(k); ok {
		t.Fatal("recovered backend with no entry must still miss")
	}
	if c.Errors() != 1 {
		t.Fatalf("clean miss must not count as an error (errors=%d)", c.Errors())
	}
	st.putErr = errors.New("disk still on fire")
	if err := c.Put(k, record(t, "e05", 42)); err == nil {
		t.Fatal("failed Put must return the error")
	}
	if c.Errors() != 2 || c.Stores() != 0 {
		t.Fatalf("errors=%d stores=%d after failed Put, want 2/0", c.Errors(), c.Stores())
	}
}

func TestNilCacheIsNoOp(t *testing.T) {
	var c *Cache
	k := Key{ID: "e05"}
	if _, _, ok := c.Get(k); ok {
		t.Fatal("nil cache must miss")
	}
	if err := c.Put(k, &experiments.Result{ID: "e05"}); err != nil {
		t.Fatal(err)
	}
	c.SetObserver(obs.New())
	if c.Hits() != 0 || c.Misses() != 0 || c.Stores() != 0 || c.Errors() != 0 {
		t.Fatal("nil cache must report zeros")
	}
	if c.Desc() != "off" || c.Store() != nil || c.TierStats() != nil {
		t.Fatal("nil cache must describe itself as off")
	}
	if err := c.Check(); err != nil {
		t.Fatal("nil cache is healthy by definition")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// New over a nil store is the same no-op cache.
	if New(nil) != nil {
		t.Fatal("New(nil) must yield the nil no-op cache")
	}
}

func TestObserverCounters(t *testing.T) {
	c := New(newMapStore("map"))
	o := obs.New()
	c.SetObserver(o)
	doc := o.Document()
	for _, name := range []string{
		"rescache.hits", "rescache.misses", "rescache.stores",
		"rescache.errors", "rescache.hits.map",
	} {
		if v, ok := doc.Counters[name]; !ok || v != 0 {
			t.Fatalf("counter %s not pre-registered at 0 (doc=%v)", name, doc.Counters)
		}
	}
	k := Key{ID: "e05", Seed: 42, Quick: true, Schema: 1}
	c.Get(k)                       // miss
	c.Put(k, record(t, "e05", 42)) // store
	c.Get(k)                       // hit
	doc = o.Document()
	for name, want := range map[string]int64{
		"rescache.hits": 1, "rescache.misses": 1, "rescache.stores": 1,
		"rescache.hits.map": 1,
	} {
		if doc.Counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, doc.Counters[name], want)
		}
	}
}

func TestStats(t *testing.T) {
	c := New(newMapStore("map"))
	k := Key{ID: "e05", Seed: 42, Quick: true, Schema: 1}
	c.Get(k) // miss
	if err := c.Put(k, record(t, "e05", 42)); err != nil {
		t.Fatal(err)
	}
	c.Get(k) // hit
	c.Get(k) // hit
	if st := c.Stats(); st != (Stats{Hits: 2, Misses: 1, Stores: 1}) {
		t.Fatalf("Stats() = %+v, want {Hits:2 Misses:1 Stores:1}", st)
	}
	ts := c.TierStats()
	if len(ts) != 1 || ts[0].Tier != "map" || ts[0].Gets != 3 || ts[0].Hits != 2 {
		t.Fatalf("TierStats() = %+v, want one map tier with 3 gets / 2 hits", ts)
	}
	// Nil cache: zero stats, no panic — mirrors the other nil no-ops.
	var nilCache *Cache
	if st := nilCache.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache Stats() = %+v, want zero", st)
	}
}
