package rescache

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"resilience/internal/experiments"
	"resilience/internal/obs"
)

func record(t *testing.T, id string, seed uint64) *experiments.Result {
	t.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res, err := e.Record(experiments.Config{Seed: seed, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDigestDeterministicAndDistinct(t *testing.T) {
	base := Key{ID: "e05", Seed: 42, Quick: true, PlanHash: "abc", Schema: 1}
	if base.Digest() != base.Digest() {
		t.Fatal("digest not deterministic")
	}
	if len(base.Digest()) != 64 {
		t.Fatalf("digest %q is not sha256 hex", base.Digest())
	}
	variants := map[string]Key{
		"seed":   {ID: "e05", Seed: 43, Quick: true, PlanHash: "abc", Schema: 1},
		"quick":  {ID: "e05", Seed: 42, Quick: false, PlanHash: "abc", Schema: 1},
		"plan":   {ID: "e05", Seed: 42, Quick: true, PlanHash: "abd", Schema: 1},
		"schema": {ID: "e05", Seed: 42, Quick: true, PlanHash: "abc", Schema: 2},
		"id":     {ID: "e06", Seed: 42, Quick: true, PlanHash: "abc", Schema: 1},
	}
	for name, k := range variants {
		if k.Digest() == base.Digest() {
			t.Errorf("changing %s did not change the digest", name)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{ID: "e05", Seed: 42, Quick: true, Schema: 1}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache must miss")
	}
	res := record(t, "e05", 42)
	if err := c.Put(k, res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok {
		t.Fatal("stored entry must hit")
	}
	// The fetched result must render identically to the computed one:
	// compare canonical JSON, which preserves note/table interleaving.
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	have, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, have) {
		t.Fatalf("round-trip changed the result:\n%s\nwant\n%s", have, want)
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.Stores() != 1 {
		t.Fatalf("counters hits=%d misses=%d stores=%d, want 1/1/1",
			c.Hits(), c.Misses(), c.Stores())
	}
}

// TestInvalidation is the cache-correctness table: every key component
// that can change a result forces a miss against an entry stored under
// the base key.
func TestInvalidation(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := Key{ID: "e05", Seed: 42, Quick: true, PlanHash: "", Schema: 1}
	if err := c.Put(base, record(t, "e05", 42)); err != nil {
		t.Fatal(err)
	}
	for name, k := range map[string]Key{
		"seed change":  {ID: "e05", Seed: 7, Quick: true, PlanHash: "", Schema: 1},
		"quick flip":   {ID: "e05", Seed: 42, Quick: false, PlanHash: "", Schema: 1},
		"plan edit":    {ID: "e05", Seed: 42, Quick: true, PlanHash: "deadbeef", Schema: 1},
		"schema bump":  {ID: "e05", Seed: 42, Quick: true, PlanHash: "", Schema: 2},
		"different id": {ID: "e06", Seed: 42, Quick: true, PlanHash: "", Schema: 1},
	} {
		if _, ok := c.Get(k); ok {
			t.Errorf("%s must force a miss", name)
		}
	}
	if _, ok := c.Get(base); !ok {
		t.Fatal("base key must still hit")
	}
}

// TestCorruptedEntryRecovers: garbage in a cache file is a miss, and the
// next Put heals it. The suite must never fail because of a bad cache.
func TestCorruptedEntryRecovers(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{ID: "e05", Seed: 42, Quick: true, Schema: 1}
	res := record(t, "e05", 42)
	for _, garbage := range []string{"", "not json", `{"id":"e99"}`} {
		path := filepath.Join(dir, k.Digest()+".json")
		if err := os.WriteFile(path, []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(k); ok {
			t.Fatalf("corrupt entry %q must miss", garbage)
		}
		if err := c.Put(k, res); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(k); !ok {
			t.Fatalf("Put after corruption %q must heal the entry", garbage)
		}
	}
}

func TestNilCacheIsNoOp(t *testing.T) {
	var c *Cache
	k := Key{ID: "e05"}
	if _, ok := c.Get(k); ok {
		t.Fatal("nil cache must miss")
	}
	if err := c.Put(k, &experiments.Result{ID: "e05"}); err != nil {
		t.Fatal(err)
	}
	c.SetObserver(obs.New())
	if c.Hits() != 0 || c.Misses() != 0 || c.Stores() != 0 || c.Dir() != "" {
		t.Fatal("nil cache must report zeros")
	}
}

func TestObserverCounters(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	c.SetObserver(o)
	doc := o.Document()
	for _, name := range []string{"rescache.hits", "rescache.misses", "rescache.stores"} {
		if v, ok := doc.Counters[name]; !ok || v != 0 {
			t.Fatalf("counter %s not pre-registered at 0 (doc=%v)", name, doc.Counters)
		}
	}
	k := Key{ID: "e05", Seed: 42, Quick: true, Schema: 1}
	c.Get(k)                       // miss
	c.Put(k, record(t, "e05", 42)) // store
	c.Get(k)                       // hit
	doc = o.Document()
	for name, want := range map[string]int64{
		"rescache.hits": 1, "rescache.misses": 1, "rescache.stores": 1,
	} {
		if doc.Counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, doc.Counters[name], want)
		}
	}
}

func TestStats(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{ID: "e05", Seed: 42, Quick: true, Schema: 1}
	c.Get(k) // miss
	if err := c.Put(k, record(t, "e05", 42)); err != nil {
		t.Fatal(err)
	}
	c.Get(k) // hit
	c.Get(k) // hit
	if st := c.Stats(); st != (Stats{Hits: 2, Misses: 1, Stores: 1}) {
		t.Fatalf("Stats() = %+v, want {Hits:2 Misses:1 Stores:1}", st)
	}
	// Nil cache: zero stats, no panic — mirrors the other nil no-ops.
	var nilCache *Cache
	if st := nilCache.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache Stats() = %+v, want zero", st)
	}
}
