package rescache

import (
	"errors"
	"fmt"
	"strings"

	"resilience/internal/obs"
)

// Tiered composes stores into one: Get probes tiers in order (the
// intended stack is mem → fs → peer) and backfills every faster tier
// above the one that hit, so a hot key migrates toward memory; Put
// writes through to every tier. A tier that errors is skipped — its
// failure is recorded, the probe moves on — so a dead peer or a broken
// disk degrades the stack to its healthy tiers, never breaks it.
//
// Nil tiers are dropped; a single surviving tier is returned unwrapped
// (there is nothing to compose); zero tiers yield nil, which
// rescache.New turns into a no-op cache.
func Tiered(tiers ...Store) Store {
	kept := make([]Store, 0, len(tiers))
	for _, t := range tiers {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &tiered{tiers: kept}
}

type tiered struct {
	tiers []Store
}

// Get probes each tier in order. On a hit at tier i the bytes are
// backfilled into tiers 0..i-1 (errors recorded by the failing tier and
// ignored here — backfill is an optimization, not a contract). If no
// tier hits, the joined backend errors are returned when any tier
// failed, ErrNotFound when every tier missed cleanly.
func (t *tiered) Get(digest string) ([]byte, string, error) {
	var backendErr error
	for i, tier := range t.tiers {
		data, name, err := tier.Get(digest)
		if err == nil {
			for j := i - 1; j >= 0; j-- {
				// Ignore backfill failures: the hit stands on its own.
				_ = t.tiers[j].Put(digest, data)
			}
			return data, name, nil
		}
		if !errors.Is(err, ErrNotFound) {
			backendErr = errors.Join(backendErr, err)
		}
	}
	if backendErr != nil {
		return nil, "", backendErr
	}
	return nil, "", ErrNotFound
}

// Put writes through to every tier and joins the failures. A partial
// write (some tiers failed) still returns an error so callers surface
// it, but the entry remains servable from the tiers that succeeded.
func (t *tiered) Put(digest string, data []byte) error {
	var err error
	for _, tier := range t.tiers {
		err = errors.Join(err, tier.Put(digest, data))
	}
	return err
}

// Stats concatenates the tiers' snapshots in probe order.
func (t *tiered) Stats() []TierStats {
	var out []TierStats
	for _, tier := range t.tiers {
		out = append(out, tier.Stats()...)
	}
	return out
}

// Close closes every tier and joins the failures.
func (t *tiered) Close() error {
	var err error
	for _, tier := range t.tiers {
		err = errors.Join(err, tier.Close())
	}
	return err
}

// Check probes every tier that is checkable and joins the failures.
// Tiers without a Check (e.g. a remote peer, whose death is tolerated
// by design) do not affect the verdict.
func (t *tiered) Check() error {
	var err error
	for _, tier := range t.tiers {
		if ch, ok := tier.(Checker); ok {
			err = errors.Join(err, ch.Check())
		}
	}
	return err
}

// SetObserver propagates o to every tier that can use it.
func (t *tiered) SetObserver(o *obs.Observer) {
	for _, tier := range t.tiers {
		if ob, ok := tier.(Observable); ok {
			ob.SetObserver(o)
		}
	}
}

// String renders the stack in probe order for log lines.
func (t *tiered) String() string {
	parts := make([]string, 0, len(t.tiers))
	for _, tier := range t.tiers {
		if s, ok := tier.(fmt.Stringer); ok {
			parts = append(parts, s.String())
		} else {
			parts = append(parts, "store")
		}
	}
	return strings.Join(parts, " → ")
}
