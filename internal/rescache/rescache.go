// Package rescache is a content-addressed cache for experiment results,
// layered over pluggable digest-addressed byte storage.
//
// A cache entry is the experiments.Result JSON of one experiment run,
// filed under a digest of everything that determines that result: the
// experiment ID, its derived seed, the quick flag, the fault-plan hash,
// and the engine schema version. When all five match, the stored result
// is the result the runner would recompute, so a warm run can skip the
// experiment body entirely and still render byte-identical output.
//
// The Cache itself owns only keying and (de)serialization; where the
// bytes live is the Store interface's business. The repository ships
// three backends — fsstore (a directory, today's default), memstore (a
// bounded in-process LRU hot tier), and peerstore (another node's cache
// over HTTP) — plus the Tiered composite in this package, which probes
// tiers in order (mem → disk → peer) and backfills upward on a hit.
//
// Any failure to read or parse an entry is treated as a miss — the
// runner recomputes and overwrites — so a corrupted cache directory or a
// dead peer can slow a run down but never break it. Backend failures
// are still counted (rescache.errors and per-tier TierStats) and
// surfaced through Check, so a cache that breaks after startup degrades
// loudly instead of silently.
package rescache

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"resilience/internal/experiments"
	"resilience/internal/obs"
)

// ErrNotFound is the miss sentinel for Store.Get: the backend is
// healthy, it just does not hold the digest. Any other error from Get
// is a backend failure — still a miss for the caller, but counted and
// surfaced separately.
var ErrNotFound = errors.New("rescache: entry not found")

// Store is the storage layer under Cache: digest-addressed byte blobs.
// Implementations must be safe for concurrent use. The repository's
// backends live in the fsstore, memstore, and peerstore subpackages;
// Tiered composes them.
type Store interface {
	// Get returns the bytes stored under digest and the name of the
	// tier that served them ("mem", "fs", "peer"). A miss is
	// (nil, "", ErrNotFound); any other error is a backend failure.
	Get(digest string) (data []byte, tier string, err error)
	// Put stores data under digest, overwriting any existing entry.
	Put(digest string, data []byte) error
	// Stats snapshots per-tier traffic and occupancy, one entry per
	// physical tier (a composite store concatenates its children's).
	Stats() []TierStats
	// Close releases the store's resources. A closed store may fail
	// subsequent calls; Close is idempotent.
	Close() error
}

// TierStats is a point-in-time traffic/occupancy snapshot of one
// storage tier.
type TierStats struct {
	// Tier names the backend ("mem", "fs", "peer").
	Tier string `json:"tier"`
	// Gets counts lookups; Hits the subset served.
	Gets int64 `json:"gets"`
	Hits int64 `json:"hits"`
	// Puts counts successful writes (including tier backfills).
	Puts int64 `json:"puts"`
	// Errors counts backend failures on either path.
	Errors int64 `json:"errors"`
	// Entries and Bytes report occupancy; -1 when the backend cannot
	// know cheaply (e.g. a remote peer).
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Checker is the optional health probe a Store can implement; the
// server's /readyz reports it so a cache directory that breaks after
// startup is surfaced instead of degrading silently per-read.
type Checker interface {
	Check() error
}

// Observable is the optional observer hook a Store can implement to
// register and feed per-tier obs counters (store.<tier>.gets and
// friends).
type Observable interface {
	SetObserver(o *obs.Observer)
}

// ValidDigest reports whether s is a well-formed content address: 64
// lowercase hex characters (a sha256). Stores use digests as file
// names and URL path segments, so both ends validate before use.
func ValidDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Key identifies one cacheable experiment run. Two runs with equal keys
// are guaranteed (by the determinism contract) to produce equal results.
type Key struct {
	// ID is the experiment ID ("e01".."e31").
	ID string
	// Seed is the per-experiment seed, i.e. rng.Derive(suiteSeed, ID),
	// not the raw suite seed — so cache entries survive suite
	// recomposition but invalidate when the suite seed changes.
	Seed uint64
	// Quick is the reduced-size mode flag.
	Quick bool
	// PlanHash is faultinject.(*Plan).Hash(): "" when no plan is loaded,
	// so editing or removing a plan always changes the key.
	PlanHash string
	// Schema is engine.SchemaVersion; bumping it invalidates every
	// entry written by older binaries.
	Schema int
}

// Digest returns the key's content address: a sha256 hex digest of its
// canonical encoding. It doubles as the cache file basename and the
// consistent-hash point that assigns the entry a fleet owner.
func (k Key) Digest() string {
	canon := fmt.Sprintf("id=%s\nseed=%d\nquick=%t\nplan=%s\nschema=%d\n",
		k.ID, k.Seed, k.Quick, k.PlanHash, k.Schema)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(canon)))
}

// Cache serializes Results in and out of a Store and keeps the
// aggregate traffic counters. A nil *Cache is a valid no-op cache: Get
// always misses, Put does nothing.
type Cache struct {
	store                        Store
	observer                     *obs.Observer
	hits, misses, stores, errcnt atomic.Int64
}

// DefaultDir is the filesystem-tier location used when the user does
// not override it: <user cache dir>/resilience.
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("resolve cache dir: %w", err)
	}
	return filepath.Join(base, "resilience"), nil
}

// New returns a Cache over store. A nil store yields a no-op cache.
func New(store Store) *Cache {
	if store == nil {
		return nil
	}
	return &Cache{store: store}
}

// Store exposes the underlying storage (nil for a nil cache), for
// callers that need tier-level stats or to serve the peer protocol.
func (c *Cache) Store() Store {
	if c == nil {
		return nil
	}
	return c.store
}

// Desc describes the storage stack for log lines ("mem(1024) → fs(/x)"
// when the backends implement fmt.Stringer).
func (c *Cache) Desc() string {
	if c == nil || c.store == nil {
		return "off"
	}
	if s, ok := c.store.(fmt.Stringer); ok {
		return s.String()
	}
	return "on"
}

// SetObserver attaches the cache's aggregate counters to o and
// propagates o to every tier that can register its own. All counters
// are registered immediately so they appear (as zeros) in every metrics
// document of a cache-enabled run.
func (c *Cache) SetObserver(o *obs.Observer) {
	if c == nil || o == nil {
		return
	}
	c.observer = o
	o.Counter("rescache.hits")
	o.Counter("rescache.misses")
	o.Counter("rescache.stores")
	o.Counter("rescache.errors")
	// Pre-register per-tier hit counters so the metrics schema is
	// stable from the first document on.
	for _, ts := range c.store.Stats() {
		o.Counter("rescache.hits." + ts.Tier)
	}
	if ob, ok := c.store.(Observable); ok {
		ob.SetObserver(o)
	}
}

func (c *Cache) count(name string, n *atomic.Int64) {
	n.Add(1)
	c.observer.Counter("rescache." + name).Inc()
}

// Get returns the stored result for k plus the tier that served it, or
// (nil, "", false) on a miss. A missing, unreadable, corrupt, or
// ID-mismatched entry is a miss, never an error: the caller recomputes
// and Put overwrites the bad entry. Backend failures additionally count
// as rescache.errors.
func (c *Cache) Get(k Key) (*experiments.Result, string, bool) {
	if c == nil {
		return nil, "", false
	}
	data, tier, err := c.store.Get(k.Digest())
	if err != nil {
		if !errors.Is(err, ErrNotFound) {
			c.count("errors", &c.errcnt)
		}
		c.count("misses", &c.misses)
		return nil, "", false
	}
	var res experiments.Result
	// A digest collision or torn write surfaces as an entry whose
	// payload does not decode, or decodes to a different experiment:
	// always a miss.
	if err := json.Unmarshal(data, &res); err != nil || res.ID != k.ID {
		c.count("misses", &c.misses)
		return nil, "", false
	}
	c.count("hits", &c.hits)
	c.observer.Counter("rescache.hits." + tier).Inc()
	return &res, tier, true
}

// GetBytes returns the stored canonical bytes for k plus the tier that
// served them, or (nil, "", false) on a miss — without decoding to a
// Result. It is the read path for callers that only forward bytes (the
// HTTP server streaming a warm response, the runner in bytes-only
// mode). The same miss discipline as Get applies, enforced without an
// Unmarshal: the payload must be valid JSON whose first field is the
// expected id (the canonical encoder always emits id first), so a torn
// write, corrupt file, or digest collision is a miss, never served.
func (c *Cache) GetBytes(k Key) ([]byte, string, bool) {
	if c == nil {
		return nil, "", false
	}
	data, tier, err := c.store.Get(k.Digest())
	if err != nil {
		if !errors.Is(err, ErrNotFound) {
			c.count("errors", &c.errcnt)
		}
		c.count("misses", &c.misses)
		return nil, "", false
	}
	if !canonicalFor(data, k.ID) {
		c.count("misses", &c.misses)
		return nil, "", false
	}
	c.count("hits", &c.hits)
	c.observer.Counter("rescache.hits." + tier).Inc()
	return data, tier, true
}

// canonicalFor reports whether data plausibly holds the canonical
// encoding of the experiment id: syntactically valid JSON (an alloc-free
// scan) that opens with the id as its first field.
func canonicalFor(data []byte, id string) bool {
	if plainJSONString(id) {
		// Registry ids ("e01"…) need no escaping, so the expected prefix
		// is `{"id":"<id>",` verbatim — checked without building it, which
		// keeps the warm hit path allocation-free.
		const open = `{"id":"`
		n := len(open) + len(id)
		if len(data) < n+2 || string(data[:len(open)]) != open ||
			string(data[len(open):n]) != id || data[n] != '"' || data[n+1] != ',' {
			return false
		}
		return json.Valid(data)
	}
	quoted, err := json.Marshal(id)
	if err != nil {
		return false
	}
	prefix := make([]byte, 0, len(quoted)+8)
	prefix = append(prefix, `{"id":`...)
	prefix = append(prefix, quoted...)
	prefix = append(prefix, ',')
	return bytes.HasPrefix(data, prefix) && json.Valid(data)
}

// plainJSONString reports whether s encodes to JSON as itself inside
// quotes — printable ASCII with nothing the canonical encoder escapes.
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b < 0x20 || b >= 0x7F || b == '"' || b == '\\' || b == '<' || b == '>' || b == '&' {
			return false
		}
	}
	return true
}

// Put stores res under k. Write failures are counted (rescache.errors)
// and returned; callers treat them as non-fatal — a full disk or dead
// peer slows the next run down, it must not fail this one.
func (c *Cache) Put(k Key, res *experiments.Result) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("encode cache entry %s: %w", k.ID, err)
	}
	if err := c.store.Put(k.Digest(), data); err != nil {
		c.count("errors", &c.errcnt)
		return fmt.Errorf("store cache entry %s: %w", k.ID, err)
	}
	c.count("stores", &c.stores)
	return nil
}

// PutBytes stores already-canonical bytes under k without re-encoding.
// It is the write path of the canonical-bytes contract: the runner
// marshals a Result exactly once and hands the same bytes to the cache,
// the coalescer, and the response writer. Write failures are counted
// and returned, and are non-fatal to the run, exactly as in Put.
func (c *Cache) PutBytes(k Key, data []byte) error {
	if c == nil {
		return nil
	}
	if err := c.store.Put(k.Digest(), data); err != nil {
		c.count("errors", &c.errcnt)
		return fmt.Errorf("store cache entry %s: %w", k.ID, err)
	}
	c.count("stores", &c.stores)
	return nil
}

// Check probes the storage stack's health (tiers implementing Checker);
// nil means every probed tier is serviceable. A nil cache is healthy by
// definition — there is nothing to break.
func (c *Cache) Check() error {
	if c == nil {
		return nil
	}
	if ch, ok := c.store.(Checker); ok {
		return ch.Check()
	}
	return nil
}

// Close releases the underlying store.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	return c.store.Close()
}

// Stats is a point-in-time snapshot of aggregate cache traffic since
// construction.
type Stats struct {
	Hits, Misses, Stores, Errors int64
}

// Stats returns the cache's traffic counters in one consistent-enough
// snapshot (each counter is read atomically; zero for a nil cache).
// Long-running consumers like the HTTP server report it at drain time.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Stores: c.stores.Load(),
		Errors: c.errcnt.Load(),
	}
}

// TierStats snapshots the underlying tiers (nil for a nil cache).
func (c *Cache) TierStats() []TierStats {
	if c == nil {
		return nil
	}
	return c.store.Stats()
}

// Hits reports cache hits since construction (0 for a nil cache).
func (c *Cache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses reports cache misses since construction (0 for a nil cache).
func (c *Cache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Stores reports entries written since construction (0 for a nil cache).
func (c *Cache) Stores() int64 {
	if c == nil {
		return 0
	}
	return c.stores.Load()
}

// Errors reports backend failures since construction (0 for a nil
// cache).
func (c *Cache) Errors() int64 {
	if c == nil {
		return 0
	}
	return c.errcnt.Load()
}
