// Package rescache is a content-addressed store for experiment results.
//
// A cache entry is the experiments.Result JSON of one experiment run,
// filed under a digest of everything that determines that result: the
// experiment ID, its derived seed, the quick flag, the fault-plan hash,
// and the engine schema version. When all five match, the stored result
// is the result the runner would recompute, so a warm run can skip the
// experiment body entirely and still render byte-identical output.
//
// Any failure to read or parse an entry is treated as a miss — the
// runner recomputes and overwrites — so a corrupted cache directory can
// slow a run down but never break it.
package rescache

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"resilience/internal/experiments"
	"resilience/internal/obs"
)

// Key identifies one cacheable experiment run. Two runs with equal keys
// are guaranteed (by the determinism contract) to produce equal results.
type Key struct {
	// ID is the experiment ID ("e01".."e31").
	ID string
	// Seed is the per-experiment seed, i.e. rng.Derive(suiteSeed, ID),
	// not the raw suite seed — so cache entries survive suite
	// recomposition but invalidate when the suite seed changes.
	Seed uint64
	// Quick is the reduced-size mode flag.
	Quick bool
	// PlanHash is faultinject.(*Plan).Hash(): "" when no plan is loaded,
	// so editing or removing a plan always changes the key.
	PlanHash string
	// Schema is engine.SchemaVersion; bumping it invalidates every
	// entry written by older binaries.
	Schema int
}

// Digest returns the key's content address: a sha256 hex digest of its
// canonical encoding. It doubles as the cache file basename.
func (k Key) Digest() string {
	canon := fmt.Sprintf("id=%s\nseed=%d\nquick=%t\nplan=%s\nschema=%d\n",
		k.ID, k.Seed, k.Quick, k.PlanHash, k.Schema)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(canon)))
}

// Cache is a directory of result files, safe for concurrent use. A nil
// *Cache is a valid no-op cache: Get always misses, Put does nothing.
type Cache struct {
	dir                  string
	observer             *obs.Observer
	hits, misses, stores atomic.Int64
}

// DefaultDir is the cache location used when the user does not override
// it: <user cache dir>/resilience.
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("resolve cache dir: %w", err)
	}
	return filepath.Join(base, "resilience"), nil
}

// Open returns a Cache rooted at dir, creating the directory if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("open result cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir reports the cache root ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// SetObserver attaches hit/miss/store counters to o. All three are
// registered immediately so they appear (as zeros) in every metrics
// document of a cache-enabled run.
func (c *Cache) SetObserver(o *obs.Observer) {
	if c == nil || o == nil {
		return
	}
	c.observer = o
	o.Counter("rescache.hits")
	o.Counter("rescache.misses")
	o.Counter("rescache.stores")
}

func (c *Cache) count(name string, n *atomic.Int64) {
	n.Add(1)
	c.observer.Counter("rescache." + name).Inc()
}

// Get returns the stored result for k, or (nil, false) on a miss. A
// missing, unreadable, corrupt, or mismatched entry is a miss, never an
// error: the caller recomputes and Put overwrites the bad file.
func (c *Cache) Get(k Key) (*experiments.Result, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(k))
	if err != nil {
		c.count("misses", &c.misses)
		return nil, false
	}
	var res experiments.Result
	if err := json.Unmarshal(data, &res); err != nil || res.ID != k.ID {
		c.count("misses", &c.misses)
		return nil, false
	}
	c.count("hits", &c.hits)
	return &res, true
}

// Put stores res under k, atomically (temp file + rename) so concurrent
// runners and interrupted runs never leave a torn entry behind.
func (c *Cache) Put(k Key, res *experiments.Result) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("encode cache entry %s: %w", k.ID, err)
	}
	tmp, err := os.CreateTemp(c.dir, k.Digest()+".tmp*")
	if err != nil {
		return fmt.Errorf("store cache entry %s: %w", k.ID, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store cache entry %s: %w", k.ID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store cache entry %s: %w", k.ID, err)
	}
	if err := os.Rename(tmp.Name(), c.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store cache entry %s: %w", k.ID, err)
	}
	c.count("stores", &c.stores)
	return nil
}

func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.Digest()+".json")
}

// Stats is a point-in-time snapshot of cache traffic since Open.
type Stats struct {
	Hits, Misses, Stores int64
}

// Stats returns the cache's traffic counters in one consistent-enough
// snapshot (each counter is read atomically; zero for a nil cache).
// Long-running consumers like the HTTP server report it at drain time.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Stores: c.stores.Load()}
}

// Hits reports cache hits since Open (0 for a nil cache).
func (c *Cache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses reports cache misses since Open (0 for a nil cache).
func (c *Cache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Stores reports entries written since Open (0 for a nil cache).
func (c *Cache) Stores() int64 {
	if c == nil {
		return 0
	}
	return c.stores.Load()
}
