package memstore_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"resilience/internal/rescache"
	"resilience/internal/rescache/memstore"
)

func digest(i int) string {
	return (rescache.Key{ID: fmt.Sprintf("t%02d", i)}).Digest()
}

func mustNew(t *testing.T, maxEntries int, maxBytes int64) *memstore.Store {
	t.Helper()
	st, err := memstore.New(maxEntries, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewRejectsNonPositiveEntries(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := memstore.New(n, 0); err == nil {
			t.Errorf("New(%d, 0) must fail", n)
		}
	}
}

func TestRoundTripAndMiss(t *testing.T) {
	st := mustNew(t, 4, 0)
	if _, _, err := st.Get(digest(1)); !errors.Is(err, rescache.ErrNotFound) {
		t.Fatalf("empty store Get = %v, want ErrNotFound", err)
	}
	if err := st.Put(digest(1), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, tier, err := st.Get(digest(1))
	if err != nil || string(data) != "payload" || tier != "mem" {
		t.Fatalf("Get = (%q, %q, %v)", data, tier, err)
	}
}

func TestPutCopiesCallerSlice(t *testing.T) {
	st := mustNew(t, 4, 0)
	buf := []byte("original")
	if err := st.Put(digest(1), buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "SCRIBBLE")
	data, _, err := st.Get(digest(1))
	if err != nil || string(data) != "original" {
		t.Fatalf("caller mutation leaked into the store: %q", data)
	}
}

func TestEntryCountEviction(t *testing.T) {
	st := mustNew(t, 2, 0)
	for i := 0; i < 3; i++ {
		if err := st.Put(digest(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.Get(digest(0)); !errors.Is(err, rescache.ErrNotFound) {
		t.Fatalf("oldest entry survived entry-count eviction: %v", err)
	}
	for i := 1; i < 3; i++ {
		if _, _, err := st.Get(digest(i)); err != nil {
			t.Fatalf("entry %d evicted early: %v", i, err)
		}
	}
	if st.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions())
	}
}

func TestByteBoundEviction(t *testing.T) {
	st := mustNew(t, 100, 10)
	st.Put(digest(0), []byte("aaaa")) // 4 bytes
	st.Put(digest(1), []byte("bbbb")) // 8 total
	st.Put(digest(2), []byte("cccc")) // 12 > 10: evict digest(0)
	if _, _, err := st.Get(digest(0)); !errors.Is(err, rescache.ErrNotFound) {
		t.Fatal("oldest entry survived byte-bound eviction")
	}
	ts := st.Stats()[0]
	if ts.Entries != 2 || ts.Bytes != 8 {
		t.Fatalf("Stats = %+v, want 2 entries / 8 bytes", ts)
	}
}

func TestGetPromotesAgainstEviction(t *testing.T) {
	st := mustNew(t, 2, 0)
	st.Put(digest(0), []byte("a"))
	st.Put(digest(1), []byte("b"))
	st.Get(digest(0)) // promote: digest(1) is now coldest
	st.Put(digest(2), []byte("c"))
	if _, _, err := st.Get(digest(0)); err != nil {
		t.Fatal("promoted entry was evicted")
	}
	if _, _, err := st.Get(digest(1)); !errors.Is(err, rescache.ErrNotFound) {
		t.Fatal("cold entry survived over the promoted one")
	}
}

func TestOverwriteAdjustsBytes(t *testing.T) {
	st := mustNew(t, 4, 0)
	st.Put(digest(1), []byte("aa"))
	st.Put(digest(1), []byte("bbbbbb"))
	ts := st.Stats()[0]
	if ts.Entries != 1 || ts.Bytes != 6 {
		t.Fatalf("Stats after overwrite = %+v, want 1 entry / 6 bytes", ts)
	}
	data, _, err := st.Get(digest(1))
	if err != nil || string(data) != "bbbbbb" {
		t.Fatalf("overwrite not visible: %q, %v", data, err)
	}
}

func TestOversizedEntryRefused(t *testing.T) {
	st := mustNew(t, 4, 8)
	if err := st.Put(digest(1), make([]byte, 9)); err == nil {
		t.Fatal("entry larger than the byte bound must be refused")
	}
	ts := st.Stats()[0]
	if ts.Entries != 0 || ts.Bytes != 0 {
		t.Fatalf("refused entry changed occupancy: %+v", ts)
	}
}

func TestCloseDropsEverything(t *testing.T) {
	st := mustNew(t, 4, 0)
	st.Put(digest(1), []byte("x"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(digest(1)); !errors.Is(err, rescache.ErrNotFound) {
		t.Fatal("entry survived Close")
	}
	ts := st.Stats()[0]
	if ts.Entries != 0 || ts.Bytes != 0 {
		t.Fatalf("occupancy after Close: %+v", ts)
	}
}

// TestEvictedMidReadStaysValid pins the immutability contract the tiered
// cache relies on: a slice handed out by Get must stay intact even after
// churn evicts and overwrites the entry, because Put always copies and
// eviction never scribbles on old payloads.
func TestEvictedMidReadStaysValid(t *testing.T) {
	st := mustNew(t, 2, 0)
	want := []byte("held-across-eviction")
	st.Put(digest(0), want)
	held, _, err := st.Get(digest(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ { // churn far past the entry bound
		st.Put(digest(i), bytes.Repeat([]byte{byte(i)}, 32))
	}
	if _, _, err := st.Get(digest(0)); !errors.Is(err, rescache.ErrNotFound) {
		t.Fatal("churn should have evicted the held entry")
	}
	if !bytes.Equal(held, want) {
		t.Fatalf("held slice mutated after eviction: %q", held)
	}
}

// TestConcurrentChurn hammers a small LRU from many goroutines under
// -race: hits must return exactly what some writer stored for that key,
// and the bounds must hold at every observation.
func TestConcurrentChurn(t *testing.T) {
	const maxEntries, workers, rounds = 4, 8, 200
	st := mustNew(t, maxEntries, 0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				d := digest(i % (2 * maxEntries))
				if i%2 == 0 {
					if err := st.Put(d, []byte(d[:8])); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				} else {
					data, _, err := st.Get(d)
					if errors.Is(err, rescache.ErrNotFound) {
						continue
					}
					if err != nil || string(data) != d[:8] {
						t.Errorf("Get(%s) = (%q, %v)", d[:8], data, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	ts := st.Stats()[0]
	if ts.Entries > maxEntries {
		t.Fatalf("entry bound violated: %d > %d", ts.Entries, maxEntries)
	}
}
