// Package memstore is the in-memory hot tier of the result cache: an
// LRU of digest-addressed entries bounded by both entry count and total
// payload bytes. BENCH_warm_cache.json shows even a warm filesystem hit
// pays a disk read plus JSON work per entry; the memory tier serves the
// hottest keys with neither, which is what lets a busy serve node answer
// repeat traffic without touching its cache directory at all.
//
// The store is safe for concurrent use. Put copies the payload, and Get
// returns the stored slice without copying — entries are treated as
// immutable by contract (the cache layer only ever unmarshals them), so
// an entry evicted mid-read stays valid for the reader holding it.
package memstore

import (
	"container/list"
	"fmt"
	"sync"

	"resilience/internal/obs"
	"resilience/internal/rescache"
)

// DefaultMaxBytes bounds the tier's payload memory when the caller does
// not choose: enough for thousands of quick-suite results without
// letting full-size entries balloon a daemon.
const DefaultMaxBytes = 256 << 20

// Store is a bounded in-memory LRU, safe for concurrent use.
type Store struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      int64

	gets, hits, puts, evictions int64

	observer *obs.Observer
}

type entry struct {
	digest string
	data   []byte
}

// New returns a Store holding at most maxEntries entries and maxBytes
// payload bytes. maxEntries must be positive (a zero-entry hot tier is
// a configuration the caller should express by not building one);
// maxBytes <= 0 means DefaultMaxBytes.
func New(maxEntries int, maxBytes int64) (*Store, error) {
	if maxEntries <= 0 {
		return nil, fmt.Errorf("memstore: max entries must be positive, got %d", maxEntries)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Store{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}, nil
}

// SetObserver registers the tier's counters and occupancy gauges on o.
func (s *Store) SetObserver(o *obs.Observer) {
	if s == nil || o == nil {
		return
	}
	s.mu.Lock()
	s.observer = o
	s.mu.Unlock()
	o.Counter("store.mem.gets")
	o.Counter("store.mem.hits")
	o.Counter("store.mem.puts")
	o.Counter("store.mem.evictions")
	o.Gauge("store.mem.entries")
	o.Gauge("store.mem.bytes")
}

// Get returns the entry for digest, promoting it to most recently used.
func (s *Store) Get(digest string) ([]byte, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	s.observer.Counter("store.mem.gets").Inc()
	el, ok := s.items[digest]
	if !ok {
		return nil, "", rescache.ErrNotFound
	}
	s.ll.MoveToFront(el)
	s.hits++
	s.observer.Counter("store.mem.hits").Inc()
	return el.Value.(*entry).data, "mem", nil
}

// Put stores a copy of data under digest (overwriting any previous
// entry) and evicts from the cold end until both bounds hold. An entry
// larger than the byte bound is refused outright — storing it would
// evict the whole tier to hold one key.
func (s *Store) Put(digest string, data []byte) error {
	if int64(len(data)) > s.maxBytes {
		return fmt.Errorf("memstore: entry %s (%d bytes) exceeds tier bound %d", digest, len(data), s.maxBytes)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[digest]; ok {
		e := el.Value.(*entry)
		s.bytes += int64(len(cp)) - int64(len(e.data))
		e.data = cp
		s.ll.MoveToFront(el)
	} else {
		s.items[digest] = s.ll.PushFront(&entry{digest: digest, data: cp})
		s.bytes += int64(len(cp))
	}
	for s.ll.Len() > s.maxEntries || s.bytes > s.maxBytes {
		s.evictOldest()
	}
	s.puts++
	s.observer.Counter("store.mem.puts").Inc()
	s.observer.Gauge("store.mem.entries").Set(float64(s.ll.Len()))
	s.observer.Gauge("store.mem.bytes").Set(float64(s.bytes))
	return nil
}

// evictOldest drops the least recently used entry. Caller holds mu.
func (s *Store) evictOldest() {
	el := s.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.digest)
	s.bytes -= int64(len(e.data))
	s.evictions++
	s.observer.Counter("store.mem.evictions").Inc()
}

// Stats snapshots traffic and occupancy.
func (s *Store) Stats() []rescache.TierStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []rescache.TierStats{{
		Tier:    "mem",
		Gets:    s.gets,
		Hits:    s.hits,
		Puts:    s.puts,
		Entries: int64(s.ll.Len()),
		Bytes:   s.bytes,
	}}
}

// Evictions reports how many entries the bounds have pushed out.
func (s *Store) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Close drops every entry so a closed tier does not pin payload memory.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ll.Init()
	s.items = make(map[string]*list.Element)
	s.bytes = 0
	return nil
}

// String renders the tier for log lines.
func (s *Store) String() string { return fmt.Sprintf("mem(%d)", s.maxEntries) }
