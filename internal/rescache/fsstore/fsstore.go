// Package fsstore is the filesystem tier of the result cache: one file
// per entry, named <digest>.json, written atomically via temp file +
// rename so concurrent runners and interrupted runs never leave a torn
// entry behind. It holds the directory logic that used to live inside
// rescache itself, now behind the rescache.Store interface so memory
// and peer tiers can stack on top of it.
//
// Error discipline (the fix for the silent-degradation and ignored-
// write-failure paths this refactor audited): a missing file is
// rescache.ErrNotFound (a clean miss); every other failure — unreadable
// file, unwritable directory, failed temp create/write/close/rename —
// is counted, recorded as the store's last error, and returned to the
// caller. The temp file is removed on every failure path. Check probes
// the directory with a real write so a cache dir that breaks after
// startup (removed, remounted read-only, disk full) is detected and
// reportable, not just a stream of per-read misses.
package fsstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"resilience/internal/obs"
	"resilience/internal/rescache"
)

// Store is a directory of digest-named entry files, safe for concurrent
// use (including by concurrent processes sharing the directory).
type Store struct {
	dir      string
	observer *obs.Observer

	gets, hits, puts, errcnt atomic.Int64

	mu      sync.Mutex
	lastErr error
}

// Open returns a Store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("open result cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetObserver registers the tier's counters on o so they appear (as
// zeros) in every metrics document.
func (s *Store) SetObserver(o *obs.Observer) {
	if s == nil || o == nil {
		return
	}
	s.observer = o
	o.Counter("store.fs.gets")
	o.Counter("store.fs.hits")
	o.Counter("store.fs.puts")
	o.Counter("store.fs.errors")
}

func (s *Store) count(name string, n *atomic.Int64) {
	n.Add(1)
	s.observer.Counter("store.fs." + name).Inc()
}

// fail records err as the tier's most recent failure and counts it.
func (s *Store) fail(err error) error {
	s.count("errors", &s.errcnt)
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
	return err
}

// Get returns the entry bytes for digest; a missing file is
// rescache.ErrNotFound, anything else a counted backend failure.
func (s *Store) Get(digest string) ([]byte, string, error) {
	s.count("gets", &s.gets)
	if !rescache.ValidDigest(digest) {
		return nil, "", s.fail(fmt.Errorf("fsstore: malformed digest %q", digest))
	}
	data, err := os.ReadFile(s.path(digest))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, "", rescache.ErrNotFound
		}
		return nil, "", s.fail(fmt.Errorf("fsstore: read %s: %w", digest, err))
	}
	s.count("hits", &s.hits)
	return data, "fs", nil
}

// Put stores data under digest atomically: the bytes land in a temp
// file in the same directory and are renamed into place, so readers see
// either the old entry or the complete new one, never a prefix. Every
// failure (create, write, close, rename) removes the temp file, is
// counted, and is returned.
func (s *Store) Put(digest string, data []byte) error {
	if !rescache.ValidDigest(digest) {
		return s.fail(fmt.Errorf("fsstore: malformed digest %q", digest))
	}
	tmp, err := os.CreateTemp(s.dir, digest+".tmp*")
	if err != nil {
		return s.fail(fmt.Errorf("fsstore: store %s: %w", digest, err))
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return s.fail(fmt.Errorf("fsstore: store %s: %w", digest, err))
	}
	// Close can surface deferred write errors (full disk, quota): treat
	// it exactly like a failed write, not a formality.
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return s.fail(fmt.Errorf("fsstore: store %s: %w", digest, err))
	}
	if err := os.Rename(tmp.Name(), s.path(digest)); err != nil {
		os.Remove(tmp.Name())
		return s.fail(fmt.Errorf("fsstore: store %s: %w", digest, err))
	}
	s.count("puts", &s.puts)
	return nil
}

// Stats snapshots traffic and walks the directory for occupancy
// (entries/bytes are -1 if the directory is unreadable). The walk makes
// Stats O(entries); it backs the cluster status endpoint and drain
// summaries, not any hot path.
func (s *Store) Stats() []rescache.TierStats {
	ts := rescache.TierStats{
		Tier:   "fs",
		Gets:   s.gets.Load(),
		Hits:   s.hits.Load(),
		Puts:   s.puts.Load(),
		Errors: s.errcnt.Load(),
	}
	ts.Entries, ts.Bytes = s.usage()
	return []rescache.TierStats{ts}
}

func (s *Store) usage() (entries, bytes int64) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return -1, -1
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		entries++
		if info, err := de.Info(); err == nil {
			bytes += info.Size()
		}
	}
	return entries, bytes
}

// Check probes the directory with a real write + remove, so read-only
// remounts and deleted directories are caught, and reports the result
// (falling back to the last recorded I/O failure is deliberately NOT
// done: a probe that succeeds means the tier has healed).
func (s *Store) Check() error {
	probe, err := os.CreateTemp(s.dir, ".probe*")
	if err != nil {
		return fmt.Errorf("fsstore: cache dir %s unwritable: %w", s.dir, err)
	}
	name := probe.Name()
	probe.Close()
	if err := os.Remove(name); err != nil {
		return fmt.Errorf("fsstore: cache dir %s: %w", s.dir, err)
	}
	return nil
}

// LastErr reports the most recent backend failure (nil if none), for
// health surfaces that want the cause alongside the counter.
func (s *Store) LastErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Close is a no-op; the directory needs no teardown.
func (s *Store) Close() error { return nil }

// String renders the tier for log lines.
func (s *Store) String() string { return "fs(" + s.dir + ")" }

func (s *Store) path(digest string) string {
	return filepath.Join(s.dir, digest+".json")
}
