package fsstore_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"resilience/internal/obs"
	"resilience/internal/rescache"
	"resilience/internal/rescache/fsstore"
)

func digest(i int) string {
	return (rescache.Key{ID: fmt.Sprintf("t%02d", i)}).Digest()
}

func TestRoundTripAndMiss(t *testing.T) {
	st, err := fsstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d := digest(1)
	if _, _, err := st.Get(d); !errors.Is(err, rescache.ErrNotFound) {
		t.Fatalf("empty store Get = %v, want ErrNotFound", err)
	}
	if err := st.Put(d, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, tier, err := st.Get(d)
	if err != nil || string(data) != "payload" || tier != "fs" {
		t.Fatalf("Get = (%q, %q, %v)", data, tier, err)
	}
	// No temp-file residue after a clean Put.
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if !strings.HasSuffix(de.Name(), ".json") {
			t.Fatalf("stray file %q left in cache dir", de.Name())
		}
	}
}

func TestMalformedDigestRejected(t *testing.T) {
	st, err := fsstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../evil", strings.Repeat("Z", 64)} {
		if _, _, err := st.Get(bad); err == nil || errors.Is(err, rescache.ErrNotFound) {
			t.Errorf("Get(%q) = %v, want a backend error", bad, err)
		}
		if err := st.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) must refuse a malformed digest", bad)
		}
	}
	if st.LastErr() == nil {
		t.Fatal("rejections must be recorded as the last error")
	}
}

// TestPutFailureSurfacesAndHeals is the Put error-handling audit: with
// the directory deleted out from under the store, Put returns an error
// (and records it) instead of silently dropping the entry; Check fails;
// recreating the directory heals both.
func TestPutFailureSurfacesAndHeals(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	st, err := fsstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(digest(1), []byte("x")); err == nil {
		t.Fatal("Put into a deleted directory must fail")
	}
	if st.LastErr() == nil {
		t.Fatal("failed Put must be recorded")
	}
	if err := st.Check(); err == nil {
		t.Fatal("Check must fail while the directory is gone")
	}
	if st.Stats()[0].Errors == 0 {
		t.Fatal("failed Put must be counted")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := st.Check(); err != nil {
		t.Fatalf("Check after the directory healed: %v", err)
	}
	if err := st.Put(digest(1), []byte("x")); err != nil {
		t.Fatalf("Put after the directory healed: %v", err)
	}
}

// TestCorruptionIsAlwaysAMiss drives the cache layer over real files:
// truncated, garbage, and digest-mismatched entries must read as misses
// (recompute + overwrite), never as errors or wrong results.
func TestCorruptionIsAlwaysAMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := fsstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := rescache.New(st)
	k := rescache.Key{ID: "e05", Seed: 42, Quick: true, Schema: 1}
	for _, garbage := range []string{"", "{truncated", `{"id":"e99"}`, "\x00\x01\x02"} {
		path := filepath.Join(dir, k.Digest()+".json")
		if err := os.WriteFile(path, []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := cache.Get(k); ok {
			t.Fatalf("corrupt entry %q must miss", garbage)
		}
	}
}

// TestConcurrentGetPutCorrupt hammers one store from writers, readers,
// and a corruptor under -race: every read must see ErrNotFound or a
// complete value some writer stored (atomic tmp+rename), and nothing
// may panic or deadlock.
func TestConcurrentGetPutCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := fsstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys, rounds = 8, 50
	valid := make(map[string]bool)
	for v := 0; v < rounds; v++ {
		valid[fmt.Sprintf("value-%d", v)] = true
	}
	var wg sync.WaitGroup
	for i := 0; i < keys; i++ {
		d := digest(i)
		wg.Add(3)
		go func() {
			defer wg.Done()
			for v := 0; v < rounds; v++ {
				if err := st.Put(d, []byte(fmt.Sprintf("value-%d", v))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for v := 0; v < rounds; v++ {
				data, _, err := st.Get(d)
				if errors.Is(err, rescache.ErrNotFound) {
					continue
				}
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if !valid[string(data)] && string(data) != "garbage" {
					t.Errorf("torn read %q", data)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for v := 0; v < rounds/10; v++ {
				// Swap garbage in behind the store's back, as bit rot or a
				// foreign process would. Rename keeps the swap atomic — the
				// injected fault is a wrong entry, not a torn writer.
				tmp := filepath.Join(dir, fmt.Sprintf(".garbage-%s-%d", d[:8], v))
				if os.WriteFile(tmp, []byte("garbage"), 0o644) == nil {
					os.Rename(tmp, filepath.Join(dir, d+".json"))
				}
			}
		}()
	}
	wg.Wait()
}

func TestStatsCountsOnlyEntries(t *testing.T) {
	dir := t.TempDir()
	st, err := fsstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(digest(1), []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	// Non-entry files (probes, strays) must not count as occupancy.
	if err := os.WriteFile(filepath.Join(dir, "stray.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts := st.Stats()[0]
	if ts.Tier != "fs" || ts.Entries != 1 || ts.Bytes != 4 {
		t.Fatalf("Stats = %+v, want 1 entry / 4 bytes", ts)
	}
	if ts.Puts != 1 {
		t.Fatalf("Stats.Puts = %d, want 1", ts.Puts)
	}
}

func TestObserverCounters(t *testing.T) {
	st, err := fsstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	st.SetObserver(o)
	st.Put(digest(1), []byte("x"))
	st.Get(digest(1))
	st.Get(digest(2)) // miss
	doc := o.Document()
	for name, want := range map[string]int64{
		"store.fs.gets": 2, "store.fs.hits": 1, "store.fs.puts": 1, "store.fs.errors": 0,
	} {
		if doc.Counters[name] != want {
			t.Errorf("%s = %d, want %d", name, doc.Counters[name], want)
		}
	}
}
