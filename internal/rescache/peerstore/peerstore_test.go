package peerstore_test

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"resilience/internal/rescache"
	"resilience/internal/rescache/peerstore"
)

func digest(id string) string {
	return (rescache.Key{ID: id}).Digest()
}

// fakePeer serves the /v1/cache protocol out of a map, counting puts.
type fakePeer struct {
	srv     *httptest.Server
	entries map[string]string
	puts    atomic.Int64
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{entries: map[string]string{}}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
		switch r.Method {
		case http.MethodGet:
			data, ok := p.entries[d]
			if !ok {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Write([]byte(data))
		case http.MethodPut:
			data, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			p.entries[d] = string(data)
			p.puts.Add(1)
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	}))
	t.Cleanup(p.srv.Close)
	return p
}

// routeAllTo returns a routing function that sends every digest to base.
func routeAllTo(base string) func(string) (string, bool) {
	return func(string) (string, bool) { return base, true }
}

func TestGetHitMissAndPut(t *testing.T) {
	peer := newFakePeer(t)
	st := peerstore.New(routeAllTo(peer.srv.URL), nil)
	d := digest("e01")

	if _, _, err := st.Get(d); !errors.Is(err, rescache.ErrNotFound) {
		t.Fatalf("peer 404 must be a clean miss, got %v", err)
	}
	if err := st.Put(d, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, tier, err := st.Get(d)
	if err != nil || string(data) != "payload" || tier != "peer" {
		t.Fatalf("Get = (%q, %q, %v)", data, tier, err)
	}
	if peer.puts.Load() != 1 {
		t.Fatalf("peer saw %d puts, want 1", peer.puts.Load())
	}
	ts := st.Stats()[0]
	if ts.Tier != "peer" || ts.Gets != 2 || ts.Hits != 1 || ts.Puts != 1 || ts.Errors != 0 {
		t.Fatalf("Stats = %+v", ts)
	}
	if ts.Entries != -1 || ts.Bytes != -1 {
		t.Fatalf("occupancy must be unknown (-1), got %+v", ts)
	}
}

func TestDeclinedRouteIsCleanMiss(t *testing.T) {
	st := peerstore.New(func(string) (string, bool) { return "", false }, nil)
	if _, _, err := st.Get(digest("e01")); !errors.Is(err, rescache.ErrNotFound) {
		t.Fatalf("declined route must be ErrNotFound, got %v", err)
	}
	if err := st.Put(digest("e01"), []byte("x")); err != nil {
		t.Fatalf("declined Put must be a no-op, got %v", err)
	}
	ts := st.Stats()[0]
	if ts.Errors != 0 || ts.Puts != 0 {
		t.Fatalf("declined route counted traffic: %+v", ts)
	}
}

func TestServerErrorIsCountedBackendError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	st := peerstore.New(routeAllTo(srv.URL), nil)
	if _, _, err := st.Get(digest("e01")); err == nil || errors.Is(err, rescache.ErrNotFound) {
		t.Fatalf("500 must be a backend error, got %v", err)
	}
	if err := st.Put(digest("e01"), []byte("x")); err == nil {
		t.Fatal("500 on Put must surface")
	}
	if st.Stats()[0].Errors != 2 {
		t.Fatalf("Errors = %d, want 2", st.Stats()[0].Errors)
	}
}

func TestDeadPeerIsCountedBackendError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // dead: connection refused
	st := peerstore.New(routeAllTo(srv.URL), nil)
	if _, _, err := st.Get(digest("e01")); err == nil || errors.Is(err, rescache.ErrNotFound) {
		t.Fatalf("dead peer must be a backend error, got %v", err)
	}
	if st.Stats()[0].Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Stats()[0].Errors)
	}
}

func TestOversizedEntryRefused(t *testing.T) {
	big := strings.Repeat("x", peerstore.MaxEntryBytes+1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(big))
	}))
	defer srv.Close()
	st := peerstore.New(routeAllTo(srv.URL), nil)
	if _, _, err := st.Get(digest("e01")); err == nil || errors.Is(err, rescache.ErrNotFound) {
		t.Fatalf("oversized entry must be a backend error, got %v", err)
	}
}
