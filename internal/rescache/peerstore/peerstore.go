// Package peerstore is the fleet tier of the result cache: it reads and
// writes entries in another node's cache over the tiny HTTP protocol
// internal/server exposes at /v1/cache/{digest} (GET returns the entry
// bytes or 404, PUT stores them). Which node to ask is the routing
// function's business — the serve coordinator passes a consistent-hash
// ring lookup, so every node in the fleet agrees on the single owner of
// each digest and the tier reads through (and replicates into) that
// owner's store.
//
// The tier is strictly best-effort: a routing function that declines
// (self-owned digest, empty ring) is a clean miss, and every transport
// or protocol failure is a counted backend error that the cache above
// treats as a miss — a dead peer degrades the fleet to local compute,
// it never breaks a request.
package peerstore

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"resilience/internal/obs"
	"resilience/internal/rescache"
)

// DefaultTimeout bounds one peer round trip. Peers are ring neighbours
// on the same network; a peer slower than this is treated as down.
const DefaultTimeout = 2 * time.Second

// MaxEntryBytes bounds one fetched entry; full-size suite results are
// hundreds of KiB, so 32 MiB is generous without letting a confused
// peer balloon memory.
const MaxEntryBytes = 32 << 20

// Store reads and writes a remote node's cache tier.
type Store struct {
	owner    func(digest string) (baseURL string, ok bool)
	client   *http.Client
	observer *obs.Observer

	gets, hits, puts, errcnt atomic.Int64
}

// New returns a Store that routes each digest with owner: the returned
// base URL ("http://host:port") is asked for the entry; ok=false means
// no remote holds it (the local node owns the digest, or the ring is
// empty) and the lookup is a clean miss. A nil client gets
// DefaultTimeout.
func New(owner func(digest string) (string, bool), client *http.Client) *Store {
	if client == nil {
		client = &http.Client{Timeout: DefaultTimeout}
	}
	return &Store{owner: owner, client: client}
}

// SetObserver registers the tier's counters on o.
func (s *Store) SetObserver(o *obs.Observer) {
	if s == nil || o == nil {
		return
	}
	s.observer = o
	o.Counter("store.peer.gets")
	o.Counter("store.peer.hits")
	o.Counter("store.peer.puts")
	o.Counter("store.peer.errors")
}

func (s *Store) count(name string, n *atomic.Int64) {
	n.Add(1)
	s.observer.Counter("store.peer." + name).Inc()
}

func (s *Store) fail(err error) error {
	s.count("errors", &s.errcnt)
	return err
}

// Get fetches the entry from the digest's owner. 404 is a clean miss;
// any transport failure or unexpected status is a backend error.
func (s *Store) Get(digest string) ([]byte, string, error) {
	s.count("gets", &s.gets)
	base, ok := s.owner(digest)
	if !ok {
		return nil, "", rescache.ErrNotFound
	}
	resp, err := s.client.Get(base + "/v1/cache/" + digest)
	if err != nil {
		return nil, "", s.fail(fmt.Errorf("peerstore: get %s from %s: %w", digest, base, err))
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, MaxEntryBytes+1))
		if err != nil {
			return nil, "", s.fail(fmt.Errorf("peerstore: read %s from %s: %w", digest, base, err))
		}
		if len(data) > MaxEntryBytes {
			return nil, "", s.fail(fmt.Errorf("peerstore: entry %s from %s exceeds %d bytes", digest, base, MaxEntryBytes))
		}
		s.count("hits", &s.hits)
		return data, "peer", nil
	case http.StatusNotFound:
		return nil, "", rescache.ErrNotFound
	default:
		return nil, "", s.fail(fmt.Errorf("peerstore: get %s from %s: status %d", digest, base, resp.StatusCode))
	}
}

// Put replicates the entry to the digest's owner; a declined route is a
// no-op (the local tiers already hold it).
func (s *Store) Put(digest string, data []byte) error {
	base, ok := s.owner(digest)
	if !ok {
		return nil
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/cache/"+digest, bytes.NewReader(data))
	if err != nil {
		return s.fail(fmt.Errorf("peerstore: put %s to %s: %w", digest, base, err))
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return s.fail(fmt.Errorf("peerstore: put %s to %s: %w", digest, base, err))
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return s.fail(fmt.Errorf("peerstore: put %s to %s: status %d", digest, base, resp.StatusCode))
	}
	s.count("puts", &s.puts)
	return nil
}

// Stats snapshots traffic; occupancy is the owner's business (-1).
func (s *Store) Stats() []rescache.TierStats {
	return []rescache.TierStats{{
		Tier:    "peer",
		Gets:    s.gets.Load(),
		Hits:    s.hits.Load(),
		Puts:    s.puts.Load(),
		Errors:  s.errcnt.Load(),
		Entries: -1,
		Bytes:   -1,
	}}
}

// Close is a no-op; connections are the client's to pool.
func (s *Store) Close() error { return nil }

// String renders the tier for log lines.
func (s *Store) String() string { return "peer" }
