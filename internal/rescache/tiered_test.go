package rescache

import (
	"errors"
	"testing"
)

func TestTieredProbesInOrderAndBackfills(t *testing.T) {
	hot, cold := newMapStore("hot"), newMapStore("cold")
	st := Tiered(hot, cold)
	if err := cold.Put("d1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, tier, err := st.Get("d1")
	if err != nil || string(data) != "payload" || tier != "cold" {
		t.Fatalf("Get = (%q, %q, %v), want cold tier hit", data, tier, err)
	}
	// The hit must have backfilled the hotter tier, which now serves.
	if _, _, err := hot.Get("d1"); err != nil {
		t.Fatalf("hit did not backfill the hot tier: %v", err)
	}
	if _, tier, _ := st.Get("d1"); tier != "hot" {
		t.Fatalf("second Get served from %q, want backfilled hot tier", tier)
	}
}

func TestTieredPutWritesThrough(t *testing.T) {
	hot, cold := newMapStore("hot"), newMapStore("cold")
	st := Tiered(hot, cold)
	if err := st.Put("d1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*mapStore{hot, cold} {
		if _, _, err := s.Get("d1"); err != nil {
			t.Errorf("Put did not reach tier %s: %v", s.tier, err)
		}
	}
}

// TestTieredBackendErrorDegradesToNextTier: a broken tier is skipped,
// not fatal — the probe continues downward and the error is joined into
// the final result only if every tier misses.
func TestTieredBackendErrorDegradesToNextTier(t *testing.T) {
	broken, good := newMapStore("broken"), newMapStore("good")
	broken.getErr = errors.New("tier on fire")
	st := Tiered(broken, good)
	if err := good.Put("d1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, tier, err := st.Get("d1")
	if err != nil || string(data) != "payload" || tier != "good" {
		t.Fatalf("Get = (%q, %q, %v), want good-tier hit despite broken tier", data, tier, err)
	}
	// A full miss carries the backend error (not bare ErrNotFound), so
	// the cache above can count it.
	if _, _, err := st.Get("d2"); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("miss over a broken tier must surface the backend error, got %v", err)
	}
}

func TestTieredCleanMissIsErrNotFound(t *testing.T) {
	st := Tiered(newMapStore("a"), newMapStore("b"))
	if _, _, err := st.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("clean miss = %v, want ErrNotFound", err)
	}
}

func TestTieredPutErrorJoined(t *testing.T) {
	broken, good := newMapStore("broken"), newMapStore("good")
	broken.putErr = errors.New("write failed")
	st := Tiered(broken, good)
	if err := st.Put("d1", []byte("x")); err == nil {
		t.Fatal("a failed tier write must surface")
	}
	// The healthy tier must still have been written.
	if _, _, err := good.Get("d1"); err != nil {
		t.Fatalf("healthy tier skipped on sibling failure: %v", err)
	}
}

func TestTieredDegenerateShapes(t *testing.T) {
	if Tiered() != nil {
		t.Fatal("zero tiers must compose to nil")
	}
	if Tiered(nil, nil) != nil {
		t.Fatal("all-nil tiers must compose to nil")
	}
	solo := newMapStore("solo")
	if got := Tiered(nil, solo, nil); got != Store(solo) {
		t.Fatal("a single live tier must be returned unwrapped")
	}
}

func TestTieredStatsConcatenated(t *testing.T) {
	a, b := newMapStore("a"), newMapStore("b")
	st := Tiered(a, b)
	st.Put("d1", []byte("x"))
	st.Get("d1")
	ts := st.Stats()
	if len(ts) != 2 || ts[0].Tier != "a" || ts[1].Tier != "b" {
		t.Fatalf("Stats() = %+v, want tiers a then b", ts)
	}
	if ts[0].Hits != 1 || ts[1].Gets != 0 {
		t.Fatalf("Stats() = %+v: hit must stop at tier a", ts)
	}
}
