// Package chaos injects faults into a sysmodel.System — the synthetic
// substitute for the unanticipated shocks the paper is about. It covers
// the shock taxonomy of §5.1: random component failures, correlated
// common-mode failures (a whole substitution group at once, like the
// shared design flaw of §3.2.2), and X-events whose magnitudes follow a
// power law (§3.4.6, "many extreme events, such as earthquakes, are known
// to follow a power-law distribution").
package chaos

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"resilience/internal/metrics"
	"resilience/internal/rng"
	"resilience/internal/sysmodel"
)

// Fault is an injectable perturbation.
type Fault interface {
	// Inject applies the fault to the system.
	Inject(sys *sysmodel.System, r *rng.Source) error
	// String describes the fault for records and logs.
	String() string
}

// Crash takes one component Down.
type Crash struct {
	ID sysmodel.ComponentID
}

var _ Fault = Crash{}

// Inject implements Fault.
func (f Crash) Inject(sys *sysmodel.System, _ *rng.Source) error {
	return sys.SetStatus(f.ID, sysmodel.Down)
}

// String implements Fault.
func (f Crash) String() string { return fmt.Sprintf("crash(%d)", f.ID) }

// Degrade puts one component into the Degraded state.
type Degrade struct {
	ID sysmodel.ComponentID
}

var _ Fault = Degrade{}

// Inject implements Fault.
func (f Degrade) Inject(sys *sysmodel.System, _ *rng.Source) error {
	return sys.SetStatus(f.ID, sysmodel.Degraded)
}

// String implements Fault.
func (f Degrade) String() string { return fmt.Sprintf("degrade(%d)", f.ID) }

// Repair returns one component to Up — scheduled recovery.
type Repair struct {
	ID sysmodel.ComponentID
}

var _ Fault = Repair{}

// Inject implements Fault.
func (f Repair) Inject(sys *sysmodel.System, _ *rng.Source) error {
	return sys.SetStatus(f.ID, sysmodel.Up)
}

// String implements Fault.
func (f Repair) String() string { return fmt.Sprintf("repair(%d)", f.ID) }

// CrashGroup crashes every component of a substitution group at once — a
// common-mode failure: the §3.2.2 scenario where "a design flaw would
// make all the computers fail at the same time".
type CrashGroup struct {
	Group string
}

var _ Fault = CrashGroup{}

// Inject implements Fault.
func (f CrashGroup) Inject(sys *sysmodel.System, _ *rng.Source) error {
	hit := 0
	for _, c := range sys.Snapshot() {
		if c.Group == f.Group {
			if err := sys.SetStatus(c.ID, sysmodel.Down); err != nil {
				return err
			}
			hit++
		}
	}
	if hit == 0 {
		return fmt.Errorf("chaos: no components in group %q", f.Group)
	}
	return nil
}

// String implements Fault.
func (f CrashGroup) String() string { return fmt.Sprintf("crash-group(%s)", f.Group) }

// CrashRandom crashes up to N currently-Up components chosen uniformly.
type CrashRandom struct {
	N int
}

var _ Fault = CrashRandom{}

// Inject implements Fault.
func (f CrashRandom) Inject(sys *sysmodel.System, r *rng.Source) error {
	if f.N <= 0 {
		return nil
	}
	var up []sysmodel.ComponentID
	for _, c := range sys.Snapshot() {
		if c.Status == sysmodel.Up {
			up = append(up, c.ID)
		}
	}
	r.Shuffle(len(up), func(i, j int) { up[i], up[j] = up[j], up[i] })
	n := f.N
	if n > len(up) {
		n = len(up)
	}
	for _, id := range up[:n] {
		if err := sys.SetStatus(id, sysmodel.Down); err != nil {
			return err
		}
	}
	return nil
}

// String implements Fault.
func (f CrashRandom) String() string { return fmt.Sprintf("crash-random(%d)", f.N) }

// XEvent crashes ceil(X) random components where X ~ Pareto(Scale, Alpha)
// — a heavy-tailed shock whose size is usually small but occasionally
// enormous.
type XEvent struct {
	Scale float64
	Alpha float64
}

var _ Fault = XEvent{}

// Inject implements Fault.
func (f XEvent) Inject(sys *sysmodel.System, r *rng.Source) error {
	if f.Scale <= 0 || f.Alpha <= 0 {
		return fmt.Errorf("chaos: xevent needs positive scale and alpha, got %v/%v", f.Scale, f.Alpha)
	}
	n := int(math.Ceil(r.Pareto(f.Scale, f.Alpha)))
	return CrashRandom{N: n}.Inject(sys, r)
}

// String implements Fault.
func (f XEvent) String() string { return fmt.Sprintf("xevent(scale=%v,alpha=%v)", f.Scale, f.Alpha) }

// ScheduledFault fires a fault at a specific simulation step.
type ScheduledFault struct {
	Step  int
	Fault Fault
}

// InjectionRecord logs an injected fault.
type InjectionRecord struct {
	Step        int
	Description string
}

// Injector drives a system through time while injecting faults.
type Injector struct {
	// Schedule lists deterministic faults (fired before the step they
	// name).
	Schedule []ScheduledFault
	// RandomFault, if non-nil, is injected each step with probability
	// RandomFaultRate.
	RandomFault Fault
	// RandomFaultRate is the per-step probability of a random fault.
	RandomFaultRate float64
	// AutoRepairProb is the per-step probability that each Down
	// component recovers on its own (environmental repair, e.g. a
	// supplier coming back). Zero disables.
	AutoRepairProb float64
	// Hook, if non-nil, runs after every step with the step report —
	// the attachment point for MAPE controllers.
	Hook func(step int, rep sysmodel.StepReport)
}

// Run advances the system `steps` steps, returning the quality trace and
// the log of injected faults.
func (inj *Injector) Run(sys *sysmodel.System, steps int, r *rng.Source) (*metrics.Trace, []InjectionRecord, error) {
	if sys == nil {
		return nil, nil, errors.New("chaos: nil system")
	}
	if steps < 0 {
		return nil, nil, fmt.Errorf("chaos: negative steps %d", steps)
	}
	sched := make([]ScheduledFault, len(inj.Schedule))
	copy(sched, inj.Schedule)
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].Step < sched[j].Step })
	var records []InjectionRecord
	tr := metrics.NewTrace(0, 1)
	next := 0
	for t := 0; t < steps; t++ {
		for next < len(sched) && sched[next].Step == t {
			f := sched[next].Fault
			if f != nil {
				if err := f.Inject(sys, r); err != nil {
					return nil, nil, fmt.Errorf("scheduled fault at step %d: %w", t, err)
				}
				records = append(records, InjectionRecord{Step: t, Description: f.String()})
			}
			next++
		}
		if inj.RandomFault != nil && r.Bool(inj.RandomFaultRate) {
			if err := inj.RandomFault.Inject(sys, r); err != nil {
				return nil, nil, fmt.Errorf("random fault at step %d: %w", t, err)
			}
			records = append(records, InjectionRecord{Step: t, Description: inj.RandomFault.String()})
		}
		if inj.AutoRepairProb > 0 {
			for _, id := range sys.DownComponents() {
				if r.Bool(inj.AutoRepairProb) {
					if err := sys.SetStatus(id, sysmodel.Up); err != nil {
						return nil, nil, err
					}
				}
			}
		}
		rep := sys.Step()
		tr.Append(rep.Quality)
		if inj.Hook != nil {
			inj.Hook(t, rep)
		}
	}
	return tr, records, nil
}
