package chaos

import (
	"strings"
	"testing"

	"resilience/internal/metrics"
	"resilience/internal/rng"
	"resilience/internal/sysmodel"
)

func buildFarm(t *testing.T, n int, demand, reserve float64) (*sysmodel.System, []sysmodel.ComponentID) {
	t.Helper()
	b := sysmodel.NewBuilder()
	ids := make([]sysmodel.ComponentID, n)
	for i := range ids {
		ids[i] = b.Component("node", demand/float64(n), sysmodel.WithGroup("farm"))
	}
	sys, err := b.Build(demand, reserve)
	if err != nil {
		t.Fatal(err)
	}
	return sys, ids
}

func TestCrashDegradeRepair(t *testing.T) {
	r := rng.New(1)
	sys, ids := buildFarm(t, 4, 100, 0)
	if err := (Crash{ID: ids[0]}).Inject(sys, r); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.Status(ids[0]); st != sysmodel.Down {
		t.Fatal("crash did not take the component down")
	}
	if err := (Degrade{ID: ids[1]}).Inject(sys, r); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.Status(ids[1]); st != sysmodel.Degraded {
		t.Fatal("degrade failed")
	}
	if err := (Repair{ID: ids[0]}).Inject(sys, r); err != nil {
		t.Fatal(err)
	}
	if st, _ := sys.Status(ids[0]); st != sysmodel.Up {
		t.Fatal("repair failed")
	}
}

func TestCrashGroupCommonMode(t *testing.T) {
	r := rng.New(2)
	sys, ids := buildFarm(t, 3, 90, 0)
	if err := (CrashGroup{Group: "farm"}).Inject(sys, r); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if st, _ := sys.Status(id); st != sysmodel.Down {
			t.Fatal("common-mode crash must take the whole group down")
		}
	}
	if err := (CrashGroup{Group: "nope"}).Inject(sys, r); err == nil {
		t.Fatal("want error for unknown group")
	}
}

func TestCrashRandom(t *testing.T) {
	r := rng.New(3)
	sys, _ := buildFarm(t, 10, 100, 0)
	if err := (CrashRandom{N: 4}).Inject(sys, r); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.DownComponents()); got != 4 {
		t.Fatalf("down = %d, want 4", got)
	}
	// Clamps to available.
	if err := (CrashRandom{N: 100}).Inject(sys, r); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.DownComponents()); got != 10 {
		t.Fatalf("down = %d, want all 10", got)
	}
	// N <= 0 is a no-op.
	sys2, _ := buildFarm(t, 3, 30, 0)
	if err := (CrashRandom{N: 0}).Inject(sys2, r); err != nil {
		t.Fatal(err)
	}
	if len(sys2.DownComponents()) != 0 {
		t.Fatal("CrashRandom{0} crashed something")
	}
}

func TestXEventValidation(t *testing.T) {
	r := rng.New(4)
	sys, _ := buildFarm(t, 5, 50, 0)
	if err := (XEvent{Scale: 0, Alpha: 1}).Inject(sys, r); err == nil {
		t.Fatal("want error for zero scale")
	}
	if err := (XEvent{Scale: 1, Alpha: -1}).Inject(sys, r); err == nil {
		t.Fatal("want error for negative alpha")
	}
	if err := (XEvent{Scale: 1, Alpha: 2}).Inject(sys, r); err != nil {
		t.Fatal(err)
	}
	if len(sys.DownComponents()) < 1 {
		t.Fatal("xevent should crash at least one component")
	}
}

func TestInjectorScheduledFaults(t *testing.T) {
	r := rng.New(5)
	sys, ids := buildFarm(t, 4, 100, 0)
	inj := &Injector{
		Schedule: []ScheduledFault{
			{Step: 10, Fault: Crash{ID: ids[0]}},
			{Step: 5, Fault: Crash{ID: ids[1]}}, // out of order on purpose
			{Step: 20, Fault: Repair{ID: ids[0]}},
			{Step: 20, Fault: Repair{ID: ids[1]}},
		},
	}
	tr, recs, err := inj.Run(sys, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 30 {
		t.Fatalf("trace length = %d", tr.Len())
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Step != 5 || !strings.HasPrefix(recs[0].Description, "crash") {
		t.Fatalf("first record = %+v", recs[0])
	}
	rep, err := metrics.Assess(tr, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Robustness != 50 {
		t.Fatalf("robustness = %v, want 50 (two of four down)", rep.Robustness)
	}
	if len(rep.Episodes) != 1 || !rep.Episodes[0].Recovered() {
		t.Fatalf("episodes = %+v", rep.Episodes)
	}
}

func TestInjectorRandomFaultAndAutoRepair(t *testing.T) {
	r := rng.New(6)
	sys, _ := buildFarm(t, 10, 100, 0)
	inj := &Injector{
		RandomFault:     CrashRandom{N: 1},
		RandomFaultRate: 0.3,
		AutoRepairProb:  0.2,
	}
	tr, recs, err := inj.Run(sys, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 50 {
		t.Fatalf("records = %d, want many random faults", len(recs))
	}
	// Auto-repair must keep the system from total collapse.
	rob, err := tr.Robustness()
	if err != nil {
		t.Fatal(err)
	}
	if rob == 0 {
		t.Log("system hit zero quality; acceptable but unusual at these rates")
	}
	loss, err := tr.Loss()
	if err != nil {
		t.Fatal(err)
	}
	if loss == 0 {
		t.Fatal("expected some quality loss under random faults")
	}
}

func TestInjectorHook(t *testing.T) {
	r := rng.New(7)
	sys, _ := buildFarm(t, 2, 20, 0)
	var calls int
	inj := &Injector{Hook: func(step int, rep sysmodel.StepReport) {
		calls++
		if rep.Quality != 100 {
			t.Errorf("unexpected degradation at step %d", step)
		}
	}}
	if _, _, err := inj.Run(sys, 25, r); err != nil {
		t.Fatal(err)
	}
	if calls != 25 {
		t.Fatalf("hook calls = %d", calls)
	}
}

func TestInjectorValidation(t *testing.T) {
	r := rng.New(8)
	if _, _, err := (&Injector{}).Run(nil, 5, r); err == nil {
		t.Error("want error for nil system")
	}
	sys, _ := buildFarm(t, 2, 20, 0)
	if _, _, err := (&Injector{}).Run(sys, -1, r); err == nil {
		t.Error("want error for negative steps")
	}
	bad := &Injector{Schedule: []ScheduledFault{{Step: 1, Fault: CrashGroup{Group: "missing"}}}}
	if _, _, err := bad.Run(sys, 5, r); err == nil {
		t.Error("want error propagated from scheduled fault")
	}
}

func TestFaultStrings(t *testing.T) {
	for _, f := range []Fault{
		Crash{ID: 1}, Degrade{ID: 2}, Repair{ID: 3},
		CrashGroup{Group: "g"}, CrashRandom{N: 4}, XEvent{Scale: 1, Alpha: 2},
	} {
		if f.String() == "" {
			t.Errorf("%T has empty description", f)
		}
	}
}
