// Package portfolio models the investment-diversification trade of
// §3.2.3: "To invest all the money on the stock with the highest expected
// return is the optimal solution if [maximizing expected return] is the
// goal. It is also a risky strategy because the investor loses all the
// money if the invested company bankrupts. By diversifying the
// investments, the investor can significantly reduce the risk of
// catastrophic loss in exchange for a slightly lower expected return."
//
// Assets follow a discrete multiplicative return process with an
// additional per-period bankruptcy event that zeroes the position.
// Portfolios are equal-weighted; simulation reports expected final
// wealth and ruin probability.
package portfolio

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"resilience/internal/rng"
)

// Asset is one investable instrument.
type Asset struct {
	// Name identifies the asset in reports.
	Name string
	// MeanReturn is the per-period expected (arithmetic) return of the
	// surviving asset, e.g. 0.08.
	MeanReturn float64
	// Volatility is the per-period return standard deviation.
	Volatility float64
	// BankruptcyProb is the per-period probability the asset goes to
	// zero permanently.
	BankruptcyProb float64
}

// Validate checks the asset parameters.
func (a Asset) Validate() error {
	if a.Volatility < 0 {
		return fmt.Errorf("portfolio: asset %q negative volatility", a.Name)
	}
	if a.BankruptcyProb < 0 || a.BankruptcyProb > 1 {
		return fmt.Errorf("portfolio: asset %q bankruptcy probability out of [0,1]", a.Name)
	}
	if a.MeanReturn <= -1 {
		return fmt.Errorf("portfolio: asset %q mean return must exceed -100%%", a.Name)
	}
	return nil
}

// Result summarizes a portfolio simulation.
type Result struct {
	Trials int
	// MeanFinal is the mean final wealth (initial wealth 1).
	MeanFinal float64
	// MedianFinal is the median final wealth.
	MedianFinal float64
	// RuinProb is the fraction of trials ending below RuinBelow.
	RuinProb float64
	// WorstFinal is the minimum final wealth observed.
	WorstFinal float64
}

// Config parameterizes a simulation.
type Config struct {
	// Periods is the investment horizon.
	Periods int
	// Trials is the Monte-Carlo sample count.
	Trials int
	// RuinBelow is the wealth fraction defining catastrophic loss
	// (e.g. 0.1 of initial wealth).
	RuinBelow float64
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.Periods <= 0 || c.Trials <= 0 {
		return fmt.Errorf("portfolio: periods %d and trials %d must be positive", c.Periods, c.Trials)
	}
	if c.RuinBelow < 0 {
		return errors.New("portfolio: negative ruin threshold")
	}
	return nil
}

// Simulate runs an equal-weight buy-and-hold portfolio of the given
// assets from initial wealth 1.
func Simulate(assets []Asset, cfg Config, r *rng.Source) (Result, error) {
	if len(assets) == 0 {
		return Result{}, errors.New("portfolio: no assets")
	}
	for _, a := range assets {
		if err := a.Validate(); err != nil {
			return Result{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	finals := make([]float64, cfg.Trials)
	ruined := 0
	weight := 1 / float64(len(assets))
	for trial := 0; trial < cfg.Trials; trial++ {
		values := make([]float64, len(assets))
		bankrupt := make([]bool, len(assets))
		for i := range values {
			values[i] = weight
		}
		for t := 0; t < cfg.Periods; t++ {
			for i, a := range assets {
				if bankrupt[i] || values[i] == 0 {
					continue
				}
				if r.Bool(a.BankruptcyProb) {
					bankrupt[i] = true
					values[i] = 0
					continue
				}
				ret := r.Norm(a.MeanReturn, a.Volatility)
				if ret < -1 {
					ret = -1
				}
				values[i] *= 1 + ret
			}
		}
		var wealth float64
		for _, v := range values {
			wealth += v
		}
		finals[trial] = wealth
		if wealth < cfg.RuinBelow {
			ruined++
		}
	}
	sort.Float64s(finals)
	var sum float64
	for _, w := range finals {
		sum += w
	}
	res := Result{
		Trials:      cfg.Trials,
		MeanFinal:   sum / float64(cfg.Trials),
		MedianFinal: finals[cfg.Trials/2],
		RuinProb:    float64(ruined) / float64(cfg.Trials),
		WorstFinal:  finals[0],
	}
	return res, nil
}

// UniformPool builds n statistically identical assets — the cleanest
// setting for the diversification claim, isolating the effect of N.
func UniformPool(n int, mean, vol, bankruptcy float64) []Asset {
	out := make([]Asset, n)
	for i := range out {
		out[i] = Asset{
			Name:           fmt.Sprintf("asset-%d", i),
			MeanReturn:     mean,
			Volatility:     vol,
			BankruptcyProb: bankruptcy,
		}
	}
	return out
}

// DiversificationCurve simulates portfolios of 1..maxN assets from a
// uniform pool and returns one Result per portfolio size.
func DiversificationCurve(maxN int, mean, vol, bankruptcy float64, cfg Config, r *rng.Source) ([]Result, error) {
	if maxN < 1 {
		return nil, fmt.Errorf("portfolio: maxN %d must be >= 1", maxN)
	}
	out := make([]Result, 0, maxN)
	for n := 1; n <= maxN; n++ {
		res, err := Simulate(UniformPool(n, mean, vol, bankruptcy), cfg, r)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ExpectedGrowthPenalty returns the relative expected-wealth gap between
// a concentrated bet on bestMean and a diversified pool at poolMean: the
// "slightly lower expected return" the paper accepts for safety.
func ExpectedGrowthPenalty(bestMean, poolMean float64, periods int) float64 {
	best := math.Pow(1+bestMean, float64(periods))
	pool := math.Pow(1+poolMean, float64(periods))
	if best == 0 {
		return 0
	}
	return (best - pool) / best
}
