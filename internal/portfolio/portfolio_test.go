package portfolio

import (
	"testing"

	"resilience/internal/rng"
)

func TestAssetValidate(t *testing.T) {
	good := Asset{Name: "ok", MeanReturn: 0.08, Volatility: 0.2, BankruptcyProb: 0.01}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Asset{
		{Name: "vol", Volatility: -1},
		{Name: "bk", BankruptcyProb: 2},
		{Name: "ret", MeanReturn: -1.5},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("asset %q should be invalid", a.Name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Periods: 10, Trials: 10, RuinBelow: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Periods: 0, Trials: 10},
		{Periods: 10, Trials: 0},
		{Periods: 10, Trials: 10, RuinBelow: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	r := rng.New(1)
	cfg := Config{Periods: 10, Trials: 10, RuinBelow: 0.1}
	if _, err := Simulate(nil, cfg, r); err == nil {
		t.Error("want error for no assets")
	}
	if _, err := Simulate([]Asset{{Volatility: -1}}, cfg, r); err == nil {
		t.Error("want asset validation error")
	}
	if _, err := Simulate(UniformPool(2, 0.05, 0.1, 0), Config{}, r); err == nil {
		t.Error("want config validation error")
	}
}

func TestDeterministicGrowth(t *testing.T) {
	// No volatility, no bankruptcy: wealth compounds exactly.
	r := rng.New(2)
	res, err := Simulate(UniformPool(4, 0.1, 0, 0), Config{Periods: 5, Trials: 10, RuinBelow: 0.01}, r)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.1 * 1.1 * 1.1 * 1.1 * 1.1
	if res.MeanFinal < want-1e-9 || res.MeanFinal > want+1e-9 {
		t.Fatalf("mean final = %v, want %v", res.MeanFinal, want)
	}
	if res.RuinProb != 0 {
		t.Fatalf("ruin prob = %v", res.RuinProb)
	}
}

func TestConcentrationRuinsMoreOften(t *testing.T) {
	// The paper's claim: diversification sharply cuts catastrophic-loss
	// risk at a modest expected-return cost.
	cfg := Config{Periods: 30, Trials: 4000, RuinBelow: 0.1}
	r1 := rng.New(3)
	concentrated, err := Simulate(UniformPool(1, 0.08, 0.2, 0.02), cfg, r1)
	if err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(4)
	diversified, err := Simulate(UniformPool(20, 0.08, 0.2, 0.02), cfg, r2)
	if err != nil {
		t.Fatal(err)
	}
	// Single asset: ruin prob ≈ 1-(1-0.02)^30 ≈ 0.45.
	if concentrated.RuinProb < 0.3 {
		t.Fatalf("concentrated ruin = %v, want large", concentrated.RuinProb)
	}
	if diversified.RuinProb > concentrated.RuinProb/5 {
		t.Fatalf("diversified ruin %v should be far below concentrated %v",
			diversified.RuinProb, concentrated.RuinProb)
	}
}

func TestDiversificationCurveMonotoneRuin(t *testing.T) {
	r := rng.New(5)
	cfg := Config{Periods: 20, Trials: 1500, RuinBelow: 0.1}
	curve, err := DiversificationCurve(10, 0.06, 0.15, 0.03, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 10 {
		t.Fatalf("curve points = %d", len(curve))
	}
	if curve[9].RuinProb >= curve[0].RuinProb {
		t.Fatalf("ruin should fall with diversification: N=1 %v vs N=10 %v",
			curve[0].RuinProb, curve[9].RuinProb)
	}
	if _, err := DiversificationCurve(0, 0.05, 0.1, 0.01, cfg, r); err == nil {
		t.Error("want error for maxN < 1")
	}
}

func TestUniformPool(t *testing.T) {
	pool := UniformPool(3, 0.05, 0.1, 0.01)
	if len(pool) != 3 {
		t.Fatalf("pool size = %d", len(pool))
	}
	names := map[string]bool{}
	for _, a := range pool {
		if names[a.Name] {
			t.Fatalf("duplicate asset name %q", a.Name)
		}
		names[a.Name] = true
	}
}

func TestExpectedGrowthPenalty(t *testing.T) {
	p := ExpectedGrowthPenalty(0.10, 0.08, 10)
	if p <= 0 || p >= 1 {
		t.Fatalf("penalty = %v", p)
	}
	if ExpectedGrowthPenalty(0.08, 0.08, 10) != 0 {
		t.Fatal("equal means should have zero penalty")
	}
}

func TestWorstFinalAndMedian(t *testing.T) {
	r := rng.New(6)
	res, err := Simulate(UniformPool(1, 0.05, 0.3, 0.05), Config{Periods: 10, Trials: 500, RuinBelow: 0.1}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstFinal > res.MedianFinal {
		t.Fatalf("worst %v above median %v", res.WorstFinal, res.MedianFinal)
	}
	if res.WorstFinal < 0 {
		t.Fatalf("wealth went negative: %v", res.WorstFinal)
	}
}
