package core

import (
	"errors"

	"resilience/internal/chaos"
	"resilience/internal/dcsp"
	"resilience/internal/mape"
	"resilience/internal/rng"
	"resilience/internal/sysmodel"
)

// DCSPSystem adapts a dcsp.System to the core System interface.
type DCSPSystem struct {
	Sys *dcsp.System
	R   *rng.Source
}

var _ System = (*DCSPSystem)(nil)

// NewDCSPSystem wraps a dynamic-CSP system with its random source.
func NewDCSPSystem(sys *dcsp.System, r *rng.Source) (*DCSPSystem, error) {
	if sys == nil || r == nil {
		return nil, errors.New("core: nil dcsp system or rng")
	}
	return &DCSPSystem{Sys: sys, R: r}, nil
}

// Quality implements System.
func (a *DCSPSystem) Quality() float64 { return a.Sys.Quality() }

// Step implements System.
func (a *DCSPSystem) Step() error {
	a.Sys.Step(a.R)
	return nil
}

// Damage returns a Shock applying the damage model to the adapted system.
func (a *DCSPSystem) Damage(dm dcsp.DamageModel) Shock {
	return func() error {
		if dm == nil {
			return errors.New("core: nil damage model")
		}
		_, state := dcsp.DamageEvent{Model: dm}.Apply(a.Sys.Env, a.Sys.State, a.R)
		a.Sys.State = state
		return nil
	}
}

// ShiftEnvironment returns a Shock replacing the environment constraint.
func (a *DCSPSystem) ShiftEnvironment(env dcsp.Constraint) Shock {
	return func() error {
		if env == nil {
			return errors.New("core: nil environment")
		}
		a.Sys.Env = env
		return nil
	}
}

// ServiceSystem adapts a sysmodel.System (optionally supervised by a MAPE
// controller) to the core System interface.
type ServiceSystem struct {
	Sys *sysmodel.System
	// Controller, if non-nil, ticks once after every step.
	Controller *mape.Controller

	lastQuality float64
	started     bool
}

var _ System = (*ServiceSystem)(nil)

// NewServiceSystem wraps a service system.
func NewServiceSystem(sys *sysmodel.System, controller *mape.Controller) (*ServiceSystem, error) {
	if sys == nil {
		return nil, errors.New("core: nil service system")
	}
	return &ServiceSystem{Sys: sys, Controller: controller}, nil
}

// Quality implements System: before the first step it peeks via the MAPE
// monitor; afterwards it reports the last step's served quality.
func (a *ServiceSystem) Quality() float64 {
	if !a.started {
		return mape.QualityMonitor{}.Observe(a.Sys).Quality
	}
	return a.lastQuality
}

// Step implements System.
func (a *ServiceSystem) Step() error {
	rep := a.Sys.Step()
	a.lastQuality = rep.Quality
	a.started = true
	if a.Controller != nil {
		if _, err := a.Controller.Tick(a.Sys); err != nil {
			return err
		}
	}
	return nil
}

// Inject returns a Shock applying a chaos fault to the adapted system.
func (a *ServiceSystem) Inject(f chaos.Fault, r *rng.Source) Shock {
	return func() error {
		if f == nil {
			return errors.New("core: nil fault")
		}
		return f.Inject(a.Sys, r)
	}
}
