// Package core is the top level of the resilience library: it binds the
// paper's formal model (dcsp, maintain), its quantitative metric
// (metrics), its strategy knobs (diversity, magent), and the engineering
// substrates (sysmodel, chaos, mape) into one API.
//
// The package provides:
//
//   - the Resilience body of knowledge (bok.go) — the catalogue of
//     strategies the project set out to organize (§2: "This 'Resilience
//     BoK' will catalogue various resilience strategies and describe when
//     and how these strategies should be applied");
//
//   - a generic System interface with adapters for the DCSP model and
//     the component service model (adapters.go);
//
//   - a scenario runner and resilience profile: run shocks, collect the
//     quality trace, compute the Bruneau loss, and grade the outcome;
//
//   - the §4.4 budget optimizer over redundancy/diversity/adaptability
//     (optimize.go).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"resilience/internal/metrics"
)

// System is anything whose quality can be sampled while time advances.
type System interface {
	// Quality returns the current service quality in [0, 100].
	Quality() float64
	// Step advances the system one time unit.
	Step() error
}

// Shock is a perturbation applied to a System mid-run.
type Shock func() error

// Scenario schedules shocks against a system.
type Scenario struct {
	// Steps is the run length.
	Steps int
	// ShockAt maps step index to the shock fired before that step.
	ShockAt map[int]Shock
}

// RunScenario drives the system through the scenario and returns the
// quality trace: a sample before each step (after that step's shock) and
// a final sample.
func RunScenario(sys System, sc Scenario) (*metrics.Trace, error) {
	if sys == nil {
		return nil, errors.New("core: nil system")
	}
	if sc.Steps < 0 {
		return nil, fmt.Errorf("core: negative steps %d", sc.Steps)
	}
	tr := metrics.NewTrace(0, 1)
	for t := 0; t < sc.Steps; t++ {
		if shock, ok := sc.ShockAt[t]; ok && shock != nil {
			if err := shock(); err != nil {
				return nil, fmt.Errorf("shock at step %d: %w", t, err)
			}
		}
		tr.Append(sys.Quality())
		if err := sys.Step(); err != nil {
			return nil, fmt.Errorf("step %d: %w", t, err)
		}
	}
	tr.Append(sys.Quality())
	return tr, nil
}

// Grade is a qualitative resilience rating derived from the normalized
// Bruneau loss.
type Grade string

// Grades from most to least resilient.
const (
	GradeA Grade = "A" // normalized loss < 1%
	GradeB Grade = "B" // < 5%
	GradeC Grade = "C" // < 15%
	GradeD Grade = "D" // < 40%
	GradeF Grade = "F" // >= 40% or never recovered
)

// Profile is a full resilience assessment of one run.
type Profile struct {
	Report metrics.Report
	Grade  Grade
	// Recovered is false if any episode was still open at the end of
	// the trace.
	Recovered bool
}

// Assess evaluates a quality trace against a baseline (typically 99.9%
// of full quality) and grades it.
func Assess(tr *metrics.Trace, baseline float64) (Profile, error) {
	rep, err := metrics.Assess(tr, baseline)
	if err != nil {
		return Profile{}, err
	}
	p := Profile{Report: rep, Recovered: true}
	for _, e := range rep.Episodes {
		if !e.Recovered() {
			p.Recovered = false
		}
	}
	switch {
	case !p.Recovered || rep.Normalized >= 0.40:
		p.Grade = GradeF
	case rep.Normalized >= 0.15:
		p.Grade = GradeD
	case rep.Normalized >= 0.05:
		p.Grade = GradeC
	case rep.Normalized >= 0.01:
		p.Grade = GradeB
	default:
		p.Grade = GradeA
	}
	return p, nil
}

// CompareProfiles orders named profiles from most to least resilient
// (ascending loss).
type NamedProfile struct {
	Name    string
	Profile Profile
}

// Rank sorts profiles ascending by Bruneau loss (most resilient first).
func Rank(profiles map[string]Profile) []NamedProfile {
	out := make([]NamedProfile, 0, len(profiles))
	for name, p := range profiles {
		out = append(out, NamedProfile{Name: name, Profile: p})
	}
	sort.Slice(out, func(i, j int) bool {
		li, lj := out[i].Profile.Report.Loss, out[j].Profile.Report.Loss
		if li != lj {
			return li < lj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ExpectedLossOverShocks runs the scenario generator for each probability
// weight and aggregates the expected Bruneau loss — the ensemble view of
// §4.1.
func ExpectedLossOverShocks(runs []WeightedRun) (float64, error) {
	scenarios := make([]metrics.ScenarioLoss, 0, len(runs))
	for _, wr := range runs {
		if wr.Trace == nil {
			return 0, errors.New("core: nil trace in weighted run")
		}
		loss, err := wr.Trace.Loss()
		if err != nil {
			return 0, err
		}
		scenarios = append(scenarios, metrics.ScenarioLoss{Probability: wr.Probability, Loss: loss})
	}
	return metrics.ExpectedLoss(scenarios)
}

// WeightedRun pairs a measured trace with its scenario probability.
type WeightedRun struct {
	Probability float64
	Trace       *metrics.Trace
}

// RecoverabilityScore condenses a profile into a single [0, 1] score:
// 1 − normalized loss, floored at 0, zeroed when unrecovered.
func RecoverabilityScore(p Profile) float64 {
	if !p.Recovered {
		return 0
	}
	s := 1 - p.Report.Normalized
	if s < 0 || math.IsNaN(s) {
		return 0
	}
	return s
}
